//! TCP header (RFC 793), with the MSS option used during connection
//! establishment.

use crate::{be16, be32, put16, put32, Checksum, Ipv4Header, WireError};
use std::fmt;

/// Length of a TCP header without options.
pub const TCP_HDR_LEN: usize = 20;

/// TCP flag bits.
#[derive(Clone, Copy, PartialEq, Eq, Default)]
pub struct TcpFlags(pub u8);

impl TcpFlags {
    /// FIN: sender is finished sending.
    pub const FIN: TcpFlags = TcpFlags(0x01);
    /// SYN: synchronize sequence numbers.
    pub const SYN: TcpFlags = TcpFlags(0x02);
    /// RST: reset the connection.
    pub const RST: TcpFlags = TcpFlags(0x04);
    /// PSH: push buffered data to the application.
    pub const PSH: TcpFlags = TcpFlags(0x08);
    /// ACK: the acknowledgment field is valid.
    pub const ACK: TcpFlags = TcpFlags(0x10);
    /// URG: the urgent pointer is valid.
    pub const URG: TcpFlags = TcpFlags(0x20);

    /// True if all bits of `other` are set in `self`.
    pub fn contains(self, other: TcpFlags) -> bool {
        self.0 & other.0 == other.0
    }

    /// Union of two flag sets.
    pub fn union(self, other: TcpFlags) -> TcpFlags {
        TcpFlags(self.0 | other.0)
    }
}

impl std::ops::BitOr for TcpFlags {
    type Output = TcpFlags;

    fn bitor(self, rhs: TcpFlags) -> TcpFlags {
        self.union(rhs)
    }
}

impl fmt::Debug for TcpFlags {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut names = Vec::new();
        for (bit, name) in [
            (TcpFlags::FIN, "FIN"),
            (TcpFlags::SYN, "SYN"),
            (TcpFlags::RST, "RST"),
            (TcpFlags::PSH, "PSH"),
            (TcpFlags::ACK, "ACK"),
            (TcpFlags::URG, "URG"),
        ] {
            if self.contains(bit) {
                names.push(name);
            }
        }
        write!(f, "[{}]", names.join("|"))
    }
}

/// A TCP header.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct TcpHeader {
    /// Source port.
    pub src_port: u16,
    /// Destination port.
    pub dst_port: u16,
    /// Sequence number of the first payload byte (or the SYN/FIN).
    pub seq: u32,
    /// Acknowledgment number (next expected byte) when ACK is set.
    pub ack: u32,
    /// Flags.
    pub flags: TcpFlags,
    /// Advertised receive window.
    pub window: u16,
    /// Urgent pointer (valid when URG set).
    pub urgent: u16,
    /// Maximum segment size option (SYN segments only).
    pub mss: Option<u16>,
}

impl TcpHeader {
    /// Header length in bytes including options.
    pub fn header_len(&self) -> usize {
        TCP_HDR_LEN + if self.mss.is_some() { 4 } else { 0 }
    }

    /// Encodes the header (checksum field zero) into a buffer.
    pub fn encode(&self) -> Vec<u8> {
        let len = self.header_len();
        let mut b = vec![0u8; len];
        put16(&mut b, 0, self.src_port);
        put16(&mut b, 2, self.dst_port);
        put32(&mut b, 4, self.seq);
        put32(&mut b, 8, self.ack);
        b[12] = ((len / 4) as u8) << 4;
        b[13] = self.flags.0;
        put16(&mut b, 14, self.window);
        // Checksum at 16 left zero; urgent pointer at 18.
        put16(&mut b, 18, self.urgent);
        if let Some(mss) = self.mss {
            b[20] = 2; // Kind: MSS.
            b[21] = 4; // Length.
            put16(&mut b, 22, mss);
        }
        b
    }

    /// Encodes with the TCP checksum computed over the pseudo-header and
    /// payload segments.
    pub fn encode_with_checksum<'a>(
        &self,
        ip: &Ipv4Header,
        payload_len: usize,
        payload: impl Iterator<Item = &'a [u8]>,
    ) -> Vec<u8> {
        let mut b = self.encode();
        let mut c: Checksum = ip.pseudo_checksum(b.len() + payload_len);
        c.add_bytes(&b);
        for seg in payload {
            c.add_bytes(seg);
        }
        let ck = c.finish();
        put16(&mut b, 16, ck);
        b
    }

    /// Verifies the checksum of a received segment (header bytes must
    /// include options and the on-wire checksum).
    pub fn verify<'a>(
        ip: &Ipv4Header,
        header_bytes: &[u8],
        payload_len: usize,
        payload: impl Iterator<Item = &'a [u8]>,
    ) -> bool {
        let mut c: Checksum = ip.pseudo_checksum(header_bytes.len() + payload_len);
        c.add_bytes(header_bytes);
        for seg in payload {
            c.add_bytes(seg);
        }
        c.finish() == 0
    }

    /// Parses from the front of `buf`, returning the header and its
    /// length in bytes.
    pub fn parse(buf: &[u8]) -> Result<(TcpHeader, usize), WireError> {
        if buf.len() < TCP_HDR_LEN {
            return Err(WireError::Truncated);
        }
        let data_off = usize::from(buf[12] >> 4) * 4;
        if data_off < TCP_HDR_LEN || buf.len() < data_off {
            return Err(WireError::BadLength);
        }
        let mut mss = None;
        let mut i = TCP_HDR_LEN;
        while i < data_off {
            match buf[i] {
                0 => break,  // End of options.
                1 => i += 1, // NOP.
                kind => {
                    if i + 1 >= data_off {
                        return Err(WireError::BadField);
                    }
                    let optlen = usize::from(buf[i + 1]);
                    if optlen < 2 || i + optlen > data_off {
                        return Err(WireError::BadField);
                    }
                    if kind == 2 {
                        if optlen != 4 {
                            return Err(WireError::BadField);
                        }
                        mss = Some(be16(buf, i + 2));
                    }
                    i += optlen;
                }
            }
        }
        Ok((
            TcpHeader {
                src_port: be16(buf, 0),
                dst_port: be16(buf, 2),
                seq: be32(buf, 4),
                ack: be32(buf, 8),
                flags: TcpFlags(buf[13] & 0x3F),
                window: be16(buf, 14),
                urgent: be16(buf, 18),
                mss,
            },
            data_off,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::IpProto;
    use std::net::Ipv4Addr;

    fn base() -> TcpHeader {
        TcpHeader {
            src_port: 5000,
            dst_port: 80,
            seq: 0x11223344,
            ack: 0x55667788,
            flags: TcpFlags::ACK | TcpFlags::PSH,
            window: 8192,
            urgent: 0,
            mss: None,
        }
    }

    fn ip_for(transport_len: usize) -> Ipv4Header {
        Ipv4Header::new(
            Ipv4Addr::new(1, 2, 3, 4),
            Ipv4Addr::new(5, 6, 7, 8),
            IpProto::Tcp,
            transport_len,
        )
    }

    #[test]
    fn roundtrip_no_options() {
        let h = base();
        let bytes = h.encode();
        let (parsed, len) = TcpHeader::parse(&bytes).unwrap();
        assert_eq!(parsed, h);
        assert_eq!(len, TCP_HDR_LEN);
    }

    #[test]
    fn roundtrip_with_mss() {
        let mut h = base();
        h.flags = TcpFlags::SYN;
        h.mss = Some(1460);
        let bytes = h.encode();
        let (parsed, len) = TcpHeader::parse(&bytes).unwrap();
        assert_eq!(parsed.mss, Some(1460));
        assert_eq!(len, 24);
    }

    #[test]
    fn checksum_roundtrip() {
        let payload = b"segment payload bytes";
        let h = base();
        let ip = ip_for(h.header_len() + payload.len());
        let bytes = h.encode_with_checksum(&ip, payload.len(), std::iter::once(&payload[..]));
        assert!(TcpHeader::verify(
            &ip,
            &bytes,
            payload.len(),
            std::iter::once(&payload[..])
        ));
    }

    #[test]
    fn checksum_detects_corruption() {
        let payload = b"segment payload bytes".to_vec();
        let h = base();
        let ip = ip_for(h.header_len() + payload.len());
        let bytes = h.encode_with_checksum(&ip, payload.len(), std::iter::once(&payload[..]));
        let mut bad = payload.clone();
        bad[3] ^= 0x40;
        assert!(!TcpHeader::verify(
            &ip,
            &bytes,
            bad.len(),
            std::iter::once(&bad[..])
        ));
    }

    #[test]
    fn flags_operations() {
        let f = TcpFlags::SYN | TcpFlags::ACK;
        assert!(f.contains(TcpFlags::SYN));
        assert!(f.contains(TcpFlags::ACK));
        assert!(!f.contains(TcpFlags::FIN));
        assert_eq!(format!("{:?}", f), "[SYN|ACK]");
    }

    #[test]
    fn parse_skips_nop_options() {
        let mut h = base();
        h.mss = Some(536);
        let mut bytes = h.encode();
        // Replace the MSS option with NOP NOP MSS? Instead: append NOPs by
        // growing data offset. Build manually: 28-byte header.
        bytes[12] = (7u8) << 4; // 28 bytes.
        bytes.truncate(20);
        bytes.extend_from_slice(&[1, 1, 2, 4, 0x02, 0x18, 0, 0]); // NOP NOP MSS=536 pad.
        let (parsed, len) = TcpHeader::parse(&bytes).unwrap();
        assert_eq!(len, 28);
        assert_eq!(parsed.mss, Some(536));
    }

    #[test]
    fn parse_rejects_malformed_options() {
        let mut h = base();
        h.mss = Some(536);
        let mut bytes = h.encode();
        bytes[21] = 1; // Option length 1 is invalid.
        assert_eq!(TcpHeader::parse(&bytes), Err(WireError::BadField));
    }

    #[test]
    fn parse_rejects_short_buffers() {
        assert_eq!(TcpHeader::parse(&[0u8; 19]), Err(WireError::Truncated));
        let mut bytes = base().encode();
        bytes[12] = 0x30; // Data offset 12 < 20.
        assert_eq!(TcpHeader::parse(&bytes), Err(WireError::BadLength));
    }
}
