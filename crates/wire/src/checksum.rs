//! The Internet checksum (RFC 1071).
//!
//! The accumulator form handles data spread across mbuf segments of odd
//! lengths: byte-position parity is tracked so the result is identical
//! to checksumming the concatenated bytes.

/// One's-complement sum accumulator.
#[derive(Clone, Copy, Debug, Default)]
pub struct Checksum {
    sum: u32,
    /// True when an odd number of bytes has been folded in so far (the
    /// next byte is a low-order byte).
    odd: bool,
}

impl Checksum {
    /// A fresh accumulator.
    pub fn new() -> Checksum {
        Checksum::default()
    }

    /// Folds `data` into the sum, as if appended to all previous data.
    pub fn add_bytes(&mut self, data: &[u8]) {
        let mut i = 0;
        if self.odd && !data.is_empty() {
            self.sum += u32::from(data[0]);
            self.odd = false;
            i = 1;
        }
        while i + 1 < data.len() {
            self.sum += u32::from(u16::from_be_bytes([data[i], data[i + 1]]));
            i += 2;
        }
        if i < data.len() {
            self.sum += u32::from(data[i]) << 8;
            self.odd = true;
        }
        // Partial fold to keep the sum bounded.
        self.sum = (self.sum & 0xFFFF) + (self.sum >> 16);
    }

    /// Folds a big-endian `u16` in (must be on an even byte boundary).
    pub fn add_u16(&mut self, v: u16) {
        debug_assert!(!self.odd, "add_u16 on odd boundary");
        self.sum += u32::from(v);
        self.sum = (self.sum & 0xFFFF) + (self.sum >> 16);
    }

    /// Folds a big-endian `u32` in (must be on an even byte boundary).
    pub fn add_u32(&mut self, v: u32) {
        self.add_u16((v >> 16) as u16);
        self.add_u16((v & 0xFFFF) as u16);
    }

    /// Finishes: folds carries and returns the one's complement.
    pub fn finish(self) -> u16 {
        let mut sum = self.sum;
        while sum >> 16 != 0 {
            sum = (sum & 0xFFFF) + (sum >> 16);
        }
        !(sum as u16)
    }
}

/// Checksums a contiguous buffer.
pub fn internet_checksum(data: &[u8]) -> u16 {
    let mut c = Checksum::new();
    c.add_bytes(data);
    c.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rfc1071_example() {
        // The worked example from RFC 1071 §3.
        let data = [0x00u8, 0x01, 0xf2, 0x03, 0xf4, 0xf5, 0xf6, 0xf7];
        let mut c = Checksum::new();
        c.add_bytes(&data);
        // RFC gives the sum 0xddf2 before complement.
        assert_eq!(c.finish(), !0xddf2);
    }

    #[test]
    fn zero_buffer_sums_to_ffff() {
        assert_eq!(internet_checksum(&[0u8; 10]), 0xFFFF);
    }

    #[test]
    fn verifying_with_checksum_field_gives_zero() {
        let mut data = vec![
            0x45u8, 0x00, 0x00, 0x1c, 0x12, 0x34, 0x00, 0x00, 0x40, 0x11, 0, 0,
        ];
        let ck = internet_checksum(&data);
        data[10] = (ck >> 8) as u8;
        data[11] = (ck & 0xff) as u8;
        assert_eq!(internet_checksum(&data), 0);
    }

    #[test]
    fn odd_length_handled() {
        let data = [1u8, 2, 3];
        // Manually: 0x0102 + 0x0300 = 0x0402 → !0x0402.
        assert_eq!(internet_checksum(&data), !0x0402);
    }

    #[test]
    fn segmented_equals_contiguous() {
        let data: Vec<u8> = (0..=255u8).cycle().take(1000).collect();
        let whole = internet_checksum(&data);
        for split in [1usize, 3, 7, 128, 999] {
            let mut c = Checksum::new();
            c.add_bytes(&data[..split]);
            c.add_bytes(&data[split..]);
            assert_eq!(c.finish(), whole, "split at {split}");
        }
        // Many odd-sized pieces.
        let mut c = Checksum::new();
        for chunk in data.chunks(13) {
            c.add_bytes(chunk);
        }
        assert_eq!(c.finish(), whole);
    }

    #[test]
    fn add_u16_u32_match_bytes() {
        let mut a = Checksum::new();
        a.add_u16(0x1234);
        a.add_u32(0xDEADBEEF);
        let mut b = Checksum::new();
        b.add_bytes(&[0x12, 0x34, 0xDE, 0xAD, 0xBE, 0xEF]);
        assert_eq!(a.finish(), b.finish());
    }

    #[test]
    fn carry_folding() {
        // All-0xFF data exercises repeated carries.
        let data = vec![0xFFu8; 64];
        assert_eq!(internet_checksum(&data), 0x0000);
    }
}
