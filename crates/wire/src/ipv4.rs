//! IPv4 header (RFC 791), including the fragmentation fields the
//! reassembly code uses.

use crate::{be16, be32, internet_checksum, put16, put32, WireError};
use std::net::Ipv4Addr;

/// Length of an IPv4 header without options.
pub const IPV4_HDR_LEN: usize = 20;

/// The `MF` (more fragments) flag bit in `frag_off` terms.
const FLAG_MF: u16 = 0x2000;
/// The `DF` (don't fragment) flag bit.
const FLAG_DF: u16 = 0x4000;

/// Transport protocols carried by IP that the stack understands.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum IpProto {
    /// ICMP (1).
    Icmp,
    /// TCP (6).
    Tcp,
    /// UDP (17).
    Udp,
    /// Anything else.
    Other(u8),
}

impl IpProto {
    /// The wire value.
    pub fn to_u8(self) -> u8 {
        match self {
            IpProto::Icmp => 1,
            IpProto::Tcp => 6,
            IpProto::Udp => 17,
            IpProto::Other(v) => v,
        }
    }

    /// From the wire value.
    pub fn from_u8(v: u8) -> IpProto {
        match v {
            1 => IpProto::Icmp,
            6 => IpProto::Tcp,
            17 => IpProto::Udp,
            other => IpProto::Other(other),
        }
    }
}

/// A parsed IPv4 header (options are not generated; incoming options are
/// skipped but counted in `header_len`).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Ipv4Header {
    /// Header length in bytes (20 without options).
    pub header_len: usize,
    /// Type of service.
    pub tos: u8,
    /// Total datagram length (header + payload).
    pub total_len: u16,
    /// Identification (for reassembly).
    pub ident: u16,
    /// Don't-fragment flag.
    pub dont_fragment: bool,
    /// More-fragments flag.
    pub more_fragments: bool,
    /// Fragment offset in bytes (multiple of 8).
    pub frag_offset: u16,
    /// Time to live.
    pub ttl: u8,
    /// Carried protocol.
    pub proto: IpProto,
    /// Source address.
    pub src: Ipv4Addr,
    /// Destination address.
    pub dst: Ipv4Addr,
}

impl Ipv4Header {
    /// Builds a header for a fresh, unfragmented datagram.
    pub fn new(src: Ipv4Addr, dst: Ipv4Addr, proto: IpProto, payload_len: usize) -> Ipv4Header {
        Ipv4Header {
            header_len: IPV4_HDR_LEN,
            tos: 0,
            total_len: (IPV4_HDR_LEN + payload_len) as u16,
            ident: 0,
            dont_fragment: false,
            more_fragments: false,
            frag_offset: 0,
            ttl: 64,
            proto,
            src,
            dst,
        }
    }

    /// Payload length implied by the header.
    pub fn payload_len(&self) -> usize {
        usize::from(self.total_len).saturating_sub(self.header_len)
    }

    /// True if this datagram is one fragment of a larger one.
    pub fn is_fragment(&self) -> bool {
        self.more_fragments || self.frag_offset != 0
    }

    /// Encodes into 20 bytes with a correct header checksum.
    pub fn encode(&self) -> [u8; IPV4_HDR_LEN] {
        let mut b = [0u8; IPV4_HDR_LEN];
        b[0] = 0x40 | ((IPV4_HDR_LEN / 4) as u8);
        b[1] = self.tos;
        put16(&mut b, 2, self.total_len);
        put16(&mut b, 4, self.ident);
        let mut fo = self.frag_offset / 8;
        if self.more_fragments {
            fo |= FLAG_MF;
        }
        if self.dont_fragment {
            fo |= FLAG_DF;
        }
        put16(&mut b, 6, fo);
        b[8] = self.ttl;
        b[9] = self.proto.to_u8();
        put32(&mut b, 12, u32::from(self.src));
        put32(&mut b, 16, u32::from(self.dst));
        let ck = internet_checksum(&b);
        put16(&mut b, 10, ck);
        b
    }

    /// Parses and verifies the header at the front of `buf`.
    pub fn parse(buf: &[u8]) -> Result<Ipv4Header, WireError> {
        if buf.len() < IPV4_HDR_LEN {
            return Err(WireError::Truncated);
        }
        if buf[0] >> 4 != 4 {
            return Err(WireError::BadVersion);
        }
        let header_len = usize::from(buf[0] & 0x0F) * 4;
        if header_len < IPV4_HDR_LEN || buf.len() < header_len {
            return Err(WireError::BadLength);
        }
        if internet_checksum(&buf[..header_len]) != 0 {
            return Err(WireError::BadChecksum);
        }
        let total_len = be16(buf, 2);
        if usize::from(total_len) < header_len || usize::from(total_len) > buf.len() {
            return Err(WireError::BadLength);
        }
        let fo = be16(buf, 6);
        Ok(Ipv4Header {
            header_len,
            tos: buf[1],
            total_len,
            ident: be16(buf, 4),
            dont_fragment: fo & FLAG_DF != 0,
            more_fragments: fo & FLAG_MF != 0,
            frag_offset: (fo & 0x1FFF) * 8,
            ttl: buf[8],
            proto: IpProto::from_u8(buf[9]),
            src: Ipv4Addr::from(be32(buf, 12)),
            dst: Ipv4Addr::from(be32(buf, 16)),
        })
    }

    /// The pseudo-header checksum contribution used by TCP and UDP.
    pub fn pseudo_checksum(&self, transport_len: usize) -> crate::Checksum {
        let mut c = crate::Checksum::new();
        c.add_u32(u32::from(self.src));
        c.add_u32(u32::from(self.dst));
        c.add_u16(u16::from(self.proto.to_u8()));
        c.add_u16(transport_len as u16);
        c
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hdr() -> Ipv4Header {
        Ipv4Header::new(
            Ipv4Addr::new(10, 0, 0, 1),
            Ipv4Addr::new(10, 0, 0, 2),
            IpProto::Udp,
            100,
        )
    }

    #[test]
    fn roundtrip() {
        let h = hdr();
        let mut bytes = h.encode().to_vec();
        bytes.extend_from_slice(&[0u8; 100]);
        let parsed = Ipv4Header::parse(&bytes).unwrap();
        assert_eq!(parsed, h);
        assert_eq!(parsed.payload_len(), 100);
    }

    #[test]
    fn checksum_detects_corruption() {
        let mut bytes = hdr().encode().to_vec();
        bytes.extend_from_slice(&[0u8; 100]);
        bytes[12] ^= 0xFF;
        assert_eq!(Ipv4Header::parse(&bytes), Err(WireError::BadChecksum));
    }

    #[test]
    fn fragment_flags_roundtrip() {
        let mut h = hdr();
        h.more_fragments = true;
        h.frag_offset = 1480;
        h.ident = 0x1234;
        let mut bytes = h.encode().to_vec();
        bytes.extend_from_slice(&[0u8; 100]);
        let parsed = Ipv4Header::parse(&bytes).unwrap();
        assert!(parsed.more_fragments);
        assert!(parsed.is_fragment());
        assert_eq!(parsed.frag_offset, 1480);
        assert_eq!(parsed.ident, 0x1234);
    }

    #[test]
    fn df_flag_roundtrip() {
        let mut h = hdr();
        h.dont_fragment = true;
        let mut bytes = h.encode().to_vec();
        bytes.extend_from_slice(&[0u8; 100]);
        assert!(Ipv4Header::parse(&bytes).unwrap().dont_fragment);
    }

    #[test]
    fn rejects_bad_version() {
        let mut bytes = hdr().encode().to_vec();
        bytes.extend_from_slice(&[0u8; 100]);
        bytes[0] = 0x65;
        assert_eq!(Ipv4Header::parse(&bytes), Err(WireError::BadVersion));
    }

    #[test]
    fn rejects_truncated_and_short_total_len() {
        assert_eq!(Ipv4Header::parse(&[0u8; 10]), Err(WireError::Truncated));
        let mut h = hdr();
        h.total_len = 500;
        let bytes = h.encode();
        // Buffer shorter than total_len.
        assert_eq!(Ipv4Header::parse(&bytes), Err(WireError::BadLength));
    }

    #[test]
    fn proto_mapping() {
        assert_eq!(IpProto::from_u8(6), IpProto::Tcp);
        assert_eq!(IpProto::from_u8(17), IpProto::Udp);
        assert_eq!(IpProto::Other(89).to_u8(), 89);
    }
}
