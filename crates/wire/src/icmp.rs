//! A minimal ICMP (RFC 792): echo request/reply and the error messages
//! the stack generates (destination unreachable).

use crate::{be16, internet_checksum, put16, WireError};

/// ICMP message types the stack understands.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum IcmpType {
    /// Echo reply (0).
    EchoReply,
    /// Destination unreachable (3), with code.
    DestUnreachable(u8),
    /// Echo request (8).
    EchoRequest,
    /// Time exceeded (11), with code.
    TimeExceeded(u8),
    /// Anything else: (type, code).
    Other(u8, u8),
}

impl IcmpType {
    fn to_wire(self) -> (u8, u8) {
        match self {
            IcmpType::EchoReply => (0, 0),
            IcmpType::DestUnreachable(code) => (3, code),
            IcmpType::EchoRequest => (8, 0),
            IcmpType::TimeExceeded(code) => (11, code),
            IcmpType::Other(t, c) => (t, c),
        }
    }

    fn from_wire(t: u8, c: u8) -> IcmpType {
        match (t, c) {
            (0, 0) => IcmpType::EchoReply,
            (3, code) => IcmpType::DestUnreachable(code),
            (8, 0) => IcmpType::EchoRequest,
            (11, code) => IcmpType::TimeExceeded(code),
            (t, c) => IcmpType::Other(t, c),
        }
    }
}

/// Destination-unreachable code: port unreachable.
pub const UNREACH_PORT: u8 = 3;
/// Destination-unreachable code: host unreachable.
pub const UNREACH_HOST: u8 = 1;

/// A parsed ICMP message.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct IcmpMessage {
    /// Type and code.
    pub kind: IcmpType,
    /// For echo: identifier. For errors: unused.
    pub ident: u16,
    /// For echo: sequence number. For errors: unused.
    pub seq: u16,
    /// Payload (for errors: the offending IP header + 8 bytes).
    pub payload: Vec<u8>,
}

impl IcmpMessage {
    /// An echo request.
    pub fn echo_request(ident: u16, seq: u16, payload: Vec<u8>) -> IcmpMessage {
        IcmpMessage {
            kind: IcmpType::EchoRequest,
            ident,
            seq,
            payload,
        }
    }

    /// The echo reply answering this request.
    pub fn echo_reply(&self) -> IcmpMessage {
        IcmpMessage {
            kind: IcmpType::EchoReply,
            ident: self.ident,
            seq: self.seq,
            payload: self.payload.clone(),
        }
    }

    /// A destination-unreachable error quoting `original` (the offending
    /// IP header plus the first 8 payload bytes, per RFC 792).
    pub fn unreachable(code: u8, original: &[u8]) -> IcmpMessage {
        IcmpMessage {
            kind: IcmpType::DestUnreachable(code),
            ident: 0,
            seq: 0,
            payload: original[..original.len().min(28)].to_vec(),
        }
    }

    /// Encodes with a correct ICMP checksum.
    pub fn encode(&self) -> Vec<u8> {
        let (t, c) = self.kind.to_wire();
        let mut b = vec![0u8; 8 + self.payload.len()];
        b[0] = t;
        b[1] = c;
        put16(&mut b, 4, self.ident);
        put16(&mut b, 6, self.seq);
        b[8..].copy_from_slice(&self.payload);
        let ck = internet_checksum(&b);
        put16(&mut b, 2, ck);
        b
    }

    /// Parses and verifies a message.
    pub fn parse(buf: &[u8]) -> Result<IcmpMessage, WireError> {
        if buf.len() < 8 {
            return Err(WireError::Truncated);
        }
        if internet_checksum(buf) != 0 {
            return Err(WireError::BadChecksum);
        }
        Ok(IcmpMessage {
            kind: IcmpType::from_wire(buf[0], buf[1]),
            ident: be16(buf, 4),
            seq: be16(buf, 6),
            payload: buf[8..].to_vec(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn echo_roundtrip() {
        let req = IcmpMessage::echo_request(42, 7, b"ping data".to_vec());
        let bytes = req.encode();
        let parsed = IcmpMessage::parse(&bytes).unwrap();
        assert_eq!(parsed, req);
        let reply = parsed.echo_reply();
        assert_eq!(reply.kind, IcmpType::EchoReply);
        assert_eq!(reply.ident, 42);
        assert_eq!(reply.payload, b"ping data");
    }

    #[test]
    fn checksum_detects_corruption() {
        let mut bytes = IcmpMessage::echo_request(1, 1, vec![1, 2, 3]).encode();
        bytes[9] ^= 0xFF;
        assert_eq!(IcmpMessage::parse(&bytes), Err(WireError::BadChecksum));
    }

    #[test]
    fn unreachable_quotes_original() {
        let original = vec![0x45u8; 60];
        let msg = IcmpMessage::unreachable(UNREACH_PORT, &original);
        assert_eq!(msg.payload.len(), 28);
        let parsed = IcmpMessage::parse(&msg.encode()).unwrap();
        assert_eq!(parsed.kind, IcmpType::DestUnreachable(UNREACH_PORT));
    }

    #[test]
    fn short_message_rejected() {
        assert_eq!(IcmpMessage::parse(&[0u8; 7]), Err(WireError::Truncated));
    }
}
