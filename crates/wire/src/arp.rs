//! ARP for IPv4-over-Ethernet (RFC 826).
//!
//! In the paper's architecture ARP is "exceptional network packet"
//! traffic handled by the operating system server, which owns the
//! shared ARP cache; applications only consume cached entries.

use crate::{be16, put16, EtherAddr, WireError};
use std::net::Ipv4Addr;

/// Length of an IPv4-over-Ethernet ARP packet.
pub const ARP_LEN: usize = 28;

/// ARP operation.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ArpOp {
    /// Who-has request.
    Request,
    /// Is-at reply.
    Reply,
}

/// An ARP packet for IPv4 over Ethernet.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct ArpPacket {
    /// Operation.
    pub op: ArpOp,
    /// Sender hardware address.
    pub sender_mac: EtherAddr,
    /// Sender protocol address.
    pub sender_ip: Ipv4Addr,
    /// Target hardware address (zero in requests).
    pub target_mac: EtherAddr,
    /// Target protocol address.
    pub target_ip: Ipv4Addr,
}

impl ArpPacket {
    /// A who-has request for `target_ip`.
    pub fn request(sender_mac: EtherAddr, sender_ip: Ipv4Addr, target_ip: Ipv4Addr) -> ArpPacket {
        ArpPacket {
            op: ArpOp::Request,
            sender_mac,
            sender_ip,
            target_mac: EtherAddr::default(),
            target_ip,
        }
    }

    /// The is-at reply answering `request`.
    pub fn reply_to(&self, my_mac: EtherAddr) -> ArpPacket {
        ArpPacket {
            op: ArpOp::Reply,
            sender_mac: my_mac,
            sender_ip: self.target_ip,
            target_mac: self.sender_mac,
            target_ip: self.sender_ip,
        }
    }

    /// Encodes into 28 bytes.
    pub fn encode(&self) -> [u8; ARP_LEN] {
        let mut b = [0u8; ARP_LEN];
        put16(&mut b, 0, 1); // Ethernet hardware type.
        put16(&mut b, 2, 0x0800); // IPv4 protocol type.
        b[4] = 6;
        b[5] = 4;
        put16(
            &mut b,
            6,
            match self.op {
                ArpOp::Request => 1,
                ArpOp::Reply => 2,
            },
        );
        b[8..14].copy_from_slice(&self.sender_mac.0);
        b[14..18].copy_from_slice(&self.sender_ip.octets());
        b[18..24].copy_from_slice(&self.target_mac.0);
        b[24..28].copy_from_slice(&self.target_ip.octets());
        b
    }

    /// Parses from the front of `buf`.
    pub fn parse(buf: &[u8]) -> Result<ArpPacket, WireError> {
        if buf.len() < ARP_LEN {
            return Err(WireError::Truncated);
        }
        if be16(buf, 0) != 1 || be16(buf, 2) != 0x0800 || buf[4] != 6 || buf[5] != 4 {
            return Err(WireError::BadField);
        }
        let op = match be16(buf, 6) {
            1 => ArpOp::Request,
            2 => ArpOp::Reply,
            _ => return Err(WireError::BadField),
        };
        let mut sender_mac = [0u8; 6];
        let mut target_mac = [0u8; 6];
        sender_mac.copy_from_slice(&buf[8..14]);
        target_mac.copy_from_slice(&buf[18..24]);
        let ip4 = |off: usize| Ipv4Addr::new(buf[off], buf[off + 1], buf[off + 2], buf[off + 3]);
        Ok(ArpPacket {
            op,
            sender_mac: EtherAddr(sender_mac),
            sender_ip: ip4(14),
            target_mac: EtherAddr(target_mac),
            target_ip: ip4(24),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_reply_roundtrip() {
        let req = ArpPacket::request(
            EtherAddr::local(1),
            Ipv4Addr::new(10, 0, 0, 1),
            Ipv4Addr::new(10, 0, 0, 2),
        );
        let bytes = req.encode();
        let parsed = ArpPacket::parse(&bytes).unwrap();
        assert_eq!(parsed, req);

        let reply = parsed.reply_to(EtherAddr::local(2));
        assert_eq!(reply.op, ArpOp::Reply);
        assert_eq!(reply.sender_ip, Ipv4Addr::new(10, 0, 0, 2));
        assert_eq!(reply.target_mac, EtherAddr::local(1));
        assert_eq!(reply.target_ip, Ipv4Addr::new(10, 0, 0, 1));
        let bytes = reply.encode();
        assert_eq!(ArpPacket::parse(&bytes).unwrap(), reply);
    }

    #[test]
    fn rejects_short_and_bad_fields() {
        assert_eq!(ArpPacket::parse(&[0u8; 27]), Err(WireError::Truncated));
        let mut bytes = ArpPacket::request(
            EtherAddr::local(1),
            Ipv4Addr::UNSPECIFIED,
            Ipv4Addr::UNSPECIFIED,
        )
        .encode();
        bytes[4] = 8; // Wrong hardware address length.
        assert_eq!(ArpPacket::parse(&bytes), Err(WireError::BadField));
        let mut bytes2 = ArpPacket::request(
            EtherAddr::local(1),
            Ipv4Addr::UNSPECIFIED,
            Ipv4Addr::UNSPECIFIED,
        )
        .encode();
        bytes2[7] = 9; // Unknown op.
        assert_eq!(ArpPacket::parse(&bytes2), Err(WireError::BadField));
    }
}
