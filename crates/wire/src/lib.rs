//! Wire formats: Ethernet II, ARP, IPv4, ICMP, UDP and TCP headers, and
//! the Internet checksum.
//!
//! Every packet that crosses the simulated Ethernet is a real byte
//! buffer produced and consumed by these codecs, so the packet filter
//! really demultiplexes on header bytes and the protocol stacks really
//! verify checksums — exactly the work the paper's Table 4 prices.

pub mod arp;
pub mod checksum;
pub mod ether;
pub mod icmp;
pub mod ipv4;
pub mod tcp;
pub mod udp;

pub use arp::{ArpOp, ArpPacket};
pub use checksum::{internet_checksum, Checksum};
pub use ether::{
    EtherAddr, EtherType, EthernetHeader, ETHER_HDR_LEN, ETHER_MAX_PAYLOAD, ETHER_MIN_FRAME,
};
pub use icmp::{IcmpMessage, IcmpType};
pub use ipv4::{IpProto, Ipv4Header, IPV4_HDR_LEN};
pub use tcp::{TcpFlags, TcpHeader, TCP_HDR_LEN};
pub use udp::{UdpHeader, UDP_HDR_LEN};

use std::fmt;

/// Errors produced when parsing a wire format.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum WireError {
    /// The buffer is shorter than the fixed header.
    Truncated,
    /// A length field disagrees with the buffer.
    BadLength,
    /// A version or fixed-constant field has the wrong value.
    BadVersion,
    /// The checksum does not verify.
    BadChecksum,
    /// An unsupported or malformed option/field.
    BadField,
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            WireError::Truncated => "truncated packet",
            WireError::BadLength => "inconsistent length field",
            WireError::BadVersion => "bad version/constant field",
            WireError::BadChecksum => "checksum mismatch",
            WireError::BadField => "malformed field",
        };
        f.write_str(s)
    }
}

impl std::error::Error for WireError {}

pub(crate) fn be16(b: &[u8], off: usize) -> u16 {
    u16::from_be_bytes([b[off], b[off + 1]])
}

pub(crate) fn be32(b: &[u8], off: usize) -> u32 {
    u32::from_be_bytes([b[off], b[off + 1], b[off + 2], b[off + 3]])
}

pub(crate) fn put16(b: &mut [u8], off: usize, v: u16) {
    b[off..off + 2].copy_from_slice(&v.to_be_bytes());
}

pub(crate) fn put32(b: &mut [u8], off: usize, v: u32) {
    b[off..off + 4].copy_from_slice(&v.to_be_bytes());
}
