//! UDP header (RFC 768).

use crate::{be16, put16, Checksum, Ipv4Header, WireError};

/// Length of a UDP header.
pub const UDP_HDR_LEN: usize = 8;

/// A UDP header.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct UdpHeader {
    /// Source port.
    pub src_port: u16,
    /// Destination port.
    pub dst_port: u16,
    /// Length of header plus payload.
    pub len: u16,
    /// Checksum as seen on the wire (0 = not computed).
    pub checksum: u16,
}

impl UdpHeader {
    /// Builds a header for a payload of `payload_len` bytes.
    pub fn new(src_port: u16, dst_port: u16, payload_len: usize) -> UdpHeader {
        UdpHeader {
            src_port,
            dst_port,
            len: (UDP_HDR_LEN + payload_len) as u16,
            checksum: 0,
        }
    }

    /// Encodes with the checksum field as stored (use
    /// [`checksum_for`](UdpHeader::checksum_for) first to fill it).
    pub fn encode(&self) -> [u8; UDP_HDR_LEN] {
        let mut b = [0u8; UDP_HDR_LEN];
        put16(&mut b, 0, self.src_port);
        put16(&mut b, 2, self.dst_port);
        put16(&mut b, 4, self.len);
        put16(&mut b, 6, self.checksum);
        b
    }

    /// Computes the UDP checksum over pseudo-header, header and payload
    /// segments, returning the value to store (0 is sent as 0xFFFF per
    /// RFC 768).
    pub fn checksum_for<'a>(
        &self,
        ip: &Ipv4Header,
        payload: impl Iterator<Item = &'a [u8]>,
    ) -> u16 {
        let mut c = ip.pseudo_checksum(usize::from(self.len));
        let mut hdr = *self;
        hdr.checksum = 0;
        c.add_bytes(&hdr.encode());
        for seg in payload {
            c.add_bytes(seg);
        }
        match c.finish() {
            0 => 0xFFFF,
            ck => ck,
        }
    }

    /// Verifies the checksum of a received datagram. A zero checksum
    /// means the sender did not compute one.
    pub fn verify<'a>(
        &self,
        ip: &Ipv4Header,
        header_bytes: &[u8],
        payload: impl Iterator<Item = &'a [u8]>,
    ) -> bool {
        if self.checksum == 0 {
            return true;
        }
        let mut c: Checksum = ip.pseudo_checksum(usize::from(self.len));
        c.add_bytes(&header_bytes[..UDP_HDR_LEN]);
        for seg in payload {
            c.add_bytes(seg);
        }
        c.finish() == 0
    }

    /// Parses from the front of `buf`.
    pub fn parse(buf: &[u8]) -> Result<UdpHeader, WireError> {
        if buf.len() < UDP_HDR_LEN {
            return Err(WireError::Truncated);
        }
        let len = be16(buf, 4);
        if usize::from(len) < UDP_HDR_LEN {
            return Err(WireError::BadLength);
        }
        Ok(UdpHeader {
            src_port: be16(buf, 0),
            dst_port: be16(buf, 2),
            len,
            checksum: be16(buf, 6),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::IpProto;
    use std::net::Ipv4Addr;

    fn ip_for(payload_len: usize) -> Ipv4Header {
        Ipv4Header::new(
            Ipv4Addr::new(192, 168, 1, 1),
            Ipv4Addr::new(192, 168, 1, 2),
            IpProto::Udp,
            UDP_HDR_LEN + payload_len,
        )
    }

    #[test]
    fn roundtrip() {
        let h = UdpHeader::new(1234, 53, 40);
        let parsed = UdpHeader::parse(&h.encode()).unwrap();
        assert_eq!(parsed, h);
        assert_eq!(parsed.len, 48);
    }

    #[test]
    fn checksum_verifies() {
        let payload = b"hello world";
        let ip = ip_for(payload.len());
        let mut h = UdpHeader::new(1000, 2000, payload.len());
        h.checksum = h.checksum_for(&ip, std::iter::once(&payload[..]));
        let bytes = h.encode();
        assert!(h.verify(&ip, &bytes, std::iter::once(&payload[..])));
    }

    #[test]
    fn checksum_detects_payload_corruption() {
        let payload = b"hello world".to_vec();
        let ip = ip_for(payload.len());
        let mut h = UdpHeader::new(1000, 2000, payload.len());
        h.checksum = h.checksum_for(&ip, std::iter::once(&payload[..]));
        let bytes = h.encode();
        let mut bad = payload.clone();
        bad[0] ^= 0x01;
        assert!(!h.verify(&ip, &bytes, std::iter::once(&bad[..])));
    }

    #[test]
    fn zero_checksum_skips_verification() {
        let payload = b"x";
        let ip = ip_for(1);
        let h = UdpHeader::new(1, 2, 1);
        assert_eq!(h.checksum, 0);
        assert!(h.verify(&ip, &h.encode(), std::iter::once(&payload[..])));
    }

    #[test]
    fn checksum_never_zero_on_wire() {
        // Craft a datagram whose sum would be zero; the encoder must emit
        // 0xFFFF instead. Easiest check: the function never returns 0.
        for seed in 0u16..64 {
            let payload = seed.to_be_bytes();
            let ip = ip_for(2);
            let h = UdpHeader::new(seed, seed.wrapping_add(1), 2);
            assert_ne!(h.checksum_for(&ip, std::iter::once(&payload[..])), 0);
        }
    }

    #[test]
    fn parse_rejects_bad_len() {
        let mut b = UdpHeader::new(1, 2, 3).encode();
        b[4] = 0;
        b[5] = 4; // len = 4 < header.
        assert_eq!(UdpHeader::parse(&b), Err(WireError::BadLength));
        assert_eq!(UdpHeader::parse(&[0u8; 7]), Err(WireError::Truncated));
    }
}
