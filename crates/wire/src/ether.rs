//! Ethernet II framing.

use crate::{be16, put16, WireError};
use std::fmt;

/// Length of an Ethernet II header.
pub const ETHER_HDR_LEN: usize = 14;

/// Maximum Ethernet payload (the MTU on 10 Mb/s Ethernet).
pub const ETHER_MAX_PAYLOAD: usize = 1500;

/// Minimum frame length on the wire, excluding FCS.
pub const ETHER_MIN_FRAME: usize = 60;

/// A 48-bit MAC address.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct EtherAddr(pub [u8; 6]);

impl EtherAddr {
    /// The broadcast address.
    pub const BROADCAST: EtherAddr = EtherAddr([0xFF; 6]);

    /// A deterministic locally-administered address derived from an id.
    pub fn local(id: u32) -> EtherAddr {
        let b = id.to_be_bytes();
        EtherAddr([0x02, 0x00, b[0], b[1], b[2], b[3]])
    }

    /// True if this is the broadcast address.
    pub fn is_broadcast(self) -> bool {
        self == EtherAddr::BROADCAST
    }
}

impl fmt::Debug for EtherAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self)
    }
}

impl fmt::Display for EtherAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let a = self.0;
        write!(
            f,
            "{:02x}:{:02x}:{:02x}:{:02x}:{:02x}:{:02x}",
            a[0], a[1], a[2], a[3], a[4], a[5]
        )
    }
}

/// Ethernet payload protocol.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum EtherType {
    /// IPv4 (0x0800).
    Ipv4,
    /// ARP (0x0806).
    Arp,
    /// Anything else (preserved verbatim).
    Other(u16),
}

impl EtherType {
    /// The wire value.
    pub fn to_u16(self) -> u16 {
        match self {
            EtherType::Ipv4 => 0x0800,
            EtherType::Arp => 0x0806,
            EtherType::Other(v) => v,
        }
    }

    /// From the wire value.
    pub fn from_u16(v: u16) -> EtherType {
        match v {
            0x0800 => EtherType::Ipv4,
            0x0806 => EtherType::Arp,
            other => EtherType::Other(other),
        }
    }
}

/// An Ethernet II header.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct EthernetHeader {
    /// Destination MAC.
    pub dst: EtherAddr,
    /// Source MAC.
    pub src: EtherAddr,
    /// Payload protocol.
    pub ethertype: EtherType,
}

impl EthernetHeader {
    /// Encodes into a 14-byte array.
    pub fn encode(&self) -> [u8; ETHER_HDR_LEN] {
        let mut b = [0u8; ETHER_HDR_LEN];
        b[0..6].copy_from_slice(&self.dst.0);
        b[6..12].copy_from_slice(&self.src.0);
        put16(&mut b, 12, self.ethertype.to_u16());
        b
    }

    /// Parses from the front of `buf`.
    pub fn parse(buf: &[u8]) -> Result<EthernetHeader, WireError> {
        if buf.len() < ETHER_HDR_LEN {
            return Err(WireError::Truncated);
        }
        let mut dst = [0u8; 6];
        let mut src = [0u8; 6];
        dst.copy_from_slice(&buf[0..6]);
        src.copy_from_slice(&buf[6..12]);
        Ok(EthernetHeader {
            dst: EtherAddr(dst),
            src: EtherAddr(src),
            ethertype: EtherType::from_u16(be16(buf, 12)),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let h = EthernetHeader {
            dst: EtherAddr::BROADCAST,
            src: EtherAddr::local(7),
            ethertype: EtherType::Arp,
        };
        let bytes = h.encode();
        assert_eq!(EthernetHeader::parse(&bytes).unwrap(), h);
    }

    #[test]
    fn parse_truncated() {
        assert_eq!(EthernetHeader::parse(&[0u8; 13]), Err(WireError::Truncated));
    }

    #[test]
    fn ethertype_values() {
        assert_eq!(EtherType::Ipv4.to_u16(), 0x0800);
        assert_eq!(EtherType::from_u16(0x0806), EtherType::Arp);
        assert_eq!(EtherType::from_u16(0x86DD), EtherType::Other(0x86DD));
    }

    #[test]
    fn local_addrs_are_distinct_and_unicast() {
        let a = EtherAddr::local(1);
        let b = EtherAddr::local(2);
        assert_ne!(a, b);
        assert!(!a.is_broadcast());
        assert_eq!(a.0[0] & 0x01, 0, "must not be multicast");
    }

    #[test]
    fn display_format() {
        assert_eq!(format!("{}", EtherAddr::BROADCAST), "ff:ff:ff:ff:ff:ff");
    }
}
