//! The cooperative `select` (§3.2).
//!
//! "Because these descriptors may not all be managed by the
//! application … it is not possible to implement select entirely
//! within the application. Similarly … the call cannot be implemented
//! entirely within the operating system." The library therefore:
//!
//! 1. checks the application-managed descriptors itself;
//! 2. if none is ready, reports their status to the server
//!    (`proxy_status`) and issues one server-side `select` covering
//!    *all* watched sessions;
//! 3. when a local descriptor later becomes ready, the event router
//!    sends a `proxy_status`, "forcing any relevant outstanding selects
//!    to return";
//! 4. "in cases where all descriptors are managed by the application,
//!    the operating system is not involved" — the wait is entirely
//!    local.

use crate::{AppHandle, AppLib, Fd, FdState};
use psd_server::{OsServer, SessionId};
use psd_sim::{Sim, SimTime};

/// The result of a `select`.
#[derive(Debug, Default, Clone)]
pub struct SelectOutcome {
    /// Descriptors ready for reading.
    pub readable: Vec<Fd>,
    /// Descriptors ready for writing.
    pub writable: Vec<Fd>,
    /// True if the call returned because the timeout expired.
    pub timed_out: bool,
}

impl SelectOutcome {
    /// True if nothing became ready.
    pub fn is_empty(&self) -> bool {
        self.readable.is_empty() && self.writable.is_empty()
    }
}

/// Completion callback.
pub type SelectDone = Box<dyn FnOnce(&mut Sim, SelectOutcome)>;

pub(crate) struct LocalWaiter {
    read: Vec<Fd>,
    write: Vec<Fd>,
    done: Option<SelectDone>,
}

impl AppLib {
    /// `select(2)` over descriptors. Completion is asynchronous via
    /// `done`; an immediate-ready set completes at the current time.
    pub fn select(
        this: &AppHandle,
        sim: &mut Sim,
        read: Vec<Fd>,
        write: Vec<Fd>,
        timeout: Option<SimTime>,
        done: SelectDone,
    ) {
        // Phase 1: local check.
        let outcome = poll_sets(this, &read, &write);
        if !outcome.is_empty() {
            let at = sim.now();
            sim.at(at, move |sim| done(sim, outcome));
            return;
        }

        // Classify descriptors.
        let (has_remote, local_sessions, remote_sessions) = {
            let app = this.borrow();
            let mut has_remote = false;
            let mut local_sessions: Vec<(Fd, SessionId)> = Vec::new();
            let mut remote_sessions: Vec<(Fd, SessionId, bool, bool)> = Vec::new();
            for (fd, want_r, want_w) in read
                .iter()
                .map(|f| (*f, true, false))
                .chain(write.iter().map(|f| (*f, false, true)))
            {
                match app.fds.get(&fd).map(|e| &e.state) {
                    Some(FdState::Session(sid)) => {
                        has_remote = true;
                        remote_sessions.push((fd, *sid, want_r, want_w));
                    }
                    Some(FdState::Local {
                        session: Some(sid), ..
                    }) => local_sessions.push((fd, *sid)),
                    _ => {}
                }
            }
            (has_remote, local_sessions, remote_sessions)
        };

        if !has_remote {
            // Entirely application-managed: wait locally; the server is
            // not involved.
            this.borrow_mut().local_selects.push(LocalWaiter {
                read,
                write,
                done: Some(done),
            });
            let idx = this.borrow().local_selects.len() - 1;
            if let Some(t) = timeout {
                let weak = this.borrow().me.clone();
                sim.after(t, move |sim| {
                    let Some(app) = weak.upgrade() else { return };
                    let waiter = {
                        let mut a = app.borrow_mut();
                        if idx < a.local_selects.len() && a.local_selects[idx].done.is_some() {
                            Some(a.local_selects.remove(idx))
                        } else {
                            None
                        }
                    };
                    if let Some(w) = waiter {
                        let mut outcome = poll_sets(&app, &w.read, &w.write);
                        outcome.timed_out = outcome.is_empty();
                        if let Some(done) = w.done {
                            done(sim, outcome);
                        }
                    }
                });
            }
            return;
        }

        // Cooperative phase: mark local descriptors watched and report
        // their (not-ready) status, then select at the server across
        // all sessions.
        for (fd, _) in &local_sessions {
            this.borrow_mut().watched.insert(*fd);
        }
        for (fd, _) in &local_sessions {
            AppLib::report_status(this, sim, *fd);
        }
        let server = this
            .borrow()
            .server
            .clone()
            .expect("remote fds need server");
        let watch: Vec<(SessionId, bool, bool)> = remote_sessions
            .iter()
            .map(|(_, sid, r, w)| (*sid, *r, *w))
            .chain(
                local_sessions
                    .iter()
                    .map(|(fd, sid)| (*sid, read.contains(fd), write.contains(fd))),
            )
            .collect();
        let weak = this.borrow().me.clone();
        let read2 = read.clone();
        let write2 = write.clone();
        let mut charge = this.borrow().begin(sim);
        this.borrow_mut().stats.control_rpcs += 1;
        OsServer::select(
            &server,
            sim,
            &mut charge,
            watch,
            timeout,
            Box::new(move |sim, _ready_sessions| {
                let Some(app) = weak.upgrade() else { return };
                for fd in &read2 {
                    app.borrow_mut().watched.remove(fd);
                }
                for fd in &write2 {
                    app.borrow_mut().watched.remove(fd);
                }
                let mut outcome = poll_sets(&app, &read2, &write2);
                outcome.timed_out = outcome.is_empty();
                done(sim, outcome);
            }),
        );
        this.borrow().finish(charge);
    }
}

fn poll_sets(this: &AppHandle, read: &[Fd], write: &[Fd]) -> SelectOutcome {
    let app = this.borrow();
    let mut outcome = SelectOutcome::default();
    for fd in read {
        if app.poll(*fd).0 {
            outcome.readable.push(*fd);
        }
    }
    for fd in write {
        if app.poll(*fd).1 {
            outcome.writable.push(*fd);
        }
    }
    outcome
}

/// Re-checks local select waiters after any event; fires those that
/// became ready.
pub(crate) fn rescan_local(this: &AppHandle, sim: &mut Sim) {
    loop {
        let fired = {
            let mut app = this.borrow_mut();
            let mut hit = None;
            for (i, w) in app.local_selects.iter().enumerate() {
                if w.done.is_none() {
                    continue;
                }
                // Peek readiness without holding the borrow past the
                // decision.
                let ready = {
                    let mut any = false;
                    for fd in &w.read {
                        if app.poll(*fd).0 {
                            any = true;
                            break;
                        }
                    }
                    if !any {
                        for fd in &w.write {
                            if app.poll(*fd).1 {
                                any = true;
                                break;
                            }
                        }
                    }
                    any
                };
                if ready {
                    hit = Some(i);
                    break;
                }
            }
            hit.map(|i| app.local_selects.remove(i))
        };
        match fired {
            Some(w) => {
                let outcome = poll_sets(this, &w.read, &w.write);
                if let Some(done) = w.done {
                    let at = sim.now();
                    sim.at(at, move |sim| done(sim, outcome));
                }
            }
            None => return,
        }
    }
}
