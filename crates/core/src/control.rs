//! Control-path proxy operations: the Table 1 calls.
//!
//! Each BSD call is mapped exactly as the paper's Table 1 specifies:
//! `socket`→`proxy_socket`, `bind`→`proxy_bind` (UDP migrates),
//! `connect`→`proxy_connect` (UDP and TCP migrate),
//! `listen`→`proxy_listen`, `accept`→`proxy_accept` (migrates the
//! passively opened session), `fork`→`proxy_return` for every session
//! before the server duplicates the process, and `close` migrates the
//! session back for the shutdown protocol.

use crate::{select, ApiMode, AppHandle, AppLib, Fd, FdEntry, FdState, SockEvent};
use psd_netstack::{InetAddr, SocketError};
use psd_server::{
    stack_sink_with_busy_report, MigratedSession, OsServer, Proto, RetryToken, RxSetup, SessionId,
    SessionReply,
};
use psd_sim::{Charge, Domain, FaultSite, Layer, Sim, SimTime};
use std::cell::{Cell, RefCell};
use std::rc::Rc;

/// Retry budget for deadline-bounded proxy RPCs: the initial deadline
/// is `4 * rpc_base` nanoseconds and doubles on every retry (bounded
/// exponential backoff), so the worst case charges `4+8+16+32 = 60`
/// RPC base times before the call fails with
/// [`SocketError::TimedOut`].
const RPC_MAX_ATTEMPTS: u32 = 4;

impl AppLib {
    /// Mints a fresh idempotency token for one logical retryable RPC;
    /// every attempt of that RPC carries the same token.
    fn mint_token(this: &AppHandle) -> RetryToken {
        let mut app = this.borrow_mut();
        let proc = app.proc.map(|p| p.0).unwrap_or(0);
        let c = app.next_token;
        app.next_token += 1;
        RetryToken((proc << 32) | c)
    }

    /// Runs one retryable proxy RPC under a deadline: an attempt may be
    /// lost to a server crash ([`FaultSite::ServerCrash`]), to the
    /// server being down (the request is never answered), or to a lost
    /// reply ([`FaultSite::ProxyRpc`]). Each loss charges the expired
    /// deadline plus exponential backoff and retries with the same
    /// idempotency token; after [`RPC_MAX_ATTEMPTS`] losses the call
    /// fails with [`SocketError::TimedOut`]. With no fault plane
    /// attached the first attempt always returns, so this wrapper adds
    /// zero charged time to the fault-free path.
    fn retry_rpc<T>(
        this: &AppHandle,
        sim: &mut Sim,
        charge: &mut Charge,
        mut call: impl FnMut(&mut Sim, &mut Charge) -> Result<T, SocketError>,
    ) -> Result<T, SocketError> {
        let server = this.borrow().server.clone().expect("server");
        let deadline_ns = this.borrow().costs.rpc_base.max(1) * 4;
        for attempt in 0..RPC_MAX_ATTEMPTS {
            if charge.fault(FaultSite::ServerCrash) {
                // The server dies mid-request; the attempt is lost.
                OsServer::crash(&server, sim);
            } else if !server.borrow().is_down() {
                let result = call(sim, charge);
                if !charge.fault(FaultSite::ProxyRpc) {
                    return result;
                }
                // The reply was lost after the server executed the
                // call — the case the idempotency tokens exist for.
            }
            // Deadline expiry plus bounded exponential backoff.
            charge.add_ns(Layer::Control, deadline_ns << attempt);
            this.borrow_mut().stats.rpc_retries += 1;
        }
        this.borrow_mut().stats.rpc_timeouts += 1;
        Err(SocketError::TimedOut)
    }
    /// `socket(2)`: creates a descriptor backed by a session managed by
    /// the operating system (or an in-kernel socket in the monolithic
    /// baseline).
    pub fn socket(this: &AppHandle, sim: &mut Sim, proto: Proto) -> Fd {
        let mode = this.borrow().mode;
        match mode {
            ApiMode::InKernel => {
                let stack = this.borrow().stack.clone().expect("kernel stack");
                let mut charge = this.borrow().begin(sim);
                charge.crossing_in(
                    Domain::Kernel,
                    Layer::Control,
                    SimTime::from_nanos(this.borrow().costs.trap),
                );
                let sock = {
                    let mut st = stack.borrow_mut();
                    match proto {
                        Proto::Udp => st.socket_udp(),
                        Proto::Tcp => st.socket_tcp(),
                    }
                };
                this.borrow().finish(charge);
                let fd = this.borrow_mut().alloc_fd(proto, FdState::Kern(sock));
                AppLib::register_sock(this, sock, fd);
                fd
            }
            ApiMode::ServerBased | ApiMode::Library { .. } => {
                let server = this.borrow().server.clone().expect("server");
                let proc = this.borrow().proc.expect("registered process");
                let token = AppLib::mint_token(this);
                let mut charge = this.borrow().begin(sim);
                let sid = AppLib::retry_rpc(this, sim, &mut charge, |_, ch| {
                    Ok(server.borrow_mut().proxy_socket(ch, proc, proto, token))
                });
                this.borrow().finish(charge);
                this.borrow_mut().stats.control_rpcs += 1;
                // A timed-out socket() yields a dead descriptor, the
                // closest analogue of an errno return given the Fd
                // signature; every later call on it fails.
                let state = match sid {
                    Ok(sid) => FdState::Fresh(Some(sid)),
                    Err(_) => FdState::Fresh(None),
                };
                this.borrow_mut().alloc_fd(proto, state)
            }
        }
    }

    fn session_of(&self, fd: Fd) -> Option<SessionId> {
        match &self.fds.get(&fd)?.state {
            FdState::Fresh(sid) => *sid,
            FdState::Session(sid) => Some(*sid),
            FdState::Local { session, .. } => *session,
            FdState::Kern(_) => None,
        }
    }

    fn rx_setup(this: &AppHandle, ep_cell: &Rc<Cell<Option<psd_kernel::EndpointId>>>) -> RxSetup {
        let app = this.borrow();
        let ApiMode::Library { rx_mode } = app.mode else {
            panic!("rx_setup only in library mode");
        };
        let stack = app.stack.clone().expect("library stack");
        let sink = stack_sink_with_busy_report(&stack, &app.kernel, ep_cell.clone());
        RxSetup {
            mode: rx_mode,
            sink,
        }
    }

    /// Imports a migrated session into the library stack and rebinds
    /// the descriptor to it. Returns the stack socket.
    pub(crate) fn adopt_migrated(
        this: &AppHandle,
        sim: &mut Sim,
        fd: Fd,
        m: Box<MigratedSession>,
        ep_cell: Rc<Cell<Option<psd_kernel::EndpointId>>>,
    ) {
        let stack = this.borrow().stack.clone().expect("library stack");
        // Load the metastate snapshot (§3.3) into the local caches.
        {
            let mut st = stack.borrow_mut();
            let now = sim.now();
            for (ip, mac) in &m.arp_entries {
                st.arp.insert(*ip, *mac, now);
            }
            let (routes, version) = m.routes.clone();
            st.routes.load(routes, version);
        }
        let sock = stack.borrow_mut().import_session(sim, m.state);
        ep_cell.set(Some(m.endpoint));
        {
            let mut app = this.borrow_mut();
            app.stats.migrations_in += 1;
            app.session_to_fd.insert(m.session, fd);
            if let Some(entry) = app.fds.get_mut(&fd) {
                entry.state = FdState::Local {
                    session: Some(m.session),
                    sock,
                    endpoint: ep_cell.clone(),
                };
            }
        }
        AppLib::register_sock(this, sock, fd);
        // Data that arrived before the migration travelled inside the
        // state capsule; surface it to the new owner.
        let (readable, eof) = {
            let st = stack.borrow();
            (st.readable(sock) > 0, st.at_eof(sock))
        };
        if readable || eof {
            let weak = this.borrow().me.clone();
            let at = sim.now();
            sim.at(at, move |sim| {
                let Some(app) = weak.upgrade() else { return };
                let handler = app.borrow().handlers.get(&fd).cloned();
                if let Some(h) = handler {
                    h.borrow_mut()(sim, fd, SockEvent::Readable);
                }
            });
        }
    }

    pub(crate) fn attach_server_notify(this: &AppHandle, fd: Fd, sid: SessionId) {
        let server = this.borrow().server.clone().expect("server");
        this.borrow_mut().session_to_fd.insert(sid, fd);
        let weak = this.borrow().me.clone();
        server.borrow_mut().set_notify(
            sid,
            Rc::new(RefCell::new(
                move |sim: &mut Sim, sid: SessionId, ev: SockEvent| {
                    let Some(app) = weak.upgrade() else { return };
                    let (fd, handler) = {
                        let a = app.borrow();
                        let Some(fd) = a.session_to_fd.get(&sid).copied() else {
                            return;
                        };
                        (fd, a.handlers.get(&fd).cloned())
                    };
                    select::rescan_local(&app, sim);
                    if let Some(h) = handler {
                        h.borrow_mut()(sim, fd, ev);
                    }
                },
            )),
        );
    }

    /// `bind(2)`: sets the local endpoint. In library mode a UDP
    /// session migrates into the application here.
    pub fn bind(this: &AppHandle, sim: &mut Sim, fd: Fd, port: u16) -> Result<(), SocketError> {
        let mode = this.borrow().mode;
        match mode {
            ApiMode::InKernel => {
                let (stack, ports, host_ip, sock) = {
                    let app = this.borrow();
                    let FdState::Kern(sock) = app.fds.get(&fd).ok_or(SocketError::BadSocket)?.state
                    else {
                        return Err(SocketError::BadSocket);
                    };
                    (
                        app.stack.clone().expect("kernel stack"),
                        app.kern_ports.clone().expect("kernel ports"),
                        app.host_ip,
                        sock,
                    )
                };
                let proto = this.borrow().fds.get(&fd).expect("exists").proto;
                let mut charge = this.borrow().begin(sim);
                charge.crossing_in(
                    Domain::Kernel,
                    Layer::Control,
                    SimTime::from_nanos(this.borrow().costs.trap),
                );
                let port = ports.borrow_mut().claim(proto, port)?;
                let res = stack.borrow_mut().bind(sock, InetAddr::new(host_ip, port));
                this.borrow().finish(charge);
                res
            }
            ApiMode::ServerBased => {
                let server = this.borrow().server.clone().expect("server");
                let sid = this.borrow().session_of(fd).ok_or(SocketError::BadSocket)?;
                let token = AppLib::mint_token(this);
                let mut charge = this.borrow().begin(sim);
                this.borrow_mut().stats.control_rpcs += 1;
                let reply = AppLib::retry_rpc(this, sim, &mut charge, |sim, ch| {
                    OsServer::proxy_bind(&server, sim, ch, sid, port, None, token)
                })?;
                this.borrow().finish(charge);
                debug_assert!(matches!(
                    reply,
                    None | Some(SessionReply::ServerResident { .. })
                ));
                if let Some(entry) = this.borrow_mut().fds.get_mut(&fd) {
                    entry.state = FdState::Session(sid);
                }
                AppLib::attach_server_notify(this, fd, sid);
                Ok(())
            }
            ApiMode::Library { .. } => {
                let server = this.borrow().server.clone().expect("server");
                let sid = this.borrow().session_of(fd).ok_or(SocketError::BadSocket)?;
                let proto = this.borrow().fds.get(&fd).expect("exists").proto;
                let ep_cell = Rc::new(Cell::new(None));
                let token = AppLib::mint_token(this);
                let mut charge = this.borrow().begin(sim);
                this.borrow_mut().stats.control_rpcs += 1;
                let reply = AppLib::retry_rpc(this, sim, &mut charge, |sim, ch| {
                    let rx = match proto {
                        Proto::Udp => Some(AppLib::rx_setup(this, &ep_cell)),
                        Proto::Tcp => None,
                    };
                    OsServer::proxy_bind(&server, sim, ch, sid, port, rx, token)
                })?;
                this.borrow().finish(charge);
                match reply {
                    Some(SessionReply::Migrated(m)) => {
                        // The UDP session migrated immediately.
                        AppLib::adopt_migrated(this, sim, fd, m, ep_cell);
                    }
                    Some(SessionReply::ServerResident { session, .. }) => {
                        // Graceful degradation: the migration was
                        // denied (filter table full, SHM ring install
                        // failure) and the session fell back to the
                        // server data path — slower, but correct.
                        if let Some(entry) = this.borrow_mut().fds.get_mut(&fd) {
                            entry.state = FdState::Session(session);
                        }
                        AppLib::attach_server_notify(this, fd, session);
                    }
                    None => {
                        // TCP: only the port was claimed.
                        if let Some(entry) = this.borrow_mut().fds.get_mut(&fd) {
                            entry.state = FdState::Fresh(Some(sid));
                        }
                    }
                }
                Ok(())
            }
        }
    }

    /// `connect(2)`: sets the remote endpoint. Completion (and failure)
    /// is delivered through the descriptor's event handler:
    /// [`SockEvent::Connected`] or [`SockEvent::Error`]. UDP connect
    /// completes synchronously in the common case.
    pub fn connect(
        this: &AppHandle,
        sim: &mut Sim,
        fd: Fd,
        remote: InetAddr,
    ) -> Result<(), SocketError> {
        let mode = this.borrow().mode;
        let proto = this
            .borrow()
            .fds
            .get(&fd)
            .ok_or(SocketError::BadSocket)?
            .proto;
        match mode {
            ApiMode::InKernel => {
                let (stack, ports, host_ip, sock) = {
                    let app = this.borrow();
                    let FdState::Kern(sock) = app.fds.get(&fd).expect("checked").state else {
                        return Err(SocketError::BadSocket);
                    };
                    (
                        app.stack.clone().expect("kernel stack"),
                        app.kern_ports.clone().expect("kernel ports"),
                        app.host_ip,
                        sock,
                    )
                };
                let mut charge = this.borrow().begin(sim);
                charge.crossing_in(
                    Domain::Kernel,
                    Layer::Control,
                    SimTime::from_nanos(this.borrow().costs.trap),
                );
                // Implicit bind to an ephemeral port.
                if stack.borrow().local_addr(sock).map(|a| a.port).unwrap_or(0) == 0 {
                    let port = ports.borrow_mut().claim(proto, 0)?;
                    stack
                        .borrow_mut()
                        .bind(sock, InetAddr::new(host_ip, port))?;
                }
                let res = match proto {
                    Proto::Tcp => stack
                        .borrow_mut()
                        .connect_tcp(sim, &mut charge, sock, remote),
                    Proto::Udp => stack.borrow_mut().connect_udp(sock, remote),
                };
                let at = charge.at();
                this.borrow().finish(charge);
                if res.is_ok() && proto == Proto::Udp {
                    // Datagram connect completes synchronously; tell the
                    // caller the same way the asynchronous paths do.
                    let weak = this.borrow().me.clone();
                    sim.at(at, move |sim| {
                        let Some(app) = weak.upgrade() else { return };
                        let handler = app.borrow().handlers.get(&fd).cloned();
                        if let Some(h) = handler {
                            h.borrow_mut()(sim, fd, SockEvent::Connected);
                        }
                    });
                }
                res
            }
            ApiMode::ServerBased | ApiMode::Library { .. } => {
                // Library-mode UDP on an fd that is already Local:
                // connect is handled in the application (set the
                // default remote, prewarm the ARP cache).
                let local_udp_sock = match this.borrow().fds.get(&fd) {
                    Some(FdEntry {
                        state: FdState::Local { sock, .. },
                        proto: Proto::Udp,
                    }) => Some(*sock),
                    _ => None,
                };
                if let Some(sock) = local_udp_sock {
                    let stack = this.borrow().stack.clone().expect("library stack");
                    let mut charge = this.borrow().begin(sim);
                    stack.borrow_mut().connect_udp(sock, remote)?;
                    // Prewarm: one metastate RPC so the first send does
                    // not drop on an ARP miss.
                    let server = this.borrow().server.clone().expect("server");
                    this.borrow_mut().stats.control_rpcs += 1;
                    if let Some(mac) =
                        OsServer::proxy_arp_lookup(&server, sim, &mut charge, remote.ip)
                    {
                        let now = charge.at();
                        stack.borrow_mut().arp.insert(remote.ip, mac, now);
                    }
                    let at = charge.at();
                    this.borrow().finish(charge);
                    let weak = this.borrow().me.clone();
                    sim.at(at, move |sim| {
                        let Some(app) = weak.upgrade() else { return };
                        let handler = app.borrow().handlers.get(&fd).cloned();
                        if let Some(h) = handler {
                            h.borrow_mut()(sim, fd, SockEvent::Connected);
                        }
                    });
                    return Ok(());
                }

                let server = this.borrow().server.clone().expect("server");
                let sid = this.borrow().session_of(fd).ok_or(SocketError::BadSocket)?;
                let is_library = matches!(mode, ApiMode::Library { .. });
                let ep_cell = Rc::new(Cell::new(None));
                let rx = is_library.then(|| AppLib::rx_setup(this, &ep_cell));
                let weak = this.borrow().me.clone();
                let mut charge = this.borrow().begin(sim);
                this.borrow_mut().stats.control_rpcs += 1;
                OsServer::proxy_connect(
                    &server,
                    sim,
                    &mut charge,
                    sid,
                    remote,
                    rx,
                    Box::new(move |sim, result| {
                        let Some(app) = weak.upgrade() else { return };
                        let handler = app.borrow().handlers.get(&fd).cloned();
                        match result {
                            Ok(SessionReply::Migrated(m)) => {
                                AppLib::adopt_migrated(&app, sim, fd, m, ep_cell);
                                if let Some(h) = handler {
                                    h.borrow_mut()(sim, fd, SockEvent::Connected);
                                }
                            }
                            Ok(SessionReply::ServerResident { session, .. }) => {
                                if let Some(entry) = app.borrow_mut().fds.get_mut(&fd) {
                                    entry.state = FdState::Session(session);
                                }
                                AppLib::attach_server_notify(&app, fd, session);
                                if let Some(h) = handler {
                                    h.borrow_mut()(sim, fd, SockEvent::Connected);
                                }
                            }
                            Err(e) => {
                                if let Some(h) = handler {
                                    h.borrow_mut()(sim, fd, SockEvent::Error(e));
                                }
                            }
                        }
                    }),
                );
                this.borrow().finish(charge);
                Ok(())
            }
        }
    }

    /// `listen(2)`: passive open; the operating system awaits new
    /// connections.
    pub fn listen(
        this: &AppHandle,
        sim: &mut Sim,
        fd: Fd,
        backlog: usize,
    ) -> Result<(), SocketError> {
        let mode = this.borrow().mode;
        match mode {
            ApiMode::InKernel => {
                let app = this.borrow();
                let FdState::Kern(sock) = app.fds.get(&fd).ok_or(SocketError::BadSocket)?.state
                else {
                    return Err(SocketError::BadSocket);
                };
                let stack = app.stack.clone().expect("kernel stack");
                drop(app);
                let mut charge = this.borrow().begin(sim);
                charge.crossing_in(
                    Domain::Kernel,
                    Layer::Control,
                    SimTime::from_nanos(this.borrow().costs.trap),
                );
                let res = stack.borrow_mut().listen(sock, backlog);
                this.borrow().finish(charge);
                res
            }
            ApiMode::ServerBased | ApiMode::Library { .. } => {
                let server = this.borrow().server.clone().expect("server");
                let sid = this.borrow().session_of(fd).ok_or(SocketError::BadSocket)?;
                let mut charge = this.borrow().begin(sim);
                this.borrow_mut().stats.control_rpcs += 1;
                let res = AppLib::retry_rpc(this, sim, &mut charge, |sim, ch| {
                    OsServer::proxy_listen(&server, sim, ch, sid, backlog)
                });
                this.borrow().finish(charge);
                if res.is_ok() {
                    if let Some(entry) = this.borrow_mut().fds.get_mut(&fd) {
                        entry.state = FdState::Session(sid);
                    }
                    // The server notifies the listener's owner when a
                    // connection request arrives.
                    AppLib::attach_server_notify(this, fd, sid);
                }
                res
            }
        }
    }

    /// `accept(2)`: takes an established connection off the listener.
    /// Returns `WouldBlock` when none is ready; a [`SockEvent::Readable`]
    /// on the listener signals a retry will succeed.
    pub fn accept(this: &AppHandle, sim: &mut Sim, fd: Fd) -> Result<Fd, SocketError> {
        let mode = this.borrow().mode;
        match mode {
            ApiMode::InKernel => {
                let app = this.borrow();
                let FdState::Kern(sock) = app.fds.get(&fd).ok_or(SocketError::BadSocket)?.state
                else {
                    return Err(SocketError::BadSocket);
                };
                let stack = app.stack.clone().expect("kernel stack");
                drop(app);
                let mut charge = this.borrow().begin(sim);
                charge.crossing_in(
                    Domain::Kernel,
                    Layer::Control,
                    SimTime::from_nanos(this.borrow().costs.trap),
                );
                let res = stack.borrow_mut().accept(sock);
                this.borrow().finish(charge);
                let child = res?;
                let proto = Proto::Tcp;
                let child_fd = this.borrow_mut().alloc_fd(proto, FdState::Kern(child));
                AppLib::register_sock(this, child, child_fd);
                Ok(child_fd)
            }
            ApiMode::ServerBased | ApiMode::Library { .. } => {
                // Ready connection already delivered?
                if let Some(ready) = this
                    .borrow_mut()
                    .accept_ready
                    .get_mut(&fd)
                    .and_then(|q| (!q.is_empty()).then(|| q.remove(0)))
                {
                    return Ok(ready);
                }
                // Issue (at most one) outstanding proxy_accept.
                if this.borrow().accept_pending.contains(&fd) {
                    return Err(SocketError::WouldBlock);
                }
                let server = this.borrow().server.clone().expect("server");
                let sid = this.borrow().session_of(fd).ok_or(SocketError::BadSocket)?;
                let is_library = matches!(mode, ApiMode::Library { .. });
                let ep_cell = Rc::new(Cell::new(None));
                let rx = is_library.then(|| AppLib::rx_setup(this, &ep_cell));
                this.borrow_mut().accept_pending.insert(fd);
                let weak = this.borrow().me.clone();
                let mut charge = this.borrow().begin(sim);
                this.borrow_mut().stats.control_rpcs += 1;
                OsServer::proxy_accept(
                    &server,
                    sim,
                    &mut charge,
                    sid,
                    rx,
                    Box::new(move |sim, result| {
                        let Some(app) = weak.upgrade() else { return };
                        app.borrow_mut().accept_pending.remove(&fd);
                        let handler = app.borrow().handlers.get(&fd).cloned();
                        match result {
                            Ok(reply) => {
                                let proto = Proto::Tcp;
                                let child_fd = match reply {
                                    SessionReply::Migrated(m) => {
                                        let child_fd =
                                            app.borrow_mut().alloc_fd(proto, FdState::Fresh(None));
                                        AppLib::adopt_migrated(
                                            &app,
                                            sim,
                                            child_fd,
                                            m,
                                            ep_cell.clone(),
                                        );
                                        child_fd
                                    }
                                    SessionReply::ServerResident { session, .. } => {
                                        let child_fd = app
                                            .borrow_mut()
                                            .alloc_fd(proto, FdState::Session(session));
                                        AppLib::attach_server_notify(&app, child_fd, session);
                                        // Surface data that arrived while
                                        // the connection waited in the
                                        // accept queue.
                                        let weak2 = app.borrow().me.clone();
                                        let at = sim.now();
                                        sim.at(at, move |sim| {
                                            let Some(app) = weak2.upgrade() else { return };
                                            let ready = app.borrow().poll(child_fd).0;
                                            let handler =
                                                app.borrow().handlers.get(&child_fd).cloned();
                                            if ready {
                                                if let Some(h) = handler {
                                                    h.borrow_mut()(
                                                        sim,
                                                        child_fd,
                                                        SockEvent::Readable,
                                                    );
                                                }
                                            }
                                        });
                                        child_fd
                                    }
                                };
                                app.borrow_mut()
                                    .accept_ready
                                    .entry(fd)
                                    .or_default()
                                    .push(child_fd);
                                select::rescan_local(&app, sim);
                                if let Some(h) = handler {
                                    h.borrow_mut()(sim, fd, SockEvent::Readable);
                                }
                            }
                            Err(e) => {
                                if let Some(h) = handler {
                                    h.borrow_mut()(sim, fd, SockEvent::Error(e));
                                }
                            }
                        }
                    }),
                );
                this.borrow().finish(charge);
                // Re-check: the callback may have completed synchronously
                // via a zero-delay event only after we return, so report
                // WouldBlock; the Readable event signals readiness.
                Err(SocketError::WouldBlock)
            }
        }
    }

    /// `close(2)`: for migrated sessions, exports the state back to the
    /// operating system, which runs the shutdown protocol (§3.2
    /// "Terminating session state").
    pub fn close(this: &AppHandle, sim: &mut Sim, fd: Fd) {
        let mode = this.borrow().mode;
        let Some(entry) = this.borrow_mut().fds.remove(&fd) else {
            return;
        };
        this.borrow_mut().handlers.remove(&fd);
        this.borrow_mut().accept_ready.remove(&fd);
        this.borrow_mut().watched.remove(&fd);
        match entry.state {
            FdState::Kern(sock) => {
                let stack = this.borrow().stack.clone().expect("kernel stack");
                let local = stack.borrow().local_addr(sock);
                let mut charge = this.borrow().begin(sim);
                charge.crossing_in(
                    Domain::Kernel,
                    Layer::Control,
                    SimTime::from_nanos(this.borrow().costs.trap),
                );
                stack.borrow_mut().close(sim, &mut charge, sock);
                this.borrow().finish(charge);
                this.borrow_mut().sock_to_fd.remove(&sock);
                let ports = this.borrow().kern_ports.clone();
                if let (Some(addr), Some(ports)) = (local, ports) {
                    ports.borrow_mut().release(entry.proto, addr.port);
                }
            }
            FdState::Local { session, sock, .. } => {
                let stack = this.borrow().stack.clone().expect("library stack");
                let state = stack.borrow_mut().export_session(sim, sock);
                this.borrow_mut().sock_to_fd.remove(&sock);
                this.borrow_mut().stats.migrations_out += 1;
                let server = this.borrow().server.clone();
                if let (Some(sid), Some(server)) = (session, server) {
                    this.borrow_mut().session_to_fd.remove(&sid);
                    let mut charge = this.borrow().begin(sim);
                    this.borrow_mut().stats.control_rpcs += 1;
                    OsServer::proxy_close(&server, sim, &mut charge, sid, state);
                    this.borrow().finish(charge);
                }
            }
            FdState::Session(sid) | FdState::Fresh(Some(sid)) => {
                let server = this.borrow().server.clone();
                if let Some(server) = server {
                    this.borrow_mut().session_to_fd.remove(&sid);
                    let mut charge = this.borrow().begin(sim);
                    this.borrow_mut().stats.control_rpcs += 1;
                    OsServer::proxy_close(&server, sim, &mut charge, sid, None);
                    this.borrow().finish(charge);
                }
            }
            FdState::Fresh(None) => {}
        }
        if !matches!(mode, ApiMode::InKernel) {
            select::rescan_local(this, sim);
        }
    }

    /// `fork(2)`: every migrated session is first returned to the
    /// operating system ("All sessions should be returned to the
    /// operating system before fork is called"); the child process
    /// shares the descriptors, and both parent and child subsequently
    /// reach them through the server.
    pub fn fork(this: &AppHandle, sim: &mut Sim) -> Result<AppHandle, SocketError> {
        let mode = this.borrow().mode;
        let (ApiMode::Library { .. } | ApiMode::ServerBased) = mode else {
            return Err(SocketError::OpNotSupp);
        };
        let server = this.borrow().server.clone().expect("server");
        let parent_proc = this.borrow().proc.expect("registered");

        // Step 1: return all local sessions.
        let local_fds: Vec<Fd> = this
            .borrow()
            .fds
            .iter()
            .filter(|(_, e)| matches!(e.state, FdState::Local { .. }))
            .map(|(fd, _)| *fd)
            .collect();
        for fd in local_fds {
            let (sock, sid) = {
                let app = this.borrow();
                let FdState::Local { session, sock, .. } =
                    app.fds.get(&fd).expect("listed above").state.clone_parts()
                else {
                    continue;
                };
                (sock, session)
            };
            let Some(sid) = sid else { continue };
            let stack = this.borrow().stack.clone().expect("library stack");
            let Some(state) = stack.borrow_mut().export_session(sim, sock) else {
                continue;
            };
            this.borrow_mut().sock_to_fd.remove(&sock);
            this.borrow_mut().stats.migrations_out += 1;
            let mut charge = this.borrow().begin(sim);
            this.borrow_mut().stats.control_rpcs += 1;
            OsServer::proxy_return(&server, sim, &mut charge, sid, state)?;
            this.borrow().finish(charge);
            if let Some(entry) = this.borrow_mut().fds.get_mut(&fd) {
                entry.state = FdState::Session(sid);
            }
            AppLib::attach_server_notify(this, fd, sid);
        }

        // Step 2: duplicate the process at the server.
        let mut charge = this.borrow().begin(sim);
        this.borrow_mut().stats.control_rpcs += 1;
        let child_proc = server.borrow_mut().fork(&mut charge, parent_proc)?;
        this.borrow().finish(charge);

        // Step 3: build the child's library with shared descriptors.
        let child = match mode {
            ApiMode::Library { rx_mode } => {
                let kernel = this.borrow().kernel.clone();
                let child = AppLib::new_library(&kernel, &server, rx_mode);
                child.borrow_mut().proc = Some(child_proc);
                child
            }
            ApiMode::ServerBased => {
                let kernel = this.borrow().kernel.clone();
                let child = AppLib::new_server_based(&kernel, &server);
                child.borrow_mut().proc = Some(child_proc);
                child
            }
            ApiMode::InKernel => unreachable!("checked above"),
        };
        // Mirror the descriptor table: all entries are server-resident
        // now, so both processes refer to the same sessions.
        let mirrored: Vec<(Fd, Proto, Option<SessionId>)> = this
            .borrow()
            .fds
            .iter()
            .map(|(fd, e)| {
                let sid = match &e.state {
                    FdState::Session(s) | FdState::Fresh(Some(s)) => Some(*s),
                    _ => None,
                };
                (*fd, e.proto, sid)
            })
            .collect();
        for (fd, proto, sid) in mirrored {
            let state = match sid {
                Some(s) => FdState::Session(s),
                None => FdState::Fresh(None),
            };
            child.borrow_mut().fds.insert(fd, FdEntry { proto, state });
            let next = child.borrow().next_fd.max(fd.0 + 1);
            child.borrow_mut().next_fd = next;
            if let Some(s) = sid {
                // Note: notify callbacks route to whichever process
                // registered last; both can re-register as needed.
                child.borrow_mut().session_to_fd.insert(s, fd);
            }
        }
        Ok(child)
    }

    /// Simulates abrupt process death: the library vanishes without
    /// returning sessions; the operating system detects it and cleans
    /// up (§3.2 "unexpected shutdown").
    pub fn die(this: &AppHandle, sim: &mut Sim) {
        let server = this.borrow().server.clone();
        let proc = this.borrow().proc;
        // Tear down local delivery state abruptly: sockets are not
        // exported, filters stay until the server removes them.
        this.borrow_mut().fds.clear();
        this.borrow_mut().handlers.clear();
        if let (Some(server), Some(proc)) = (server, proc) {
            OsServer::process_died(&server, sim, proc);
        }
    }

    /// Recovers from a server crash/restart: the application (which
    /// noticed the crash as RPC deadline expiry) registers itself as a
    /// fresh process, re-adopts its migrated sessions — whose data
    /// path kept working throughout, since it never touches the
    /// server — and drops descriptors whose server-resident sessions
    /// died with the server. Returns `false` (and does nothing) while
    /// the server is still down; the caller retries with backoff.
    pub fn reregister(this: &AppHandle, sim: &mut Sim) -> bool {
        let _ = sim;
        let Some(server) = this.borrow().server.clone() else {
            return true; // In-kernel mode has no server to lose.
        };
        if server.borrow().is_down() {
            return false;
        }
        let proc = server.borrow_mut().register_process();
        this.borrow_mut().proc = Some(proc);
        // Migrated sessions survive the crash: re-attach ownership to
        // the new process id rebuilt from the stub records.
        let mut locals: Vec<SessionId> = this
            .borrow()
            .fds
            .values()
            .filter_map(|e| match &e.state {
                FdState::Local {
                    session: Some(s), ..
                } => Some(*s),
                _ => None,
            })
            .collect();
        locals.sort(); // map order is not deterministic across runs
        {
            let mut srv = server.borrow_mut();
            for sid in &locals {
                srv.adopt_session(*sid, proc);
            }
        }
        // Server-resident sessions died with the server's in-memory
        // DB; their descriptors are now dead.
        let mut dead: Vec<(Fd, SessionId)> = this
            .borrow()
            .fds
            .iter()
            .filter_map(|(fd, e)| {
                let sid = match &e.state {
                    FdState::Session(s) | FdState::Fresh(Some(s)) => *s,
                    _ => return None,
                };
                (!server.borrow().has_session(sid)).then_some((*fd, sid))
            })
            .collect();
        dead.sort();
        for (fd, sid) in dead {
            let mut app = this.borrow_mut();
            app.fds.remove(&fd);
            app.handlers.remove(&fd);
            app.accept_ready.remove(&fd);
            app.accept_pending.remove(&fd);
            app.watched.remove(&fd);
            app.session_to_fd.remove(&sid);
        }
        true
    }
}

impl FdState {
    /// Helper for matching out of a borrowed entry.
    fn clone_parts(&self) -> FdState {
        match self {
            FdState::Fresh(s) => FdState::Fresh(*s),
            FdState::Session(s) => FdState::Session(*s),
            FdState::Local {
                session,
                sock,
                endpoint,
            } => FdState::Local {
                session: *session,
                sock: *sock,
                endpoint: endpoint.clone(),
            },
            FdState::Kern(s) => FdState::Kern(*s),
        }
    }
}
