//! The data path: send and receive.
//!
//! "The BSD socket interface has ten different ways to move data
//! through a session (`recv`, `recvfrom`, `recvmsg`, `read`, `readv`,
//! and `send`, `sendto`, `sendmsg`, `write`, `writev`). For sockets,
//! these calls are implemented entirely within the application's
//! protocol library." [`AppLib::send`]/[`AppLib::recv`] are the core
//! pair; the BSD spellings are provided as aliases. In library mode no
//! operating-system interaction occurs here at all; in the baselines
//! the same calls cross into the kernel (trap) or the server (RPC).
//!
//! The NEWAPI variants ([`AppLib::send_shared`],
//! [`AppLib::recv_shared`]) implement §4.2: the application and the
//! protocol share buffers, eliminating the copy at the socket
//! interface.

use crate::{ApiMode, AppHandle, AppLib, Fd, FdState};
use psd_kernel::rpc_data_charge;
use psd_mbuf::MbufChain;
use psd_netstack::{InetAddr, SocketError};
use psd_server::Proto;
use psd_sim::{Domain, Layer, Sim, SimTime};
use std::rc::Rc;

impl AppLib {
    /// `send(2)`/`write(2)` on a stream socket. Returns bytes queued.
    pub fn send(
        this: &AppHandle,
        sim: &mut Sim,
        fd: Fd,
        data: &[u8],
    ) -> Result<usize, SocketError> {
        let (proto, state) = {
            let app = this.borrow();
            let entry = app.fds.get(&fd).ok_or(SocketError::BadSocket)?;
            (entry.proto, entry.state.brief())
        };
        if proto != Proto::Tcp {
            return AppLib::sendto(this, sim, fd, data, None);
        }
        match state {
            Brief::Local(sock) => {
                let stack = this.borrow().stack.clone().expect("local fd");
                let mut charge = this.borrow().begin(sim);
                let res = stack.borrow_mut().tcp_send(sim, &mut charge, sock, data);
                this.borrow().finish(charge);
                res
            }
            Brief::Kern(sock) => {
                let stack = this.borrow().stack.clone().expect("kernel stack");
                let mut charge = this.borrow().begin(sim);
                let res = stack.borrow_mut().tcp_send(sim, &mut charge, sock, data);
                if res.is_ok() {
                    charge.crossing_in(
                        Domain::Kernel,
                        Layer::EntryCopyin,
                        SimTime::from_nanos(this.borrow().trap_entry()),
                    );
                    charge.add_ns(Layer::CopyoutExit, this.borrow().trap_exit());
                }
                this.borrow().finish(charge);
                res
            }
            Brief::Session(sid) => {
                let server = this.borrow().server.clone().expect("session fd");
                let mut charge = this.borrow().begin(sim);
                let res = server
                    .borrow_mut()
                    .data_send_tcp(sim, &mut charge, sid, data);
                if let Ok(n) = res {
                    this.borrow_mut().stats.data_rpcs += 1;
                    rpc_data_charge(&this.borrow().costs, &mut charge, Layer::EntryCopyin, n);
                }
                this.borrow().finish(charge);
                res
            }
            Brief::Fresh => Err(SocketError::NotConnected),
        }
    }

    /// `recv(2)`/`read(2)` on a stream socket. `Ok(0)` is end of file.
    pub fn recv(
        this: &AppHandle,
        sim: &mut Sim,
        fd: Fd,
        buf: &mut [u8],
    ) -> Result<usize, SocketError> {
        let (proto, state) = {
            let app = this.borrow();
            let entry = app.fds.get(&fd).ok_or(SocketError::BadSocket)?;
            (entry.proto, entry.state.brief())
        };
        if proto != Proto::Tcp {
            return AppLib::recvfrom(this, sim, fd, buf).map(|(n, _)| n);
        }
        match state {
            Brief::Local(sock) => {
                let stack = this.borrow().stack.clone().expect("local fd");
                let mut charge = this.borrow().begin(sim);
                let res = stack.borrow_mut().tcp_recv(sim, &mut charge, sock, buf);
                this.borrow().finish(charge);
                res
            }
            Brief::Kern(sock) => {
                let stack = this.borrow().stack.clone().expect("kernel stack");
                let mut charge = this.borrow().begin(sim);
                let res = stack.borrow_mut().tcp_recv(sim, &mut charge, sock, buf);
                if res.is_ok() {
                    charge.crossing_in(
                        Domain::Kernel,
                        Layer::CopyoutExit,
                        SimTime::from_nanos(this.borrow().trap_exit()),
                    );
                }
                this.borrow().finish(charge);
                res
            }
            Brief::Session(sid) => {
                let server = this.borrow().server.clone().expect("session fd");
                let mut charge = this.borrow().begin(sim);
                this.borrow_mut().stats.data_rpcs += 1;
                let res = server
                    .borrow_mut()
                    .data_recv_tcp(sim, &mut charge, sid, buf);
                if let Ok(n) = res {
                    rpc_data_charge(&this.borrow().costs, &mut charge, Layer::CopyoutExit, n);
                }
                this.borrow().finish(charge);
                res
            }
            Brief::Fresh => Err(SocketError::NotConnected),
        }
    }

    /// `sendto(2)` on a datagram socket (or `send` when connected, with
    /// `dst == None`).
    pub fn sendto(
        this: &AppHandle,
        sim: &mut Sim,
        fd: Fd,
        data: &[u8],
        dst: Option<InetAddr>,
    ) -> Result<usize, SocketError> {
        let mode = this.borrow().mode;
        let state = {
            let app = this.borrow();
            app.fds
                .get(&fd)
                .ok_or(SocketError::BadSocket)?
                .state
                .brief()
        };
        // Library mode: an unbound UDP socket binds (and migrates)
        // implicitly on first send, as BSD binds implicitly.
        if matches!(mode, ApiMode::Library { .. }) {
            if let Brief::Fresh = state {
                AppLib::bind(this, sim, fd, 0)?;
                return AppLib::sendto(this, sim, fd, data, dst);
            }
        }
        match state {
            Brief::Local(sock) => {
                let stack = this.borrow().stack.clone().expect("local fd");
                let mut charge = this.borrow().begin(sim);
                let res = stack
                    .borrow_mut()
                    .udp_send(sim, &mut charge, sock, data, dst);
                this.borrow().finish(charge);
                res
            }
            Brief::Kern(sock) => {
                let (stack, ports, host_ip) = {
                    let app = this.borrow();
                    (
                        app.stack.clone().expect("kernel stack"),
                        app.kern_ports.clone().expect("kernel ports"),
                        app.host_ip,
                    )
                };
                let mut charge = this.borrow().begin(sim);
                charge.crossing_in(
                    Domain::Kernel,
                    Layer::EntryCopyin,
                    SimTime::from_nanos(this.borrow().trap_entry()),
                );
                // Implicit bind.
                if stack.borrow().local_addr(sock).map(|a| a.port).unwrap_or(0) == 0 {
                    let port = ports.borrow_mut().claim(Proto::Udp, 0)?;
                    stack
                        .borrow_mut()
                        .bind(sock, InetAddr::new(host_ip, port))?;
                }
                let res = stack
                    .borrow_mut()
                    .udp_send(sim, &mut charge, sock, data, dst);
                charge.add_ns(Layer::CopyoutExit, this.borrow().trap_exit());
                this.borrow().finish(charge);
                res
            }
            Brief::Session(sid) => {
                let server = this.borrow().server.clone().expect("session fd");
                let mut charge = this.borrow().begin(sim);
                this.borrow_mut().stats.data_rpcs += 1;
                rpc_data_charge(
                    &this.borrow().costs,
                    &mut charge,
                    Layer::EntryCopyin,
                    data.len(),
                );
                let res = server
                    .borrow_mut()
                    .data_send_udp(sim, &mut charge, sid, data, dst);
                this.borrow().finish(charge);
                res
            }
            // (UDP datagrams are accepted or refused whole, so the RPC
            // charge above is not conditional.)
            Brief::Fresh => {
                // Server-based: realize via bind(0) then retry.
                if matches!(mode, ApiMode::ServerBased) {
                    AppLib::bind(this, sim, fd, 0)?;
                    AppLib::sendto(this, sim, fd, data, dst)
                } else {
                    Err(SocketError::NotConnected)
                }
            }
        }
    }

    /// `recvfrom(2)` on a datagram socket.
    pub fn recvfrom(
        this: &AppHandle,
        sim: &mut Sim,
        fd: Fd,
        buf: &mut [u8],
    ) -> Result<(usize, InetAddr), SocketError> {
        let state = {
            let app = this.borrow();
            app.fds
                .get(&fd)
                .ok_or(SocketError::BadSocket)?
                .state
                .brief()
        };
        match state {
            Brief::Local(sock) => {
                let stack = this.borrow().stack.clone().expect("local fd");
                let mut charge = this.borrow().begin(sim);
                let res = stack.borrow_mut().udp_recv(sim, &mut charge, sock, buf);
                this.borrow().finish(charge);
                res
            }
            Brief::Kern(sock) => {
                let stack = this.borrow().stack.clone().expect("kernel stack");
                let mut charge = this.borrow().begin(sim);
                let res = stack.borrow_mut().udp_recv(sim, &mut charge, sock, buf);
                if res.is_ok() {
                    charge.crossing_in(
                        Domain::Kernel,
                        Layer::CopyoutExit,
                        SimTime::from_nanos(this.borrow().trap_exit()),
                    );
                }
                this.borrow().finish(charge);
                res
            }
            Brief::Session(sid) => {
                let server = this.borrow().server.clone().expect("session fd");
                let mut charge = this.borrow().begin(sim);
                this.borrow_mut().stats.data_rpcs += 1;
                let res = server
                    .borrow_mut()
                    .data_recv_udp(sim, &mut charge, sid, buf);
                if let Ok((n, _)) = res {
                    rpc_data_charge(&this.borrow().costs, &mut charge, Layer::CopyoutExit, n);
                }
                this.borrow().finish(charge);
                res
            }
            Brief::Fresh => Err(SocketError::NotConnected),
        }
    }

    // ----- NEWAPI (§4.2): shared application/protocol buffers -----

    /// NEWAPI send: the protocol references the shared buffer instead
    /// of copying it into the socket queue. Library mode only — the
    /// optimization is precisely what a user-level stack makes
    /// possible.
    pub fn send_shared(
        this: &AppHandle,
        sim: &mut Sim,
        fd: Fd,
        data: Rc<Vec<u8>>,
    ) -> Result<usize, SocketError> {
        let state = {
            let app = this.borrow();
            app.fds
                .get(&fd)
                .ok_or(SocketError::BadSocket)?
                .state
                .brief()
        };
        let Brief::Local(sock) = state else {
            return Err(SocketError::OpNotSupp);
        };
        let proto = this.borrow().fds.get(&fd).expect("exists").proto;
        let stack = this.borrow().stack.clone().expect("local fd");
        let mut charge = this.borrow().begin(sim);
        let res = match proto {
            Proto::Tcp => stack
                .borrow_mut()
                .tcp_send_shared(sim, &mut charge, sock, data),
            // The library UDP send path already references user data.
            Proto::Udp => stack
                .borrow_mut()
                .udp_send(sim, &mut charge, sock, &data, None),
        };
        this.borrow().finish(charge);
        res
    }

    /// NEWAPI receive: returns the buffered data as a chain sharing the
    /// protocol's storage — no copy into a caller buffer. An empty
    /// chain is end of file.
    pub fn recv_shared(
        this: &AppHandle,
        sim: &mut Sim,
        fd: Fd,
        max: usize,
    ) -> Result<MbufChain, SocketError> {
        let state = {
            let app = this.borrow();
            app.fds
                .get(&fd)
                .ok_or(SocketError::BadSocket)?
                .state
                .brief()
        };
        let Brief::Local(sock) = state else {
            return Err(SocketError::OpNotSupp);
        };
        let proto = this.borrow().fds.get(&fd).expect("exists").proto;
        let stack = this.borrow().stack.clone().expect("local fd");
        let mut charge = this.borrow().begin(sim);
        let res = match proto {
            Proto::Tcp => stack
                .borrow_mut()
                .tcp_recv_chain(sim, &mut charge, sock, max),
            Proto::Udp => stack
                .borrow_mut()
                .udp_recv_chain(sim, &mut charge, sock)
                .map(|(chain, _)| chain),
        };
        this.borrow().finish(charge);
        res
    }

    // ----- Batched NEWAPI (ISSUE 9): amortized crossings -----

    /// Batched NEWAPI send: queues up to `bufs.len()` shared descriptors
    /// under one socket-layer entry, announcing the batch window to the
    /// interface so one trap (doorbell) covers each window of K frames.
    /// Returns the number of descriptors accepted; stops early — without
    /// error — once the send buffer would block, and surfaces the error
    /// only if the *first* descriptor fails. Library mode only, like
    /// [`send_shared`](AppLib::send_shared).
    pub fn send_batch(
        this: &AppHandle,
        sim: &mut Sim,
        fd: Fd,
        bufs: &[Rc<Vec<u8>>],
    ) -> Result<usize, SocketError> {
        let state = {
            let app = this.borrow();
            app.fds
                .get(&fd)
                .ok_or(SocketError::BadSocket)?
                .state
                .brief()
        };
        let Brief::Local(sock) = state else {
            return Err(SocketError::OpNotSupp);
        };
        let proto = this.borrow().fds.get(&fd).expect("exists").proto;
        let stack = this.borrow().stack.clone().expect("local fd");
        let batch = this.borrow().kernel.borrow().batch_config();
        if batch.batch > 1 {
            stack.borrow().tx_batch_hint(batch.batch);
        }
        let mut charge = this.borrow().begin(sim);
        let mut sent = 0usize;
        let mut first_err = None;
        for data in bufs {
            let res = match proto {
                Proto::Tcp => {
                    stack
                        .borrow_mut()
                        .tcp_send_shared(sim, &mut charge, sock, data.clone())
                }
                Proto::Udp => stack
                    .borrow_mut()
                    .udp_send(sim, &mut charge, sock, data, None),
            };
            match res {
                Ok(_) => sent += 1,
                Err(e) => {
                    first_err = Some(e);
                    break;
                }
            }
        }
        this.borrow().finish(charge);
        if batch.batch > 1 {
            stack.borrow().tx_batch_end();
        }
        match (sent, first_err) {
            (0, Some(e)) => Err(e),
            _ => Ok(sent),
        }
    }

    /// GSO-style NEWAPI send: one super-descriptor the stack segments
    /// into `seg`-byte wire datagrams at transmit. The emitted frames
    /// are byte-for-byte identical to the per-datagram sends; with GSO
    /// disabled in the kernel's [`psd_kernel::BatchConfig`] the library
    /// falls back to exactly those per-datagram sends. TCP sockets
    /// queue the buffer whole — the stream protocol already segments.
    pub fn send_gso(
        this: &AppHandle,
        sim: &mut Sim,
        fd: Fd,
        data: Rc<Vec<u8>>,
        seg: usize,
    ) -> Result<usize, SocketError> {
        let state = {
            let app = this.borrow();
            app.fds
                .get(&fd)
                .ok_or(SocketError::BadSocket)?
                .state
                .brief()
        };
        let Brief::Local(sock) = state else {
            return Err(SocketError::OpNotSupp);
        };
        let seg = seg.max(1);
        let proto = this.borrow().fds.get(&fd).expect("exists").proto;
        let stack = this.borrow().stack.clone().expect("local fd");
        let gso = this.borrow().kernel.borrow().batch_config().gso;
        let mut charge = this.borrow().begin(sim);
        let res = match proto {
            Proto::Tcp => stack
                .borrow_mut()
                .tcp_send_shared(sim, &mut charge, sock, data.clone()),
            Proto::Udp if gso => {
                stack
                    .borrow_mut()
                    .udp_send_gso(sim, &mut charge, sock, &data, seg, None)
            }
            Proto::Udp => {
                // Fallback: the same wire datagrams, sent one at a time
                // at full per-datagram cost.
                let mut off = 0;
                loop {
                    let len = seg.min(data.len() - off);
                    let r = stack.borrow_mut().udp_send(
                        sim,
                        &mut charge,
                        sock,
                        &data[off..off + len],
                        None,
                    );
                    if let Err(e) = r {
                        break Err(e);
                    }
                    off += len;
                    if off >= data.len() {
                        break Ok(data.len());
                    }
                }
            }
        };
        this.borrow().finish(charge);
        res
    }

    /// Batched NEWAPI receive: drains up to `max_descs` descriptors
    /// (each at most `max_bytes` of stream data for TCP; one datagram
    /// for UDP) in one call. For selective-copy kernel-resident flows
    /// the ring carried headers only; passing `pull == true` pays the
    /// deferred body copy here, `pull == false` consumes header-only
    /// (the monitor/proxy pattern — copies/pkt drops to zero). Returns
    /// an empty vector when no data is buffered.
    pub fn recv_batch(
        this: &AppHandle,
        sim: &mut Sim,
        fd: Fd,
        max_descs: usize,
        max_bytes: usize,
        pull: bool,
    ) -> Result<Vec<psd_mbuf::RecvDesc>, SocketError> {
        use psd_filter::CopyPlacement;
        let state = {
            let app = this.borrow();
            app.fds
                .get(&fd)
                .ok_or(SocketError::BadSocket)?
                .state
                .brief()
        };
        let Brief::Local(sock) = state else {
            return Err(SocketError::OpNotSupp);
        };
        let proto = this.borrow().fds.get(&fd).expect("exists").proto;
        let stack = this.borrow().stack.clone().expect("local fd");
        // The library agrees with the kernel about this flow's placement
        // by evaluating the same install-time policy on its own socket.
        let resident = {
            let policy = this.borrow().kernel.borrow().placement_policy();
            policy.is_some_and(|p| {
                let ip_proto = match proto {
                    Proto::Tcp => psd_wire::IpProto::Tcp,
                    Proto::Udp => psd_wire::IpProto::Udp,
                };
                stack.borrow().local_addr(sock).is_some_and(|a| {
                    p.placement_for(ip_proto, a.port) == CopyPlacement::KernelResident
                })
            })
        };
        let kcopy_cached = this.borrow().costs.kcopy_cached_byte;
        let mut charge = this.borrow().begin(sim);
        let mut descs = Vec::new();
        let mut err = None;
        while descs.len() < max_descs {
            let res = match proto {
                Proto::Tcp => stack
                    .borrow_mut()
                    .tcp_recv_chain(sim, &mut charge, sock, max_bytes),
                Proto::Udp => stack
                    .borrow_mut()
                    .udp_recv_chain(sim, &mut charge, sock)
                    .map(|(chain, _)| chain),
            };
            match res {
                Ok(chain) => {
                    if chain.is_empty() {
                        // TCP end of file (UDP never returns an empty
                        // chain): stop; an empty result vector is EOF.
                        break;
                    }
                    if resident && pull {
                        // The deferred body copy: kernel memory → the
                        // application's buffer, paid only on demand.
                        charge.add_per_byte(Layer::CopyoutExit, kcopy_cached, chain.len());
                        charge.note(
                            psd_sim::OpKind::PacketBodyCopy,
                            Domain::Library,
                            Layer::CopyoutExit,
                        );
                    }
                    descs.push(psd_mbuf::RecvDesc {
                        chain,
                        kernel_resident: resident,
                    });
                }
                Err(SocketError::WouldBlock) => break,
                Err(e) => {
                    err = Some(e);
                    break;
                }
            }
        }
        this.borrow().finish(charge);
        match (descs.is_empty(), err) {
            (true, Some(e)) => Err(e),
            _ => Ok(descs),
        }
    }
}

/// Collapsed descriptor state for dispatching data operations.
enum Brief {
    Local(psd_netstack::SockId),
    Kern(psd_netstack::SockId),
    Session(psd_server::SessionId),
    Fresh,
}

impl FdState {
    fn brief(&self) -> Brief {
        match self {
            FdState::Local { sock, .. } => Brief::Local(*sock),
            FdState::Kern(sock) => Brief::Kern(*sock),
            FdState::Session(sid) => Brief::Session(*sid),
            FdState::Fresh(_) => Brief::Fresh,
        }
    }
}

/// The remaining BSD spellings of the data calls ("The BSD socket
/// interface has ten different ways to move data through a session").
/// Each is a thin veneer over the two core entry points, exactly as the
/// BSD socket layer funnels them into `sosend`/`soreceive`.
impl AppLib {
    /// `write(2)`.
    pub fn write(
        this: &AppHandle,
        sim: &mut Sim,
        fd: Fd,
        data: &[u8],
    ) -> Result<usize, SocketError> {
        AppLib::send(this, sim, fd, data)
    }

    /// `read(2)`.
    pub fn read(
        this: &AppHandle,
        sim: &mut Sim,
        fd: Fd,
        buf: &mut [u8],
    ) -> Result<usize, SocketError> {
        AppLib::recv(this, sim, fd, buf)
    }

    /// `writev(2)`: gathers the iovec and sends. Returns bytes queued;
    /// a short count means the send buffer filled mid-gather.
    pub fn writev(
        this: &AppHandle,
        sim: &mut Sim,
        fd: Fd,
        iov: &[&[u8]],
    ) -> Result<usize, SocketError> {
        let mut total = 0;
        for piece in iov {
            match AppLib::send(this, sim, fd, piece) {
                Ok(n) => {
                    total += n;
                    if n < piece.len() {
                        break;
                    }
                }
                Err(SocketError::WouldBlock) if total > 0 => break,
                Err(e) => return Err(e),
            }
        }
        Ok(total)
    }

    /// `readv(2)`: scatters into the iovec. Returns bytes delivered.
    pub fn readv(
        this: &AppHandle,
        sim: &mut Sim,
        fd: Fd,
        iov: &mut [&mut [u8]],
    ) -> Result<usize, SocketError> {
        let mut total = 0;
        for piece in iov.iter_mut() {
            match AppLib::recv(this, sim, fd, piece) {
                Ok(0) => break,
                Ok(n) => {
                    total += n;
                    if n < piece.len() {
                        break;
                    }
                }
                Err(SocketError::WouldBlock) if total > 0 => break,
                Err(e) => return Err(e),
            }
        }
        Ok(total)
    }

    /// `sendmsg(2)` (data portion: gathered iovec plus an optional
    /// destination).
    pub fn sendmsg(
        this: &AppHandle,
        sim: &mut Sim,
        fd: Fd,
        iov: &[&[u8]],
        dst: Option<InetAddr>,
    ) -> Result<usize, SocketError> {
        // Datagram semantics require one atomic message.
        let flat: Vec<u8> = iov.concat();
        AppLib::sendto(this, sim, fd, &flat, dst)
    }

    /// `recvmsg(2)` (data portion: scattered into the iovec, sender
    /// address returned).
    pub fn recvmsg(
        this: &AppHandle,
        sim: &mut Sim,
        fd: Fd,
        iov: &mut [&mut [u8]],
    ) -> Result<(usize, InetAddr), SocketError> {
        let total: usize = iov.iter().map(|p| p.len()).sum();
        let mut flat = vec![0u8; total];
        let (n, from) = AppLib::recvfrom(this, sim, fd, &mut flat)?;
        let mut off = 0;
        for piece in iov.iter_mut() {
            if off >= n {
                break;
            }
            let take = piece.len().min(n - off);
            piece[..take].copy_from_slice(&flat[off..off + take]);
            off += take;
        }
        Ok((n, from))
    }
}
