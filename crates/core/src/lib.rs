//! The application-level protocol library — the paper's primary
//! contribution.
//!
//! An [`AppLib`] lives in one application's address space and exports
//! the BSD socket programming interface through a *proxy* (§3.2,
//! Table 1): calls are "either handled locally, forwarded untouched to
//! the operating system server, or translated into an alternate
//! sequence of calls on the operating system server".
//!
//! - **Send and receive run entirely in the application.** Once a
//!   session has migrated in, `send`/`sendto`/`recv`/`recvfrom` (and
//!   the other BSD variants, which are thin wrappers) call straight
//!   into the application-linked [`NetStack`] — no protection boundary
//!   is crossed except the packet send trap at the very bottom.
//! - **Heavyweight operations go to the server.** `socket`, `bind`,
//!   `connect`, `listen`, `accept` become `proxy_*` RPCs; `fork`
//!   returns sessions to the server first; `close` migrates the
//!   session back so the server can run the shutdown protocol.
//! - **`select` is cooperative** (§3.2): locally-managed descriptors
//!   are checked in the library; their status is reported to the
//!   server with `proxy_status` so a single server-side `select` can
//!   wait on both kinds at once. When every watched descriptor is
//!   local, the server is not involved at all.
//! - **Metastate is cached** (§3.3): routes and ARP entries arrive
//!   with each migrated session and on demand via resolver RPCs; the
//!   server invalidates them through callbacks.
//!
//! The same [`AppLib`] type also embodies the two baseline
//! architectures the paper compares against, selected by [`ApiMode`]:
//! `InKernel` drives a kernel-placement stack through traps (Mach 2.5 /
//! Ultrix / 386BSD), and `ServerBased` forwards every operation,
//! including data transfer, to the server over the four-copy RPC path
//! (UX / BNR2SS). The three modes share every line of protocol code.

pub mod control;
pub mod data;
pub mod select;

use std::cell::{Cell, RefCell};
use std::collections::{HashMap, HashSet};
use std::net::Ipv4Addr;
use std::rc::{Rc, Weak};

use psd_kernel::{EndpointId, KernelHandle, RxMode};
use psd_netstack::stack::StackHandle;
use psd_netstack::{InetAddr, NetStack, Placement, SockEvent, SockId};
use psd_server::{PortNamespace, ProcId, Proto, ServerHandle, SessionId, UserNetIf};
use psd_sim::{Charge, CostModel, Cpu, Domain, Sim, SimTime};

pub use select::SelectOutcome;

/// A file descriptor in the application.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct Fd(pub i32);

/// Which protocol architecture this application runs against.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ApiMode {
    /// Monolithic baseline: sockets live in the in-kernel stack; every
    /// call is a trap.
    InKernel,
    /// Single-server baseline: sockets live in the operating system
    /// server; every call — including send and receive — is an RPC.
    ServerBased,
    /// The paper's system: the critical path runs in this library;
    /// sessions migrate in and out. `rx_mode` selects the §4.1
    /// user/kernel receive interface (IPC, SHM, SHM-IPF).
    Library {
        /// Receive-path variant.
        rx_mode: RxMode,
    },
}

/// Per-descriptor event callback (the analogue of a blocked thread
/// being woken: the application resumes the blocked operation).
pub type FdEventFn = Rc<RefCell<dyn FnMut(&mut Sim, Fd, SockEvent)>>;

pub(crate) enum FdState {
    /// `socket()` has been called; nothing realized yet (the session
    /// exists at the server in server/library modes).
    Fresh(Option<SessionId>),
    /// The session is server-resident; data moves by RPC.
    Session(SessionId),
    /// The session lives in this library's stack (migrated in).
    Local {
        session: Option<SessionId>,
        sock: SockId,
        endpoint: Rc<Cell<Option<EndpointId>>>,
    },
    /// A socket in the in-kernel stack (monolithic baseline).
    Kern(SockId),
}

pub(crate) struct FdEntry {
    pub proto: Proto,
    pub state: FdState,
}

/// Counters for tests and benchmarks.
#[derive(Clone, Copy, Debug, Default)]
pub struct AppStats {
    /// Control RPCs issued (proxy calls).
    pub control_rpcs: u64,
    /// Data RPCs issued (server-based data path).
    pub data_rpcs: u64,
    /// Sessions migrated into this application.
    pub migrations_in: u64,
    /// Sessions returned to the server.
    pub migrations_out: u64,
    /// `proxy_status` notifications sent for select cooperation.
    pub status_reports: u64,
    /// ARP cache invalidations received from the server.
    pub arp_invalidations: u64,
    /// Proxy RPC attempts retried after a deadline expired (lost
    /// request, lost reply, or crashed server).
    pub rpc_retries: u64,
    /// Proxy RPCs abandoned after the retry budget was exhausted.
    pub rpc_timeouts: u64,
}

/// The application library.
pub struct AppLib {
    pub(crate) me: Weak<RefCell<AppLib>>,
    pub(crate) mode: ApiMode,
    pub(crate) costs: CostModel,
    pub(crate) cpu: Rc<RefCell<Cpu>>,
    pub(crate) kernel: KernelHandle,
    pub(crate) server: Option<ServerHandle>,
    pub(crate) proc: Option<ProcId>,
    /// The protocol stack this library uses for local sessions: its own
    /// (Library mode) or the host's in-kernel stack (InKernel mode).
    pub(crate) stack: Option<StackHandle>,
    /// Port namespace for the in-kernel baseline (shared per host).
    pub(crate) kern_ports: Option<Rc<RefCell<PortNamespace>>>,
    pub(crate) host_ip: Ipv4Addr,
    pub(crate) fds: HashMap<Fd, FdEntry>,
    pub(crate) next_fd: i32,
    pub(crate) sock_to_fd: HashMap<SockId, Fd>,
    pub(crate) session_to_fd: HashMap<SessionId, Fd>,
    pub(crate) handlers: HashMap<Fd, FdEventFn>,
    /// Listener → connections accepted by the server but not yet
    /// claimed with `accept()`.
    pub(crate) accept_ready: HashMap<Fd, Vec<Fd>>,
    /// Listeners with an outstanding `proxy_accept`.
    pub(crate) accept_pending: HashSet<Fd>,
    /// Local descriptors currently watched by a select (their status
    /// changes are reported to the server).
    pub(crate) watched: HashSet<Fd>,
    pub(crate) local_selects: Vec<select::LocalWaiter>,
    /// Monotonic counter feeding [`psd_server::RetryToken`]s, so every
    /// retryable RPC from this application is uniquely identified.
    pub(crate) next_token: u64,
    /// Counters.
    pub stats: AppStats,
}

/// Shared handle to an application library.
pub type AppHandle = Rc<RefCell<AppLib>>;

impl AppLib {
    /// Creates an application in the decomposed (library) architecture.
    pub fn new_library(kernel: &KernelHandle, server: &ServerHandle, rx_mode: RxMode) -> AppHandle {
        let costs = kernel.borrow().costs().clone();
        let cpu = kernel.borrow().cpu();
        let host_ip = server.borrow().stack().borrow().ip_addr;
        // The application links its own protocol stack.
        let stack = NetStack::new(Placement::Library, costs.clone(), cpu.clone(), host_ip);
        stack.borrow_mut().set_ifnet(UserNetIf::new(kernel.clone()));
        let proc = server.borrow_mut().register_process();
        let app = Rc::new(RefCell::new(AppLib {
            me: Weak::new(),
            mode: ApiMode::Library { rx_mode },
            costs,
            cpu,
            kernel: kernel.clone(),
            server: Some(server.clone()),
            proc: Some(proc),
            stack: Some(stack.clone()),
            kern_ports: None,
            host_ip,
            fds: HashMap::new(),
            next_fd: 3,
            sock_to_fd: HashMap::new(),
            session_to_fd: HashMap::new(),
            handlers: HashMap::new(),
            accept_ready: HashMap::new(),
            accept_pending: HashSet::new(),
            watched: HashSet::new(),
            local_selects: Vec::new(),
            next_token: 1,
            stats: AppStats::default(),
        }));
        app.borrow_mut().me = Rc::downgrade(&app);

        // The ARP resolver upcall: a control RPC to the server.
        let weak_server = Rc::downgrade(server);
        let weak_app = Rc::downgrade(&app);
        stack
            .borrow_mut()
            .set_arp_resolver(Box::new(move |sim, charge, ip| {
                let server = weak_server.upgrade()?;
                if let Some(app) = weak_app.upgrade() {
                    app.borrow_mut().stats.control_rpcs += 1;
                }
                psd_server::OsServer::proxy_arp_lookup(&server, sim, charge, ip)
            }));

        // A datagram classified to this application's endpoint before
        // a fork/close tore the filter down can still land here after
        // the socket has been exported. Hand it back to the server,
        // which re-presents it to the (now retargeted) classify path.
        let weak_server = Rc::downgrade(server);
        stack
            .borrow_mut()
            .set_unclaimed_udp_hook(Rc::new(RefCell::new(
                move |sim: &mut Sim, dst: InetAddr, src: InetAddr, data: &[u8]| {
                    let Some(server) = weak_server.upgrade() else {
                        return false;
                    };
                    psd_server::OsServer::reclaim_migrated_udp(&server, sim, dst, src, data)
                },
            )));

        // Metastate invalidation callback (§3.3).
        let weak_app = Rc::downgrade(&app);
        let weak_stack = Rc::downgrade(&stack);
        server
            .borrow_mut()
            .register_arp_listener(Rc::new(RefCell::new(
                move |_sim: &mut Sim, ip: Ipv4Addr| {
                    if let Some(stack) = weak_stack.upgrade() {
                        stack.borrow_mut().arp.invalidate(ip);
                    }
                    if let Some(app) = weak_app.upgrade() {
                        app.borrow_mut().stats.arp_invalidations += 1;
                    }
                },
            )));

        // Route local stack events to descriptors.
        AppLib::install_stack_router(&app, &stack);
        app
    }

    /// Creates an application in the server-based baseline.
    pub fn new_server_based(kernel: &KernelHandle, server: &ServerHandle) -> AppHandle {
        let costs = kernel.borrow().costs().clone();
        let cpu = kernel.borrow().cpu();
        let host_ip = server.borrow().stack().borrow().ip_addr;
        let proc = server.borrow_mut().register_process();
        let app = Rc::new(RefCell::new(AppLib {
            me: Weak::new(),
            mode: ApiMode::ServerBased,
            costs,
            cpu,
            kernel: kernel.clone(),
            server: Some(server.clone()),
            proc: Some(proc),
            stack: None,
            kern_ports: None,
            host_ip,
            fds: HashMap::new(),
            next_fd: 3,
            sock_to_fd: HashMap::new(),
            session_to_fd: HashMap::new(),
            handlers: HashMap::new(),
            accept_ready: HashMap::new(),
            accept_pending: HashSet::new(),
            watched: HashSet::new(),
            local_selects: Vec::new(),
            next_token: 1,
            stats: AppStats::default(),
        }));
        app.borrow_mut().me = Rc::downgrade(&app);
        app
    }

    /// Creates an application in the monolithic in-kernel baseline.
    /// `kern_stack` and `kern_ports` are shared by every application on
    /// the host.
    pub fn new_inkernel(
        kernel: &KernelHandle,
        kern_stack: &StackHandle,
        kern_ports: &Rc<RefCell<PortNamespace>>,
    ) -> AppHandle {
        let costs = kernel.borrow().costs().clone();
        let cpu = kernel.borrow().cpu();
        let host_ip = kern_stack.borrow().ip_addr;
        let app = Rc::new(RefCell::new(AppLib {
            me: Weak::new(),
            mode: ApiMode::InKernel,
            costs,
            cpu,
            kernel: kernel.clone(),
            server: None,
            proc: None,
            stack: Some(kern_stack.clone()),
            kern_ports: Some(kern_ports.clone()),
            host_ip,
            fds: HashMap::new(),
            next_fd: 3,
            sock_to_fd: HashMap::new(),
            session_to_fd: HashMap::new(),
            handlers: HashMap::new(),
            accept_ready: HashMap::new(),
            accept_pending: HashSet::new(),
            watched: HashSet::new(),
            local_selects: Vec::new(),
            next_token: 1,
            stats: AppStats::default(),
        }));
        app.borrow_mut().me = Rc::downgrade(&app);
        AppLib::install_stack_router(&app, kern_stack);
        app
    }

    /// The architecture this application runs against.
    pub fn mode(&self) -> ApiMode {
        self.mode
    }

    /// The server-side process identity, if any.
    pub fn proc_id(&self) -> Option<ProcId> {
        self.proc
    }

    /// This application's protocol stack, if it has one.
    pub fn stack(&self) -> Option<StackHandle> {
        self.stack.clone()
    }

    /// Registers the per-descriptor event handler.
    pub fn set_event_handler(&mut self, fd: Fd, handler: FdEventFn) {
        self.handlers.insert(fd, handler);
    }

    pub(crate) fn alloc_fd(&mut self, proto: Proto, state: FdState) -> Fd {
        let fd = Fd(self.next_fd);
        self.next_fd += 1;
        self.fds.insert(fd, FdEntry { proto, state });
        fd
    }

    /// Opens a CPU charge cursor at the current time (for callers that
    /// perform application-level work they want priced, e.g. benchmark
    /// bookkeeping). The cursor is rooted at an `app` profiling site:
    /// every charge opened here ends in the same call (syscall-shaped),
    /// so the site needs no balancing pop.
    pub fn begin(&self, sim: &Sim) -> Charge {
        let mut charge = self.cpu.borrow_mut().begin(sim.now());
        charge.site_push(Domain::Library, "app");
        charge
    }

    /// Completes a charge cursor.
    pub fn finish(&self, charge: Charge) {
        self.cpu.borrow_mut().finish(charge);
    }

    /// Hooks the (library or kernel) stack's per-socket events into the
    /// descriptor table. Sockets are registered lazily as fds bind to
    /// them via [`AppLib::register_sock`].
    fn install_stack_router(_app: &AppHandle, _stack: &StackHandle) {
        // Routing is attached per-socket in `register_sock`; nothing
        // global is needed.
    }

    /// Associates a stack socket with a descriptor, wiring event
    /// routing: the stack's sink maps the socket back to the fd,
    /// handles select cooperation, and invokes the user handler.
    pub(crate) fn register_sock(this: &AppHandle, sock: SockId, fd: Fd) {
        let stack = this
            .borrow()
            .stack
            .clone()
            .expect("register_sock requires a stack");
        this.borrow_mut().sock_to_fd.insert(sock, fd);
        let weak = Rc::downgrade(this);
        stack.borrow_mut().set_sink(
            sock,
            Rc::new(RefCell::new(
                move |sim: &mut Sim, sock: SockId, ev: SockEvent| {
                    let Some(app) = weak.upgrade() else { return };
                    AppLib::on_sock_event(&app, sim, sock, ev);
                },
            )),
        );
    }

    fn on_sock_event(this: &AppHandle, sim: &mut Sim, sock: SockId, ev: SockEvent) {
        let (fd, handler, report) = {
            let app = this.borrow();
            let Some(fd) = app.sock_to_fd.get(&sock).copied() else {
                return;
            };
            let handler = app.handlers.get(&fd).cloned();
            // Cooperative select: report status changes on watched
            // local descriptors to the server (§3.2).
            let report = app.watched.contains(&fd)
                && matches!(ev, SockEvent::Readable | SockEvent::Writable);
            (fd, handler, report)
        };
        if report {
            AppLib::report_status(this, sim, fd);
        }
        select::rescan_local(this, sim);
        if let Some(h) = handler {
            h.borrow_mut()(sim, fd, ev);
        }
    }

    /// Reports a local descriptor's readiness to the server
    /// (`proxy_status`).
    pub(crate) fn report_status(this: &AppHandle, sim: &mut Sim, fd: Fd) {
        let (server, session, readable, writable) = {
            let app = this.borrow();
            let Some(server) = app.server.clone() else {
                return;
            };
            let Some(entry) = app.fds.get(&fd) else {
                return;
            };
            let FdState::Local {
                session: Some(sid),
                sock,
                ..
            } = &entry.state
            else {
                return;
            };
            let stack = app.stack.as_ref().expect("local fd has stack");
            let st = stack.borrow();
            (
                server,
                *sid,
                st.readable(*sock) > 0 || st.at_eof(*sock),
                st.writable(*sock) > 0,
            )
        };
        this.borrow_mut().stats.status_reports += 1;
        let charge = this.borrow().begin(sim);
        let mut charge = charge;
        psd_server::OsServer::proxy_status(&server, sim, &mut charge, session, readable, writable);
        this.borrow().finish(charge);
    }

    /// Polls a descriptor's readiness without blocking.
    pub fn poll(&self, fd: Fd) -> (bool, bool) {
        let Some(entry) = self.fds.get(&fd) else {
            return (false, false);
        };
        match &entry.state {
            FdState::Local { sock, .. } | FdState::Kern(sock) => {
                let stack = self.stack.as_ref().expect("local fd has stack");
                let st = stack.borrow();
                let accept_ready = self
                    .accept_ready
                    .get(&fd)
                    .map(|q| !q.is_empty())
                    .unwrap_or(false);
                (
                    st.readable(*sock) > 0 || st.at_eof(*sock) || accept_ready,
                    st.writable(*sock) > 0,
                )
            }
            FdState::Session(sid) => {
                let accept_ready = self
                    .accept_ready
                    .get(&fd)
                    .map(|q| !q.is_empty())
                    .unwrap_or(false);
                let server = self.server.as_ref().expect("session fd has server");
                let (r, w) = server.borrow().data_poll(*sid);
                (r > 0 || accept_ready, w > 0)
            }
            FdState::Fresh(_) => (false, false),
        }
    }

    /// The descriptor's local endpoint.
    pub fn local_addr(&self, fd: Fd) -> Option<InetAddr> {
        match &self.fds.get(&fd)?.state {
            FdState::Local { sock, .. } | FdState::Kern(sock) => {
                self.stack.as_ref()?.borrow().local_addr(*sock)
            }
            FdState::Session(_) | FdState::Fresh(_) => None,
        }
    }

    /// The descriptor's remote endpoint, if connected.
    pub fn remote_addr(&self, fd: Fd) -> Option<InetAddr> {
        match &self.fds.get(&fd)?.state {
            FdState::Local { sock, .. } | FdState::Kern(sock) => {
                self.stack.as_ref()?.borrow().remote_addr(*sock)
            }
            FdState::Session(_) | FdState::Fresh(_) => None,
        }
    }

    /// Sets `TCP_NODELAY` on a local descriptor.
    pub fn set_nodelay(&mut self, fd: Fd, nodelay: bool) {
        if let Some(FdEntry {
            state: FdState::Local { sock, .. } | FdState::Kern(sock),
            ..
        }) = self.fds.get(&fd)
        {
            if let Some(stack) = &self.stack {
                stack.borrow_mut().set_nodelay(*sock, nodelay);
            }
        }
    }

    /// Resizes the receive buffer (`SO_RCVBUF`) — the knob the paper
    /// tuned per configuration for Table 2.
    pub fn set_recv_buffer(&mut self, fd: Fd, size: usize) {
        if let Some(FdEntry {
            state: FdState::Local { sock, .. } | FdState::Kern(sock),
            ..
        }) = self.fds.get(&fd)
        {
            if let Some(stack) = &self.stack {
                stack.borrow_mut().set_recv_buffer(*sock, size);
            }
        }
    }

    /// True if the descriptor exists.
    pub fn fd_exists(&self, fd: Fd) -> bool {
        self.fds.contains_key(&fd)
    }

    /// Number of open descriptors.
    pub fn open_fds(&self) -> usize {
        self.fds.len()
    }

    /// The entry side of a data-path syscall. Table 4 charges most of
    /// the trap to `entry/copyin` (kernel TCP: 50 µs entry vs 32 µs
    /// exit), so the split is 80/20.
    pub(crate) fn trap_entry(&self) -> u64 {
        self.costs.trap * 8 / 10
    }

    /// The exit side of a data-path syscall.
    pub(crate) fn trap_exit(&self) -> u64 {
        self.costs.trap * 2 / 10
    }
}

/// A timeout value for blocking-style operations.
pub type Timeout = Option<SimTime>;
