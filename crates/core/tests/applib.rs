//! Crate-level tests for the application library: descriptor lifecycle
//! and mode-specific behaviour, against a hand-built host (no
//! psd-systems, which depends on this crate).

use psd_core::{ApiMode, AppLib};
use psd_kernel::{Kernel, KernelHandle, RxMode};
use psd_netdev::{Ethernet, EthernetHandle};
use psd_netstack::{InetAddr, NetStack, Placement, RouteTable, SocketError};
use psd_server::{KernelNetIf, OsServer, PortNamespace, Proto, ServerHandle};
use psd_sim::{CostModel, Cpu, Sim};
use psd_wire::EtherAddr;
use std::cell::RefCell;
use std::net::Ipv4Addr;
use std::rc::Rc;

struct MiniHost {
    kernel: KernelHandle,
    server: ServerHandle,
}

fn mini_host(sim: &mut Sim, ether: &EthernetHandle, ip: Ipv4Addr, station: u32) -> MiniHost {
    let cpu = Rc::new(RefCell::new(Cpu::new()));
    let kernel = Kernel::new(
        CostModel::decstation_5000_200(),
        cpu,
        EtherAddr::local(station),
    );
    Kernel::connect(&kernel, ether);
    let server = OsServer::new(&kernel, ip);
    server.borrow().stack().borrow_mut().routes =
        RouteTable::directly_attached(Ipv4Addr::new(10, 0, 0, 0), Ipv4Addr::new(255, 255, 255, 0));
    let _ = sim;
    MiniHost { kernel, server }
}

#[test]
fn library_app_reports_mode_and_stack() {
    let mut sim = Sim::new(1);
    let ether = Ethernet::ten_megabit(&mut sim);
    let host = mini_host(&mut sim, &ether, Ipv4Addr::new(10, 0, 0, 1), 1);
    let app = AppLib::new_library(&host.kernel, &host.server, RxMode::Shm);
    assert!(matches!(app.borrow().mode(), ApiMode::Library { .. }));
    assert!(app.borrow().stack().is_some());
    assert!(app.borrow().proc_id().is_some());
    assert_eq!(app.borrow().open_fds(), 0);
}

#[test]
fn descriptor_lifecycle_and_errors() {
    let mut sim = Sim::new(2);
    let ether = Ethernet::ten_megabit(&mut sim);
    let host = mini_host(&mut sim, &ether, Ipv4Addr::new(10, 0, 0, 1), 1);
    let app = AppLib::new_library(&host.kernel, &host.server, RxMode::Ipc);

    let fd = AppLib::socket(&app, &mut sim, Proto::Udp);
    assert!(app.borrow().fd_exists(fd));
    assert_eq!(app.borrow().open_fds(), 1);

    // Data calls on an unconnected/unbound TCP socket error out cleanly.
    let tfd = AppLib::socket(&app, &mut sim, Proto::Tcp);
    assert_eq!(
        AppLib::send(&app, &mut sim, tfd, b"x").unwrap_err(),
        SocketError::NotConnected
    );
    let mut buf = [0u8; 4];
    assert_eq!(
        AppLib::recv(&app, &mut sim, tfd, &mut buf).unwrap_err(),
        SocketError::NotConnected
    );
    // Unknown descriptors are rejected.
    assert_eq!(
        AppLib::send(&app, &mut sim, psd_core::Fd(99), b"x").unwrap_err(),
        SocketError::BadSocket
    );

    AppLib::close(&app, &mut sim, fd);
    sim.run_to_idle();
    assert!(!app.borrow().fd_exists(fd));
    assert_eq!(app.borrow().open_fds(), 1);
}

#[test]
fn bind_migrates_and_local_addr_is_visible() {
    let mut sim = Sim::new(3);
    let ether = Ethernet::ten_megabit(&mut sim);
    let host = mini_host(&mut sim, &ether, Ipv4Addr::new(10, 0, 0, 1), 1);
    let app = AppLib::new_library(&host.kernel, &host.server, RxMode::ShmIpf);
    let fd = AppLib::socket(&app, &mut sim, Proto::Udp);
    assert_eq!(app.borrow().local_addr(fd), None);
    AppLib::bind(&app, &mut sim, fd, 4242).unwrap();
    assert_eq!(
        app.borrow().local_addr(fd),
        Some(InetAddr::new(Ipv4Addr::new(10, 0, 0, 1), 4242))
    );
    // Ephemeral bind allocates from the server's namespace.
    let fd2 = AppLib::socket(&app, &mut sim, Proto::Udp);
    AppLib::bind(&app, &mut sim, fd2, 0).unwrap();
    let port = app.borrow().local_addr(fd2).unwrap().port;
    assert!((1024..=5000).contains(&port));
}

#[test]
fn newapi_is_library_only() {
    let mut sim = Sim::new(4);
    let ether = Ethernet::ten_megabit(&mut sim);
    let host = mini_host(&mut sim, &ether, Ipv4Addr::new(10, 0, 0, 1), 1);
    let app = AppLib::new_server_based(&host.kernel, &host.server);
    let fd = AppLib::socket(&app, &mut sim, Proto::Udp);
    AppLib::bind(&app, &mut sim, fd, 4242).unwrap();
    assert_eq!(
        AppLib::send_shared(&app, &mut sim, fd, Rc::new(vec![1, 2, 3])).unwrap_err(),
        SocketError::OpNotSupp
    );
    assert_eq!(
        AppLib::recv_shared(&app, &mut sim, fd, 64).unwrap_err(),
        SocketError::OpNotSupp
    );
}

#[test]
fn inkernel_app_drives_the_kernel_stack() {
    let mut sim = Sim::new(5);
    let ether = Ethernet::ten_megabit(&mut sim);
    let cpu = Rc::new(RefCell::new(Cpu::new()));
    let kernel = Kernel::new(
        CostModel::decstation_5000_200(),
        cpu.clone(),
        EtherAddr::local(1),
    );
    Kernel::connect(&kernel, &ether);
    let stack = NetStack::new(
        Placement::Kernel,
        CostModel::decstation_5000_200(),
        cpu,
        Ipv4Addr::new(10, 0, 0, 1),
    );
    stack
        .borrow_mut()
        .set_ifnet(KernelNetIf::new(kernel.clone()));
    stack.borrow_mut().routes =
        RouteTable::directly_attached(Ipv4Addr::new(10, 0, 0, 0), Ipv4Addr::new(255, 255, 255, 0));
    let ports = Rc::new(RefCell::new(PortNamespace::new()));
    let app = AppLib::new_inkernel(&kernel, &stack, &ports);
    assert!(matches!(app.borrow().mode(), ApiMode::InKernel));

    let fd = AppLib::socket(&app, &mut sim, Proto::Udp);
    AppLib::bind(&app, &mut sim, fd, 7000).unwrap();
    assert!(ports.borrow().in_use(Proto::Udp, 7000));
    // Sending puts a frame on the wire via the kernel path (ARP first).
    AppLib::sendto(
        &app,
        &mut sim,
        fd,
        b"out the door",
        Some(InetAddr::new(Ipv4Addr::new(10, 0, 0, 2), 9)),
    )
    .unwrap();
    sim.run_to_idle();
    assert!(
        ether.borrow().stats().tx_frames >= 1,
        "ARP request went out"
    );
    // Closing releases the port.
    AppLib::close(&app, &mut sim, fd);
    assert!(!ports.borrow().in_use(Proto::Udp, 7000));
}

#[test]
fn fork_requires_server_architecture() {
    let mut sim = Sim::new(6);
    let ether = Ethernet::ten_megabit(&mut sim);
    let cpu = Rc::new(RefCell::new(Cpu::new()));
    let kernel = Kernel::new(
        CostModel::decstation_5000_200(),
        cpu.clone(),
        EtherAddr::local(1),
    );
    Kernel::connect(&kernel, &ether);
    let stack = NetStack::new(
        Placement::Kernel,
        CostModel::decstation_5000_200(),
        cpu,
        Ipv4Addr::new(10, 0, 0, 1),
    );
    let ports = Rc::new(RefCell::new(PortNamespace::new()));
    let app = AppLib::new_inkernel(&kernel, &stack, &ports);
    let err = match AppLib::fork(&app, &mut sim) {
        Err(e) => e,
        Ok(_) => panic!("fork must fail in the in-kernel architecture"),
    };
    assert_eq!(err, SocketError::OpNotSupp);
}
