//! Per-layer latency attribution.
//!
//! Table 4 of the paper breaks round-trip latency down by protocol layer
//! ("entry/copyin", "tcp,udp_output", …, "copyout/exit") and marks which
//! components cross a protection boundary. A [`LatencyProbe`] collects the
//! same attribution from [`Charge`](crate::cpu::Charge) cursors: every
//! cost charged to virtual time names the [`Layer`] it belongs to.

use std::cell::RefCell;
use std::fmt;
use std::rc::Rc;

use crate::time::SimTime;

/// The rows of the paper's Table 4, plus bookkeeping categories for time
/// spent outside the data path.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Layer {
    /// Socket-layer entry and copy of the user buffer into mbufs.
    EntryCopyin,
    /// `tcp_output` / `udp_output`: header construction and checksum.
    TcpUdpOutput,
    /// `ip_output`: IP header construction and route lookup.
    IpOutput,
    /// Ethernet output: ARP resolution, framing, handing to the device.
    EtherOutput,
    /// Device interrupt fielding and (for kernel/server paths) the copy
    /// out of device memory into a wired kernel buffer.
    DeviceIntrRead,
    /// Demultiplexing: netisr dispatch and packet-filter execution.
    NetisrPacketFilter,
    /// Delivering the packet to the destination protocol stack across a
    /// protection boundary (library and server paths only).
    KernelCopyout,
    /// Packaging the incoming packet as an mbuf chain and queueing it.
    MbufQueue,
    /// `ipintr`: IP input processing.
    IpIntr,
    /// `tcp_input` / `udp_input`: checksum verification, socket queueing.
    TcpUdpInput,
    /// Waking the application thread that blocks in a receive call.
    WakeupUserThread,
    /// Copying from the socket queue into the caller's buffer and leaving
    /// the protocol.
    CopyoutExit,
    /// Time on the wire.
    NetworkTransit,
    /// Control-path work (proxy RPCs, connection setup) — not part of
    /// Table 4's data path but attributed for completeness.
    Control,
    /// Anything else (timers, retransmissions, background work).
    Other,
}

impl Layer {
    /// All layers in Table 4 presentation order (send path, receive path,
    /// then transit).
    pub const TABLE4_ORDER: [Layer; 13] = [
        Layer::EntryCopyin,
        Layer::TcpUdpOutput,
        Layer::IpOutput,
        Layer::EtherOutput,
        Layer::DeviceIntrRead,
        Layer::NetisrPacketFilter,
        Layer::KernelCopyout,
        Layer::MbufQueue,
        Layer::IpIntr,
        Layer::TcpUdpInput,
        Layer::WakeupUserThread,
        Layer::CopyoutExit,
        Layer::NetworkTransit,
    ];

    /// Every layer, in index order (Table 4 rows first, then the
    /// off-path bookkeeping categories).
    pub const ALL: [Layer; 15] = [
        Layer::EntryCopyin,
        Layer::TcpUdpOutput,
        Layer::IpOutput,
        Layer::EtherOutput,
        Layer::DeviceIntrRead,
        Layer::NetisrPacketFilter,
        Layer::KernelCopyout,
        Layer::MbufQueue,
        Layer::IpIntr,
        Layer::TcpUdpInput,
        Layer::WakeupUserThread,
        Layer::CopyoutExit,
        Layer::NetworkTransit,
        Layer::Control,
        Layer::Other,
    ];

    /// Which path of Table 4 this layer belongs to.
    pub fn path(self) -> PathKind {
        match self {
            Layer::EntryCopyin | Layer::TcpUdpOutput | Layer::IpOutput | Layer::EtherOutput => {
                PathKind::Send
            }
            Layer::DeviceIntrRead
            | Layer::NetisrPacketFilter
            | Layer::KernelCopyout
            | Layer::MbufQueue
            | Layer::IpIntr
            | Layer::TcpUdpInput
            | Layer::WakeupUserThread
            | Layer::CopyoutExit => PathKind::Receive,
            Layer::NetworkTransit => PathKind::Transit,
            Layer::Control | Layer::Other => PathKind::Off,
        }
    }

    /// The row label used in Table 4.
    pub fn label(self) -> &'static str {
        match self {
            Layer::EntryCopyin => "entry/copyin",
            Layer::TcpUdpOutput => "tcp,udp_output",
            Layer::IpOutput => "ip_output",
            Layer::EtherOutput => "ether_output",
            Layer::DeviceIntrRead => "device intr/read",
            Layer::NetisrPacketFilter => "netisr/packet filter",
            Layer::KernelCopyout => "kernel copyout",
            Layer::MbufQueue => "mbuf/queue",
            Layer::IpIntr => "ipintr",
            Layer::TcpUdpInput => "tcp,udp_input",
            Layer::WakeupUserThread => "wakeup user thread",
            Layer::CopyoutExit => "copyout/exit",
            Layer::NetworkTransit => "network transit",
            Layer::Control => "control",
            Layer::Other => "other",
        }
    }

    pub(crate) fn index(self) -> usize {
        match self {
            Layer::EntryCopyin => 0,
            Layer::TcpUdpOutput => 1,
            Layer::IpOutput => 2,
            Layer::EtherOutput => 3,
            Layer::DeviceIntrRead => 4,
            Layer::NetisrPacketFilter => 5,
            Layer::KernelCopyout => 6,
            Layer::MbufQueue => 7,
            Layer::IpIntr => 8,
            Layer::TcpUdpInput => 9,
            Layer::WakeupUserThread => 10,
            Layer::CopyoutExit => 11,
            Layer::NetworkTransit => 12,
            Layer::Control => 13,
            Layer::Other => 14,
        }
    }

    pub(crate) const COUNT: usize = 15;
}

impl fmt::Display for Layer {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// Which half of the round trip a layer contributes to.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum PathKind {
    /// The sender-side data path.
    Send,
    /// The receiver-side data path.
    Receive,
    /// Wire time.
    Transit,
    /// Off the measured data path.
    Off,
}

/// Accumulated time and boundary-crossing counts per layer.
#[derive(Clone, Copy, Default, Debug)]
pub struct LayerStats {
    /// Total virtual time charged to this layer.
    pub total: SimTime,
    /// Number of individual charges.
    pub charges: u64,
    /// Number of protection-boundary crossings charged within this layer
    /// (the paper marks such layers with an asterisk).
    pub crossings: u64,
}

/// Collects per-layer time attribution.
#[derive(Debug)]
pub struct LatencyProbe {
    enabled: bool,
    layers: [LayerStats; Layer::COUNT],
}

/// Shared handle to a probe, stored by every component that charges costs.
pub type ProbeHandle = Rc<RefCell<LatencyProbe>>;

impl LatencyProbe {
    /// Creates an enabled probe.
    pub fn new() -> LatencyProbe {
        LatencyProbe {
            enabled: true,
            layers: [LayerStats::default(); Layer::COUNT],
        }
    }

    /// Creates a shared handle to a fresh probe.
    pub fn shared() -> ProbeHandle {
        Rc::new(RefCell::new(LatencyProbe::new()))
    }

    /// Enables or disables collection (e.g. to skip warm-up traffic).
    pub fn set_enabled(&mut self, enabled: bool) {
        self.enabled = enabled;
    }

    /// True if the probe is recording.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Records `cost` against `layer`.
    pub fn record(&mut self, layer: Layer, cost: SimTime) {
        if self.enabled {
            let s = &mut self.layers[layer.index()];
            s.total += cost;
            s.charges += 1;
        }
    }

    /// Records a protection-boundary crossing within `layer`.
    pub fn record_crossing(&mut self, layer: Layer) {
        if self.enabled {
            self.layers[layer.index()].crossings += 1;
        }
    }

    /// Returns the stats for a layer.
    pub fn layer(&self, layer: Layer) -> LayerStats {
        self.layers[layer.index()]
    }

    /// Sum of the send-path layers.
    pub fn send_total(&self) -> SimTime {
        self.path_total(PathKind::Send)
    }

    /// Sum of the receive-path layers.
    pub fn receive_total(&self) -> SimTime {
        self.path_total(PathKind::Receive)
    }

    /// Sum over one path.
    pub fn path_total(&self, path: PathKind) -> SimTime {
        Layer::TABLE4_ORDER
            .iter()
            .filter(|l| l.path() == path)
            .map(|l| self.layer(*l).total)
            .sum()
    }

    /// Sum over every layer (including off-path categories).
    pub fn grand_total(&self) -> SimTime {
        self.layers.iter().map(|s| s.total).sum()
    }

    /// Clears all statistics.
    pub fn reset(&mut self) {
        self.layers = [LayerStats::default(); Layer::COUNT];
    }
}

impl Default for LatencyProbe {
    fn default() -> LatencyProbe {
        LatencyProbe::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_accumulates() {
        let mut p = LatencyProbe::new();
        p.record(Layer::IpOutput, SimTime::from_micros(10));
        p.record(Layer::IpOutput, SimTime::from_micros(5));
        let s = p.layer(Layer::IpOutput);
        assert_eq!(s.total, SimTime::from_micros(15));
        assert_eq!(s.charges, 2);
    }

    #[test]
    fn disabled_probe_records_nothing() {
        let mut p = LatencyProbe::new();
        p.set_enabled(false);
        p.record(Layer::IpIntr, SimTime::from_micros(10));
        p.record_crossing(Layer::IpIntr);
        assert_eq!(p.layer(Layer::IpIntr).total, SimTime::ZERO);
        assert_eq!(p.layer(Layer::IpIntr).crossings, 0);
    }

    #[test]
    fn path_totals_partition_layers() {
        let mut p = LatencyProbe::new();
        p.record(Layer::EntryCopyin, SimTime::from_micros(1));
        p.record(Layer::TcpUdpInput, SimTime::from_micros(2));
        p.record(Layer::NetworkTransit, SimTime::from_micros(4));
        assert_eq!(p.send_total(), SimTime::from_micros(1));
        assert_eq!(p.receive_total(), SimTime::from_micros(2));
        assert_eq!(p.path_total(PathKind::Transit), SimTime::from_micros(4));
        assert_eq!(p.grand_total(), SimTime::from_micros(7));
    }

    #[test]
    fn reset_clears() {
        let mut p = LatencyProbe::new();
        p.record(Layer::Other, SimTime::from_micros(3));
        p.record_crossing(Layer::Other);
        p.reset();
        assert_eq!(p.grand_total(), SimTime::ZERO);
        assert_eq!(p.layer(Layer::Other).crossings, 0);
    }

    #[test]
    fn table4_order_covers_both_paths() {
        let sends = Layer::TABLE4_ORDER
            .iter()
            .filter(|l| l.path() == PathKind::Send)
            .count();
        let recvs = Layer::TABLE4_ORDER
            .iter()
            .filter(|l| l.path() == PathKind::Receive)
            .count();
        assert_eq!(sends, 4);
        assert_eq!(recvs, 8);
    }

    #[test]
    fn labels_match_paper_rows() {
        assert_eq!(Layer::EntryCopyin.label(), "entry/copyin");
        assert_eq!(Layer::NetisrPacketFilter.label(), "netisr/packet filter");
        assert_eq!(Layer::CopyoutExit.label(), "copyout/exit");
    }
}
