//! Operation census: counting *what happens*, not how long it takes.
//!
//! The paper's argument is structural: the configurations differ in **how
//! many** copies, boundary crossings, wakeups and lock operations each
//! packet incurs, and the latency/throughput differences of Tables 2–4
//! follow from those counts. A [`Census`] records exactly those counts —
//! one monotonic counter per `(operation kind, layer, protection domain)`
//! triple — so tests can assert the structural invariants directly
//! (e.g. "a library send performs zero data-path boundary crossings",
//! "SHM-IPF moves each packet body twice, the server path six times")
//! independent of the cost model.
//!
//! Census counters never charge virtual time: attaching a census to a
//! [`Cpu`](crate::cpu::Cpu) must not perturb any simulated timing, so the
//! numeric output of the table harnesses is byte-identical with and
//! without `--census`.

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::rc::Rc;

use crate::probe::Layer;
use crate::trace::DropReason;

/// The kinds of operations the census distinguishes.
///
/// Each corresponds to a class of work the paper counts when comparing
/// in-kernel, server-based and decomposed (library) protocol stacks.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum OpKind {
    /// A protection-boundary crossing: trap into the kernel, IPC send or
    /// receive, or return to user space.
    BoundaryCrossing,
    /// A copy of a packet *body* (the payload bytes moved end to end).
    PacketBodyCopy,
    /// A copy or construction of protocol header bytes.
    HeaderCopy,
    /// A checksum pass over packet bytes.
    Checksum,
    /// A mutex/lock acquisition (thread-based synchronization, used by
    /// the library and server stacks).
    LockAcquire,
    /// An interrupt-priority-level raise (spl-based synchronization,
    /// used by the in-kernel stack and emulated by the server).
    SplRaise,
    /// A thread wakeup (scheduler activation of a blocked receiver).
    Wakeup,
    /// A device interrupt dispatched.
    Interrupt,
    /// One packet-filter program executed over a frame.
    FilterRun,
    /// One session migrated between protection domains (capsule export
    /// or import).
    SessionMigration,
}

impl OpKind {
    /// Every kind, in census presentation order.
    pub const ALL: [OpKind; 10] = [
        OpKind::BoundaryCrossing,
        OpKind::PacketBodyCopy,
        OpKind::HeaderCopy,
        OpKind::Checksum,
        OpKind::LockAcquire,
        OpKind::SplRaise,
        OpKind::Wakeup,
        OpKind::Interrupt,
        OpKind::FilterRun,
        OpKind::SessionMigration,
    ];

    /// Short label used in census snapshots.
    pub fn label(self) -> &'static str {
        match self {
            OpKind::BoundaryCrossing => "boundary_crossing",
            OpKind::PacketBodyCopy => "packet_body_copy",
            OpKind::HeaderCopy => "header_copy",
            OpKind::Checksum => "checksum",
            OpKind::LockAcquire => "lock_acquire",
            OpKind::SplRaise => "spl_raise",
            OpKind::Wakeup => "wakeup",
            OpKind::Interrupt => "interrupt",
            OpKind::FilterRun => "filter_run",
            OpKind::SessionMigration => "session_migration",
        }
    }

    pub(crate) fn index(self) -> usize {
        match self {
            OpKind::BoundaryCrossing => 0,
            OpKind::PacketBodyCopy => 1,
            OpKind::HeaderCopy => 2,
            OpKind::Checksum => 3,
            OpKind::LockAcquire => 4,
            OpKind::SplRaise => 5,
            OpKind::Wakeup => 6,
            OpKind::Interrupt => 7,
            OpKind::FilterRun => 8,
            OpKind::SessionMigration => 9,
        }
    }

    pub(crate) const COUNT: usize = 10;
}

/// The protection domain in which a counted operation executed.
///
/// Distinct from [`Placement`](../psd_netstack) (where a protocol *stack*
/// lives): a library-placed stack still performs some operations inside
/// the kernel (the packet-send trap, the receive-side demultiplex), and
/// the census attributes each operation to where it actually ran.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum Domain {
    /// The operating-system kernel.
    Kernel,
    /// The user-space OS/network server.
    Server,
    /// The application's own address space (in-library protocol code or
    /// the emulation library's stubs).
    Library,
}

impl Domain {
    /// Every domain, in census presentation order.
    pub const ALL: [Domain; 3] = [Domain::Kernel, Domain::Server, Domain::Library];

    /// Short label used in census snapshots.
    pub fn label(self) -> &'static str {
        match self {
            Domain::Kernel => "kernel",
            Domain::Server => "server",
            Domain::Library => "library",
        }
    }

    fn index(self) -> usize {
        match self {
            Domain::Kernel => 0,
            Domain::Server => 1,
            Domain::Library => 2,
        }
    }

    const COUNT: usize = 3;
}

/// Monotonic operation counters keyed by `(kind, layer, domain)`, plus
/// optional per-scope counters (e.g. filter runs per endpoint).
#[derive(Debug)]
pub struct Census {
    enabled: bool,
    counts: [[[u64; Domain::COUNT]; Layer::COUNT]; OpKind::COUNT],
    drops: [[u64; Domain::COUNT]; DropReason::COUNT],
    scoped: BTreeMap<(u8, u64), u64>,
}

/// Shared handle to a census, stored by every component that counts
/// operations (mirrors [`ProbeHandle`](crate::probe::ProbeHandle)).
pub type CensusHandle = Rc<RefCell<Census>>;

impl Census {
    /// Creates an enabled census with all counters at zero.
    pub fn new() -> Census {
        Census {
            enabled: true,
            counts: [[[0; Domain::COUNT]; Layer::COUNT]; OpKind::COUNT],
            drops: [[0; Domain::COUNT]; DropReason::COUNT],
            scoped: BTreeMap::new(),
        }
    }

    /// Creates a shared handle to a fresh census.
    pub fn shared() -> CensusHandle {
        Rc::new(RefCell::new(Census::new()))
    }

    /// Enables or disables counting (e.g. to skip warm-up traffic).
    pub fn set_enabled(&mut self, enabled: bool) {
        self.enabled = enabled;
    }

    /// True if the census is counting.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Counts one occurrence of `op` in `domain` within `layer`.
    pub fn note(&mut self, op: OpKind, domain: Domain, layer: Layer) {
        self.note_n(op, domain, layer, 1);
    }

    /// Counts `n` occurrences of `op` in `domain` within `layer`.
    pub fn note_n(&mut self, op: OpKind, domain: Domain, layer: Layer, n: u64) {
        if self.enabled {
            self.counts[op.index()][layer.index()][domain.index()] += n;
        }
    }

    /// Counts `n` occurrences of `op` against an opaque scope id (e.g. an
    /// endpoint id, for per-session filter-run attribution). Scoped counts
    /// are additional to — not part of — the `(kind, layer, domain)`
    /// counters.
    pub fn note_scoped(&mut self, op: OpKind, scope: u64, n: u64) {
        if self.enabled {
            *self.scoped.entry((op.index() as u8, scope)).or_insert(0) += n;
        }
    }

    /// Counts one packet dropped for `reason` in `domain`. Drops are a
    /// separate grid from the operation counters: every drop is also a
    /// terminal state in the packet-lifecycle trace, and the always-on
    /// per-component [`DropCounters`](crate::trace::DropCounters) carry
    /// the same taxonomy when no census is attached.
    pub fn note_drop(&mut self, reason: DropReason, domain: Domain) {
        if self.enabled {
            self.drops[reason.index()][domain.index()] += 1;
        }
    }

    /// The drop count for one `(reason, domain)` cell.
    pub fn drop_count(&self, reason: DropReason, domain: Domain) -> u64 {
        self.drops[reason.index()][domain.index()]
    }

    /// Total drops for `reason` across all domains.
    pub fn drop_total(&self, reason: DropReason) -> u64 {
        self.drops[reason.index()].iter().sum()
    }

    /// The count for one `(kind, domain, layer)` cell.
    pub fn count(&self, op: OpKind, domain: Domain, layer: Layer) -> u64 {
        self.counts[op.index()][layer.index()][domain.index()]
    }

    /// Total count of `op` across all layers and domains.
    pub fn total(&self, op: OpKind) -> u64 {
        self.counts[op.index()]
            .iter()
            .map(|per_layer| per_layer.iter().sum::<u64>())
            .sum()
    }

    /// Total count of `op` in one domain, across all layers.
    pub fn domain_total(&self, op: OpKind, domain: Domain) -> u64 {
        self.counts[op.index()]
            .iter()
            .map(|per_layer| per_layer[domain.index()])
            .sum()
    }

    /// Total count of `op` in one layer, across all domains.
    pub fn layer_total(&self, op: OpKind, layer: Layer) -> u64 {
        self.counts[op.index()][layer.index()].iter().sum()
    }

    /// The scoped count for `(op, scope)`, zero if never noted.
    pub fn scoped(&self, op: OpKind, scope: u64) -> u64 {
        self.scoped
            .get(&(op.index() as u8, scope))
            .copied()
            .unwrap_or(0)
    }

    /// Clears all counters.
    pub fn reset(&mut self) {
        self.counts = [[[0; Domain::COUNT]; Layer::COUNT]; OpKind::COUNT];
        self.drops = [[0; Domain::COUNT]; DropReason::COUNT];
        self.scoped.clear();
    }

    /// A deterministic text rendering of every nonzero counter, one per
    /// line, in fixed `(kind, layer, domain)` order. Two censuses over
    /// identical seeded runs produce byte-identical snapshots.
    pub fn snapshot(&self) -> String {
        let mut out = String::new();
        for op in OpKind::ALL {
            for layer in Layer::ALL {
                for domain in Domain::ALL {
                    let n = self.count(op, domain, layer);
                    if n != 0 {
                        let _ = writeln!(
                            out,
                            "{:<18} {:<20} {:<8} {}",
                            op.label(),
                            layer.label(),
                            domain.label(),
                            n
                        );
                    }
                }
            }
        }
        for reason in DropReason::ALL {
            for domain in Domain::ALL {
                let n = self.drop_count(reason, domain);
                if n != 0 {
                    let _ = writeln!(
                        out,
                        "{:<18} {:<20} {:<8} {}",
                        "drop",
                        reason.label(),
                        domain.label(),
                        n
                    );
                }
            }
        }
        for (&(op_idx, scope), &n) in &self.scoped {
            let op = OpKind::ALL[op_idx as usize];
            let _ = writeln!(out, "{:<18} scope={:<14} {}", op.label(), scope, n);
        }
        out
    }

    /// A machine-readable JSON rendering of the same nonzero counters
    /// [`Census::snapshot`] prints, in the same deterministic order.
    /// Built by hand (no serializer dependency); all keys and labels
    /// are ASCII and need no escaping.
    pub fn snapshot_json(&self) -> String {
        let mut out = String::from("{\"ops\":[");
        let mut first = true;
        for op in OpKind::ALL {
            for layer in Layer::ALL {
                for domain in Domain::ALL {
                    let n = self.count(op, domain, layer);
                    if n != 0 {
                        if !first {
                            out.push(',');
                        }
                        first = false;
                        let _ = write!(
                            out,
                            "{{\"op\":\"{}\",\"layer\":\"{}\",\"domain\":\"{}\",\"n\":{}}}",
                            op.label(),
                            layer.label(),
                            domain.label(),
                            n
                        );
                    }
                }
            }
        }
        out.push_str("],\"drops\":[");
        let mut first = true;
        for reason in DropReason::ALL {
            for domain in Domain::ALL {
                let n = self.drop_count(reason, domain);
                if n != 0 {
                    if !first {
                        out.push(',');
                    }
                    first = false;
                    let _ = write!(
                        out,
                        "{{\"reason\":\"{}\",\"domain\":\"{}\",\"n\":{}}}",
                        reason.label(),
                        domain.label(),
                        n
                    );
                }
            }
        }
        out.push_str("],\"scoped\":[");
        let mut first = true;
        for (&(op_idx, scope), &n) in &self.scoped {
            if !first {
                out.push(',');
            }
            first = false;
            let op = OpKind::ALL[op_idx as usize];
            let _ = write!(
                out,
                "{{\"op\":\"{}\",\"scope\":{},\"n\":{}}}",
                op.label(),
                scope,
                n
            );
        }
        out.push_str("]}");
        out
    }
}

impl Default for Census {
    fn default() -> Census {
        Census::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn note_accumulates_per_cell() {
        let mut c = Census::new();
        c.note(OpKind::PacketBodyCopy, Domain::Kernel, Layer::KernelCopyout);
        c.note_n(
            OpKind::PacketBodyCopy,
            Domain::Kernel,
            Layer::KernelCopyout,
            2,
        );
        c.note(OpKind::PacketBodyCopy, Domain::Library, Layer::CopyoutExit);
        assert_eq!(
            c.count(OpKind::PacketBodyCopy, Domain::Kernel, Layer::KernelCopyout),
            3
        );
        assert_eq!(c.total(OpKind::PacketBodyCopy), 4);
        assert_eq!(c.domain_total(OpKind::PacketBodyCopy, Domain::Library), 1);
        assert_eq!(c.layer_total(OpKind::PacketBodyCopy, Layer::CopyoutExit), 1);
    }

    #[test]
    fn disabled_census_counts_nothing() {
        let mut c = Census::new();
        c.set_enabled(false);
        c.note(OpKind::Wakeup, Domain::Kernel, Layer::WakeupUserThread);
        c.note_scoped(OpKind::FilterRun, 7, 3);
        assert_eq!(c.total(OpKind::Wakeup), 0);
        assert_eq!(c.scoped(OpKind::FilterRun, 7), 0);
    }

    #[test]
    fn scoped_counts_are_independent() {
        let mut c = Census::new();
        c.note_scoped(OpKind::FilterRun, 1, 2);
        c.note_scoped(OpKind::FilterRun, 2, 5);
        assert_eq!(c.scoped(OpKind::FilterRun, 1), 2);
        assert_eq!(c.scoped(OpKind::FilterRun, 2), 5);
        assert_eq!(c.scoped(OpKind::FilterRun, 3), 0);
        // Scoped notes do not feed the (kind, layer, domain) grid.
        assert_eq!(c.total(OpKind::FilterRun), 0);
    }

    #[test]
    fn snapshot_is_deterministic_and_nonzero_only() {
        let build = || {
            let mut c = Census::new();
            c.note(OpKind::Checksum, Domain::Server, Layer::TcpUdpInput);
            c.note_n(OpKind::BoundaryCrossing, Domain::Kernel, Layer::Control, 2);
            c.note_scoped(OpKind::FilterRun, 42, 9);
            c
        };
        let a = build().snapshot();
        let b = build().snapshot();
        assert_eq!(a, b);
        assert_eq!(a.lines().count(), 3);
        assert!(a.contains("checksum"));
        assert!(a.contains("scope=42"));
        assert!(!a.contains("wakeup"));
    }

    #[test]
    fn reset_clears_everything() {
        let mut c = Census::new();
        c.note(OpKind::Interrupt, Domain::Kernel, Layer::DeviceIntrRead);
        c.note_scoped(OpKind::FilterRun, 1, 1);
        c.note_drop(DropReason::ChecksumError, Domain::Server);
        c.reset();
        assert_eq!(c.total(OpKind::Interrupt), 0);
        assert_eq!(c.scoped(OpKind::FilterRun, 1), 0);
        assert_eq!(c.drop_total(DropReason::ChecksumError), 0);
        assert!(c.snapshot().is_empty());
    }

    #[test]
    fn drops_counted_per_reason_and_domain() {
        let mut c = Census::new();
        c.note_drop(DropReason::FilterMiss, Domain::Kernel);
        c.note_drop(DropReason::FilterMiss, Domain::Kernel);
        c.note_drop(DropReason::PortUnreachable, Domain::Library);
        assert_eq!(c.drop_count(DropReason::FilterMiss, Domain::Kernel), 2);
        assert_eq!(c.drop_total(DropReason::FilterMiss), 2);
        assert_eq!(c.drop_total(DropReason::PortUnreachable), 1);
        let snap = c.snapshot();
        assert!(snap.contains("filter-miss"));
        assert!(snap.contains("port-unreachable"));
        // Disabled census ignores drops like everything else.
        c.set_enabled(false);
        c.note_drop(DropReason::WireLoss, Domain::Kernel);
        assert_eq!(c.drop_total(DropReason::WireLoss), 0);
    }

    #[test]
    fn json_snapshot_is_deterministic_and_nonzero_only() {
        let build = || {
            let mut c = Census::new();
            c.note(OpKind::Checksum, Domain::Server, Layer::TcpUdpInput);
            c.note_drop(DropReason::ChecksumError, Domain::Server);
            c.note_scoped(OpKind::FilterRun, 3, 4);
            c.snapshot_json()
        };
        let a = build();
        assert_eq!(a, build());
        assert!(a.starts_with("{\"ops\":["));
        assert!(a.contains("\"reason\":\"checksum-error\""));
        assert!(a.contains("\"scope\":3"));
        assert!(a.ends_with("]}"));
        assert!(!a.contains("wakeup"));
    }
}
