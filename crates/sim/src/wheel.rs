//! A hierarchical timer wheel over slab-allocated, generation-tagged
//! entries — the event queue behind [`Sim`](crate::engine::Sim).
//!
//! The original engine kept a `BinaryHeap<Entry>` of boxed closures plus
//! an unbounded `cancelled: HashSet<u64>`. That design costs a heap sift
//! (O(log n) comparisons over 8-byte-keyed boxed entries), one malloc and
//! one free per event, and — the real leak — a `HashSet` insertion for
//! every cancel of an already-fired handle that nothing ever removed.
//!
//! This wheel replaces all three structures:
//!
//! - **Slab entries.** Every scheduled event lives in a fixed slot of a
//!   grow-only `Vec<Node>`; freed slots go on a free list and are
//!   reused. Steady-state scheduling does no per-event heap traffic
//!   (closures are stored inline via [`SmallFn`]).
//! - **Generation-tagged handles.** Each slab slot carries a generation
//!   counter bumped on free. A handle names `(slot, generation)`, so a
//!   stale handle — fired, cancelled, or reused — can never touch a
//!   newer event (the ABA problem is structurally impossible), and
//!   cancelling a dead handle is a pure no-op: no memory is touched,
//!   nothing can accumulate.
//! - **Hierarchical wheel.** [`LEVELS`] levels of 64 slots each cover
//!   the full `u64` nanosecond range (6 bits per level). An entry is
//!   filed at the level of the highest bit in which its expiry differs
//!   from the wheel's current time; expiring higher-level slots cascade
//!   their entries down. Insert and cancel are O(1); pop is O(1)
//!   amortized with an O([`LEVELS`]) bitmap scan worst case.
//!
//! # Ordering invariant
//!
//! The wheel pops in **exactly** total `(time, seq)` order — the same
//! order the `BinaryHeap` produced — which is what keeps every archived
//! result byte-identical. The argument:
//!
//! 1. All pending entries satisfy `when >= elapsed` (insertions are
//!    clamped to the current time upstream, and `elapsed` only advances
//!    to the start of the earliest occupied slot).
//! 2. An entry sits at level 0 iff its expiry lies in the same 64-tick
//!    aligned block as `elapsed`; within that block, the slot index *is*
//!    the expiry. Hence at any instant, all entries in one level-0 slot
//!    share a single expiry time.
//! 3. Level-0 slots therefore only need `seq` order, which is restored
//!    by one `sort_unstable` when the slot is drained into the current
//!    batch (cascading can interleave entries out of schedule order;
//!    direct inserts alone would already be sorted).
//! 4. Any entry at level k ≥ 1 expires strictly after every entry at a
//!    lower level, so scanning levels bottom-up finds the global
//!    earliest slot.
//!
//! The equivalence suite (`tests/engine_equivalence.rs`) checks this
//! order against a retained copy of the old heap implementation
//! ([`reference`](crate::reference)) under seeded adversarial schedules.

use std::collections::VecDeque;

use crate::smallfn::SmallFn;

/// Bits per wheel level (64 slots).
const SLOT_BITS: usize = 6;
/// Slots per level.
const SLOTS: usize = 1 << SLOT_BITS;
/// Levels needed so `LEVELS * SLOT_BITS >= 64` covers any u64 delta.
const LEVELS: usize = 11;

/// Bucket marker for a node currently in the drain batch rather than a
/// wheel slot (it cannot be detached in place; cancel flags it instead).
const IN_BATCH: u32 = u32::MAX;

/// One slab entry. 'Free' is encoded as `f == None && !pending`; the
/// `pending` flag distinguishes a cancelled-but-still-batched node
/// (which must not be reused yet) from a free one.
struct Node {
    /// Bumped every time the slot is freed; handles carry the value they
    /// were created under.
    gen: u32,
    /// True while the node is filed in a wheel slot or the current batch.
    pending: bool,
    /// True if the node was cancelled while sitting in the batch; it is
    /// skipped and freed when the batch reaches it.
    cancelled: bool,
    /// The flattened `level * SLOTS + slot` bucket holding this node, or
    /// [`IN_BATCH`]. Lets cancel detach the node in O(1).
    bucket: u32,
    /// This node's index within its bucket's list.
    pos: u32,
    /// Absolute expiry in nanoseconds.
    when: u64,
    /// Global schedule order, the tie-breaker at equal `when`.
    seq: u64,
    /// The event body. Dropped eagerly on cancel so cancelled timers do
    /// not pin their captures.
    f: Option<SmallFn>,
}

/// Queue-side memory diagnostics, for the leak regression tests.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct WheelStats {
    /// Live (schedulable) entries.
    pub live: usize,
    /// Cancelled entries still sitting in the drain batch awaiting
    /// reclamation (slot-filed entries are detached at cancel time, so
    /// this is bounded by the largest same-instant burst).
    pub cancelled_pending: usize,
    /// Total slab slots ever allocated (high-water mark of concurrency).
    pub slab_slots: usize,
    /// Slab slots currently on the free list.
    pub free_slots: usize,
}

pub(crate) struct TimerWheel {
    /// `LEVELS * SLOTS` buckets of slab indices, flattened.
    slots: Vec<Vec<u32>>,
    /// Per-level bitmap of non-empty buckets.
    occupied: [u64; LEVELS],
    /// Wheel time: never exceeds the expiry of any pending entry.
    elapsed: u64,
    nodes: Vec<Node>,
    free: Vec<u32>,
    live: usize,
    cancelled_pending: usize,
    /// The level-0 slot currently being drained, in `seq` order. All
    /// entries in it share one expiry time.
    batch: VecDeque<u32>,
}

impl TimerWheel {
    pub fn new() -> TimerWheel {
        TimerWheel {
            slots: (0..LEVELS * SLOTS).map(|_| Vec::new()).collect(),
            occupied: [0; LEVELS],
            elapsed: 0,
            nodes: Vec::new(),
            free: Vec::new(),
            live: 0,
            cancelled_pending: 0,
            batch: VecDeque::new(),
        }
    }

    /// Re-aligns the wheel to the caller's clock. Draining a stretch of
    /// *cancelled-only* slots can advance `elapsed` beyond the caller's
    /// clock without any event having run; that can only happen if the
    /// drain emptied the wheel entirely (a pop that leaves entries
    /// behind returns one of them, pinning the caller's clock to at
    /// least `elapsed`), and an empty wheel has no filed slot whose
    /// interpretation depends on `elapsed` — so rewinding to `now` (the
    /// floor of every future expiry) is safe and exact. Call before
    /// [`insert`](Self::insert).
    pub fn sync(&mut self, now: u64) {
        if now < self.elapsed && self.live == 0 && self.cancelled_pending == 0 {
            debug_assert!(self.batch.is_empty());
            self.elapsed = now;
        }
    }

    /// Files an event at absolute nanosecond `when` (must be `>=` the
    /// time of the last popped event) with tie-break `seq`. Returns the
    /// `(slot, generation)` pair identifying it.
    pub fn insert(&mut self, when: u64, seq: u64, f: SmallFn) -> (u32, u32) {
        debug_assert!(when >= self.elapsed, "insert before wheel time");
        let idx = match self.free.pop() {
            Some(idx) => {
                let n = &mut self.nodes[idx as usize];
                n.pending = true;
                n.cancelled = false;
                n.when = when;
                n.seq = seq;
                n.f = Some(f);
                idx
            }
            None => {
                let idx = u32::try_from(self.nodes.len()).expect("slab overflow");
                self.nodes.push(Node {
                    gen: 0,
                    pending: true,
                    cancelled: false,
                    bucket: 0,
                    pos: 0,
                    when,
                    seq,
                    f: Some(f),
                });
                idx
            }
        };
        self.live += 1;
        // An event landing exactly on the batch's instant must run after
        // the batch (it has a larger seq): file it in the level-0 slot,
        // which is re-examined once the batch drains.
        self.file(idx, when);
        (idx, self.nodes[idx as usize].gen)
    }

    /// Cancels `(idx, gen)`. Returns true if a live event was cancelled;
    /// stale handles (fired, cancelled, or reused slots) are no-ops.
    ///
    /// A slot-filed entry is detached from its bucket immediately — an
    /// O(1) `swap_remove` — so cancelled timers cost nothing to cascade
    /// or sweep past later. Only an entry already pulled into the drain
    /// batch is flagged instead (the batch is consumed front-to-back and
    /// skips it).
    pub fn cancel(&mut self, idx: u32, gen: u32) -> bool {
        match self.nodes.get_mut(idx as usize) {
            Some(n) if n.gen == gen && n.pending && !n.cancelled => {}
            _ => return false,
        }
        self.live -= 1;
        let n = &mut self.nodes[idx as usize];
        n.f = None; // release captures immediately
        let bucket = n.bucket as usize;
        if n.bucket == IN_BATCH {
            n.cancelled = true;
            self.cancelled_pending += 1;
            return true;
        }
        let pos = n.pos as usize;
        let list = &mut self.slots[bucket];
        debug_assert_eq!(list[pos], idx);
        list.swap_remove(pos);
        if let Some(&moved) = list.get(pos) {
            self.nodes[moved as usize].pos = pos as u32;
        }
        if self.slots[bucket].is_empty() {
            self.occupied[bucket / SLOTS] &= !(1u64 << (bucket % SLOTS));
        }
        self.release(idx);
        true
    }

    /// Pops the earliest event with expiry `<= horizon`, in strict
    /// `(when, seq)` order.
    pub fn pop_due(&mut self, horizon: u64) -> Option<(u64, SmallFn)> {
        loop {
            // Drain the current same-instant batch first.
            while let Some(&idx) = self.batch.front() {
                let n = &mut self.nodes[idx as usize];
                let cancelled = n.cancelled;
                if !cancelled && n.when > horizon {
                    return None;
                }
                let when = n.when;
                let f = n.f.take();
                self.batch.pop_front();
                if cancelled {
                    self.cancelled_pending -= 1;
                    self.release(idx);
                    continue;
                }
                self.live -= 1;
                self.release(idx);
                return Some((when, f.expect("live batch entry has a body")));
            }

            // Find the earliest occupied bucket, bottom level first.
            let (level, slot) = self
                .occupied
                .iter()
                .enumerate()
                .find(|(_, bm)| **bm != 0)
                .map(|(l, bm)| (l, bm.trailing_zeros() as usize))?;
            let start = self.slot_start(level, slot);
            debug_assert!(start >= self.elapsed, "wheel scanned backwards");
            if start > horizon {
                return None;
            }
            let mut list = std::mem::take(&mut self.slots[level * SLOTS + slot]);
            self.occupied[level] &= !(1u64 << slot);
            self.elapsed = start;
            if level == 0 {
                // Steady-state fast path: a lone entry needs no seq
                // sort and never touches the batch. Its expiry equals
                // the slot start (level-0 invariant), already known to
                // be within the horizon, and slot-filed entries are
                // never cancelled (cancel detaches them eagerly).
                if list.len() == 1 {
                    let idx = list[0];
                    list.clear();
                    self.slots[slot] = list;
                    let n = &mut self.nodes[idx as usize];
                    debug_assert_eq!(n.when, start);
                    debug_assert!(!n.cancelled);
                    let f = n.f.take();
                    self.live -= 1;
                    self.release(idx);
                    return Some((start, f.expect("live entry has a body")));
                }
                // One expiry instant; restore schedule order (cascades
                // may have interleaved entries).
                list.sort_unstable_by_key(|&i| self.nodes[i as usize].seq);
                for &idx in &list {
                    self.nodes[idx as usize].bucket = IN_BATCH;
                }
                self.batch.extend(list.drain(..));
            } else {
                // Cascade: with `elapsed` now at the slot start, every
                // entry re-files at a strictly lower level.
                for idx in list.drain(..) {
                    let when = self.nodes[idx as usize].when;
                    self.file(idx, when);
                }
            }
            // Hand the (empty) bucket back so its capacity is reused.
            self.slots[level * SLOTS + slot] = list;
        }
    }

    /// True if no live events remain.
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// Number of live events.
    pub fn live(&self) -> usize {
        self.live
    }

    pub fn stats(&self) -> WheelStats {
        WheelStats {
            live: self.live,
            cancelled_pending: self.cancelled_pending,
            slab_slots: self.nodes.len(),
            free_slots: self.free.len(),
        }
    }

    /// Files node `idx` (expiry `when`) into the wheel.
    #[inline]
    fn file(&mut self, idx: u32, when: u64) {
        let masked = when ^ self.elapsed;
        let level = if masked == 0 {
            0
        } else {
            (63 - masked.leading_zeros() as usize) / SLOT_BITS
        };
        let slot = ((when >> (SLOT_BITS * level)) & (SLOTS as u64 - 1)) as usize;
        let bucket = level * SLOTS + slot;
        let list = &mut self.slots[bucket];
        let n = &mut self.nodes[idx as usize];
        n.bucket = bucket as u32;
        n.pos = list.len() as u32;
        list.push(idx);
        self.occupied[level] |= 1u64 << slot;
    }

    /// Absolute start time of `slot` at `level`, relative to `elapsed`.
    fn slot_start(&self, level: usize, slot: usize) -> u64 {
        let width = SLOT_BITS * (level + 1);
        let base = if width >= 64 {
            0
        } else {
            self.elapsed & !((1u64 << width) - 1)
        };
        base | ((slot as u64) << (SLOT_BITS * level))
    }

    /// Returns a slab slot to the free list, bumping its generation so
    /// existing handles to it go stale.
    #[inline]
    fn release(&mut self, idx: u32) {
        let n = &mut self.nodes[idx as usize];
        debug_assert!(n.pending);
        n.pending = false;
        n.cancelled = false;
        n.f = None;
        n.gen = n.gen.wrapping_add(1);
        self.free.push(idx);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn noop() -> SmallFn {
        SmallFn::new(|_| {})
    }

    #[test]
    fn pops_in_time_then_seq_order() {
        let mut w = TimerWheel::new();
        // Deliberately interleave times and spread across levels.
        let whens = [5u64, 1, 1, 100_000, 3, 5, 1 << 40, 64, 63];
        for (seq, &t) in whens.iter().enumerate() {
            w.insert(t, seq as u64, noop());
        }
        let mut sorted: Vec<(u64, u64)> = whens
            .iter()
            .enumerate()
            .map(|(s, &t)| (t, s as u64))
            .collect();
        sorted.sort_unstable();
        let mut popped = Vec::new();
        while let Some((when, _f)) = w.pop_due(u64::MAX) {
            popped.push(when);
        }
        assert_eq!(popped, sorted.iter().map(|&(t, _)| t).collect::<Vec<_>>());
        assert!(w.is_empty());
    }

    #[test]
    fn horizon_cuts_inside_a_higher_level_slot() {
        let mut w = TimerWheel::new();
        w.insert(1000, 0, noop());
        // Horizon below the entry but inside its level-1 slot range.
        assert!(w.pop_due(980).is_none());
        assert_eq!(w.live(), 1);
        let (when, _) = w.pop_due(1000).unwrap();
        assert_eq!(when, 1000);
    }

    #[test]
    fn cancel_is_exact_and_generation_checked() {
        let mut w = TimerWheel::new();
        let (i1, g1) = w.insert(10, 0, noop());
        let (i2, g2) = w.insert(10, 1, noop());
        assert!(w.cancel(i1, g1));
        assert!(!w.cancel(i1, g1), "double cancel is a no-op");
        let (when, _) = w.pop_due(u64::MAX).unwrap();
        assert_eq!(when, 10);
        assert!(!w.cancel(i2, g2), "fired handle is a no-op");
        assert!(w.is_empty());
    }

    #[test]
    fn slab_slots_are_reused_and_generations_advance() {
        let mut w = TimerWheel::new();
        let (i1, g1) = w.insert(1, 0, noop());
        w.pop_due(u64::MAX).unwrap();
        let (i2, g2) = w.insert(2, 1, noop());
        assert_eq!(i1, i2, "freed slot is reused");
        assert_ne!(g1, g2, "generation advanced on reuse");
        assert!(!w.cancel(i1, g1), "stale handle cannot touch the new event");
        assert_eq!(w.live(), 1);
    }

    #[test]
    fn cancel_detaches_and_bounds_backlog() {
        let mut w = TimerWheel::new();
        // Far-future timers cancelled en masse never drain naturally;
        // eager detach must reclaim their slots immediately.
        for round in 0..10 {
            let mut handles = Vec::new();
            for k in 0..1000u64 {
                handles.push(w.insert(1 << 50, round * 1000 + k, noop()));
            }
            for (i, g) in handles {
                w.cancel(i, g);
            }
        }
        let s = w.stats();
        assert_eq!(s.live, 0);
        assert_eq!(s.cancelled_pending, 0, "detached at cancel time: {s:?}");
        assert_eq!(s.slab_slots, s.free_slots, "all slots reclaimed: {s:?}");
        assert!(s.slab_slots <= 1000, "slab bounded by peak live: {s:?}");
    }
}
