//! Inline storage for one-shot event closures.
//!
//! The event queue schedules millions of closures per benchmark run; the
//! original engine boxed every one (`Box<dyn FnOnce(&mut Sim)>`), which
//! put a malloc/free pair on the per-event fast path. [`SmallFn`] stores
//! closures up to [`INLINE_BYTES`] bytes (the overwhelmingly common case:
//! an `Rc` or two plus a few words of context) directly inside the
//! queue's slab entry, falling back to a box only for oversized captures.
//!
//! The type is a miniature manual trait object: a data buffer plus two
//! monomorphized function pointers (consume-and-call, drop-in-place).
//! All `unsafe` in the simulator lives in this module; the invariants
//! are spelled out on each block and exercised by the drop-counting
//! tests below.

use std::mem::{align_of, size_of, ManuallyDrop, MaybeUninit};

use crate::engine::Sim;

/// Number of pointer-sized words of inline closure storage.
const INLINE_WORDS: usize = 6;

/// Closures up to this many bytes (and at most pointer-aligned) are
/// stored inline; larger ones are boxed.
pub const INLINE_BYTES: usize = INLINE_WORDS * size_of::<usize>();

type BoxedFn = Box<dyn FnOnce(&mut Sim)>;

/// A type-erased `FnOnce(&mut Sim)` with inline small-closure storage.
///
/// Invariants:
/// - `data` always holds a valid value of the closure type `F` the
///   constructor was called with (or a `BoxedFn` on the fallback path),
///   written at offset 0 with alignment ≤ `align_of::<usize>()`.
/// - `call` and `drop_fn` are the monomorphized functions for that same
///   type, so the payload is read back at exactly the type it was
///   written at.
/// - The payload is consumed exactly once: either by [`SmallFn::call`]
///   (which suppresses `Drop` via `ManuallyDrop`) or by `Drop`.
pub struct SmallFn {
    data: MaybeUninit<[usize; INLINE_WORDS]>,
    call: unsafe fn(*mut u8, &mut Sim),
    drop_fn: unsafe fn(*mut u8),
}

impl SmallFn {
    /// Wraps `f`, storing it inline when it fits.
    pub fn new<F: FnOnce(&mut Sim) + 'static>(f: F) -> SmallFn {
        // SAFETY (both fns): `p` points to a valid, initialized `F` (or
        // `BoxedFn`) written by this constructor; `read` moves it out and
        // the caller never uses the storage again (call path), or
        // `drop_in_place` runs its destructor exactly once (drop path).
        unsafe fn call_inline<F: FnOnce(&mut Sim)>(p: *mut u8, sim: &mut Sim) {
            (std::ptr::read(p as *const F))(sim)
        }
        unsafe fn drop_inline<F>(p: *mut u8) {
            std::ptr::drop_in_place(p as *mut F)
        }
        unsafe fn call_boxed(p: *mut u8, sim: &mut Sim) {
            (std::ptr::read(p as *const BoxedFn))(sim)
        }
        unsafe fn drop_boxed(p: *mut u8) {
            std::ptr::drop_in_place(p as *mut BoxedFn)
        }

        let mut data = MaybeUninit::<[usize; INLINE_WORDS]>::uninit();
        if Self::would_inline::<F>() {
            // SAFETY: `F` fits in the buffer and needs at most pointer
            // alignment (checked by `would_inline`), and `data` is
            // pointer-aligned, so the write is in-bounds and aligned.
            unsafe { std::ptr::write(data.as_mut_ptr() as *mut F, f) };
            SmallFn {
                data,
                call: call_inline::<F>,
                drop_fn: drop_inline::<F>,
            }
        } else {
            let boxed: BoxedFn = Box::new(f);
            // SAFETY: a `BoxedFn` is two words — always fits and is
            // pointer-aligned.
            unsafe { std::ptr::write(data.as_mut_ptr() as *mut BoxedFn, boxed) };
            SmallFn {
                data,
                call: call_boxed,
                drop_fn: drop_boxed,
            }
        }
    }

    /// Whether a closure of type `F` would be stored inline (no heap
    /// allocation). Exposed for the engine's tests and benchmarks.
    pub fn would_inline<F>() -> bool {
        size_of::<F>() <= INLINE_BYTES && align_of::<F>() <= align_of::<usize>()
    }

    /// Consumes the wrapper and invokes the closure.
    pub fn call(self, sim: &mut Sim) {
        let mut this = ManuallyDrop::new(self);
        // SAFETY: `call` matches the payload type by construction;
        // `ManuallyDrop` suppresses our `Drop`, so the payload is moved
        // out exactly once.
        unsafe { (this.call)(this.data.as_mut_ptr() as *mut u8, sim) }
    }
}

impl Drop for SmallFn {
    fn drop(&mut self) {
        // SAFETY: the payload has not been consumed (`call` suppresses
        // this drop), so running its destructor in place is correct.
        unsafe { (self.drop_fn)(self.data.as_mut_ptr() as *mut u8) }
    }
}

impl std::fmt::Debug for SmallFn {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "SmallFn")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cell::Cell;
    use std::rc::Rc;

    #[test]
    fn small_closures_are_inline_large_are_not() {
        let small = [0u64; 2];
        let large = [0u64; 16];
        let f_small = move |_: &mut Sim| {
            let _sum: u64 = small.iter().sum();
        };
        let f_large = move |_: &mut Sim| {
            let _sum: u64 = large.iter().sum();
        };
        fn check<F: FnOnce(&mut Sim)>(_: &F) -> bool {
            SmallFn::would_inline::<F>()
        }
        assert!(check(&f_small));
        assert!(!check(&f_large));
    }

    #[test]
    fn call_runs_the_closure_once() {
        let mut sim = Sim::new(1);
        let hits = Rc::new(Cell::new(0));
        let h = hits.clone();
        let f = SmallFn::new(move |_| h.set(h.get() + 1));
        f.call(&mut sim);
        assert_eq!(hits.get(), 1);
    }

    #[test]
    fn call_consumes_captures_exactly_once() {
        let mut sim = Sim::new(1);
        let token = Rc::new(());
        let t = token.clone();
        let f = SmallFn::new(move |_| drop(t));
        assert_eq!(Rc::strong_count(&token), 2);
        f.call(&mut sim);
        assert_eq!(Rc::strong_count(&token), 1, "capture dropped by the call");
    }

    #[test]
    fn dropping_uncalled_runs_capture_destructors() {
        let token = Rc::new(());
        let t = token.clone();
        let f = SmallFn::new(move |_| drop(t));
        assert_eq!(Rc::strong_count(&token), 2);
        drop(f);
        assert_eq!(Rc::strong_count(&token), 1, "capture dropped exactly once");
    }

    #[test]
    fn boxed_fallback_calls_and_drops_correctly() {
        let mut sim = Sim::new(1);
        let token = Rc::new(Cell::new(0u64));
        let big = [7u64; 16]; // forces the boxed path
        {
            let t = token.clone();
            let f = SmallFn::new(move |_| t.set(big.iter().sum()));
            f.call(&mut sim);
        }
        assert_eq!(token.get(), 7 * 16);
        {
            let t = token.clone();
            let f = SmallFn::new(move |_| {
                let _ = (&t, &big);
            });
            assert_eq!(Rc::strong_count(&token), 2);
            drop(f);
        }
        assert_eq!(Rc::strong_count(&token), 1);
    }
}
