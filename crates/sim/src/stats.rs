//! Small statistics helpers for the benchmark harnesses.

use crate::time::SimTime;

/// Online summary of a series of virtual-time samples.
#[derive(Clone, Debug, Default)]
pub struct Summary {
    samples: Vec<SimTime>,
}

impl Summary {
    /// Creates an empty summary.
    pub fn new() -> Summary {
        Summary::default()
    }

    /// Adds one sample.
    pub fn push(&mut self, sample: SimTime) {
        self.samples.push(sample);
    }

    /// Number of samples recorded.
    pub fn count(&self) -> usize {
        self.samples.len()
    }

    /// True if no samples were recorded.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Sum of all samples.
    pub fn total(&self) -> SimTime {
        self.samples.iter().copied().sum()
    }

    /// Arithmetic mean, or zero when empty.
    pub fn mean(&self) -> SimTime {
        if self.samples.is_empty() {
            SimTime::ZERO
        } else {
            self.total() / self.samples.len() as u64
        }
    }

    /// Minimum sample, or zero when empty.
    pub fn min(&self) -> SimTime {
        self.samples.iter().copied().min().unwrap_or(SimTime::ZERO)
    }

    /// Maximum sample, or zero when empty.
    pub fn max(&self) -> SimTime {
        self.samples.iter().copied().max().unwrap_or(SimTime::ZERO)
    }

    /// The `p`-th percentile (0–100) using nearest-rank on a sorted copy.
    pub fn percentile(&self, p: f64) -> SimTime {
        if self.samples.is_empty() {
            return SimTime::ZERO;
        }
        let mut sorted = self.samples.clone();
        sorted.sort_unstable();
        let rank = ((p / 100.0) * (sorted.len() as f64 - 1.0)).floor() as usize;
        sorted[rank.min(sorted.len() - 1)]
    }

    /// Median.
    pub fn median(&self) -> SimTime {
        self.percentile(50.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn us(v: u64) -> SimTime {
        SimTime::from_micros(v)
    }

    #[test]
    fn empty_summary_is_zero() {
        let s = Summary::new();
        assert!(s.is_empty());
        assert_eq!(s.mean(), SimTime::ZERO);
        assert_eq!(s.median(), SimTime::ZERO);
        assert_eq!(s.min(), SimTime::ZERO);
        assert_eq!(s.max(), SimTime::ZERO);
    }

    #[test]
    fn mean_min_max() {
        let mut s = Summary::new();
        for v in [10, 20, 30] {
            s.push(us(v));
        }
        assert_eq!(s.count(), 3);
        assert_eq!(s.mean(), us(20));
        assert_eq!(s.min(), us(10));
        assert_eq!(s.max(), us(30));
        assert_eq!(s.total(), us(60));
    }

    #[test]
    fn percentiles() {
        let mut s = Summary::new();
        for v in 1..=100u64 {
            s.push(us(v));
        }
        assert_eq!(s.median(), us(50));
        assert_eq!(s.percentile(0.0), us(1));
        assert_eq!(s.percentile(100.0), us(100));
        assert_eq!(s.percentile(99.0), us(99));
    }

    #[test]
    fn percentile_unsorted_input() {
        let mut s = Summary::new();
        for v in [30, 10, 20] {
            s.push(us(v));
        }
        assert_eq!(s.median(), us(20));
    }
}
