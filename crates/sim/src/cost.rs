//! The calibrated cost model.
//!
//! Every primitive operation the simulated software performs — traps,
//! IPC, copies, checksums, locks, wakeups, interrupt dispatch — has a
//! unit cost here, in nanoseconds (per operation, or per byte where
//! noted). Configurations never receive bespoke latency constants: they
//! differ only in *which* operations their code paths perform, and the
//! shared unit costs price those operations.
//!
//! Calibration: the DECstation 5000/200 values are fit to Table 4 of the
//! paper, which gives per-layer microsecond budgets for the library-based
//! (SHM-IPF), kernel-based (Mach 2.5) and server-based (UX) stacks at
//! minimum and maximum message sizes. Each constant is annotated with the
//! Table 4 cells that pin it down. The Gateway i486 values are scaled
//! from the DECstation fit using the Table 2 Gateway rows; its dominant
//! feature is the 3C503's programmed-I/O data path (8-bit transfers),
//! which the paper blames for the Gateway's low throughput.

/// Hardware platforms evaluated in the paper.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Platform {
    /// DECstation 5000/200: 25 MHz MIPS R3000, Lance (DMA) Ethernet.
    DecStation5000_200,
    /// Gateway PC: 33 MHz i486, 3Com 3C503 (PIO) Ethernet.
    Gateway486,
}

impl Platform {
    /// The cost model for this platform.
    pub fn cost_model(self) -> CostModel {
        match self {
            Platform::DecStation5000_200 => CostModel::decstation_5000_200(),
            Platform::Gateway486 => CostModel::gateway_i486(),
        }
    }

    /// Display name used in table output.
    pub fn label(self) -> &'static str {
        match self {
            Platform::DecStation5000_200 => "DECstation 5000/200",
            Platform::Gateway486 => "Gateway 486",
        }
    }
}

/// Unit costs for primitive operations, in nanoseconds.
///
/// Grouped by mechanism. "Per byte" fields are multiplied by the length
/// of the data actually moved/checksummed by the executing code.
#[derive(Clone, Debug)]
pub struct CostModel {
    // --- Protection boundaries and IPC ---
    /// A system-call trap pair (enter + exit kernel).
    /// Fit: kernel `entry/copyin` (50 µs) minus library (19 µs) ≈ trap.
    pub trap: u64,
    /// Base cost of a Mach RPC round trip between tasks (marshalling,
    /// two messages, scheduling), excluding per-byte costs.
    /// Fit: server `entry/copyin` at 1 B is 254 µs ≈ trap + rpc + entry.
    pub rpc_base: u64,
    /// One-way Mach IPC message delivery (packet-filter IPC path).
    pub ipc_oneway: u64,
    /// Per-byte cost of each copy made by the IPC data path. The paper
    /// counts four copies per RPC with data (§4.3 "entry/copyin").
    /// Fit: server slope (579−254)/1459 ≈ 4 × 56 ns/B.
    pub ipc_copy_byte: u64,

    // --- Memory movement ---
    /// User-space memcpy, per byte (library copyin to mbufs).
    /// Fit: library `entry/copyin` slope (203−19)/1459 ≈ 126 ns/B.
    pub copy_byte: u64,
    /// Optimized kernel copyin/copyout, per byte.
    /// Fit: kernel `entry/copyin` slope (153−50)/1459 ≈ 70 ns/B.
    pub kcopy_byte: u64,
    /// Copying packet data that is already cache-warm in kernel memory
    /// (the packet-filter delivery copies). Fit: server `kernel
    /// copyout` slope (148−113)/1459 ≈ 24 ns/B — "the copy is from
    /// kernel memory, which has lower read latency than network device
    /// memory".
    pub kcopy_cached_byte: u64,
    /// Reading device memory, per byte (Lance buffer → host).
    /// Fit: library `kernel copyout` slope (534−123)/1459 ≈ 282 ns/B.
    pub dev_read_byte: u64,
    /// Writing device memory, per byte.
    pub dev_write_byte: u64,
    /// Internet checksum, per byte.
    /// Fit: `tcp_output` slope (328−82)/1459 ≈ 168 ns/B (lib and kernel
    /// agree: (307−65)/1459 ≈ 166 ns/B).
    pub checksum_byte: u64,

    // --- Allocation ---
    /// Allocating one mbuf (header or cluster ref).
    pub mbuf_alloc: u64,
    /// Freeing one mbuf.
    pub mbuf_free: u64,

    // --- Synchronization ---
    /// A light user-space lock acquire/release pair (library protocol
    /// stack; "internally synchronizes using less expensive locks").
    pub lock_light: u64,
    /// A hardware interrupt-priority (spl) raise/lower pair in the real
    /// kernel — cheap.
    pub spl_kernel: u64,
    /// An emulated spl raise/lower pair in the UX server: "simulates
    /// hardware interrupt priorities using locks and condition
    /// variables, resulting in expensive priority manipulation".
    /// Fit: server vs kernel `tcp_output` gap (224−65 µs) over the ~8
    /// spl transitions on that path ≈ 20 µs each.
    pub spl_server: u64,

    // --- Scheduling ---
    /// Waking a kernel thread and dispatching it (kernel `wakeup user
    /// thread` = 54 µs).
    pub sched_wakeup: u64,
    /// A user-level (cthreads) context switch, paid when the library's
    /// network thread hands off to the application thread.
    /// Fit: library wakeup (92 µs) − sched_wakeup (54 µs) ≈ 38 µs.
    pub cthread_switch: u64,
    /// Fielding a device interrupt (library `device intr/read` ≈ 42 µs,
    /// flat — the SHM-IPF path defers the body copy).
    pub intr_dispatch: u64,
    /// Setting up the wired kernel receive buffer on paths that copy the
    /// packet out of the device at interrupt time.
    /// Fit: kernel `device intr/read` base (77 µs) − intr_dispatch.
    pub rx_kbuf_setup: u64,
    /// Extra interrupt/scheduling penalty for systems with inefficient
    /// interrupt handling. Zero except for 386BSD ("inefficiencies in
    /// the way that the 386BSD kernel handles network interrupts and
    /// scheduling").
    pub intr_penalty: u64,

    // --- Demultiplexing ---
    /// netisr dispatch (softirq-level hand-off to the IP input queue).
    pub netisr: u64,
    /// Executing one packet-filter VM instruction.
    pub filter_insn: u64,
    /// In-kernel protocol control block lookup (the kernel stack demuxes
    /// with a pcb hash walk instead of a filter program).
    pub pcb_lookup: u64,

    // --- Protocol-layer instruction budgets (placement-independent) ---
    /// Socket-layer send entry (sosend header work, space check).
    pub sosend_base: u64,
    /// Socket-layer receive exit (soreceive bookkeeping).
    pub soreceive_base: u64,
    /// Datagram send entry, which references rather than copies data in
    /// the library (library UDP `entry/copyin` is 6–7 µs, flat).
    pub sosend_dgram_base: u64,
    /// `tcp_output` fixed work: header template, sequence bookkeeping.
    pub tcp_output_base: u64,
    /// `tcp_input` fixed work: header prediction, sequence processing.
    pub tcp_input_base: u64,
    /// `udp_output` fixed work.
    pub udp_output_base: u64,
    /// `udp_input` fixed work.
    pub udp_input_base: u64,
    /// `ip_output` fixed work (header + route cache hit).
    pub ip_output_base: u64,
    /// `ipintr` fixed work per packet.
    pub ip_input_base: u64,
    /// Ethernet output fixed work (ARP cache hit + framing).
    pub ether_output_base: u64,
    /// Queueing an mbuf chain on a socket buffer (`sbappend`).
    pub sbappend_base: u64,
    /// Route table lookup miss path (consult the server / full lookup).
    pub route_lookup: u64,
    /// ARP cache lookup hit.
    pub arp_lookup: u64,
    /// Arming or disarming a protocol timer.
    pub timer_op: u64,
}

impl CostModel {
    /// DECstation 5000/200 calibration (see field docs for the fit).
    pub fn decstation_5000_200() -> CostModel {
        CostModel {
            trap: 42_000,
            rpc_base: 185_000,
            ipc_oneway: 80_000,
            ipc_copy_byte: 40,
            copy_byte: 126,
            kcopy_byte: 70,
            kcopy_cached_byte: 24,
            dev_read_byte: 282,
            dev_write_byte: 20,
            checksum_byte: 167,
            mbuf_alloc: 2_500,
            mbuf_free: 1_000,
            lock_light: 3_000,
            spl_kernel: 2_000,
            spl_server: 22_000,
            sched_wakeup: 54_000,
            cthread_switch: 38_000,
            intr_dispatch: 40_000,
            rx_kbuf_setup: 22_000,
            intr_penalty: 0,
            netisr: 25_000,
            filter_insn: 4_000,
            pcb_lookup: 65_000,
            sosend_base: 14_000,
            soreceive_base: 18_000,
            sosend_dgram_base: 6_000,
            tcp_output_base: 58_000,
            tcp_input_base: 72_000,
            udp_output_base: 16_000,
            udp_input_base: 50_000,
            ip_output_base: 20_000,
            ip_input_base: 28_000,
            ether_output_base: 52_000,
            sbappend_base: 16_000,
            route_lookup: 40_000,
            arp_lookup: 12_000,
            timer_op: 3_000,
        }
    }

    /// Gateway i486 calibration. The i486 is "comparable in performance
    /// to the R3000" for compute, but the 3C503 moves data 8 bits at a
    /// time over the ISA bus, which dominates: Table 2 Gateway latencies
    /// are ≈1.5–2× the DECstation's and throughput tops out near
    /// 460–500 KB/s.
    pub fn gateway_i486() -> CostModel {
        CostModel {
            // Compute-bound unit costs: ≈1.35× the R3000 fit (i486 traps
            // and memory system are slower despite the higher clock).
            trap: 55_000,
            rpc_base: 250_000,
            ipc_oneway: 105_000,
            ipc_copy_byte: 55,
            copy_byte: 160,
            kcopy_byte: 95,
            kcopy_cached_byte: 40,
            // The PIO data path: ≈0.9 µs per byte each way through the
            // 3C503's shared memory window.
            dev_read_byte: 900,
            dev_write_byte: 900,
            checksum_byte: 190,
            mbuf_alloc: 3_200,
            mbuf_free: 1_300,
            lock_light: 4_000,
            spl_kernel: 2_600,
            spl_server: 26_000,
            sched_wakeup: 70_000,
            cthread_switch: 48_000,
            intr_dispatch: 55_000,
            rx_kbuf_setup: 30_000,
            intr_penalty: 0,
            netisr: 32_000,
            filter_insn: 5_000,
            pcb_lookup: 80_000,
            sosend_base: 18_000,
            soreceive_base: 23_000,
            sosend_dgram_base: 8_000,
            tcp_output_base: 75_000,
            tcp_input_base: 90_000,
            udp_output_base: 21_000,
            udp_input_base: 62_000,
            ip_output_base: 26_000,
            ip_input_base: 36_000,
            ether_output_base: 64_000,
            sbappend_base: 20_000,
            route_lookup: 52_000,
            arp_lookup: 15_000,
            timer_op: 4_000,
        }
    }

    /// Ultrix 4.2A variant: same hardware as Mach 2.5 on the DECstation,
    /// slightly slower socket/protocol paths (Table 2: 1.52 ms vs
    /// 1.40 ms at 1 B) and a smaller default receive buffer.
    pub fn ultrix_4_2a() -> CostModel {
        let mut c = CostModel::decstation_5000_200();
        c.trap += 6_000;
        c.sosend_base += 8_000;
        c.soreceive_base += 8_000;
        c.tcp_output_base += 10_000;
        c.tcp_input_base += 10_000;
        c.udp_input_base += 6_000;
        c.kcopy_byte += 5;
        c
    }

    /// 386BSD variant: Gateway hardware plus the interrupt-handling and
    /// scheduling inefficiency the paper cites ("Both the library- and
    /// the server-based implementations on the Gateway have lower
    /// latency than the in-kernel version because of inefficiencies in
    /// the way that the 386BSD kernel handles network interrupts and
    /// scheduling").
    pub fn bsd386() -> CostModel {
        let mut c = CostModel::gateway_i486();
        c.intr_penalty = 260_000;
        c.sched_wakeup += 60_000;
        c
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn platform_presets_resolve() {
        let dec = Platform::DecStation5000_200.cost_model();
        let gw = Platform::Gateway486.cost_model();
        assert!(gw.dev_read_byte > dec.dev_read_byte);
        assert_eq!(dec.intr_penalty, 0);
    }

    #[test]
    fn library_entry_fit_matches_table4() {
        // Library TCP entry/copyin: 19 µs at 1 B, 203 µs at 1460 B.
        let c = CostModel::decstation_5000_200();
        let at = |len: u64| c.sosend_base + c.mbuf_alloc * 2 + c.copy_byte * len;
        let one = at(1) as f64 / 1000.0;
        let max = at(1460) as f64 / 1000.0;
        assert!((one - 19.0).abs() < 4.0, "1B entry was {one}");
        assert!((max - 203.0).abs() < 15.0, "1460B entry was {max}");
    }

    #[test]
    fn server_spl_is_heavyweight() {
        let c = CostModel::decstation_5000_200();
        assert!(c.spl_server > 10 * c.spl_kernel);
        assert!(c.spl_server > c.lock_light);
    }

    #[test]
    fn bsd386_has_interrupt_penalty() {
        assert!(CostModel::bsd386().intr_penalty > 0);
        assert_eq!(CostModel::gateway_i486().intr_penalty, 0);
    }

    #[test]
    fn ultrix_is_slower_than_mach_kernel() {
        let u = CostModel::ultrix_4_2a();
        let m = CostModel::decstation_5000_200();
        assert!(u.trap > m.trap);
        assert!(u.tcp_input_base > m.tcp_input_base);
    }
}
