//! Packet-lifecycle tracing: per-packet provenance spans, stage-latency
//! histograms, a typed drop-reason taxonomy, and a Chrome trace-event
//! exporter.
//!
//! The paper's whole argument is a latency *decomposition* — Table 3
//! attributes microseconds to protection crossings, body copies and
//! wakeups per placement. The census (PR 1) counts those operations in
//! aggregate; this module follows *individual packets*: every frame
//! entering the wire gets a provenance id, every stage it visits
//! (NIC rx, filter run, delivery path, netstack layers, socket queue)
//! becomes a span stamped by the virtual clock, and every body copy,
//! crossing and wakeup lands as an in-span event fed by the same
//! charge-site hooks the census uses — so trace and census can never
//! disagree.
//!
//! Like the census and the fault plane, the tracer is
//! **charged-time-neutral**: recording never advances a [`Charge`]
//! cursor and never consumes randomness, so attaching a tracer leaves
//! every simulated timing byte-identical. With no tracer attached the
//! hooks are a `None` check — provably inert.
//!
//! Every traced packet must terminate in **exactly one** terminal
//! state: [`Terminal::Delivered`] (reached an application socket),
//! [`Terminal::Absorbed`] (consumed by a protocol engine: ARP, ICMP,
//! TCP control traffic, a fragment held for reassembly), or
//! [`Terminal::Dropped`] with a typed [`DropReason`]. The invariant
//! checker ([`Tracer::check_invariants`]) enforces this, plus span
//! nesting, as a reusable test oracle.
//!
//! [`Charge`]: crate::cpu::Charge

use std::cell::RefCell;
use std::fmt::Write as _;
use std::rc::Rc;

use crate::census::OpKind;
use crate::time::SimTime;

/// Provenance id of one traced packet (a wire frame, or one station's
/// delivered copy of it — deliveries are children of the wire frame).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct TraceId(pub u64);

/// A lifecycle stage a packet passes through; each visit is a span.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum Stage {
    /// Transit on the shared Ethernet segment.
    Wire,
    /// NIC receive: interrupt dispatch plus any device copy.
    NicRx,
    /// Kernel packet-filter run (CSPF or MPF) over the frame.
    FilterRun,
    /// Delivery to user space as an IPC message.
    DeliverIpc,
    /// Delivery through a shared-memory ring slot.
    DeliverShmRing,
    /// Delivery by direct in-place filter copy (SHM-IPF).
    DeliverShmIpf,
    /// Synchronous hand-off to the in-kernel stack.
    DeliverInKernel,
    /// `ipintr`: IP header processing and reassembly.
    NetstackIp,
    /// UDP input processing.
    NetstackUdp,
    /// TCP input processing.
    NetstackTcp,
    /// Residence on a socket receive queue awaiting the application.
    SocketQueue,
}

impl Stage {
    /// Every stage, in lifecycle order.
    pub const ALL: [Stage; 11] = [
        Stage::Wire,
        Stage::NicRx,
        Stage::FilterRun,
        Stage::DeliverIpc,
        Stage::DeliverShmRing,
        Stage::DeliverShmIpf,
        Stage::DeliverInKernel,
        Stage::NetstackIp,
        Stage::NetstackUdp,
        Stage::NetstackTcp,
        Stage::SocketQueue,
    ];

    /// Short label used in reports and trace JSON.
    pub fn label(self) -> &'static str {
        match self {
            Stage::Wire => "wire",
            Stage::NicRx => "nic-rx",
            Stage::FilterRun => "filter-run",
            Stage::DeliverIpc => "deliver-ipc",
            Stage::DeliverShmRing => "deliver-shm-ring",
            Stage::DeliverShmIpf => "deliver-shm-ipf",
            Stage::DeliverInKernel => "deliver-in-kernel",
            Stage::NetstackIp => "ip-input",
            Stage::NetstackUdp => "udp-input",
            Stage::NetstackTcp => "tcp-input",
            Stage::SocketQueue => "socket-queue",
        }
    }

    /// Number of stages.
    pub const COUNT: usize = 11;
}

/// Why a packet died. Every drop path in the kernel and the netstacks
/// reports one of these — there are no silent drops.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum DropReason {
    /// No installed filter matched and no default endpoint exists.
    FilterMiss,
    /// The matched endpoint's owning task died before delivery.
    EndpointDead,
    /// A fault-plane injection consumed the packet.
    FaultInjected,
    /// Independent random loss on the wire.
    WireLoss,
    /// The frame reached no station (wrong address, nobody listening).
    NoReceiver,
    /// The transmit limiter rejected the send (fault-plane throttle).
    TxLimited,
    /// Transmit attempted on a disconnected device.
    TxDisconnected,
    /// A header failed to parse.
    MalformedFrame,
    /// EtherType is neither IPv4 nor ARP.
    UnsupportedEtherType,
    /// IP protocol is neither UDP, TCP nor ICMP.
    UnsupportedProtocol,
    /// IP destination is not this host (filters should prevent this).
    NotForHost,
    /// The payload is shorter than its header claims.
    TruncatedPayload,
    /// A checksum failed to verify.
    ChecksumError,
    /// UDP datagram to a port with no socket (ICMP answered).
    PortUnreachable,
    /// TCP segment to a port with no listener (RST answered).
    ConnectionRefused,
    /// SYN dropped because the listen backlog is full.
    ListenOverflow,
    /// Datagram dropped because the socket receive buffer is full.
    SocketOverflow,
    /// Partial reassembly discarded after the fragment TTL.
    ReassemblyTimeout,
    /// Packet dropped awaiting ARP resolution (protocol retransmits).
    ArpUnresolved,
    /// A bounded egress queue was full (drop-tail discipline).
    QueueTailDrop,
    /// Random Early Detection dropped the packet before the queue
    /// filled.
    RedEarlyDrop,
    /// The link was down (fault-plane flap or partition window).
    LinkDown,
    /// TTL reached zero in a router (ICMP Time Exceeded answered).
    TtlExpired,
}

impl DropReason {
    /// Every reason, in presentation order.
    pub const ALL: [DropReason; 23] = [
        DropReason::FilterMiss,
        DropReason::EndpointDead,
        DropReason::FaultInjected,
        DropReason::WireLoss,
        DropReason::NoReceiver,
        DropReason::TxLimited,
        DropReason::TxDisconnected,
        DropReason::MalformedFrame,
        DropReason::UnsupportedEtherType,
        DropReason::UnsupportedProtocol,
        DropReason::NotForHost,
        DropReason::TruncatedPayload,
        DropReason::ChecksumError,
        DropReason::PortUnreachable,
        DropReason::ConnectionRefused,
        DropReason::ListenOverflow,
        DropReason::SocketOverflow,
        DropReason::ReassemblyTimeout,
        DropReason::ArpUnresolved,
        DropReason::QueueTailDrop,
        DropReason::RedEarlyDrop,
        DropReason::LinkDown,
        DropReason::TtlExpired,
    ];

    /// Short label used in census snapshots and trace JSON.
    pub fn label(self) -> &'static str {
        match self {
            DropReason::FilterMiss => "filter-miss",
            DropReason::EndpointDead => "endpoint-dead",
            DropReason::FaultInjected => "fault-injected",
            DropReason::WireLoss => "wire-loss",
            DropReason::NoReceiver => "no-receiver",
            DropReason::TxLimited => "tx-limited",
            DropReason::TxDisconnected => "tx-disconnected",
            DropReason::MalformedFrame => "malformed-frame",
            DropReason::UnsupportedEtherType => "unsupported-ethertype",
            DropReason::UnsupportedProtocol => "unsupported-protocol",
            DropReason::NotForHost => "not-for-host",
            DropReason::TruncatedPayload => "truncated-payload",
            DropReason::ChecksumError => "checksum-error",
            DropReason::PortUnreachable => "port-unreachable",
            DropReason::ConnectionRefused => "connection-refused",
            DropReason::ListenOverflow => "listen-overflow",
            DropReason::SocketOverflow => "socket-overflow",
            DropReason::ReassemblyTimeout => "reassembly-timeout",
            DropReason::ArpUnresolved => "arp-unresolved",
            DropReason::QueueTailDrop => "queue-tail-drop",
            DropReason::RedEarlyDrop => "red-early-drop",
            DropReason::LinkDown => "link-down",
            DropReason::TtlExpired => "ttl-expired",
        }
    }

    /// Position in [`DropReason::ALL`].
    pub fn index(self) -> usize {
        DropReason::ALL
            .iter()
            .position(|r| *r == self)
            .expect("in ALL")
    }

    /// Number of reasons.
    pub const COUNT: usize = 23;
}

/// Always-on per-reason drop counters, embedded in component stats
/// structs so chaos debugging has counts even with tracing off.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct DropCounters(pub [u64; DropReason::COUNT]);

impl DropCounters {
    /// Counts one drop for `reason`.
    pub fn note(&mut self, reason: DropReason) {
        self.0[reason.index()] += 1;
    }

    /// The count for one reason.
    pub fn get(&self, reason: DropReason) -> u64 {
        self.0[reason.index()]
    }

    /// Total drops across all reasons.
    pub fn total(&self) -> u64 {
        self.0.iter().sum()
    }

    /// The nonzero counters, in [`DropReason::ALL`] order.
    pub fn nonzero(&self) -> impl Iterator<Item = (DropReason, u64)> + '_ {
        DropReason::ALL
            .iter()
            .filter_map(move |r| match self.get(*r) {
                0 => None,
                n => Some((*r, n)),
            })
    }
}

/// The single terminal state of a traced packet.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Terminal {
    /// Reached an application socket receive queue.
    Delivered,
    /// Consumed by a protocol engine (ARP, ICMP, TCP control traffic,
    /// a fragment held for reassembly, a segment merged into a stream).
    Absorbed,
    /// Dropped, with the reason.
    Dropped(DropReason),
}

#[derive(Debug)]
struct PacketRec {
    born: SimTime,
    parent: Option<TraceId>,
    terminal: Option<(SimTime, Terminal)>,
    open: Vec<(Stage, SimTime)>,
}

#[derive(Debug)]
struct SpanRec {
    id: TraceId,
    stage: Stage,
    start: SimTime,
    end: SimTime,
}

#[derive(Debug)]
struct EventRec {
    id: TraceId,
    t: SimTime,
    name: &'static str,
}

/// Shared handle to a tracer, cloned into every [`Charge`] opened on a
/// CPU it is attached to (mirrors [`CensusHandle`]).
///
/// [`Charge`]: crate::cpu::Charge
/// [`CensusHandle`]: crate::census::CensusHandle
pub type TraceHandle = Rc<RefCell<Tracer>>;

/// Records packet lifecycles: spans, in-span events, terminal states.
///
/// All recording is append-only and keyed by deterministic ids, so two
/// identically-seeded runs produce byte-identical exports.
#[derive(Debug, Default)]
pub struct Tracer {
    next_id: u64,
    /// Stack of packets currently being processed (the innermost is the
    /// one charge-site events attach to). Asynchronous continuations
    /// (delivery closures, deferred wakeups) capture the id at schedule
    /// time and re-push it around their execution.
    current: Vec<TraceId>,
    packets: Vec<PacketRec>,
    spans: Vec<SpanRec>,
    events: Vec<EventRec>,
    op_counts: [u64; OpKind::COUNT],
    violations: Vec<String>,
}

impl Tracer {
    /// Creates an empty tracer.
    pub fn new() -> Tracer {
        Tracer::default()
    }

    /// Creates a shared handle to a fresh tracer.
    pub fn shared() -> TraceHandle {
        Rc::new(RefCell::new(Tracer::new()))
    }

    // --- Lifecycle recording ---

    /// Registers a new packet born at `t`. Deliveries to individual
    /// stations are children of the wire frame (`parent`).
    pub fn begin_packet(&mut self, t: SimTime, parent: Option<TraceId>) -> TraceId {
        let id = TraceId(self.next_id);
        self.next_id += 1;
        self.packets.push(PacketRec {
            born: t,
            parent,
            terminal: None,
            open: Vec::new(),
        });
        id
    }

    /// Pushes `id` as the packet now being processed.
    pub fn push_current(&mut self, id: TraceId) {
        self.current.push(id);
    }

    /// Pops the innermost current packet.
    pub fn pop_current(&mut self) {
        if self.current.pop().is_none() {
            self.violations.push("pop_current on empty stack".into());
        }
    }

    /// The packet currently being processed, if any.
    pub fn current(&self) -> Option<TraceId> {
        self.current.last().copied()
    }

    /// Opens a `stage` span on packet `id` at `t`.
    pub fn span_start(&mut self, id: TraceId, stage: Stage, t: SimTime) {
        let p = &mut self.packets[id.0 as usize];
        if p.terminal.is_some() {
            self.violations.push(format!(
                "span_start {} on packet {} after its terminal state",
                stage.label(),
                id.0
            ));
            return;
        }
        p.open.push((stage, t));
    }

    /// Closes the innermost open span on packet `id`, which must be
    /// `stage` (spans nest; a mismatch is recorded as a violation).
    pub fn span_end(&mut self, id: TraceId, stage: Stage, t: SimTime) {
        let p = &mut self.packets[id.0 as usize];
        match p.open.pop() {
            Some((open_stage, start)) => {
                if open_stage != stage {
                    self.violations.push(format!(
                        "span_end {} on packet {} but {} is open",
                        stage.label(),
                        id.0,
                        open_stage.label()
                    ));
                }
                self.spans.push(SpanRec {
                    id,
                    stage: open_stage,
                    start,
                    end: t,
                });
            }
            None => self.violations.push(format!(
                "span_end {} on packet {} with no open span",
                stage.label(),
                id.0
            )),
        }
    }

    /// Records an already-closed span (e.g. socket-queue residence,
    /// known only when the application dequeues).
    pub fn span_closed(&mut self, id: TraceId, stage: Stage, start: SimTime, end: SimTime) {
        self.spans.push(SpanRec {
            id,
            stage,
            start,
            end,
        });
    }

    /// Records a named instant event on packet `id` at `t`.
    pub fn event(&mut self, id: TraceId, t: SimTime, name: &'static str) {
        self.events.push(EventRec { id, t, name });
    }

    /// Charge-site hook: counts one `op` and, for the operations the
    /// paper's decomposition is about (body copies, crossings, wakeups),
    /// records an in-span event on the current packet. Fed by the same
    /// call that feeds the census, so the two can never disagree.
    pub fn note_op(&mut self, op: OpKind, t: SimTime) {
        self.note_op_n(op, t, 1);
        if let Some(id) = self.current() {
            let name = match op {
                OpKind::PacketBodyCopy => Some("body-copy"),
                OpKind::BoundaryCrossing => Some("crossing"),
                OpKind::Wakeup => Some("wakeup"),
                _ => None,
            };
            if let Some(name) = name {
                self.events.push(EventRec { id, t, name });
            }
        }
    }

    /// Charge-site hook: counts `n` occurrences of `op`.
    pub fn note_op_n(&mut self, op: OpKind, _t: SimTime, n: u64) {
        self.op_counts[op.index()] += n;
    }

    /// Records packet `id`'s terminal state at `t`, closing any spans
    /// still open at that instant. A second terminal is a violation.
    pub fn terminal(&mut self, id: TraceId, t: SimTime, term: Terminal) {
        let p = &mut self.packets[id.0 as usize];
        if let Some((_, prev)) = p.terminal {
            self.violations.push(format!(
                "packet {} terminal {:?} after earlier terminal {:?}",
                id.0, term, prev
            ));
            return;
        }
        p.terminal = Some((t, term));
        let open = std::mem::take(&mut p.open);
        for (stage, start) in open.into_iter().rev() {
            self.spans.push(SpanRec {
                id,
                stage,
                start,
                end: t,
            });
        }
    }

    // --- Introspection ---

    /// Number of packets registered.
    pub fn packet_count(&self) -> usize {
        self.packets.len()
    }

    /// The terminal state of packet `id`, if recorded.
    pub fn terminal_of(&self, id: TraceId) -> Option<Terminal> {
        self.packets[id.0 as usize].terminal.map(|(_, t)| t)
    }

    /// Total count of `op` seen by the charge-site hook.
    pub fn op_total(&self, op: OpKind) -> u64 {
        self.op_counts[op.index()]
    }

    /// Number of packets that reached each terminal state:
    /// `(delivered, absorbed, dropped)`.
    pub fn terminal_counts(&self) -> (u64, u64, u64) {
        let mut d = (0, 0, 0);
        for p in &self.packets {
            match p.terminal {
                Some((_, Terminal::Delivered)) => d.0 += 1,
                Some((_, Terminal::Absorbed)) => d.1 += 1,
                Some((_, Terminal::Dropped(_))) => d.2 += 1,
                None => {}
            }
        }
        d
    }

    /// Per-reason drop counts computed from terminal states.
    pub fn drops(&self) -> DropCounters {
        let mut c = DropCounters::default();
        for p in &self.packets {
            if let Some((_, Terminal::Dropped(r))) = p.terminal {
                c.note(r);
            }
        }
        c
    }

    /// Number of recorded instant events named `name`.
    pub fn event_count(&self, name: &str) -> u64 {
        self.events.iter().filter(|e| e.name == name).count() as u64
    }

    // --- Invariant checking ---

    /// The trace-invariant oracle: returns every violation recorded
    /// during tracing plus any packet that failed to reach exactly one
    /// terminal state. An empty result means the trace is well-formed.
    pub fn check_invariants(&self) -> Vec<String> {
        let mut v = self.violations.clone();
        for (i, p) in self.packets.iter().enumerate() {
            if p.terminal.is_none() {
                v.push(format!("packet {i} has no terminal state"));
            }
            if !p.open.is_empty() {
                v.push(format!("packet {i} has {} unclosed spans", p.open.len()));
            }
        }
        for s in &self.spans {
            if s.end < s.start {
                v.push(format!(
                    "span {} on packet {} ends before it starts",
                    s.stage.label(),
                    s.id.0
                ));
            }
        }
        v
    }

    // --- Stage-latency histograms ---

    /// Sorted span durations (ns) for one stage.
    pub fn stage_latencies(&self, stage: Stage) -> Vec<u64> {
        let mut v: Vec<u64> = self
            .spans
            .iter()
            .filter(|s| s.stage == stage)
            .map(|s| (s.end - s.start).as_nanos())
            .collect();
        v.sort_unstable();
        v
    }

    /// Sorted end-to-end latencies (ns): wire birth to terminal, for
    /// delivered per-station packets (the paper's receive-side latency).
    pub fn end_to_end_latencies(&self) -> Vec<u64> {
        let mut v: Vec<u64> = self
            .packets
            .iter()
            .filter_map(|p| {
                let (t, term) = p.terminal?;
                let parent = p.parent?;
                if term != Terminal::Delivered {
                    return None;
                }
                let born = self.packets[parent.0 as usize].born;
                Some((t - born).as_nanos())
            })
            .collect();
        v.sort_unstable();
        v
    }

    /// Nearest-rank percentile over a sorted slice; zero when empty.
    pub fn percentile(sorted: &[u64], p: u64) -> u64 {
        if sorted.is_empty() {
            return 0;
        }
        sorted[((sorted.len() - 1) as u64 * p / 100) as usize]
    }

    /// The "Table 3 decomposition" report: per-stage count and
    /// p50/p90/p99 latency plus the end-to-end distribution, rendered
    /// deterministically (integer microsecond math, no floats).
    pub fn stage_report(&self) -> String {
        fn us(ns: u64) -> String {
            format!("{}.{:03}", ns / 1000, ns % 1000)
        }
        let mut out = String::new();
        let _ = writeln!(
            out,
            "  {:<18} {:>7} {:>10} {:>10} {:>10}",
            "stage", "count", "p50 us", "p90 us", "p99 us"
        );
        for stage in Stage::ALL {
            let lat = self.stage_latencies(stage);
            if lat.is_empty() {
                continue;
            }
            let _ = writeln!(
                out,
                "  {:<18} {:>7} {:>10} {:>10} {:>10}",
                stage.label(),
                lat.len(),
                us(Self::percentile(&lat, 50)),
                us(Self::percentile(&lat, 90)),
                us(Self::percentile(&lat, 99)),
            );
        }
        let e2e = self.end_to_end_latencies();
        if !e2e.is_empty() {
            let _ = writeln!(
                out,
                "  {:<18} {:>7} {:>10} {:>10} {:>10}",
                "end-to-end",
                e2e.len(),
                us(Self::percentile(&e2e, 50)),
                us(Self::percentile(&e2e, 90)),
                us(Self::percentile(&e2e, 99)),
            );
        }
        let drops = self.drops();
        for (reason, n) in drops.nonzero() {
            let _ = writeln!(out, "  drop {:<22} {:>7}", reason.label(), n);
        }
        out
    }

    // --- Chrome trace-event export ---

    /// Appends this trace's events in Chrome trace-event JSON form to
    /// `out` (comma-separated objects, no surrounding brackets — the
    /// caller owns the `{"traceEvents":[...]}` wrapper and may merge
    /// several tracers under distinct `pid`s). `label` names the
    /// process row in the viewer.
    pub fn chrome_events(&self, pid: u64, label: &str, out: &mut String) {
        fn ts(t: SimTime) -> String {
            let ns = t.as_nanos();
            format!("{}.{:03}", ns / 1000, ns % 1000)
        }
        let mut emit = |line: String| {
            if !out.is_empty() {
                out.push(',');
            }
            out.push('\n');
            out.push_str(&line);
        };
        emit(format!(
            "{{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":{pid},\"tid\":0,\
             \"args\":{{\"name\":\"{label}\"}}}}"
        ));
        for s in &self.spans {
            emit(format!(
                "{{\"name\":\"{}\",\"cat\":\"stage\",\"ph\":\"X\",\"pid\":{pid},\
                 \"tid\":{},\"ts\":{},\"dur\":{}}}",
                s.stage.label(),
                s.id.0,
                ts(s.start),
                ts(s.end - s.start),
            ));
        }
        for e in &self.events {
            emit(format!(
                "{{\"name\":\"{}\",\"cat\":\"op\",\"ph\":\"i\",\"s\":\"t\",\
                 \"pid\":{pid},\"tid\":{},\"ts\":{}}}",
                e.name,
                e.id.0,
                ts(e.t),
            ));
        }
        for (i, p) in self.packets.iter().enumerate() {
            let Some((t, term)) = p.terminal else {
                continue;
            };
            let name = match term {
                Terminal::Delivered => "delivered".to_string(),
                Terminal::Absorbed => "absorbed".to_string(),
                Terminal::Dropped(r) => format!("drop:{}", r.label()),
            };
            emit(format!(
                "{{\"name\":\"{name}\",\"cat\":\"terminal\",\"ph\":\"i\",\
                 \"s\":\"t\",\"pid\":{pid},\"tid\":{i},\"ts\":{}}}",
                ts(t),
            ));
        }
    }

    /// Machine-readable stage histogram, one JSON object per stage with
    /// spans, plus end-to-end (comma-separated, no brackets).
    pub fn stage_json(&self, out: &mut String) {
        let mut emit = |name: &str, lat: &[u64], first: &mut bool| {
            if lat.is_empty() {
                return;
            }
            if !*first {
                out.push(',');
            }
            *first = false;
            let _ = write!(
                out,
                "{{\"stage\":\"{name}\",\"count\":{},\"p50_ns\":{},\
                 \"p90_ns\":{},\"p99_ns\":{}}}",
                lat.len(),
                Self::percentile(lat, 50),
                Self::percentile(lat, 90),
                Self::percentile(lat, 99),
            );
        };
        let mut first = true;
        for stage in Stage::ALL {
            emit(stage.label(), &self.stage_latencies(stage), &mut first);
        }
        emit("end-to-end", &self.end_to_end_latencies(), &mut first);
    }
}

/// Wraps merged [`Tracer::chrome_events`] output into a complete
/// Chrome trace-event JSON document.
pub fn chrome_trace_document(events: &str) -> String {
    format!("{{\"traceEvents\":[{events}\n],\"displayTimeUnit\":\"ns\"}}\n")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(us: u64) -> SimTime {
        SimTime::from_micros(us)
    }

    #[test]
    fn spans_nest_and_close() {
        let mut tr = Tracer::new();
        let id = tr.begin_packet(t(0), None);
        tr.span_start(id, Stage::NicRx, t(0));
        tr.span_start(id, Stage::FilterRun, t(1));
        tr.span_end(id, Stage::FilterRun, t(2));
        tr.span_end(id, Stage::NicRx, t(3));
        tr.terminal(id, t(3), Terminal::Delivered);
        assert!(tr.check_invariants().is_empty());
        assert_eq!(tr.stage_latencies(Stage::FilterRun), vec![1_000]);
        assert_eq!(tr.stage_latencies(Stage::NicRx), vec![3_000]);
    }

    #[test]
    fn mismatched_span_end_is_a_violation() {
        let mut tr = Tracer::new();
        let id = tr.begin_packet(t(0), None);
        tr.span_start(id, Stage::NicRx, t(0));
        tr.span_end(id, Stage::FilterRun, t(1));
        tr.terminal(id, t(1), Terminal::Absorbed);
        assert!(!tr.check_invariants().is_empty());
    }

    #[test]
    fn terminal_closes_open_spans_and_is_exactly_once() {
        let mut tr = Tracer::new();
        let id = tr.begin_packet(t(0), None);
        tr.span_start(id, Stage::NicRx, t(0));
        tr.terminal(id, t(5), Terminal::Dropped(DropReason::FilterMiss));
        assert!(tr.check_invariants().is_empty());
        assert_eq!(tr.stage_latencies(Stage::NicRx), vec![5_000]);
        tr.terminal(id, t(6), Terminal::Delivered);
        assert!(!tr.check_invariants().is_empty());
        assert_eq!(
            tr.terminal_of(id),
            Some(Terminal::Dropped(DropReason::FilterMiss))
        );
        assert_eq!(tr.drops().get(DropReason::FilterMiss), 1);
    }

    #[test]
    fn unterminated_packet_fails_invariants() {
        let mut tr = Tracer::new();
        tr.begin_packet(t(0), None);
        assert_eq!(tr.check_invariants().len(), 1);
    }

    #[test]
    fn end_to_end_uses_parent_birth() {
        let mut tr = Tracer::new();
        let wire = tr.begin_packet(t(0), None);
        tr.terminal(wire, t(2), Terminal::Delivered);
        let child = tr.begin_packet(t(2), Some(wire));
        tr.terminal(child, t(10), Terminal::Delivered);
        assert_eq!(tr.end_to_end_latencies(), vec![10_000]);
    }

    #[test]
    fn percentiles_nearest_rank() {
        let v: Vec<u64> = (1..=100).collect();
        assert_eq!(Tracer::percentile(&v, 50), 50);
        assert_eq!(Tracer::percentile(&v, 99), 99);
        assert_eq!(Tracer::percentile(&v, 0), 1);
        assert_eq!(Tracer::percentile(&[], 50), 0);
    }

    #[test]
    fn note_op_feeds_counts_and_current_packet_events() {
        let mut tr = Tracer::new();
        let id = tr.begin_packet(t(0), None);
        tr.note_op(OpKind::PacketBodyCopy, t(1)); // no current: count only
        tr.push_current(id);
        tr.note_op(OpKind::PacketBodyCopy, t(2));
        tr.note_op(OpKind::Checksum, t(2)); // counted, no event
        tr.pop_current();
        tr.terminal(id, t(3), Terminal::Delivered);
        assert_eq!(tr.op_total(OpKind::PacketBodyCopy), 2);
        assert_eq!(tr.op_total(OpKind::Checksum), 1);
        assert_eq!(tr.event_count("body-copy"), 1);
    }

    #[test]
    fn chrome_export_is_deterministic_and_wrapped() {
        let build = || {
            let mut tr = Tracer::new();
            let id = tr.begin_packet(t(0), None);
            tr.span_start(id, Stage::Wire, t(0));
            tr.span_end(id, Stage::Wire, t(51));
            tr.event(id, t(10), "crossing");
            tr.terminal(id, t(51), Terminal::Delivered);
            let mut events = String::new();
            tr.chrome_events(7, "row", &mut events);
            chrome_trace_document(&events)
        };
        let a = build();
        assert_eq!(a, build());
        assert!(a.starts_with("{\"traceEvents\":["));
        assert!(a.contains("\"ph\":\"X\""));
        assert!(a.contains("\"ph\":\"M\""));
        assert!(a.contains("\"name\":\"delivered\""));
        assert!(a.trim_end().ends_with('}'));
    }

    #[test]
    fn stage_report_lists_only_seen_stages() {
        let mut tr = Tracer::new();
        let id = tr.begin_packet(t(0), None);
        tr.span_closed(id, Stage::SocketQueue, t(1), t(4));
        tr.terminal(id, t(1), Terminal::Delivered);
        let rep = tr.stage_report();
        assert!(rep.contains("socket-queue"));
        assert!(!rep.contains("nic-rx"));
    }
}
