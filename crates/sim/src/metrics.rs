//! Virtual-time-sampled gauge plane.
//!
//! A [`Metrics`] registry holds named gauges — closures returning a
//! `u64` snapshot of some component state (queue depth, ring occupancy,
//! cwnd, pool hit count). The [`Sim`](crate::engine::Sim) run loop
//! samples every registered gauge on a fixed virtual-time cadence set
//! by [`Sim::set_metrics_sampler`](crate::engine::Sim::set_metrics_sampler).
//!
//! The sampling is strictly inert by construction: the engine takes
//! samples *between* events, directly in the run loop — no event is
//! scheduled, no sequence number is consumed, no randomness is drawn,
//! and the virtual clock is never advanced by a sample. A run with
//! sampling enabled is byte-identical to one without, which
//! `tests/observability.rs` asserts over seeded workloads.
//!
//! Gauges are sampled in registration order and every sample carries
//! every gauge, so the exported timeseries is order-stable: same seed,
//! same bytes. All gauge values are integers (`u64`) — no float
//! formatting ambiguity can leak into artifacts.

use std::cell::RefCell;
use std::fmt;
use std::rc::Rc;

use crate::time::SimTime;

/// Shared handle to a metrics registry.
pub type MetricsHandle = Rc<RefCell<Metrics>>;

/// A named-gauge registry plus the samples taken so far.
pub struct Metrics {
    gauges: Vec<(String, Box<dyn Fn() -> u64>)>,
    samples: Vec<(u64, Vec<u64>)>,
}

impl fmt::Debug for Metrics {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Metrics")
            .field("gauges", &self.gauges.len())
            .field("samples", &self.samples.len())
            .finish()
    }
}

impl Default for Metrics {
    fn default() -> Metrics {
        Metrics::new()
    }
}

impl Metrics {
    /// Creates an empty registry.
    pub fn new() -> Metrics {
        Metrics {
            gauges: Vec::new(),
            samples: Vec::new(),
        }
    }

    /// Creates a shared registry handle.
    pub fn shared() -> MetricsHandle {
        Rc::new(RefCell::new(Metrics::new()))
    }

    /// Registers a gauge. Registration order is export order; register
    /// everything before sampling starts so every sample row has the
    /// same width.
    pub fn register(&mut self, name: impl Into<String>, f: impl Fn() -> u64 + 'static) {
        assert!(
            self.samples.is_empty(),
            "register gauges before sampling starts"
        );
        self.gauges.push((name.into(), Box::new(f)));
    }

    /// The registered gauge names, in registration (= export) order.
    pub fn gauge_names(&self) -> Vec<&str> {
        self.gauges.iter().map(|(n, _)| n.as_str()).collect()
    }

    /// Reads every gauge and appends one sample row at virtual time
    /// `now`. Called by the engine's run loop; callable directly for
    /// one-shot snapshots.
    pub fn sample(&mut self, now: SimTime) {
        let row = self.gauges.iter().map(|(_, f)| f()).collect();
        self.samples.push((now.as_nanos(), row));
    }

    /// The samples taken so far: `(t_ns, values)` with `values` parallel
    /// to [`Metrics::gauge_names`].
    pub fn samples(&self) -> &[(u64, Vec<u64>)] {
        &self.samples
    }

    /// Number of samples taken.
    pub fn sample_count(&self) -> usize {
        self.samples.len()
    }

    /// Deterministic text export (one line per sample), for digests and
    /// debugging. Artifact JSON is built by the bench crate.
    pub fn timeseries_text(&self) -> String {
        let mut out = String::new();
        out.push_str("t_ns");
        for (name, _) in &self.gauges {
            out.push(' ');
            out.push_str(name);
        }
        out.push('\n');
        for (t, row) in &self.samples {
            out.push_str(&t.to_string());
            for v in row {
                out.push(' ');
                out.push_str(&v.to_string());
            }
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::Sim;
    use std::cell::Cell;

    #[test]
    fn gauges_sample_in_registration_order() {
        let m = Metrics::shared();
        let v = Rc::new(Cell::new(3u64));
        let v2 = v.clone();
        m.borrow_mut().register("a", move || v2.get());
        m.borrow_mut().register("b", || 7);
        m.borrow_mut().sample(SimTime::from_micros(1));
        v.set(5);
        m.borrow_mut().sample(SimTime::from_micros(2));
        let mm = m.borrow();
        assert_eq!(mm.gauge_names(), vec!["a", "b"]);
        assert_eq!(
            mm.samples(),
            &[(1_000, vec![3, 7]), (2_000, vec![5, 7])][..]
        );
    }

    #[test]
    fn engine_samples_on_cadence_without_events() {
        let mut sim = Sim::new(1);
        let m = Metrics::shared();
        let ticks = Rc::new(Cell::new(0u64));
        let t2 = ticks.clone();
        m.borrow_mut().register("ticks", move || t2.get());
        sim.set_metrics_sampler(m.clone(), SimTime::from_micros(10));
        // Events at 5, 25, 60 µs; period 10 µs.
        for &t in &[5u64, 25, 60] {
            let ticks = ticks.clone();
            sim.at(SimTime::from_micros(t), move |_| {
                ticks.set(ticks.get() + 1);
            });
        }
        let pending_before = sim.pending();
        assert_eq!(pending_before, 3, "sampler schedules no events");
        sim.run_to_idle();
        // Samples at 0,10,20,...,60 — boundaries at or before each event
        // time, each taken before same-instant events execute.
        let mm = m.borrow();
        let times: Vec<u64> = mm.samples().iter().map(|(t, _)| *t).collect();
        assert_eq!(
            times,
            vec![0, 10_000, 20_000, 30_000, 40_000, 50_000, 60_000]
        );
        // The 60 µs sample is taken before the 60 µs event runs.
        assert_eq!(mm.samples().last().unwrap().1, vec![2]);
        assert_eq!(sim.executed(), 3, "sampling consumed no events");
    }

    #[test]
    fn run_until_samples_through_the_idle_tail() {
        let mut sim = Sim::new(1);
        let m = Metrics::shared();
        m.borrow_mut().register("one", || 1);
        sim.set_metrics_sampler(m.clone(), SimTime::from_micros(100));
        sim.at(SimTime::from_micros(50), |_| {});
        sim.run_until(SimTime::from_micros(350));
        let times: Vec<u64> = m.borrow().samples().iter().map(|(t, _)| *t).collect();
        assert_eq!(times, vec![0, 100_000, 200_000, 300_000]);
        assert_eq!(sim.now(), SimTime::from_micros(350));
    }

    #[test]
    fn sampler_is_inert_for_event_order_and_clock() {
        fn run(sample: bool) -> (u64, u64, Vec<u64>) {
            let mut sim = Sim::new(42);
            if sample {
                let m = Metrics::shared();
                m.borrow_mut().register("x", || 0);
                sim.set_metrics_sampler(m, SimTime::from_nanos(777));
            }
            let log = Rc::new(RefCell::new(Vec::new()));
            for i in 0..50u64 {
                let log = log.clone();
                let jitter = (i * 7919) % 1000;
                sim.at(SimTime::from_nanos(jitter * 100), move |s| {
                    log.borrow_mut().push(s.now().as_nanos() * 100 + i);
                });
            }
            sim.run_to_idle();
            let log = Rc::try_unwrap(log).unwrap().into_inner();
            (sim.now().as_nanos(), sim.executed(), log)
        }
        assert_eq!(run(false), run(true));
    }
}
