//! Processor modeling.
//!
//! Each simulated host has one [`Cpu`] (the paper's machines are
//! uniprocessors). A code path executing at some event time opens a
//! [`Charge`] cursor on the CPU; every operation along the path charges
//! its calibrated cost, advancing the cursor. When the path finishes, the
//! CPU is marked busy until the cursor and side effects (frame handed to
//! the wire, thread wakeup) are scheduled at the cursor time.
//!
//! This queueing treatment makes throughput saturate correctly: when the
//! receiver CPU cannot drain packets at wire rate, arriving work queues
//! behind `busy_until` and end-to-end bandwidth drops — exactly the
//! effect that separates the server-based configuration from the others
//! in Table 2.
//!
//! Five observability planes can attach to a CPU — latency probe,
//! operation census, fault plane, packet tracer, and charged-time
//! profiler. All are charged-time-neutral. Their dispatch is flattened
//! into a single packed bitmask recomputed at attach time and copied
//! into each [`Charge`]: the hot methods test one byte and fall through
//! in the (default) all-detached case, instead of walking a chain of
//! `Option` checks.

use crate::census::{CensusHandle, Domain, OpKind};
use crate::fault::{FaultPlaneHandle, FaultSite};
use crate::probe::{Layer, ProbeHandle};
use crate::profile::{ProfEntry, ProfileHandle, NO_PACKET, ROOT_SITE};
use crate::time::SimTime;
use crate::trace::{DropReason, Stage, Terminal, TraceHandle};

// The packed dispatch mask: one bit per attachable plane. `Cpu`
// recomputes it on every attach/detach; `begin` copies it into the
// `Charge` so the hot methods test a single register.
const M_PROBE: u8 = 1 << 0;
const M_CENSUS: u8 = 1 << 1;
const M_FAULT: u8 = 1 << 2;
const M_TRACE: u8 = 1 << 3;
const M_PROFILE: u8 = 1 << 4;

/// A serializing processor resource.
#[derive(Debug, Default)]
pub struct Cpu {
    busy_until: SimTime,
    total_busy: SimTime,
    probe: Option<ProbeHandle>,
    census: Option<CensusHandle>,
    fault: Option<FaultPlaneHandle>,
    trace: Option<TraceHandle>,
    profile: Option<ProfileHandle>,
    mask: u8,
}

impl Cpu {
    /// Creates an idle CPU.
    pub fn new() -> Cpu {
        Cpu::default()
    }

    fn recompute_mask(&mut self) {
        fn bit(attached: bool, mask: u8) -> u8 {
            if attached {
                mask
            } else {
                0
            }
        }
        self.mask = bit(self.probe.is_some(), M_PROBE)
            | bit(self.census.is_some(), M_CENSUS)
            | bit(self.fault.is_some(), M_FAULT)
            | bit(self.trace.is_some(), M_TRACE)
            | bit(self.profile.is_some(), M_PROFILE);
    }

    /// Attaches (or detaches) a latency probe; charges are attributed to
    /// it by layer.
    pub fn set_probe(&mut self, probe: Option<ProbeHandle>) {
        self.probe = probe;
        self.recompute_mask();
    }

    /// Returns the attached probe, if any.
    pub fn probe(&self) -> Option<&ProbeHandle> {
        self.probe.as_ref()
    }

    /// Attaches (or detaches) an operation census; counted operations on
    /// every charge opened on this CPU report to it. Counting never
    /// charges virtual time, so attaching a census does not perturb the
    /// simulation.
    pub fn set_census(&mut self, census: Option<CensusHandle>) {
        self.census = census;
        self.recompute_mask();
    }

    /// Returns the attached census, if any.
    pub fn census(&self) -> Option<&CensusHandle> {
        self.census.as_ref()
    }

    /// Attaches (or detaches) a fault plane; fault sites on every charge
    /// opened on this CPU consult it. Like the census, consulting the
    /// plane never charges virtual time, and an empty plane never
    /// consumes randomness, so attaching one does not perturb the
    /// simulation.
    pub fn set_fault_plane(&mut self, fault: Option<FaultPlaneHandle>) {
        self.fault = fault;
        self.recompute_mask();
    }

    /// Returns the attached fault plane, if any.
    pub fn fault_plane(&self) -> Option<&FaultPlaneHandle> {
        self.fault.as_ref()
    }

    /// Attaches (or detaches) a packet-lifecycle tracer; spans, events
    /// and terminal states on every charge opened on this CPU report to
    /// it. Like the census, tracing never charges virtual time and
    /// never consumes randomness, so attaching a tracer does not
    /// perturb the simulation.
    pub fn set_tracer(&mut self, trace: Option<TraceHandle>) {
        self.trace = trace;
        self.recompute_mask();
    }

    /// Returns the attached tracer, if any.
    pub fn tracer(&self) -> Option<&TraceHandle> {
        self.trace.as_ref()
    }

    /// Attaches (or detaches) a charged-time profiler; every nanosecond
    /// charged through charges opened on this CPU is attributed to it at
    /// `finish` time. Profiling never charges virtual time and never
    /// consumes randomness. For the exact-conservation guarantee
    /// (`attributed_ns == total_busy`) attach before the CPU's first
    /// charge.
    pub fn set_profiler(&mut self, profile: Option<ProfileHandle>) {
        self.profile = profile;
        self.recompute_mask();
    }

    /// Returns the attached profiler, if any.
    pub fn profiler(&self) -> Option<&ProfileHandle> {
        self.profile.as_ref()
    }

    /// The instant the CPU becomes free.
    pub fn busy_until(&self) -> SimTime {
        self.busy_until
    }

    /// Total busy time accumulated, for utilization reporting.
    pub fn total_busy(&self) -> SimTime {
        self.total_busy
    }

    /// Opens a charge cursor for a path that becomes runnable at `now`.
    /// The path starts when the CPU is free.
    pub fn begin(&mut self, now: SimTime) -> Charge {
        Charge {
            start: now.max(self.busy_until),
            cursor: now.max(self.busy_until),
            mask: self.mask,
            probe: self.probe.clone(),
            census: self.census.clone(),
            fault: self.fault.clone(),
            trace: self.trace.clone(),
            profile: self.profile.clone(),
            site: ROOT_SITE,
            prof_buf: Vec::new(),
        }
    }

    /// Completes a path: the CPU stays busy until the cursor. Returns the
    /// completion instant at which side effects should be scheduled.
    ///
    /// If the charge carries a profiler, its buffered attribution
    /// entries are flushed here — the same instant its elapsed time
    /// enters `total_busy`, which is what makes conservation exact: a
    /// charge's elapsed time is definitionally the sum of its `add`
    /// costs, and abandoned (never-finished) charges reach neither
    /// accumulator.
    pub fn finish(&mut self, charge: Charge) -> SimTime {
        debug_assert!(charge.cursor >= self.busy_until || charge.cursor >= charge.start);
        self.total_busy += charge.elapsed();
        self.busy_until = self.busy_until.max(charge.cursor);
        if let Some(p) = &charge.profile {
            p.borrow_mut().flush(&charge.prof_buf);
        }
        charge.cursor
    }
}

/// A cost cursor along one synchronous code path.
///
/// The cursor is threaded (`&mut Charge`) down through the protocol
/// layers; each layer charges the operations it performs.
#[derive(Debug)]
pub struct Charge {
    start: SimTime,
    cursor: SimTime,
    mask: u8,
    probe: Option<ProbeHandle>,
    census: Option<CensusHandle>,
    fault: Option<FaultPlaneHandle>,
    trace: Option<TraceHandle>,
    profile: Option<ProfileHandle>,
    /// Current site-trie node for hierarchical attribution.
    site: u32,
    /// Buffered attribution entries, flushed by [`Cpu::finish`].
    prof_buf: Vec<ProfEntry>,
}

impl Charge {
    /// Creates a detached cursor (not bound to a CPU) starting at `now`.
    /// Used for wire-time accounting.
    pub fn detached(now: SimTime, probe: Option<ProbeHandle>) -> Charge {
        Charge {
            start: now,
            cursor: now,
            mask: (probe.is_some() as u8) * M_PROBE,
            probe,
            census: None,
            fault: None,
            trace: None,
            profile: None,
            site: ROOT_SITE,
            prof_buf: Vec::new(),
        }
    }

    /// The instant this path started executing.
    pub fn start(&self) -> SimTime {
        self.start
    }

    /// The current position of the cursor (virtual "now" for this path).
    pub fn at(&self) -> SimTime {
        self.cursor
    }

    /// Time charged so far.
    pub fn elapsed(&self) -> SimTime {
        self.cursor - self.start
    }

    /// Charges `cost` against `layer`.
    #[inline]
    pub fn add(&mut self, layer: Layer, cost: SimTime) {
        self.cursor += cost;
        if self.mask & (M_PROBE | M_PROFILE) != 0 {
            self.add_observed(layer, cost);
        }
    }

    /// The observed-run half of [`Charge::add`], kept out of the
    /// all-planes-detached fast path.
    #[cold]
    fn add_observed(&mut self, layer: Layer, cost: SimTime) {
        if let Some(p) = &self.probe {
            p.borrow_mut().record(layer, cost);
        }
        if self.mask & M_PROFILE != 0 {
            let tid = match &self.trace {
                Some(t) => t.borrow().current().map(|id| id.0).unwrap_or(NO_PACKET),
                None => NO_PACKET,
            };
            let layer = layer.index() as u8;
            // Coalesce runs of adds at the same (site, layer, packet):
            // typical paths charge the same bucket several times in a
            // row, and one merged entry keeps the buffer tiny.
            if let Some(last) = self.prof_buf.last_mut() {
                if last.node == self.site && last.layer == layer && last.tid == tid {
                    last.ns += cost.as_nanos();
                    return;
                }
            }
            self.prof_buf.push(ProfEntry {
                node: self.site,
                layer,
                ns: cost.as_nanos(),
                tid,
            });
        }
    }

    /// Charges `cost` nanoseconds against `layer`.
    pub fn add_ns(&mut self, layer: Layer, ns: u64) {
        self.add(layer, SimTime::from_nanos(ns));
    }

    /// Charges a per-byte cost: `len * ns_per_byte` nanoseconds.
    pub fn add_per_byte(&mut self, layer: Layer, ns_per_byte: u64, len: usize) {
        self.add(layer, SimTime::from_nanos(ns_per_byte * len as u64));
    }

    /// Records a protection-boundary crossing in `layer` and charges its
    /// cost.
    pub fn crossing(&mut self, layer: Layer, cost: SimTime) {
        self.add(layer, cost);
        if self.mask & M_PROBE != 0 {
            if let Some(p) = &self.probe {
                p.borrow_mut().record_crossing(layer);
            }
        }
    }

    /// Records a protection-boundary crossing in `layer`, charges its
    /// cost, and counts it in the census under `domain` (the domain being
    /// *entered*). Use in place of [`Charge::crossing`] at sites on the
    /// operation census.
    pub fn crossing_in(&mut self, domain: Domain, layer: Layer, cost: SimTime) {
        self.crossing(layer, cost);
        self.note(OpKind::BoundaryCrossing, domain, layer);
    }

    // --- Charged-time profiling hooks ---

    /// Pushes a profiling site: subsequent charges are attributed to
    /// `label` (nested under the current site) until the matching
    /// [`Charge::site_pop`]. Free, and a no-op without a profiler.
    /// Pushes and pops must balance along every instrumented path.
    #[inline]
    pub fn site_push(&mut self, domain: Domain, label: &'static str) {
        if self.mask & M_PROFILE != 0 {
            let p = self.profile.as_ref().expect("mask implies profiler");
            self.site = p.borrow_mut().intern(self.site, domain, label);
        }
    }

    /// Pops the innermost profiling site.
    #[inline]
    pub fn site_pop(&mut self) {
        if self.mask & M_PROFILE != 0 {
            let p = self.profile.as_ref().expect("mask implies profiler");
            let parent = p.borrow().parent_of(self.site);
            self.site = parent;
        }
    }

    /// Returns the profiler this cursor attributes to.
    pub fn profile_handle(&self) -> Option<ProfileHandle> {
        self.profile.clone()
    }

    /// Counts one occurrence of `op` in the census and the tracer (if
    /// attached). Counting is free: the cursor does not advance. This
    /// single hook fans out to both sinks, so a call site can never
    /// increment one and not the other.
    #[inline]
    pub fn note(&mut self, op: OpKind, domain: Domain, layer: Layer) {
        if self.mask & (M_CENSUS | M_TRACE) != 0 {
            self.note_observed(op, domain, layer, 1);
        }
    }

    /// Counts `n` occurrences of `op` in the census and the tracer (if
    /// attached).
    #[inline]
    pub fn note_n(&mut self, op: OpKind, domain: Domain, layer: Layer, n: u64) {
        if self.mask & (M_CENSUS | M_TRACE) != 0 {
            self.note_observed(op, domain, layer, n);
        }
    }

    #[cold]
    fn note_observed(&mut self, op: OpKind, domain: Domain, layer: Layer, n: u64) {
        if let Some(c) = &self.census {
            c.borrow_mut().note_n(op, domain, layer, n);
        }
        if let Some(t) = &self.trace {
            t.borrow_mut().note_op_n(op, self.cursor, n);
        }
    }

    /// Counts `n` occurrences of `op` against an opaque scope id (e.g. an
    /// endpoint id) in the census (if one is attached).
    #[inline]
    pub fn note_scoped(&mut self, op: OpKind, scope: u64, n: u64) {
        if self.mask & M_CENSUS != 0 {
            if let Some(c) = &self.census {
                c.borrow_mut().note_scoped(op, scope, n);
            }
        }
    }

    /// Returns the probe this cursor reports to, for handing to detached
    /// accounting (e.g. wire transit).
    pub fn probe_handle(&self) -> Option<ProbeHandle> {
        self.probe.clone()
    }

    /// Returns the census this cursor reports to.
    pub fn census_handle(&self) -> Option<CensusHandle> {
        self.census.clone()
    }

    /// Consults the fault plane at `site` (if one is attached): counts
    /// the visit and reports whether this visit fails. Consulting is
    /// free — the cursor does not advance — and a detached or empty
    /// plane always answers `false`.
    #[inline]
    pub fn fault(&mut self, site: FaultSite) -> bool {
        if self.mask & M_FAULT == 0 {
            return false;
        }
        match &self.fault {
            Some(f) => f.borrow_mut().should_inject(site),
            None => false,
        }
    }

    /// Returns the fault plane this cursor consults.
    pub fn fault_handle(&self) -> Option<FaultPlaneHandle> {
        self.fault.clone()
    }

    // --- Packet-lifecycle tracing hooks ---
    //
    // All hooks are free (the cursor does not advance) and no-ops when
    // no tracer is attached or no packet is current, so instrumented
    // paths cost nothing in a plain run.

    /// Returns the tracer this cursor reports to, for handing to
    /// asynchronous continuations (delivery closures, deferred wakeups)
    /// together with [`Tracer::current`].
    ///
    /// [`Tracer::current`]: crate::trace::Tracer::current
    pub fn trace_handle(&self) -> Option<TraceHandle> {
        self.trace.clone()
    }

    /// Opens a `stage` span on the current packet at the cursor.
    #[inline]
    pub fn trace_span_start(&mut self, stage: Stage) {
        if self.mask & M_TRACE == 0 {
            return;
        }
        if let Some(t) = &self.trace {
            let mut t = t.borrow_mut();
            if let Some(id) = t.current() {
                t.span_start(id, stage, self.cursor);
            }
        }
    }

    /// Closes the innermost open span (which must be `stage`) on the
    /// current packet at the cursor.
    #[inline]
    pub fn trace_span_end(&mut self, stage: Stage) {
        if self.mask & M_TRACE == 0 {
            return;
        }
        if let Some(t) = &self.trace {
            let mut t = t.borrow_mut();
            if let Some(id) = t.current() {
                t.span_end(id, stage, self.cursor);
            }
        }
    }

    /// Records a named instant event on the current packet.
    #[inline]
    pub fn trace_event(&mut self, name: &'static str) {
        if self.mask & M_TRACE == 0 {
            return;
        }
        if let Some(t) = &self.trace {
            let mut t = t.borrow_mut();
            if let Some(id) = t.current() {
                t.event(id, self.cursor, name);
            }
        }
    }

    /// Records that the current packet was dropped for `reason` in
    /// `domain`: counts the drop in the census and terminates the
    /// packet's trace. Use at *receive-path* drop sites, where the
    /// current packet is the one dying.
    pub fn trace_drop(&mut self, reason: DropReason, domain: Domain) {
        self.count_drop(reason, domain);
        if self.mask & M_TRACE == 0 {
            return;
        }
        if let Some(t) = &self.trace {
            let mut t = t.borrow_mut();
            if let Some(id) = t.current() {
                t.terminal(id, self.cursor, Terminal::Dropped(reason));
            }
        }
    }

    /// Counts a drop for `reason` in the census *without* terminating
    /// the current packet's trace. Use at *transmit-path* drop sites
    /// (ARP-pending, limiter, disconnected device): a reply triggered
    /// by a received packet can die on the way out while the received
    /// packet itself lives on.
    #[inline]
    pub fn count_drop(&mut self, reason: DropReason, domain: Domain) {
        if self.mask & M_CENSUS != 0 {
            if let Some(c) = &self.census {
                c.borrow_mut().note_drop(reason, domain);
            }
        }
    }

    /// Records the current packet's `Delivered` terminal state.
    pub fn trace_delivered(&mut self) {
        self.trace_terminal(Terminal::Delivered);
    }

    /// Records the current packet's `Absorbed` terminal state (the
    /// packet was consumed by a protocol engine, not lost).
    pub fn trace_absorbed(&mut self) {
        self.trace_terminal(Terminal::Absorbed);
    }

    fn trace_terminal(&mut self, term: Terminal) {
        if self.mask & M_TRACE == 0 {
            return;
        }
        if let Some(t) = &self.trace {
            let mut t = t.borrow_mut();
            if let Some(id) = t.current() {
                t.terminal(id, self.cursor, term);
            }
        }
    }
}

/// Convenience: record transit time on a probe without a CPU.
pub fn record_transit(probe: &Option<ProbeHandle>, cost: SimTime) {
    if let Some(p) = probe {
        p.borrow_mut().record(Layer::NetworkTransit, cost);
    }
}

#[allow(unused_imports)]
pub use crate::probe::LayerStats;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::probe::LatencyProbe;

    #[test]
    fn charge_advances_cursor() {
        let mut cpu = Cpu::new();
        let mut c = cpu.begin(SimTime::from_micros(10));
        c.add(Layer::IpOutput, SimTime::from_micros(5));
        c.add_ns(Layer::IpOutput, 500);
        assert_eq!(c.at(), SimTime::from_nanos(15_500));
        let done = cpu.finish(c);
        assert_eq!(done, SimTime::from_nanos(15_500));
        assert_eq!(cpu.busy_until(), done);
    }

    #[test]
    fn cpu_serializes_paths() {
        let mut cpu = Cpu::new();
        let mut a = cpu.begin(SimTime::ZERO);
        a.add(Layer::Other, SimTime::from_micros(100));
        cpu.finish(a);
        // A path arriving at t=10 must wait until t=100.
        let b = cpu.begin(SimTime::from_micros(10));
        assert_eq!(b.start(), SimTime::from_micros(100));
    }

    #[test]
    fn idle_cpu_starts_immediately() {
        let mut cpu = Cpu::new();
        let c = cpu.begin(SimTime::from_micros(42));
        assert_eq!(c.start(), SimTime::from_micros(42));
    }

    #[test]
    fn total_busy_accumulates() {
        let mut cpu = Cpu::new();
        for _ in 0..3 {
            let mut c = cpu.begin(SimTime::ZERO);
            c.add(Layer::Other, SimTime::from_micros(7));
            cpu.finish(c);
        }
        assert_eq!(cpu.total_busy(), SimTime::from_micros(21));
    }

    #[test]
    fn charges_reach_probe() {
        let probe = LatencyProbe::shared();
        let mut cpu = Cpu::new();
        cpu.set_probe(Some(probe.clone()));
        let mut c = cpu.begin(SimTime::ZERO);
        c.add(Layer::TcpUdpInput, SimTime::from_micros(3));
        c.crossing(Layer::KernelCopyout, SimTime::from_micros(2));
        cpu.finish(c);
        let p = probe.borrow();
        assert_eq!(p.layer(Layer::TcpUdpInput).total, SimTime::from_micros(3));
        assert_eq!(p.layer(Layer::KernelCopyout).total, SimTime::from_micros(2));
        assert_eq!(p.layer(Layer::KernelCopyout).crossings, 1);
    }

    #[test]
    fn per_byte_charges_scale() {
        let mut cpu = Cpu::new();
        let mut c = cpu.begin(SimTime::ZERO);
        c.add_per_byte(Layer::EntryCopyin, 126, 1000);
        assert_eq!(c.elapsed(), SimTime::from_nanos(126_000));
    }

    #[test]
    fn detached_masks_match_attachments() {
        // The packed dispatch mask must agree with the handles: a
        // detached charge with a probe still records, and site hooks on
        // an unprofiled charge are free no-ops.
        let probe = LatencyProbe::shared();
        let mut c = Charge::detached(SimTime::ZERO, Some(probe.clone()));
        c.site_push(Domain::Kernel, "nowhere");
        c.add_ns(Layer::NetworkTransit, 11);
        c.site_pop();
        assert_eq!(
            probe.borrow().layer(Layer::NetworkTransit).total,
            SimTime::from_nanos(11)
        );
        assert!(!c.fault(FaultSite::WireLoss));
    }

    #[test]
    fn note_fans_out_to_census_and_tracer() {
        use crate::census::Census;
        use crate::trace::Tracer;
        let census = Census::shared();
        let tracer = Tracer::shared();
        let mut cpu = Cpu::new();
        cpu.set_census(Some(census.clone()));
        cpu.set_tracer(Some(tracer.clone()));
        let id = tracer.borrow_mut().begin_packet(SimTime::ZERO, None);
        tracer.borrow_mut().push_current(id);
        let mut c = cpu.begin(SimTime::ZERO);
        c.note(OpKind::PacketBodyCopy, Domain::Kernel, Layer::KernelCopyout);
        c.note_n(OpKind::Wakeup, Domain::Kernel, Layer::WakeupUserThread, 2);
        c.trace_span_start(Stage::NicRx);
        c.add_ns(Layer::DeviceIntrRead, 100);
        c.trace_span_end(Stage::NicRx);
        c.trace_delivered();
        cpu.finish(c);
        tracer.borrow_mut().pop_current();
        let t = tracer.borrow();
        assert_eq!(
            t.op_total(OpKind::PacketBodyCopy),
            census.borrow().total(OpKind::PacketBodyCopy)
        );
        assert_eq!(
            t.op_total(OpKind::Wakeup),
            census.borrow().total(OpKind::Wakeup)
        );
        assert_eq!(t.stage_latencies(Stage::NicRx), vec![100]);
        assert_eq!(t.terminal_of(id), Some(crate::trace::Terminal::Delivered));
        assert!(t.check_invariants().is_empty());
    }

    #[test]
    fn trace_drop_terminates_and_counts_count_drop_only_counts() {
        use crate::census::Census;
        use crate::trace::Tracer;
        let census = Census::shared();
        let tracer = Tracer::shared();
        let mut cpu = Cpu::new();
        cpu.set_census(Some(census.clone()));
        cpu.set_tracer(Some(tracer.clone()));
        let id = tracer.borrow_mut().begin_packet(SimTime::ZERO, None);
        tracer.borrow_mut().push_current(id);
        let mut c = cpu.begin(SimTime::ZERO);
        // A transmit-side drop must not terminate the current packet.
        c.count_drop(DropReason::ArpUnresolved, Domain::Library);
        assert_eq!(tracer.borrow().terminal_of(id), None);
        // A receive-side drop terminates it.
        c.trace_drop(DropReason::ChecksumError, Domain::Library);
        cpu.finish(c);
        tracer.borrow_mut().pop_current();
        assert_eq!(
            tracer.borrow().terminal_of(id),
            Some(crate::trace::Terminal::Dropped(DropReason::ChecksumError))
        );
        assert_eq!(census.borrow().drop_total(DropReason::ArpUnresolved), 1);
        assert_eq!(census.borrow().drop_total(DropReason::ChecksumError), 1);
    }

    #[test]
    fn detached_charge_records_transit() {
        let probe = LatencyProbe::shared();
        record_transit(&Some(probe.clone()), SimTime::from_micros(51));
        assert_eq!(
            probe.borrow().layer(Layer::NetworkTransit).total,
            SimTime::from_micros(51)
        );
    }

    #[test]
    fn mask_tracks_detach() {
        // Attach, then detach: the mask must drop back so hot methods
        // take the fast path again and observers stop receiving.
        use crate::census::Census;
        let census = Census::shared();
        let mut cpu = Cpu::new();
        cpu.set_census(Some(census.clone()));
        cpu.set_census(None);
        let mut c = cpu.begin(SimTime::ZERO);
        c.note(OpKind::PacketBodyCopy, Domain::Kernel, Layer::KernelCopyout);
        cpu.finish(c);
        assert_eq!(census.borrow().total(OpKind::PacketBodyCopy), 0);
    }
}
