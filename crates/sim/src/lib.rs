//! Deterministic discrete-event simulation substrate for the protocol
//! service decomposition reproduction.
//!
//! The paper's measurements (Maeda & Bershad, SOSP 1993) were taken on
//! DECstation 5000/200 and Gateway i486 hardware over 10 Mb/s Ethernet.
//! This crate replaces that hardware with a virtual clock and a calibrated
//! cost model: code in the upper crates really executes every copy,
//! checksum, lock and protection-boundary crossing on real packet bytes,
//! and *charges* the calibrated unit cost of each operation to virtual
//! time. Configurations therefore differ only in which operations occur,
//! never in bespoke latency constants — the property that makes the
//! reproduction honest.
//!
//! The main types are:
//!
//! - [`Sim`]: the event loop and virtual clock.
//! - [`Cpu`]: a serializing processor resource on which code paths
//!   accumulate charges through a [`Charge`] cursor.
//! - [`CostModel`]: per-operation unit costs, calibrated against the
//!   paper's Table 4 layer breakdown.
//! - [`LatencyProbe`]: per-layer attribution of charged time, used to
//!   regenerate Table 4.
//! - [`Rng`]: a deterministic PRNG for loss/reorder schedules.

pub mod census;
pub mod cost;
pub mod cpu;
pub mod engine;
pub mod fault;
pub mod metrics;
pub mod probe;
pub mod profile;
pub mod reference;
pub mod rng;
mod smallfn;
pub mod stats;
pub mod time;
pub mod trace;
mod wheel;

pub use census::{Census, CensusHandle, Domain, OpKind};
pub use cost::{CostModel, Platform};
pub use cpu::{Charge, Cpu};
pub use engine::{Sim, SimHandle};
pub use fault::{FaultPlane, FaultPlaneHandle, FaultSite};
pub use metrics::{Metrics, MetricsHandle};
pub use probe::{LatencyProbe, Layer, LayerStats, PathKind, ProbeHandle};
pub use profile::{HotSite, ProfileHandle, Profiler};
pub use reference::{BaselineHandle, BaselineQueue};
pub use rng::Rng;
pub use smallfn::{SmallFn, INLINE_BYTES};
pub use stats::Summary;
pub use time::SimTime;
pub use trace::{
    chrome_trace_document, DropCounters, DropReason, Stage, Terminal, TraceHandle, TraceId, Tracer,
};
pub use wheel::WheelStats;
