//! The pre-timer-wheel event queue, retained verbatim.
//!
//! Until the timer-wheel rework, [`Sim`](crate::engine::Sim) kept its
//! future events in a `BinaryHeap` of boxed closures and recorded
//! cancellations in an unbounded `HashSet` (which leaked an entry for
//! every cancel of an already-fired handle). This module preserves that
//! implementation, unchanged in behavior, for two jobs:
//!
//! 1. **Reference model.** `tests/engine_equivalence.rs` drives this
//!    queue and the wheel with identical seeded schedules and asserts
//!    identical pop order and executed counts — the proof that the
//!    rework cannot move a byte of any archived result.
//! 2. **Measured baseline.** The `selfbench` harness times both queues
//!    with the same workload; the committed `BENCH_*.json` speedup
//!    ratios are wheel-vs-this, measured on the same machine in the
//!    same process.
//!
//! Nothing in the simulator proper uses this type.

use std::cmp::Ordering;
use std::collections::{BinaryHeap, HashSet};

use crate::time::SimTime;

/// An event callback for the baseline queue.
pub type BaselineEventFn = Box<dyn FnOnce(&mut BaselineQueue)>;

/// A handle to a scheduled baseline event (the raw sequence number, as
/// in the original engine — no generation tag, so cancelling a fired
/// handle leaks a `HashSet` entry).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct BaselineHandle(u64);

struct Entry {
    time: SimTime,
    seq: u64,
    f: BaselineEventFn,
}

impl PartialEq for Entry {
    fn eq(&self, other: &Entry) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}

impl Eq for Entry {}

impl PartialOrd for Entry {
    fn partial_cmp(&self, other: &Entry) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Entry {
    fn cmp(&self, other: &Entry) -> Ordering {
        // Reverse so the max-heap pops the earliest `(time, seq)` first.
        (other.time, other.seq).cmp(&(self.time, self.seq))
    }
}

/// The original `BinaryHeap` + `Box<dyn FnOnce>` + `HashSet` event loop.
#[derive(Default)]
pub struct BaselineQueue {
    now: SimTime,
    seq: u64,
    queue: BinaryHeap<Entry>,
    cancelled: HashSet<u64>,
    executed: u64,
}

impl BaselineQueue {
    /// Creates an empty queue.
    pub fn new() -> BaselineQueue {
        BaselineQueue::default()
    }

    /// The current virtual time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of events executed so far.
    pub fn executed(&self) -> u64 {
        self.executed
    }

    /// Size of the cancellation set (the structure the wheel's
    /// generation tags eliminate); exposed so the leak regression test
    /// can demonstrate the growth.
    pub fn cancelled_set_len(&self) -> usize {
        self.cancelled.len()
    }

    /// Schedules `f` at absolute time `t` (clamped to now).
    pub fn at(
        &mut self,
        t: SimTime,
        f: impl FnOnce(&mut BaselineQueue) + 'static,
    ) -> BaselineHandle {
        let time = t.max(self.now);
        let seq = self.seq;
        self.seq += 1;
        self.queue.push(Entry {
            time,
            seq,
            f: Box::new(f),
        });
        BaselineHandle(seq)
    }

    /// Schedules `f` to run `delay` after the current time.
    pub fn after(
        &mut self,
        delay: SimTime,
        f: impl FnOnce(&mut BaselineQueue) + 'static,
    ) -> BaselineHandle {
        self.at(self.now + delay, f)
    }

    /// Cancels a previously scheduled event.
    pub fn cancel(&mut self, handle: BaselineHandle) {
        self.cancelled.insert(handle.0);
    }

    fn pop_due(&mut self, horizon: SimTime) -> Option<Entry> {
        while let Some(head) = self.queue.peek() {
            if head.time > horizon {
                return None;
            }
            let entry = self.queue.pop().expect("peeked entry must pop");
            if self.cancelled.remove(&entry.seq) {
                continue;
            }
            return Some(entry);
        }
        None
    }

    /// Runs up to `limit` events; returns the number executed.
    pub fn run(&mut self, limit: u64) -> u64 {
        let mut n = 0;
        while n < limit {
            match self.pop_due(SimTime::MAX) {
                Some(entry) => {
                    self.now = entry.time;
                    self.executed += 1;
                    n += 1;
                    (entry.f)(self);
                }
                None => break,
            }
        }
        n
    }

    /// Runs events with time `<= deadline`, then advances the clock.
    pub fn run_until(&mut self, deadline: SimTime) -> u64 {
        let mut n = 0;
        while let Some(entry) = self.pop_due(deadline) {
            self.now = entry.time;
            self.executed += 1;
            n += 1;
            (entry.f)(self);
        }
        if deadline > self.now {
            self.now = deadline;
        }
        n
    }

    /// Runs until the event queue is empty.
    pub fn run_to_idle(&mut self) -> u64 {
        self.run(u64::MAX)
    }

    /// True if no runnable events remain.
    pub fn is_idle(&mut self) -> bool {
        while let Some(head) = self.queue.peek() {
            if self.cancelled.remove(&head.seq) {
                self.queue.pop();
            } else {
                return false;
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cell::RefCell;
    use std::rc::Rc;

    #[test]
    fn baseline_orders_by_time_then_seq() {
        let mut q = BaselineQueue::new();
        let log = Rc::new(RefCell::new(Vec::new()));
        for (i, &t) in [30u64, 10, 10, 20].iter().enumerate() {
            let log = log.clone();
            q.at(SimTime::from_micros(t), move |_| log.borrow_mut().push(i));
        }
        q.run_to_idle();
        assert_eq!(*log.borrow(), vec![1, 2, 3, 0]);
        assert_eq!(q.executed(), 4);
    }

    #[test]
    fn baseline_leaks_cancels_of_fired_handles() {
        // The defect the wheel's generation tags fix: cancelling a
        // handle that already ran parks an id in the set forever.
        let mut q = BaselineQueue::new();
        let mut fired = Vec::new();
        for _ in 0..100 {
            fired.push(q.at(SimTime::ZERO, |_| {}));
        }
        q.run_to_idle();
        for h in fired {
            q.cancel(h);
        }
        assert_eq!(q.cancelled_set_len(), 100);
    }
}
