//! The discrete-event loop.
//!
//! Components are ordinary Rust state machines (usually behind
//! `Rc<RefCell<…>>`); they interact by calling each other synchronously
//! within an event, and by scheduling future events on the [`Sim`]. All
//! entry points thread `&mut Sim` as an ambient context, so there is a
//! single virtual clock and a single totally-ordered event queue, which
//! makes every run exactly reproducible for a given seed.
//!
//! The queue is a hierarchical timer wheel ([`wheel`](crate::wheel)) over
//! slab-allocated entries with inline closure storage
//! ([`smallfn`](crate::smallfn)): steady-state scheduling does no
//! per-event heap traffic, and cancellation is O(1) against
//! generation-tagged handles. It pops in exactly the same total
//! `(time, seq)` order as the original `BinaryHeap` engine (retained as
//! [`reference::BaselineQueue`](crate::reference::BaselineQueue) and
//! checked by `tests/engine_equivalence.rs`), so same-seed runs are
//! byte-identical across the rework.

use crate::metrics::MetricsHandle;
use crate::rng::Rng;
use crate::smallfn::SmallFn;
use crate::time::SimTime;
use crate::wheel::{TimerWheel, WheelStats};

/// A handle to a scheduled event, usable to cancel it (e.g. TCP timers).
///
/// Internally `(generation << 32) | slab_index`. The generation is
/// bumped every time the slab slot is reclaimed, so a handle kept after
/// its event fired (or was cancelled) goes permanently stale: it can
/// never cancel an unrelated event that later reuses the slot, and
/// cancelling it costs nothing and stores nothing.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct SimHandle(u64);

impl SimHandle {
    fn new(idx: u32, gen: u32) -> SimHandle {
        SimHandle(((gen as u64) << 32) | idx as u64)
    }

    fn parts(self) -> (u32, u32) {
        (self.0 as u32, (self.0 >> 32) as u32)
    }
}

/// The virtual-time gauge sampler threaded through the run loop (see
/// [`crate::metrics`]). Deliberately not an event: sampling between
/// events consumes no sequence numbers, schedules nothing, and cannot
/// perturb the workload.
struct Sampler {
    metrics: MetricsHandle,
    period: SimTime,
    next: SimTime,
}

/// The simulation: virtual clock, event queue, and root PRNG.
pub struct Sim {
    now: SimTime,
    seq: u64,
    wheel: TimerWheel,
    rng: Rng,
    executed: u64,
    sampler: Option<Sampler>,
}

impl Sim {
    /// Creates an empty simulation with the given PRNG seed.
    pub fn new(seed: u64) -> Sim {
        Sim {
            now: SimTime::ZERO,
            seq: 0,
            wheel: TimerWheel::new(),
            rng: Rng::new(seed),
            executed: 0,
            sampler: None,
        }
    }

    /// Installs a metrics sampler: every registered gauge is read on a
    /// fixed virtual-time cadence, starting at the current instant. The
    /// sampler lives in the run loop, not the event queue — it is
    /// observationally inert (no events, no sequence numbers, no RNG),
    /// so a sampled run is byte-identical to an unsampled one.
    pub fn set_metrics_sampler(&mut self, metrics: MetricsHandle, period: SimTime) {
        assert!(period > SimTime::ZERO, "sampling period must be positive");
        self.sampler = Some(Sampler {
            metrics,
            period,
            next: self.now,
        });
    }

    /// Removes the metrics sampler, returning its registry.
    pub fn clear_metrics_sampler(&mut self) -> Option<MetricsHandle> {
        self.sampler.take().map(|s| s.metrics)
    }

    /// Takes every sample due at or before `upto`. Runs between events,
    /// so gauge closures see quiescent component state.
    fn sample_to(&mut self, upto: SimTime) {
        if let Some(s) = &mut self.sampler {
            while s.next <= upto {
                let at = s.next;
                s.metrics.borrow_mut().sample(at);
                s.next = at + s.period;
            }
        }
    }

    /// The current virtual time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of events executed so far (diagnostic).
    pub fn executed(&self) -> u64 {
        self.executed
    }

    /// Number of events currently scheduled and not cancelled
    /// (diagnostic).
    pub fn pending(&self) -> usize {
        self.wheel.live()
    }

    /// Queue-side memory accounting, for the leak regression tests and
    /// the self-benchmark.
    pub fn queue_stats(&self) -> WheelStats {
        self.wheel.stats()
    }

    /// The root PRNG. Components should [`Rng::fork`] their own streams at
    /// setup time so that adding a component does not perturb others.
    pub fn rng(&mut self) -> &mut Rng {
        &mut self.rng
    }

    /// Schedules `f` to run at absolute time `t` (clamped to now).
    pub fn at(&mut self, t: SimTime, f: impl FnOnce(&mut Sim) + 'static) -> SimHandle {
        let time = t.max(self.now);
        let seq = self.seq;
        self.seq += 1;
        self.wheel.sync(self.now.as_nanos());
        let (idx, gen) = self.wheel.insert(time.as_nanos(), seq, SmallFn::new(f));
        SimHandle::new(idx, gen)
    }

    /// Schedules `f` to run `delay` after the current time.
    pub fn after(&mut self, delay: SimTime, f: impl FnOnce(&mut Sim) + 'static) -> SimHandle {
        self.at(self.now + delay, f)
    }

    /// Cancels a previously scheduled event. Cancelling an event that has
    /// already run (or was already cancelled) is a no-op — and, unlike
    /// the original `HashSet` engine, stores nothing.
    pub fn cancel(&mut self, handle: SimHandle) {
        let (idx, gen) = handle.parts();
        self.wheel.cancel(idx, gen);
    }

    fn pop_due(&mut self, horizon: SimTime) -> Option<(SimTime, SmallFn)> {
        self.wheel
            .pop_due(horizon.as_nanos())
            .map(|(when, f)| (SimTime::from_nanos(when), f))
    }

    /// Runs events until the queue is exhausted or `limit` events have run.
    /// Returns the number of events executed.
    pub fn run(&mut self, limit: u64) -> u64 {
        let mut n = 0;
        while n < limit {
            match self.pop_due(SimTime::MAX) {
                Some((time, f)) => {
                    if self.sampler.is_some() {
                        self.sample_to(time);
                    }
                    self.now = time;
                    self.executed += 1;
                    n += 1;
                    f.call(self);
                }
                None => break,
            }
        }
        n
    }

    /// Runs events with time ≤ `deadline`, then advances the clock to
    /// `deadline`. Returns the number of events executed.
    pub fn run_until(&mut self, deadline: SimTime) -> u64 {
        let mut n = 0;
        while let Some((time, f)) = self.pop_due(deadline) {
            if self.sampler.is_some() {
                self.sample_to(time);
            }
            self.now = time;
            self.executed += 1;
            n += 1;
            f.call(self);
        }
        if self.sampler.is_some() {
            self.sample_to(deadline);
        }
        if deadline > self.now {
            self.now = deadline;
        }
        n
    }

    /// Runs until the event queue is empty.
    pub fn run_to_idle(&mut self) -> u64 {
        self.run(u64::MAX)
    }

    /// True if no runnable events remain.
    pub fn is_idle(&mut self) -> bool {
        // The wheel tracks live (non-cancelled) entries exactly, so no
        // draining is needed to answer accurately.
        self.wheel.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cell::RefCell;
    use std::rc::Rc;

    #[test]
    fn events_run_in_time_order() {
        let mut sim = Sim::new(1);
        let log = Rc::new(RefCell::new(Vec::new()));
        for &t in &[30u64, 10, 20] {
            let log = log.clone();
            sim.at(SimTime::from_micros(t), move |s| {
                log.borrow_mut().push(s.now().as_micros());
            });
        }
        sim.run_to_idle();
        assert_eq!(*log.borrow(), vec![10, 20, 30]);
    }

    #[test]
    fn ties_run_in_schedule_order() {
        let mut sim = Sim::new(1);
        let log = Rc::new(RefCell::new(Vec::new()));
        for i in 0..5 {
            let log = log.clone();
            sim.at(SimTime::from_micros(7), move |_| log.borrow_mut().push(i));
        }
        sim.run_to_idle();
        assert_eq!(*log.borrow(), vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn nested_scheduling_works() {
        let mut sim = Sim::new(1);
        let log = Rc::new(RefCell::new(Vec::new()));
        let log2 = log.clone();
        sim.after(SimTime::from_micros(5), move |s| {
            log2.borrow_mut().push("outer");
            let log3 = log2.clone();
            s.after(SimTime::from_micros(5), move |_| {
                log3.borrow_mut().push("inner");
            });
        });
        sim.run_to_idle();
        assert_eq!(*log.borrow(), vec!["outer", "inner"]);
        assert_eq!(sim.now(), SimTime::from_micros(10));
    }

    #[test]
    fn cancel_prevents_execution() {
        let mut sim = Sim::new(1);
        let fired = Rc::new(RefCell::new(false));
        let f2 = fired.clone();
        let h = sim.after(SimTime::from_micros(1), move |_| *f2.borrow_mut() = true);
        sim.cancel(h);
        sim.run_to_idle();
        assert!(!*fired.borrow());
    }

    #[test]
    fn cancel_after_run_is_noop() {
        let mut sim = Sim::new(1);
        let h = sim.after(SimTime::ZERO, |_| {});
        sim.run_to_idle();
        sim.cancel(h);
        assert!(sim.is_idle());
    }

    #[test]
    fn run_until_advances_clock_to_deadline() {
        let mut sim = Sim::new(1);
        sim.after(SimTime::from_micros(3), |_| {});
        let n = sim.run_until(SimTime::from_micros(10));
        assert_eq!(n, 1);
        assert_eq!(sim.now(), SimTime::from_micros(10));
    }

    #[test]
    fn run_until_leaves_future_events() {
        let mut sim = Sim::new(1);
        let fired = Rc::new(RefCell::new(0));
        for &t in &[5u64, 15] {
            let f = fired.clone();
            sim.at(SimTime::from_micros(t), move |_| *f.borrow_mut() += 1);
        }
        sim.run_until(SimTime::from_micros(10));
        assert_eq!(*fired.borrow(), 1);
        assert!(!sim.is_idle());
        sim.run_to_idle();
        assert_eq!(*fired.borrow(), 2);
    }

    #[test]
    fn scheduling_in_the_past_clamps_to_now() {
        let mut sim = Sim::new(1);
        let when = Rc::new(RefCell::new(SimTime::ZERO));
        let w = when.clone();
        sim.after(SimTime::from_micros(10), move |s| {
            let w2 = w.clone();
            s.at(SimTime::ZERO, move |s2| *w2.borrow_mut() = s2.now());
        });
        sim.run_to_idle();
        assert_eq!(*when.borrow(), SimTime::from_micros(10));
    }

    #[test]
    fn cancelling_fired_handles_stores_nothing() {
        // Regression for the original engine's unbounded `cancelled`
        // HashSet: cancelling 100k already-fired handles must leave
        // queue-side memory bounded (here: identically empty).
        let mut sim = Sim::new(1);
        let mut handles = Vec::new();
        for i in 0..100_000u64 {
            handles.push(sim.at(SimTime::from_nanos(i), |_| {}));
        }
        let baseline_slab = {
            sim.run_to_idle();
            sim.queue_stats().slab_slots
        };
        for h in handles {
            sim.cancel(h);
        }
        let s = sim.queue_stats();
        assert_eq!(s.live, 0);
        assert_eq!(s.cancelled_pending, 0, "dead cancels store nothing");
        assert_eq!(s.slab_slots, baseline_slab, "slab did not grow");
        assert_eq!(sim.executed(), 100_000);
    }

    #[test]
    fn stale_handle_cannot_cancel_slot_reuser() {
        // ABA safety: a handle whose event fired must not cancel the
        // unrelated event that reuses its slab slot.
        let mut sim = Sim::new(1);
        let stale = sim.at(SimTime::ZERO, |_| {});
        sim.run_to_idle();

        let fired = Rc::new(RefCell::new(false));
        let f2 = fired.clone();
        let fresh = sim.after(SimTime::from_micros(1), move |_| *f2.borrow_mut() = true);
        // The slab reuses slot 0, so the raw indices collide; only the
        // generation distinguishes them.
        sim.cancel(stale);
        assert_eq!(sim.pending(), 1, "stale cancel did not touch new event");
        sim.run_to_idle();
        assert!(*fired.borrow(), "new event still ran");
        // And the fresh handle itself is now stale too.
        sim.cancel(fresh);
        assert_eq!(sim.queue_stats().cancelled_pending, 0);
    }

    #[test]
    fn mixed_level_schedule_matches_total_order() {
        // Spread expiries across several wheel levels, including exact
        // slot boundaries, and check global (time, seq) order.
        let mut sim = Sim::new(1);
        let log = Rc::new(RefCell::new(Vec::new()));
        let times = [
            0u64,
            63,
            64,
            65,
            4095,
            4096,
            1 << 20,
            (1 << 20) + 1,
            1 << 45,
            7,
            7,
        ];
        for (i, &t) in times.iter().enumerate() {
            let log = log.clone();
            sim.at(SimTime::from_nanos(t), move |s| {
                log.borrow_mut().push((s.now().as_nanos(), i));
            });
        }
        sim.run_to_idle();
        let mut expect: Vec<(u64, usize)> =
            times.iter().enumerate().map(|(i, &t)| (t, i)).collect();
        expect.sort_unstable();
        assert_eq!(*log.borrow(), expect);
    }
}
