//! The discrete-event loop.
//!
//! Components are ordinary Rust state machines (usually behind
//! `Rc<RefCell<…>>`); they interact by calling each other synchronously
//! within an event, and by scheduling future events on the [`Sim`]. All
//! entry points thread `&mut Sim` as an ambient context, so there is a
//! single virtual clock and a single totally-ordered event queue, which
//! makes every run exactly reproducible for a given seed.

use std::cmp::Ordering;
use std::collections::{BinaryHeap, HashSet};

use crate::rng::Rng;
use crate::time::SimTime;

/// An event callback. It receives the simulation so it can read the clock
/// and schedule further events.
pub type EventFn = Box<dyn FnOnce(&mut Sim)>;

/// A handle to a scheduled event, usable to cancel it (e.g. TCP timers).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct SimHandle(u64);

struct Entry {
    time: SimTime,
    seq: u64,
    f: EventFn,
}

impl PartialEq for Entry {
    fn eq(&self, other: &Entry) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}

impl Eq for Entry {}

impl PartialOrd for Entry {
    fn partial_cmp(&self, other: &Entry) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Entry {
    fn cmp(&self, other: &Entry) -> Ordering {
        // Reverse so the `BinaryHeap` max-heap pops the earliest
        // `(time, seq)` first; equal times run in scheduling order.
        (other.time, other.seq).cmp(&(self.time, self.seq))
    }
}

/// The simulation: virtual clock, event queue, and root PRNG.
pub struct Sim {
    now: SimTime,
    seq: u64,
    queue: BinaryHeap<Entry>,
    cancelled: HashSet<u64>,
    rng: Rng,
    executed: u64,
}

impl Sim {
    /// Creates an empty simulation with the given PRNG seed.
    pub fn new(seed: u64) -> Sim {
        Sim {
            now: SimTime::ZERO,
            seq: 0,
            queue: BinaryHeap::new(),
            cancelled: HashSet::new(),
            rng: Rng::new(seed),
            executed: 0,
        }
    }

    /// The current virtual time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of events executed so far (diagnostic).
    pub fn executed(&self) -> u64 {
        self.executed
    }

    /// The root PRNG. Components should [`Rng::fork`] their own streams at
    /// setup time so that adding a component does not perturb others.
    pub fn rng(&mut self) -> &mut Rng {
        &mut self.rng
    }

    /// Schedules `f` to run at absolute time `t` (clamped to now).
    pub fn at(&mut self, t: SimTime, f: impl FnOnce(&mut Sim) + 'static) -> SimHandle {
        let time = t.max(self.now);
        let seq = self.seq;
        self.seq += 1;
        self.queue.push(Entry {
            time,
            seq,
            f: Box::new(f),
        });
        SimHandle(seq)
    }

    /// Schedules `f` to run `delay` after the current time.
    pub fn after(&mut self, delay: SimTime, f: impl FnOnce(&mut Sim) + 'static) -> SimHandle {
        self.at(self.now + delay, f)
    }

    /// Cancels a previously scheduled event. Cancelling an event that has
    /// already run (or was already cancelled) is a no-op.
    pub fn cancel(&mut self, handle: SimHandle) {
        self.cancelled.insert(handle.0);
    }

    fn pop_due(&mut self, horizon: SimTime) -> Option<Entry> {
        while let Some(head) = self.queue.peek() {
            if head.time > horizon {
                return None;
            }
            let entry = self.queue.pop().expect("peeked entry must pop");
            if self.cancelled.remove(&entry.seq) {
                continue;
            }
            return Some(entry);
        }
        None
    }

    /// Runs events until the queue is exhausted or `limit` events have run.
    /// Returns the number of events executed.
    pub fn run(&mut self, limit: u64) -> u64 {
        let mut n = 0;
        while n < limit {
            match self.pop_due(SimTime::MAX) {
                Some(entry) => {
                    self.now = entry.time;
                    self.executed += 1;
                    n += 1;
                    (entry.f)(self);
                }
                None => break,
            }
        }
        n
    }

    /// Runs events with time ≤ `deadline`, then advances the clock to
    /// `deadline`. Returns the number of events executed.
    pub fn run_until(&mut self, deadline: SimTime) -> u64 {
        let mut n = 0;
        while let Some(entry) = self.pop_due(deadline) {
            self.now = entry.time;
            self.executed += 1;
            n += 1;
            (entry.f)(self);
        }
        if deadline > self.now {
            self.now = deadline;
        }
        n
    }

    /// Runs until the event queue is empty.
    pub fn run_to_idle(&mut self) -> u64 {
        self.run(u64::MAX)
    }

    /// True if no runnable events remain.
    pub fn is_idle(&mut self) -> bool {
        // Drain cancelled heads so the answer is accurate.
        while let Some(head) = self.queue.peek() {
            if self.cancelled.remove(&head.seq) {
                self.queue.pop();
            } else {
                return false;
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cell::RefCell;
    use std::rc::Rc;

    #[test]
    fn events_run_in_time_order() {
        let mut sim = Sim::new(1);
        let log = Rc::new(RefCell::new(Vec::new()));
        for &t in &[30u64, 10, 20] {
            let log = log.clone();
            sim.at(SimTime::from_micros(t), move |s| {
                log.borrow_mut().push(s.now().as_micros());
            });
        }
        sim.run_to_idle();
        assert_eq!(*log.borrow(), vec![10, 20, 30]);
    }

    #[test]
    fn ties_run_in_schedule_order() {
        let mut sim = Sim::new(1);
        let log = Rc::new(RefCell::new(Vec::new()));
        for i in 0..5 {
            let log = log.clone();
            sim.at(SimTime::from_micros(7), move |_| log.borrow_mut().push(i));
        }
        sim.run_to_idle();
        assert_eq!(*log.borrow(), vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn nested_scheduling_works() {
        let mut sim = Sim::new(1);
        let log = Rc::new(RefCell::new(Vec::new()));
        let log2 = log.clone();
        sim.after(SimTime::from_micros(5), move |s| {
            log2.borrow_mut().push("outer");
            let log3 = log2.clone();
            s.after(SimTime::from_micros(5), move |_| {
                log3.borrow_mut().push("inner");
            });
        });
        sim.run_to_idle();
        assert_eq!(*log.borrow(), vec!["outer", "inner"]);
        assert_eq!(sim.now(), SimTime::from_micros(10));
    }

    #[test]
    fn cancel_prevents_execution() {
        let mut sim = Sim::new(1);
        let fired = Rc::new(RefCell::new(false));
        let f2 = fired.clone();
        let h = sim.after(SimTime::from_micros(1), move |_| *f2.borrow_mut() = true);
        sim.cancel(h);
        sim.run_to_idle();
        assert!(!*fired.borrow());
    }

    #[test]
    fn cancel_after_run_is_noop() {
        let mut sim = Sim::new(1);
        let h = sim.after(SimTime::ZERO, |_| {});
        sim.run_to_idle();
        sim.cancel(h);
        assert!(sim.is_idle());
    }

    #[test]
    fn run_until_advances_clock_to_deadline() {
        let mut sim = Sim::new(1);
        sim.after(SimTime::from_micros(3), |_| {});
        let n = sim.run_until(SimTime::from_micros(10));
        assert_eq!(n, 1);
        assert_eq!(sim.now(), SimTime::from_micros(10));
    }

    #[test]
    fn run_until_leaves_future_events() {
        let mut sim = Sim::new(1);
        let fired = Rc::new(RefCell::new(0));
        for &t in &[5u64, 15] {
            let f = fired.clone();
            sim.at(SimTime::from_micros(t), move |_| *f.borrow_mut() += 1);
        }
        sim.run_until(SimTime::from_micros(10));
        assert_eq!(*fired.borrow(), 1);
        assert!(!sim.is_idle());
        sim.run_to_idle();
        assert_eq!(*fired.borrow(), 2);
    }

    #[test]
    fn scheduling_in_the_past_clamps_to_now() {
        let mut sim = Sim::new(1);
        let when = Rc::new(RefCell::new(SimTime::ZERO));
        let w = when.clone();
        sim.after(SimTime::from_micros(10), move |s| {
            let w2 = w.clone();
            s.at(SimTime::ZERO, move |s2| *w2.borrow_mut() = s2.now());
        });
        sim.run_to_idle();
        assert_eq!(*when.borrow(), SimTime::from_micros(10));
    }
}
