//! Virtual time.
//!
//! All simulation time is kept in nanoseconds inside a [`SimTime`], which
//! doubles as a duration type (the distinction buys nothing here and the
//! arithmetic stays saturating so cost-model experiments cannot panic).

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// A point in virtual time, or a span of virtual time, in nanoseconds.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

impl SimTime {
    /// The zero instant (simulation start).
    pub const ZERO: SimTime = SimTime(0);

    /// The largest representable instant, used as an "infinite" timeout.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Creates a time from nanoseconds.
    pub const fn from_nanos(ns: u64) -> SimTime {
        SimTime(ns)
    }

    /// Creates a time from microseconds.
    pub const fn from_micros(us: u64) -> SimTime {
        SimTime(us * 1_000)
    }

    /// Creates a time from milliseconds.
    pub const fn from_millis(ms: u64) -> SimTime {
        SimTime(ms * 1_000_000)
    }

    /// Creates a time from seconds.
    pub const fn from_secs(s: u64) -> SimTime {
        SimTime(s * 1_000_000_000)
    }

    /// Returns the value in nanoseconds.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Returns the value in whole microseconds (truncating).
    pub const fn as_micros(self) -> u64 {
        self.0 / 1_000
    }

    /// Returns the value in microseconds as a float, the unit the paper's
    /// Table 4 reports.
    pub fn as_micros_f64(self) -> f64 {
        self.0 as f64 / 1_000.0
    }

    /// Returns the value in milliseconds as a float, the unit the paper's
    /// Tables 2 and 3 report latency in.
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1_000_000.0
    }

    /// Returns the value in seconds as a float.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1_000_000_000.0
    }

    /// Saturating difference, useful when computing queueing delays.
    pub fn saturating_sub(self, rhs: SimTime) -> SimTime {
        SimTime(self.0.saturating_sub(rhs.0))
    }

    /// Returns the later of two instants.
    pub fn max(self, rhs: SimTime) -> SimTime {
        if self >= rhs {
            self
        } else {
            rhs
        }
    }

    /// Returns the earlier of two instants.
    pub fn min(self, rhs: SimTime) -> SimTime {
        if self <= rhs {
            self
        } else {
            rhs
        }
    }
}

impl Add for SimTime {
    type Output = SimTime;

    fn add(self, rhs: SimTime) -> SimTime {
        SimTime(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign for SimTime {
    fn add_assign(&mut self, rhs: SimTime) {
        *self = *self + rhs;
    }
}

impl Sub for SimTime {
    type Output = SimTime;

    fn sub(self, rhs: SimTime) -> SimTime {
        SimTime(self.0.saturating_sub(rhs.0))
    }
}

impl SubAssign for SimTime {
    fn sub_assign(&mut self, rhs: SimTime) {
        *self = *self - rhs;
    }
}

impl Mul<u64> for SimTime {
    type Output = SimTime;

    fn mul(self, rhs: u64) -> SimTime {
        SimTime(self.0.saturating_mul(rhs))
    }
}

impl Div<u64> for SimTime {
    type Output = SimTime;

    fn div(self, rhs: u64) -> SimTime {
        SimTime(self.0 / rhs)
    }
}

impl Sum for SimTime {
    fn sum<I: Iterator<Item = SimTime>>(iter: I) -> SimTime {
        iter.fold(SimTime::ZERO, Add::add)
    }
}

impl fmt::Debug for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let ns = self.0;
        if ns == u64::MAX {
            write!(f, "inf")
        } else if ns >= 1_000_000_000 {
            write!(f, "{:.3}s", self.as_secs_f64())
        } else if ns >= 1_000_000 {
            write!(f, "{:.3}ms", self.as_millis_f64())
        } else if ns >= 1_000 {
            write!(f, "{:.3}us", self.as_micros_f64())
        } else {
            write!(f, "{}ns", ns)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_roundtrip() {
        assert_eq!(SimTime::from_micros(51).as_nanos(), 51_000);
        assert_eq!(SimTime::from_millis(2).as_micros(), 2_000);
        assert_eq!(SimTime::from_secs(1).as_millis_f64(), 1_000.0);
    }

    #[test]
    fn arithmetic_saturates() {
        assert_eq!(SimTime::ZERO - SimTime::from_nanos(5), SimTime::ZERO);
        assert_eq!(SimTime::MAX + SimTime::from_nanos(5), SimTime::MAX);
        assert_eq!(SimTime::MAX * 2, SimTime::MAX);
    }

    #[test]
    fn ordering_and_minmax() {
        let a = SimTime::from_micros(1);
        let b = SimTime::from_micros(2);
        assert!(a < b);
        assert_eq!(a.max(b), b);
        assert_eq!(a.min(b), a);
    }

    #[test]
    fn display_scales_units() {
        assert_eq!(format!("{}", SimTime::from_nanos(12)), "12ns");
        assert_eq!(format!("{}", SimTime::from_micros(51)), "51.000us");
        assert_eq!(format!("{}", SimTime::from_millis(1)), "1.000ms");
        assert_eq!(format!("{}", SimTime::from_secs(3)), "3.000s");
    }

    #[test]
    fn sum_of_durations() {
        let total: SimTime = (1..=4).map(SimTime::from_micros).sum();
        assert_eq!(total, SimTime::from_micros(10));
    }
}
