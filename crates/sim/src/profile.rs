//! Charged-time profiling: who burned each nanosecond?
//!
//! The [`LatencyProbe`](crate::probe::LatencyProbe) answers "how much
//! time went to each [`Layer`]"; the census answers "how many times did
//! each operation run". Neither answers the question ROADMAP item 2
//! asks of the packet path: *which charge site* is burning the
//! ns/sim-packet. The [`Profiler`] does: every nanosecond charged
//! through a [`Charge`](crate::cpu::Charge) opened on a CPU with a
//! profiler attached is attributed to a `(site path × domain × layer)`
//! bucket, where the site path is a small push/pop stack of static
//! labels maintained by the instrumented code
//! ([`Charge::site_push`](crate::cpu::Charge::site_push) /
//! [`Charge::site_pop`](crate::cpu::Charge::site_pop)).
//!
//! Two contracts, both enforced by tests and CI:
//!
//! * **Neutrality.** Attaching a profiler never advances the cursor,
//!   never consumes randomness, and never schedules an event: a
//!   profiled run is byte-identical to an unprofiled one.
//! * **Exact conservation.** Attribution happens when
//!   [`Cpu::finish`](crate::cpu::Cpu::finish) flushes the charge's
//!   buffered entries, and a charge's elapsed time is *definitionally*
//!   the sum of its `add` costs — so for a profiler attached before the
//!   CPU's first charge, `attributed_ns() == total_busy`, bit-exactly.
//!   No sampling, no rounding.
//!
//! When a [`Tracer`](crate::trace::Tracer) is attached alongside the
//! profiler, each charged nanosecond is also joined to the packet that
//! was current at the charge site (the tracer's provenance id), giving
//! exact per-packet cost attribution.

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::rc::Rc;

use crate::census::Domain;
use crate::probe::Layer;

/// Shared handle to a profiler (one per CPU for per-CPU conservation).
pub type ProfileHandle = Rc<RefCell<Profiler>>;

/// The root of the site trie: charges with no pushed site attribute
/// here.
pub const ROOT_SITE: u32 = 0;

/// Sentinel for "no packet was current at this charge".
pub(crate) const NO_PACKET: u64 = u64::MAX;

/// One buffered attribution record inside a live `Charge`.
#[derive(Clone, Copy, Debug)]
pub(crate) struct ProfEntry {
    /// Interned site-trie node.
    pub node: u32,
    /// `Layer::index()` of the charge.
    pub layer: u8,
    /// Nanoseconds charged.
    pub ns: u64,
    /// Raw tracer provenance id, or [`NO_PACKET`].
    pub tid: u64,
}

/// One interned node of the site trie.
#[derive(Debug)]
struct SiteNode {
    parent: u32,
    domain: Domain,
    label: &'static str,
    children: Vec<u32>,
}

/// One row of the hot-site report: a leaf of the site trie crossed with
/// the layer it charged.
#[derive(Clone, Debug)]
pub struct HotSite {
    /// Full site path from the root, `;`-joined `domain:label` frames
    /// (empty for time charged with no site pushed).
    pub path: String,
    /// Domain of the innermost site (the root reports
    /// [`Domain::Kernel`]).
    pub domain: Domain,
    /// Innermost site label (`"-"` at the root).
    pub label: &'static str,
    /// Layer the time was charged against.
    pub layer: Layer,
    /// Total nanoseconds attributed to this bucket.
    pub ns: u64,
}

const LAYERS: usize = 15;

/// The charged-time profiler: a site trie with per-`(node, layer)`
/// nanosecond buckets and an optional per-packet join.
#[derive(Debug)]
pub struct Profiler {
    nodes: Vec<SiteNode>,
    /// Parallel to `nodes`: ns charged at each node, per layer.
    buckets: Vec<[u64; LAYERS]>,
    /// Total nanoseconds flushed, across all buckets.
    attributed: u64,
    /// Per-packet attributed ns, keyed by raw tracer provenance id.
    packets: BTreeMap<u64, u64>,
}

impl Default for Profiler {
    fn default() -> Profiler {
        Profiler::new()
    }
}

impl Profiler {
    /// Creates an empty profiler.
    pub fn new() -> Profiler {
        Profiler {
            nodes: vec![SiteNode {
                parent: ROOT_SITE,
                domain: Domain::Kernel,
                label: "-",
                children: Vec::new(),
            }],
            buckets: vec![[0; LAYERS]],
            attributed: 0,
            packets: BTreeMap::new(),
        }
    }

    /// Creates a shared profiler handle.
    pub fn shared() -> ProfileHandle {
        Rc::new(RefCell::new(Profiler::new()))
    }

    /// Interns (or finds) the child of `parent` named `(domain, label)`.
    pub(crate) fn intern(&mut self, parent: u32, domain: Domain, label: &'static str) -> u32 {
        let kids = &self.nodes[parent as usize].children;
        for &k in kids {
            let n = &self.nodes[k as usize];
            if n.domain == domain && std::ptr::eq(n.label, label) {
                return k;
            }
        }
        // Pointer miss can still be a value hit when the same literal is
        // interned from two crates; fall back to a string compare.
        for &k in &self.nodes[parent as usize].children {
            let n = &self.nodes[k as usize];
            if n.domain == domain && n.label == label {
                return k;
            }
        }
        let id = self.nodes.len() as u32;
        self.nodes.push(SiteNode {
            parent,
            domain,
            label,
            children: Vec::new(),
        });
        self.buckets.push([0; LAYERS]);
        self.nodes[parent as usize].children.push(id);
        id
    }

    /// The parent of an interned node (the root is its own parent).
    pub(crate) fn parent_of(&self, node: u32) -> u32 {
        self.nodes[node as usize].parent
    }

    /// Flushes a finished charge's buffered entries into the buckets.
    pub(crate) fn flush(&mut self, entries: &[ProfEntry]) {
        for e in entries {
            self.buckets[e.node as usize][e.layer as usize] += e.ns;
            self.attributed += e.ns;
            if e.tid != NO_PACKET {
                *self.packets.entry(e.tid).or_insert(0) += e.ns;
            }
        }
    }

    /// Total nanoseconds attributed. For a profiler attached before the
    /// CPU's first charge this equals `Cpu::total_busy`, bit-exactly.
    pub fn attributed_ns(&self) -> u64 {
        self.attributed
    }

    /// Number of interned sites (the root included).
    pub fn site_count(&self) -> usize {
        self.nodes.len()
    }

    /// Per-packet attributed nanoseconds, keyed by the tracer's raw
    /// provenance id, in id order. Only charges taken while a packet was
    /// current (profiler + tracer both attached) appear.
    pub fn packet_costs(&self) -> Vec<(u64, u64)> {
        self.packets.iter().map(|(&k, &v)| (k, v)).collect()
    }

    /// The `;`-joined `domain:label` path of a node (empty at the root).
    fn path_of(&self, node: u32) -> String {
        let mut frames = Vec::new();
        let mut n = node;
        while n != ROOT_SITE {
            let s = &self.nodes[n as usize];
            frames.push(format!("{}:{}", s.domain.label(), s.label));
            n = s.parent;
        }
        frames.reverse();
        frames.join(";")
    }

    /// Collapsed-stack (flamegraph) text export: one line per nonzero
    /// `(site path, layer)` bucket, `frame;frame;[layer] ns`, sorted
    /// lexicographically so the output is deterministic regardless of
    /// interning order.
    pub fn collapsed_stacks(&self) -> String {
        let mut lines = Vec::new();
        for (i, bucket) in self.buckets.iter().enumerate() {
            let path = self.path_of(i as u32);
            for (li, &ns) in bucket.iter().enumerate() {
                if ns == 0 {
                    continue;
                }
                let layer = Layer::ALL[li].label();
                let line = if path.is_empty() {
                    format!("[{layer}] {ns}")
                } else {
                    format!("{path};[{layer}] {ns}")
                };
                lines.push(line);
            }
        }
        lines.sort_unstable();
        let mut out = lines.join("\n");
        if !out.is_empty() {
            out.push('\n');
        }
        out
    }

    /// All nonzero hot-site rows, hottest first (ties broken by path
    /// then layer index, so the order is fully deterministic).
    pub fn hot_sites(&self) -> Vec<HotSite> {
        let mut rows = Vec::new();
        for (i, bucket) in self.buckets.iter().enumerate() {
            let node = &self.nodes[i as u32 as usize];
            for (li, &ns) in bucket.iter().enumerate() {
                if ns == 0 {
                    continue;
                }
                rows.push(HotSite {
                    path: self.path_of(i as u32),
                    domain: node.domain,
                    label: node.label,
                    layer: Layer::ALL[li],
                    ns,
                });
            }
        }
        rows.sort_by(|a, b| {
            b.ns.cmp(&a.ns)
                .then_with(|| a.path.cmp(&b.path))
                .then_with(|| a.layer.index().cmp(&b.layer.index()))
        });
        rows
    }

    /// A deterministic top-`n` hot-site table (text), with each row's
    /// share of the total attributed time.
    pub fn hot_site_table(&self, n: usize) -> String {
        let total = self.attributed.max(1);
        let mut out = String::new();
        out.push_str(&format!(
            "  {:>12}  {:>6}  {:<24}  site\n",
            "ns", "share", "layer"
        ));
        for row in self.hot_sites().into_iter().take(n) {
            let share = row.ns as f64 * 100.0 / total as f64;
            let site = if row.path.is_empty() {
                "(unattributed)".to_string()
            } else {
                row.path.clone()
            };
            out.push_str(&format!(
                "  {:>12}  {:>5.1}%  {:<24}  {}\n",
                row.ns,
                share,
                row.layer.label(),
                site
            ));
        }
        out
    }

    /// Clears all buckets and the packet join (the trie is kept).
    pub fn reset(&mut self) {
        for b in &mut self.buckets {
            *b = [0; LAYERS];
        }
        self.attributed = 0;
        self.packets.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cpu::Cpu;
    use crate::time::SimTime;

    #[test]
    fn layer_count_matches_probe() {
        assert_eq!(Layer::ALL.len(), LAYERS);
    }

    #[test]
    fn conservation_is_bit_exact() {
        let prof = Profiler::shared();
        let mut cpu = Cpu::new();
        cpu.set_profiler(Some(prof.clone()));
        for i in 0..100u64 {
            let mut c = cpu.begin(SimTime::ZERO);
            c.site_push(Domain::Kernel, "rx");
            c.add_ns(Layer::IpIntr, 17 + i);
            c.site_push(Domain::Kernel, "demux");
            c.add_ns(Layer::NetisrPacketFilter, 3 * i);
            c.site_pop();
            c.site_pop();
            c.add_ns(Layer::Other, 1);
            cpu.finish(c);
        }
        assert_eq!(
            prof.borrow().attributed_ns(),
            cpu.total_busy().as_nanos(),
            "attributed must equal total_busy bit-exactly"
        );
    }

    #[test]
    fn site_trie_nests_and_pops() {
        let prof = Profiler::shared();
        let mut cpu = Cpu::new();
        cpu.set_profiler(Some(prof.clone()));
        let mut c = cpu.begin(SimTime::ZERO);
        c.site_push(Domain::Kernel, "rx");
        c.site_push(Domain::Library, "udp_input");
        c.add_ns(Layer::TcpUdpInput, 40);
        c.site_pop();
        c.add_ns(Layer::IpIntr, 2);
        c.site_pop();
        cpu.finish(c);
        let p = prof.borrow();
        let stacks = p.collapsed_stacks();
        assert!(stacks.contains("kernel:rx;library:udp_input;[tcp,udp_input] 40"));
        assert!(stacks.contains("kernel:rx;[ipintr] 2"));
        // Root, rx, udp_input.
        assert_eq!(p.site_count(), 3);
    }

    #[test]
    fn repeated_sites_are_interned_once() {
        let prof = Profiler::shared();
        let mut cpu = Cpu::new();
        cpu.set_profiler(Some(prof.clone()));
        for _ in 0..10 {
            let mut c = cpu.begin(SimTime::ZERO);
            c.site_push(Domain::Server, "rpc");
            c.add_ns(Layer::Control, 5);
            c.site_pop();
            cpu.finish(c);
        }
        let p = prof.borrow();
        assert_eq!(p.site_count(), 2);
        assert_eq!(p.attributed_ns(), 50);
        assert_eq!(p.hot_sites().len(), 1);
        assert_eq!(p.hot_sites()[0].ns, 50);
    }

    #[test]
    fn unattributed_time_lands_at_the_root() {
        let prof = Profiler::shared();
        let mut cpu = Cpu::new();
        cpu.set_profiler(Some(prof.clone()));
        let mut c = cpu.begin(SimTime::ZERO);
        c.add_ns(Layer::Other, 9);
        cpu.finish(c);
        let p = prof.borrow();
        assert_eq!(p.collapsed_stacks(), "[other] 9\n");
        assert_eq!(p.hot_sites()[0].path, "");
    }

    #[test]
    fn hot_sites_sort_hottest_first_deterministically() {
        let prof = Profiler::shared();
        let mut cpu = Cpu::new();
        cpu.set_profiler(Some(prof.clone()));
        let mut c = cpu.begin(SimTime::ZERO);
        c.site_push(Domain::Kernel, "a");
        c.add_ns(Layer::Other, 10);
        c.site_pop();
        c.site_push(Domain::Kernel, "b");
        c.add_ns(Layer::Other, 10);
        c.site_pop();
        c.site_push(Domain::Kernel, "c");
        c.add_ns(Layer::Other, 30);
        c.site_pop();
        cpu.finish(c);
        let rows = prof.borrow().hot_sites();
        assert_eq!(rows[0].label, "c");
        // Equal-ns ties break by path.
        assert_eq!(rows[1].label, "a");
        assert_eq!(rows[2].label, "b");
    }

    #[test]
    fn abandoned_charges_attribute_nothing() {
        // A charge that is never finished (e.g. a path that bails before
        // `Cpu::finish`) must not reach the buckets — that is what keeps
        // conservation exact.
        let prof = Profiler::shared();
        let mut cpu = Cpu::new();
        cpu.set_profiler(Some(prof.clone()));
        let mut c = cpu.begin(SimTime::ZERO);
        c.add_ns(Layer::Other, 100);
        drop(c);
        assert_eq!(prof.borrow().attributed_ns(), 0);
        assert_eq!(cpu.total_busy(), SimTime::ZERO);
    }

    #[test]
    fn packet_join_attributes_to_current_packet() {
        use crate::trace::Tracer;
        let prof = Profiler::shared();
        let tracer = Tracer::shared();
        let mut cpu = Cpu::new();
        cpu.set_profiler(Some(prof.clone()));
        cpu.set_tracer(Some(tracer.clone()));
        let id = tracer.borrow_mut().begin_packet(SimTime::ZERO, None);
        tracer.borrow_mut().push_current(id);
        let mut c = cpu.begin(SimTime::ZERO);
        c.add_ns(Layer::IpIntr, 25);
        cpu.finish(c);
        tracer.borrow_mut().pop_current();
        // And one charge with no current packet.
        let mut c = cpu.begin(SimTime::ZERO);
        c.add_ns(Layer::Other, 7);
        cpu.finish(c);
        let p = prof.borrow();
        assert_eq!(p.packet_costs(), vec![(id.0, 25)]);
        assert_eq!(p.attributed_ns(), 32);
    }

    #[test]
    fn reset_clears_buckets_but_keeps_trie() {
        let prof = Profiler::shared();
        let mut cpu = Cpu::new();
        cpu.set_profiler(Some(prof.clone()));
        let mut c = cpu.begin(SimTime::ZERO);
        c.site_push(Domain::Kernel, "x");
        c.add_ns(Layer::Other, 4);
        c.site_pop();
        cpu.finish(c);
        prof.borrow_mut().reset();
        let p = prof.borrow();
        assert_eq!(p.attributed_ns(), 0);
        assert_eq!(p.site_count(), 2);
        assert!(p.collapsed_stacks().is_empty());
        assert!(p.packet_costs().is_empty());
    }
}
