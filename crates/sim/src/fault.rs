//! Deterministic fault plane: injecting *what goes wrong*, on schedule.
//!
//! The decomposition moves protocol state into untrusted, mortal address
//! spaces, so the system's correctness story rests on recovery (§3.2–
//! §3.3): stub sessions exist precisely so the server can clean up after
//! process death, and migration must never lose or duplicate in-flight
//! data. A [`FaultPlane`] makes that failure surface testable: named
//! [`FaultSite`]s are consulted from the same charge cursors the census
//! uses, and a scripted or seeded schedule decides, deterministically,
//! which visits to a site actually fail.
//!
//! Like the census, the fault plane never charges virtual time and an
//! *empty* plane (nothing scripted, nothing armed) never consumes
//! randomness — the plane owns its own [`Rng`] stream and only draws
//! from it for sites that are explicitly armed — so attaching an empty
//! plane provably cannot perturb a run: the table harnesses produce
//! byte-identical output with and without `--faults`.

use std::cell::RefCell;
use std::collections::BTreeSet;
use std::fmt::Write as _;
use std::rc::Rc;

use crate::rng::Rng;

/// The named sites at which faults can be injected.
///
/// Each corresponds to a distinct failure mode of the decomposed
/// architecture, and each has recovery machinery that the chaos suite
/// exercises against it.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum FaultSite {
    /// A proxy control RPC's reply is lost; the library must detect it
    /// by deadline and retry idempotently.
    ProxyRpc,
    /// Mapping the shared-memory receive ring fails during session
    /// migration; the session must fall back to the server path.
    ShmRing,
    /// Installing a packet filter fails (table exhaustion); the session
    /// must fall back to the server path.
    FilterTable,
    /// A frame is dropped at the network interface on receive, after
    /// wire delivery but before demultiplexing.
    NicRx,
    /// The operating system server crashes; state must be rebuilt from
    /// stub records and applications must re-register.
    ServerCrash,
    /// The migration capsule is lost between prepare and commit; the
    /// transaction must roll back with the session wholly at its
    /// original owner.
    MigrationCapsule,
    /// A burst of consecutive frames is lost on the wire (correlated
    /// loss, unlike the independent per-frame [`FaultSite::WireLoss`]).
    WireBurstLoss,
    /// One frame is lost on the wire, independently per frame (the
    /// fault-plane replacement for the retired `FaultModel::loss`).
    WireLoss,
    /// One frame is delivered twice by the medium (replaces
    /// `FaultModel::duplicate`).
    WireDuplicate,
    /// One frame's delivery is delayed past its successor (replaces
    /// `FaultModel::reorder`).
    WireReorder,
    /// A link goes down for this frame: the segment consults the site
    /// once per transmitted frame, so a scripted visit *range* models a
    /// flap or a partition (heal = the end of the range).
    LinkDown,
    /// A router/switch egress queue reports full regardless of its real
    /// depth, forcing a tail-drop burst.
    LinkQueueFull,
    /// A router with an alternate next hop routes this packet via the
    /// alternate, creating asymmetric / flapping routes.
    RouteFlip,
}

impl FaultSite {
    /// Every site, in fault-plane presentation order.
    pub const ALL: [FaultSite; 13] = [
        FaultSite::ProxyRpc,
        FaultSite::ShmRing,
        FaultSite::FilterTable,
        FaultSite::NicRx,
        FaultSite::ServerCrash,
        FaultSite::MigrationCapsule,
        FaultSite::WireBurstLoss,
        FaultSite::WireLoss,
        FaultSite::WireDuplicate,
        FaultSite::WireReorder,
        FaultSite::LinkDown,
        FaultSite::LinkQueueFull,
        FaultSite::RouteFlip,
    ];

    /// Short label used in fault-plane snapshots.
    pub fn label(self) -> &'static str {
        match self {
            FaultSite::ProxyRpc => "proxy_rpc",
            FaultSite::ShmRing => "shm_ring",
            FaultSite::FilterTable => "filter_table",
            FaultSite::NicRx => "nic_rx",
            FaultSite::ServerCrash => "server_crash",
            FaultSite::MigrationCapsule => "migration_capsule",
            FaultSite::WireBurstLoss => "wire_burst_loss",
            FaultSite::WireLoss => "wire_loss",
            FaultSite::WireDuplicate => "wire_duplicate",
            FaultSite::WireReorder => "wire_reorder",
            FaultSite::LinkDown => "link_down",
            FaultSite::LinkQueueFull => "link_queue_full",
            FaultSite::RouteFlip => "route_flip",
        }
    }

    fn index(self) -> usize {
        match self {
            FaultSite::ProxyRpc => 0,
            FaultSite::ShmRing => 1,
            FaultSite::FilterTable => 2,
            FaultSite::NicRx => 3,
            FaultSite::ServerCrash => 4,
            FaultSite::MigrationCapsule => 5,
            FaultSite::WireBurstLoss => 6,
            FaultSite::WireLoss => 7,
            FaultSite::WireDuplicate => 8,
            FaultSite::WireReorder => 9,
            FaultSite::LinkDown => 10,
            FaultSite::LinkQueueFull => 11,
            FaultSite::RouteFlip => 12,
        }
    }

    const COUNT: usize = 13;
}

#[derive(Debug, Default, Clone)]
struct SiteState {
    /// How many times the site has been consulted.
    visits: u64,
    /// How many consultations injected a fault.
    injected: u64,
    /// Zero-based visit indices scripted to fail.
    scripted: BTreeSet<u64>,
    /// Per-visit failure probability; `0.0` means the site is unarmed
    /// and no randomness is consumed for it.
    prob: f64,
}

/// A deterministic, seeded fault-injection schedule shared by every
/// component that hosts a fault site (mirrors
/// [`CensusHandle`](crate::census::CensusHandle)).
#[derive(Debug)]
pub struct FaultPlane {
    enabled: bool,
    sites: [SiteState; FaultSite::COUNT],
    /// The plane's private randomness stream; forked from the simulation
    /// seed by the caller so armed sites never disturb component RNGs.
    rng: Option<Rng>,
    /// Number of consecutive frames a [`FaultSite::WireBurstLoss`]
    /// injection drops (the injected visit's frame plus the following
    /// `burst_len - 1`).
    burst_len: u32,
    /// Every injection, as `(site, visit index)`, in occurrence order.
    log: Vec<(FaultSite, u64)>,
}

/// Shared handle to a fault plane.
pub type FaultPlaneHandle = Rc<RefCell<FaultPlane>>;

impl FaultPlane {
    /// Creates an enabled, empty plane: every site unarmed, nothing
    /// scripted. Consulting an empty plane is a pure counter increment.
    pub fn new() -> FaultPlane {
        FaultPlane {
            enabled: true,
            sites: Default::default(),
            rng: None,
            burst_len: 3,
            log: Vec::new(),
        }
    }

    /// Creates a shared handle to a fresh, empty plane.
    pub fn shared() -> FaultPlaneHandle {
        Rc::new(RefCell::new(FaultPlane::new()))
    }

    /// Enables or disables injection (visits are not counted while
    /// disabled, mirroring a disabled census).
    pub fn set_enabled(&mut self, enabled: bool) {
        self.enabled = enabled;
    }

    /// True if the plane is live.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// True if no site is scripted or armed: such a plane can never
    /// inject and never consumes randomness.
    pub fn is_empty(&self) -> bool {
        self.sites
            .iter()
            .all(|s| s.scripted.is_empty() && s.prob == 0.0)
    }

    /// Supplies the plane's private randomness stream (fork it from the
    /// simulation seed). Required before arming any site with a
    /// probability; scripted schedules need no randomness.
    pub fn set_rng(&mut self, rng: Rng) {
        self.rng = Some(rng);
    }

    /// Scripts the site to inject at exactly these zero-based visit
    /// indices (visit 0 is the first consultation after scripting from
    /// a fresh plane).
    pub fn script(&mut self, site: FaultSite, visits: &[u64]) {
        self.sites[site.index()].scripted.extend(visits);
    }

    /// Scripts the site to inject at every visit in `[start, end)` —
    /// the natural shape for a link flap or a partition window, where
    /// the heal is the end of the range.
    pub fn script_range(&mut self, site: FaultSite, start: u64, end: u64) {
        self.sites[site.index()].scripted.extend(start..end);
    }

    /// Arms the site with a per-visit injection probability, drawn from
    /// the plane's private stream. Requires [`FaultPlane::set_rng`].
    pub fn arm(&mut self, site: FaultSite, prob: f64) {
        assert!(
            prob == 0.0 || self.rng.is_some(),
            "arming a probabilistic site requires set_rng first"
        );
        self.sites[site.index()].prob = prob;
    }

    /// Consults the plane at `site`: counts the visit and reports
    /// whether this visit fails. An empty or disabled plane always
    /// answers `false` without consuming randomness.
    pub fn should_inject(&mut self, site: FaultSite) -> bool {
        if !self.enabled {
            return false;
        }
        let s = &mut self.sites[site.index()];
        let visit = s.visits;
        s.visits += 1;
        let mut fire = s.scripted.contains(&visit);
        if !fire && s.prob > 0.0 {
            let rng = self.rng.as_mut().expect("armed site has rng");
            fire = rng.chance(s.prob);
        }
        if fire {
            let s = &mut self.sites[site.index()];
            s.injected += 1;
            self.log.push((site, visit));
        }
        fire
    }

    /// How many times the site has been consulted.
    pub fn visits(&self, site: FaultSite) -> u64 {
        self.sites[site.index()].visits
    }

    /// How many consultations of the site injected a fault.
    pub fn injected(&self, site: FaultSite) -> u64 {
        self.sites[site.index()].injected
    }

    /// Total injections across all sites.
    pub fn total_injected(&self) -> u64 {
        self.sites.iter().map(|s| s.injected).sum()
    }

    /// The length of a wire loss burst (default 3).
    pub fn burst_len(&self) -> u32 {
        self.burst_len
    }

    /// Sets the wire loss burst length.
    pub fn set_burst_len(&mut self, n: u32) {
        self.burst_len = n;
    }

    /// Clears visit counters, injection counts, and the log; schedules
    /// (scripts, probabilities) and the randomness stream are kept.
    pub fn reset(&mut self) {
        for s in &mut self.sites {
            s.visits = 0;
            s.injected = 0;
        }
        self.log.clear();
    }

    /// A deterministic text rendering: one line per site with nonzero
    /// visits, then the injection log in occurrence order. Two planes
    /// driven by identical seeded runs produce byte-identical snapshots.
    pub fn snapshot(&self) -> String {
        let mut out = String::new();
        for site in FaultSite::ALL {
            let s = &self.sites[site.index()];
            if s.visits != 0 {
                let _ = writeln!(
                    out,
                    "{:<18} visits={:<8} injected={}",
                    site.label(),
                    s.visits,
                    s.injected
                );
            }
        }
        for &(site, visit) in &self.log {
            let _ = writeln!(out, "inject {:<18} at visit {}", site.label(), visit);
        }
        out
    }
}

impl Default for FaultPlane {
    fn default() -> FaultPlane {
        FaultPlane::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_plane_never_injects_and_consumes_no_randomness() {
        let mut p = FaultPlane::new();
        let mut reference = Rng::new(77);
        p.set_rng(Rng::new(77));
        assert!(p.is_empty());
        for site in FaultSite::ALL {
            for _ in 0..100 {
                assert!(!p.should_inject(site));
            }
        }
        assert_eq!(p.total_injected(), 0);
        // The plane's stream is untouched: it still matches a fresh
        // reference stream draw for draw.
        assert_eq!(p.rng.as_mut().unwrap().next_u64(), reference.next_u64());
    }

    #[test]
    fn scripted_schedule_fires_at_exact_visits() {
        let mut p = FaultPlane::new();
        p.script(FaultSite::ProxyRpc, &[1, 3]);
        let fired: Vec<bool> = (0..5)
            .map(|_| p.should_inject(FaultSite::ProxyRpc))
            .collect();
        assert_eq!(fired, vec![false, true, false, true, false]);
        assert_eq!(p.visits(FaultSite::ProxyRpc), 5);
        assert_eq!(p.injected(FaultSite::ProxyRpc), 2);
        // Other sites are untouched.
        assert_eq!(p.visits(FaultSite::NicRx), 0);
    }

    #[test]
    fn armed_site_is_deterministic_per_seed() {
        let run = |seed| {
            let mut p = FaultPlane::new();
            p.set_rng(Rng::new(seed));
            p.arm(FaultSite::NicRx, 0.3);
            (0..64)
                .map(|_| p.should_inject(FaultSite::NicRx))
                .collect::<Vec<bool>>()
        };
        assert_eq!(run(9), run(9));
        assert_ne!(run(9), run(10));
        let mut p = FaultPlane::new();
        p.set_rng(Rng::new(9));
        p.arm(FaultSite::NicRx, 0.3);
        for _ in 0..64 {
            p.should_inject(FaultSite::NicRx);
        }
        assert!(p.injected(FaultSite::NicRx) > 0);
        assert!(p.injected(FaultSite::NicRx) < 64);
    }

    #[test]
    fn disabled_plane_counts_and_injects_nothing() {
        let mut p = FaultPlane::new();
        p.script(FaultSite::ServerCrash, &[0]);
        p.set_enabled(false);
        assert!(!p.should_inject(FaultSite::ServerCrash));
        assert_eq!(p.visits(FaultSite::ServerCrash), 0);
        p.set_enabled(true);
        assert!(p.should_inject(FaultSite::ServerCrash));
    }

    #[test]
    fn snapshot_is_deterministic_and_logs_injections_in_order() {
        let build = || {
            let mut p = FaultPlane::new();
            p.script(FaultSite::MigrationCapsule, &[0]);
            p.script(FaultSite::FilterTable, &[2]);
            for _ in 0..3 {
                p.should_inject(FaultSite::FilterTable);
            }
            p.should_inject(FaultSite::MigrationCapsule);
            p
        };
        let a = build().snapshot();
        let b = build().snapshot();
        assert_eq!(a, b);
        assert!(a.contains("filter_table"));
        assert!(a.contains("inject migration_capsule"));
        // Log order is occurrence order: filter_table fired first.
        let fi = a.find("inject filter_table").unwrap();
        let mi = a.find("inject migration_capsule").unwrap();
        assert!(fi < mi);
    }

    #[test]
    fn reset_clears_counts_but_keeps_schedule() {
        let mut p = FaultPlane::new();
        p.script(FaultSite::ShmRing, &[0]);
        assert!(p.should_inject(FaultSite::ShmRing));
        p.reset();
        assert_eq!(p.visits(FaultSite::ShmRing), 0);
        assert!(p.snapshot().is_empty());
        // After reset, visit numbering restarts and the script fires again.
        assert!(p.should_inject(FaultSite::ShmRing));
    }
}
