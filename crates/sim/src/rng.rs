//! Deterministic pseudo-random numbers.
//!
//! The engine must be fully deterministic for a given seed so that latency
//! tables are exactly reproducible and failing loss/reorder schedules can
//! be replayed. A small xoshiro256** generator keeps this crate free of
//! external dependencies.

/// A deterministic xoshiro256** PRNG.
#[derive(Clone, Debug)]
pub struct Rng {
    s: [u64; 4],
}

impl Rng {
    /// Creates a generator from a seed, expanding it with SplitMix64 as the
    /// xoshiro authors recommend.
    pub fn new(seed: u64) -> Rng {
        let mut sm = seed;
        let mut next = || {
            sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        let s = [next(), next(), next(), next()];
        Rng { s }
    }

    /// Returns the next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Returns the next 32 random bits.
    pub fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Returns a uniform value in `[0, bound)`. `bound` must be nonzero.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "Rng::below bound must be nonzero");
        // Lemire's multiply-shift rejection method.
        loop {
            let x = self.next_u64();
            let m = (x as u128).wrapping_mul(bound as u128);
            let lo = m as u64;
            if lo >= bound || lo >= lo.wrapping_neg() % bound {
                return (m >> 64) as u64;
            }
        }
    }

    /// Returns a uniform value in `[lo, hi]` inclusive.
    pub fn range(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo <= hi, "Rng::range requires lo <= hi");
        lo + self.below(hi - lo + 1)
    }

    /// Returns a uniform float in `[0, 1)`.
    pub fn f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Returns true with the given probability.
    pub fn chance(&mut self, p: f64) -> bool {
        if p <= 0.0 {
            false
        } else if p >= 1.0 {
            true
        } else {
            self.f64() < p
        }
    }

    /// Fills a byte slice with random data (for payload generation).
    pub fn fill_bytes(&mut self, buf: &mut [u8]) {
        let mut chunks = buf.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }

    /// Forks an independent stream, deterministically derived from this one.
    pub fn fork(&mut self) -> Rng {
        Rng::new(self.next_u64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_seed() {
        let mut a = Rng::new(42);
        let mut b = Rng::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = Rng::new(1);
        let mut b = Rng::new(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn below_respects_bound() {
        let mut r = Rng::new(7);
        for bound in [1u64, 2, 3, 10, 1000] {
            for _ in 0..200 {
                assert!(r.below(bound) < bound);
            }
        }
    }

    #[test]
    fn range_inclusive() {
        let mut r = Rng::new(9);
        let mut seen_lo = false;
        let mut seen_hi = false;
        for _ in 0..2000 {
            let v = r.range(3, 5);
            assert!((3..=5).contains(&v));
            seen_lo |= v == 3;
            seen_hi |= v == 5;
        }
        assert!(seen_lo && seen_hi);
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = Rng::new(11);
        for _ in 0..1000 {
            let v = r.f64();
            assert!((0.0..1.0).contains(&v));
        }
    }

    #[test]
    fn chance_extremes() {
        let mut r = Rng::new(13);
        assert!(!r.chance(0.0));
        assert!(r.chance(1.0));
    }

    #[test]
    fn fill_bytes_covers_slice() {
        let mut r = Rng::new(17);
        let mut buf = [0u8; 13];
        r.fill_bytes(&mut buf);
        // Astronomically unlikely to remain all zero.
        assert!(buf.iter().any(|&b| b != 0));
    }

    #[test]
    fn fork_streams_are_independent_but_deterministic() {
        let mut a = Rng::new(21);
        let mut b = Rng::new(21);
        let mut fa = a.fork();
        let mut fb = b.fork();
        assert_eq!(fa.next_u64(), fb.next_u64());
        assert_ne!(fa.next_u64(), a.next_u64());
    }
}
