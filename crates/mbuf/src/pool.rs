//! Thread-local mbuf buffer pools.
//!
//! BSD keeps mbufs and clusters on free lists precisely so the packet
//! path never calls the general allocator; this module restores that
//! discipline for the simulation. Three classes are pooled:
//!
//! - small mbuf data areas (`Box<[u8; MLEN]>`),
//! - cluster buffers (`Rc<Vec<u8>>`, reclaimed when uniquely owned at
//!   drop, so shared views keep the data alive exactly as before),
//! - chain nodes (`Box<Mbuf>`, stored vacant and refilled in place).
//!
//! Pools are thread-local (`Rc` data is already thread-bound) and
//! capped, so steady-state packet flow — build chain, prepend headers,
//! share for retransmit, drop — does no per-packet heap traffic while
//! bursts cannot hoard unbounded memory. Pooling is invisible to
//! callers: recycled buffers are never read before being written
//! (`Mbuf::data` only exposes the written `off..off+len` window), so
//! behavior and all simulated byte streams are bit-identical with the
//! pools on or cold.
//!
//! [`PoolStats`] exposes hit/miss/occupancy counters; the crate tests
//! use them to prove the steady state allocates nothing.

use std::cell::{Cell, RefCell};
use std::rc::Rc;

use crate::{Mbuf, Storage, MLEN};

/// Max pooled small data areas (512 KB at `MLEN` = 128).
const SMALL_CAP: usize = 4096;
/// Max pooled cluster buffers.
const CLUSTER_CAP: usize = 1024;
/// Clusters larger than this are released to the allocator rather than
/// pooled, so one jumbo buffer cannot pin memory forever.
const CLUSTER_BYTES_CAP: usize = 16 * 1024;
/// Max pooled chain nodes.
const NODE_CAP: usize = 4096;

/// Hit/miss and occupancy counters for the thread's mbuf pools.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PoolStats {
    /// Small data areas served from the pool.
    pub small_hits: u64,
    /// Small data areas that had to be freshly allocated.
    pub small_misses: u64,
    /// Cluster buffers served from the pool.
    pub cluster_hits: u64,
    /// Cluster buffers that had to be freshly allocated.
    pub cluster_misses: u64,
    /// Chain nodes served from the pool.
    pub node_hits: u64,
    /// Chain nodes that had to be freshly allocated.
    pub node_misses: u64,
    /// Small data areas currently pooled.
    pub small_free: usize,
    /// Cluster buffers currently pooled.
    pub cluster_free: usize,
    /// Chain nodes currently pooled.
    pub node_free: usize,
}

impl PoolStats {
    /// Total pool hits across every buffer class.
    pub fn hits(&self) -> u64 {
        self.small_hits + self.cluster_hits + self.node_hits
    }

    /// Total pool misses (fresh allocations) across every buffer class.
    pub fn misses(&self) -> u64 {
        self.small_misses + self.cluster_misses + self.node_misses
    }

    const fn new() -> PoolStats {
        PoolStats {
            small_hits: 0,
            small_misses: 0,
            cluster_hits: 0,
            cluster_misses: 0,
            node_hits: 0,
            node_misses: 0,
            small_free: 0,
            cluster_free: 0,
            node_free: 0,
        }
    }
}

// The boxes ARE the pooled resource: `Mbuf` stores `Box<[u8; MLEN]>` /
// `Box<Mbuf>` directly, so recycling the allocation requires keeping it
// boxed (unboxing would memcpy the payload and re-allocate on take).
#[allow(clippy::vec_box)]
struct Pools {
    small: Vec<Box<[u8; MLEN]>>,
    clusters: Vec<Rc<Vec<u8>>>,
    nodes: Vec<Box<Mbuf>>,
}

thread_local! {
    static POOLS: RefCell<Pools> = const {
        RefCell::new(Pools {
            small: Vec::new(),
            clusters: Vec::new(),
            nodes: Vec::new(),
        })
    };
    static STATS: Cell<PoolStats> = const { Cell::new(PoolStats::new()) };
}

fn bump(update: impl FnOnce(&mut PoolStats)) {
    // `try_with` so late drops during thread teardown cannot panic.
    let _ = STATS.try_with(|s| {
        let mut v = s.get();
        update(&mut v);
        s.set(v);
    });
}

/// This thread's pool counters.
pub fn pool_stats() -> PoolStats {
    let mut stats = STATS.try_with(Cell::get).unwrap_or_default();
    let _ = POOLS.try_with(|p| {
        let p = p.borrow();
        stats.small_free = p.small.len();
        stats.cluster_free = p.clusters.len();
        stats.node_free = p.nodes.len();
    });
    stats
}

/// Resets this thread's hit/miss counters (pool contents are kept).
pub fn reset_pool_stats() {
    let _ = STATS.try_with(|s| s.set(PoolStats::default()));
}

/// Empties this thread's pools, returning all buffers to the allocator.
pub fn drain_pools() {
    let _ = POOLS.try_with(|p| {
        let mut p = p.borrow_mut();
        p.small.clear();
        p.clusters.clear();
        p.nodes.clear();
    });
}

/// A small mbuf data area, recycled when available. Contents are
/// unspecified; callers only read bytes they wrote.
pub(crate) fn take_small() -> Box<[u8; MLEN]> {
    let pooled = POOLS
        .try_with(|p| p.borrow_mut().small.pop())
        .unwrap_or(None);
    match pooled {
        Some(b) => {
            bump(|s| s.small_hits += 1);
            b
        }
        None => {
            bump(|s| s.small_misses += 1);
            Box::new([0u8; MLEN])
        }
    }
}

/// A uniquely-owned, empty cluster buffer with capacity for at least
/// `want` bytes.
pub(crate) fn take_cluster(want: usize) -> Rc<Vec<u8>> {
    let pooled = POOLS
        .try_with(|p| p.borrow_mut().clusters.pop())
        .unwrap_or(None);
    match pooled {
        Some(mut rc) => {
            bump(|s| s.cluster_hits += 1);
            let buf = Rc::get_mut(&mut rc).expect("pooled cluster is unique");
            buf.clear();
            buf.reserve(want);
            rc
        }
        None => {
            bump(|s| s.cluster_misses += 1);
            Rc::new(Vec::with_capacity(want))
        }
    }
}

/// Boxes `m`, reusing a pooled vacant node when available.
pub(crate) fn box_mbuf(m: Mbuf) -> Box<Mbuf> {
    let pooled = POOLS
        .try_with(|p| p.borrow_mut().nodes.pop())
        .unwrap_or(None);
    match pooled {
        Some(mut b) => {
            bump(|s| s.node_hits += 1);
            // Overwriting the vacant node runs its (no-op) destructor.
            *b = m;
            b
        }
        None => {
            bump(|s| s.node_misses += 1);
            Box::new(m)
        }
    }
}

/// Returns storage to its pool. Shared clusters stay alive with their
/// other owners; the buffer comes back when the last owner drops it.
pub(crate) fn recycle_storage(storage: Storage) {
    match storage {
        Storage::Vacant => {}
        Storage::Small(b) => {
            let _ = POOLS.try_with(|p| {
                let mut p = p.borrow_mut();
                if p.small.len() < SMALL_CAP {
                    p.small.push(b);
                }
            });
        }
        Storage::Cluster { data } => {
            if Rc::strong_count(&data) == 1 && data.capacity() <= CLUSTER_BYTES_CAP {
                let _ = POOLS.try_with(|p| {
                    let mut p = p.borrow_mut();
                    if p.clusters.len() < CLUSTER_CAP {
                        p.clusters.push(data);
                    }
                });
            }
        }
    }
}

/// Returns a detached chain node (its `next` already taken) to the pool,
/// recycling its storage first.
pub(crate) fn recycle_node(mut b: Box<Mbuf>) {
    debug_assert!(b.next.is_none(), "recycle_node takes detached nodes");
    recycle_storage(std::mem::replace(&mut b.storage, Storage::Vacant));
    b.off = 0;
    b.len = 0;
    let _ = POOLS.try_with(|p| {
        let mut p = p.borrow_mut();
        if p.nodes.len() < NODE_CAP {
            p.nodes.push(b);
        }
    });
}

/// Walks a chain iteratively, recycling every node and its storage.
/// (The compiler-generated drop would recurse per node and discard the
/// boxes; long socket-buffer chains make both traits undesirable.)
pub(crate) fn recycle_chain(head: Option<Box<Mbuf>>) {
    let mut cur = head;
    while let Some(mut b) = cur {
        cur = b.next.take();
        recycle_node(b);
    }
}
