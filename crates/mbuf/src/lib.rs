//! BSD-style network memory buffers (mbufs) and socket buffers.
//!
//! The paper's protocol code is BSD Net2 code, whose unit of allocation
//! is the *mbuf*: a small fixed-size buffer, optionally pointing at a
//! shared 2 KB *cluster*, chained to form one packet. This crate
//! reimplements the structure with the operations the stack needs:
//!
//! - [`MbufChain::from_slice`] — `m_copyin`: copy user data into a chain.
//! - [`MbufChain::from_shared`] — reference external data without copying
//!   (the library UDP send path and the NEWAPI shared-buffer interface).
//! - [`MbufChain::copy_range`] — `m_copy`: a range copy that *shares*
//!   clusters instead of copying, which is what lets `tcp_output` send
//!   from the socket buffer and retransmit without touching the bytes.
//! - [`MbufChain::trim_front`]/[`trim_back`](MbufChain::trim_back) —
//!   `m_adj`.
//! - [`MbufChain::prepend`] — header prepend into reserved headroom.
//! - [`MbufChain::pullup`] — `m_pullup`: make a prefix contiguous.
//!
//! [`SockBuf`] is the byte-stream socket buffer (`sb_cc`/`sb_hiwat`
//! bookkeeping, `sbappend`, `sbdrop`) and [`DgramBuf`] is the
//! record-oriented variant UDP uses.
//!
//! The structures are pure data: virtual-time costs for mbuf operations
//! are charged by the protocol code that invokes them, using the counts
//! these APIs report (e.g. [`MbufChain::mbuf_count`]).

use std::cell::Cell;
use std::collections::VecDeque;
use std::fmt;
use std::rc::Rc;

mod pool;

pub use pool::{drain_pools, pool_stats, reset_pool_stats, PoolStats};

thread_local! {
    static COPIED_BYTES: Cell<u64> = const { Cell::new(0) };
}

/// Bytes physically copied by the mbuf data primitives — `m_copyin`
/// ([`MbufChain::from_slice`], [`MbufChain::append_slice`]), `m_copydata`
/// ([`MbufChain::copy_to_slice`], [`MbufChain::to_vec`]), the small-mbuf
/// arm of `m_copy`, and `m_pullup` — since the last
/// [`reset_copy_meter`]. Header prepends are excluded (they are header
/// copies, not packet-body copies). The simulation is single-threaded,
/// so the tally is deterministic; the operation census uses it to
/// cross-check the per-site copy counters against what the buffer code
/// actually did.
pub fn copied_bytes() -> u64 {
    COPIED_BYTES.with(|c| c.get())
}

/// Resets this thread's mbuf copy meter to zero.
pub fn reset_copy_meter() {
    COPIED_BYTES.with(|c| c.set(0));
}

fn meter_copy(n: usize) {
    COPIED_BYTES.with(|c| c.set(c.get() + n as u64));
}

/// Size of a small mbuf's inline data area.
pub const MLEN: usize = 128;

/// Size of an mbuf cluster.
pub const MCLBYTES: usize = 2048;

/// Appends of at least this many bytes go to a cluster (BSD `MINCLSIZE`).
pub const MINCLSIZE: usize = 208;

/// Default headroom reserved for link/network/transport headers when
/// building a data chain (Ethernet 14 + IP 20 + TCP 20, rounded up).
pub const HEADROOM: usize = 64;

pub(crate) enum Storage {
    Small(Box<[u8; MLEN]>),
    Cluster {
        data: Rc<Vec<u8>>,
    },
    /// Placeholder for a node whose storage has been recycled (pooled
    /// chain nodes, and mbufs mid-drop). Never observable through the
    /// public API.
    Vacant,
}

impl Storage {
    fn bytes(&self) -> &[u8] {
        match self {
            Storage::Small(b) => &b[..],
            Storage::Cluster { data } => data,
            Storage::Vacant => &[],
        }
    }
}

/// One mbuf: a view (`off..off+len`) into small inline storage or a
/// shared cluster.
pub struct Mbuf {
    storage: Storage,
    off: usize,
    len: usize,
    next: Option<Box<Mbuf>>,
}

impl Drop for Mbuf {
    fn drop(&mut self) {
        // Recycle the data area. The `next` chain is handled by the
        // compiler's drop glue (or, preferably, by `MbufChain`'s
        // iterative drop, which also reclaims the node boxes).
        pool::recycle_storage(std::mem::replace(&mut self.storage, Storage::Vacant));
    }
}

impl Mbuf {
    fn small() -> Mbuf {
        Mbuf {
            storage: Storage::Small(pool::take_small()),
            off: 0,
            len: 0,
            next: None,
        }
    }

    fn cluster(data: Rc<Vec<u8>>, off: usize, len: usize) -> Mbuf {
        debug_assert!(off + len <= data.len());
        Mbuf {
            storage: Storage::Cluster { data },
            off,
            len,
            next: None,
        }
    }

    /// The bytes this mbuf contributes to the chain.
    pub fn data(&self) -> &[u8] {
        &self.storage.bytes()[self.off..self.off + self.len]
    }

    /// True if this mbuf references a (possibly shared) cluster.
    pub fn is_cluster(&self) -> bool {
        matches!(self.storage, Storage::Cluster { .. })
    }

    fn tailroom(&self) -> usize {
        match &self.storage {
            Storage::Small(_) => MLEN - (self.off + self.len),
            // Clusters may be shared; never write into one in place.
            Storage::Cluster { .. } | Storage::Vacant => 0,
        }
    }

    fn append_small(&mut self, src: &[u8]) -> usize {
        let n = src.len().min(self.tailroom());
        if n > 0 {
            if let Storage::Small(buf) = &mut self.storage {
                let start = self.off + self.len;
                buf[start..start + n].copy_from_slice(&src[..n]);
                self.len += n;
                meter_copy(n);
            }
        }
        n
    }
}

impl fmt::Debug for Mbuf {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "Mbuf{{{} {}B@{}}}",
            if self.is_cluster() {
                "cluster"
            } else {
                "small"
            },
            self.len,
            self.off
        )
    }
}

/// A chain of mbufs holding one packet (or one socket-buffer run).
#[derive(Default)]
pub struct MbufChain {
    head: Option<Box<Mbuf>>,
    len: usize,
    count: usize,
}

impl Drop for MbufChain {
    fn drop(&mut self) {
        // Iterative walk: returns every node box and data area to the
        // thread pool, and keeps long socket-buffer chains from
        // recursing one stack frame per mbuf.
        pool::recycle_chain(self.head.take());
    }
}

impl MbufChain {
    /// An empty chain.
    pub fn new() -> MbufChain {
        MbufChain::default()
    }

    /// Builds a chain by *copying* `data` (the `copyin` discipline),
    /// reserving [`HEADROOM`] in the first mbuf so link/protocol headers
    /// can later be prepended without allocation.
    pub fn from_slice(data: &[u8]) -> MbufChain {
        MbufChain::from_slice_with_headroom(data, HEADROOM)
    }

    /// As [`from_slice`](MbufChain::from_slice) with explicit headroom.
    pub fn from_slice_with_headroom(data: &[u8], headroom: usize) -> MbufChain {
        let mut chain = MbufChain::new();
        if data.len() >= MINCLSIZE {
            // Cluster path: one copy into a (pooled) cluster.
            let mut cluster = pool::take_cluster(headroom + data.len());
            let buf = Rc::get_mut(&mut cluster).expect("fresh cluster is unique");
            buf.resize(headroom, 0);
            buf.extend_from_slice(data);
            meter_copy(data.len());
            let total = buf.len();
            chain.push_back(Mbuf::cluster(cluster, headroom, total - headroom));
        } else {
            let mut first = Mbuf::small();
            first.off = headroom.min(MLEN - 1);
            let mut written = first.append_small(data);
            chain.push_back(first);
            while written < data.len() {
                let mut m = Mbuf::small();
                written += m.append_small(&data[written..]);
                chain.push_back(m);
            }
        }
        chain
    }

    /// Builds a chain that *references* shared data without copying it —
    /// the zero-copy send discipline ("the user data can be referenced
    /// instead of copied").
    pub fn from_shared(data: Rc<Vec<u8>>) -> MbufChain {
        let len = data.len();
        MbufChain::from_shared_range(data, 0, len)
    }

    /// Builds a chain referencing a sub-range of shared data.
    pub fn from_shared_range(data: Rc<Vec<u8>>, off: usize, len: usize) -> MbufChain {
        let mut chain = MbufChain::new();
        if len > 0 {
            chain.push_back(Mbuf::cluster(data, off, len));
        }
        chain
    }

    /// Total bytes in the chain.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if the chain holds no bytes.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of mbufs in the chain (for cost accounting).
    pub fn mbuf_count(&self) -> usize {
        self.count
    }

    fn push_back(&mut self, m: Mbuf) {
        self.len += m.len;
        self.count += 1;
        let mut cur = &mut self.head;
        while let Some(node) = cur {
            cur = &mut node.next;
        }
        *cur = Some(pool::box_mbuf(m));
    }

    fn push_front(&mut self, mut m: Mbuf) {
        self.len += m.len;
        self.count += 1;
        m.next = self.head.take();
        self.head = Some(pool::box_mbuf(m));
    }

    /// Prepends `hdr` to the front of the chain, using the first mbuf's
    /// headroom when possible (the common case for protocol headers),
    /// otherwise allocating a new leading mbuf. Returns the number of
    /// mbufs allocated (0 or 1), for cost accounting.
    pub fn prepend(&mut self, hdr: &[u8]) -> usize {
        if let Some(first) = &mut self.head {
            let can_use_headroom = match &first.storage {
                Storage::Small(_) => first.off >= hdr.len(),
                Storage::Cluster { data } => first.off >= hdr.len() && Rc::strong_count(data) == 1,
                Storage::Vacant => unreachable!("vacant mbuf in a live chain"),
            };
            if can_use_headroom {
                first.off -= hdr.len();
                first.len += hdr.len();
                let off = first.off;
                match &mut first.storage {
                    Storage::Small(buf) => buf[off..off + hdr.len()].copy_from_slice(hdr),
                    Storage::Cluster { data } => {
                        let buf = Rc::get_mut(data).expect("uniqueness checked above");
                        buf[off..off + hdr.len()].copy_from_slice(hdr);
                    }
                    Storage::Vacant => unreachable!("vacant mbuf in a live chain"),
                }
                self.len += hdr.len();
                return 0;
            }
        }
        // Allocate a fresh leading mbuf (or chain, for oversized headers).
        if hdr.len() <= MLEN {
            let mut m = Mbuf::small();
            m.off = MLEN - hdr.len();
            let off = m.off;
            if let Storage::Small(buf) = &mut m.storage {
                buf[off..].copy_from_slice(hdr);
            }
            m.len = hdr.len();
            self.push_front(m);
            1
        } else {
            let rest = std::mem::take(self);
            let mut fresh = MbufChain::from_slice_with_headroom(hdr, 0);
            let allocated = fresh.mbuf_count();
            fresh.append_chain(rest);
            *self = fresh;
            allocated
        }
    }

    /// Appends another chain's mbufs (`m_cat`).
    pub fn append_chain(&mut self, mut other: MbufChain) {
        self.len += other.len;
        self.count += other.count;
        let mut cur = &mut self.head;
        while let Some(node) = cur {
            cur = &mut node.next;
        }
        *cur = other.head.take();
    }

    /// Appends `data` by copying, reusing tail space in the last small
    /// mbuf when available. Returns the number of mbufs allocated.
    pub fn append_slice(&mut self, data: &[u8]) -> usize {
        let mut written = 0;
        // Fill the tail of the last mbuf first.
        let mut cur = &mut self.head;
        while let Some(node) = cur {
            if node.next.is_none() {
                let n = node.append_small(data);
                self.len += n;
                written = n;
                break;
            }
            cur = &mut node.next;
        }
        let before = self.count;
        if written < data.len() {
            let rest = MbufChain::from_slice_with_headroom(&data[written..], 0);
            self.append_chain(rest);
        }
        self.count - before
    }

    /// `m_copy`: a logical copy of `[off, off+len)`. Cluster segments are
    /// shared (no byte copying); small segments are copied. Returns the
    /// new chain and the number of bytes physically copied, for cost
    /// accounting.
    pub fn copy_range(&self, mut off: usize, mut len: usize) -> (MbufChain, usize) {
        assert!(
            off + len <= self.len,
            "copy_range({off}, {len}) out of bounds of {}",
            self.len
        );
        let mut out = MbufChain::new();
        let mut copied = 0;
        let mut node = self.head.as_deref();
        while let Some(m) = node {
            if len == 0 {
                break;
            }
            if off >= m.len {
                off -= m.len;
                node = m.next.as_deref();
                continue;
            }
            let take = (m.len - off).min(len);
            match &m.storage {
                Storage::Cluster { data } => {
                    out.push_back(Mbuf::cluster(data.clone(), m.off + off, take));
                }
                Storage::Small(_) | Storage::Vacant => {
                    let src = &m.data()[off..off + take];
                    let rest = MbufChain::from_slice_with_headroom(src, 0);
                    copied += take;
                    out.append_chain(rest);
                }
            }
            len -= take;
            off = 0;
            node = m.next.as_deref();
        }
        (out, copied)
    }

    /// `m_adj` with a positive count: drops `n` bytes from the front.
    pub fn trim_front(&mut self, mut n: usize) {
        assert!(n <= self.len, "trim_front({n}) beyond length {}", self.len);
        self.len -= n;
        while n > 0 {
            let first = self.head.as_mut().expect("length accounting broken");
            if first.len > n {
                first.off += n;
                first.len -= n;
                break;
            }
            n -= first.len;
            let mut old = self.head.take().expect("length accounting broken");
            self.head = old.next.take();
            pool::recycle_node(old);
            self.count -= 1;
        }
        if self.len == 0 {
            pool::recycle_chain(self.head.take());
            self.count = 0;
        }
    }

    /// `m_adj` with a negative count: drops `n` bytes from the back.
    #[allow(clippy::while_let_loop)] // The `break`-with-truncation body reads better spelled out.
    pub fn trim_back(&mut self, n: usize) {
        assert!(n <= self.len, "trim_back({n}) beyond length {}", self.len);
        let keep = self.len - n;
        if keep == 0 {
            pool::recycle_chain(self.head.take());
            self.count = 0;
            self.len = 0;
            return;
        }
        let mut seen = 0;
        let mut cur = &mut self.head;
        loop {
            let node = match cur {
                Some(node) => node,
                None => break,
            };
            if seen + node.len >= keep {
                node.len = keep - seen;
                pool::recycle_chain(node.next.take());
                break;
            }
            seen += node.len;
            cur = &mut node.next;
        }
        self.len = keep;
        let mut count = 0;
        let mut node = self.head.as_deref();
        while let Some(m) = node {
            count += 1;
            node = m.next.as_deref();
        }
        self.count = count;
    }

    /// Splits the chain at byte `at`, returning the tail. Cluster data is
    /// shared, not copied.
    pub fn split_off(&mut self, at: usize) -> MbufChain {
        assert!(at <= self.len, "split_off({at}) beyond length {}", self.len);
        let (tail, _) = self.copy_range(at, self.len - at);
        self.trim_back(self.len - at);
        tail
    }

    /// `m_pullup`: ensure the first `n` bytes are contiguous in the first
    /// mbuf. Returns true on success (false if the chain is shorter).
    pub fn pullup(&mut self, n: usize) -> bool {
        if n > self.len {
            return false;
        }
        if n == 0 {
            return true;
        }
        if let Some(first) = &self.head {
            if first.len >= n {
                return true;
            }
        }
        assert!(n <= MLEN, "pullup({n}) larger than MLEN");
        let mut buf = vec![0u8; n];
        self.copy_to_slice(0, &mut buf);
        let old_len = self.len;
        let old = std::mem::take(self);
        let (rest, _) = old.copy_range(n, old_len - n);
        let mut first = Mbuf::small();
        first.append_small(&buf);
        let mut fresh = MbufChain::new();
        fresh.push_back(first);
        fresh.append_chain(rest);
        *self = fresh;
        true
    }

    /// Copies `buf.len()` bytes starting at `off` into `buf`
    /// (`m_copydata`).
    pub fn copy_to_slice(&self, mut off: usize, buf: &mut [u8]) {
        assert!(
            off + buf.len() <= self.len,
            "copy_to_slice({off}, {}) out of bounds of {}",
            buf.len(),
            self.len
        );
        let mut written = 0;
        let mut node = self.head.as_deref();
        while let Some(m) = node {
            if written == buf.len() {
                break;
            }
            if off >= m.len {
                off -= m.len;
                node = m.next.as_deref();
                continue;
            }
            let take = (m.len - off).min(buf.len() - written);
            buf[written..written + take].copy_from_slice(&m.data()[off..off + take]);
            meter_copy(take);
            written += take;
            off = 0;
            node = m.next.as_deref();
        }
    }

    /// Flattens the chain into a fresh `Vec` (used at device boundaries).
    pub fn to_vec(&self) -> Vec<u8> {
        let mut out = vec![0u8; self.len];
        self.copy_to_slice(0, &mut out);
        out
    }

    /// Iterates over the contiguous byte segments of the chain.
    pub fn iter_segments(&self) -> SegmentIter<'_> {
        SegmentIter {
            node: self.head.as_deref(),
        }
    }
}

impl fmt::Debug for MbufChain {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "MbufChain{{{}B in {} mbufs}}", self.len, self.count)
    }
}

impl Clone for MbufChain {
    /// Clones share cluster data and copy small mbufs, like `m_copy` of
    /// the whole chain.
    fn clone(&self) -> MbufChain {
        self.copy_range(0, self.len).0
    }
}

/// One descriptor of a batched NEWAPI receive (`recv_batch`): the
/// delivered chain plus where its body bytes live. For eager flows the
/// chain is the whole datagram and `kernel_resident` is false. For
/// selective-copy (kernel-resident) flows the ring carried only the
/// headers; the chain still exposes the full payload through the pull
/// handle, but the body copy is charged only when the application
/// actually pulls it.
pub struct RecvDesc {
    /// The received data.
    pub chain: MbufChain,
    /// True when the body stayed in kernel memory (header-only
    /// delivery); pulling the bytes pays the deferred copy.
    pub kernel_resident: bool,
}

/// Iterator over a chain's contiguous segments.
pub struct SegmentIter<'a> {
    node: Option<&'a Mbuf>,
}

impl<'a> Iterator for SegmentIter<'a> {
    type Item = &'a [u8];

    fn next(&mut self) -> Option<&'a [u8]> {
        let m = self.node?;
        self.node = m.next.as_deref();
        Some(m.data())
    }
}

/// A byte-stream socket buffer (BSD `sockbuf` for TCP).
#[derive(Debug, Default)]
pub struct SockBuf {
    chain: MbufChain,
    hiwat: usize,
    lowat: usize,
}

impl SockBuf {
    /// Creates a buffer with the given high-water mark (`sbreserve`).
    pub fn new(hiwat: usize) -> SockBuf {
        SockBuf {
            chain: MbufChain::new(),
            hiwat,
            lowat: 1,
        }
    }

    /// Bytes currently buffered (`sb_cc`).
    pub fn len(&self) -> usize {
        self.chain.len()
    }

    /// True if no bytes are buffered.
    pub fn is_empty(&self) -> bool {
        self.chain.is_empty()
    }

    /// The high-water mark.
    pub fn hiwat(&self) -> usize {
        self.hiwat
    }

    /// Changes the high-water mark (`sbreserve`). Never discards data.
    pub fn reserve(&mut self, hiwat: usize) {
        self.hiwat = hiwat;
    }

    /// The low-water mark used by `select`/blocking wakeups.
    pub fn lowat(&self) -> usize {
        self.lowat
    }

    /// Sets the low-water mark.
    pub fn set_lowat(&mut self, lowat: usize) {
        self.lowat = lowat.max(1);
    }

    /// Free space (`sbspace`), zero when over-committed.
    pub fn space(&self) -> usize {
        self.hiwat.saturating_sub(self.chain.len())
    }

    /// Appends a chain (`sbappend`).
    pub fn append(&mut self, chain: MbufChain) {
        self.chain.append_chain(chain);
    }

    /// Drops `n` bytes from the front (`sbdrop`) — acknowledged data on
    /// the send side, consumed data on the receive side.
    pub fn drop_front(&mut self, n: usize) {
        self.chain.trim_front(n);
    }

    /// A logical copy of `[off, off+len)` for (re)transmission; shares
    /// clusters. Returns the chain and bytes physically copied.
    pub fn copy_range(&self, off: usize, len: usize) -> (MbufChain, usize) {
        self.chain.copy_range(off, len)
    }

    /// Copies the first `buf.len()` bytes into `buf` without consuming
    /// (receive-side peek before `drop_front`).
    pub fn peek(&self, buf: &mut [u8]) {
        self.chain.copy_to_slice(0, buf);
    }

    /// Discards everything (`sbflush`).
    pub fn flush(&mut self) {
        self.chain = MbufChain::new();
    }

    /// Takes the whole chain out (used when migrating session state).
    pub fn take_chain(&mut self) -> MbufChain {
        std::mem::take(&mut self.chain)
    }
}

/// One datagram record in a [`DgramBuf`].
#[derive(Debug)]
pub struct DgramRecord<M> {
    /// Protocol metadata (typically the sender's address).
    pub meta: M,
    /// The datagram payload.
    pub chain: MbufChain,
}

/// A record-oriented socket buffer (BSD `sockbuf` for UDP).
#[derive(Debug)]
pub struct DgramBuf<M> {
    records: VecDeque<DgramRecord<M>>,
    bytes: usize,
    hiwat: usize,
}

impl<M> DgramBuf<M> {
    /// Creates a buffer with the given byte high-water mark.
    pub fn new(hiwat: usize) -> DgramBuf<M> {
        DgramBuf {
            records: VecDeque::new(),
            bytes: 0,
            hiwat,
        }
    }

    /// Number of queued datagrams.
    pub fn records(&self) -> usize {
        self.records.len()
    }

    /// Total queued bytes.
    pub fn len(&self) -> usize {
        self.bytes
    }

    /// True if no datagrams are queued.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Free space in bytes.
    pub fn space(&self) -> usize {
        self.hiwat.saturating_sub(self.bytes)
    }

    /// Changes the high-water mark.
    pub fn reserve(&mut self, hiwat: usize) {
        self.hiwat = hiwat;
    }

    /// Appends a datagram (`sbappendaddr`). Returns false — dropping the
    /// datagram — if it does not fit, as BSD does.
    pub fn append(&mut self, meta: M, chain: MbufChain) -> bool {
        if chain.len() > self.space() {
            return false;
        }
        self.bytes += chain.len();
        self.records.push_back(DgramRecord { meta, chain });
        true
    }

    /// Removes and returns the oldest datagram.
    pub fn pop(&mut self) -> Option<DgramRecord<M>> {
        let rec = self.records.pop_front()?;
        self.bytes -= rec.chain.len();
        Some(rec)
    }

    /// Discards everything.
    pub fn flush(&mut self) {
        self.records.clear();
        self.bytes = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_slice_roundtrips() {
        for len in [0usize, 1, 10, MLEN, MINCLSIZE - 1, MINCLSIZE, 1460, 5000] {
            let data: Vec<u8> = (0..len).map(|i| (i % 251) as u8).collect();
            let chain = MbufChain::from_slice(&data);
            assert_eq!(chain.len(), len, "len {len}");
            assert_eq!(chain.to_vec(), data, "len {len}");
        }
    }

    #[test]
    fn small_data_uses_one_small_mbuf() {
        let chain = MbufChain::from_slice(&[1, 2, 3]);
        assert_eq!(chain.mbuf_count(), 1);
        assert!(!chain.iter_segments().next().unwrap().is_empty());
    }

    #[test]
    fn large_data_uses_cluster() {
        let data = vec![7u8; 1460];
        let chain = MbufChain::from_slice(&data);
        assert_eq!(chain.mbuf_count(), 1);
    }

    #[test]
    fn prepend_uses_headroom() {
        let mut chain = MbufChain::from_slice(&[9u8; 100]);
        let allocated = chain.prepend(&[1, 2, 3, 4]);
        assert_eq!(allocated, 0);
        assert_eq!(chain.len(), 104);
        assert_eq!(&chain.to_vec()[..4], &[1, 2, 3, 4]);
    }

    #[test]
    fn prepend_without_headroom_allocates() {
        let mut chain = MbufChain::from_slice_with_headroom(&[9u8; 10], 0);
        let allocated = chain.prepend(&[1, 2]);
        assert_eq!(allocated, 1);
        assert_eq!(chain.to_vec()[..2], [1, 2]);
        assert_eq!(chain.len(), 12);
    }

    #[test]
    fn prepend_on_shared_cluster_does_not_corrupt_sharer() {
        let data = vec![5u8; 1000];
        let chain = MbufChain::from_slice(&data);
        let (mut copy, _) = chain.copy_range(0, 1000);
        // The copy shares the cluster; prepending into it must not write
        // into storage the original still references.
        copy.prepend(&[1, 2, 3]);
        assert_eq!(&copy.to_vec()[..3], &[1, 2, 3]);
        assert_eq!(chain.to_vec(), data);
    }

    #[test]
    fn copy_range_shares_clusters() {
        let data = vec![3u8; 2000];
        let chain = MbufChain::from_slice(&data);
        let (copy, copied_bytes) = chain.copy_range(100, 500);
        assert_eq!(copied_bytes, 0, "cluster data must be shared, not copied");
        assert_eq!(copy.len(), 500);
        assert_eq!(copy.to_vec(), vec![3u8; 500]);
    }

    #[test]
    fn copy_range_copies_small_mbufs() {
        let chain = MbufChain::from_slice(&[1, 2, 3, 4, 5]);
        let (copy, copied_bytes) = chain.copy_range(1, 3);
        assert_eq!(copied_bytes, 3);
        assert_eq!(copy.to_vec(), vec![2, 3, 4]);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn copy_range_out_of_bounds_panics() {
        let chain = MbufChain::from_slice(&[1, 2, 3]);
        let _ = chain.copy_range(2, 5);
    }

    #[test]
    fn trim_front_across_mbufs() {
        let data: Vec<u8> = (0..200u32).map(|i| i as u8).collect();
        // Force multiple small mbufs.
        let mut chain = MbufChain::from_slice_with_headroom(&data[..100], 90);
        chain.append_slice(&data[100..]);
        chain.trim_front(150);
        assert_eq!(chain.len(), 50);
        assert_eq!(chain.to_vec(), &data[150..]);
    }

    #[test]
    fn trim_front_entire_chain() {
        let mut chain = MbufChain::from_slice(&[1u8; 300]);
        chain.trim_front(300);
        assert!(chain.is_empty());
        assert_eq!(chain.mbuf_count(), 0);
    }

    #[test]
    fn trim_back_shortens() {
        let data: Vec<u8> = (0..100u32).map(|i| i as u8).collect();
        let mut chain = MbufChain::from_slice(&data);
        chain.trim_back(30);
        assert_eq!(chain.len(), 70);
        assert_eq!(chain.to_vec(), &data[..70]);
    }

    #[test]
    fn trim_back_everything() {
        let mut chain = MbufChain::from_slice(&[1u8; 50]);
        chain.trim_back(50);
        assert!(chain.is_empty());
        assert_eq!(chain.mbuf_count(), 0);
    }

    #[test]
    fn split_off_partitions() {
        let data: Vec<u8> = (0..500u32).map(|i| i as u8).collect();
        let mut chain = MbufChain::from_slice(&data);
        let tail = chain.split_off(200);
        assert_eq!(chain.to_vec(), &data[..200]);
        assert_eq!(tail.to_vec(), &data[200..]);
    }

    #[test]
    fn pullup_makes_prefix_contiguous() {
        let mut chain = MbufChain::from_slice_with_headroom(&[1u8; 60], 100);
        chain.append_slice(&[2u8; 60]);
        assert!(chain.mbuf_count() >= 2);
        assert!(chain.pullup(80));
        let first = chain.iter_segments().next().unwrap();
        assert!(first.len() >= 80);
        let mut expect = vec![1u8; 60];
        expect.extend_from_slice(&[2u8; 60]);
        assert_eq!(chain.to_vec(), expect);
    }

    #[test]
    fn pullup_too_long_fails() {
        let mut chain = MbufChain::from_slice(&[1, 2, 3]);
        assert!(!chain.pullup(10));
    }

    #[test]
    fn from_shared_is_zero_alloc_per_byte() {
        let data = Rc::new(vec![9u8; 4000]);
        let chain = MbufChain::from_shared(data.clone());
        assert_eq!(chain.len(), 4000);
        assert_eq!(chain.mbuf_count(), 1);
        assert_eq!(Rc::strong_count(&data), 2);
    }

    #[test]
    fn from_shared_range_selects_window() {
        let data = Rc::new((0..100u8).collect::<Vec<_>>());
        let chain = MbufChain::from_shared_range(data, 10, 5);
        assert_eq!(chain.to_vec(), vec![10, 11, 12, 13, 14]);
    }

    #[test]
    fn append_slice_reuses_tail_space() {
        let mut chain = MbufChain::from_slice_with_headroom(&[1u8; 10], 0);
        let allocated = chain.append_slice(&[2u8; 10]);
        assert_eq!(allocated, 0, "tail space of the small mbuf should fit");
        assert_eq!(chain.len(), 20);
    }

    #[test]
    fn sockbuf_append_drop() {
        let mut sb = SockBuf::new(8192);
        sb.append(MbufChain::from_slice(&[1u8; 100]));
        sb.append(MbufChain::from_slice(&[2u8; 200]));
        assert_eq!(sb.len(), 300);
        assert_eq!(sb.space(), 8192 - 300);
        sb.drop_front(150);
        assert_eq!(sb.len(), 150);
        let mut buf = [0u8; 150];
        sb.peek(&mut buf);
        assert_eq!(&buf[..50], &[2u8; 50][..]);
    }

    #[test]
    fn sockbuf_copy_range_for_retransmit() {
        let data: Vec<u8> = (0..255u32).map(|i| i as u8).collect();
        let mut sb = SockBuf::new(8192);
        sb.append(MbufChain::from_slice(&data));
        let (seg, copied) = sb.copy_range(10, 100);
        assert_eq!(seg.len(), 100);
        assert_eq!(copied, 0, "cluster-backed send queue shares on copy");
        assert_eq!(sb.len(), 255, "copy_range must not consume");
    }

    #[test]
    fn sockbuf_space_saturates() {
        let mut sb = SockBuf::new(10);
        sb.append(MbufChain::from_slice(&[0u8; 25]));
        assert_eq!(sb.space(), 0);
    }

    #[test]
    fn dgrambuf_records_fifo() {
        let mut db: DgramBuf<u32> = DgramBuf::new(4096);
        assert!(db.append(1, MbufChain::from_slice(&[1u8; 10])));
        assert!(db.append(2, MbufChain::from_slice(&[2u8; 20])));
        assert_eq!(db.records(), 2);
        assert_eq!(db.len(), 30);
        let first = db.pop().unwrap();
        assert_eq!(first.meta, 1);
        assert_eq!(first.chain.len(), 10);
        assert_eq!(db.len(), 20);
    }

    #[test]
    fn dgrambuf_drops_when_full() {
        let mut db: DgramBuf<()> = DgramBuf::new(25);
        assert!(db.append((), MbufChain::from_slice(&[0u8; 20])));
        assert!(!db.append((), MbufChain::from_slice(&[0u8; 10])));
        assert_eq!(db.records(), 1);
    }

    #[test]
    fn copy_meter_counts_copyin_and_copyout() {
        reset_copy_meter();
        let data = vec![7u8; 1000];
        let chain = MbufChain::from_slice(&data);
        assert_eq!(copied_bytes(), 1000, "copyin is one physical copy");
        let mut out = vec![0u8; 1000];
        chain.copy_to_slice(0, &mut out);
        assert_eq!(copied_bytes(), 2000, "copyout is a second physical copy");
    }

    #[test]
    fn copy_meter_ignores_shared_references() {
        reset_copy_meter();
        let data = Rc::new(vec![9u8; 3000]);
        let chain = MbufChain::from_shared(data);
        assert_eq!(copied_bytes(), 0, "from_shared references, never copies");
        let (copy, copied) = chain.copy_range(0, 3000);
        assert_eq!(copied, 0);
        assert_eq!(copy.len(), 3000);
        assert_eq!(copied_bytes(), 0, "cluster m_copy shares, never copies");
    }

    #[test]
    fn clone_is_logical_copy() {
        let chain = MbufChain::from_slice(&[1, 2, 3, 4]);
        let copy = chain.clone();
        assert_eq!(copy.to_vec(), chain.to_vec());
    }

    #[test]
    fn steady_state_packet_flow_is_allocation_free() {
        // A representative per-packet cycle: copyin, header prepend,
        // logical retransmit copy, drop. After one warm-up round the
        // pools must serve every allocation (miss counters frozen).
        let small_payload = [5u8; 100]; // small-mbuf path
        let big_payload = [6u8; 1400]; // cluster path
        let hdr = [0u8; 54];
        let cycle = || {
            for payload in [&small_payload[..], &big_payload[..]] {
                let mut chain = MbufChain::from_slice(payload);
                chain.prepend(&hdr);
                let (retx, _) = chain.copy_range(0, chain.len());
                drop(retx);
                drop(chain);
            }
        };
        cycle(); // warm up the thread pools
        let before = pool_stats();
        for _ in 0..100 {
            cycle();
        }
        let after = pool_stats();
        assert_eq!(after.small_misses, before.small_misses, "{after:?}");
        assert_eq!(after.cluster_misses, before.cluster_misses, "{after:?}");
        assert_eq!(after.node_misses, before.node_misses, "{after:?}");
        assert!(after.node_hits > before.node_hits);
    }

    #[test]
    fn shared_cluster_returns_to_pool_with_last_owner() {
        drain_pools();
        let chain = MbufChain::from_slice(&[9u8; 1000]);
        let (copy, _) = chain.copy_range(0, 1000);
        drop(chain); // cluster still shared by `copy` — must stay live
        assert_eq!(copy.to_vec(), vec![9u8; 1000]);
        let mid = pool_stats();
        assert_eq!(mid.cluster_free, 0, "shared cluster must not be pooled");
        drop(copy); // last owner: now it can be recycled
        assert_eq!(pool_stats().cluster_free, 1);
        reset_pool_stats();
        let _again = MbufChain::from_slice(&[1u8; 1000]);
        assert_eq!(pool_stats().cluster_hits, 1, "recycled cluster reused");
    }

    #[test]
    fn pooling_does_not_change_bytes() {
        // Recycled buffers carry stale bytes; the public API must never
        // expose them. Interleave differently-shaped packets through
        // the same pooled storage and verify exact round-trips.
        drain_pools();
        for round in 0..5u8 {
            for len in [1usize, 37, MLEN, MINCLSIZE, 300, 1460] {
                let data: Vec<u8> = (0..len).map(|i| (i as u8) ^ round).collect();
                let mut chain = MbufChain::from_slice(&data);
                chain.prepend(&[round; 14]);
                chain.trim_front(14);
                assert_eq!(chain.to_vec(), data, "round {round} len {len}");
            }
        }
    }
}
