//! Network-interface bindings between a protocol stack and the kernel.
//!
//! Two transmit disciplines exist (§4.3 `ether_output`): user tasks
//! (the server and application libraries) trap into the kernel and the
//! frame is copied from user space into a wired kernel buffer before
//! the device copy; the in-kernel stack copies straight from its wired
//! mbufs to the device.

use std::cell::RefCell;
use std::rc::Rc;

use psd_kernel::{Kernel, KernelHandle, PacketSink};
use psd_netstack::{NetIf, StackHandle};
use psd_sim::{Charge, Sim};
use psd_wire::EtherAddr;

/// Transmit path for user-space stacks (server, application library).
///
/// The MAC address and unit costs are cached at construction so that
/// neither `mac()` nor `transmit()` needs to borrow the kernel
/// synchronously — `transmit` charges locally and schedules the
/// kernel-side handoff, which keeps the in-kernel receive path (where
/// the kernel is already borrowed) reentrancy-safe.
pub struct UserNetIf {
    kernel: KernelHandle,
    mac: EtherAddr,
    trap: u64,
    kcopy_byte: u64,
    dev_write_byte: u64,
    /// Announced size of the open transmit batch window (0 = no window):
    /// one trap covers up to this many back-to-back frames.
    batch_hint: std::cell::Cell<usize>,
    /// Frames remaining in the window that ride the trap the window's
    /// first frame paid.
    batch_free: std::cell::Cell<usize>,
}

impl UserNetIf {
    /// Binds to the host kernel.
    pub fn new(kernel: KernelHandle) -> Rc<UserNetIf> {
        let (mac, trap, kcopy_byte, dev_write_byte) = {
            let k = kernel.borrow();
            let c = k.costs();
            (k.mac(), c.trap, c.kcopy_byte, c.dev_write_byte)
        };
        Rc::new(UserNetIf {
            kernel,
            mac,
            trap,
            kcopy_byte,
            dev_write_byte,
            batch_hint: std::cell::Cell::new(0),
            batch_free: std::cell::Cell::new(0),
        })
    }
}

impl NetIf for UserNetIf {
    fn mac(&self) -> EtherAddr {
        self.mac
    }

    fn transmit(&self, sim: &mut Sim, charge: &mut Charge, frame: Vec<u8>) {
        use psd_sim::{Domain, Layer, OpKind, SimTime};
        // Batched doorbell: within an announced window only the first
        // frame traps; the rest are appended to the already-mapped
        // transmit ring. Both copies (user → wired buffer → device) are
        // physical and always paid.
        let free = self.batch_free.get();
        if free > 0 {
            self.batch_free.set(free - 1);
        } else {
            charge.crossing_in(
                Domain::Kernel,
                Layer::EtherOutput,
                SimTime::from_nanos(self.trap),
            );
            let hint = self.batch_hint.get();
            if hint > 1 {
                self.batch_free.set(hint - 1);
            }
        }
        charge.add_per_byte(Layer::EtherOutput, self.kcopy_byte, frame.len());
        charge.note(OpKind::PacketBodyCopy, Domain::Kernel, Layer::EtherOutput);
        charge.add_per_byte(Layer::EtherOutput, self.dev_write_byte, frame.len());
        charge.note(OpKind::PacketBodyCopy, Domain::Kernel, Layer::EtherOutput);
        Kernel::enqueue_tx(&self.kernel, sim, charge.at(), frame, true);
    }

    fn tx_batch_hint(&self, n: usize) {
        self.batch_hint.set(n);
        self.batch_free.set(0);
    }

    fn tx_batch_end(&self) {
        self.batch_hint.set(0);
        self.batch_free.set(0);
    }
}

/// Transmit path for the in-kernel stack.
pub struct KernelNetIf {
    kernel: KernelHandle,
    mac: EtherAddr,
    dev_write_byte: u64,
}

impl KernelNetIf {
    /// Binds to the host kernel.
    pub fn new(kernel: KernelHandle) -> Rc<KernelNetIf> {
        let (mac, dev_write_byte) = {
            let k = kernel.borrow();
            (k.mac(), k.costs().dev_write_byte)
        };
        Rc::new(KernelNetIf {
            kernel,
            mac,
            dev_write_byte,
        })
    }
}

impl NetIf for KernelNetIf {
    fn mac(&self) -> EtherAddr {
        self.mac
    }

    fn transmit(&self, sim: &mut Sim, charge: &mut Charge, frame: Vec<u8>) {
        use psd_sim::{Domain, Layer, OpKind};
        charge.add_per_byte(Layer::EtherOutput, self.dev_write_byte, frame.len());
        charge.note(OpKind::PacketBodyCopy, Domain::Kernel, Layer::EtherOutput);
        Kernel::enqueue_tx(&self.kernel, sim, charge.at(), frame, false);
    }
}

/// Builds a kernel [`PacketSink`] that feeds delivered frames into a
/// stack: opens a CPU charge at delivery time, runs `input_frame`, and
/// (for SHM endpoints) reports the network thread's busy window back to
/// the kernel for wakeup amortization.
pub fn stack_sink(stack: &StackHandle) -> PacketSink {
    let stack = stack.clone();
    Rc::new(RefCell::new(
        move |sim: &mut Sim, t: psd_sim::SimTime, frame: Vec<u8>| {
            let cpu = stack.borrow().cpu();
            let mut charge = cpu.borrow_mut().begin(t);
            stack.borrow_mut().input_frame(sim, &mut charge, &frame);
            cpu.borrow_mut().finish(charge);
        },
    ))
}

/// As [`stack_sink`], additionally extending the kernel's per-endpoint
/// busy window so packet trains amortize wakeups (library SHM paths).
pub fn stack_sink_with_busy_report(
    stack: &StackHandle,
    kernel: &KernelHandle,
    endpoint: Rc<std::cell::Cell<Option<psd_kernel::EndpointId>>>,
) -> PacketSink {
    let stack = stack.clone();
    let kernel = kernel.clone();
    Rc::new(RefCell::new(
        move |sim: &mut Sim, t: psd_sim::SimTime, frame: Vec<u8>| {
            let cpu = stack.borrow().cpu();
            let mut charge = cpu.borrow_mut().begin(t);
            stack.borrow_mut().input_frame(sim, &mut charge, &frame);
            let busy_until = charge.at();
            cpu.borrow_mut().finish(charge);
            if let Some(id) = endpoint.get() {
                psd_kernel::note_thread_busy(&kernel, id, busy_until);
            }
        },
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use psd_netdev::Ethernet;
    use psd_sim::{CostModel, Cpu, SimTime};

    #[test]
    fn user_netif_reports_kernel_mac_and_transmits() {
        let mut sim = Sim::new(1);
        let ether = Ethernet::ten_megabit(&mut sim);
        let cpu = Rc::new(RefCell::new(Cpu::new()));
        let kernel = Kernel::new(
            CostModel::decstation_5000_200(),
            cpu.clone(),
            EtherAddr::local(9),
        );
        Kernel::connect(&kernel, &ether);
        let nif = UserNetIf::new(kernel.clone());
        assert_eq!(nif.mac(), EtherAddr::local(9));
        let mut charge = cpu.borrow_mut().begin(SimTime::ZERO);
        nif.transmit(&mut sim, &mut charge, vec![0u8; 64]);
        cpu.borrow_mut().finish(charge);
        sim.run_to_idle();
        assert_eq!(kernel.borrow().stats().tx_user, 1);
        assert_eq!(ether.borrow().stats().tx_frames, 1);
    }

    #[test]
    fn kernel_netif_uses_kernel_path() {
        let mut sim = Sim::new(1);
        let ether = Ethernet::ten_megabit(&mut sim);
        let cpu = Rc::new(RefCell::new(Cpu::new()));
        let kernel = Kernel::new(
            CostModel::decstation_5000_200(),
            cpu.clone(),
            EtherAddr::local(9),
        );
        Kernel::connect(&kernel, &ether);
        let nif = KernelNetIf::new(kernel.clone());
        let mut charge = cpu.borrow_mut().begin(SimTime::ZERO);
        nif.transmit(&mut sim, &mut charge, vec![0u8; 64]);
        cpu.borrow_mut().finish(charge);
        sim.run_to_idle();
        assert_eq!(kernel.borrow().stats().tx_kernel, 1);
    }
}
