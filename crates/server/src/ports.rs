//! The TCP/UDP port namespace.
//!
//! "It is necessary to interact with a local IP port manager to ensure
//! that the endpoint is uniquely named; the operating system is a
//! convenient place to implement this manager" (§3.2). The namespace is
//! long-lived shared state owned by the server, never by applications.

use psd_netstack::SocketError;
use std::collections::{BTreeSet, HashSet};

/// First ephemeral port (BSD `IPPORT_RESERVED`).
pub const EPHEMERAL_FIRST: u16 = 1024;
/// Last ephemeral port (BSD `IPPORT_USERRESERVED`).
pub const EPHEMERAL_LAST: u16 = 5000;

/// Transport protocols with distinct port spaces.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Proto {
    /// TCP.
    Tcp,
    /// UDP.
    Udp,
}

/// The per-host port allocator.
///
/// Ephemeral allocation keeps a per-protocol set of free ports in the
/// ephemeral range so finding the next free port after the rotating
/// cursor is O(log n) rather than a linear walk — at thousands of live
/// sessions the walk dominated session setup. The allocation sequence
/// (port chosen, cursor advance, exhaustion behavior) is identical to
/// the original cursor scan: the scan claimed the first unclaimed port
/// at or after the cursor, wrapping once.
#[derive(Debug)]
pub struct PortNamespace {
    used: HashSet<(Proto, u16)>,
    free_tcp: BTreeSet<u16>,
    free_udp: BTreeSet<u16>,
    next_ephemeral: u16,
}

impl PortNamespace {
    /// An empty namespace.
    pub fn new() -> PortNamespace {
        let all: BTreeSet<u16> = (EPHEMERAL_FIRST..=EPHEMERAL_LAST).collect();
        PortNamespace {
            used: HashSet::new(),
            free_tcp: all.clone(),
            free_udp: all,
            next_ephemeral: EPHEMERAL_FIRST,
        }
    }

    fn free_of(&mut self, proto: Proto) -> &mut BTreeSet<u16> {
        match proto {
            Proto::Tcp => &mut self.free_tcp,
            Proto::Udp => &mut self.free_udp,
        }
    }

    /// Claims a specific port. Fails with `AddrInUse` if taken.
    pub fn claim(&mut self, proto: Proto, port: u16) -> Result<u16, SocketError> {
        if port == 0 {
            return self.alloc_ephemeral(proto);
        }
        if self.used.insert((proto, port)) {
            if (EPHEMERAL_FIRST..=EPHEMERAL_LAST).contains(&port) {
                self.free_of(proto).remove(&port);
            }
            Ok(port)
        } else {
            Err(SocketError::AddrInUse)
        }
    }

    /// Allocates an ephemeral port: the first free port at or after the
    /// rotating cursor, wrapping once.
    pub fn alloc_ephemeral(&mut self, proto: Proto) -> Result<u16, SocketError> {
        let cursor = self.next_ephemeral;
        let free = self.free_of(proto);
        let candidate = free
            .range(cursor..=EPHEMERAL_LAST)
            .next()
            .or_else(|| free.range(EPHEMERAL_FIRST..cursor).next())
            .copied();
        let Some(port) = candidate else {
            // A full cursor sweep would have advanced the cursor by the
            // whole span, wrapping it back to where it started.
            return Err(SocketError::NoBufs);
        };
        free.remove(&port);
        self.used.insert((proto, port));
        self.next_ephemeral = if port >= EPHEMERAL_LAST {
            EPHEMERAL_FIRST
        } else {
            port + 1
        };
        Ok(port)
    }

    /// Releases a port.
    pub fn release(&mut self, proto: Proto, port: u16) {
        self.used.remove(&(proto, port));
        if (EPHEMERAL_FIRST..=EPHEMERAL_LAST).contains(&port) {
            self.free_of(proto).insert(port);
        }
    }

    /// True if the port is currently claimed.
    pub fn in_use(&self, proto: Proto, port: u16) -> bool {
        self.used.contains(&(proto, port))
    }

    /// Number of claimed ports.
    pub fn len(&self) -> usize {
        self.used.len()
    }

    /// True if nothing is claimed.
    pub fn is_empty(&self) -> bool {
        self.used.is_empty()
    }
}

impl Default for PortNamespace {
    fn default() -> PortNamespace {
        PortNamespace::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn claim_is_exclusive() {
        let mut p = PortNamespace::new();
        assert_eq!(p.claim(Proto::Tcp, 80), Ok(80));
        assert_eq!(p.claim(Proto::Tcp, 80), Err(SocketError::AddrInUse));
        // The UDP space is separate.
        assert_eq!(p.claim(Proto::Udp, 80), Ok(80));
    }

    #[test]
    fn release_allows_reclaim() {
        let mut p = PortNamespace::new();
        p.claim(Proto::Tcp, 80).unwrap();
        p.release(Proto::Tcp, 80);
        assert_eq!(p.claim(Proto::Tcp, 80), Ok(80));
    }

    #[test]
    fn ephemeral_ports_unique_and_in_range() {
        let mut p = PortNamespace::new();
        let mut seen = HashSet::new();
        for _ in 0..100 {
            let port = p.alloc_ephemeral(Proto::Udp).unwrap();
            assert!((EPHEMERAL_FIRST..=EPHEMERAL_LAST).contains(&port));
            assert!(seen.insert(port), "duplicate ephemeral {port}");
        }
    }

    #[test]
    fn claim_port_zero_allocates_ephemeral() {
        let mut p = PortNamespace::new();
        let port = p.claim(Proto::Tcp, 0).unwrap();
        assert!((EPHEMERAL_FIRST..=EPHEMERAL_LAST).contains(&port));
        assert!(p.in_use(Proto::Tcp, port));
    }

    #[test]
    fn exhaustion_reported() {
        let mut p = PortNamespace::new();
        let span = (EPHEMERAL_LAST - EPHEMERAL_FIRST) as usize + 1;
        for _ in 0..span {
            p.alloc_ephemeral(Proto::Tcp).unwrap();
        }
        assert_eq!(p.alloc_ephemeral(Proto::Tcp), Err(SocketError::NoBufs));
        // Other protocol unaffected.
        assert!(p.alloc_ephemeral(Proto::Udp).is_ok());
    }

    #[test]
    fn wraps_around_released_ports() {
        let mut p = PortNamespace::new();
        let span = (EPHEMERAL_LAST - EPHEMERAL_FIRST) as usize + 1;
        let mut first = 0;
        for i in 0..span {
            let port = p.alloc_ephemeral(Proto::Tcp).unwrap();
            if i == 0 {
                first = port;
            }
        }
        p.release(Proto::Tcp, first);
        assert_eq!(p.alloc_ephemeral(Proto::Tcp), Ok(first));
    }
}
