//! The TCP/UDP port namespace.
//!
//! "It is necessary to interact with a local IP port manager to ensure
//! that the endpoint is uniquely named; the operating system is a
//! convenient place to implement this manager" (§3.2). The namespace is
//! long-lived shared state owned by the server, never by applications.

use psd_netstack::SocketError;
use std::collections::HashSet;

/// First ephemeral port (BSD `IPPORT_RESERVED`).
pub const EPHEMERAL_FIRST: u16 = 1024;
/// Last ephemeral port (BSD `IPPORT_USERRESERVED`).
pub const EPHEMERAL_LAST: u16 = 5000;

/// Transport protocols with distinct port spaces.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Proto {
    /// TCP.
    Tcp,
    /// UDP.
    Udp,
}

/// The per-host port allocator.
#[derive(Debug)]
pub struct PortNamespace {
    used: HashSet<(Proto, u16)>,
    next_ephemeral: u16,
}

impl PortNamespace {
    /// An empty namespace.
    pub fn new() -> PortNamespace {
        PortNamespace {
            used: HashSet::new(),
            next_ephemeral: EPHEMERAL_FIRST,
        }
    }

    /// Claims a specific port. Fails with `AddrInUse` if taken.
    pub fn claim(&mut self, proto: Proto, port: u16) -> Result<u16, SocketError> {
        if port == 0 {
            return self.alloc_ephemeral(proto);
        }
        if self.used.insert((proto, port)) {
            Ok(port)
        } else {
            Err(SocketError::AddrInUse)
        }
    }

    /// Allocates an ephemeral port.
    pub fn alloc_ephemeral(&mut self, proto: Proto) -> Result<u16, SocketError> {
        let span = (EPHEMERAL_LAST - EPHEMERAL_FIRST) as u32 + 1;
        for _ in 0..span {
            let candidate = self.next_ephemeral;
            self.next_ephemeral = if self.next_ephemeral >= EPHEMERAL_LAST {
                EPHEMERAL_FIRST
            } else {
                self.next_ephemeral + 1
            };
            if self.used.insert((proto, candidate)) {
                return Ok(candidate);
            }
        }
        Err(SocketError::NoBufs)
    }

    /// Releases a port.
    pub fn release(&mut self, proto: Proto, port: u16) {
        self.used.remove(&(proto, port));
    }

    /// True if the port is currently claimed.
    pub fn in_use(&self, proto: Proto, port: u16) -> bool {
        self.used.contains(&(proto, port))
    }

    /// Number of claimed ports.
    pub fn len(&self) -> usize {
        self.used.len()
    }

    /// True if nothing is claimed.
    pub fn is_empty(&self) -> bool {
        self.used.is_empty()
    }
}

impl Default for PortNamespace {
    fn default() -> PortNamespace {
        PortNamespace::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn claim_is_exclusive() {
        let mut p = PortNamespace::new();
        assert_eq!(p.claim(Proto::Tcp, 80), Ok(80));
        assert_eq!(p.claim(Proto::Tcp, 80), Err(SocketError::AddrInUse));
        // The UDP space is separate.
        assert_eq!(p.claim(Proto::Udp, 80), Ok(80));
    }

    #[test]
    fn release_allows_reclaim() {
        let mut p = PortNamespace::new();
        p.claim(Proto::Tcp, 80).unwrap();
        p.release(Proto::Tcp, 80);
        assert_eq!(p.claim(Proto::Tcp, 80), Ok(80));
    }

    #[test]
    fn ephemeral_ports_unique_and_in_range() {
        let mut p = PortNamespace::new();
        let mut seen = HashSet::new();
        for _ in 0..100 {
            let port = p.alloc_ephemeral(Proto::Udp).unwrap();
            assert!((EPHEMERAL_FIRST..=EPHEMERAL_LAST).contains(&port));
            assert!(seen.insert(port), "duplicate ephemeral {port}");
        }
    }

    #[test]
    fn claim_port_zero_allocates_ephemeral() {
        let mut p = PortNamespace::new();
        let port = p.claim(Proto::Tcp, 0).unwrap();
        assert!((EPHEMERAL_FIRST..=EPHEMERAL_LAST).contains(&port));
        assert!(p.in_use(Proto::Tcp, port));
    }

    #[test]
    fn exhaustion_reported() {
        let mut p = PortNamespace::new();
        let span = (EPHEMERAL_LAST - EPHEMERAL_FIRST) as usize + 1;
        for _ in 0..span {
            p.alloc_ephemeral(Proto::Tcp).unwrap();
        }
        assert_eq!(p.alloc_ephemeral(Proto::Tcp), Err(SocketError::NoBufs));
        // Other protocol unaffected.
        assert!(p.alloc_ephemeral(Proto::Udp).is_ok());
    }

    #[test]
    fn wraps_around_released_ports() {
        let mut p = PortNamespace::new();
        let span = (EPHEMERAL_LAST - EPHEMERAL_FIRST) as usize + 1;
        let mut first = 0;
        for i in 0..span {
            let port = p.alloc_ephemeral(Proto::Tcp).unwrap();
            if i == 0 {
                first = port;
            }
        }
        p.release(Proto::Tcp, first);
        assert_eq!(p.alloc_ephemeral(Proto::Tcp), Ok(first));
    }
}
