//! The operating system server (the paper's "UX" role).
//!
//! The server owns everything about networking *except* the data path
//! (Figure 1): connection establishment and teardown, the TCP/UDP port
//! namespace, the routing and ARP databases, packet-filter
//! installation, `fork`/`select` cooperation, and cleanup when
//! processes die. Its protocol engine is an ordinary
//! [`NetStack`] at [`Placement::Server`] — the
//! same code the kernel and the application libraries run — behind the
//! heavyweight emulated-`spl` synchronization that made the real UX
//! server slow.
//!
//! Sessions are created here, *migrate* into applications when their
//! critical path becomes active (`bind` for UDP, `connect`/`accept`
//! for TCP), and migrate back for `close`, `fork`, and process death —
//! exactly the lifecycle of §3.1/§3.2 and Table 1. While a session is
//! out, the server keeps a stub (port reservation, crash cleanup,
//! select status) and suppresses RSTs for stragglers reaching its
//! catch-all.

pub mod netif;
pub mod ports;

pub use netif::{stack_sink, stack_sink_with_busy_report, KernelNetIf, UserNetIf};
pub use ports::{PortNamespace, Proto, EPHEMERAL_FIRST, EPHEMERAL_LAST};

use std::cell::RefCell;
use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::net::Ipv4Addr;
use std::rc::{Rc, Weak};

use psd_filter::{EndpointSpec, FilterId};
use psd_kernel::{rpc_control_charge, EndpointId, KernelHandle, PacketSink, RxMode};
use psd_netstack::stack::{SessionState, StackHandle};
use psd_netstack::udp::UdpSnapshot;
use psd_netstack::{InetAddr, NetStack, Placement, Route, SockEvent, SockId, SocketError};
use psd_sim::{Charge, CostModel, Domain, FaultSite, Layer, Sim, SimTime};
use psd_wire::{EtherAddr, IpProto};

/// A simulated process known to the server.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct ProcId(pub u64);

/// A network session (Table 1's unit of management).
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct SessionId(pub u64);

/// An application-unique idempotency token carried by retryable proxy
/// RPCs. The server records the resource-allocating outcome under the
/// token, so a retry after a lost reply returns the recorded outcome
/// instead of re-allocating (a retried `proxy_bind` can never claim a
/// second port).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct RetryToken(pub u64);

/// How the application wants packets delivered once a session migrates.
pub struct RxSetup {
    /// Delivery mechanism (the §4.1 variants).
    pub mode: RxMode,
    /// The application's packet sink for this session.
    pub sink: PacketSink,
}

/// Everything the application needs to take over a migrated session:
/// "a local endpoint, a remote endpoint, the connection state
/// variables, and a packet filter port" (§3.2) — plus the metastate
/// snapshot of §3.3.
pub struct MigratedSession {
    /// The session.
    pub session: SessionId,
    /// Serialized protocol state.
    pub state: SessionState,
    /// The kernel receive endpoint created for the application.
    pub endpoint: EndpointId,
    /// The installed packet filter.
    pub filter: FilterId,
    /// Local endpoint.
    pub local: InetAddr,
    /// Remote endpoint, if connected.
    pub remote: Option<InetAddr>,
    /// ARP cache snapshot for the application's metastate cache.
    pub arp_entries: Vec<(Ipv4Addr, EtherAddr)>,
    /// Route table snapshot and version.
    pub routes: (Vec<Route>, u64),
}

/// Reply to `proxy_connect`/`proxy_accept`/`proxy_bind`.
pub enum SessionReply {
    /// The session migrated into the caller's address space.
    Migrated(Box<MigratedSession>),
    /// The session stays in the server (server-based configurations);
    /// data moves via `data_*` RPCs.
    ServerResident {
        /// The session.
        session: SessionId,
        /// Local endpoint.
        local: InetAddr,
        /// Remote endpoint, if known.
        remote: Option<InetAddr>,
    },
}

impl SessionReply {
    /// The session id in either variant.
    pub fn session(&self) -> SessionId {
        match self {
            SessionReply::Migrated(m) => m.session,
            SessionReply::ServerResident { session, .. } => *session,
        }
    }

    /// The local endpoint in either variant.
    pub fn local(&self) -> InetAddr {
        match self {
            SessionReply::Migrated(m) => m.local,
            SessionReply::ServerResident { local, .. } => *local,
        }
    }
}

/// Completion callback for split-phase RPCs (connect, accept).
pub type DoneCallback = Box<dyn FnOnce(&mut Sim, Result<SessionReply, SocketError>)>;

/// Callback for forwarding server-resident socket events to the
/// application that owns the descriptor.
pub type NotifyCallback = Rc<RefCell<dyn FnMut(&mut Sim, SessionId, SockEvent)>>;

/// Callback invoked when the server invalidates a cached ARP entry
/// (§3.3 metastate callbacks).
pub type ArpInvalidation = Rc<RefCell<dyn FnMut(&mut Sim, Ipv4Addr)>>;

/// Callback completing a cooperative `select`.
pub type SelectCallback = Box<dyn FnOnce(&mut Sim, Vec<SessionId>)>;

enum Home {
    /// Not yet realized in any stack (fresh socket).
    Embryo,
    /// Lives in the server's stack.
    Server(SockId),
    /// Migrated into an application.
    App,
}

struct Session {
    proto: Proto,
    owners: Vec<ProcId>,
    home: Home,
    local: Option<InetAddr>,
    remote: Option<InetAddr>,
    filter: Option<FilterId>,
    endpoint: Option<EndpointId>,
    listening: bool,
    closing: bool,
    /// Status reported by the application for migrated sessions
    /// (`proxy_status`, §3.2 select cooperation).
    app_readable: bool,
    /// Writable status reported by the application.
    app_writable: bool,
}

struct Process {
    alive: bool,
    sessions: Vec<SessionId>,
}

struct PendingConnect {
    session: SessionId,
    rx: Option<RxSetup>,
    done: DoneCallback,
}

struct PendingAccept {
    rx: Option<RxSetup>,
    done: DoneCallback,
}

struct SelectWaiter {
    watch: Vec<(SessionId, bool, bool)>,
    done: SelectCallback,
}

/// Counters for tests and benchmarks.
#[derive(Clone, Copy, Debug, Default)]
pub struct ServerStats {
    /// Control RPCs served.
    pub rpcs: u64,
    /// Sessions migrated out to applications.
    pub migrations_out: u64,
    /// Sessions migrated back in.
    pub migrations_in: u64,
    /// Sessions aborted by process death.
    pub crash_cleanups: u64,
    /// Stray TCP segments suppressed for migrated sessions.
    pub strays_suppressed: u64,
    /// Datagrams forwarded to migrated sessions (reassembly case).
    pub udp_forwarded: u64,
    /// Late datagrams reclaimed from a library stack after their
    /// session migrated back to the server (fork/close races).
    pub udp_reclaimed: u64,
    /// Migrations denied at the prepare phase (filter table full, SHM
    /// ring install failure); the session fell back to the server path.
    pub migrations_denied: u64,
    /// Migrations rolled back after prepare (capsule lost between
    /// export and retarget); the session stayed wholly at the server.
    pub migrations_rolled_back: u64,
    /// Retried RPCs answered from the idempotency ledger without
    /// re-executing the resource allocation.
    pub rpc_dedup_hits: u64,
    /// Times the server has crashed.
    pub crashes: u64,
    /// Times the server has restarted after a crash.
    pub restarts: u64,
    /// Sessions rebuilt from stub records at restart.
    pub sessions_rebuilt: u64,
}

/// The operating system server for one host.
pub struct OsServer {
    me: Weak<RefCell<OsServer>>,
    kernel: KernelHandle,
    stack: StackHandle,
    costs: CostModel,
    host_ip: Ipv4Addr,
    server_endpoint: EndpointId,
    ports: PortNamespace,
    sessions: HashMap<SessionId, Session>,
    sock_to_session: HashMap<SockId, SessionId>,
    procs: HashMap<ProcId, Process>,
    next_session: u64,
    next_proc: u64,
    pending_connects: HashMap<SockId, PendingConnect>,
    pending_accepts: HashMap<SessionId, Vec<PendingAccept>>,
    notify: HashMap<SessionId, NotifyCallback>,
    arp_listeners: Vec<ArpInvalidation>,
    /// Outstanding selects, keyed by waiter id. Ids are allocated in
    /// registration order, so in-order iteration reproduces the old
    /// first-registered-first-fired Vec behavior.
    select_waiters: BTreeMap<u64, SelectWaiter>,
    /// Waiter ids watching each session, so a status change evaluates
    /// only the selects that could be affected instead of all of them.
    select_watchers: HashMap<SessionId, BTreeSet<u64>>,
    /// Waiters whose watched state may have changed since they were
    /// last evaluated. `scan_selects` drains this set; every path that
    /// changes session readiness repopulates it.
    select_pending: BTreeSet<u64>,
    /// Sessions (live or stubbed) indexed by bound local port, so the
    /// per-packet stray/forward/reclaim checks scan one port's bucket
    /// rather than every session.
    by_local_port: HashMap<u16, BTreeSet<u64>>,
    next_select: u64,
    /// True while the server is crashed: no RPC is served and the
    /// in-memory session DB is gone until [`OsServer::restart`].
    down: bool,
    /// The durable trace of migrated sessions that survives a crash:
    /// their packet filters and endpoints live in the kernel, so their
    /// records can be rebuilt at restart. Populated by
    /// [`OsServer::crash`], drained by [`OsServer::restart`].
    stub_store: HashMap<SessionId, Session>,
    /// Idempotency ledger: retry token → port claimed by an earlier
    /// execution whose reply may have been lost.
    token_ports: HashMap<u64, u16>,
    /// Idempotency ledger: retry token → session allocated by an
    /// earlier `proxy_socket` execution.
    token_sessions: HashMap<u64, SessionId>,
    /// Counters.
    pub stats: ServerStats,
}

/// Shared handle to the server.
pub type ServerHandle = Rc<RefCell<OsServer>>;

impl OsServer {
    /// Boots the server on a host: creates its server-placement stack,
    /// registers its catch-all endpoint with the kernel, and installs
    /// the exceptional-traffic hooks.
    pub fn new(kernel: &KernelHandle, host_ip: Ipv4Addr) -> ServerHandle {
        let costs = kernel.borrow().costs().clone();
        let cpu = kernel.borrow().cpu();
        let stack = NetStack::new(Placement::Server, costs.clone(), cpu, host_ip);
        stack.borrow_mut().set_ifnet(UserNetIf::new(kernel.clone()));
        let sink = stack_sink(&stack);
        let server_endpoint = {
            let mut k = kernel.borrow_mut();
            let ep = k.create_endpoint(RxMode::Ipc, sink);
            k.set_default_endpoint(ep);
            ep
        };
        let server = Rc::new(RefCell::new(OsServer {
            me: Weak::new(),
            kernel: kernel.clone(),
            stack: stack.clone(),
            costs,
            host_ip,
            server_endpoint,
            ports: PortNamespace::new(),
            sessions: HashMap::new(),
            sock_to_session: HashMap::new(),
            procs: HashMap::new(),
            next_session: 1,
            next_proc: 1,
            pending_connects: HashMap::new(),
            pending_accepts: HashMap::new(),
            notify: HashMap::new(),
            arp_listeners: Vec::new(),
            select_waiters: BTreeMap::new(),
            select_watchers: HashMap::new(),
            select_pending: BTreeSet::new(),
            by_local_port: HashMap::new(),
            next_select: 1,
            down: false,
            stub_store: HashMap::new(),
            token_ports: HashMap::new(),
            token_sessions: HashMap::new(),
            stats: ServerStats::default(),
        }));
        server.borrow_mut().me = Rc::downgrade(&server);

        // Stray-TCP suppression for migrated sessions.
        let weak = Rc::downgrade(&server);
        stack.borrow_mut().set_stray_tcp_hook(Rc::new(RefCell::new(
            move |local: InetAddr, remote: InetAddr| {
                let Some(server) = weak.upgrade() else {
                    return false;
                };
                let mut s = server.borrow_mut();
                // Stub records in `stub_store` also suppress: the
                // suppression must survive a server crash, since the
                // migrated session's data path is still live. Both
                // live and stubbed sessions stay in the port index.
                let migrated = s.by_local_port.get(&local.port).is_some_and(|bucket| {
                    bucket.iter().any(|&raw| {
                        let sid = SessionId(raw);
                        s.sessions
                            .get(&sid)
                            .or_else(|| s.stub_store.get(&sid))
                            .is_some_and(|sess| {
                                matches!(sess.home, Home::App)
                                    && sess.local == Some(local)
                                    && (sess.remote.is_none() || sess.remote == Some(remote))
                            })
                    })
                });
                if migrated {
                    s.stats.strays_suppressed += 1;
                }
                migrated
            },
        )));

        // Forward exceptional datagrams (e.g. reassembled fragments) to
        // migrated UDP sessions through their endpoint sink — one of
        // the "difficult cases" routed through the server.
        let weak = Rc::downgrade(&server);
        stack
            .borrow_mut()
            .set_unclaimed_udp_hook(Rc::new(RefCell::new(
                move |sim: &mut Sim, dst: InetAddr, src: InetAddr, data: &[u8]| {
                    let Some(server) = weak.upgrade() else {
                        return false;
                    };
                    OsServer::forward_unclaimed_udp(&server, sim, dst, src, data)
                },
            )));

        server
    }

    /// The server's protocol stack (for host configuration: routes,
    /// buffers).
    pub fn stack(&self) -> StackHandle {
        self.stack.clone()
    }

    /// The host kernel.
    pub fn kernel(&self) -> KernelHandle {
        self.kernel.clone()
    }

    /// The server's own catch-all receive endpoint.
    pub fn endpoint(&self) -> EndpointId {
        self.server_endpoint
    }

    /// Registers a new process.
    pub fn register_process(&mut self) -> ProcId {
        let id = ProcId(self.next_proc);
        self.next_proc += 1;
        self.procs.insert(
            id,
            Process {
                alive: true,
                sessions: Vec::new(),
            },
        );
        id
    }

    fn alloc_session(&mut self, proc: ProcId, proto: Proto) -> SessionId {
        let id = SessionId(self.next_session);
        self.next_session += 1;
        self.sessions.insert(
            id,
            Session {
                proto,
                owners: vec![proc],
                home: Home::Embryo,
                local: None,
                remote: None,
                filter: None,
                endpoint: None,
                listening: false,
                closing: false,
                app_readable: false,
                app_writable: true,
            },
        );
        if let Some(p) = self.procs.get_mut(&proc) {
            p.sessions.push(id);
        }
        id
    }

    /// Records `sid` in the local-port index. A session's port never
    /// changes once bound, so inserts are idempotent.
    fn index_local_port(&mut self, sid: SessionId, port: u16) {
        self.by_local_port.entry(port).or_default().insert(sid.0);
    }

    fn unindex_local_port(&mut self, sid: SessionId, port: u16) {
        if let Some(bucket) = self.by_local_port.get_mut(&port) {
            bucket.remove(&sid.0);
            if bucket.is_empty() {
                self.by_local_port.remove(&port);
            }
        }
    }

    /// Queues every select watching `sid` for re-evaluation.
    fn mark_session_watchers(&mut self, sid: SessionId) {
        if let Some(watchers) = self.select_watchers.get(&sid) {
            self.select_pending.extend(watchers.iter().copied());
        }
    }

    fn unindex_waiter(&mut self, wid: u64, watch: &[(SessionId, bool, bool)]) {
        for (sid, _, _) in watch {
            if let Some(watchers) = self.select_watchers.get_mut(sid) {
                watchers.remove(&wid);
                if watchers.is_empty() {
                    self.select_watchers.remove(sid);
                }
            }
        }
        self.select_pending.remove(&wid);
    }

    // ----- Table 1: proxy_socket -----

    /// Creates a session managed by the operating system. Idempotent
    /// under `token`: a retry after a lost reply returns the session
    /// the first execution allocated.
    pub fn proxy_socket(
        &mut self,
        charge: &mut Charge,
        proc: ProcId,
        proto: Proto,
        token: RetryToken,
    ) -> SessionId {
        self.stats.rpcs += 1;
        rpc_control_charge(&self.costs, charge, 64);
        if let Some(&sid) = self.token_sessions.get(&token.0) {
            if self.sessions.contains_key(&sid) {
                self.stats.rpc_dedup_hits += 1;
                return sid;
            }
        }
        let sid = self.alloc_session(proc, proto);
        self.token_sessions.insert(token.0, sid);
        sid
    }

    // ----- Table 1: proxy_bind -----

    /// Sets the session's local address. UDP sessions with an [`RxSetup`]
    /// migrate to the application immediately ("Once the protocol and
    /// local endpoint have been specified for a UDP session with a
    /// proxy_bind call, the session may be used for sending and
    /// receiving packets"). Idempotent under `token`: the port claim
    /// is recorded in the ledger, so a retry after a lost reply reuses
    /// the port the first execution claimed instead of claiming a
    /// second one.
    pub fn proxy_bind(
        this: &ServerHandle,
        sim: &mut Sim,
        charge: &mut Charge,
        sid: SessionId,
        port: u16,
        rx: Option<RxSetup>,
        token: RetryToken,
    ) -> Result<Option<SessionReply>, SocketError> {
        let mut s = this.borrow_mut();
        s.stats.rpcs += 1;
        rpc_control_charge(&s.costs, charge, 64);
        let host_ip = s.host_ip;
        let proto = s.sessions.get(&sid).ok_or(SocketError::BadSocket)?.proto;
        let port = match s.token_ports.get(&token.0) {
            Some(&p) => {
                s.stats.rpc_dedup_hits += 1;
                p
            }
            None => {
                let p = s.ports.claim(proto, port)?;
                s.token_ports.insert(token.0, p);
                p
            }
        };
        let local = InetAddr::new(host_ip, port);
        {
            let sess = s.sessions.get_mut(&sid).expect("checked above");
            sess.local = Some(local);
        }
        s.index_local_port(sid, port);
        match (proto, rx) {
            (Proto::Udp, Some(rx)) => {
                // Migrate. A retry may find the first execution's
                // outcome already applied: if the session migrated,
                // tear the old delivery path down and migrate afresh
                // (harmless — the bind-time state is a null snapshot);
                // if a rollback left it server-resident, export that
                // state so nothing queued is lost.
                let state = match s.sessions.get(&sid).map(|x| &x.home) {
                    Some(Home::App) => {
                        s.teardown_app_delivery(sid);
                        if let Some(sess) = s.sessions.get_mut(&sid) {
                            sess.home = Home::Embryo;
                        }
                        None
                    }
                    Some(Home::Server(sock)) => {
                        let sock = *sock;
                        s.sock_to_session.remove(&sock);
                        s.stack.borrow_mut().export_session(sim, sock)
                    }
                    _ => None,
                }
                .unwrap_or(SessionState::Udp(UdpSnapshot {
                    local,
                    remote: None,
                    queued: Vec::new(),
                }));
                let reply = s.migrate_out(sim, charge, sid, state, rx, local, None);
                Ok(Some(reply))
            }
            (Proto::Udp, None) => {
                // Server-based configuration: realize the socket in the
                // server stack now.
                s.ensure_server_sock(sim, sid)?;
                Ok(Some(SessionReply::ServerResident {
                    session: sid,
                    local,
                    remote: None,
                }))
            }
            (Proto::Tcp, _) => {
                // TCP migrates at connect/accept time; only the port is
                // claimed now.
                Ok(None)
            }
        }
    }

    fn ensure_server_sock(&mut self, sim: &mut Sim, sid: SessionId) -> Result<SockId, SocketError> {
        let _ = sim;
        let sess = self.sessions.get_mut(&sid).ok_or(SocketError::BadSocket)?;
        if let Home::Server(sock) = sess.home {
            return Ok(sock);
        }
        let proto = sess.proto;
        let local = sess.local;
        let remote = sess.remote;
        let mut st = self.stack.borrow_mut();
        let sock = match proto {
            Proto::Udp => st.socket_udp(),
            Proto::Tcp => st.socket_tcp(),
        };
        if let Some(local) = local {
            st.bind(sock, local)?;
        }
        if let (Proto::Udp, Some(remote)) = (proto, remote) {
            st.connect_udp(sock, remote)?;
        }
        drop(st);
        self.attach_dispatcher(sock);
        let sess = self.sessions.get_mut(&sid).expect("exists");
        sess.home = Home::Server(sock);
        self.sock_to_session.insert(sock, sid);
        Ok(sock)
    }

    fn attach_dispatcher(&mut self, sock: SockId) {
        let weak = self.me.clone();
        self.stack.borrow_mut().set_sink(
            sock,
            Rc::new(RefCell::new(
                move |sim: &mut Sim, sock: SockId, ev: SockEvent| {
                    if let Some(server) = weak.upgrade() {
                        OsServer::on_stack_event(&server, sim, sock, ev);
                    }
                },
            )),
        );
    }

    // ----- Table 1: proxy_connect -----

    /// Active open. With an [`RxSetup`], the established session
    /// migrates to the application; the callback delivers the reply
    /// once the handshake completes (the extra IPC "is negligible
    /// compared to the latency of a multi-phase network handshake").
    pub fn proxy_connect(
        this: &ServerHandle,
        sim: &mut Sim,
        charge: &mut Charge,
        sid: SessionId,
        remote: InetAddr,
        rx: Option<RxSetup>,
        done: DoneCallback,
    ) {
        let mut s = this.borrow_mut();
        if s.down {
            drop(s);
            complete(sim, charge, done, Err(SocketError::TimedOut));
            return;
        }
        s.stats.rpcs += 1;
        rpc_control_charge(&s.costs, charge, 96);
        let Some(sess) = s.sessions.get_mut(&sid) else {
            drop(s);
            complete(sim, charge, done, Err(SocketError::BadSocket));
            return;
        };
        if sess.closing || matches!(sess.home, Home::App) {
            drop(s);
            complete(sim, charge, done, Err(SocketError::IsConnected));
            return;
        }
        sess.remote = Some(remote);
        let proto = sess.proto;
        // Allocate a local endpoint if unbound.
        if sess.local.is_none() {
            let host_ip = s.host_ip;
            match s.ports.claim(proto, 0) {
                Ok(p) => {
                    let sess = s.sessions.get_mut(&sid).expect("exists");
                    sess.local = Some(InetAddr::new(host_ip, p));
                    s.index_local_port(sid, p);
                }
                Err(e) => {
                    drop(s);
                    complete(sim, charge, done, Err(e));
                    return;
                }
            }
        }
        let local = s
            .sessions
            .get(&sid)
            .expect("exists")
            .local
            .expect("set above");

        match proto {
            Proto::Udp => {
                // Connected UDP: set the remote, prewarm ARP, migrate
                // (or realize server-side).
                {
                    let mut st = s.stack.borrow_mut();
                    st.arp_kick(sim, charge, remote.ip);
                }
                match rx {
                    Some(rx) => {
                        let state = SessionState::Udp(UdpSnapshot {
                            local,
                            remote: Some(remote),
                            queued: Vec::new(),
                        });
                        // Wait briefly for the ARP reply so the mapping
                        // travels with the migration snapshot.
                        let me = s.me.clone();
                        drop(s);
                        let at = charge.at() + SimTime::from_millis(2);
                        sim.at(at, move |sim| {
                            let Some(server) = me.upgrade() else { return };
                            let mut s = server.borrow_mut();
                            let cpu = s.stack.borrow().cpu();
                            let now = sim.now();
                            let mut ch = cpu.borrow_mut().begin(now);
                            let reply =
                                s.migrate_out(sim, &mut ch, sid, state, rx, local, Some(remote));
                            cpu.borrow_mut().finish(ch);
                            drop(s);
                            done(sim, Ok(reply));
                        });
                    }
                    None => match s.ensure_server_sock(sim, sid) {
                        Ok(sock) => {
                            let res = s.stack.borrow_mut().connect_udp(sock, remote);
                            drop(s);
                            let reply = res.map(|_| SessionReply::ServerResident {
                                session: sid,
                                local,
                                remote: Some(remote),
                            });
                            complete(sim, charge, done, reply);
                        }
                        Err(e) => {
                            drop(s);
                            complete(sim, charge, done, Err(e));
                        }
                    },
                }
            }
            Proto::Tcp => {
                let sock = match s.ensure_server_sock(sim, sid) {
                    Ok(sock) => sock,
                    Err(e) => {
                        drop(s);
                        complete(sim, charge, done, Err(e));
                        return;
                    }
                };
                s.pending_connects.insert(
                    sock,
                    PendingConnect {
                        session: sid,
                        rx,
                        done,
                    },
                );
                let stack = s.stack.clone();
                drop(s);
                let result = stack.borrow_mut().connect_tcp(sim, charge, sock, remote);
                if let Err(e) = result {
                    let mut s = this.borrow_mut();
                    if let Some(p) = s.pending_connects.remove(&sock) {
                        drop(s);
                        complete(sim, charge, p.done, Err(e));
                    }
                }
            }
        }
    }

    // ----- Table 1: proxy_listen -----

    /// Passive open: the server primes itself for incoming connection
    /// requests on the bound endpoint.
    pub fn proxy_listen(
        this: &ServerHandle,
        sim: &mut Sim,
        charge: &mut Charge,
        sid: SessionId,
        backlog: usize,
    ) -> Result<(), SocketError> {
        let mut s = this.borrow_mut();
        s.stats.rpcs += 1;
        rpc_control_charge(&s.costs, charge, 48);
        let sess = s.sessions.get(&sid).ok_or(SocketError::BadSocket)?;
        if sess.local.is_none() {
            return Err(SocketError::Invalid);
        }
        if sess.listening {
            // Idempotent retry after a lost reply.
            s.stats.rpc_dedup_hits += 1;
            return Ok(());
        }
        let sock = s.ensure_server_sock(sim, sid)?;
        s.stack.borrow_mut().listen(sock, backlog)?;
        let sess = s.sessions.get_mut(&sid).expect("exists");
        sess.listening = true;
        Ok(())
    }

    // ----- Table 1: proxy_accept -----

    /// Migrates a passively opened session to the application once a
    /// connection is established.
    pub fn proxy_accept(
        this: &ServerHandle,
        sim: &mut Sim,
        charge: &mut Charge,
        sid: SessionId,
        rx: Option<RxSetup>,
        done: DoneCallback,
    ) {
        let mut s = this.borrow_mut();
        if s.down {
            drop(s);
            complete(sim, charge, done, Err(SocketError::TimedOut));
            return;
        }
        s.stats.rpcs += 1;
        rpc_control_charge(&s.costs, charge, 64);
        let listening = s
            .sessions
            .get(&sid)
            .map(|x| x.listening && !x.closing)
            .unwrap_or(false);
        if !listening {
            drop(s);
            complete(sim, charge, done, Err(SocketError::Invalid));
            return;
        }
        s.pending_accepts
            .entry(sid)
            .or_default()
            .push(PendingAccept { rx, done });
        let me = s.me.clone();
        drop(s);
        // Serve immediately if a connection is already queued.
        let at = charge.at();
        sim.at(at, move |sim| {
            if let Some(server) = me.upgrade() {
                OsServer::drain_accepts(&server, sim, sid);
            }
        });
    }

    fn drain_accepts(this: &ServerHandle, sim: &mut Sim, sid: SessionId) {
        loop {
            let mut s = this.borrow_mut();
            if s.pending_accepts.get(&sid).is_none_or(Vec::is_empty) {
                return;
            }
            let Some(sess) = s.sessions.get(&sid) else {
                return;
            };
            let Home::Server(lsock) = sess.home else {
                return;
            };
            let proc = sess.owners[0];
            let child_sock = match s.stack.borrow_mut().accept(lsock) {
                Ok(c) => c,
                Err(_) => return, // Nothing queued yet.
            };
            let pending = s
                .pending_accepts
                .get_mut(&sid)
                .and_then(|q| (!q.is_empty()).then(|| q.remove(0)))
                .expect("checked above");
            // Build a session record for the new connection.
            let proto = Proto::Tcp;
            let child_sid = s.alloc_session(proc, proto);
            let local = s.stack.borrow().local_addr(child_sock);
            let remote = s.stack.borrow().remote_addr(child_sock);
            let (local, remote) = (local.expect("accepted"), remote.expect("accepted"));
            {
                let sess = s.sessions.get_mut(&child_sid).expect("fresh");
                sess.local = Some(local);
                sess.remote = Some(remote);
            }
            s.index_local_port(child_sid, local.port);
            let cpu = s.stack.borrow().cpu();
            let now = sim.now();
            let mut ch = cpu.borrow_mut().begin(now);
            let reply = match pending.rx {
                Some(rx) => {
                    // Export from the server stack and hand over.
                    let state = s
                        .stack
                        .borrow_mut()
                        .export_session(sim, child_sock)
                        .expect("established connection");
                    s.migrate_out(sim, &mut ch, child_sid, state, rx, local, Some(remote))
                }
                None => {
                    // Server-resident child.
                    {
                        let sess = s.sessions.get_mut(&child_sid).expect("fresh");
                        sess.home = Home::Server(child_sock);
                    }
                    s.sock_to_session.insert(child_sock, child_sid);
                    s.attach_dispatcher(child_sock);
                    SessionReply::ServerResident {
                        session: child_sid,
                        local,
                        remote: Some(remote),
                    }
                }
            };
            cpu.borrow_mut().finish(ch);
            drop(s);
            (pending.done)(sim, Ok(reply));
        }
    }

    /// Performs the outward migration as a two-phase transaction.
    ///
    /// *Prepare* creates the application endpoint and installs the
    /// packet filter; either can fail (table exhaustion, SHM ring
    /// install failure, or an injected fault), in which case the
    /// migration is denied and the session falls back to the server
    /// path. Between prepare and commit sits the capsule hop — the
    /// exported state in flight between address spaces; a fault there
    /// rolls the prepared resources back. *Commit* snapshots metastate
    /// and flips the session's home. In every outcome the session is
    /// wholly at exactly one owner: the filter retarget and the state
    /// hand-off happen inside one synchronous event, so no delivery
    /// can interleave with a partially migrated session.
    #[allow(clippy::too_many_arguments)] // One argument per §3.2 reply field.
    fn migrate_out(
        &mut self,
        sim: &mut Sim,
        charge: &mut Charge,
        sid: SessionId,
        state: SessionState,
        rx: RxSetup,
        local: InetAddr,
        remote: Option<InetAddr>,
    ) -> SessionReply {
        charge.add_ns(Layer::Control, self.costs.rpc_base / 2);
        let proto = match &state {
            SessionState::Tcp(_) => IpProto::Tcp,
            SessionState::Udp(_) => IpProto::Udp,
        };
        let spec = match remote {
            Some(r) => EndpointSpec::connected(proto, local.ip, local.port, r.ip, r.port),
            None => EndpointSpec::unconnected(proto, local.ip, local.port),
        };
        // Phase 1: prepare the delivery path.
        let (endpoint, filter) = match self.migrate_prepare(charge, spec, rx) {
            Ok(pair) => pair,
            Err(_) => {
                self.stats.migrations_denied += 1;
                return self.migrate_rollback(sim, sid, state, local, remote);
            }
        };
        // The capsule hop: a fault here loses the exported state in
        // flight, so tear the prepared resources down and re-import
        // the state server-side. The filter existed only within this
        // event, so it never claimed a packet.
        if charge.fault(FaultSite::MigrationCapsule) {
            {
                let mut k = self.kernel.borrow_mut();
                k.remove_filter(filter);
                k.destroy_endpoint(endpoint);
            }
            self.stats.migrations_rolled_back += 1;
            return self.migrate_rollback(sim, sid, state, local, remote);
        }
        // Phase 2: commit.
        self.stats.migrations_out += 1;
        let now = charge.at();
        let arp_entries = self.stack.borrow().arp.snapshot(now);
        let routes = {
            let st = self.stack.borrow();
            (st.routes.snapshot(), st.routes.version())
        };
        let sess = self.sessions.get_mut(&sid).expect("session exists");
        sess.home = Home::App;
        sess.filter = Some(filter);
        sess.endpoint = Some(endpoint);
        sess.local = Some(local);
        sess.remote = remote;
        self.index_local_port(sid, local.port);
        SessionReply::Migrated(Box::new(MigratedSession {
            session: sid,
            state,
            endpoint,
            filter,
            local,
            remote,
            arp_entries,
            routes,
        }))
    }

    /// Phase 1 of [`OsServer::migrate_out`]: allocate the endpoint and
    /// install the filter. On any failure nothing is left allocated.
    fn migrate_prepare(
        &mut self,
        charge: &mut Charge,
        spec: EndpointSpec,
        rx: RxSetup,
    ) -> Result<(EndpointId, FilterId), SocketError> {
        let shm = matches!(rx.mode, RxMode::Shm | RxMode::ShmIpf);
        if shm && charge.fault(FaultSite::ShmRing) {
            return Err(SocketError::NoBufs);
        }
        let mut k = self.kernel.borrow_mut();
        let ep = k.create_endpoint(rx.mode, rx.sink);
        if charge.fault(FaultSite::FilterTable) {
            k.destroy_endpoint(ep);
            return Err(SocketError::NoBufs);
        }
        match k.install_filter(spec, ep) {
            Ok(f) => Ok((ep, f)),
            Err(_) => {
                k.destroy_endpoint(ep);
                Err(SocketError::NoBufs)
            }
        }
    }

    /// Undoes a failed migration: the exported state is re-imported
    /// into the server's stack, so the session continues server-
    /// resident with every queued byte intact.
    fn migrate_rollback(
        &mut self,
        sim: &mut Sim,
        sid: SessionId,
        state: SessionState,
        local: InetAddr,
        remote: Option<InetAddr>,
    ) -> SessionReply {
        let sock = self.stack.borrow_mut().import_session(sim, state);
        self.attach_dispatcher(sock);
        if let Some(sess) = self.sessions.get_mut(&sid) {
            sess.home = Home::Server(sock);
            sess.local = Some(local);
            sess.remote = remote;
        }
        self.index_local_port(sid, local.port);
        self.sock_to_session.insert(sock, sid);
        SessionReply::ServerResident {
            session: sid,
            local,
            remote,
        }
    }

    // ----- Table 1: proxy_return (fork) and close -----

    /// Returns a migrated session to the operating system ("All
    /// sessions should be returned to the operating system before fork
    /// is called"). The application's endpoint and filter are torn
    /// down; the session continues server-resident.
    pub fn proxy_return(
        this: &ServerHandle,
        sim: &mut Sim,
        charge: &mut Charge,
        sid: SessionId,
        state: SessionState,
    ) -> Result<(), SocketError> {
        let mut s = this.borrow_mut();
        s.stats.rpcs += 1;
        s.stats.migrations_in += 1;
        rpc_control_charge(&s.costs, charge, 256);
        s.teardown_app_delivery(sid);
        let sock = s.stack.borrow_mut().import_session(sim, state);
        s.attach_dispatcher(sock);
        let sess = s.sessions.get_mut(&sid).ok_or(SocketError::BadSocket)?;
        sess.home = Home::Server(sock);
        s.sock_to_session.insert(sock, sid);
        Ok(())
    }

    fn teardown_app_delivery(&mut self, sid: SessionId) {
        if let Some(sess) = self.sessions.get_mut(&sid) {
            let filter = sess.filter.take();
            let endpoint = sess.endpoint.take();
            let mut k = self.kernel.borrow_mut();
            if let Some(f) = filter {
                k.remove_filter(f);
            }
            if let Some(ep) = endpoint {
                k.destroy_endpoint(ep);
            }
        }
    }

    /// Clean shutdown: "we migrate the session state back to the
    /// operating system and follow the shutdown protocol there." For a
    /// migrated session the proxy passes the exported state; for
    /// server-resident sessions it passes `None`.
    pub fn proxy_close(
        this: &ServerHandle,
        sim: &mut Sim,
        charge: &mut Charge,
        sid: SessionId,
        state: Option<SessionState>,
    ) {
        let mut s = this.borrow_mut();
        s.stats.rpcs += 1;
        rpc_control_charge(&s.costs, charge, 128);
        if let Some(state) = state {
            s.stats.migrations_in += 1;
            s.teardown_app_delivery(sid);
            let sock = s.stack.borrow_mut().import_session(sim, state);
            s.attach_dispatcher(sock);
            if let Some(sess) = s.sessions.get_mut(&sid) {
                sess.home = Home::Server(sock);
            }
            s.sock_to_session.insert(sock, sid);
        }
        let Some(sess) = s.sessions.get_mut(&sid) else {
            return;
        };
        sess.closing = true;
        match sess.home {
            Home::Server(sock) => {
                let proto = sess.proto;
                let stack = s.stack.clone();
                drop(s);
                stack.borrow_mut().close(sim, charge, sock);
                let done = match proto {
                    Proto::Udp => true,
                    Proto::Tcp => {
                        // TCP waits for the shutdown protocol; cleanup
                        // happens on the Closed event. If it is already
                        // fully closed, clean up now.
                        matches!(
                            stack.borrow().tcp_state(sock),
                            None | Some(psd_netstack::tcp::TcpState::Closed)
                        ) && stack.borrow().accept_queue_len(sock) == 0
                    }
                };
                if done {
                    OsServer::release_session(this, sim, sid);
                }
            }
            Home::App | Home::Embryo => {
                drop(s);
                OsServer::release_session(this, sim, sid);
            }
        }
    }

    fn release_session(this: &ServerHandle, sim: &mut Sim, sid: SessionId) {
        let mut s = this.borrow_mut();
        s.teardown_app_delivery(sid);
        let Some(sess) = s.sessions.remove(&sid) else {
            return;
        };
        if let Some(local) = sess.local {
            s.ports.release(sess.proto, local.port);
            s.unindex_local_port(sid, local.port);
        }
        if let Home::Server(sock) = sess.home {
            s.sock_to_session.remove(&sock);
            // Make sure the stack entry is gone (no-op if already).
            if s.stack.borrow().exists(sock) {
                let cpu = s.stack.borrow().cpu();
                let now = sim.now();
                let mut ch = cpu.borrow_mut().begin(now);
                s.stack.borrow_mut().abort(sim, &mut ch, sock);
                cpu.borrow_mut().finish(ch);
            }
        }
        for proc in sess.owners {
            if let Some(p) = s.procs.get_mut(&proc) {
                p.sessions.retain(|x| *x != sid);
            }
        }
        s.notify.remove(&sid);
        s.pending_accepts.remove(&sid);
    }

    // ----- fork and process death -----

    /// Forks a process: the child shares all (server-resident)
    /// sessions. Fails if any session is still migrated out.
    pub fn fork(&mut self, charge: &mut Charge, parent: ProcId) -> Result<ProcId, SocketError> {
        self.stats.rpcs += 1;
        rpc_control_charge(&self.costs, charge, 128);
        let sessions: Vec<SessionId> = self
            .procs
            .get(&parent)
            .ok_or(SocketError::Invalid)?
            .sessions
            .clone();
        for sid in &sessions {
            if matches!(self.sessions.get(sid).map(|s| &s.home), Some(Home::App)) {
                return Err(SocketError::Invalid);
            }
        }
        let child = ProcId(self.next_proc);
        self.next_proc += 1;
        self.procs.insert(
            child,
            Process {
                alive: true,
                sessions: sessions.clone(),
            },
        );
        for sid in sessions {
            if let Some(sess) = self.sessions.get_mut(&sid) {
                sess.owners.push(child);
            }
        }
        Ok(child)
    }

    /// Handles the death of a process: aborts its outstanding sessions
    /// ("abort outstanding connections by sending reset messages to
    /// remote peers") and releases their resources.
    pub fn process_died(this: &ServerHandle, sim: &mut Sim, proc: ProcId) {
        let sessions: Vec<SessionId> = {
            let mut s = this.borrow_mut();
            let Some(p) = s.procs.get_mut(&proc) else {
                return;
            };
            p.alive = false;
            p.sessions.clone()
        };
        for sid in sessions {
            let mut s = this.borrow_mut();
            let home = {
                let Some(sess) = s.sessions.get_mut(&sid) else {
                    continue;
                };
                sess.owners.retain(|o| *o != proc);
                if !sess.owners.is_empty() {
                    continue; // Shared with a living process (fork).
                }
                std::mem::replace(&mut sess.home, Home::Embryo)
            };
            s.stats.crash_cleanups += 1;
            match home {
                Home::Server(sock) => {
                    let stack = s.stack.clone();
                    let cpu = stack.borrow().cpu();
                    drop(s);
                    let now = sim.now();
                    let mut ch = cpu.borrow_mut().begin(now);
                    stack.borrow_mut().abort(sim, &mut ch, sock);
                    cpu.borrow_mut().finish(ch);
                }
                Home::App | Home::Embryo => {
                    // The state died with the process; tear down the
                    // delivery path. (The peer learns via its own
                    // timers or a RST to a later segment once the
                    // filter is gone and the segment reaches the
                    // server's stack, which no longer suppresses it.)
                    drop(s);
                }
            }
            OsServer::release_session(this, sim, sid);
        }
        this.borrow_mut().procs.remove(&proc);
    }

    // ----- crash and restart -----

    /// True while the server is crashed. Applications observe this as
    /// RPC deadline expiry (the proxy library never reaches a down
    /// server); tests may probe it directly.
    pub fn is_down(&self) -> bool {
        self.down
    }

    /// Crashes the server: the in-memory session DB, port namespace,
    /// idempotency ledgers and pending RPCs are lost, and
    /// server-resident connections are aborted (their state died with
    /// the server, so peers see resets). Migrated sessions survive —
    /// their filters and endpoints are kernel state — and their
    /// records move to the durable stub store from which
    /// [`OsServer::restart`] rebuilds.
    pub fn crash(this: &ServerHandle, sim: &mut Sim) {
        let (server_socks, stack) = {
            let mut s = this.borrow_mut();
            if s.down {
                return;
            }
            s.down = true;
            s.stats.crashes += 1;
            s.pending_connects.clear();
            s.pending_accepts.clear();
            s.select_waiters.clear();
            s.select_watchers.clear();
            s.select_pending.clear();
            s.notify.clear();
            s.token_ports.clear();
            s.token_sessions.clear();
            // Abort in session order: iteration order of the map is
            // not deterministic across runs, and aborts emit frames.
            let mut socks: Vec<(SessionId, SockId)> = s
                .sessions
                .iter()
                .filter_map(|(sid, sess)| match sess.home {
                    Home::Server(sock) => Some((*sid, sock)),
                    _ => None,
                })
                .collect();
            socks.sort_by_key(|(sid, _)| *sid);
            (socks, s.stack.clone())
        };
        {
            let cpu = stack.borrow().cpu();
            let now = sim.now();
            let mut ch = cpu.borrow_mut().begin(now);
            for (_, sock) in server_socks {
                if stack.borrow().exists(sock) {
                    stack.borrow_mut().abort(sim, &mut ch, sock);
                }
            }
            cpu.borrow_mut().finish(ch);
        }
        let mut s = this.borrow_mut();
        let sessions = std::mem::take(&mut s.sessions);
        for (sid, sess) in sessions {
            if matches!(sess.home, Home::App) {
                // Stubbed sessions stay in the port index: the stray
                // suppression keyed on them must survive the crash.
                s.stub_store.insert(sid, sess);
            } else {
                if let Some(local) = sess.local {
                    s.unindex_local_port(sid, local.port);
                }
            }
        }
        s.sock_to_session.clear();
        s.procs.clear();
        s.ports = PortNamespace::new();
    }

    /// Restarts a crashed server: the session DB and port namespace
    /// are rebuilt from the stub records of migrated sessions (whose
    /// kernel-side filters and endpoints are the durable trace).
    /// Applications re-register and re-adopt their sessions with
    /// [`OsServer::adopt_session`].
    pub fn restart(this: &ServerHandle, _sim: &mut Sim) {
        let mut s = this.borrow_mut();
        if !s.down {
            return;
        }
        s.down = false;
        s.stats.restarts += 1;
        let mut stubs: Vec<_> = std::mem::take(&mut s.stub_store).into_iter().collect();
        stubs.sort_by_key(|(sid, _)| *sid);
        for (sid, sess) in stubs {
            if let Some(local) = sess.local {
                let _ = s.ports.claim(sess.proto, local.port);
            }
            if sid.0 >= s.next_session {
                s.next_session = sid.0 + 1;
            }
            s.stats.sessions_rebuilt += 1;
            s.sessions.insert(sid, sess);
        }
    }

    /// Whether the server currently knows `sid` (post-restart probe:
    /// an application checks which of its descriptors were rebuilt).
    pub fn has_session(&self, sid: SessionId) -> bool {
        self.sessions.contains_key(&sid)
    }

    /// Re-attaches a rebuilt session to the process that re-registered
    /// after a restart (the old [`ProcId`]s died with the server).
    pub fn adopt_session(&mut self, sid: SessionId, proc: ProcId) {
        if let Some(sess) = self.sessions.get_mut(&sid) {
            sess.owners = vec![proc];
            let p = self.procs.entry(proc).or_insert(Process {
                alive: true,
                sessions: Vec::new(),
            });
            if !p.sessions.contains(&sid) {
                p.sessions.push(sid);
            }
        }
    }

    // ----- data path for server-resident sessions -----

    /// TCP send on a server-resident session (the server-based
    /// configuration's data path; the four-copy RPC is charged by the
    /// proxy).
    pub fn data_send_tcp(
        &mut self,
        sim: &mut Sim,
        charge: &mut Charge,
        sid: SessionId,
        data: &[u8],
    ) -> Result<usize, SocketError> {
        let sock = self.resident_sock(sid)?;
        charge.site_push(Domain::Server, "data_send");
        let out = self.stack.borrow_mut().tcp_send(sim, charge, sock, data);
        charge.site_pop();
        out
    }

    /// TCP receive on a server-resident session.
    pub fn data_recv_tcp(
        &mut self,
        sim: &mut Sim,
        charge: &mut Charge,
        sid: SessionId,
        buf: &mut [u8],
    ) -> Result<usize, SocketError> {
        let sock = self.resident_sock(sid)?;
        charge.site_push(Domain::Server, "data_recv");
        let out = self.stack.borrow_mut().tcp_recv(sim, charge, sock, buf);
        charge.site_pop();
        out
    }

    /// UDP send on a server-resident session.
    pub fn data_send_udp(
        &mut self,
        sim: &mut Sim,
        charge: &mut Charge,
        sid: SessionId,
        data: &[u8],
        dst: Option<InetAddr>,
    ) -> Result<usize, SocketError> {
        // Implicit bind for unbound sendto, as BSD does.
        if self
            .sessions
            .get(&sid)
            .ok_or(SocketError::BadSocket)?
            .local
            .is_none()
        {
            let port = self.ports.claim(Proto::Udp, 0)?;
            let local = InetAddr::new(self.host_ip, port);
            self.sessions.get_mut(&sid).expect("exists").local = Some(local);
            self.index_local_port(sid, port);
        }
        let sock = match self.resident_sock(sid) {
            Ok(s) => s,
            Err(SocketError::NotConnected) => self.ensure_server_sock(sim, sid)?,
            Err(e) => return Err(e),
        };
        charge.site_push(Domain::Server, "data_send");
        let out = self
            .stack
            .borrow_mut()
            .udp_send(sim, charge, sock, data, dst);
        charge.site_pop();
        out
    }

    /// UDP receive on a server-resident session.
    pub fn data_recv_udp(
        &mut self,
        sim: &mut Sim,
        charge: &mut Charge,
        sid: SessionId,
        buf: &mut [u8],
    ) -> Result<(usize, InetAddr), SocketError> {
        let sock = self.resident_sock(sid)?;
        charge.site_push(Domain::Server, "data_recv");
        let out = self.stack.borrow_mut().udp_recv(sim, charge, sock, buf);
        charge.site_pop();
        out
    }

    /// Readable/writable poll for a server-resident session.
    pub fn data_poll(&self, sid: SessionId) -> (usize, usize) {
        match self.resident_sock(sid) {
            Ok(sock) => {
                let st = self.stack.borrow();
                (st.readable(sock), st.writable(sock))
            }
            Err(_) => (0, 0),
        }
    }

    fn resident_sock(&self, sid: SessionId) -> Result<SockId, SocketError> {
        if self.down {
            // A data RPC to a crashed server is never answered; the
            // proxy's deadline converts the silence into this error.
            return Err(SocketError::TimedOut);
        }
        match self.sessions.get(&sid).map(|s| &s.home) {
            Some(Home::Server(sock)) => Ok(*sock),
            Some(_) => Err(SocketError::NotConnected),
            None => Err(SocketError::BadSocket),
        }
    }

    /// Registers the callback that forwards events on a server-resident
    /// session to the owning application.
    pub fn set_notify(&mut self, sid: SessionId, cb: NotifyCallback) {
        self.notify.insert(sid, cb);
    }

    // ----- metastate service (§3.3) -----

    /// ARP lookup on behalf of an application's library stack. A miss
    /// starts resolution and returns `None`; the library's packet is
    /// dropped and recovered by the protocol, and the next query hits.
    pub fn proxy_arp_lookup(
        this: &ServerHandle,
        sim: &mut Sim,
        charge: &mut Charge,
        ip: Ipv4Addr,
    ) -> Option<EtherAddr> {
        let mut s = this.borrow_mut();
        if s.down {
            return None;
        }
        s.stats.rpcs += 1;
        rpc_control_charge(&s.costs, charge, 32);
        let now = charge.at();
        let hit = s.stack.borrow().arp.lookup(ip, now);
        if hit.is_none() {
            let stack = s.stack.clone();
            drop(s);
            stack.borrow_mut().arp_kick(sim, charge, ip);
        }
        hit
    }

    /// Registers a metastate invalidation listener (the server
    /// "maintains callbacks into applications for these cached entries
    /// and invalidates them as they expire or are updated").
    pub fn register_arp_listener(&mut self, cb: ArpInvalidation) {
        self.arp_listeners.push(cb);
    }

    /// Administratively invalidates an ARP entry everywhere (server
    /// cache plus all registered application caches).
    pub fn invalidate_arp(this: &ServerHandle, sim: &mut Sim, ip: Ipv4Addr) {
        let listeners: Vec<ArpInvalidation> = {
            let s = this.borrow();
            s.stack.borrow_mut().arp.invalidate(ip);
            s.arp_listeners.clone()
        };
        for cb in listeners {
            sim.at(sim.now(), {
                let cb = cb.clone();
                move |sim| cb.borrow_mut()(sim, ip)
            });
        }
    }

    // ----- select (§3.2 cooperative interface) -----

    /// Application status report for a migrated session (`proxy_status`):
    /// "When the application discovers data on one of the selected
    /// sockets, it signals the operating system of a status change,
    /// forcing any relevant outstanding selects to return."
    pub fn proxy_status(
        this: &ServerHandle,
        sim: &mut Sim,
        charge: &mut Charge,
        sid: SessionId,
        readable: bool,
        writable: bool,
    ) {
        {
            let mut s = this.borrow_mut();
            if s.down {
                return;
            }
            s.stats.rpcs += 1;
            rpc_control_charge(&s.costs, charge, 32);
            if let Some(sess) = s.sessions.get_mut(&sid) {
                sess.app_readable = readable;
                sess.app_writable = writable;
            }
            s.mark_session_watchers(sid);
        }
        OsServer::scan_selects(this, sim);
    }

    /// Cooperative select over sessions. Completes (via callback) when
    /// any watched session is ready; server-resident sessions are
    /// checked directly, migrated ones through their reported status.
    pub fn select(
        this: &ServerHandle,
        sim: &mut Sim,
        charge: &mut Charge,
        watch: Vec<(SessionId, bool, bool)>,
        timeout: Option<SimTime>,
        done: SelectCallback,
    ) {
        let waiter_id = {
            let mut s = this.borrow_mut();
            s.stats.rpcs += 1;
            rpc_control_charge(&s.costs, charge, 64);
            let id = s.next_select;
            s.next_select += 1;
            for (sid, _, _) in &watch {
                s.select_watchers.entry(*sid).or_default().insert(id);
            }
            s.select_waiters.insert(id, SelectWaiter { watch, done });
            s.select_pending.insert(id);
            id
        };
        if let Some(t) = timeout {
            let me = Rc::downgrade(this);
            sim.after(t, move |sim| {
                let Some(server) = me.upgrade() else { return };
                // Fire with whatever is ready (possibly nothing). The
                // waiter is found by id — other selects may have
                // completed (and been removed) in the meantime.
                let waiter = {
                    let mut s = server.borrow_mut();
                    match s.select_waiters.remove(&waiter_id) {
                        Some(w) => {
                            let ready = s.ready_of(&w.watch);
                            s.unindex_waiter(waiter_id, &w.watch);
                            Some((w.done, ready))
                        }
                        None => None,
                    }
                };
                if let Some((done, ready)) = waiter {
                    done(sim, ready);
                }
            });
        }
        OsServer::scan_selects(this, sim);
    }

    fn ready_of(&self, watch: &[(SessionId, bool, bool)]) -> Vec<SessionId> {
        let mut ready = Vec::new();
        for (sid, want_r, want_w) in watch {
            let Some(sess) = self.sessions.get(sid) else {
                continue;
            };
            let (r, w) = match sess.home {
                Home::Server(sock) => {
                    let st = self.stack.borrow();
                    (
                        st.readable(sock) > 0 || st.at_eof(sock),
                        st.writable(sock) > 0,
                    )
                }
                Home::App => (sess.app_readable, sess.app_writable),
                Home::Embryo => (false, false),
            };
            if (*want_r && r) || (*want_w && w) {
                ready.push(*sid);
            }
        }
        ready
    }

    /// Fires every ready select, lowest waiter id first (registration
    /// order, as the old full scan did). Only waiters queued in
    /// `select_pending` are evaluated: every path that changes a
    /// session's readiness queues that session's watchers, so a waiter
    /// outside the set cannot have become ready since it was last
    /// found not-ready.
    fn scan_selects(this: &ServerHandle, sim: &mut Sim) {
        loop {
            let fired = {
                let mut s = this.borrow_mut();
                let mut hit = None;
                while let Some(&wid) = s.select_pending.iter().next() {
                    s.select_pending.remove(&wid);
                    let Some(w) = s.select_waiters.get(&wid) else {
                        continue;
                    };
                    let ready = s.ready_of(&w.watch);
                    if !ready.is_empty() {
                        hit = Some((wid, ready));
                        break;
                    }
                }
                match hit {
                    Some((wid, ready)) => {
                        let w = s.select_waiters.remove(&wid).expect("present");
                        s.unindex_waiter(wid, &w.watch);
                        Some((w.done, ready))
                    }
                    None => None,
                }
            };
            match fired {
                Some((done, ready)) => done(sim, ready),
                None => return,
            }
        }
    }

    // ----- internal event plumbing -----

    fn on_stack_event(this: &ServerHandle, sim: &mut Sim, sock: SockId, ev: SockEvent) {
        // Whatever this event did, it can only have changed the
        // readiness of the session owning this socket: queue its
        // watchers for the scans below.
        {
            let mut s = this.borrow_mut();
            if let Some(&sid) = s.sock_to_session.get(&sock) {
                s.mark_session_watchers(sid);
            }
        }
        // Connect completion?
        let pending = this.borrow_mut().pending_connects.remove(&sock);
        if let Some(p) = pending {
            match ev {
                SockEvent::Connected => {
                    let mut s = this.borrow_mut();
                    let local = s.stack.borrow().local_addr(sock).expect("connected");
                    let remote = s.stack.borrow().remote_addr(sock).expect("connected");
                    let reply = match p.rx {
                        Some(rx) => {
                            let state = s
                                .stack
                                .borrow_mut()
                                .export_session(sim, sock)
                                .expect("established");
                            s.sock_to_session.remove(&sock);
                            let cpu = s.stack.borrow().cpu();
                            let now = sim.now();
                            let mut ch = cpu.borrow_mut().begin(now);
                            let reply = s.migrate_out(
                                sim,
                                &mut ch,
                                p.session,
                                state,
                                rx,
                                local,
                                Some(remote),
                            );
                            cpu.borrow_mut().finish(ch);
                            reply
                        }
                        None => {
                            if let Some(sess) = s.sessions.get_mut(&p.session) {
                                sess.remote = Some(remote);
                            }
                            SessionReply::ServerResident {
                                session: p.session,
                                local,
                                remote: Some(remote),
                            }
                        }
                    };
                    drop(s);
                    (p.done)(sim, Ok(reply));
                }
                SockEvent::Error(e) => {
                    (p.done)(sim, Err(e));
                }
                other => {
                    // Not a completion; put the pending back.
                    this.borrow_mut().pending_connects.insert(sock, p);
                    let _ = other;
                }
            }
            OsServer::scan_selects(this, sim);
            return;
        }

        // Listener with queued connections?
        let (session, is_listener) = {
            let s = this.borrow();
            match s.sock_to_session.get(&sock) {
                Some(sid) => (
                    Some(*sid),
                    s.sessions.get(sid).map(|x| x.listening).unwrap_or(false),
                ),
                None => (None, false),
            }
        };
        if let Some(sid) = session {
            if is_listener && ev == SockEvent::Readable {
                OsServer::drain_accepts(this, sim, sid);
            }
            // Closing session fully terminated?
            if ev == SockEvent::Closed {
                let closing = this
                    .borrow()
                    .sessions
                    .get(&sid)
                    .map(|s| s.closing)
                    .unwrap_or(false);
                if closing {
                    OsServer::release_session(this, sim, sid);
                }
            }
            // Forward to the owning application (server-resident data
            // path), via a scheduled event so the app may re-enter.
            let cb = this.borrow().notify.get(&sid).cloned();
            if let Some(cb) = cb {
                sim.at(sim.now(), move |sim| {
                    cb.borrow_mut()(sim, sid, ev);
                });
            }
        }
        OsServer::scan_selects(this, sim);
    }

    fn forward_unclaimed_udp(
        this: &ServerHandle,
        sim: &mut Sim,
        dst: InetAddr,
        src: InetAddr,
        data: &[u8],
    ) -> bool {
        // A datagram for a migrated session (it reached the server via
        // the catch-all because it was fragmented or otherwise
        // exceptional): forward through the application's endpoint sink
        // as a synthesized UDP packet.
        let target = {
            let s = this.borrow();
            // Earliest-created matching session wins (the bucket is in
            // ascending session-id order).
            s.by_local_port.get(&dst.port).and_then(|bucket| {
                bucket.iter().find_map(|&raw| {
                    let sid = SessionId(raw);
                    let sess = s.sessions.get(&sid)?;
                    (matches!(sess.home, Home::App)
                        && sess.proto == Proto::Udp
                        && sess.local.map(|l| l.port) == Some(dst.port)
                        && (sess.remote.is_none() || sess.remote == Some(src)))
                    .then_some(sid)
                })
            })
        };
        let Some(sid) = target else {
            return false;
        };
        let endpoint = this.borrow().sessions.get(&sid).and_then(|s| s.endpoint);
        let Some(_ep) = endpoint else {
            return false;
        };
        this.borrow_mut().stats.udp_forwarded += 1;
        // Deliver through the app's sink (an IPC forward): route the
        // forward through the kernel's classify path by re-presenting
        // the frame as if freshly received — the installed session
        // filter claims it.
        Self::represent_udp(this, sim, dst, src, data);
        true
    }

    /// Rebuilds a minimal Ethernet+IP+UDP frame around `data` and
    /// re-presents it to the kernel's classify path as if freshly
    /// received, so whatever filters are installed *now* decide its
    /// owner.
    fn represent_udp(
        this: &ServerHandle,
        sim: &mut Sim,
        dst: InetAddr,
        src: InetAddr,
        data: &[u8],
    ) {
        let mut udp = psd_wire::UdpHeader::new(src.port, dst.port, data.len());
        let ip = psd_wire::Ipv4Header::new(src.ip, dst.ip, IpProto::Udp, 8 + data.len());
        let chain = psd_mbuf::MbufChain::from_slice(data);
        udp.checksum = udp.checksum_for(&ip, chain.iter_segments());
        let eth = psd_wire::EthernetHeader {
            dst: this.borrow().kernel.borrow().mac(),
            src: EtherAddr::local(0xFFFF),
            ethertype: psd_wire::EtherType::Ipv4,
        };
        let mut frame = eth.encode().to_vec();
        frame.extend_from_slice(&ip.encode());
        frame.extend_from_slice(&udp.encode());
        frame.extend_from_slice(data);
        let kernel = this.borrow().kernel.clone();
        sim.at(sim.now(), move |sim| {
            use psd_netdev::Station;
            kernel.borrow_mut().frame_arrived(sim, frame);
        });
    }

    /// The inverse of the unclaimed-datagram forward: a datagram that
    /// was classified to an application's endpoint *before* the
    /// session migrated back (fork, close) lands in the library stack
    /// after its socket is gone. The library hands it here; if the
    /// session is now server-resident, the frame is re-presented so
    /// the classify path — whose filter for this session has been torn
    /// down — delivers it to the server's socket. Each in-flight
    /// datagram is therefore drained exactly once.
    pub fn reclaim_migrated_udp(
        this: &ServerHandle,
        sim: &mut Sim,
        dst: InetAddr,
        src: InetAddr,
        data: &[u8],
    ) -> bool {
        let claimed = {
            let s = this.borrow();
            s.by_local_port.get(&dst.port).is_some_and(|bucket| {
                bucket.iter().any(|&raw| {
                    s.sessions.get(&SessionId(raw)).is_some_and(|sess| {
                        matches!(sess.home, Home::Server(_))
                            && sess.proto == Proto::Udp
                            && sess.local.map(|l| l.port) == Some(dst.port)
                            && (sess.remote.is_none() || sess.remote == Some(src))
                    })
                })
            })
        };
        if !claimed {
            return false;
        }
        this.borrow_mut().stats.udp_reclaimed += 1;
        Self::represent_udp(this, sim, dst, src, data);
        true
    }

    /// Number of live sessions (diagnostics).
    pub fn session_count(&self) -> usize {
        self.sessions.len()
    }

    /// The port namespace (diagnostics/tests).
    pub fn ports(&self) -> &PortNamespace {
        &self.ports
    }
}

/// Schedules a completion callback at the charge's current time — the
/// reply IPC arriving back at the application.
fn complete(
    sim: &mut Sim,
    charge: &Charge,
    done: DoneCallback,
    result: Result<SessionReply, SocketError>,
) {
    let at = charge.at();
    sim.at(at, move |sim| done(sim, result));
}
