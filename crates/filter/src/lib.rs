//! The packet filter: a CSPF-style virtual machine, a compiler from
//! endpoint specifications to filter programs, and an MPF-style
//! demultiplexing table.
//!
//! In the paper's architecture the kernel demultiplexes every received
//! packet to the session that owns it: "For security reasons, packets
//! are received through the packet filter. The operating system creates
//! and installs a new packet filter for each network session." This
//! crate provides that machinery:
//!
//! - [`vm`]: the stack-machine filter language (after the CMU/Stanford
//!   Packet Filter used by Mach) with bounds-checked execution and an
//!   instruction budget, so untrusted programs cannot read outside the
//!   packet or loop forever.
//! - [`compile`]: builds the per-session programs the operating system
//!   server installs (protocol / local endpoint / optional remote
//!   endpoint), plus the server's catch-all.
//! - [`compiled`]: the compile tier. At insert time every program is
//!   lowered to a specialized artifact — a fast-path field-compare
//!   recognizer for the canonical session-filter shape, or a
//!   direct-threaded fallback for arbitrary programs — that reproduces
//!   the interpreter's verdict, step count, and error cause exactly.
//!   `FilterEngine::{Interpret,Compiled}` selects the tier per table.
//! - [`demux`]: the table of installed filters. Two strategies are
//!   provided: `Cspf` runs each program in turn (the 1987 design), and
//!   `Mpf` collapses the shared prefix and dispatches on the endpoint
//!   with an associative lookup (the Yuhara et al. design the paper's
//!   system used). The strategies are observationally equivalent — a
//!   property test checks this — but charge different instruction
//!   counts, which the ablation benchmark measures.

pub mod compile;
pub mod compiled;
pub mod demux;
pub mod placement;
pub mod vm;

pub use compile::{catch_all_ip, compile_endpoint, EndpointSpec};
pub use compiled::{CompiledFilter, FilterEngine};
pub use demux::{DemuxResult, DemuxStrategy, DemuxTable, FilterId};
pub use placement::{CopyPlacement, PlacementPolicy};
pub use vm::{Binop, FilterOutcome, Insn, Program, VmError, MAX_STEPS};
