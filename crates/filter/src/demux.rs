//! The installed-filter table and receive-path demultiplexing.
//!
//! Two observationally equivalent strategies are provided:
//!
//! - [`DemuxStrategy::Cspf`]: run every installed program in
//!   specificity-then-install order until one accepts — the original
//!   1987 packet filter design. Cost grows with the number of sessions.
//! - [`DemuxStrategy::Mpf`]: run the shared session prefix once, then
//!   dispatch on the endpoint key with an associative lookup — the
//!   Yuhara et al. design used by the paper's system ("Masanobu Yuhara
//!   assisted with the integration of the packet filter"). Cost is
//!   independent of the number of sessions.
//!
//! `classify` reports the instruction count actually executed so the
//! kernel can charge filter time to the `netisr/packet filter` row of
//! Table 4.

use std::cmp::Reverse;
use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::net::Ipv4Addr;

use crate::compile::{compile_endpoint, session_prefix, EndpointSpec};
use crate::compiled::{CompiledFilter, FilterEngine};
use crate::placement::CopyPlacement;
use crate::vm::Program;
use psd_wire::{EthernetHeader, IpProto, Ipv4Header, ETHER_HDR_LEN};

/// Identifier for an installed filter.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct FilterId(pub u64);

/// How the table demultiplexes.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum DemuxStrategy {
    /// Linear scan over per-session programs.
    Cspf,
    /// Shared-prefix + associative endpoint dispatch.
    Mpf,
}

/// The result of classifying one packet.
#[derive(Clone, Debug)]
pub struct DemuxResult<T> {
    /// The matching filter and its owner, or `None` for unclaimed
    /// packets (which the kernel hands to the operating system).
    pub owner: Option<(FilterId, T)>,
    /// Filter instructions executed, for cost accounting.
    pub steps: usize,
}

struct Installed<T> {
    id: FilterId,
    spec: EndpointSpec,
    /// Selective-copy verdict for this flow (ISSUE 9): where received
    /// bodies land. Defaults to eager; set at install time by whatever
    /// placement policy the kernel has in force.
    placement: CopyPlacement,
    program: Program,
    /// The program lowered at install time. Every installed filter
    /// owns its own artifact — artifacts are keyed by filter id, never
    /// by program value, so two structurally equal programs installed
    /// for different sessions compile, live, and tear down
    /// independently.
    compiled: CompiledFilter,
    owner: T,
}

type MpfKey = (u8, Ipv4Addr, u16, Option<(Ipv4Addr, u16)>);

/// The table of installed per-session filters.
///
/// All maintenance is incremental: install and remove are O(log n),
/// CSPF evaluation order is kept in a sorted map rather than
/// re-sorting a vector, and the MPF endpoint index maps each key to
/// the set of filter ids sharing it (the earliest install wins,
/// exactly as a specificity-then-install-ordered scan would pick it).
///
/// Filters live in a slab: the CSPF scan — the hot path that runs
/// once per installed filter per received packet — resolves each
/// order entry with a dense vector index instead of a hashed lookup,
/// so per-filter scan overhead is a pointer chase, not a SipHash.
/// The id→slot map is consulted only on the control path
/// (install/remove/spec/owner) and by the O(1) MPF dispatch.
pub struct DemuxTable<T> {
    strategy: DemuxStrategy,
    engine: FilterEngine,
    /// Slab of installed filters; `None` entries are free slots.
    slots: Vec<Option<Installed<T>>>,
    /// Free-list of vacated slot indices, reused LIFO.
    free: Vec<usize>,
    /// Control-path index: filter id → slot.
    by_id: HashMap<u64, usize>,
    /// CSPF evaluation order: (specificity descending, id ascending)
    /// → slot.
    order: BTreeMap<(Reverse<u8>, u64), usize>,
    mpf_index: HashMap<MpfKey, BTreeSet<u64>>,
    prefix_len: usize,
    next_id: u64,
}

fn mpf_key(spec: &EndpointSpec) -> MpfKey {
    (
        spec.proto.to_u8(),
        spec.local_ip,
        spec.local_port,
        spec.remote,
    )
}

impl<T: Clone> DemuxTable<T> {
    /// Creates an empty table with the given strategy and the
    /// interpreter engine.
    pub fn new(strategy: DemuxStrategy) -> DemuxTable<T> {
        DemuxTable::with_engine(strategy, FilterEngine::Interpret)
    }

    /// Creates an empty table with the given strategy and execution
    /// engine.
    pub fn with_engine(strategy: DemuxStrategy, engine: FilterEngine) -> DemuxTable<T> {
        DemuxTable {
            strategy,
            engine,
            slots: Vec::new(),
            free: Vec::new(),
            by_id: HashMap::new(),
            order: BTreeMap::new(),
            mpf_index: HashMap::new(),
            prefix_len: session_prefix().len(),
            next_id: 1,
        }
    }

    /// The configured strategy.
    pub fn strategy(&self) -> DemuxStrategy {
        self.strategy
    }

    /// The configured execution engine.
    pub fn engine(&self) -> FilterEngine {
        self.engine
    }

    /// Switches the execution engine. Compiled artifacts are maintained
    /// for every installed filter regardless of the active engine, so
    /// this is valid at any time and never changes classification
    /// output — the engines are observationally equivalent.
    pub fn set_engine(&mut self, engine: FilterEngine) {
        self.engine = engine;
    }

    /// Number of live compiled artifacts. Always equals
    /// [`len`](DemuxTable::len): each installed filter owns exactly one
    /// artifact, created at install and dropped at remove (the
    /// regression suite pins this across insert/remove churn).
    pub fn compiled_artifacts(&self) -> usize {
        self.slots.iter().filter(|s| s.is_some()).count()
    }

    /// Number of installed filters whose artifact took the fast-path
    /// recognizer lowering (vs. the direct-threaded fallback).
    pub fn fast_path_artifacts(&self) -> usize {
        self.slots
            .iter()
            .flatten()
            .filter(|f| f.compiled.is_fast_path())
            .count()
    }

    /// Number of installed filters.
    pub fn len(&self) -> usize {
        self.by_id.len()
    }

    /// True if no filters are installed.
    pub fn is_empty(&self) -> bool {
        self.by_id.is_empty()
    }

    /// Installs a filter for `spec` owned by `owner`. Returns its id.
    pub fn install(&mut self, spec: EndpointSpec, owner: T) -> FilterId {
        let id = FilterId(self.next_id);
        self.next_id += 1;
        let program = compile_endpoint(&spec);
        // Lowered per install, never shared between ids: program
        // equality must not be load-bearing for artifact lifetime.
        let compiled = CompiledFilter::compile(&program);
        let installed = Installed {
            id,
            spec,
            placement: CopyPlacement::Eager,
            program,
            compiled,
            owner,
        };
        let slot = match self.free.pop() {
            Some(slot) => {
                self.slots[slot] = Some(installed);
                slot
            }
            None => {
                self.slots.push(Some(installed));
                self.slots.len() - 1
            }
        };
        self.by_id.insert(id.0, slot);
        self.order.insert((Reverse(spec.specificity()), id.0), slot);
        self.mpf_index
            .entry(mpf_key(&spec))
            .or_default()
            .insert(id.0);
        id
    }

    /// Removes an installed filter. Returns true if it existed.
    pub fn remove(&mut self, id: FilterId) -> bool {
        let Some(slot) = self.by_id.remove(&id.0) else {
            return false;
        };
        let f = self.slots[slot].take().expect("by_id points at live slot");
        self.free.push(slot);
        self.order.remove(&(Reverse(f.spec.specificity()), id.0));
        let key = mpf_key(&f.spec);
        if let Some(ids) = self.mpf_index.get_mut(&key) {
            ids.remove(&id.0);
            if ids.is_empty() {
                self.mpf_index.remove(&key);
            }
        }
        true
    }

    fn get(&self, id: u64) -> Option<&Installed<T>> {
        let slot = *self.by_id.get(&id)?;
        self.slots[slot].as_ref()
    }

    /// Looks up the spec of an installed filter.
    pub fn spec(&self, id: FilterId) -> Option<EndpointSpec> {
        self.get(id.0).map(|f| f.spec)
    }

    /// Looks up the owner of an installed filter.
    pub fn owner(&self, id: FilterId) -> Option<&T> {
        self.get(id.0).map(|f| &f.owner)
    }

    /// Sets the selective-copy placement for an installed filter.
    /// Returns false if the filter does not exist.
    pub fn set_placement(&mut self, id: FilterId, placement: CopyPlacement) -> bool {
        let Some(&slot) = self.by_id.get(&id.0) else {
            return false;
        };
        match self.slots[slot].as_mut() {
            Some(f) => {
                f.placement = placement;
                true
            }
            None => false,
        }
    }

    /// The selective-copy placement of an installed filter (eager for
    /// unknown ids, so callers on the unclaimed path need no special
    /// case).
    pub fn placement(&self, id: FilterId) -> CopyPlacement {
        self.get(id.0).map_or(CopyPlacement::Eager, |f| f.placement)
    }

    /// Classifies a received frame.
    pub fn classify(&self, frame: &[u8]) -> DemuxResult<T> {
        match self.strategy {
            DemuxStrategy::Cspf => self.classify_cspf(frame),
            DemuxStrategy::Mpf => self.classify_mpf(frame),
        }
    }

    fn classify_cspf(&self, frame: &[u8]) -> DemuxResult<T> {
        let mut steps = 0;
        for &slot in self.order.values() {
            let f = self.slots[slot]
                .as_ref()
                .expect("order points at live slot");
            let out = match self.engine {
                FilterEngine::Interpret => f.program.run(frame),
                FilterEngine::Compiled => f.compiled.run(frame),
            };
            steps += out.steps;
            if out.accepted {
                return DemuxResult {
                    owner: Some((f.id, f.owner.clone())),
                    steps,
                };
            }
        }
        DemuxResult { owner: None, steps }
    }

    fn classify_mpf(&self, frame: &[u8]) -> DemuxResult<T> {
        // The shared prefix runs once; model its cost as its instruction
        // count, plus two associative probes (connected, then wildcard),
        // each priced as one instruction.
        let mut steps = self.prefix_len;
        let key = match mpf_extract_key(frame) {
            Some(k) => k,
            None => return DemuxResult { owner: None, steps },
        };
        let (proto, dst_ip, dst_port, src_ip, src_port) = key;
        steps += 1;
        let exact: MpfKey = (proto, dst_ip, dst_port, Some((src_ip, src_port)));
        if let Some(f) = self.mpf_lookup(&exact) {
            if self.mpf_confirm(f, frame) {
                return DemuxResult {
                    owner: Some((f.id, f.owner.clone())),
                    steps,
                };
            }
        }
        steps += 1;
        let wild: MpfKey = (proto, dst_ip, dst_port, None);
        if let Some(f) = self.mpf_lookup(&wild) {
            if self.mpf_confirm(f, frame) {
                return DemuxResult {
                    owner: Some((f.id, f.owner.clone())),
                    steps,
                };
            }
        }
        DemuxResult { owner: None, steps }
    }

    /// Under the compiled engine, the MPF dispatch runs the winning
    /// filter's compiled program as the final match confirmation — the
    /// per-session residual of the MPF design, and the sync check that
    /// keeps the associative index honest against the program table.
    /// Key extraction is strictly stricter than any session program
    /// whose key it produced (it additionally validates the IP header
    /// checksum and total length), so for an in-sync table the confirm
    /// always accepts and both engines classify identically; the step
    /// accounting is the MPF cost model's either way.
    fn mpf_confirm(&self, f: &Installed<T>, frame: &[u8]) -> bool {
        match self.engine {
            FilterEngine::Interpret => true,
            FilterEngine::Compiled => f.compiled.run(frame).accepted,
        }
    }

    /// Resolves an MPF key to its winning filter. Filters sharing a key
    /// necessarily share a specificity, so the earliest install (lowest
    /// id) is the one a specificity-then-install scan would reach first.
    fn mpf_lookup(&self, key: &MpfKey) -> Option<&Installed<T>> {
        let ids = self.mpf_index.get(key)?;
        self.get(*ids.first()?)
    }
}

/// Extracts `(proto, dst_ip, dst_port, src_ip, src_port)` from an
/// unfragmented, optionless IPv4 frame; `None` sends the packet to the
/// operating system.
fn mpf_extract_key(frame: &[u8]) -> Option<(u8, Ipv4Addr, u16, Ipv4Addr, u16)> {
    let eth = EthernetHeader::parse(frame).ok()?;
    if eth.ethertype != psd_wire::EtherType::Ipv4 {
        return None;
    }
    let ip = Ipv4Header::parse(&frame[ETHER_HDR_LEN..]).ok()?;
    if ip.header_len != 20 || ip.is_fragment() {
        return None;
    }
    let proto = match ip.proto {
        IpProto::Tcp | IpProto::Udp => ip.proto.to_u8(),
        _ => return None,
    };
    let tp = &frame[ETHER_HDR_LEN + 20..];
    if tp.len() < 4 {
        return None;
    }
    let src_port = u16::from_be_bytes([tp[0], tp[1]]);
    let dst_port = u16::from_be_bytes([tp[2], tp[3]]);
    Some((proto, ip.dst, dst_port, ip.src, src_port))
}

#[cfg(test)]
mod tests {
    use super::*;
    use psd_wire::{EtherAddr, EtherType, UdpHeader, UDP_HDR_LEN};

    const A: Ipv4Addr = Ipv4Addr::new(10, 0, 0, 1);
    const B: Ipv4Addr = Ipv4Addr::new(10, 0, 0, 2);

    fn udp_frame(src: (Ipv4Addr, u16), dst: (Ipv4Addr, u16)) -> Vec<u8> {
        let ip = Ipv4Header::new(src.0, dst.0, IpProto::Udp, UDP_HDR_LEN + 4);
        let udp = UdpHeader::new(src.1, dst.1, 4);
        let eth = EthernetHeader {
            dst: EtherAddr::local(2),
            src: EtherAddr::local(1),
            ethertype: EtherType::Ipv4,
        };
        let mut f = eth.encode().to_vec();
        f.extend_from_slice(&ip.encode());
        f.extend_from_slice(&udp.encode());
        f.extend_from_slice(&[0u8; 4]);
        f
    }

    fn both_strategies() -> [DemuxTable<&'static str>; 2] {
        [
            DemuxTable::new(DemuxStrategy::Cspf),
            DemuxTable::new(DemuxStrategy::Mpf),
        ]
    }

    #[test]
    fn empty_table_claims_nothing() {
        for t in both_strategies() {
            let r = t.classify(&udp_frame((A, 1), (B, 2)));
            assert!(r.owner.is_none());
        }
    }

    #[test]
    fn wildcard_claims_matching_packet() {
        for mut t in both_strategies() {
            let id = t.install(EndpointSpec::unconnected(IpProto::Udp, B, 7000), "app");
            let r = t.classify(&udp_frame((A, 5), (B, 7000)));
            let (fid, owner) = r.owner.expect("should match");
            assert_eq!(fid, id);
            assert_eq!(owner, "app");
            assert!(r.steps > 0);
        }
    }

    #[test]
    fn connected_beats_wildcard() {
        for mut t in both_strategies() {
            t.install(EndpointSpec::unconnected(IpProto::Udp, B, 7000), "wild");
            t.install(EndpointSpec::connected(IpProto::Udp, B, 7000, A, 5), "conn");
            let r = t.classify(&udp_frame((A, 5), (B, 7000)));
            assert_eq!(r.owner.unwrap().1, "conn");
            // A different sender falls back to the wildcard.
            let r2 = t.classify(&udp_frame((A, 6), (B, 7000)));
            assert_eq!(r2.owner.unwrap().1, "wild");
        }
    }

    #[test]
    fn removal_uninstalls() {
        for mut t in both_strategies() {
            let id = t.install(EndpointSpec::unconnected(IpProto::Udp, B, 7000), "app");
            assert!(t.remove(id));
            assert!(!t.remove(id));
            assert!(t.classify(&udp_frame((A, 5), (B, 7000))).owner.is_none());
            assert!(t.is_empty());
        }
    }

    #[test]
    fn mpf_cost_is_independent_of_session_count() {
        let mut cspf: DemuxTable<u32> = DemuxTable::new(DemuxStrategy::Cspf);
        let mut mpf: DemuxTable<u32> = DemuxTable::new(DemuxStrategy::Mpf);
        for port in 0..50u16 {
            cspf.install(EndpointSpec::unconnected(IpProto::Udp, B, 8000 + port), 0);
            mpf.install(EndpointSpec::unconnected(IpProto::Udp, B, 8000 + port), 0);
        }
        // Target is the last-installed port: CSPF scans everything.
        let frame = udp_frame((A, 5), (B, 8049));
        let c = cspf.classify(&frame);
        let m = mpf.classify(&frame);
        assert_eq!(c.owner.is_some(), m.owner.is_some());
        assert!(
            c.steps > 10 * m.steps,
            "CSPF {} vs MPF {} steps",
            c.steps,
            m.steps
        );
    }

    #[test]
    fn strategies_agree_on_claiming() {
        let specs = [
            EndpointSpec::unconnected(IpProto::Udp, B, 1000),
            EndpointSpec::connected(IpProto::Udp, B, 1000, A, 2000),
            EndpointSpec::unconnected(IpProto::Tcp, B, 1000),
            EndpointSpec::connected(IpProto::Tcp, A, 99, B, 100),
        ];
        let mut cspf: DemuxTable<usize> = DemuxTable::new(DemuxStrategy::Cspf);
        let mut mpf: DemuxTable<usize> = DemuxTable::new(DemuxStrategy::Mpf);
        for (i, s) in specs.iter().enumerate() {
            cspf.install(*s, i);
            mpf.install(*s, i);
        }
        let frames = [
            udp_frame((A, 2000), (B, 1000)),
            udp_frame((A, 3), (B, 1000)),
            udp_frame((A, 2000), (B, 2000)),
            udp_frame((B, 100), (A, 99)),
        ];
        for (i, f) in frames.iter().enumerate() {
            let c = cspf.classify(f);
            let m = mpf.classify(f);
            assert_eq!(
                c.owner.as_ref().map(|o| o.1),
                m.owner.as_ref().map(|o| o.1),
                "frame {i}"
            );
        }
    }

    #[test]
    fn non_ip_frames_unclaimed() {
        for mut t in both_strategies() {
            t.install(EndpointSpec::unconnected(IpProto::Udp, B, 7000), "app");
            let eth = EthernetHeader {
                dst: EtherAddr::BROADCAST,
                src: EtherAddr::local(1),
                ethertype: EtherType::Arp,
            };
            let mut f = eth.encode().to_vec();
            f.extend_from_slice(&[0u8; 28]);
            assert!(t.classify(&f).owner.is_none());
        }
    }

    #[test]
    fn spec_lookup() {
        let mut t: DemuxTable<()> = DemuxTable::new(DemuxStrategy::Mpf);
        let spec = EndpointSpec::unconnected(IpProto::Udp, B, 7000);
        let id = t.install(spec, ());
        assert_eq!(t.spec(id), Some(spec));
        assert_eq!(t.spec(FilterId(999)), None);
    }

    fn all_tables() -> Vec<DemuxTable<&'static str>> {
        let mut v = Vec::new();
        for s in [DemuxStrategy::Cspf, DemuxStrategy::Mpf] {
            for e in [FilterEngine::Interpret, FilterEngine::Compiled] {
                v.push(DemuxTable::with_engine(s, e));
            }
        }
        v
    }

    #[test]
    fn engines_agree_on_owner_and_steps() {
        let frames = [
            udp_frame((A, 5), (B, 7000)),
            udp_frame((A, 6), (B, 7000)),
            udp_frame((A, 5), (B, 7001)),
            vec![0u8; 10],
        ];
        let mut results: Vec<Vec<(Option<&str>, usize)>> = Vec::new();
        for mut t in [
            DemuxTable::with_engine(DemuxStrategy::Cspf, FilterEngine::Interpret),
            DemuxTable::with_engine(DemuxStrategy::Cspf, FilterEngine::Compiled),
        ] {
            t.install(EndpointSpec::unconnected(IpProto::Udp, B, 7000), "wild");
            t.install(EndpointSpec::connected(IpProto::Udp, B, 7000, A, 5), "conn");
            results.push(
                frames
                    .iter()
                    .map(|f| {
                        let r = t.classify(f);
                        (r.owner.map(|o| o.1), r.steps)
                    })
                    .collect(),
            );
        }
        assert_eq!(results[0], results[1], "CSPF engines diverge");
    }

    #[test]
    fn engine_toggle_mid_life_changes_nothing() {
        for mut t in all_tables() {
            t.install(EndpointSpec::unconnected(IpProto::Udp, B, 7000), "app");
            let frame = udp_frame((A, 5), (B, 7000));
            let before = t.classify(&frame);
            t.set_engine(FilterEngine::Compiled);
            let compiled = t.classify(&frame);
            t.set_engine(FilterEngine::Interpret);
            let after = t.classify(&frame);
            assert_eq!(before.owner.as_ref().map(|o| o.1), Some("app"));
            assert_eq!(before.steps, compiled.steps);
            assert_eq!(before.steps, after.steps);
            assert_eq!(
                before.owner.map(|o| o.0),
                compiled.owner.map(|o| o.0),
                "{:?}",
                t.strategy()
            );
        }
    }

    #[test]
    fn session_filter_artifacts_take_the_fast_path() {
        let mut t: DemuxTable<u32> =
            DemuxTable::with_engine(DemuxStrategy::Cspf, FilterEngine::Compiled);
        t.install(EndpointSpec::unconnected(IpProto::Udp, B, 7000), 0);
        t.install(EndpointSpec::connected(IpProto::Tcp, B, 80, A, 5000), 1);
        assert_eq!(t.fast_path_artifacts(), 2);
        assert_eq!(t.compiled_artifacts(), 2);
    }

    #[test]
    fn equal_programs_get_independent_compiled_state() {
        // Two installs of the *same* spec produce structurally equal
        // programs. Their compiled artifacts must be keyed by filter
        // id, not program value: removing one session's filter must
        // not tear down — or leak — the other's artifact, across
        // repeated remove/re-insert churn.
        let spec = EndpointSpec::unconnected(IpProto::Udp, B, 7000);
        let mut t: DemuxTable<&str> =
            DemuxTable::with_engine(DemuxStrategy::Cspf, FilterEngine::Compiled);
        let first = t.install(spec, "session-a");
        let mut second = t.install(spec, "session-b");
        assert_eq!(t.compiled_artifacts(), 2);
        let frame = udp_frame((A, 5), (B, 7000));
        for _ in 0..16 {
            // Churn the *second* session; the first must keep winning
            // (earliest install) through every generation.
            assert!(t.remove(second));
            assert_eq!(t.compiled_artifacts(), 1, "artifact leaked or lost");
            let r = t.classify(&frame);
            assert_eq!(r.owner.as_ref().map(|o| o.1), Some("session-a"));
            second = t.install(spec, "session-b");
            assert_eq!(t.compiled_artifacts(), 2);
        }
        // Now drop the first: the survivor's artifact must still match.
        assert!(t.remove(first));
        assert_eq!(t.compiled_artifacts(), 1);
        let r = t.classify(&frame);
        assert_eq!(r.owner.map(|o| o.1), Some("session-b"));
        assert!(t.remove(second));
        assert_eq!(t.compiled_artifacts(), 0);
        assert_eq!(t.fast_path_artifacts(), 0);
    }
}
