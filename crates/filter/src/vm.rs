//! The filter virtual machine.
//!
//! A small stack machine over 16-bit big-endian words of the packet,
//! modeled on the CMU/Stanford Packet Filter that Mach's `NETF`
//! interface exposed. Programs are data, not code: execution is
//! bounds-checked (a reference beyond the packet simply fails the
//! filter, as in CSPF) and budgeted, so a malformed or malicious
//! program can neither read out of bounds nor run unboundedly.

/// Upper bound on executed instructions per packet.
pub const MAX_STEPS: usize = 256;

/// Binary operations on the top two stack words.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Binop {
    /// Equality.
    Eq,
    /// Inequality.
    Ne,
    /// Unsigned less-than.
    Lt,
    /// Unsigned less-or-equal.
    Le,
    /// Unsigned greater-than.
    Gt,
    /// Unsigned greater-or-equal.
    Ge,
    /// Bitwise AND.
    And,
    /// Bitwise OR.
    Or,
    /// Bitwise XOR.
    Xor,
    /// Wrapping addition.
    Add,
    /// Wrapping subtraction.
    Sub,
}

impl Binop {
    pub(crate) fn apply(self, a: u16, b: u16) -> u16 {
        match self {
            Binop::Eq => u16::from(a == b),
            Binop::Ne => u16::from(a != b),
            Binop::Lt => u16::from(a < b),
            Binop::Le => u16::from(a <= b),
            Binop::Gt => u16::from(a > b),
            Binop::Ge => u16::from(a >= b),
            Binop::And => a & b,
            Binop::Or => a | b,
            Binop::Xor => a ^ b,
            Binop::Add => a.wrapping_add(b),
            Binop::Sub => a.wrapping_sub(b),
        }
    }
}

/// One filter instruction.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Insn {
    /// Push a literal word.
    PushLit(u16),
    /// Push the packet word at the given *byte* offset (big-endian pair;
    /// out-of-bounds fails the filter).
    PushWord(u16),
    /// Pop two words, push `a op b` (`a` pushed first).
    Op(Binop),
    /// Pop two words; if `a op b` is nonzero, accept immediately (the
    /// CSPF "COR" combinator), else continue.
    CombineOr(Binop),
    /// Pop two words; if `a op b` is zero, reject immediately ("CAND"),
    /// else continue.
    CombineAnd(Binop),
    /// Stop: accept if the top of stack is nonzero (an empty stack
    /// rejects).
    Ret,
}

/// A filter program.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct Program {
    /// The instructions, executed in order.
    pub insns: Vec<Insn>,
}

impl Program {
    /// Creates a program from instructions.
    pub fn new(insns: Vec<Insn>) -> Program {
        Program { insns }
    }

    /// Number of instructions (for cost estimates).
    pub fn len(&self) -> usize {
        self.insns.len()
    }

    /// True if the program has no instructions.
    pub fn is_empty(&self) -> bool {
        self.insns.is_empty()
    }

    /// Runs the program against a packet. Never panics on any input.
    pub fn run(&self, packet: &[u8]) -> FilterOutcome {
        let mut stack: Vec<u16> = Vec::with_capacity(8);
        let mut steps = 0;
        for insn in &self.insns {
            steps += 1;
            if steps > MAX_STEPS {
                return FilterOutcome::rejected(steps, Some(VmError::StepBudget));
            }
            match *insn {
                Insn::PushLit(v) => stack.push(v),
                Insn::PushWord(off) => {
                    let off = usize::from(off);
                    if off + 2 > packet.len() {
                        // Out-of-bounds reference fails the filter.
                        return FilterOutcome::rejected(steps, Some(VmError::OutOfBounds));
                    }
                    stack.push(u16::from_be_bytes([packet[off], packet[off + 1]]));
                }
                Insn::Op(op) => {
                    let (a, b) = match (stack.pop(), stack.pop()) {
                        (Some(b), Some(a)) => (a, b),
                        _ => return FilterOutcome::rejected(steps, Some(VmError::StackUnderflow)),
                    };
                    stack.push(op.apply(a, b));
                }
                Insn::CombineOr(op) => {
                    let (a, b) = match (stack.pop(), stack.pop()) {
                        (Some(b), Some(a)) => (a, b),
                        _ => return FilterOutcome::rejected(steps, Some(VmError::StackUnderflow)),
                    };
                    if op.apply(a, b) != 0 {
                        return FilterOutcome::accepted(steps);
                    }
                }
                Insn::CombineAnd(op) => {
                    let (a, b) = match (stack.pop(), stack.pop()) {
                        (Some(b), Some(a)) => (a, b),
                        _ => return FilterOutcome::rejected(steps, Some(VmError::StackUnderflow)),
                    };
                    if op.apply(a, b) == 0 {
                        return FilterOutcome::rejected(steps, None);
                    }
                }
                Insn::Ret => {
                    let accept = stack.pop().is_some_and(|v| v != 0);
                    return if accept {
                        FilterOutcome::accepted(steps)
                    } else {
                        FilterOutcome::rejected(steps, None)
                    };
                }
            }
        }
        // Falling off the end: accept iff top of stack is nonzero, as if
        // an implicit `Ret`.
        let accept = stack.last().copied().unwrap_or(0) != 0;
        if accept {
            FilterOutcome::accepted(steps)
        } else {
            FilterOutcome::rejected(steps, None)
        }
    }
}

/// Why a program failed abnormally.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum VmError {
    /// A packet reference fell outside the packet.
    OutOfBounds,
    /// A pop on an empty stack.
    StackUnderflow,
    /// The instruction budget was exhausted.
    StepBudget,
}

/// The result of running a filter.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct FilterOutcome {
    /// True if the packet matched.
    pub accepted: bool,
    /// Instructions executed (for cost accounting).
    pub steps: usize,
    /// Abnormal termination cause, if any.
    pub error: Option<VmError>,
}

impl FilterOutcome {
    fn accepted(steps: usize) -> FilterOutcome {
        FilterOutcome {
            accepted: true,
            steps,
            error: None,
        }
    }

    fn rejected(steps: usize, error: Option<VmError>) -> FilterOutcome {
        FilterOutcome {
            accepted: false,
            steps,
            error,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn literal_true_accepts() {
        let p = Program::new(vec![Insn::PushLit(1), Insn::Ret]);
        assert!(p.run(&[]).accepted);
    }

    #[test]
    fn literal_false_rejects() {
        let p = Program::new(vec![Insn::PushLit(0), Insn::Ret]);
        assert!(!p.run(&[]).accepted);
    }

    #[test]
    fn word_compare() {
        let packet = [0x12, 0x34, 0x56, 0x78];
        let p = Program::new(vec![
            Insn::PushWord(2),
            Insn::PushLit(0x5678),
            Insn::Op(Binop::Eq),
            Insn::Ret,
        ]);
        assert!(p.run(&packet).accepted);
        let p2 = Program::new(vec![
            Insn::PushWord(0),
            Insn::PushLit(0x9999),
            Insn::Op(Binop::Eq),
            Insn::Ret,
        ]);
        assert!(!p2.run(&packet).accepted);
    }

    #[test]
    fn out_of_bounds_rejects_without_panic() {
        let p = Program::new(vec![Insn::PushWord(100), Insn::Ret]);
        let out = p.run(&[1, 2, 3]);
        assert!(!out.accepted);
        assert_eq!(out.error, Some(VmError::OutOfBounds));
        // Reference straddling the end also rejects.
        let p2 = Program::new(vec![Insn::PushWord(2), Insn::Ret]);
        let out2 = p2.run(&[1, 2, 3]);
        assert!(!out2.accepted);
        assert_eq!(out2.error, Some(VmError::OutOfBounds));
    }

    #[test]
    fn stack_underflow_rejects() {
        let p = Program::new(vec![Insn::Op(Binop::Eq), Insn::Ret]);
        let out = p.run(&[0, 0]);
        assert!(!out.accepted);
        assert_eq!(out.error, Some(VmError::StackUnderflow));
    }

    #[test]
    fn combine_and_short_circuits() {
        // First comparison fails → reject after 3 steps, not 6.
        let packet = [0x00, 0x01, 0x00, 0x02];
        let p = Program::new(vec![
            Insn::PushWord(0),
            Insn::PushLit(9),
            Insn::CombineAnd(Binop::Eq),
            Insn::PushWord(2),
            Insn::PushLit(2),
            Insn::CombineAnd(Binop::Eq),
            Insn::PushLit(1),
            Insn::Ret,
        ]);
        let out = p.run(&packet);
        assert!(!out.accepted);
        assert_eq!(out.steps, 3);
    }

    #[test]
    fn combine_or_short_circuits() {
        let packet = [0x00, 0x07];
        let p = Program::new(vec![
            Insn::PushWord(0),
            Insn::PushLit(7),
            Insn::CombineOr(Binop::Eq),
            Insn::PushLit(0),
            Insn::Ret,
        ]);
        let out = p.run(&packet);
        assert!(out.accepted);
        assert_eq!(out.steps, 3);
    }

    #[test]
    fn arithmetic_ops() {
        let p = Program::new(vec![
            Insn::PushLit(0xFFFF),
            Insn::PushLit(2),
            Insn::Op(Binop::Add),
            Insn::PushLit(1),
            Insn::Op(Binop::Eq),
            Insn::Ret,
        ]);
        assert!(p.run(&[]).accepted, "wrapping add");
        let p2 = Program::new(vec![
            Insn::PushLit(0x0F0F),
            Insn::PushLit(0x00FF),
            Insn::Op(Binop::And),
            Insn::PushLit(0x000F),
            Insn::Op(Binop::Eq),
            Insn::Ret,
        ]);
        assert!(p2.run(&[]).accepted);
    }

    #[test]
    fn unsigned_comparisons() {
        for (op, a, b, expect) in [
            (Binop::Lt, 1u16, 2u16, true),
            (Binop::Lt, 2, 1, false),
            (Binop::Le, 2, 2, true),
            (Binop::Gt, 3, 2, true),
            (Binop::Ge, 2, 3, false),
            (Binop::Ne, 1, 2, true),
        ] {
            let p = Program::new(vec![
                Insn::PushLit(a),
                Insn::PushLit(b),
                Insn::Op(op),
                Insn::Ret,
            ]);
            assert_eq!(p.run(&[]).accepted, expect, "{op:?} {a} {b}");
        }
    }

    #[test]
    fn empty_program_rejects() {
        assert!(!Program::default().run(&[1, 2, 3]).accepted);
    }

    #[test]
    fn implicit_ret_at_end() {
        let p = Program::new(vec![Insn::PushLit(5)]);
        assert!(p.run(&[]).accepted);
    }

    #[test]
    fn step_budget_bounds_execution() {
        let insns = vec![Insn::PushLit(1); MAX_STEPS + 10];
        let p = Program::new(insns);
        let out = p.run(&[]);
        assert!(!out.accepted);
        assert_eq!(out.error, Some(VmError::StepBudget));
    }

    // --- Exact reject semantics at every underflow/overflow/budget
    // edge. These pin the specification the compiled tier must match
    // bit for bit (verdict, steps, and error cause). ---

    #[test]
    fn ret_on_empty_stack_is_a_plain_reject_not_an_underflow() {
        // `Ret` treats a missing top-of-stack as zero: the program
        // rejects *normally* (error None), unlike the pop pairs of the
        // operator instructions.
        let out = Program::new(vec![Insn::Ret]).run(&[1, 2, 3]);
        assert!(!out.accepted);
        assert_eq!(out.steps, 1);
        assert_eq!(out.error, None);
    }

    #[test]
    fn combine_or_underflow_rejects_with_exact_step() {
        // No operands at all.
        let out = Program::new(vec![Insn::CombineOr(Binop::Eq)]).run(&[]);
        assert!(!out.accepted);
        assert_eq!(out.steps, 1);
        assert_eq!(out.error, Some(VmError::StackUnderflow));
        // One operand is still an underflow: the pop pair is atomic.
        let out = Program::new(vec![Insn::PushLit(7), Insn::CombineOr(Binop::Ne)]).run(&[]);
        assert!(!out.accepted);
        assert_eq!(out.steps, 2);
        assert_eq!(out.error, Some(VmError::StackUnderflow));
    }

    #[test]
    fn combine_and_underflow_rejects_with_exact_step() {
        let out = Program::new(vec![Insn::CombineAnd(Binop::Eq)]).run(&[]);
        assert!(!out.accepted);
        assert_eq!(out.steps, 1);
        assert_eq!(out.error, Some(VmError::StackUnderflow));
        let out = Program::new(vec![Insn::PushLit(1), Insn::CombineAnd(Binop::Eq)]).run(&[]);
        assert!(!out.accepted);
        assert_eq!(out.steps, 2);
        assert_eq!(out.error, Some(VmError::StackUnderflow));
    }

    #[test]
    fn op_underflow_with_one_operand() {
        let out = Program::new(vec![Insn::PushLit(5), Insn::Op(Binop::Add)]).run(&[]);
        assert!(!out.accepted);
        assert_eq!(out.steps, 2);
        assert_eq!(out.error, Some(VmError::StackUnderflow));
    }

    #[test]
    fn budget_edge_exactly_max_steps_completes() {
        // A program of exactly MAX_STEPS instructions runs to the end
        // (implicit Ret): the budget rejects the (MAX_STEPS+1)-th
        // instruction, not the MAX_STEPS-th.
        let p = Program::new(vec![Insn::PushLit(1); MAX_STEPS]);
        let out = p.run(&[]);
        assert!(out.accepted);
        assert_eq!(out.steps, MAX_STEPS);
        assert_eq!(out.error, None);
    }

    #[test]
    fn budget_edge_one_past_max_steps_rejects() {
        let p = Program::new(vec![Insn::PushLit(1); MAX_STEPS + 1]);
        let out = p.run(&[]);
        assert!(!out.accepted);
        assert_eq!(out.steps, MAX_STEPS + 1);
        assert_eq!(out.error, Some(VmError::StepBudget));
    }

    #[test]
    fn budget_edge_ret_as_final_allowed_instruction() {
        // Ret at position MAX_STEPS executes; one later it cannot.
        let mut insns = vec![Insn::PushLit(1); MAX_STEPS - 1];
        insns.push(Insn::Ret);
        let out = Program::new(insns).run(&[]);
        assert!(out.accepted);
        assert_eq!(out.steps, MAX_STEPS);
        let mut insns = vec![Insn::PushLit(1); MAX_STEPS];
        insns.push(Insn::Ret);
        let out = Program::new(insns).run(&[]);
        assert!(!out.accepted);
        assert_eq!(out.steps, MAX_STEPS + 1);
        assert_eq!(out.error, Some(VmError::StepBudget));
    }

    #[test]
    fn deepest_possible_stack_never_overflows() {
        // MAX_STEPS - 1 pushes then Ret: the deepest stack any program
        // can build within the budget. No overflow error exists; the
        // compiled tier's fixed array must accommodate exactly this.
        let mut insns = vec![Insn::PushLit(0xABCD); MAX_STEPS - 1];
        insns.push(Insn::Ret);
        let out = Program::new(insns).run(&[]);
        assert!(out.accepted, "top of a deep stack decides the verdict");
        assert_eq!(out.steps, MAX_STEPS);
    }

    #[test]
    fn budget_trips_before_a_late_out_of_bounds_read() {
        // The budget check precedes instruction decode: an OOB read at
        // position MAX_STEPS+1 reports StepBudget, not OutOfBounds.
        let mut insns = vec![Insn::PushLit(1); MAX_STEPS];
        insns.push(Insn::PushWord(9999));
        let out = Program::new(insns).run(&[]);
        assert_eq!(out.error, Some(VmError::StepBudget));
        assert_eq!(out.steps, MAX_STEPS + 1);
    }
}
