//! Selective-copy placement (the Libra direction): a per-flow verdict,
//! taken at filter-install time, deciding whether packet bodies are
//! materialized in the shared receive ring or stay kernel-resident.
//!
//! The paper's NEWAPI always copies the whole frame across the
//! user/kernel boundary. Libra-style selective copying observes that
//! many consumers only inspect headers (monitors, proxies, filters) and
//! lets a per-flow policy keep bodies in kernel memory: the endpoint is
//! handed the headers plus a pull handle, and pays the body copy only
//! if it actually asks for the bytes.
//!
//! The verdict rides on the session filter — the same object that
//! already encodes per-flow identity — so the demux table is the single
//! source of truth for "where do this flow's bytes land". The policy
//! itself is a deterministic function of the [`EndpointSpec`], never of
//! packet contents, so same-seed reruns classify identically.

use crate::compile::EndpointSpec;
use psd_wire::IpProto;

/// Where a flow's packet bodies land on receive.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum CopyPlacement {
    /// The body is copied into the shared ring with the headers (the
    /// paper's NEWAPI behavior; the default everywhere).
    #[default]
    Eager,
    /// The body stays in kernel memory; the endpoint receives the
    /// headers and a pull handle, and the body copy is charged only
    /// when (and if) the application pulls the bytes.
    KernelResident,
}

/// One policy rule: flows matching the protocol (if given) and local
/// port range are kernel-resident.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
struct Rule {
    proto: Option<IpProto>,
    port_lo: u16,
    port_hi: u16,
}

/// The install-time placement policy. Consulted by the kernel whenever
/// a session filter is installed; flows matching no rule are
/// [`CopyPlacement::Eager`], so an empty policy is exactly the
/// pre-existing system.
#[derive(Clone, Debug, Default)]
pub struct PlacementPolicy {
    rules: Vec<Rule>,
}

impl PlacementPolicy {
    /// A policy with no rules: every flow is eager.
    pub fn new() -> PlacementPolicy {
        PlacementPolicy::default()
    }

    /// Adds a rule marking flows whose local port falls in
    /// `lo..=hi` (any protocol) as kernel-resident.
    pub fn resident_ports(mut self, lo: u16, hi: u16) -> PlacementPolicy {
        self.rules.push(Rule {
            proto: None,
            port_lo: lo,
            port_hi: hi,
        });
        self
    }

    /// Adds a rule marking `proto` flows whose local port falls in
    /// `lo..=hi` as kernel-resident.
    pub fn resident_proto_ports(mut self, proto: IpProto, lo: u16, hi: u16) -> PlacementPolicy {
        self.rules.push(Rule {
            proto: Some(proto),
            port_lo: lo,
            port_hi: hi,
        });
        self
    }

    /// True if the policy has no rules (and is therefore inert).
    pub fn is_empty(&self) -> bool {
        self.rules.is_empty()
    }

    /// The placement verdict for a session filter about to be
    /// installed.
    pub fn classify(&self, spec: &EndpointSpec) -> CopyPlacement {
        self.placement_for(spec.proto, spec.local_port)
    }

    /// The placement verdict for a flow identified by protocol and
    /// local port (the same function [`classify`](Self::classify)
    /// applies to a spec; exposed so the library side of the interface
    /// can agree with the kernel about its own sockets).
    pub fn placement_for(&self, proto: IpProto, local_port: u16) -> CopyPlacement {
        for r in &self.rules {
            if r.proto.is_none_or(|p| p == proto) && (r.port_lo..=r.port_hi).contains(&local_port) {
                return CopyPlacement::KernelResident;
            }
        }
        CopyPlacement::Eager
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::Ipv4Addr;

    const B: Ipv4Addr = Ipv4Addr::new(10, 0, 0, 2);

    #[test]
    fn empty_policy_is_eager_everywhere() {
        let p = PlacementPolicy::new();
        assert!(p.is_empty());
        for port in [0u16, 80, 10_000, u16::MAX] {
            assert_eq!(
                p.classify(&EndpointSpec::unconnected(IpProto::Udp, B, port)),
                CopyPlacement::Eager
            );
        }
    }

    #[test]
    fn port_range_rule_selects_resident() {
        let p = PlacementPolicy::new().resident_ports(10_000, 10_999);
        assert_eq!(
            p.classify(&EndpointSpec::unconnected(IpProto::Udp, B, 10_500)),
            CopyPlacement::KernelResident
        );
        assert_eq!(
            p.classify(&EndpointSpec::unconnected(IpProto::Udp, B, 9_999)),
            CopyPlacement::Eager
        );
        assert_eq!(
            p.classify(&EndpointSpec::unconnected(IpProto::Tcp, B, 10_000)),
            CopyPlacement::KernelResident
        );
    }

    #[test]
    fn proto_scoped_rule_ignores_other_protocols() {
        let p = PlacementPolicy::new().resident_proto_ports(IpProto::Udp, 7000, 7000);
        assert_eq!(
            p.placement_for(IpProto::Udp, 7000),
            CopyPlacement::KernelResident
        );
        assert_eq!(p.placement_for(IpProto::Tcp, 7000), CopyPlacement::Eager);
    }
}
