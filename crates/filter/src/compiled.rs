//! The compile tier: lowering filter programs to specialized forms at
//! insert time.
//!
//! The interpreter in [`crate::vm`] is the *specification* of filter
//! semantics; this module is the fast path. Every program is lowered
//! once, when it is installed, to one of two artifacts:
//!
//! - a **fast-path recognizer** for the canonical session-filter shape
//!   emitted by [`crate::compile::compile_endpoint`] — a conjunction of
//!   (possibly masked) 16-bit field compares ending in a constant
//!   verdict. The recognizer executes as a handful of direct slice
//!   reads with no operand stack and no per-run allocation;
//! - a **direct-threaded fallback** for every other program: the
//!   instruction stream pre-decoded into a dense op array executed over
//!   a fixed-size stack, again with no per-run allocation.
//!
//! Both artifacts reproduce the interpreter's observable behavior
//! *exactly* — the accept/reject verdict, the executed-instruction
//! count (`steps`, which the kernel charges to virtual time and the
//! census), and the abnormal-termination cause (out-of-bounds reads,
//! stack underflow, budget exhaustion). `tests/filter_equivalence.rs`
//! enforces this with seeded differential fuzzing; any divergence is a
//! bug in this module, never in the interpreter.

use crate::vm::{Binop, FilterOutcome, Insn, Program, VmError, MAX_STEPS};

/// Which execution tier a [`crate::demux::DemuxTable`] dispatches
/// through.
///
/// The engines are observationally equivalent — identical verdicts,
/// identical step counts, identical error causes — so switching engine
/// never changes simulated output; it only changes how much host
/// wall-clock time classification costs (`filterbench` measures the
/// difference).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum FilterEngine {
    /// Run programs on the stack-machine interpreter (the spec).
    #[default]
    Interpret,
    /// Run programs through their compiled artifacts.
    Compiled,
}

/// One lowered field comparison of the fast-path recognizer:
/// `word(off) & mask == value`, else the filter rejects.
#[derive(Clone, Copy, Debug)]
struct FieldCheck {
    /// Byte offset of the big-endian word in the packet.
    off: usize,
    /// Mask applied before comparing (`0xFFFF` for unmasked checks).
    mask: u16,
    /// Required value after masking.
    value: u16,
    /// Instructions the interpreter executes before this check's group
    /// starts (for exact `steps` reporting).
    steps_before: u32,
    /// Instructions in this check's group: 3 unmasked, 5 masked.
    steps_len: u32,
}

/// A pre-decoded instruction for the direct-threaded fallback. Mirrors
/// [`Insn`] with packet offsets widened to `usize` at compile time.
#[derive(Clone, Copy, Debug)]
enum ThreadedOp {
    Lit(u16),
    Word(usize),
    Bin(Binop),
    COr(Binop),
    CAnd(Binop),
    Ret,
}

#[derive(Debug)]
enum Tier {
    /// Conjunctive field-compare chain with a constant verdict.
    Recognizer {
        checks: Box<[FieldCheck]>,
        /// Verdict when every check passes (the lowered tail's literal).
        tail_accept: bool,
        /// Instructions in the whole program (the `steps` of a full
        /// pass, literal and `Ret` included).
        total_steps: usize,
    },
    /// Pre-decoded general program.
    Threaded { ops: Box<[ThreadedOp]> },
}

/// A filter program lowered at insert time. See the module docs for the
/// equivalence contract.
#[derive(Debug)]
pub struct CompiledFilter {
    tier: Tier,
}

impl CompiledFilter {
    /// Lowers a program. Never fails: programs outside the recognizable
    /// shape fall back to the direct-threaded tier.
    pub fn compile(program: &Program) -> CompiledFilter {
        if let Some(tier) = try_lower_recognizer(program) {
            return CompiledFilter { tier };
        }
        let ops = program
            .insns
            .iter()
            .map(|insn| match *insn {
                Insn::PushLit(v) => ThreadedOp::Lit(v),
                Insn::PushWord(off) => ThreadedOp::Word(usize::from(off)),
                Insn::Op(op) => ThreadedOp::Bin(op),
                Insn::CombineOr(op) => ThreadedOp::COr(op),
                Insn::CombineAnd(op) => ThreadedOp::CAnd(op),
                Insn::Ret => ThreadedOp::Ret,
            })
            .collect();
        CompiledFilter {
            tier: Tier::Threaded { ops },
        }
    }

    /// True when the program lowered to the fast-path recognizer (the
    /// canonical session-filter shape).
    pub fn is_fast_path(&self) -> bool {
        matches!(self.tier, Tier::Recognizer { .. })
    }

    /// Runs the compiled artifact against a packet. Returns exactly
    /// what [`Program::run`] returns on the same inputs.
    pub fn run(&self, packet: &[u8]) -> FilterOutcome {
        match &self.tier {
            Tier::Recognizer {
                checks,
                tail_accept,
                total_steps,
            } => run_recognizer(checks, *tail_accept, *total_steps, packet),
            Tier::Threaded { ops } => run_threaded(ops, packet),
        }
    }
}

fn accepted(steps: usize) -> FilterOutcome {
    FilterOutcome {
        accepted: true,
        steps,
        error: None,
    }
}

fn rejected(steps: usize, error: Option<VmError>) -> FilterOutcome {
    FilterOutcome {
        accepted: false,
        steps,
        error,
    }
}

/// Attempts the fast-path lowering: a sequence of
/// `PushWord off; PushLit v; CombineAnd(Eq)` or
/// `PushWord off; PushLit m; Op(And); PushLit v; CombineAnd(Eq)`
/// groups terminated by `PushLit k; Ret`. This is precisely the shape
/// [`crate::compile::compile_endpoint`] emits. Programs longer than
/// [`MAX_STEPS`] are never lowered this way, so the recognizer can
/// ignore the step budget (a conjunctive chain executes each
/// instruction at most once, in order).
fn try_lower_recognizer(program: &Program) -> Option<Tier> {
    let insns = &program.insns;
    if insns.len() > MAX_STEPS {
        return None;
    }
    let mut checks = Vec::new();
    let mut i = 0usize;
    loop {
        match insns[i..] {
            [Insn::PushWord(off), Insn::PushLit(v), Insn::CombineAnd(Binop::Eq), ..] => {
                checks.push(FieldCheck {
                    off: usize::from(off),
                    mask: 0xFFFF,
                    value: v,
                    steps_before: i as u32,
                    steps_len: 3,
                });
                i += 3;
            }
            [Insn::PushWord(off), Insn::PushLit(m), Insn::Op(Binop::And), Insn::PushLit(v), Insn::CombineAnd(Binop::Eq), ..] =>
            {
                checks.push(FieldCheck {
                    off: usize::from(off),
                    mask: m,
                    value: v,
                    steps_before: i as u32,
                    steps_len: 5,
                });
                i += 5;
            }
            [Insn::PushLit(k), Insn::Ret] => {
                return Some(Tier::Recognizer {
                    checks: checks.into_boxed_slice(),
                    tail_accept: k != 0,
                    total_steps: i + 2,
                });
            }
            _ => return None,
        }
    }
}

/// Executes a lowered conjunctive chain. Steps reporting matches the
/// interpreter instruction for instruction: an out-of-bounds packet
/// read stops at the group's `PushWord` (one instruction in), a failed
/// compare stops at the group's `CombineAnd` (the whole group), and a
/// full pass executes every instruction including the verdict literal
/// and `Ret`.
fn run_recognizer(
    checks: &[FieldCheck],
    tail_accept: bool,
    total_steps: usize,
    packet: &[u8],
) -> FilterOutcome {
    for c in checks {
        let Some(hi) = packet.get(c.off) else {
            return rejected(c.steps_before as usize + 1, Some(VmError::OutOfBounds));
        };
        let Some(lo) = packet.get(c.off + 1) else {
            return rejected(c.steps_before as usize + 1, Some(VmError::OutOfBounds));
        };
        let word = u16::from_be_bytes([*hi, *lo]);
        if word & c.mask != c.value {
            return rejected((c.steps_before + c.steps_len) as usize, None);
        }
    }
    if tail_accept {
        accepted(total_steps)
    } else {
        rejected(total_steps, None)
    }
}

/// Executes a pre-decoded program over a fixed-size operand stack. The
/// loop structure is a transliteration of [`Program::run`]; the wins
/// are the dense op array, the pre-widened offsets, and the absence of
/// the per-run heap allocation for the stack. The stack cannot
/// overflow: each instruction pushes at most one word and at most
/// [`MAX_STEPS`] instructions execute.
fn run_threaded(ops: &[ThreadedOp], packet: &[u8]) -> FilterOutcome {
    let mut stack = [0u16; MAX_STEPS];
    let mut sp = 0usize;
    let mut steps = 0usize;
    for op in ops {
        steps += 1;
        if steps > MAX_STEPS {
            return rejected(steps, Some(VmError::StepBudget));
        }
        match *op {
            ThreadedOp::Lit(v) => {
                stack[sp] = v;
                sp += 1;
            }
            ThreadedOp::Word(off) => {
                if off + 2 > packet.len() {
                    return rejected(steps, Some(VmError::OutOfBounds));
                }
                stack[sp] = u16::from_be_bytes([packet[off], packet[off + 1]]);
                sp += 1;
            }
            ThreadedOp::Bin(op) => {
                if sp < 2 {
                    return rejected(steps, Some(VmError::StackUnderflow));
                }
                sp -= 1;
                stack[sp - 1] = op.apply(stack[sp - 1], stack[sp]);
            }
            ThreadedOp::COr(op) => {
                if sp < 2 {
                    return rejected(steps, Some(VmError::StackUnderflow));
                }
                sp -= 2;
                if op.apply(stack[sp], stack[sp + 1]) != 0 {
                    return accepted(steps);
                }
            }
            ThreadedOp::CAnd(op) => {
                if sp < 2 {
                    return rejected(steps, Some(VmError::StackUnderflow));
                }
                sp -= 2;
                if op.apply(stack[sp], stack[sp + 1]) == 0 {
                    return rejected(steps, None);
                }
            }
            ThreadedOp::Ret => {
                let accept = sp > 0 && stack[sp - 1] != 0;
                return if accept {
                    accepted(steps)
                } else {
                    rejected(steps, None)
                };
            }
        }
    }
    let accept = sp > 0 && stack[sp - 1] != 0;
    if accept {
        accepted(steps)
    } else {
        rejected(steps, None)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compile::{catch_all_ip, compile_endpoint, EndpointSpec};
    use psd_wire::IpProto;
    use std::net::Ipv4Addr;

    fn outcomes_match(p: &Program, packet: &[u8]) {
        let interpreted = p.run(packet);
        let compiled = CompiledFilter::compile(p).run(packet);
        assert_eq!(
            interpreted, compiled,
            "tiers diverge on {p:?} over {packet:02x?}"
        );
    }

    #[test]
    fn session_filters_lower_to_the_fast_path() {
        let spec = EndpointSpec::connected(
            IpProto::Udp,
            Ipv4Addr::new(10, 0, 0, 2),
            7000,
            Ipv4Addr::new(10, 0, 0, 1),
            1234,
        );
        let p = compile_endpoint(&spec);
        assert!(CompiledFilter::compile(&p).is_fast_path());
        let wild = compile_endpoint(&EndpointSpec::unconnected(
            IpProto::Tcp,
            Ipv4Addr::LOCALHOST,
            80,
        ));
        assert!(CompiledFilter::compile(&wild).is_fast_path());
    }

    #[test]
    fn catch_all_falls_back_to_threaded() {
        assert!(!CompiledFilter::compile(&catch_all_ip()).is_fast_path());
    }

    #[test]
    fn recognizer_reports_interpreter_steps_on_every_path() {
        let spec = EndpointSpec::unconnected(IpProto::Udp, Ipv4Addr::new(10, 0, 0, 2), 7000);
        let p = compile_endpoint(&spec);
        // Accept, mid-chain mismatch, OOB at various truncations.
        let mut frame = vec![0u8; 64];
        frame[12] = 0x08; // IPv4 ethertype
        frame[14] = 0x45;
        frame[23] = 17; // UDP
        frame[30..34].copy_from_slice(&[10, 0, 0, 2]);
        frame[36..38].copy_from_slice(&7000u16.to_be_bytes());
        outcomes_match(&p, &frame);
        frame[37] = 0; // wrong port
        outcomes_match(&p, &frame);
        frame[12] = 0; // wrong ethertype: first group fails
        outcomes_match(&p, &frame);
        for len in 0..40 {
            outcomes_match(&p, &vec![0u8; len]);
        }
    }

    #[test]
    fn threaded_matches_interpreter_on_edge_programs() {
        let programs = [
            Program::default(),
            Program::new(vec![Insn::Ret]),
            Program::new(vec![Insn::Op(Binop::Eq)]),
            Program::new(vec![Insn::CombineOr(Binop::Lt)]),
            Program::new(vec![Insn::PushLit(1), Insn::CombineAnd(Binop::Eq)]),
            Program::new(vec![Insn::PushLit(1); MAX_STEPS + 5]),
            Program::new(vec![Insn::PushWord(0xFFFF), Insn::Ret]),
            catch_all_ip(),
        ];
        for p in &programs {
            for packet in [&[][..], &[1, 2, 3], &[0u8; 64]] {
                outcomes_match(p, packet);
            }
        }
    }

    #[test]
    fn long_conjunctive_chains_are_not_lowered_past_the_budget() {
        // A recognizer-shaped program longer than the budget must take
        // the threaded tier so budget exhaustion still reproduces.
        let mut insns = Vec::new();
        for _ in 0..(MAX_STEPS / 3 + 1) {
            insns.push(Insn::PushWord(0));
            insns.push(Insn::PushLit(0));
            insns.push(Insn::CombineAnd(Binop::Eq));
        }
        insns.push(Insn::PushLit(1));
        insns.push(Insn::Ret);
        let p = Program::new(insns);
        let c = CompiledFilter::compile(&p);
        assert!(!c.is_fast_path());
        outcomes_match(&p, &[0u8; 4]);
        outcomes_match(&p, &[1u8; 4]);
    }

    #[test]
    fn constant_false_tail_is_recognized() {
        // `PushLit 0; Ret` after the checks: always rejects, but only
        // after charging the whole chain (catch-alls end this way).
        let p = Program::new(vec![
            Insn::PushWord(0),
            Insn::PushLit(0x0102),
            Insn::CombineAnd(Binop::Eq),
            Insn::PushLit(0),
            Insn::Ret,
        ]);
        let c = CompiledFilter::compile(&p);
        assert!(c.is_fast_path());
        outcomes_match(&p, &[1, 2, 3, 4]);
        outcomes_match(&p, &[9, 9]);
    }
}
