//! Compiling endpoint specifications to filter programs.
//!
//! The operating system server installs one program per network session
//! (§3.1: "The operating system creates and installs a new packet filter
//! for each network session"). A program accepts exactly the unfragmented
//! IPv4 packets of the session's protocol addressed to the session's
//! local endpoint — and, for connected sessions, from its remote
//! endpoint. Fragmented packets and packets with IP options never match
//! a session filter; they fall through to the operating system's
//! catch-all, which owns reassembly and the exceptional cases.

use crate::vm::{Binop, Insn, Program};
use psd_wire::IpProto;
use std::net::Ipv4Addr;

// Byte offsets within an Ethernet frame, assuming a 20-byte IP header
// (the version/IHL check guarantees this before any later field is
// consulted).
const OFF_ETHERTYPE: u16 = 12;
const OFF_VER_IHL: u16 = 14;
const OFF_FRAG: u16 = 20;
const OFF_TTL_PROTO: u16 = 22;
const OFF_SRC_IP: u16 = 26;
const OFF_DST_IP: u16 = 30;
const OFF_SRC_PORT: u16 = 34;
const OFF_DST_PORT: u16 = 36;

/// A network-session endpoint, the unit of packet-filter installation.
///
/// Matches the paper's session 3-tuple: protocol, local endpoint, and
/// (for connected sessions) remote endpoint.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct EndpointSpec {
    /// Transport protocol (TCP or UDP).
    pub proto: IpProto,
    /// Local IP address packets must be addressed to.
    pub local_ip: Ipv4Addr,
    /// Local port packets must be addressed to.
    pub local_port: u16,
    /// Remote endpoint, present for connected sessions. A connected
    /// filter is more specific and takes precedence over a wildcard one.
    pub remote: Option<(Ipv4Addr, u16)>,
}

impl EndpointSpec {
    /// A wildcard (unconnected) endpoint.
    pub fn unconnected(proto: IpProto, local_ip: Ipv4Addr, local_port: u16) -> EndpointSpec {
        EndpointSpec {
            proto,
            local_ip,
            local_port,
            remote: None,
        }
    }

    /// A connected endpoint.
    pub fn connected(
        proto: IpProto,
        local_ip: Ipv4Addr,
        local_port: u16,
        remote_ip: Ipv4Addr,
        remote_port: u16,
    ) -> EndpointSpec {
        EndpointSpec {
            proto,
            local_ip,
            local_port,
            remote: Some((remote_ip, remote_port)),
        }
    }

    /// Specificity for match ordering: connected filters beat wildcards.
    pub fn specificity(&self) -> u8 {
        if self.remote.is_some() {
            2
        } else {
            1
        }
    }
}

fn check_word(insns: &mut Vec<Insn>, off: u16, value: u16) {
    insns.push(Insn::PushWord(off));
    insns.push(Insn::PushLit(value));
    insns.push(Insn::CombineAnd(Binop::Eq));
}

fn check_word_masked(insns: &mut Vec<Insn>, off: u16, mask: u16, value: u16) {
    insns.push(Insn::PushWord(off));
    insns.push(Insn::PushLit(mask));
    insns.push(Insn::Op(Binop::And));
    insns.push(Insn::PushLit(value));
    insns.push(Insn::CombineAnd(Binop::Eq));
}

fn check_ip(insns: &mut Vec<Insn>, off: u16, addr: Ipv4Addr) {
    let v = u32::from(addr);
    check_word(insns, off, (v >> 16) as u16);
    check_word(insns, off + 2, (v & 0xFFFF) as u16);
}

/// The shared prefix every session filter begins with: IPv4, no options,
/// not a fragment. The MPF demux strategy runs this once per packet.
pub fn session_prefix() -> Vec<Insn> {
    let mut insns = Vec::new();
    // Ethertype is IPv4.
    check_word(&mut insns, OFF_ETHERTYPE, 0x0800);
    // Version 4, IHL 5 (no options); the TOS byte is masked off.
    check_word_masked(&mut insns, OFF_VER_IHL, 0xFF00, 0x4500);
    // Not a fragment: MF clear and offset zero.
    check_word_masked(&mut insns, OFF_FRAG, 0x3FFF, 0x0000);
    insns
}

/// Compiles an endpoint specification into a filter program.
pub fn compile_endpoint(spec: &EndpointSpec) -> Program {
    let mut insns = session_prefix();
    // Transport protocol (low byte of the TTL/protocol word).
    check_word_masked(
        &mut insns,
        OFF_TTL_PROTO,
        0x00FF,
        u16::from(spec.proto.to_u8()),
    );
    // Local (destination) endpoint.
    check_ip(&mut insns, OFF_DST_IP, spec.local_ip);
    check_word(&mut insns, OFF_DST_PORT, spec.local_port);
    // Remote (source) endpoint for connected sessions.
    if let Some((rip, rport)) = spec.remote {
        check_ip(&mut insns, OFF_SRC_IP, rip);
        check_word(&mut insns, OFF_SRC_PORT, rport);
    }
    insns.push(Insn::PushLit(1));
    insns.push(Insn::Ret);
    Program::new(insns)
}

/// The operating system's catch-all: accepts all IPv4 and ARP traffic.
/// Installed for the server, which handles ARP, fragments, ICMP and any
/// session not migrated to an application.
pub fn catch_all_ip() -> Program {
    Program::new(vec![
        Insn::PushWord(OFF_ETHERTYPE),
        Insn::PushLit(0x0800),
        Insn::CombineOr(Binop::Eq),
        Insn::PushWord(OFF_ETHERTYPE),
        Insn::PushLit(0x0806),
        Insn::CombineOr(Binop::Eq),
        Insn::PushLit(0),
        Insn::Ret,
    ])
}

#[cfg(test)]
mod tests {
    use super::*;
    use psd_wire::{EtherAddr, EtherType, EthernetHeader, Ipv4Header, UdpHeader, UDP_HDR_LEN};

    fn udp_frame(src: (Ipv4Addr, u16), dst: (Ipv4Addr, u16), payload: &[u8]) -> Vec<u8> {
        let ip = Ipv4Header::new(src.0, dst.0, IpProto::Udp, UDP_HDR_LEN + payload.len());
        let udp = UdpHeader::new(src.1, dst.1, payload.len());
        let eth = EthernetHeader {
            dst: EtherAddr::local(2),
            src: EtherAddr::local(1),
            ethertype: EtherType::Ipv4,
        };
        let mut f = eth.encode().to_vec();
        f.extend_from_slice(&ip.encode());
        f.extend_from_slice(&udp.encode());
        f.extend_from_slice(payload);
        f
    }

    const A: Ipv4Addr = Ipv4Addr::new(10, 0, 0, 1);
    const B: Ipv4Addr = Ipv4Addr::new(10, 0, 0, 2);
    const C: Ipv4Addr = Ipv4Addr::new(10, 0, 0, 3);

    #[test]
    fn wildcard_matches_any_sender() {
        let p = compile_endpoint(&EndpointSpec::unconnected(IpProto::Udp, B, 7000));
        assert!(p.run(&udp_frame((A, 1234), (B, 7000), b"x")).accepted);
        assert!(p.run(&udp_frame((C, 9), (B, 7000), b"x")).accepted);
    }

    #[test]
    fn wildcard_rejects_wrong_port_or_ip() {
        let p = compile_endpoint(&EndpointSpec::unconnected(IpProto::Udp, B, 7000));
        assert!(!p.run(&udp_frame((A, 1234), (B, 7001), b"x")).accepted);
        assert!(!p.run(&udp_frame((A, 1234), (C, 7000), b"x")).accepted);
    }

    #[test]
    fn connected_matches_only_remote() {
        let p = compile_endpoint(&EndpointSpec::connected(IpProto::Udp, B, 7000, A, 1234));
        assert!(p.run(&udp_frame((A, 1234), (B, 7000), b"x")).accepted);
        assert!(!p.run(&udp_frame((A, 4321), (B, 7000), b"x")).accepted);
        assert!(!p.run(&udp_frame((C, 1234), (B, 7000), b"x")).accepted);
    }

    #[test]
    fn wrong_protocol_rejected() {
        let p = compile_endpoint(&EndpointSpec::unconnected(IpProto::Tcp, B, 7000));
        assert!(!p.run(&udp_frame((A, 1), (B, 7000), b"x")).accepted);
    }

    #[test]
    fn fragments_never_match_session_filters() {
        let mut ip = Ipv4Header::new(A, B, IpProto::Udp, 100);
        ip.more_fragments = true;
        let eth = EthernetHeader {
            dst: EtherAddr::local(2),
            src: EtherAddr::local(1),
            ethertype: EtherType::Ipv4,
        };
        let mut f = eth.encode().to_vec();
        f.extend_from_slice(&ip.encode());
        f.extend_from_slice(&[0u8; 100]);
        let p = compile_endpoint(&EndpointSpec::unconnected(IpProto::Udp, B, 0));
        assert!(!p.run(&f).accepted);
        // But the catch-all takes it.
        assert!(catch_all_ip().run(&f).accepted);
    }

    #[test]
    fn catch_all_accepts_arp() {
        let eth = EthernetHeader {
            dst: EtherAddr::BROADCAST,
            src: EtherAddr::local(1),
            ethertype: EtherType::Arp,
        };
        let mut f = eth.encode().to_vec();
        f.extend_from_slice(&[0u8; 28]);
        assert!(catch_all_ip().run(&f).accepted);
    }

    #[test]
    fn catch_all_rejects_unknown_ethertype() {
        let eth = EthernetHeader {
            dst: EtherAddr::BROADCAST,
            src: EtherAddr::local(1),
            ethertype: EtherType::Other(0x1234),
        };
        let mut f = eth.encode().to_vec();
        f.extend_from_slice(&[0u8; 28]);
        assert!(!catch_all_ip().run(&f).accepted);
    }

    #[test]
    fn short_frames_rejected_safely() {
        let p = compile_endpoint(&EndpointSpec::unconnected(IpProto::Udp, B, 7000));
        for len in 0..40 {
            let frame = vec![0u8; len];
            assert!(!p.run(&frame).accepted, "len {len}");
        }
    }

    #[test]
    fn connected_is_more_specific() {
        let wild = EndpointSpec::unconnected(IpProto::Udp, B, 1);
        let conn = EndpointSpec::connected(IpProto::Udp, B, 1, A, 2);
        assert!(conn.specificity() > wild.specificity());
    }

    #[test]
    fn tos_bits_do_not_defeat_filter() {
        // A frame with nonzero TOS must still match.
        let mut ip = Ipv4Header::new(A, B, IpProto::Udp, UDP_HDR_LEN + 1);
        ip.tos = 0x10;
        let udp = UdpHeader::new(1234, 7000, 1);
        let eth = EthernetHeader {
            dst: EtherAddr::local(2),
            src: EtherAddr::local(1),
            ethertype: EtherType::Ipv4,
        };
        let mut f = eth.encode().to_vec();
        f.extend_from_slice(&ip.encode());
        f.extend_from_slice(&udp.encode());
        f.push(0);
        let p = compile_endpoint(&EndpointSpec::unconnected(IpProto::Udp, B, 7000));
        assert!(p.run(&f).accepted);
    }
}
