//! The benchmark harness: the paper's two microbenchmarks and the
//! table generators.
//!
//! - [`ttcp`]: "a memory-to-memory throughput benchmark for TCP that
//!   transfers 16 MB of data from one host to another".
//! - [`protolat`]: "a program that measures protocol round trip latency
//!   for UDP and TCP".
//!
//! Both are written event-driven against the [`psd_core::AppLib`]
//! proxy interface — the same socket API every configuration exports —
//! so a single workload implementation measures all eight systems.

pub mod benchdiff;
pub mod filterbench;
pub mod json;
pub mod observe;
pub mod selfbench;
pub mod table6;
pub mod tables;
pub mod workload;
pub mod workloads;

pub use workload::{
    session_scaling, session_scaling_observed, session_scaling_with, ScaleReport, WorkloadSpec,
};
pub use workloads::{protolat, ttcp, ApiStyle, ProtolatResult, TtcpResult};
