//! The simulator self-benchmark: how fast is the harness itself?
//!
//! The paper's scaling argument is asymptotic, so the reproduction's
//! reach is capped by the *simulator's* wall-clock speed, not the
//! modeled systems'. This module measures that speed on two axes and
//! emits the `BENCH_*.json` artifact the CI regression gate pins:
//!
//! 1. **Engine microbenchmark.** N resident keepalive timers with
//!    cancel/reschedule churn — the queue access pattern a large
//!    session count produces — run on both the timer-wheel engine
//!    ([`psd_sim::Sim`]) and the retained pre-rework heap engine
//!    ([`psd_sim::BaselineQueue`]), same schedule, same process. The
//!    wheel:baseline events/sec ratio is the honest speedup number.
//! 2. **Packet stage.** The Table 5 session-scaling workload across the
//!    five DECstation placements at N ∈ {4k, 64k, 256k} sessions.
//!    Real sockets are bounded by the 16-bit port space, so counts
//!    beyond [`MAX_SOCKET_SESSIONS`] are carried by timer-only ballast
//!    sessions (see [`WorkloadSpec::ballast_timers`]); the reported
//!    events/sec and ns per simulated packet measure the whole
//!    simulator under that load. Peak RSS comes from `VmHWM` in
//!    `/proc/self/status` (a process-lifetime high-water mark, so rows
//!    are measured in increasing-N order and later rows include earlier
//!    peaks).
//!
//! Every count in the artifact is deterministic for a given seed; only
//! the `wall_ms` / `*_per_sec` / `ns_per_*` / RSS fields depend on the
//! machine. `--quick` shrinks the matrix for CI while keeping the
//! 64k-timer engine row the regression gate compares.

use std::cell::RefCell;
use std::rc::Rc;
use std::time::Instant;

use psd_filter::DemuxStrategy;
use psd_sim::{BaselineHandle, BaselineQueue, Platform, Sim, SimHandle, SimTime};
use psd_systems::SystemConfig;

use crate::json::{normalize_volatile, validate, Json};
use crate::workload::{session_scaling, WorkloadSpec};

/// Sessions backed by real sockets; the rest of a row's session count
/// is timer ballast. Bounded well inside the 16-bit receiver port space
/// and the quadratic-setup regime.
pub const MAX_SOCKET_SESSIONS: usize = 4096;

/// Seed for every selfbench run (engine schedules and workloads).
pub const SEED: u64 = 42;

/// JSON members that legitimately differ between same-seed runs.
pub const VOLATILE_FIELDS: &[&str] = &[
    "wall_ms",
    "events_per_sec",
    "ns_per_event",
    "ns_per_sim_packet",
    "speedup",
    "peak_rss_kb",
    "rss_kb",
];

/// The five DECstation placements of the paper's Table 5 matrix.
pub const PLACEMENTS: [SystemConfig; 5] = [
    SystemConfig::Mach25InKernel,
    SystemConfig::UxServer,
    SystemConfig::LibraryIpc,
    SystemConfig::LibraryShm,
    SystemConfig::LibraryShmIpf,
];

/// One engine-microbenchmark measurement.
#[derive(Clone, Copy, Debug)]
pub struct EngineRow {
    /// Resident timers.
    pub timers: usize,
    /// Events executed (deterministic).
    pub events: u64,
    /// Wall-clock nanoseconds for the measured run.
    pub wall_ns: u128,
}

impl EngineRow {
    /// Events per wall-clock second.
    pub fn events_per_sec(&self) -> f64 {
        self.events as f64 / (self.wall_ns as f64 / 1e9)
    }
}

/// One packet-stage measurement.
#[derive(Clone, Debug)]
pub struct PacketRow {
    /// The placement under test.
    pub config: SystemConfig,
    /// Total sessions modeled (sockets + ballast).
    pub sessions: usize,
    /// Sessions backed by real sockets.
    pub socket_sessions: usize,
    /// Timer-only ballast sessions.
    pub ballast: usize,
    /// Frames the receiving kernel demultiplexed (deterministic).
    pub packets_rx: u64,
    /// Simulator events executed in the burst phase (deterministic).
    pub events: u64,
    /// Wall-clock nanoseconds of the burst phase.
    pub wall_ns: u128,
    /// `VmHWM` after the run, in KB (0 if unreadable).
    pub peak_rss_kb: u64,
    /// `VmRSS` after the run, in KB (0 if unreadable).
    pub rss_kb: u64,
}

impl PacketRow {
    /// Burst events per wall-clock second.
    pub fn events_per_sec(&self) -> f64 {
        self.events as f64 / (self.wall_ns as f64 / 1e9)
    }

    /// Wall-clock nanoseconds per simulated (received) packet.
    pub fn ns_per_sim_packet(&self) -> f64 {
        self.wall_ns as f64 / self.packets_rx as f64
    }
}

/// A complete self-benchmark result.
#[derive(Clone, Debug)]
pub struct SelfBench {
    /// True when run with the reduced `--quick` matrix.
    pub quick: bool,
    /// Heap-engine rows, by timer count.
    pub baseline: Vec<EngineRow>,
    /// Wheel-engine rows, by timer count.
    pub wheel: Vec<EngineRow>,
    /// Packet-stage rows in measurement order (increasing N).
    pub packet: Vec<PacketRow>,
}

/// Reads a `VmHWM`/`VmRSS`-style field from `/proc/self/status` in KB.
fn proc_status_kb(field: &str) -> u64 {
    let Ok(text) = std::fs::read_to_string("/proc/self/status") else {
        return 0;
    };
    for line in text.lines() {
        if let Some(rest) = line.strip_prefix(field) {
            let rest = rest.trim_start_matches(':').trim();
            if let Some(kb) = rest.strip_suffix(" kB") {
                return kb.trim().parse().unwrap_or(0);
            }
        }
    }
    0
}

/// The timer period for ballast slot `i` of `n`: 1–250 ms, spread
/// deterministically so expiries land across wheel levels.
fn period_ns(i: usize) -> u64 {
    1_000_000 + (i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15) % 249_000_000
}

/// Runs the engine microbenchmark on the timer-wheel engine: `n`
/// resident timers; each firing re-arms itself and *resets* a
/// pseudo-random neighbor's timer — cancel plus re-arm, the operation a
/// TCP stack performs on its retransmit timer for every ACK it receives
/// (the workload hierarchical wheels were designed for). Executes
/// `events` events.
pub fn engine_micro_wheel(n: usize, events: u64) -> EngineRow {
    let mut sim = Sim::new(SEED);
    let handles: Rc<RefCell<Vec<SimHandle>>> = Rc::new(RefCell::new(Vec::with_capacity(n)));

    fn arm(sim: &mut Sim, i: usize, n: usize, handles: &Rc<RefCell<Vec<SimHandle>>>) -> SimHandle {
        let handles = handles.clone();
        sim.after(SimTime::from_nanos(period_ns(i)), move |s| {
            let fired = s.executed();
            let h = arm(s, i, n, &handles);
            handles.borrow_mut()[i] = h;
            // Reset a neighbor's timer, as an ACK resets retransmit.
            let j = (i.wrapping_mul(2_654_435_761) ^ fired as usize) % n;
            let old = handles.borrow()[j];
            s.cancel(old);
            let h = arm(s, j, n, &handles);
            handles.borrow_mut()[j] = h;
        })
    }

    for i in 0..n {
        let h = arm(&mut sim, i, n, &handles);
        handles.borrow_mut().push(h);
    }
    let t0 = Instant::now();
    let ran = sim.run(events);
    let wall_ns = t0.elapsed().as_nanos();
    assert_eq!(ran, events, "self-rearming timers cannot run dry");
    EngineRow {
        timers: n,
        events: ran,
        wall_ns,
    }
}

/// The identical microbenchmark on the retained pre-rework heap engine.
pub fn engine_micro_baseline(n: usize, events: u64) -> EngineRow {
    let mut q = BaselineQueue::new();
    let handles: Rc<RefCell<Vec<BaselineHandle>>> = Rc::new(RefCell::new(Vec::with_capacity(n)));

    fn arm(
        q: &mut BaselineQueue,
        i: usize,
        n: usize,
        handles: &Rc<RefCell<Vec<BaselineHandle>>>,
    ) -> BaselineHandle {
        let handles = handles.clone();
        q.after(SimTime::from_nanos(period_ns(i)), move |s| {
            let fired = s.executed();
            let h = arm(s, i, n, &handles);
            handles.borrow_mut()[i] = h;
            let j = (i.wrapping_mul(2_654_435_761) ^ fired as usize) % n;
            let old = handles.borrow()[j];
            s.cancel(old);
            let h = arm(s, j, n, &handles);
            handles.borrow_mut()[j] = h;
        })
    }

    for i in 0..n {
        let h = arm(&mut q, i, n, &handles);
        handles.borrow_mut().push(h);
    }
    let t0 = Instant::now();
    let ran = q.run(events);
    let wall_ns = t0.elapsed().as_nanos();
    assert_eq!(ran, events, "self-rearming timers cannot run dry");
    EngineRow {
        timers: n,
        events: ran,
        wall_ns,
    }
}

/// Runs one packet-stage row.
pub fn packet_row(config: SystemConfig, sessions: usize, packets: usize) -> PacketRow {
    let socket_sessions = sessions.min(MAX_SOCKET_SESSIONS);
    let ballast = sessions - socket_sessions;
    let spec = WorkloadSpec::at_scale(socket_sessions, packets, SEED).with_ballast(ballast);
    let report = session_scaling(
        config,
        Platform::DecStation5000_200,
        DemuxStrategy::Mpf,
        &spec,
        false,
    );
    PacketRow {
        config,
        sessions,
        socket_sessions,
        ballast,
        packets_rx: report.packets_rx,
        events: report.events,
        wall_ns: report.wall_burst.as_nanos(),
        peak_rss_kb: proc_status_kb("VmHWM"),
        rss_kb: proc_status_kb("VmRSS"),
    }
}

/// Runs the full (or `--quick`) self-benchmark.
pub fn run(quick: bool) -> SelfBench {
    // 65_536 must appear in both modes: it is the row the CI gate and
    // the ≥3× acceptance criterion read.
    let timer_counts: &[usize] = if quick {
        &[65_536]
    } else {
        &[4_096, 65_536, 262_144]
    };
    let session_counts: &[usize] = if quick {
        &[4_096]
    } else {
        &[4_096, 65_536, 262_144]
    };
    let packets = if quick { 64 } else { 512 };
    let events_per_timer: u64 = if quick { 2 } else { 4 };

    let mut baseline = Vec::new();
    let mut wheel = Vec::new();
    for &n in timer_counts {
        let events = (n as u64) * events_per_timer;
        baseline.push(engine_micro_baseline(n, events));
        wheel.push(engine_micro_wheel(n, events));
    }

    let mut packet = Vec::new();
    let placements: &[SystemConfig] = if quick { &PLACEMENTS[..2] } else { &PLACEMENTS };
    // Increasing N so each row's VmHWM reflects its own high-water mark
    // as closely as a monotonic counter allows.
    for &sessions in session_counts {
        for &config in placements {
            packet.push(packet_row(config, sessions, packets));
        }
    }

    SelfBench {
        quick,
        baseline,
        wheel,
        packet,
    }
}

impl SelfBench {
    /// The wheel:baseline events/sec ratio at `timers`, if both rows
    /// exist.
    pub fn speedup_at(&self, timers: usize) -> Option<f64> {
        let w = self.wheel.iter().find(|r| r.timers == timers)?;
        let b = self.baseline.iter().find(|r| r.timers == timers)?;
        Some(w.events_per_sec() / b.events_per_sec())
    }

    /// A deterministic signature of the run: every count that must be
    /// identical between two same-seed executions.
    pub fn deterministic_signature(&self) -> String {
        let mut sig = String::new();
        for r in self.baseline.iter().chain(self.wheel.iter()) {
            sig.push_str(&format!("engine:{}:{};", r.timers, r.events));
        }
        for r in &self.packet {
            sig.push_str(&format!(
                "packet:{:?}:{}:{}:{};",
                r.config, r.sessions, r.packets_rx, r.events
            ));
        }
        sig
    }

    /// Serializes the artifact (see `BENCH.schema.json`).
    pub fn to_json(&self) -> Json {
        let engine_rows = |rows: &[EngineRow]| {
            Json::Arr(
                rows.iter()
                    .map(|r| {
                        Json::obj(vec![
                            ("timers", Json::Num(r.timers as f64)),
                            ("events", Json::Num(r.events as f64)),
                            ("wall_ms", Json::Num(r.wall_ns as f64 / 1e6)),
                            ("events_per_sec", Json::Num(r.events_per_sec())),
                            (
                                "ns_per_event",
                                Json::Num(r.wall_ns as f64 / r.events as f64),
                            ),
                        ])
                    })
                    .collect(),
            )
        };
        let packet_rows = Json::Arr(
            self.packet
                .iter()
                .map(|r| {
                    Json::obj(vec![
                        ("placement", Json::str(format!("{:?}", r.config))),
                        ("sessions", Json::Num(r.sessions as f64)),
                        ("socket_sessions", Json::Num(r.socket_sessions as f64)),
                        ("ballast", Json::Num(r.ballast as f64)),
                        ("packets_rx", Json::Num(r.packets_rx as f64)),
                        ("events", Json::Num(r.events as f64)),
                        ("wall_ms", Json::Num(r.wall_ns as f64 / 1e6)),
                        ("events_per_sec", Json::Num(r.events_per_sec())),
                        ("ns_per_sim_packet", Json::Num(r.ns_per_sim_packet())),
                        ("peak_rss_kb", Json::Num(r.peak_rss_kb as f64)),
                        ("rss_kb", Json::Num(r.rss_kb as f64)),
                    ])
                })
                .collect(),
        );
        let mut engine = vec![
            ("baseline", engine_rows(&self.baseline)),
            ("wheel", engine_rows(&self.wheel)),
        ];
        if let Some(s) = self.speedup_at(65_536) {
            engine.push(("speedup", Json::Num(s)));
        }
        Json::obj(vec![
            ("version", Json::Num(1.0)),
            ("bench", Json::str("selfbench")),
            ("seed", Json::Num(SEED as f64)),
            ("quick", Json::Bool(self.quick)),
            ("engine", Json::obj(engine)),
            ("packet", packet_rows),
        ])
    }

    /// The human-readable table printed to stdout.
    pub fn table(&self) -> String {
        let mut out = String::new();
        out.push_str("==== Simulator self-benchmark ====\n");
        out.push_str(&format!(
            "seed {SEED}; engine micro: resident timers, per-event neighbor reset (cancel + re-arm){}\n\n",
            if self.quick { " [quick]" } else { "" }
        ));
        out.push_str("engine         timers      events     events/sec   ns/event\n");
        for (name, rows) in [("heap (old)", &self.baseline), ("wheel", &self.wheel)] {
            for r in rows {
                out.push_str(&format!(
                    "{name:<12} {:>8} {:>11} {:>14.0} {:>10.1}\n",
                    r.timers,
                    r.events,
                    r.events_per_sec(),
                    r.wall_ns as f64 / r.events as f64,
                ));
            }
        }
        if let Some(s) = self.speedup_at(65_536) {
            out.push_str(&format!("\nwheel speedup at 64k timers: {s:.2}x\n"));
        }
        out.push_str(
            "\nplacement            sessions (sock+ballast)  events/sec  ns/sim-pkt  peakRSS MB\n",
        );
        for r in &self.packet {
            out.push_str(&format!(
                "{:<22?} {:>7} ({:>4}+{:>6}) {:>11.0} {:>11.0} {:>9.1}\n",
                r.config,
                r.sessions,
                r.socket_sessions,
                r.ballast,
                r.events_per_sec(),
                r.ns_per_sim_packet(),
                r.peak_rss_kb as f64 / 1024.0,
            ));
        }
        out
    }
}

/// Checks measured wheel events/sec at 64k timers against a committed
/// artifact: fails (Err) when it drops below `1 - tolerance` of the
/// committed value. Returns (measured, committed) on success.
pub fn check_against_baseline(
    measured: &SelfBench,
    committed: &Json,
    tolerance: f64,
) -> Result<(f64, f64), String> {
    let committed_eps = committed
        .get("engine")
        .and_then(|e| e.get("wheel"))
        .and_then(Json::as_arr)
        .and_then(|rows| {
            rows.iter()
                .find(|r| r.get("timers").and_then(Json::as_f64) == Some(65_536.0))
        })
        .and_then(|r| r.get("events_per_sec"))
        .and_then(Json::as_f64)
        .ok_or("committed artifact has no wheel row at 65536 timers")?;
    let row = measured
        .wheel
        .iter()
        .find(|r| r.timers == 65_536)
        .ok_or("measured run has no wheel row at 65536 timers")?;
    let eps = row.events_per_sec();
    if eps < committed_eps * (1.0 - tolerance) {
        return Err(format!(
            "events/sec regression: measured {eps:.0} < {:.0} ({}% below committed {committed_eps:.0})",
            committed_eps * (1.0 - tolerance),
            (tolerance * 100.0) as u32,
        ));
    }
    Ok((eps, committed_eps))
}

/// Validates an artifact against the checked-in `BENCH.schema.json`
/// text.
pub fn validate_artifact(artifact: &Json, schema_text: &str) -> Result<(), String> {
    let schema = Json::parse(schema_text).map_err(|e| format!("schema unparseable: {e}"))?;
    validate(artifact, &schema)
}

/// Normalizes an artifact for same-seed comparison (zeroes the
/// wall-clock-derived fields).
pub fn normalized_text(artifact: &Json) -> String {
    let mut copy = artifact.clone();
    normalize_volatile(&mut copy, VOLATILE_FIELDS);
    copy.write()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn engine_micro_is_deterministic_in_counts() {
        let a = engine_micro_wheel(512, 2048);
        let b = engine_micro_wheel(512, 2048);
        assert_eq!(a.events, b.events);
        let base = engine_micro_baseline(512, 2048);
        assert_eq!(base.events, a.events, "both engines run the same count");
    }

    #[test]
    fn speedup_reads_the_64k_row() {
        let bench = SelfBench {
            quick: true,
            baseline: vec![EngineRow {
                timers: 65_536,
                events: 100,
                wall_ns: 3_000,
            }],
            wheel: vec![EngineRow {
                timers: 65_536,
                events: 100,
                wall_ns: 1_000,
            }],
            packet: Vec::new(),
        };
        let s = bench.speedup_at(65_536).unwrap();
        assert!((s - 3.0).abs() < 1e-9);
        let json = bench.to_json();
        let (eps, committed) = check_against_baseline(&bench, &json, 0.2).unwrap();
        assert_eq!(eps, committed);
    }

    #[test]
    fn regression_gate_trips_on_slowdown() {
        let fast = SelfBench {
            quick: true,
            baseline: Vec::new(),
            wheel: vec![EngineRow {
                timers: 65_536,
                events: 1_000,
                wall_ns: 1_000_000,
            }],
            packet: Vec::new(),
        };
        let mut slow = fast.clone();
        slow.wheel[0].wall_ns = 2_000_000; // half the events/sec
        let committed = fast.to_json();
        assert!(check_against_baseline(&fast, &committed, 0.2).is_ok());
        assert!(check_against_baseline(&slow, &committed, 0.2).is_err());
    }
}
