//! Filter microbenchmark CLI.
//!
//! ```text
//! filterbench [--quick] [--json PATH] [--digest PATH]
//!             [--check-baseline PATH] [--schema PATH] [--min-speedup X]
//! ```
//!
//! Prints the human table to stdout. `--json` writes the machine
//! artifact (the committed `BENCH_8.json` is a full run's output).
//! `--digest` writes the *normalized* artifact — volatile wall-clock
//! fields zeroed — which must be byte-identical between two same-seed
//! runs (CI runs twice and diffs the digests). `--check-baseline`
//! compares this run's ns/match in the (Cspf, Compiled, 4096) cell
//! against a committed artifact and exits nonzero on a >20%
//! regression. `--schema` validates the artifact against a schema file
//! before writing it. `--min-speedup` exits nonzero when the
//! compiled:interpreted ns/match ratio at CSPF/4096 falls below the
//! given floor.
//!
//! `--census-json <path>` / `--trace-out <path>` export the same
//! observability surface as the table bins. The microbenchmark itself
//! runs outside the simulator, so these flags drive a small sim-backed
//! demux workload (seed 77, one cell per strategy) with the census and
//! packet tracer attached to the real kernel filter path; the
//! benchmark table is unaffected and both files are byte-identical
//! across reruns.

use std::process::ExitCode;

use psd_bench::filterbench;
use psd_bench::json::Json;
use psd_bench::workload::{session_scaling_with, WorkloadSpec};
use psd_filter::DemuxStrategy;
use psd_sim::Platform;
use psd_systems::SystemConfig;

/// Seed for the sim-backed observability runs (`--census-json` /
/// `--trace-out`); the microbenchmark itself is seedless.
const OBS_SEED: u64 = 77;

fn main() -> ExitCode {
    let mut quick = false;
    let mut json_path: Option<String> = None;
    let mut digest_path: Option<String> = None;
    let mut baseline_path: Option<String> = None;
    let mut schema_path: Option<String> = None;
    let mut min_speedup: Option<f64> = None;
    let mut census_json: Option<String> = None;
    let mut trace_out: Option<String> = None;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--quick" => quick = true,
            "--json" => json_path = args.next(),
            "--digest" => digest_path = args.next(),
            "--check-baseline" => baseline_path = args.next(),
            "--schema" => schema_path = args.next(),
            "--census-json" => census_json = args.next(),
            "--trace-out" => trace_out = args.next(),
            "--min-speedup" => {
                min_speedup = args.next().and_then(|v| v.parse().ok());
                if min_speedup.is_none() {
                    eprintln!("filterbench: --min-speedup needs a number");
                    return ExitCode::FAILURE;
                }
            }
            "--help" | "-h" => {
                println!(
                    "usage: filterbench [--quick] [--json PATH] [--digest PATH] \
                     [--check-baseline PATH] [--schema PATH] [--min-speedup X] \
                     [--census-json PATH] [--trace-out PATH]"
                );
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("filterbench: unknown argument '{other}'");
                return ExitCode::FAILURE;
            }
        }
    }

    let bench = filterbench::run(quick);
    print!("{}", bench.table());
    let artifact = bench.to_json();

    if let Some(path) = &schema_path {
        let schema_text = match std::fs::read_to_string(path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("filterbench: cannot read schema {path}: {e}");
                return ExitCode::FAILURE;
            }
        };
        if let Err(e) = filterbench::validate_artifact(&artifact, &schema_text) {
            eprintln!("filterbench: artifact violates schema: {e}");
            return ExitCode::FAILURE;
        }
        eprintln!("filterbench: artifact validates against {path}");
    }

    if let Some(path) = &json_path {
        if let Err(e) = std::fs::write(path, artifact.write()) {
            eprintln!("filterbench: cannot write {path}: {e}");
            return ExitCode::FAILURE;
        }
        eprintln!("filterbench: wrote {path}");
    }

    if let Some(path) = &digest_path {
        if let Err(e) = std::fs::write(path, filterbench::normalized_text(&artifact)) {
            eprintln!("filterbench: cannot write {path}: {e}");
            return ExitCode::FAILURE;
        }
        eprintln!("filterbench: wrote normalized digest to {path}");
    }

    if census_json.is_some() || trace_out.is_some() {
        let mut census_docs: Vec<String> = Vec::new();
        let mut trace_events = String::new();
        for (idx, strategy) in [DemuxStrategy::Cspf, DemuxStrategy::Mpf]
            .into_iter()
            .enumerate()
        {
            let label = match strategy {
                DemuxStrategy::Cspf => "CSPF",
                DemuxStrategy::Mpf => "MPF",
            };
            let spec = WorkloadSpec::at_scale(64, 128, OBS_SEED);
            let tracer = trace_out.is_some().then(psd_sim::Tracer::shared);
            let r = session_scaling_with(
                SystemConfig::LibraryShm,
                Platform::DecStation5000_200,
                strategy,
                &spec,
                census_json.is_some(),
                tracer.as_ref(),
            );
            if let Some(c) = r.census {
                census_docs.push(format!(
                    "{{\"strategy\":\"{label}\",\"sessions\":{},\"filter_runs\":{},\
                     \"body_copies\":{},\"crossings\":{},\"wakeups\":{}}}",
                    r.sessions, c.filter_runs, c.body_copies, c.crossings, c.wakeups
                ));
            }
            if let Some(t) = &tracer {
                let violations = t.borrow().check_invariants();
                assert!(violations.is_empty(), "trace invariants: {violations:?}");
                t.borrow().chrome_events(
                    idx as u64,
                    &format!("demux [{label}]"),
                    &mut trace_events,
                );
            }
        }
        if let Some(path) = &census_json {
            let doc = format!("{{\"cells\":[{}]}}\n", census_docs.join(","));
            if let Err(e) = std::fs::write(path, doc) {
                eprintln!("filterbench: cannot write {path}: {e}");
                return ExitCode::FAILURE;
            }
            eprintln!("filterbench: wrote census snapshot to {path}");
        }
        if let Some(path) = &trace_out {
            let doc = psd_sim::chrome_trace_document(&trace_events);
            if let Err(e) = std::fs::write(path, doc) {
                eprintln!("filterbench: cannot write {path}: {e}");
                return ExitCode::FAILURE;
            }
            eprintln!("filterbench: wrote Chrome trace to {path}");
        }
    }

    if let Some(path) = &baseline_path {
        let committed = match std::fs::read_to_string(path).map_err(|e| e.to_string()) {
            Ok(text) => match Json::parse(&text) {
                Ok(v) => v,
                Err(e) => {
                    eprintln!("filterbench: cannot parse {path}: {e}");
                    return ExitCode::FAILURE;
                }
            },
            Err(e) => {
                eprintln!("filterbench: cannot read {path}: {e}");
                return ExitCode::FAILURE;
            }
        };
        match filterbench::check_against_baseline(&bench, &committed, 0.2) {
            Ok((ns, committed_ns)) => {
                eprintln!("filterbench: gate ok — {ns:.0} ns/match vs committed {committed_ns:.0}")
            }
            Err(e) => {
                eprintln!("filterbench: GATE FAILED — {e}");
                return ExitCode::FAILURE;
            }
        }
    }

    if let Some(floor) = min_speedup {
        match bench.speedup_at(DemuxStrategy::Cspf, 4096) {
            Some(s) if s >= floor => {
                eprintln!("filterbench: speedup ok — {s:.2}x >= {floor:.2}x at CSPF/4096");
            }
            Some(s) => {
                eprintln!("filterbench: SPEEDUP FAILED — {s:.2}x < {floor:.2}x at CSPF/4096");
                return ExitCode::FAILURE;
            }
            None => {
                eprintln!("filterbench: SPEEDUP FAILED — no CSPF/4096 cell in this run");
                return ExitCode::FAILURE;
            }
        }
    }

    ExitCode::SUCCESS
}
