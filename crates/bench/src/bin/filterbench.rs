//! Filter microbenchmark CLI.
//!
//! ```text
//! filterbench [--quick] [--json PATH] [--digest PATH]
//!             [--check-baseline PATH] [--schema PATH] [--min-speedup X]
//! ```
//!
//! Prints the human table to stdout. `--json` writes the machine
//! artifact (the committed `BENCH_8.json` is a full run's output).
//! `--digest` writes the *normalized* artifact — volatile wall-clock
//! fields zeroed — which must be byte-identical between two same-seed
//! runs (CI runs twice and diffs the digests). `--check-baseline`
//! compares this run's ns/match in the (Cspf, Compiled, 4096) cell
//! against a committed artifact and exits nonzero on a >20%
//! regression. `--schema` validates the artifact against a schema file
//! before writing it. `--min-speedup` exits nonzero when the
//! compiled:interpreted ns/match ratio at CSPF/4096 falls below the
//! given floor.

use std::process::ExitCode;

use psd_bench::filterbench;
use psd_bench::json::Json;
use psd_filter::DemuxStrategy;

fn main() -> ExitCode {
    let mut quick = false;
    let mut json_path: Option<String> = None;
    let mut digest_path: Option<String> = None;
    let mut baseline_path: Option<String> = None;
    let mut schema_path: Option<String> = None;
    let mut min_speedup: Option<f64> = None;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--quick" => quick = true,
            "--json" => json_path = args.next(),
            "--digest" => digest_path = args.next(),
            "--check-baseline" => baseline_path = args.next(),
            "--schema" => schema_path = args.next(),
            "--min-speedup" => {
                min_speedup = args.next().and_then(|v| v.parse().ok());
                if min_speedup.is_none() {
                    eprintln!("filterbench: --min-speedup needs a number");
                    return ExitCode::FAILURE;
                }
            }
            "--help" | "-h" => {
                println!(
                    "usage: filterbench [--quick] [--json PATH] [--digest PATH] \
                     [--check-baseline PATH] [--schema PATH] [--min-speedup X]"
                );
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("filterbench: unknown argument '{other}'");
                return ExitCode::FAILURE;
            }
        }
    }

    let bench = filterbench::run(quick);
    print!("{}", bench.table());
    let artifact = bench.to_json();

    if let Some(path) = &schema_path {
        let schema_text = match std::fs::read_to_string(path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("filterbench: cannot read schema {path}: {e}");
                return ExitCode::FAILURE;
            }
        };
        if let Err(e) = filterbench::validate_artifact(&artifact, &schema_text) {
            eprintln!("filterbench: artifact violates schema: {e}");
            return ExitCode::FAILURE;
        }
        eprintln!("filterbench: artifact validates against {path}");
    }

    if let Some(path) = &json_path {
        if let Err(e) = std::fs::write(path, artifact.write()) {
            eprintln!("filterbench: cannot write {path}: {e}");
            return ExitCode::FAILURE;
        }
        eprintln!("filterbench: wrote {path}");
    }

    if let Some(path) = &digest_path {
        if let Err(e) = std::fs::write(path, filterbench::normalized_text(&artifact)) {
            eprintln!("filterbench: cannot write {path}: {e}");
            return ExitCode::FAILURE;
        }
        eprintln!("filterbench: wrote normalized digest to {path}");
    }

    if let Some(path) = &baseline_path {
        let committed = match std::fs::read_to_string(path).map_err(|e| e.to_string()) {
            Ok(text) => match Json::parse(&text) {
                Ok(v) => v,
                Err(e) => {
                    eprintln!("filterbench: cannot parse {path}: {e}");
                    return ExitCode::FAILURE;
                }
            },
            Err(e) => {
                eprintln!("filterbench: cannot read {path}: {e}");
                return ExitCode::FAILURE;
            }
        };
        match filterbench::check_against_baseline(&bench, &committed, 0.2) {
            Ok((ns, committed_ns)) => {
                eprintln!("filterbench: gate ok — {ns:.0} ns/match vs committed {committed_ns:.0}")
            }
            Err(e) => {
                eprintln!("filterbench: GATE FAILED — {e}");
                return ExitCode::FAILURE;
            }
        }
    }

    if let Some(floor) = min_speedup {
        match bench.speedup_at(DemuxStrategy::Cspf, 4096) {
            Some(s) if s >= floor => {
                eprintln!("filterbench: speedup ok — {s:.2}x >= {floor:.2}x at CSPF/4096");
            }
            Some(s) => {
                eprintln!("filterbench: SPEEDUP FAILED — {s:.2}x < {floor:.2}x at CSPF/4096");
                return ExitCode::FAILURE;
            }
            None => {
                eprintln!("filterbench: SPEEDUP FAILED — no CSPF/4096 cell in this run");
                return ExitCode::FAILURE;
            }
        }
    }

    ExitCode::SUCCESS
}
