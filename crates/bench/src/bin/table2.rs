//! Regenerates Table 2: TCP throughput (ttcp) and TCP/UDP round-trip
//! latency (protolat) for every system configuration on both
//! platforms.
//!
//! Usage: `cargo run --release -p psd-bench --bin table2 [--quick] [--gateway|--decstation] [--census]`
//!
//! `--quick` transfers 2 MB instead of the paper's 16 MB and runs 50
//! latency rounds instead of 200. `--census` appends an operation
//! census (crossings, copies, locks, wakeups per host) for each
//! configuration's ttcp run; counting never charges virtual time, so
//! every numeric result is identical with or without it. `--faults`
//! attaches an (empty) fault plane to every run — no site is scripted
//! or armed, so the plane only counts visits and the output must be
//! byte-identical to a run without it (CI asserts this).

use psd_bench::tables::{fmt_pair, table2_for, TCP_SIZES, UDP_SIZES};
use psd_bench::{protolat, ttcp, ApiStyle};
use psd_server::Proto;
use psd_sim::Platform;
use psd_systems::TestBed;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick");
    let want_census = args.iter().any(|a| a == "--census");
    let want_faults = args.iter().any(|a| a == "--faults");
    let (bytes, rounds) = if quick {
        (2 << 20, 50)
    } else {
        (16 << 20, 200)
    };
    let platforms: Vec<Platform> = if args.iter().any(|a| a == "--gateway") {
        vec![Platform::Gateway486]
    } else if args.iter().any(|a| a == "--decstation") {
        vec![Platform::DecStation5000_200]
    } else {
        vec![Platform::DecStation5000_200, Platform::Gateway486]
    };

    for platform in platforms {
        println!("==== {} ====", platform.label());
        println!(
            "ttcp: {} MB memory-to-memory; latency: {} round trips/size\n",
            bytes >> 20,
            rounds
        );
        for row in table2_for(platform) {
            let config = row.config;
            // Throughput.
            let mut bed = TestBed::new(config, platform, 42);
            let censuses = want_census.then(|| bed.attach_census());
            if want_faults {
                let _plane = bed.attach_fault_plane();
            }
            let t = ttcp(&mut bed, bytes, ApiStyle::Classic);
            println!("{}", config.label());
            println!(
                "  throughput KB/s : {}   [buf {} KB]",
                fmt_pair(t.kb_per_sec, row.throughput),
                row.bufsize
            );
            // TCP latency.
            print!("  TCP rtt ms      :");
            for (i, &size) in TCP_SIZES.iter().enumerate() {
                if row.tcp_ms[i].is_none() {
                    print!("  {:>5}({:>5})", "NA", "NA");
                    continue;
                }
                let mut bed = TestBed::new(config, platform, 43 + i as u64);
                if want_faults {
                    let _plane = bed.attach_fault_plane();
                }
                let lat = protolat(&mut bed, Proto::Tcp, size, 20, rounds, ApiStyle::Classic);
                print!(
                    "  {:5.2}({:5.2})",
                    lat.rtt.as_millis_f64(),
                    row.tcp_ms[i].unwrap_or(0.0)
                );
            }
            println!();
            // UDP latency.
            print!("  UDP rtt ms      :");
            for (i, &size) in UDP_SIZES.iter().enumerate() {
                if row.udp_ms[i].is_none() {
                    print!("  {:>5}({:>5})", "NA", "NA");
                    continue;
                }
                let mut bed = TestBed::new(config, platform, 53 + i as u64);
                if want_faults {
                    let _plane = bed.attach_fault_plane();
                }
                let lat = protolat(&mut bed, Proto::Udp, size, 20, rounds, ApiStyle::Classic);
                print!(
                    "  {:5.2}({:5.2})",
                    lat.rtt.as_millis_f64(),
                    row.udp_ms[i].unwrap_or(0.0)
                );
            }
            println!("\n");
            if let Some(censuses) = censuses {
                for (i, census) in censuses.iter().enumerate() {
                    println!("  census host{i} (ttcp run):");
                    for line in census.borrow().snapshot().lines() {
                        println!("    {line}");
                    }
                }
                println!();
            }
        }
        // The §4.1 derived claims.
        println!("-- derived shape checks ({}) --", platform.label());
        let configs = table2_for(platform);
        let tput = |c: psd_systems::SystemConfig| {
            let mut bed = TestBed::new(c, platform, 42);
            if want_faults {
                let _plane = bed.attach_fault_plane();
            }
            ttcp(&mut bed, bytes, ApiStyle::Classic).kb_per_sec
        };
        use psd_systems::SystemConfig::*;
        if platform == Platform::DecStation5000_200 {
            let kernel = tput(Mach25InKernel);
            let ipc = tput(LibraryIpc);
            let shm = tput(LibraryShm);
            let ipf = tput(LibraryShmIpf);
            let server = tput(UxServer);
            println!(
                "  Library-IPC / In-Kernel   = {:.2}  (paper ≈ 0.85)",
                ipc / kernel
            );
            println!(
                "  Library-SHM / Library-IPC = {:.2}  (paper ≈ 1.18)",
                shm / ipc
            );
            println!(
                "  Library-IPF / In-Kernel   = {:.2}  (paper ≈ 1.02)",
                ipf / kernel
            );
            println!(
                "  Server      / In-Kernel   = {:.2}  (paper ≈ 0.69)",
                server / kernel
            );
        }
        let _ = configs;
        println!();
    }
}
