//! Regenerates Table 2: TCP throughput (ttcp) and TCP/UDP round-trip
//! latency (protolat) for every system configuration on both
//! platforms.
//!
//! Usage: `cargo run --release -p psd-bench --bin table2 [--quick] [--gateway|--decstation] [--census]`
//!
//! `--quick` transfers 2 MB instead of the paper's 16 MB and runs 50
//! latency rounds instead of 200. `--census` appends an operation
//! census (crossings, copies, locks, wakeups per host) for each
//! configuration's ttcp run; counting never charges virtual time, so
//! every numeric result is identical with or without it. `--faults`
//! attaches an (empty) fault plane to every run — no site is scripted
//! or armed, so the plane only counts visits and the output must be
//! byte-identical to a run without it (CI asserts this).
//!
//! `--trace-out <path>` writes a Chrome trace-event JSON file (load it
//! at `chrome://tracing` or in Perfetto) covering every latency run,
//! one trace process per table row. `--stages` prints per-stage
//! latency percentiles (p50/p90/p99) for each row's latency runs.
//! `--census-json <path>` writes the per-row census snapshots as JSON.
//! Tracing charges no virtual time and consumes no randomness, so the
//! table itself is byte-identical with or without these flags, and the
//! trace file is byte-identical across reruns (CI asserts both).
//!
//! `--profile` attaches the charged-time profiler to every ttcp bed,
//! asserts the exact-conservation invariant (attributed ns equals CPU
//! busy ns, bit-exact, per host), and prints per-host hot-site tables
//! to **stderr** — stdout stays byte-identical to an unprofiled run.
//! `--profile-out <path>` additionally writes the collapsed-stack
//! profile artifact. `--metrics-out <path>` samples the virtual-time
//! gauge plane over each ttcp run (10 ms virtual period) and writes
//! the timeseries artifact. All three are charged-time-neutral.

use psd_bench::observe;
use psd_bench::tables::{fmt_pair, table2_for, TCP_SIZES, UDP_SIZES};
use psd_bench::{protolat, ttcp, ApiStyle};
use psd_filter::FilterEngine;
use psd_server::Proto;
use psd_sim::Platform;
use psd_systems::TestBed;

fn flag_value(args: &[String], name: &str) -> Option<String> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1).cloned())
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick");
    let want_census = args.iter().any(|a| a == "--census");
    let want_faults = args.iter().any(|a| a == "--faults");
    let want_stages = args.iter().any(|a| a == "--stages");
    let trace_out = flag_value(&args, "--trace-out");
    let census_json = flag_value(&args, "--census-json");
    let profile_out = flag_value(&args, "--profile-out");
    let metrics_out = flag_value(&args, "--metrics-out");
    let profiling = args.iter().any(|a| a == "--profile") || profile_out.is_some();
    // Like `--faults`, the engine choice must never show in the output:
    // the compiled filter tier is observationally identical to the
    // interpreter, and CI byte-diffs a run under each engine.
    let engine = match flag_value(&args, "--filter-engine").as_deref() {
        Some("compiled") => FilterEngine::Compiled,
        Some("interpret") | None => FilterEngine::Interpret,
        Some(other) => {
            eprintln!("table2: unknown --filter-engine '{other}'");
            std::process::exit(2);
        }
    };
    let tracing = trace_out.is_some() || want_stages;
    let mut trace_events = String::new();
    let mut census_docs: Vec<String> = Vec::new();
    let mut profile_runs: Vec<observe::ProfiledRun> = Vec::new();
    let mut metrics_rows: Vec<(String, psd_sim::MetricsHandle)> = Vec::new();
    let mut row_idx: u64 = 0;
    let (bytes, rounds) = if quick {
        (2 << 20, 50)
    } else {
        (16 << 20, 200)
    };
    let platforms: Vec<Platform> = if args.iter().any(|a| a == "--gateway") {
        vec![Platform::Gateway486]
    } else if args.iter().any(|a| a == "--decstation") {
        vec![Platform::DecStation5000_200]
    } else {
        vec![Platform::DecStation5000_200, Platform::Gateway486]
    };

    for platform in platforms {
        println!("==== {} ====", platform.label());
        println!(
            "ttcp: {} MB memory-to-memory; latency: {} round trips/size\n",
            bytes >> 20,
            rounds
        );
        for row in table2_for(platform) {
            let config = row.config;
            // One tracer per table row, attached to the latency beds
            // only (the ttcp run would dominate the trace with bulk
            // data packets).
            let row_tracer = tracing.then(psd_sim::Tracer::shared);
            // Throughput.
            let mut bed = TestBed::new(config, platform, 42);
            bed.set_filter_engine(engine);
            let censuses = (want_census || census_json.is_some()).then(|| bed.attach_census());
            if want_faults {
                let _plane = bed.attach_fault_plane();
            }
            let profilers = profiling.then(|| bed.attach_profilers());
            // 10 ms sampling: a full ttcp run covers tens of virtual
            // seconds per row, so 1 ms would balloon the artifact.
            let metrics = metrics_out
                .is_some()
                .then(|| bed.attach_metrics(psd_sim::SimTime::from_millis(10)));
            let t = ttcp(&mut bed, bytes, ApiStyle::Classic);
            let row_label = format!("{} | {}", platform.label(), config.label());
            if let Some(profilers) = &profilers {
                profile_runs.push(observe::ProfiledRun {
                    label: row_label.clone(),
                    hosts: profilers
                        .iter()
                        .enumerate()
                        .map(|(i, p)| observe::host_profile(i, &bed.hosts[i].cpu, p))
                        .collect(),
                });
            }
            if let Some(metrics) = metrics {
                metrics_rows.push((row_label, metrics));
            }
            println!("{}", config.label());
            println!(
                "  throughput KB/s : {}   [buf {} KB]",
                fmt_pair(t.kb_per_sec, row.throughput),
                row.bufsize
            );
            // TCP latency.
            print!("  TCP rtt ms      :");
            for (i, &size) in TCP_SIZES.iter().enumerate() {
                if row.tcp_ms[i].is_none() {
                    print!("  {:>5}({:>5})", "NA", "NA");
                    continue;
                }
                let mut bed = TestBed::new(config, platform, 43 + i as u64);
                bed.set_filter_engine(engine);
                if want_faults {
                    let _plane = bed.attach_fault_plane();
                }
                if let Some(t) = &row_tracer {
                    bed.attach_tracer_handle(t);
                }
                let lat = protolat(&mut bed, Proto::Tcp, size, 20, rounds, ApiStyle::Classic);
                print!(
                    "  {:5.2}({:5.2})",
                    lat.rtt.as_millis_f64(),
                    row.tcp_ms[i].unwrap_or(0.0)
                );
            }
            println!();
            // UDP latency.
            print!("  UDP rtt ms      :");
            for (i, &size) in UDP_SIZES.iter().enumerate() {
                if row.udp_ms[i].is_none() {
                    print!("  {:>5}({:>5})", "NA", "NA");
                    continue;
                }
                let mut bed = TestBed::new(config, platform, 53 + i as u64);
                bed.set_filter_engine(engine);
                if want_faults {
                    let _plane = bed.attach_fault_plane();
                }
                if let Some(t) = &row_tracer {
                    bed.attach_tracer_handle(t);
                }
                let lat = protolat(&mut bed, Proto::Udp, size, 20, rounds, ApiStyle::Classic);
                print!(
                    "  {:5.2}({:5.2})",
                    lat.rtt.as_millis_f64(),
                    row.udp_ms[i].unwrap_or(0.0)
                );
            }
            println!("\n");
            if let Some(t) = &row_tracer {
                let violations = t.borrow().check_invariants();
                assert!(violations.is_empty(), "trace invariants: {violations:?}");
                if want_stages {
                    println!("  stage latencies (latency runs, all sizes pooled):");
                    for line in t.borrow().stage_report().lines() {
                        println!("  {line}");
                    }
                    println!();
                }
                if trace_out.is_some() {
                    let label = format!("{} | {}", platform.label(), config.label());
                    t.borrow().chrome_events(row_idx, &label, &mut trace_events);
                }
            }
            if let Some(censuses) = &censuses {
                if want_census {
                    for (i, census) in censuses.iter().enumerate() {
                        println!("  census host{i} (ttcp run):");
                        for line in census.borrow().snapshot().lines() {
                            println!("    {line}");
                        }
                    }
                    println!();
                }
                if census_json.is_some() {
                    let hosts: Vec<String> = censuses
                        .iter()
                        .map(|c| c.borrow().snapshot_json())
                        .collect();
                    census_docs.push(format!(
                        "{{\"platform\":\"{}\",\"config\":\"{}\",\"hosts\":[{}]}}",
                        platform.label(),
                        config.label(),
                        hosts.join(",")
                    ));
                }
            }
            row_idx += 1;
        }
        // The §4.1 derived claims.
        println!("-- derived shape checks ({}) --", platform.label());
        let configs = table2_for(platform);
        let tput = |c: psd_systems::SystemConfig| {
            let mut bed = TestBed::new(c, platform, 42);
            bed.set_filter_engine(engine);
            if want_faults {
                let _plane = bed.attach_fault_plane();
            }
            ttcp(&mut bed, bytes, ApiStyle::Classic).kb_per_sec
        };
        use psd_systems::SystemConfig::*;
        if platform == Platform::DecStation5000_200 {
            let kernel = tput(Mach25InKernel);
            let ipc = tput(LibraryIpc);
            let shm = tput(LibraryShm);
            let ipf = tput(LibraryShmIpf);
            let server = tput(UxServer);
            println!(
                "  Library-IPC / In-Kernel   = {:.2}  (paper ≈ 0.85)",
                ipc / kernel
            );
            println!(
                "  Library-SHM / Library-IPC = {:.2}  (paper ≈ 1.18)",
                shm / ipc
            );
            println!(
                "  Library-IPF / In-Kernel   = {:.2}  (paper ≈ 1.02)",
                ipf / kernel
            );
            println!(
                "  Server      / In-Kernel   = {:.2}  (paper ≈ 0.69)",
                server / kernel
            );
        }
        let _ = configs;
        println!();
    }

    if let Some(path) = &trace_out {
        let doc = psd_sim::chrome_trace_document(&trace_events);
        std::fs::write(path, doc).expect("write trace file");
        eprintln!("wrote Chrome trace to {path}");
    }
    if let Some(path) = &census_json {
        let doc = format!("{{\"rows\":[{}]}}\n", census_docs.join(","));
        std::fs::write(path, doc).expect("write census json");
        eprintln!("wrote census snapshot to {path}");
    }
    if profiling {
        observe::print_hot_tables(&profile_runs);
    }
    if let Some(path) = &profile_out {
        let doc = observe::profile_json("table2", &profile_runs);
        std::fs::write(path, doc.write()).expect("write profile json");
        eprintln!("wrote charged-time profile to {path}");
    }
    if let Some(path) = &metrics_out {
        let doc = observe::metrics_rows_json("table2", 42, &metrics_rows);
        std::fs::write(path, doc.write()).expect("write metrics json");
        eprintln!("wrote metrics timeseries to {path}");
    }
}
