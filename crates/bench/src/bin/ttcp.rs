//! The `ttcp` microbenchmark as a CLI: "a memory-to-memory throughput
//! benchmark for TCP that transfers 16 MB of data from one host to
//! another."
//!
//! Usage:
//!   cargo run --release -p psd-bench --bin ttcp -- \
//!       [--config library-shm-ipf] [--platform decstation] \
//!       [--mb 16] [--newapi] [--loss 0.01] [--seed 42]

use psd_bench::{ttcp, ApiStyle};
use psd_sim::Platform;
use psd_systems::{SystemConfig, TestBed};

fn arg(name: &str) -> Option<String> {
    std::env::args().skip_while(|a| a != name).nth(1)
}

fn parse_config(s: &str) -> SystemConfig {
    match s {
        "mach25" | "in-kernel" => SystemConfig::Mach25InKernel,
        "ultrix" => SystemConfig::Ultrix42InKernel,
        "386bsd" => SystemConfig::Bsd386InKernel,
        "ux" | "server" => SystemConfig::UxServer,
        "bnr2ss" => SystemConfig::Bnr2ssServer,
        "library-ipc" => SystemConfig::LibraryIpc,
        "library-shm" => SystemConfig::LibraryShm,
        "library-shm-ipf" | "library" => SystemConfig::LibraryShmIpf,
        other => panic!("unknown config {other}"),
    }
}

fn main() {
    let config = parse_config(&arg("--config").unwrap_or_else(|| "library-shm-ipf".into()));
    let platform = match arg("--platform").as_deref() {
        Some("gateway") | Some("i486") => Platform::Gateway486,
        _ => Platform::DecStation5000_200,
    };
    let mb: usize = arg("--mb").and_then(|v| v.parse().ok()).unwrap_or(16);
    let seed: u64 = arg("--seed").and_then(|v| v.parse().ok()).unwrap_or(42);
    let loss: f64 = arg("--loss").and_then(|v| v.parse().ok()).unwrap_or(0.0);
    let api = if std::env::args().any(|a| a == "--newapi") {
        ApiStyle::Newapi
    } else {
        ApiStyle::Classic
    };

    let mut bed = TestBed::new(config, platform, seed);
    if loss > 0.0 {
        bed.arm_wire_faults(seed, loss, 0.0, 0.0);
    }
    let r = ttcp(&mut bed, mb << 20, api);
    println!(
        "ttcp-t: {} bytes in {:.2} real seconds = {:.2} KB/sec +++",
        r.bytes,
        r.elapsed.as_secs_f64(),
        r.kb_per_sec
    );
    println!(
        "ttcp-t: {} ({:?}) on {} [{} retransmits]",
        config.label(),
        api,
        platform.label(),
        r.retransmits
    );
}
