//! Generates Table 5: demultiplexing cost as the session count scales.
//!
//! The paper's tables stop at two sessions, but its §3.1 argument is
//! asymptotic: CSPF evaluates every installed session filter per
//! packet, while MPF dispatches through a shared prefix whose cost does
//! not depend on the session count. This table drives the
//! session-scaling workload engine at N ∈ {16, 256, 4096} sessions
//! across every placement and both strategies and reports the observed
//! per-packet filter cost, the control-RPC latency at full load, and
//! the virtual-time cost per delivered packet.
//!
//! Usage: `cargo run --release -p psd-bench --bin table5 [--quick] [--census]
//! [--trace-out <path>] [--census-json <path>]`
//!
//! Everything on stdout is deterministic: two runs with the same
//! arguments are byte-identical (census included). Wall-clock progress
//! goes to stderr only. `--trace-out` writes a Chrome trace-event JSON
//! covering every run (one trace process per `(config, strategy, N)`
//! cell); `--census-json` writes the per-cell receive-host census as
//! JSON. Neither flag changes the table output.
//!
//! `--profile` attaches the charged-time profiler to every cell's
//! testbed, asserts exact conservation (attributed ns == CPU busy ns,
//! bit-exact, per host), and prints hot-site tables to stderr;
//! `--profile-out <path>` writes the collapsed-stack artifact. Both
//! are charged-time-neutral: stdout is byte-identical either way.

use psd_bench::observe;
use psd_bench::workload::{session_scaling_observed, ScaleReport, WorkloadSpec};
use psd_filter::{DemuxStrategy, FilterEngine};
use psd_sim::Platform;
use psd_systems::SystemConfig;

const SEED: u64 = 42;

fn strategy_label(s: DemuxStrategy) -> &'static str {
    match s {
        DemuxStrategy::Cspf => "CSPF",
        DemuxStrategy::Mpf => "MPF",
    }
}

fn flag_value(name: &str) -> Option<String> {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1).cloned())
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let want_census = std::env::args().any(|a| a == "--census");
    let trace_out = flag_value("--trace-out");
    let census_json = flag_value("--census-json");
    let profile_out = flag_value("--profile-out");
    let profiling = std::env::args().any(|a| a == "--profile") || profile_out.is_some();
    // The filter engine never appears in the output: the compiled tier
    // is observationally identical to the interpreter, and CI diffs a
    // run under each engine to prove it.
    let engine = match flag_value("--filter-engine").as_deref() {
        Some("compiled") => FilterEngine::Compiled,
        Some("interpret") | None => FilterEngine::Interpret,
        Some(other) => {
            eprintln!("table5: unknown --filter-engine '{other}'");
            std::process::exit(2);
        }
    };
    let mut trace_events = String::new();
    let mut census_docs: Vec<String> = Vec::new();
    let mut profile_runs: Vec<observe::ProfiledRun> = Vec::new();
    let mut cell_idx: u64 = 0;
    let (scales, packets): (&[usize], usize) = if quick {
        (&[16, 128], 256)
    } else {
        (&[16, 256, 4096], 512)
    };
    let platform = Platform::DecStation5000_200;
    let configs = [
        SystemConfig::UxServer,
        SystemConfig::LibraryIpc,
        SystemConfig::LibraryShm,
        SystemConfig::LibraryShmIpf,
    ];
    let strategies = [DemuxStrategy::Cspf, DemuxStrategy::Mpf];

    println!("==== Table 5: session-scaling demultiplexing ====");
    println!(
        "N concurrent UDP sessions (every 4th connected) + N/8 TCP (cap 32); \
         {packets}-datagram burst; seed {SEED}\n"
    );

    // reports[(config, strategy)] -> per-N reports, in `scales` order.
    let mut all: Vec<(SystemConfig, DemuxStrategy, Vec<ScaleReport>)> = Vec::new();
    for config in configs {
        for strategy in strategies {
            println!("{} [{}]", config.label(), strategy_label(strategy));
            println!(
                "  {:>6}  {:>7}  {:>9}  {:>9}  {:>11}  {:>12}",
                "N", "filters", "steps/pkt", "ns/pkt", "bind-rpc us", "setup virt ms"
            );
            let mut rows = Vec::new();
            for &n in scales {
                let spec = WorkloadSpec::at_scale(n, packets, SEED).with_engine(engine);
                let tracer = trace_out.is_some().then(psd_sim::Tracer::shared);
                let r = session_scaling_observed(
                    config,
                    platform,
                    strategy,
                    &spec,
                    want_census || census_json.is_some(),
                    tracer.as_ref(),
                    profiling,
                );
                if profiling {
                    profile_runs.push(observe::ProfiledRun {
                        label: format!("{} [{}] N={}", config.label(), strategy_label(strategy), n),
                        hosts: r
                            .profiles
                            .iter()
                            .enumerate()
                            .map(|(i, (cpu, prof))| observe::host_profile(i, cpu, prof))
                            .collect(),
                    });
                }
                println!(
                    "  {:>6}  {:>7}  {:>9.1}  {:>9.0}  {:>11.1}  {:>12.2}",
                    r.sessions,
                    r.filters,
                    r.steps_per_packet,
                    r.ns_per_packet,
                    r.bind_rpc.as_nanos() as f64 / 1000.0,
                    r.setup.as_nanos() as f64 / 1e6,
                );
                if want_census {
                    if let Some(c) = r.census {
                        println!(
                            "          census(rx): filter-runs={} body-copies={} \
                             crossings={} wakeups={}",
                            c.filter_runs, c.body_copies, c.crossings, c.wakeups
                        );
                    }
                }
                if let Some(t) = &tracer {
                    let violations = t.borrow().check_invariants();
                    assert!(violations.is_empty(), "trace invariants: {violations:?}");
                    let label =
                        format!("{} [{}] N={}", config.label(), strategy_label(strategy), n);
                    t.borrow()
                        .chrome_events(cell_idx, &label, &mut trace_events);
                }
                if census_json.is_some() {
                    let c = r.census.expect("census attached for --census-json");
                    census_docs.push(format!(
                        "{{\"config\":\"{}\",\"strategy\":\"{}\",\"sessions\":{},\
                         \"filter_runs\":{},\"body_copies\":{},\"crossings\":{},\
                         \"wakeups\":{}}}",
                        config.label(),
                        strategy_label(strategy),
                        n,
                        c.filter_runs,
                        c.body_copies,
                        c.crossings,
                        c.wakeups
                    ));
                }
                cell_idx += 1;
                eprintln!(
                    "[wall] {} [{}] N={}: {:.0} ms ({:.0} sim-pkts/s)",
                    config.label(),
                    strategy_label(strategy),
                    n,
                    r.wall.as_secs_f64() * 1000.0,
                    r.packets_rx as f64 / r.wall.as_secs_f64().max(1e-9),
                );
                rows.push(r);
            }
            println!();
            all.push((config, strategy, rows));
        }
    }

    // Derived shape checks: the asymptotic claims the table exists to
    // demonstrate. Each prints a PASS/FAIL token the CI greps for.
    println!("-- derived shape checks --");
    let lo = scales[0];
    let hi = *scales.last().unwrap();
    let growth = hi as f64 / lo as f64;
    for (config, strategy, rows) in &all {
        let first = rows.first().unwrap();
        let last = rows.last().unwrap();
        match (config.is_library(), strategy) {
            (true, DemuxStrategy::Mpf) => {
                // MPF per-packet cost must be flat in N.
                let flat = last.steps_per_packet <= first.steps_per_packet * 1.5 + 2.0;
                println!(
                    "  {:<28} MPF flat:    {:>7.1} -> {:>7.1} steps/pkt (N {lo} -> {hi})  {}",
                    config.label(),
                    first.steps_per_packet,
                    last.steps_per_packet,
                    if flat { "PASS" } else { "FAIL" }
                );
            }
            (true, DemuxStrategy::Cspf) => {
                // CSPF per-packet cost must grow with N (at least a
                // quarter of linearly, to be robust to the mix).
                let grew = last.steps_per_packet >= first.steps_per_packet * (growth / 4.0);
                println!(
                    "  {:<28} CSPF linear: {:>7.1} -> {:>7.1} steps/pkt (x{:.0})          {}",
                    config.label(),
                    first.steps_per_packet,
                    last.steps_per_packet,
                    last.steps_per_packet / first.steps_per_packet.max(1e-9),
                    if grew { "PASS" } else { "FAIL" }
                );
            }
            (false, _) => {
                // Server-resident placement: no session filters exist,
                // so per-packet cost must not depend on N (an empty MPF
                // table still runs its constant shared prefix).
                let inert = last.filters == 0
                    && (last.steps_per_packet - first.steps_per_packet).abs() < f64::EPSILON;
                println!(
                    "  {:<28} {} inert:  {:>7.1} steps/pkt, {} filters            {}",
                    config.label(),
                    strategy_label(*strategy),
                    last.steps_per_packet,
                    last.filters,
                    if inert { "PASS" } else { "FAIL" }
                );
            }
        }
    }
    // The simulator itself must stay usable at the top scale: session
    // setup is charged in virtual time, so a super-linear blowup in
    // per-session control cost shows up here.
    for (config, _, rows) in all.iter().filter(|(_, s, _)| *s == DemuxStrategy::Mpf) {
        let first = rows.first().unwrap();
        let last = rows.last().unwrap();
        let per_first = first.setup.as_nanos() as f64 / first.sessions as f64;
        let per_last = last.setup.as_nanos() as f64 / last.sessions as f64;
        let ok = per_last <= per_first * 3.0;
        println!(
            "  {:<28} setup/sess:  {:>7.1} -> {:>7.1} us (N {lo} -> {hi})        {}",
            config.label(),
            per_first / 1000.0,
            per_last / 1000.0,
            if ok { "PASS" } else { "FAIL" }
        );
    }

    if let Some(path) = &trace_out {
        std::fs::write(path, psd_sim::chrome_trace_document(&trace_events))
            .expect("write trace file");
        eprintln!("wrote Chrome trace to {path}");
    }
    if let Some(path) = &census_json {
        let doc = format!("{{\"cells\":[{}]}}\n", census_docs.join(","));
        std::fs::write(path, doc).expect("write census json");
        eprintln!("wrote census snapshot to {path}");
    }
    if profiling {
        observe::print_hot_tables(&profile_runs);
    }
    if let Some(path) = &profile_out {
        let doc = observe::profile_json("table5", &profile_runs);
        std::fs::write(path, doc.write()).expect("write profile json");
        eprintln!("wrote charged-time profile to {path}");
    }
}
