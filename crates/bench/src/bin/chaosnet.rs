//! Seeded multi-hop network-chaos digest for CI determinism gating.
//!
//! Drives one paced TCP echo transfer through the [`MultiHopBed`]
//! diamond (two routers, a learning switch, congested 2 Mb/s middle
//! links) with all six link-fault sites armed and a partition + heal
//! window on the primary middle link, then prints the full run digest:
//! byte counts, per-segment Ethernet stats and drop taxonomies,
//! switch/router stats, and both fault-plane logs.
//!
//! Usage: `cargo run --release -p psd-bench --bin chaosnet [--seed N]
//! [--config LABEL] [--metrics-out PATH]`
//!
//! Everything on stdout is deterministic: two runs with the same
//! arguments must be byte-identical. CI runs the bin twice and
//! byte-diffs the outputs. `--metrics-out` attaches the virtual-time
//! gauge plane (switch/router queue depths — including the RED-managed
//! middle-link port — ring occupancy, TCP cwnd/ssthresh/RTO, mbuf pool
//! hit/miss, session counts), samples it every 100 virtual
//! milliseconds, and writes the timeseries JSON. Sampling never
//! charges time or
//! consumes randomness, so stdout stays byte-identical either way.

use psd_core::{AppLib, Fd, FdEventFn};
use psd_netstack::{InetAddr, SockEvent, SocketError};
use psd_server::Proto;
use psd_sim::{FaultSite, Platform, Rng, SimTime};
use psd_systems::{MultiHopBed, SystemConfig, SEG_MID_PRIMARY};
use std::cell::RefCell;
use std::rc::Rc;

const PATTERN_LEN: usize = 20 * 1024;
const CHUNK: usize = 256;

fn flag_value(name: &str) -> Option<String> {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1).cloned())
}

fn main() {
    let seed: u64 = flag_value("--seed")
        .map(|s| s.parse().expect("--seed takes an integer"))
        .unwrap_or(7);
    let config = match flag_value("--config").as_deref() {
        None => SystemConfig::LibraryShm,
        Some(label) => SystemConfig::for_platform(Platform::DecStation5000_200)
            .into_iter()
            .find(|c| c.label() == label)
            .expect("unknown --config label"),
    };

    let metrics_out = flag_value("--metrics-out");

    let mut bed = MultiHopBed::new(config, Platform::DecStation5000_200, seed);
    // The chaos run covers ~2 virtual minutes; 100 ms sampling keeps
    // the timeseries artifact at ~1.3k rows instead of ~130k.
    let metrics = metrics_out
        .is_some()
        .then(|| bed.attach_metrics(SimTime::from_millis(100)));
    let plane = bed.attach_fault_plane();
    {
        let mut p = plane.borrow_mut();
        p.set_rng(Rng::new(seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1));
        p.arm(FaultSite::WireLoss, 0.004);
        p.arm(FaultSite::WireDuplicate, 0.002);
        p.arm(FaultSite::WireReorder, 0.002);
        p.arm(FaultSite::LinkQueueFull, 0.004);
        p.arm(FaultSite::RouteFlip, 0.08);
    }
    let partition = bed.attach_segment_fault_plane(SEG_MID_PRIMARY);
    partition
        .borrow_mut()
        .set_rng(Rng::new(seed.wrapping_mul(0xD1B5_4A32_D192_ED03) | 1));

    // Echo service on the far host.
    let rx_app = bed.hosts[1].spawn_app();
    let lfd = AppLib::socket(&rx_app, &mut bed.sim, Proto::Tcp);
    AppLib::bind(&rx_app, &mut bed.sim, lfd, 80).expect("bind");
    AppLib::listen(&rx_app, &mut bed.sim, lfd, 8).expect("listen");
    {
        let app2 = rx_app.clone();
        let conn_handler: FdEventFn = Rc::new(RefCell::new(
            move |sim: &mut psd_sim::Sim, fd: Fd, ev: SockEvent| match ev {
                SockEvent::Readable | SockEvent::PeerClosed => loop {
                    let mut buf = [0u8; 4096];
                    match AppLib::recv(&app2, sim, fd, &mut buf) {
                        Ok(0) => {
                            AppLib::close(&app2, sim, fd);
                            break;
                        }
                        Ok(n) => {
                            let mut off = 0;
                            while off < n {
                                match AppLib::send(&app2, sim, fd, &buf[off..n]) {
                                    Ok(m) if m > 0 => off += m,
                                    _ => return,
                                }
                            }
                        }
                        Err(SocketError::WouldBlock) => break,
                        Err(_) => {
                            AppLib::close(&app2, sim, fd);
                            break;
                        }
                    }
                },
                SockEvent::Error(_) => AppLib::close(&app2, sim, fd),
                _ => {}
            },
        ));
        let app3 = rx_app.clone();
        let listen_handler: FdEventFn = Rc::new(RefCell::new(
            move |sim: &mut psd_sim::Sim, fd: Fd, ev: SockEvent| {
                if ev == SockEvent::Readable {
                    while let Ok(conn) = AppLib::accept(&app3, sim, fd) {
                        app3.borrow_mut()
                            .set_event_handler(conn, conn_handler.clone());
                    }
                }
            },
        ));
        rx_app.borrow_mut().set_event_handler(lfd, listen_handler);
    }

    // Client on the near host.
    let tx_app = bed.hosts[0].spawn_app();
    let cfd = AppLib::socket(&tx_app, &mut bed.sim, Proto::Tcp);
    let replies = Rc::new(RefCell::new(Vec::new()));
    let connected = Rc::new(RefCell::new(false));
    {
        let (app2, r2, c2) = (tx_app.clone(), replies.clone(), connected.clone());
        let handler: FdEventFn = Rc::new(RefCell::new(
            move |sim: &mut psd_sim::Sim, fd: Fd, ev: SockEvent| match ev {
                SockEvent::Connected => *c2.borrow_mut() = true,
                SockEvent::Readable => loop {
                    let mut buf = [0u8; 4096];
                    match AppLib::recv(&app2, sim, fd, &mut buf) {
                        Ok(0) => break,
                        Ok(n) => r2.borrow_mut().extend_from_slice(&buf[..n]),
                        Err(_) => break,
                    }
                },
                _ => {}
            },
        ));
        tx_app.borrow_mut().set_event_handler(cfd, handler);
    }
    let dst = InetAddr::new(bed.hosts[1].ip, 80);
    AppLib::connect(&tx_app, &mut bed.sim, cfd, dst).expect("connect");
    let deadline = bed.sim.now() + SimTime::from_secs(60);
    while !*connected.borrow() && bed.sim.now() < deadline {
        bed.run_for(SimTime::from_millis(10));
    }
    assert!(*connected.borrow(), "connect never completed");

    // Paced transfer with a partition + heal window.
    let pattern: Vec<u8> = (0..PATTERN_LEN as u32).map(|i| (i % 239) as u8).collect();
    let t0 = bed.sim.now();
    let window = (t0 + SimTime::from_secs(2), t0 + SimTime::from_secs(8));
    let hard_deadline = t0 + SimTime::from_secs(300);
    let mut sent = 0usize;
    let mut down = false;
    loop {
        let now = bed.sim.now();
        let want_down = now >= window.0 && now < window.1;
        if want_down != down {
            partition
                .borrow_mut()
                .arm(FaultSite::LinkDown, if want_down { 1.0 } else { 0.0 });
            down = want_down;
        }
        if sent < pattern.len() {
            let end = (sent + CHUNK).min(pattern.len());
            if let Ok(n) = AppLib::send(&tx_app, &mut bed.sim, cfd, &pattern[sent..end]) {
                sent += n;
            }
        }
        if replies.borrow().len() >= pattern.len() {
            break;
        }
        assert!(bed.sim.now() < hard_deadline, "transfer hung");
        bed.run_for(SimTime::from_millis(100));
    }
    assert_eq!(replies.borrow().as_slice(), pattern.as_slice(), "corrupted");
    AppLib::close(&tx_app, &mut bed.sim, cfd);
    bed.run_for(SimTime::from_secs(120));

    println!("chaosnet config={} seed={}", config.label(), seed);
    println!(
        "tcp_sent={} tcp_replies={} clock_ns={}",
        sent,
        replies.borrow().len(),
        bed.sim.now().as_nanos()
    );
    const SEG_NAMES: [&str; 5] = ["segA0", "segA1", "segM1", "segM2", "segB"];
    for (name, seg) in SEG_NAMES.iter().zip(&bed.segments) {
        let s = seg.borrow();
        println!(
            "{name}={:?} drops={:?}",
            s.stats(),
            s.drops().nonzero().collect::<Vec<_>>()
        );
    }
    {
        let s = bed.switch.borrow();
        println!(
            "switch={:?} drops={:?}",
            s.stats(),
            s.drops().nonzero().collect::<Vec<_>>()
        );
    }
    for (i, r) in bed.routers.iter().enumerate() {
        let r = r.borrow();
        println!(
            "router{}={:?} drops={:?}",
            i + 1,
            r.stats(),
            r.drops().nonzero().collect::<Vec<_>>()
        );
    }
    println!(
        "injected={}",
        plane.borrow().total_injected() + partition.borrow().total_injected()
    );
    println!("plane:\n{}", plane.borrow().snapshot());
    println!("partition:\n{}", partition.borrow().snapshot());

    if let (Some(path), Some(metrics)) = (&metrics_out, &metrics) {
        let doc = psd_bench::observe::metrics_json("chaosnet", seed, metrics);
        std::fs::write(path, doc.write()).expect("write metrics json");
        eprintln!("wrote metrics timeseries to {path}");
    }
}
