//! Regenerates Table 4: per-layer latency breakdown for the
//! library-based (SHM-IPF), kernel-based (Mach 2.5) and server-based
//! (UX) protocol stacks, TCP and UDP, at the minimum and maximum
//! unfragmented message sizes.
//!
//! Usage: `cargo run -p psd-bench --bin table4 [--rounds N] [--census]`
//!
//! `--census` appends an operation census (crossings, copies, locks,
//! wakeups per host) after each column; counting never charges virtual
//! time, so every latency figure is identical with or without it.

use psd_bench::tables::{table4, Table4Column};
use psd_bench::{protolat, ApiStyle};
use psd_server::Proto;
use psd_sim::{Layer, Platform};
use psd_systems::{SystemConfig, TestBed};

fn config_for(system: &str) -> SystemConfig {
    match system {
        "Library" => SystemConfig::LibraryShmIpf,
        "Kernel" => SystemConfig::Mach25InKernel,
        "Server" => SystemConfig::UxServer,
        other => panic!("unknown system {other}"),
    }
}

fn main() {
    let rounds: u32 = std::env::args()
        .skip_while(|a| a != "--rounds")
        .nth(1)
        .and_then(|v| v.parse().ok())
        .unwrap_or(200);
    let want_census = std::env::args().any(|a| a == "--census");

    println!("Table 4: average latency by layer (microseconds, one-way)");
    println!("measured / (paper)  —  {} round trips per column\n", rounds);

    let published = table4();
    for col in &published {
        run_column(col, rounds, want_census);
    }
}

fn run_column(col: &Table4Column, rounds: u32, want_census: bool) {
    let config = config_for(col.system);
    let proto = match col.proto {
        "TCP" => Proto::Tcp,
        _ => Proto::Udp,
    };
    let mut bed = TestBed::new(config, Platform::DecStation5000_200, 7);
    let censuses = want_census.then(|| bed.attach_census());
    let result = protolat(&mut bed, proto, col.size, 25, rounds, ApiStyle::Classic);

    // Each round trip contains one message each way: per-message layer
    // time = total / (2 × rounds). (TCP also carries ACK segments; the
    // paper notes its numbers "only approximate the critical path".)
    let per_msg = |layer: Layer| -> f64 {
        let total = result.probe.borrow().layer(layer).total;
        total.as_micros_f64() / (2.0 * f64::from(rounds))
    };

    println!(
        "--- {} {} {}B ---  (rtt {:.3} ms)",
        col.system,
        col.proto,
        col.size,
        result.rtt.as_millis_f64()
    );
    let send_layers = [
        Layer::EntryCopyin,
        Layer::TcpUdpOutput,
        Layer::IpOutput,
        Layer::EtherOutput,
    ];
    let recv_layers = [
        Layer::DeviceIntrRead,
        Layer::NetisrPacketFilter,
        Layer::KernelCopyout,
        Layer::MbufQueue,
        Layer::IpIntr,
        Layer::TcpUdpInput,
        Layer::WakeupUserThread,
        Layer::CopyoutExit,
    ];
    let mut send_total = 0.0;
    let mut send_paper = 0u32;
    for (i, layer) in send_layers.iter().enumerate() {
        let m = per_msg(*layer);
        send_total += m;
        send_paper += col.send[i];
        println!("  {:<22} {:7.0}  ({:5})", layer.label(), m, col.send[i]);
    }
    println!(
        "  {:<22} {:7.0}  ({:5})",
        "SEND TOTAL", send_total, send_paper
    );
    let mut recv_total = 0.0;
    let mut recv_paper = 0u32;
    for (i, layer) in recv_layers.iter().enumerate() {
        let m = per_msg(*layer);
        recv_total += m;
        recv_paper += col.recv[i];
        println!("  {:<22} {:7.0}  ({:5})", layer.label(), m, col.recv[i]);
    }
    println!(
        "  {:<22} {:7.0}  ({:5})",
        "RECV TOTAL", recv_total, recv_paper
    );
    let transit = per_msg(Layer::NetworkTransit);
    println!(
        "  {:<22} {:7.0}  ({:5})\n",
        "network transit", transit, col.transit
    );
    if let Some(censuses) = censuses {
        for (i, census) in censuses.iter().enumerate() {
            println!("  census host{i}:");
            for line in census.borrow().snapshot().lines() {
                println!("    {line}");
            }
        }
        println!();
    }
}
