//! Regenerates Table 4: per-layer latency breakdown for the
//! library-based (SHM-IPF), kernel-based (Mach 2.5) and server-based
//! (UX) protocol stacks, TCP and UDP, at the minimum and maximum
//! unfragmented message sizes.
//!
//! Usage: `cargo run -p psd-bench --bin table4 [--rounds N] [--census]
//! [--trace-out <path>] [--census-json <path>]`
//!
//! `--census` appends an operation census (crossings, copies, locks,
//! wakeups per host) after each column; counting never charges virtual
//! time, so every latency figure is identical with or without it.
//! `--trace-out` writes a Chrome trace-event JSON covering every
//! column's run (one trace process per column); `--census-json` writes
//! the census snapshots as JSON. Neither flag changes the table.

use psd_bench::tables::{table4, Table4Column};
use psd_bench::{protolat, ApiStyle};
use psd_server::Proto;
use psd_sim::{Layer, Platform};
use psd_systems::{SystemConfig, TestBed};

fn config_for(system: &str) -> SystemConfig {
    match system {
        "Library" => SystemConfig::LibraryShmIpf,
        "Kernel" => SystemConfig::Mach25InKernel,
        "Server" => SystemConfig::UxServer,
        other => panic!("unknown system {other}"),
    }
}

fn flag_value(name: &str) -> Option<String> {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1).cloned())
}

fn main() {
    let rounds: u32 = std::env::args()
        .skip_while(|a| a != "--rounds")
        .nth(1)
        .and_then(|v| v.parse().ok())
        .unwrap_or(200);
    let want_census = std::env::args().any(|a| a == "--census");
    let trace_out = flag_value("--trace-out");
    let census_json = flag_value("--census-json");

    println!("Table 4: average latency by layer (microseconds, one-way)");
    println!("measured / (paper)  —  {} round trips per column\n", rounds);

    let mut trace_events = String::new();
    let mut census_docs: Vec<String> = Vec::new();
    let published = table4();
    for (i, col) in published.iter().enumerate() {
        run_column(
            col,
            rounds,
            want_census,
            trace_out.is_some().then_some((i as u64, &mut trace_events)),
            census_json.is_some().then_some(&mut census_docs),
        );
    }
    if let Some(path) = &trace_out {
        std::fs::write(path, psd_sim::chrome_trace_document(&trace_events))
            .expect("write trace file");
        eprintln!("wrote Chrome trace to {path}");
    }
    if let Some(path) = &census_json {
        let doc = format!("{{\"columns\":[{}]}}\n", census_docs.join(","));
        std::fs::write(path, doc).expect("write census json");
        eprintln!("wrote census snapshot to {path}");
    }
}

fn run_column(
    col: &Table4Column,
    rounds: u32,
    want_census: bool,
    trace_sink: Option<(u64, &mut String)>,
    census_sink: Option<&mut Vec<String>>,
) {
    let config = config_for(col.system);
    let proto = match col.proto {
        "TCP" => Proto::Tcp,
        _ => Proto::Udp,
    };
    let mut bed = TestBed::new(config, Platform::DecStation5000_200, 7);
    let censuses = (want_census || census_sink.is_some()).then(|| bed.attach_census());
    let tracer = trace_sink.is_some().then(|| bed.attach_tracer());
    let result = protolat(&mut bed, proto, col.size, 25, rounds, ApiStyle::Classic);

    // Each round trip contains one message each way: per-message layer
    // time = total / (2 × rounds). (TCP also carries ACK segments; the
    // paper notes its numbers "only approximate the critical path".)
    let per_msg = |layer: Layer| -> f64 {
        let total = result.probe.borrow().layer(layer).total;
        total.as_micros_f64() / (2.0 * f64::from(rounds))
    };

    println!(
        "--- {} {} {}B ---  (rtt {:.3} ms)",
        col.system,
        col.proto,
        col.size,
        result.rtt.as_millis_f64()
    );
    let send_layers = [
        Layer::EntryCopyin,
        Layer::TcpUdpOutput,
        Layer::IpOutput,
        Layer::EtherOutput,
    ];
    let recv_layers = [
        Layer::DeviceIntrRead,
        Layer::NetisrPacketFilter,
        Layer::KernelCopyout,
        Layer::MbufQueue,
        Layer::IpIntr,
        Layer::TcpUdpInput,
        Layer::WakeupUserThread,
        Layer::CopyoutExit,
    ];
    let mut send_total = 0.0;
    let mut send_paper = 0u32;
    for (i, layer) in send_layers.iter().enumerate() {
        let m = per_msg(*layer);
        send_total += m;
        send_paper += col.send[i];
        println!("  {:<22} {:7.0}  ({:5})", layer.label(), m, col.send[i]);
    }
    println!(
        "  {:<22} {:7.0}  ({:5})",
        "SEND TOTAL", send_total, send_paper
    );
    let mut recv_total = 0.0;
    let mut recv_paper = 0u32;
    for (i, layer) in recv_layers.iter().enumerate() {
        let m = per_msg(*layer);
        recv_total += m;
        recv_paper += col.recv[i];
        println!("  {:<22} {:7.0}  ({:5})", layer.label(), m, col.recv[i]);
    }
    println!(
        "  {:<22} {:7.0}  ({:5})",
        "RECV TOTAL", recv_total, recv_paper
    );
    let transit = per_msg(Layer::NetworkTransit);
    println!(
        "  {:<22} {:7.0}  ({:5})\n",
        "network transit", transit, col.transit
    );
    if let (Some(tracer), Some((pid, out))) = (&tracer, trace_sink) {
        let violations = tracer.borrow().check_invariants();
        assert!(violations.is_empty(), "trace invariants: {violations:?}");
        let label = format!("{} {} {}B", col.system, col.proto, col.size);
        tracer.borrow().chrome_events(pid, &label, out);
    }
    if let Some(censuses) = censuses {
        if want_census {
            for (i, census) in censuses.iter().enumerate() {
                println!("  census host{i}:");
                for line in census.borrow().snapshot().lines() {
                    println!("    {line}");
                }
            }
            println!();
        }
        if let Some(docs) = census_sink {
            let hosts: Vec<String> = censuses
                .iter()
                .map(|c| c.borrow().snapshot_json())
                .collect();
            docs.push(format!(
                "{{\"system\":\"{}\",\"proto\":\"{}\",\"size\":{},\"hosts\":[{}]}}",
                col.system,
                col.proto,
                col.size,
                hosts.join(",")
            ));
        }
    }
}
