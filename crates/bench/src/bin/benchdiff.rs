//! Perf-trajectory and regression-gate CLI over `BENCH_*.json`
//! artifacts.
//!
//! ```text
//! benchdiff FILE FILE... [--tolerance X] [--json PATH] [--report PATH]
//! benchdiff --check BASELINE MEASURED [--tolerance X] [--min-speedup X]
//! benchdiff --validate FILE --schema FILE
//! ```
//!
//! The first form prints a per-metric delta table between consecutive
//! artifacts (a trajectory when given the same benchmark's artifacts
//! over time); `--json`/`--report` write the machine/text reports for
//! the final pair. The second form is the CI regression gate: it
//! reproduces the cell-for-cell verdicts of the retired
//! `selfbench/filterbench/table6 --check-baseline` flags — one binary,
//! one exit code, any benchmark kind. The third form schema-validates
//! a single artifact and exits.

use std::process::ExitCode;

use psd_bench::benchdiff;
use psd_bench::json::{validate, Json};

fn read_artifact(path: &str) -> Result<Json, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    Json::parse(&text).map_err(|e| format!("cannot parse {path}: {e}"))
}

fn main() -> ExitCode {
    let mut files: Vec<String> = Vec::new();
    let mut tolerance = 0.2;
    let mut min_speedup: Option<f64> = None;
    let mut check = false;
    let mut validate_mode = false;
    let mut schema_path: Option<String> = None;
    let mut json_path: Option<String> = None;
    let mut report_path: Option<String> = None;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--check" => check = true,
            "--validate" => validate_mode = true,
            "--schema" => schema_path = args.next(),
            "--json" => json_path = args.next(),
            "--report" => report_path = args.next(),
            "--tolerance" => match args.next().and_then(|v| v.parse().ok()) {
                Some(t) => tolerance = t,
                None => {
                    eprintln!("benchdiff: --tolerance needs a number");
                    return ExitCode::FAILURE;
                }
            },
            "--min-speedup" => match args.next().and_then(|v| v.parse().ok()) {
                Some(s) => min_speedup = Some(s),
                None => {
                    eprintln!("benchdiff: --min-speedup needs a number");
                    return ExitCode::FAILURE;
                }
            },
            "--help" | "-h" => {
                println!(
                    "usage: benchdiff FILE FILE... [--tolerance X] [--json PATH] [--report PATH]\n\
                     \x20      benchdiff --check BASELINE MEASURED [--tolerance X] [--min-speedup X]\n\
                     \x20      benchdiff --validate FILE --schema FILE"
                );
                return ExitCode::SUCCESS;
            }
            other if other.starts_with("--") => {
                eprintln!("benchdiff: unknown argument '{other}'");
                return ExitCode::FAILURE;
            }
            file => files.push(file.to_string()),
        }
    }

    if validate_mode {
        let (Some(file), Some(schema_file)) = (files.first(), &schema_path) else {
            eprintln!("benchdiff: --validate needs FILE and --schema FILE");
            return ExitCode::FAILURE;
        };
        let artifact = match read_artifact(file) {
            Ok(v) => v,
            Err(e) => {
                eprintln!("benchdiff: {e}");
                return ExitCode::FAILURE;
            }
        };
        let schema = match read_artifact(schema_file) {
            Ok(v) => v,
            Err(e) => {
                eprintln!("benchdiff: {e}");
                return ExitCode::FAILURE;
            }
        };
        return match validate(&artifact, &schema) {
            Ok(()) => {
                println!("benchdiff: {file} validates against {schema_file}");
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("benchdiff: {file} violates {schema_file}: {e}");
                ExitCode::FAILURE
            }
        };
    }

    if files.len() < 2 {
        eprintln!("benchdiff: need at least two artifacts (see --help)");
        return ExitCode::FAILURE;
    }

    if check {
        if files.len() != 2 {
            eprintln!("benchdiff: --check takes exactly BASELINE and MEASURED");
            return ExitCode::FAILURE;
        }
        let (baseline, measured) = match (read_artifact(&files[0]), read_artifact(&files[1])) {
            (Ok(b), Ok(m)) => (b, m),
            (Err(e), _) | (_, Err(e)) => {
                eprintln!("benchdiff: {e}");
                return ExitCode::FAILURE;
            }
        };
        return match benchdiff::check(&baseline, &measured, tolerance, min_speedup) {
            Ok(lines) => {
                for line in lines {
                    println!("benchdiff: gate ok — {line}");
                }
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("benchdiff: GATE FAILED — {e}");
                ExitCode::FAILURE
            }
        };
    }

    // Trajectory: consecutive pairwise deltas; reports cover the final
    // pair (typically "previous committed" vs "this run").
    let mut artifacts = Vec::new();
    for file in &files {
        match read_artifact(file) {
            Ok(v) => artifacts.push(v),
            Err(e) => {
                eprintln!("benchdiff: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    let mut regressed = false;
    let mut last_reports: Option<(String, Json)> = None;
    for pair in artifacts.windows(2).zip(files.windows(2)) {
        let ((base, new), (base_file, new_file)) = (
            (&pair.0[0], &pair.0[1]),
            (pair.1[0].as_str(), pair.1[1].as_str()),
        );
        let deltas = match benchdiff::diff(base, new) {
            Ok(d) => d,
            Err(e) => {
                eprintln!("benchdiff: {base_file} -> {new_file}: {e}");
                return ExitCode::FAILURE;
            }
        };
        regressed |= deltas.iter().any(|d| d.regressed(tolerance));
        let text = benchdiff::report_text(&deltas, (base_file, new_file), tolerance);
        print!("{text}");
        last_reports = Some((
            text,
            benchdiff::report_json(&deltas, (base_file, new_file), tolerance),
        ));
    }
    if let Some((text, doc)) = last_reports {
        if let Some(path) = &report_path {
            if let Err(e) = std::fs::write(path, text) {
                eprintln!("benchdiff: cannot write {path}: {e}");
                return ExitCode::FAILURE;
            }
            eprintln!("benchdiff: wrote report to {path}");
        }
        if let Some(path) = &json_path {
            if let Err(e) = std::fs::write(path, doc.write()) {
                eprintln!("benchdiff: cannot write {path}: {e}");
                return ExitCode::FAILURE;
            }
            eprintln!("benchdiff: wrote JSON report to {path}");
        }
    }
    if regressed {
        eprintln!(
            "benchdiff: metrics beyond the {:.0}% tolerance are flagged above \
             (informational in trajectory mode; use --check to gate)",
            tolerance * 100.0
        );
    }
    ExitCode::SUCCESS
}
