//! The `protolat` microbenchmark as a CLI: "a program that measures
//! protocol round trip latency for UDP and TCP."
//!
//! Usage:
//!   cargo run --release -p psd-bench --bin protolat -- \
//!       [--config library-shm-ipf] [--platform decstation] \
//!       [--proto udp] [--size 1] [--rounds 200] [--newapi]

use psd_bench::{protolat, ApiStyle};
use psd_server::Proto;
use psd_sim::Platform;
use psd_systems::{SystemConfig, TestBed};

fn arg(name: &str) -> Option<String> {
    std::env::args().skip_while(|a| a != name).nth(1)
}

fn main() {
    let config = match arg("--config").as_deref() {
        Some("mach25") | Some("in-kernel") => SystemConfig::Mach25InKernel,
        Some("ultrix") => SystemConfig::Ultrix42InKernel,
        Some("386bsd") => SystemConfig::Bsd386InKernel,
        Some("ux") | Some("server") => SystemConfig::UxServer,
        Some("bnr2ss") => SystemConfig::Bnr2ssServer,
        Some("library-ipc") => SystemConfig::LibraryIpc,
        Some("library-shm") => SystemConfig::LibraryShm,
        _ => SystemConfig::LibraryShmIpf,
    };
    let platform = match arg("--platform").as_deref() {
        Some("gateway") | Some("i486") => Platform::Gateway486,
        _ => Platform::DecStation5000_200,
    };
    let proto = match arg("--proto").as_deref() {
        Some("tcp") => Proto::Tcp,
        _ => Proto::Udp,
    };
    let size: usize = arg("--size").and_then(|v| v.parse().ok()).unwrap_or(1);
    let rounds: u32 = arg("--rounds").and_then(|v| v.parse().ok()).unwrap_or(200);
    let api = if std::env::args().any(|a| a == "--newapi") {
        ApiStyle::Newapi
    } else {
        ApiStyle::Classic
    };

    let mut bed = TestBed::new(config, platform, 7);
    let r = protolat(&mut bed, proto, size, 25, rounds, api);
    println!(
        "protolat: {:?} {} bytes, {} round trips: {:.3} ms/rt",
        proto,
        size,
        r.rounds,
        r.rtt.as_millis_f64()
    );
    println!("protolat: {} on {}", config.label(), platform.label());
}
