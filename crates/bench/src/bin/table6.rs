//! Table 6 CLI: the batched-NEWAPI sweep.
//!
//! ```text
//! table6 [--quick] [--json PATH] [--check-baseline PATH] [--schema PATH]
//! ```
//!
//! Prints the human table to stdout. `--json` writes the machine
//! artifact (the committed `BENCH_9.json` is a full run's output).
//! Every field in the artifact is virtual-time or a deterministic
//! counter, so two same-seed runs are byte-identical with no
//! normalization — CI runs twice and diffs the files directly.
//! `--check-baseline` compares this run's ns/pkt in every
//! (config, eager, B=64) cell against a committed artifact and exits
//! nonzero on a >20% regression. `--schema` validates the artifact
//! against a schema file before writing it. The run itself asserts the
//! hard invariants (lossless burst, crossings exactly packets/B) and
//! the monotone-decrease acceptance trend.

use std::process::ExitCode;

use psd_bench::json::Json;
use psd_bench::table6;

fn main() -> ExitCode {
    let mut quick = false;
    let mut json_path: Option<String> = None;
    let mut baseline_path: Option<String> = None;
    let mut schema_path: Option<String> = None;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--quick" => quick = true,
            "--json" => json_path = args.next(),
            "--check-baseline" => baseline_path = args.next(),
            "--schema" => schema_path = args.next(),
            "--help" | "-h" => {
                println!(
                    "usage: table6 [--quick] [--json PATH] \
                     [--check-baseline PATH] [--schema PATH]"
                );
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("table6: unknown argument '{other}'");
                return ExitCode::FAILURE;
            }
        }
    }

    let bench = table6::run(quick);
    print!("{}", bench.table());
    if let Err(e) = bench.check_monotone() {
        eprintln!("table6: MONOTONICITY FAILED — {e}");
        return ExitCode::FAILURE;
    }
    eprintln!("table6: crossings/pkt and ns/pkt decrease monotonically in B");
    let artifact = bench.to_json();

    if let Some(path) = &schema_path {
        let schema_text = match std::fs::read_to_string(path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("table6: cannot read schema {path}: {e}");
                return ExitCode::FAILURE;
            }
        };
        if let Err(e) = table6::validate_artifact(&artifact, &schema_text) {
            eprintln!("table6: artifact violates schema: {e}");
            return ExitCode::FAILURE;
        }
        eprintln!("table6: artifact validates against {path}");
    }

    if let Some(path) = &json_path {
        if let Err(e) = std::fs::write(path, artifact.write()) {
            eprintln!("table6: cannot write {path}: {e}");
            return ExitCode::FAILURE;
        }
        eprintln!("table6: wrote {path}");
    }

    if let Some(path) = &baseline_path {
        let committed = match std::fs::read_to_string(path).map_err(|e| e.to_string()) {
            Ok(text) => match Json::parse(&text) {
                Ok(v) => v,
                Err(e) => {
                    eprintln!("table6: cannot parse {path}: {e}");
                    return ExitCode::FAILURE;
                }
            },
            Err(e) => {
                eprintln!("table6: cannot read {path}: {e}");
                return ExitCode::FAILURE;
            }
        };
        match table6::check_against_baseline(&bench, &committed, 0.2) {
            Ok(cells) => {
                for (key, ns, committed_ns) in cells {
                    eprintln!(
                        "table6: gate ok — {key} {ns:.0} ns/pkt vs committed {committed_ns:.0}"
                    );
                }
            }
            Err(e) => {
                eprintln!("table6: GATE FAILED — {e}");
                return ExitCode::FAILURE;
            }
        }
    }

    ExitCode::SUCCESS
}
