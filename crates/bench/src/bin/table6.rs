//! Table 6 CLI: the batched-NEWAPI sweep.
//!
//! ```text
//! table6 [--quick] [--json PATH] [--check-baseline PATH] [--schema PATH]
//!        [--census-json PATH] [--trace-out PATH]
//!        [--profile] [--profile-out PATH]
//! ```
//!
//! Prints the human table to stdout. `--json` writes the machine
//! artifact (the committed `BENCH_9.json` is a full run's output).
//! Every field in the artifact is virtual-time or a deterministic
//! counter, so two same-seed runs are byte-identical with no
//! normalization — CI runs twice and diffs the files directly.
//! `--check-baseline` compares this run's ns/pkt in every
//! (config, eager, B=64) cell against a committed artifact and exits
//! nonzero on a >20% regression. `--schema` validates the artifact
//! against a schema file before writing it. The run itself asserts the
//! hard invariants (lossless burst, crossings exactly packets/B) and
//! the monotone-decrease acceptance trend.
//!
//! The observability flags match the other table bins: `--census-json`
//! writes per-cell census snapshots, `--trace-out` writes a Chrome
//! trace (one trace process per cell), `--profile` attaches the
//! charged-time profiler (conservation asserted, hot-site tables to
//! stderr), and `--profile-out` writes the collapsed-stack artifact.
//! None of them changes the table or the `--json` artifact.

use std::process::ExitCode;

use psd_bench::json::Json;
use psd_bench::{observe, table6};

fn main() -> ExitCode {
    let mut quick = false;
    let mut json_path: Option<String> = None;
    let mut baseline_path: Option<String> = None;
    let mut schema_path: Option<String> = None;
    let mut census_json: Option<String> = None;
    let mut trace_out: Option<String> = None;
    let mut profile = false;
    let mut profile_out: Option<String> = None;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--quick" => quick = true,
            "--json" => json_path = args.next(),
            "--check-baseline" => baseline_path = args.next(),
            "--schema" => schema_path = args.next(),
            "--census-json" => census_json = args.next(),
            "--trace-out" => trace_out = args.next(),
            "--profile" => profile = true,
            "--profile-out" => profile_out = args.next(),
            "--help" | "-h" => {
                println!(
                    "usage: table6 [--quick] [--json PATH] \
                     [--check-baseline PATH] [--schema PATH] \
                     [--census-json PATH] [--trace-out PATH] \
                     [--profile] [--profile-out PATH]"
                );
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("table6: unknown argument '{other}'");
                return ExitCode::FAILURE;
            }
        }
    }
    let profiling = profile || profile_out.is_some();

    let (bench, obs) = table6::run_observed(quick, trace_out.is_some(), profiling);
    print!("{}", bench.table());
    if let Err(e) = bench.check_monotone() {
        eprintln!("table6: MONOTONICITY FAILED — {e}");
        return ExitCode::FAILURE;
    }
    eprintln!("table6: crossings/pkt and ns/pkt decrease monotonically in B");

    if let Some(path) = &census_json {
        let rows: Vec<String> = obs
            .iter()
            .map(|o| {
                format!(
                    "{{\"label\":\"{}\",\"hosts\":[{}]}}",
                    o.label,
                    o.census_hosts.join(",")
                )
            })
            .collect();
        let doc = format!("{{\"rows\":[{}]}}\n", rows.join(","));
        if let Err(e) = std::fs::write(path, doc) {
            eprintln!("table6: cannot write {path}: {e}");
            return ExitCode::FAILURE;
        }
        eprintln!("table6: wrote census snapshot to {path}");
    }
    if let Some(path) = &trace_out {
        let mut trace_events = String::new();
        for (idx, o) in obs.iter().enumerate() {
            let t = o.tracer.as_ref().expect("tracer attached for --trace-out");
            let violations = t.borrow().check_invariants();
            assert!(violations.is_empty(), "trace invariants: {violations:?}");
            t.borrow()
                .chrome_events(idx as u64, &o.label, &mut trace_events);
        }
        let doc = psd_sim::chrome_trace_document(&trace_events);
        if let Err(e) = std::fs::write(path, doc) {
            eprintln!("table6: cannot write {path}: {e}");
            return ExitCode::FAILURE;
        }
        eprintln!("table6: wrote Chrome trace to {path}");
    }
    if profiling {
        let runs: Vec<observe::ProfiledRun> = obs
            .iter()
            .map(|o| observe::ProfiledRun {
                label: o.label.clone(),
                hosts: o
                    .profiles
                    .iter()
                    .enumerate()
                    .map(|(i, (cpu, prof))| observe::host_profile(i, cpu, prof))
                    .collect(),
            })
            .collect();
        observe::print_hot_tables(&runs);
        if let Some(path) = &profile_out {
            let doc = observe::profile_json("table6", &runs);
            if let Err(e) = std::fs::write(path, doc.write()) {
                eprintln!("table6: cannot write {path}: {e}");
                return ExitCode::FAILURE;
            }
            eprintln!("table6: wrote charged-time profile to {path}");
        }
    }

    let artifact = bench.to_json();

    if let Some(path) = &schema_path {
        let schema_text = match std::fs::read_to_string(path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("table6: cannot read schema {path}: {e}");
                return ExitCode::FAILURE;
            }
        };
        if let Err(e) = table6::validate_artifact(&artifact, &schema_text) {
            eprintln!("table6: artifact violates schema: {e}");
            return ExitCode::FAILURE;
        }
        eprintln!("table6: artifact validates against {path}");
    }

    if let Some(path) = &json_path {
        if let Err(e) = std::fs::write(path, artifact.write()) {
            eprintln!("table6: cannot write {path}: {e}");
            return ExitCode::FAILURE;
        }
        eprintln!("table6: wrote {path}");
    }

    if let Some(path) = &baseline_path {
        let committed = match std::fs::read_to_string(path).map_err(|e| e.to_string()) {
            Ok(text) => match Json::parse(&text) {
                Ok(v) => v,
                Err(e) => {
                    eprintln!("table6: cannot parse {path}: {e}");
                    return ExitCode::FAILURE;
                }
            },
            Err(e) => {
                eprintln!("table6: cannot read {path}: {e}");
                return ExitCode::FAILURE;
            }
        };
        match table6::check_against_baseline(&bench, &committed, 0.2) {
            Ok(cells) => {
                for (key, ns, committed_ns) in cells {
                    eprintln!(
                        "table6: gate ok — {key} {ns:.0} ns/pkt vs committed {committed_ns:.0}"
                    );
                }
            }
            Err(e) => {
                eprintln!("table6: GATE FAILED — {e}");
                return ExitCode::FAILURE;
            }
        }
    }

    ExitCode::SUCCESS
}
