//! Quick end-to-end smoke run across all DECstation configurations:
//! one UDP latency point, one TCP latency point, and a 2 MB transfer
//! per system. Finishes in seconds; use the `table2`/`table3`/`table4`
//! binaries for the full paper-scale runs.

use psd_bench::{protolat, ttcp, ApiStyle};
use psd_server::Proto;
use psd_sim::Platform;
use psd_systems::{SystemConfig, TestBed};

fn main() {
    let platform = Platform::DecStation5000_200;
    for config in SystemConfig::for_platform(platform) {
        let mut bed = TestBed::new(config, platform, 42);
        let lat = protolat(&mut bed, Proto::Udp, 1, 5, 20, ApiStyle::Classic);
        println!(
            "{:<28} UDP 1B rtt = {:.3} ms",
            config.label(),
            lat.rtt.as_millis_f64()
        );
    }
    for config in SystemConfig::for_platform(platform) {
        let mut bed = TestBed::new(config, platform, 42);
        let lat = protolat(&mut bed, Proto::Tcp, 1, 5, 20, ApiStyle::Classic);
        println!(
            "{:<28} TCP 1B rtt = {:.3} ms",
            config.label(),
            lat.rtt.as_millis_f64()
        );
    }
    for config in SystemConfig::for_platform(platform) {
        let mut bed = TestBed::new(config, platform, 42);
        let t = ttcp(&mut bed, 2 * 1024 * 1024, ApiStyle::Classic);
        println!(
            "{:<28} ttcp 2MB = {:.0} KB/s ({} rexmt)",
            config.label(),
            t.kb_per_sec,
            t.retransmits
        );
    }
}
