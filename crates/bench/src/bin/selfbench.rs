//! Simulator self-benchmark CLI.
//!
//! ```text
//! selfbench [--quick] [--json PATH] [--check-baseline PATH] [--schema PATH]
//! ```
//!
//! Prints the human table to stdout. `--json` writes the machine
//! artifact (the committed `BENCH_6.json` is a full run's output).
//! `--check-baseline` compares this run's wheel events/sec at 64k
//! timers against a committed artifact and exits nonzero on a >20%
//! regression. `--schema` validates the artifact against a schema file
//! before writing it.

use std::process::ExitCode;

use psd_bench::json::Json;
use psd_bench::selfbench;

fn main() -> ExitCode {
    let mut quick = false;
    let mut json_path: Option<String> = None;
    let mut baseline_path: Option<String> = None;
    let mut schema_path: Option<String> = None;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--quick" => quick = true,
            "--json" => json_path = args.next(),
            "--check-baseline" => baseline_path = args.next(),
            "--schema" => schema_path = args.next(),
            "--help" | "-h" => {
                println!(
                    "usage: selfbench [--quick] [--json PATH] [--check-baseline PATH] [--schema PATH]"
                );
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("selfbench: unknown argument '{other}'");
                return ExitCode::FAILURE;
            }
        }
    }

    let bench = selfbench::run(quick);
    print!("{}", bench.table());
    let artifact = bench.to_json();

    if let Some(path) = &schema_path {
        let schema_text = match std::fs::read_to_string(path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("selfbench: cannot read schema {path}: {e}");
                return ExitCode::FAILURE;
            }
        };
        if let Err(e) = selfbench::validate_artifact(&artifact, &schema_text) {
            eprintln!("selfbench: artifact violates schema: {e}");
            return ExitCode::FAILURE;
        }
        eprintln!("selfbench: artifact validates against {path}");
    }

    if let Some(path) = &json_path {
        if let Err(e) = std::fs::write(path, artifact.write()) {
            eprintln!("selfbench: cannot write {path}: {e}");
            return ExitCode::FAILURE;
        }
        eprintln!("selfbench: wrote {path}");
    }

    if let Some(path) = &baseline_path {
        let committed = match std::fs::read_to_string(path).map_err(|e| e.to_string()) {
            Ok(text) => match Json::parse(&text) {
                Ok(v) => v,
                Err(e) => {
                    eprintln!("selfbench: cannot parse {path}: {e}");
                    return ExitCode::FAILURE;
                }
            },
            Err(e) => {
                eprintln!("selfbench: cannot read {path}: {e}");
                return ExitCode::FAILURE;
            }
        };
        match selfbench::check_against_baseline(&bench, &committed, 0.2) {
            Ok((eps, committed_eps)) => eprintln!(
                "selfbench: gate ok — {eps:.0} events/sec vs committed {committed_eps:.0}"
            ),
            Err(e) => {
                eprintln!("selfbench: GATE FAILED — {e}");
                return ExitCode::FAILURE;
            }
        }
    }

    ExitCode::SUCCESS
}
