//! Regenerates Table 3: the effect of the modified (NEWAPI) socket
//! interface, which shares buffers between the application and the
//! protocol stack, eliminating the copy at the socket boundary (§4.2).
//!
//! Usage: `cargo run --release -p psd-bench --bin table3 [--quick]`

use psd_bench::tables::{fmt_pair, table3_decstation, TCP_SIZES, UDP_SIZES};
use psd_bench::{protolat, ttcp, ApiStyle};
use psd_server::Proto;
use psd_sim::Platform;
use psd_systems::{SystemConfig, TestBed};

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let (bytes, rounds) = if quick {
        (2 << 20, 50)
    } else {
        (16 << 20, 200)
    };
    let platform = Platform::DecStation5000_200;

    println!("==== Table 3: NEWAPI (shared application/protocol buffers) ====");
    println!(
        "ttcp: {} MB; latency: {} round trips/size; (paper values in parens)\n",
        bytes >> 20,
        rounds
    );

    for row in table3_decstation() {
        let config = row.config;
        // The in-kernel rows use the conventional interface (they are
        // the comparison baselines); library rows use NEWAPI.
        let api = if config.is_library() {
            ApiStyle::Newapi
        } else {
            ApiStyle::Classic
        };
        let label = if config.is_library() {
            format!("{} + NEWAPI", config.label())
        } else {
            config.label().to_string()
        };
        let mut bed = TestBed::new(config, platform, 42);
        let t = ttcp(&mut bed, bytes, api);
        println!("{label}");
        println!(
            "  throughput KB/s : {}",
            fmt_pair(t.kb_per_sec, row.throughput)
        );
        print!("  TCP rtt ms      :");
        for (i, &size) in TCP_SIZES.iter().enumerate() {
            let mut bed = TestBed::new(config, platform, 43 + i as u64);
            let lat = protolat(&mut bed, Proto::Tcp, size, 20, rounds, api);
            print!(
                "  {:5.2}({:5.2})",
                lat.rtt.as_millis_f64(),
                row.tcp_ms[i].unwrap_or(0.0)
            );
        }
        println!();
        print!("  UDP rtt ms      :");
        for (i, &size) in UDP_SIZES.iter().enumerate() {
            let mut bed = TestBed::new(config, platform, 53 + i as u64);
            let lat = protolat(&mut bed, Proto::Udp, size, 20, rounds, api);
            print!(
                "  {:5.2}({:5.2})",
                lat.rtt.as_millis_f64(),
                row.udp_ms[i].unwrap_or(0.0)
            );
        }
        println!("\n");
    }

    // §4.2's headline deltas: classic vs NEWAPI on the same config.
    println!("-- §4.2 derived deltas (classic → NEWAPI, user-user throughput) --");
    for config in [SystemConfig::LibraryIpc, SystemConfig::LibraryShmIpf] {
        let mut bed = TestBed::new(config, platform, 42);
        let classic = ttcp(&mut bed, bytes, ApiStyle::Classic).kb_per_sec;
        let mut bed = TestBed::new(config, platform, 42);
        let newapi = ttcp(&mut bed, bytes, ApiStyle::Newapi).kb_per_sec;
        let paper = match config {
            SystemConfig::LibraryIpc => "910 → 959 (+5%)",
            _ => "1088 → 1099 (+1%)",
        };
        println!(
            "  {:<28} {:.0} → {:.0} KB/s ({:+.1}%)   paper: {}",
            config.label(),
            classic,
            newapi,
            (newapi / classic - 1.0) * 100.0,
            paper
        );
    }
}
