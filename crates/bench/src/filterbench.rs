//! The filter microbenchmark: what did the compile tier buy?
//!
//! The compile tier (`psd_filter::compiled`) exists for one reason —
//! CSPF-style demultiplexing runs *every* installed program against
//! *every* received packet, so per-run interpreter overhead (the
//! per-run stack allocation above all) multiplies by the table size.
//! This module measures that overhead on two axes and emits the
//! `BENCH_8.json` artifact the CI regression gate pins:
//!
//! 1. **Program stage.** N canonical session programs run back-to-back
//!    against a fixed probe-frame batch, once through the interpreter
//!    (`Program::run`) and once through the compiled artifacts
//!    (`CompiledFilter::run`). Reported as programs/sec and ns per
//!    program run — the raw per-run cost the demux path pays N times
//!    per packet under CSPF.
//! 2. **Table stage.** A populated `DemuxTable` classifying the same
//!    batch under every (strategy × engine) pair at N ∈ {16, 256,
//!    4096} filters. Reported as matches/sec and ns per classified
//!    frame — the end-to-end demultiplexing cost Table 5 charges in
//!    virtual time, here in wall-clock terms.
//!
//! Every count in the artifact (runs, accepts, classifies, charged
//! steps) is deterministic for the seed; only the `wall_ms` /
//! `*_per_sec` / `ns_per_*` / `speedup` fields depend on the machine.
//! Two same-seed runs therefore agree byte-for-byte after
//! [`normalized_text`] zeroes the volatile fields — CI runs the quick
//! matrix twice and diffs exactly that. The regression gate compares
//! ns/match for the (Cspf, Compiled, 4096) cell against the committed
//! artifact; the headline `speedup` member is the interpreter:compiled
//! ns/match ratio in the same cell, the number the compile tier is
//! accountable for.

use std::time::Instant;

use psd_filter::{
    compile_endpoint, CompiledFilter, DemuxStrategy, DemuxTable, EndpointSpec, FilterEngine,
    Program,
};
use psd_sim::Rng;
use psd_wire::{
    EtherAddr, EtherType, EthernetHeader, IpProto, Ipv4Header, TcpFlags, TcpHeader, UdpHeader,
};
use std::net::Ipv4Addr;

use crate::json::{normalize_volatile, validate, Json};

/// Seed for every filterbench run (specs and probe frames).
pub const SEED: u64 = 77;

/// Probe frames per batch; every measured loop iterates this batch.
pub const FRAMES: usize = 64;

/// JSON members that legitimately differ between same-seed runs.
pub const VOLATILE_FIELDS: &[&str] = &[
    "wall_ms",
    "ns_per_run",
    "programs_per_sec",
    "ns_per_match",
    "matches_per_sec",
    "speedup",
];

/// One program-stage measurement: N programs × frame batch × reps
/// through a single engine.
#[derive(Clone, Copy, Debug)]
pub struct ProgramRow {
    /// Engine under test.
    pub engine: FilterEngine,
    /// Programs in the set.
    pub filters: usize,
    /// Program executions performed (deterministic).
    pub runs: u64,
    /// Accepting executions (deterministic; also defeats dead-code
    /// elimination of the measured loop).
    pub accepts: u64,
    /// Wall-clock nanoseconds for the measured loop.
    pub wall_ns: u128,
}

impl ProgramRow {
    /// Program executions per wall-clock second.
    pub fn programs_per_sec(&self) -> f64 {
        self.runs as f64 / (self.wall_ns as f64 / 1e9)
    }

    /// Wall-clock nanoseconds per program execution.
    pub fn ns_per_run(&self) -> f64 {
        self.wall_ns as f64 / self.runs as f64
    }
}

/// One table-stage measurement: a populated demux table classifying
/// the frame batch under one (strategy, engine) pair.
#[derive(Clone, Copy, Debug)]
pub struct TableRow {
    /// Demultiplexing strategy.
    pub strategy: DemuxStrategy,
    /// Engine under test.
    pub engine: FilterEngine,
    /// Installed filters.
    pub filters: usize,
    /// Classify calls performed (deterministic).
    pub classifies: u64,
    /// Total charged steps across all classifies (deterministic, and
    /// engine-independent by the equivalence contract).
    pub steps: u64,
    /// Frames that found an owner (deterministic).
    pub matched: u64,
    /// Wall-clock nanoseconds for the measured loop.
    pub wall_ns: u128,
}

impl TableRow {
    /// Classified frames per wall-clock second.
    pub fn matches_per_sec(&self) -> f64 {
        self.classifies as f64 / (self.wall_ns as f64 / 1e9)
    }

    /// Wall-clock nanoseconds per classified frame.
    pub fn ns_per_match(&self) -> f64 {
        self.wall_ns as f64 / self.classifies as f64
    }
}

/// A complete filter-benchmark result.
#[derive(Clone, Debug)]
pub struct FilterBench {
    /// True when run with the reduced `--quick` matrix.
    pub quick: bool,
    /// Program-stage rows, by (engine, N).
    pub program: Vec<ProgramRow>,
    /// Table-stage rows, by (strategy, engine, N).
    pub table: Vec<TableRow>,
}

fn engine_label(e: FilterEngine) -> &'static str {
    match e {
        FilterEngine::Interpret => "Interpret",
        FilterEngine::Compiled => "Compiled",
    }
}

fn strategy_label(s: DemuxStrategy) -> &'static str {
    match s {
        DemuxStrategy::Cspf => "Cspf",
        DemuxStrategy::Mpf => "Mpf",
    }
}

const HOST_IP: Ipv4Addr = Ipv4Addr::new(10, 0, 0, 2);

/// A random endpoint spec over a port space sized to the table (the
/// same distribution the Table 5 workload installs).
fn rand_spec(rng: &mut Rng, ports: u64) -> EndpointSpec {
    let proto = if rng.chance(0.3) {
        IpProto::Tcp
    } else {
        IpProto::Udp
    };
    let lport = rng.range(1000, 1000 + ports - 1) as u16;
    if rng.chance(0.4) {
        EndpointSpec::connected(
            proto,
            HOST_IP,
            lport,
            Ipv4Addr::new(10, 0, 0, rng.range(1, 4) as u8),
            rng.range(2000, 2007) as u16,
        )
    } else {
        EndpointSpec::unconnected(proto, HOST_IP, lport)
    }
}

fn frame_for(tcp: bool, src: (Ipv4Addr, u16), dst: (Ipv4Addr, u16)) -> Vec<u8> {
    let proto = if tcp { IpProto::Tcp } else { IpProto::Udp };
    let tl = if tcp { 20 } else { 8 };
    let ip = Ipv4Header::new(src.0, dst.0, proto, tl);
    let eth = EthernetHeader {
        dst: EtherAddr::local(2),
        src: EtherAddr::local(1),
        ethertype: EtherType::Ipv4,
    };
    let mut f = eth.encode().to_vec();
    f.extend_from_slice(&ip.encode());
    if tcp {
        let h = TcpHeader {
            src_port: src.1,
            dst_port: dst.1,
            seq: 0,
            ack: 0,
            flags: TcpFlags::ACK,
            window: 0,
            urgent: 0,
            mss: None,
        };
        f.extend_from_slice(&h.encode());
    } else {
        f.extend_from_slice(&UdpHeader::new(src.1, dst.1, 0).encode());
    }
    f
}

/// The seeded corpus for one table size: N distinct specs and the
/// probe batch — three quarters aimed at installed endpoints, one
/// quarter at ports no filter claims (the CSPF worst case: a full
/// scan).
fn corpus(n: usize) -> (Vec<EndpointSpec>, Vec<Vec<u8>>) {
    let mut rng = Rng::new(SEED ^ (n as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15));
    let ports = (n as u64) * 3 / 2 + 8;
    let mut specs = Vec::with_capacity(n);
    let mut seen = std::collections::HashSet::new();
    while specs.len() < n {
        let spec = rand_spec(&mut rng, ports);
        if seen.insert(spec) {
            specs.push(spec);
        }
    }
    let frames = (0..FRAMES)
        .map(|i| {
            if i % 4 == 3 {
                // Unclaimed destination port: misses every filter.
                frame_for(false, (Ipv4Addr::new(10, 0, 0, 1), 2003), (HOST_IP, 900))
            } else {
                let spec = specs[rng.below(specs.len() as u64) as usize];
                let (rip, rport) = spec.remote.unwrap_or((Ipv4Addr::new(10, 0, 0, 3), 2004));
                frame_for(
                    spec.proto == IpProto::Tcp,
                    (rip, rport),
                    (spec.local_ip, spec.local_port),
                )
            }
        })
        .collect();
    (specs, frames)
}

/// Measures one program-stage row: every program against every frame,
/// `reps` times, through the given engine.
pub fn program_row(engine: FilterEngine, n: usize) -> ProgramRow {
    let (specs, frames) = corpus(n);
    let programs: Vec<Program> = specs.iter().map(compile_endpoint).collect();
    let artifacts: Vec<CompiledFilter> = programs.iter().map(CompiledFilter::compile).collect();
    // Scale reps so every row does comparable total work (~500k runs)
    // regardless of N; derived from N alone, so counts stay
    // deterministic.
    let reps = (500_000 / (n * FRAMES)).max(1);
    let mut runs = 0u64;
    let mut accepts = 0u64;
    let t0 = Instant::now();
    for _ in 0..reps {
        for frame in &frames {
            match engine {
                FilterEngine::Interpret => {
                    for p in &programs {
                        runs += 1;
                        accepts += u64::from(p.run(frame).accepted);
                    }
                }
                FilterEngine::Compiled => {
                    for a in &artifacts {
                        runs += 1;
                        accepts += u64::from(a.run(frame).accepted);
                    }
                }
            }
        }
    }
    let wall_ns = t0.elapsed().as_nanos();
    ProgramRow {
        engine,
        filters: n,
        runs,
        accepts,
        wall_ns,
    }
}

/// Measures one table-stage row: a table of N filters classifying the
/// frame batch `reps` times under one (strategy, engine) pair.
pub fn table_row(strategy: DemuxStrategy, engine: FilterEngine, n: usize) -> TableRow {
    let (specs, frames) = corpus(n);
    let mut table: DemuxTable<usize> = DemuxTable::with_engine(strategy, engine);
    for (owner, spec) in specs.iter().enumerate() {
        table.install(*spec, owner);
    }
    // CSPF classify cost grows with N; shrink reps as N grows so the
    // row's wall time stays bounded. Derived from N alone.
    let reps = (2_048 / n).max(1);
    let mut classifies = 0u64;
    let mut steps = 0u64;
    let mut matched = 0u64;
    let t0 = Instant::now();
    for _ in 0..reps {
        for frame in &frames {
            let r = table.classify(frame);
            classifies += 1;
            steps += r.steps as u64;
            matched += u64::from(r.owner.is_some());
        }
    }
    let wall_ns = t0.elapsed().as_nanos();
    TableRow {
        strategy,
        engine,
        filters: n,
        classifies,
        steps,
        matched,
        wall_ns,
    }
}

/// Table sizes for the full and `--quick` matrices. 4096 must appear
/// in both: it is the cell the CI gate and the ≥2× acceptance
/// criterion read.
pub fn scales(quick: bool) -> &'static [usize] {
    if quick {
        &[16, 4096]
    } else {
        &[16, 256, 4096]
    }
}

/// Runs the full (or `--quick`) filter benchmark.
pub fn run(quick: bool) -> FilterBench {
    let engines = [FilterEngine::Interpret, FilterEngine::Compiled];
    let mut program = Vec::new();
    for &n in scales(quick) {
        for engine in engines {
            program.push(program_row(engine, n));
        }
    }
    let mut table = Vec::new();
    for strategy in [DemuxStrategy::Cspf, DemuxStrategy::Mpf] {
        for &n in scales(quick) {
            for engine in engines {
                table.push(table_row(strategy, engine, n));
            }
        }
    }
    FilterBench {
        quick,
        program,
        table,
    }
}

impl FilterBench {
    /// The interpreter:compiled ns/match ratio for a (strategy, N)
    /// cell, if both rows exist. Above 1.0 means the compiled tier is
    /// faster.
    pub fn speedup_at(&self, strategy: DemuxStrategy, filters: usize) -> Option<f64> {
        let find = |e: FilterEngine| {
            self.table
                .iter()
                .find(|r| r.strategy == strategy && r.engine == e && r.filters == filters)
        };
        let interp = find(FilterEngine::Interpret)?;
        let comp = find(FilterEngine::Compiled)?;
        Some(interp.ns_per_match() / comp.ns_per_match())
    }

    /// A deterministic signature of the run: every count that must be
    /// identical between two same-seed executions — including the
    /// charged steps, which the equivalence contract makes
    /// engine-independent.
    pub fn deterministic_signature(&self) -> String {
        let mut sig = String::new();
        for r in &self.program {
            sig.push_str(&format!(
                "program:{}:{}:{}:{};",
                engine_label(r.engine),
                r.filters,
                r.runs,
                r.accepts
            ));
        }
        for r in &self.table {
            sig.push_str(&format!(
                "table:{}:{}:{}:{}:{}:{};",
                strategy_label(r.strategy),
                engine_label(r.engine),
                r.filters,
                r.classifies,
                r.steps,
                r.matched
            ));
        }
        sig
    }

    /// Serializes the artifact (see `BENCH_FILTER.schema.json`).
    pub fn to_json(&self) -> Json {
        let program_rows = Json::Arr(
            self.program
                .iter()
                .map(|r| {
                    Json::obj(vec![
                        ("engine", Json::str(engine_label(r.engine))),
                        ("filters", Json::Num(r.filters as f64)),
                        ("runs", Json::Num(r.runs as f64)),
                        ("accepts", Json::Num(r.accepts as f64)),
                        ("wall_ms", Json::Num(r.wall_ns as f64 / 1e6)),
                        ("programs_per_sec", Json::Num(r.programs_per_sec())),
                        ("ns_per_run", Json::Num(r.ns_per_run())),
                    ])
                })
                .collect(),
        );
        let table_rows = Json::Arr(
            self.table
                .iter()
                .map(|r| {
                    Json::obj(vec![
                        ("strategy", Json::str(strategy_label(r.strategy))),
                        ("engine", Json::str(engine_label(r.engine))),
                        ("filters", Json::Num(r.filters as f64)),
                        ("classifies", Json::Num(r.classifies as f64)),
                        ("steps", Json::Num(r.steps as f64)),
                        ("matched", Json::Num(r.matched as f64)),
                        ("wall_ms", Json::Num(r.wall_ns as f64 / 1e6)),
                        ("matches_per_sec", Json::Num(r.matches_per_sec())),
                        ("ns_per_match", Json::Num(r.ns_per_match())),
                    ])
                })
                .collect(),
        );
        let mut doc = vec![
            ("version", Json::Num(1.0)),
            ("bench", Json::str("filterbench")),
            ("seed", Json::Num(SEED as f64)),
            ("quick", Json::Bool(self.quick)),
            ("program", program_rows),
            ("table", table_rows),
        ];
        if let Some(s) = self.speedup_at(DemuxStrategy::Cspf, 4096) {
            doc.push(("speedup", Json::Num(s)));
        }
        Json::obj(doc)
    }

    /// The human-readable table printed to stdout.
    pub fn table(&self) -> String {
        let mut out = String::new();
        out.push_str("==== Filter microbenchmark ====\n");
        out.push_str(&format!(
            "seed {SEED}; {FRAMES}-frame probe batch (3/4 aimed, 1/4 full-scan misses){}\n\n",
            if self.quick { " [quick]" } else { "" }
        ));
        out.push_str("program stage    engine     filters        runs  programs/sec   ns/run\n");
        for r in &self.program {
            out.push_str(&format!(
                "                 {:<9} {:>8} {:>11} {:>13.0} {:>8.1}\n",
                engine_label(r.engine),
                r.filters,
                r.runs,
                r.programs_per_sec(),
                r.ns_per_run(),
            ));
        }
        out.push_str(
            "\ntable stage  strategy  engine     filters  classifies   matches/sec  ns/match\n",
        );
        for r in &self.table {
            out.push_str(&format!(
                "             {:<9} {:<9} {:>8} {:>11} {:>13.0} {:>9.0}\n",
                strategy_label(r.strategy),
                engine_label(r.engine),
                r.filters,
                r.classifies,
                r.matches_per_sec(),
                r.ns_per_match(),
            ));
        }
        if let Some(s) = self.speedup_at(DemuxStrategy::Cspf, 4096) {
            out.push_str(&format!(
                "\ncompiled-tier speedup at CSPF/4096: {s:.2}x ns/match\n"
            ));
        }
        out
    }
}

/// Checks measured ns/match for the (Cspf, Compiled, 4096) cell
/// against a committed artifact: fails (Err) when it exceeds
/// `1 + tolerance` of the committed value (lower is better, so the
/// gate is an upper bound). Returns (measured, committed) on success.
pub fn check_against_baseline(
    measured: &FilterBench,
    committed: &Json,
    tolerance: f64,
) -> Result<(f64, f64), String> {
    let committed_ns = committed
        .get("table")
        .and_then(Json::as_arr)
        .and_then(|rows| {
            rows.iter().find(|r| {
                r.get("strategy").and_then(Json::as_str) == Some("Cspf")
                    && r.get("engine").and_then(Json::as_str) == Some("Compiled")
                    && r.get("filters").and_then(Json::as_f64) == Some(4096.0)
            })
        })
        .and_then(|r| r.get("ns_per_match"))
        .and_then(Json::as_f64)
        .ok_or("committed artifact has no (Cspf, Compiled, 4096) table row")?;
    let row = measured
        .table
        .iter()
        .find(|r| {
            r.strategy == DemuxStrategy::Cspf
                && r.engine == FilterEngine::Compiled
                && r.filters == 4096
        })
        .ok_or("measured run has no (Cspf, Compiled, 4096) table row")?;
    let ns = row.ns_per_match();
    if ns > committed_ns * (1.0 + tolerance) {
        return Err(format!(
            "ns/match regression: measured {ns:.0} > {:.0} ({}% above committed {committed_ns:.0})",
            committed_ns * (1.0 + tolerance),
            (tolerance * 100.0) as u32,
        ));
    }
    Ok((ns, committed_ns))
}

/// Validates an artifact against the checked-in
/// `BENCH_FILTER.schema.json` text.
pub fn validate_artifact(artifact: &Json, schema_text: &str) -> Result<(), String> {
    let schema = Json::parse(schema_text).map_err(|e| format!("schema unparseable: {e}"))?;
    validate(artifact, &schema)
}

/// Normalizes an artifact for same-seed comparison (zeroes the
/// wall-clock-derived fields).
pub fn normalized_text(artifact: &Json) -> String {
    let mut copy = artifact.clone();
    normalize_volatile(&mut copy, VOLATILE_FIELDS);
    copy.write()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn corpus_is_deterministic_and_distinct() {
        let (specs_a, frames_a) = corpus(64);
        let (specs_b, frames_b) = corpus(64);
        assert_eq!(specs_a, specs_b);
        assert_eq!(frames_a, frames_b);
        let set: std::collections::HashSet<_> = specs_a.iter().collect();
        assert_eq!(set.len(), specs_a.len(), "specs must be distinct");
    }

    #[test]
    fn program_rows_agree_on_deterministic_counts() {
        let interp = program_row(FilterEngine::Interpret, 32);
        let comp = program_row(FilterEngine::Compiled, 32);
        assert_eq!(interp.runs, comp.runs);
        assert_eq!(
            interp.accepts, comp.accepts,
            "engines must accept the same frames"
        );
        assert!(interp.accepts > 0, "corpus must contain matches");
        assert!(
            interp.accepts < interp.runs,
            "corpus must contain misses too"
        );
    }

    #[test]
    fn table_rows_agree_on_steps_across_engines() {
        for strategy in [DemuxStrategy::Cspf, DemuxStrategy::Mpf] {
            let interp = table_row(strategy, FilterEngine::Interpret, 64);
            let comp = table_row(strategy, FilterEngine::Compiled, 64);
            assert_eq!(interp.classifies, comp.classifies);
            assert_eq!(
                interp.steps, comp.steps,
                "{strategy:?}: charged steps must be engine-independent"
            );
            assert_eq!(interp.matched, comp.matched);
            assert!(interp.matched > 0);
        }
    }

    #[test]
    fn regression_gate_trips_on_slowdown() {
        let fast = FilterBench {
            quick: true,
            program: Vec::new(),
            table: vec![TableRow {
                strategy: DemuxStrategy::Cspf,
                engine: FilterEngine::Compiled,
                filters: 4096,
                classifies: 1_000,
                steps: 1,
                matched: 1,
                wall_ns: 1_000_000,
            }],
        };
        let mut slow = fast.clone();
        slow.table[0].wall_ns = 2_000_000; // double the ns/match
        let committed = fast.to_json();
        assert!(check_against_baseline(&fast, &committed, 0.2).is_ok());
        assert!(check_against_baseline(&slow, &committed, 0.2).is_err());
    }

    #[test]
    fn normalized_runs_are_byte_identical() {
        let a = run(true);
        let b = run(true);
        assert_eq!(a.deterministic_signature(), b.deterministic_signature());
        assert_eq!(normalized_text(&a.to_json()), normalized_text(&b.to_json()));
    }
}
