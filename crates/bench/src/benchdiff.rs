//! Perf-trajectory tooling over committed `BENCH_*.json` artifacts.
//!
//! `benchdiff` turns two or more benchmark artifacts of the same kind
//! into a per-metric delta report, and subsumes the three hand-rolled
//! per-artifact CI regression gates behind one entry point:
//!
//! - selfbench (`BENCH_6.json`): the wheel engine's events/sec at
//!   65 536 timers must not fall more than `tolerance` below the
//!   committed value,
//! - filterbench (`BENCH_8.json`): ns/match in the
//!   (Cspf, Compiled, 4096) cell must not rise more than `tolerance`
//!   above the committed value, and the compiled:interpreted speedup in
//!   that cell must stay above an optional floor,
//! - table6 (`BENCH_9.json`): per configuration, ns/pkt in the
//!   (eager, batch 64) cell must not rise more than `tolerance` above
//!   the committed value.
//!
//! The thresholds and cells are exactly the ones the retired
//! `--check-baseline` flags of `selfbench`, `filterbench`, and `table6`
//! enforced (see `selfbench::check_against_baseline` and friends, which
//! remain the in-process versions); unit tests below hold the two
//! formulations to identical verdicts. The difference is operational:
//! those gates compare a *fresh in-process run* against the committed
//! artifact, while `benchdiff` compares *artifact against artifact*, so
//! one binary can gate any number of benchmarks after the fact.
//!
//! Metric extraction is deterministic: metrics appear in artifact
//! order, named by the identifying members of their row (e.g.
//! `wheel[timers=65536].events_per_sec`), so reports over the same
//! artifacts are byte-identical.

use crate::json::Json;

/// One extracted scalar with a stable, self-describing name.
#[derive(Clone, Debug, PartialEq)]
pub struct Metric {
    /// Stable identifier, e.g. `table[Cspf,Compiled,4096].ns_per_match`.
    pub name: String,
    /// The value in the artifact.
    pub value: f64,
    /// Whether a larger value is an improvement (throughput) or a
    /// regression (latency). Drives the sign convention in reports.
    pub higher_is_better: bool,
}

/// One metric's change between a baseline and a measured artifact.
#[derive(Clone, Debug)]
pub struct Delta {
    /// The metric name (present in both artifacts).
    pub name: String,
    /// Baseline value.
    pub base: f64,
    /// Measured value.
    pub new: f64,
    /// Whether a larger value is an improvement.
    pub higher_is_better: bool,
}

impl Delta {
    /// Relative change, `new/base - 1`, in percent. 0 when the baseline
    /// is 0 (nothing sensible to report).
    pub fn pct(&self) -> f64 {
        if self.base == 0.0 {
            0.0
        } else {
            (self.new / self.base - 1.0) * 100.0
        }
    }

    /// True when the change is in the worse direction by more than
    /// `tolerance` (a fraction, e.g. 0.2 for 20%).
    pub fn regressed(&self, tolerance: f64) -> bool {
        if self.base == 0.0 {
            return false;
        }
        if self.higher_is_better {
            self.new < self.base * (1.0 - tolerance)
        } else {
            self.new > self.base * (1.0 + tolerance)
        }
    }
}

/// The benchmark kind recorded in an artifact's `bench` member.
pub fn kind_of(artifact: &Json) -> Result<&str, String> {
    artifact
        .get("bench")
        .and_then(Json::as_str)
        .ok_or_else(|| "artifact has no \"bench\" member".to_string())
}

fn num(row: &Json, key: &str) -> Option<f64> {
    row.get(key).and_then(Json::as_f64)
}

fn text<'j>(row: &'j Json, key: &str) -> Option<&'j str> {
    row.get(key).and_then(Json::as_str)
}

fn fmt_count(v: f64) -> String {
    if v == v.trunc() && v.abs() < 1e15 {
        format!("{}", v as i64)
    } else {
        format!("{v}")
    }
}

/// Extracts the comparable metrics of an artifact, in artifact order.
/// Rows missing their identifying members are skipped rather than
/// failing the whole extraction — a report over a newer artifact with
/// extra rows should still cover the common subset.
pub fn metrics_of(artifact: &Json) -> Result<Vec<Metric>, String> {
    let kind = kind_of(artifact)?;
    let mut out = Vec::new();
    let push = |out: &mut Vec<Metric>, name: String, value: Option<f64>, hib: bool| {
        if let Some(value) = value {
            out.push(Metric {
                name,
                value,
                higher_is_better: hib,
            });
        }
    };
    match kind {
        "selfbench" => {
            for series in ["baseline", "wheel"] {
                let rows = artifact
                    .get("engine")
                    .and_then(|e| e.get(series))
                    .and_then(Json::as_arr)
                    .unwrap_or(&[]);
                for row in rows {
                    let Some(timers) = num(row, "timers") else {
                        continue;
                    };
                    let id = format!("engine.{series}[timers={}]", fmt_count(timers));
                    push(
                        &mut out,
                        format!("{id}.events_per_sec"),
                        num(row, "events_per_sec"),
                        true,
                    );
                }
            }
            push(
                &mut out,
                "engine.speedup".to_string(),
                artifact
                    .get("engine")
                    .and_then(|e| e.get("speedup"))
                    .and_then(Json::as_f64),
                true,
            );
            for row in artifact.get("packet").and_then(Json::as_arr).unwrap_or(&[]) {
                let (Some(placement), Some(sessions)) =
                    (text(row, "placement"), num(row, "sessions"))
                else {
                    continue;
                };
                let id = format!("packet[{placement},{}]", fmt_count(sessions));
                push(
                    &mut out,
                    format!("{id}.ns_per_sim_packet"),
                    num(row, "ns_per_sim_packet"),
                    false,
                );
            }
        }
        "filterbench" => {
            for row in artifact
                .get("program")
                .and_then(Json::as_arr)
                .unwrap_or(&[])
            {
                let (Some(engine), Some(filters)) = (text(row, "engine"), num(row, "filters"))
                else {
                    continue;
                };
                let id = format!("program[{engine},{}]", fmt_count(filters));
                push(
                    &mut out,
                    format!("{id}.ns_per_run"),
                    num(row, "ns_per_run"),
                    false,
                );
            }
            for row in artifact.get("table").and_then(Json::as_arr).unwrap_or(&[]) {
                let (Some(strategy), Some(engine), Some(filters)) = (
                    text(row, "strategy"),
                    text(row, "engine"),
                    num(row, "filters"),
                ) else {
                    continue;
                };
                let id = format!("table[{strategy},{engine},{}]", fmt_count(filters));
                push(
                    &mut out,
                    format!("{id}.ns_per_match"),
                    num(row, "ns_per_match"),
                    false,
                );
            }
        }
        "table6" => {
            for row in artifact.get("table").and_then(Json::as_arr).unwrap_or(&[]) {
                let (Some(config), Some(mode), Some(batch)) =
                    (text(row, "config"), text(row, "mode"), num(row, "batch"))
                else {
                    continue;
                };
                let id = format!("table[{config},{mode},{}]", fmt_count(batch));
                push(
                    &mut out,
                    format!("{id}.ns_per_pkt"),
                    num(row, "ns_per_pkt"),
                    false,
                );
                push(
                    &mut out,
                    format!("{id}.crossings_per_pkt"),
                    num(row, "crossings_per_pkt"),
                    false,
                );
            }
        }
        other => return Err(format!("unknown bench kind \"{other}\"")),
    }
    if out.is_empty() {
        return Err(format!("artifact of kind \"{kind}\" yields no metrics"));
    }
    Ok(out)
}

/// Per-metric deltas between a baseline artifact and a measured one
/// (both must be the same kind). Metrics are matched by name; only the
/// intersection is reported, in baseline order.
pub fn diff(base: &Json, new: &Json) -> Result<Vec<Delta>, String> {
    let (bk, nk) = (kind_of(base)?, kind_of(new)?);
    if bk != nk {
        return Err(format!("kind mismatch: baseline is {bk}, measured is {nk}"));
    }
    let base_metrics = metrics_of(base)?;
    let new_metrics = metrics_of(new)?;
    Ok(base_metrics
        .into_iter()
        .filter_map(|b| {
            new_metrics
                .iter()
                .find(|n| n.name == b.name)
                .map(|n| Delta {
                    name: b.name,
                    base: b.value,
                    new: n.value,
                    higher_is_better: b.higher_is_better,
                })
        })
        .collect())
}

/// Human-readable delta table. `labels` names the two artifacts (file
/// paths in the CLI). Improvements print with their sign; regressions
/// beyond `tolerance` are flagged.
pub fn report_text(deltas: &[Delta], labels: (&str, &str), tolerance: f64) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "benchdiff: {} -> {} ({} metrics, tolerance {:.0}%)\n",
        labels.0,
        labels.1,
        deltas.len(),
        tolerance * 100.0
    ));
    let width = deltas.iter().map(|d| d.name.len()).max().unwrap_or(0);
    for d in deltas {
        let flag = if d.regressed(tolerance) {
            "  REGRESSION"
        } else {
            ""
        };
        out.push_str(&format!(
            "{:width$}  {:>14.2}  {:>14.2}  {:>+8.2}%{flag}\n",
            d.name,
            d.base,
            d.new,
            d.pct(),
        ));
    }
    out
}

/// Machine-readable delta report.
pub fn report_json(deltas: &[Delta], labels: (&str, &str), tolerance: f64) -> Json {
    Json::obj(vec![
        ("version", Json::Num(1.0)),
        ("tool", Json::str("benchdiff")),
        ("baseline", Json::str(labels.0)),
        ("measured", Json::str(labels.1)),
        ("tolerance", Json::Num(tolerance)),
        (
            "deltas",
            Json::Arr(
                deltas
                    .iter()
                    .map(|d| {
                        Json::obj(vec![
                            ("name", Json::str(d.name.clone())),
                            ("base", Json::Num(d.base)),
                            ("new", Json::Num(d.new)),
                            ("pct", Json::Num(d.pct())),
                            ("higher_is_better", Json::Bool(d.higher_is_better)),
                            ("regressed", Json::Bool(d.regressed(tolerance))),
                        ])
                    })
                    .collect(),
            ),
        ),
    ])
}

/// The CI regression gate: checks a measured artifact against a
/// committed baseline of the same kind, reproducing the retired
/// per-binary `--check-baseline` verdicts cell for cell.
///
/// Returns one human line per passed check, or the first failure.
/// `min_speedup` applies only to filterbench artifacts (the
/// compiled:interpreted floor at the CSPF/4096 cell) and is ignored
/// elsewhere.
pub fn check(
    baseline: &Json,
    measured: &Json,
    tolerance: f64,
    min_speedup: Option<f64>,
) -> Result<Vec<String>, String> {
    let (bk, mk) = (kind_of(baseline)?, kind_of(measured)?);
    if bk != mk {
        return Err(format!("kind mismatch: baseline is {bk}, measured is {mk}"));
    }
    let mut lines = Vec::new();
    match bk {
        "selfbench" => {
            let name = "engine.wheel[timers=65536].events_per_sec";
            let (base, new) = gate_values(baseline, measured, name)?;
            if new < base * (1.0 - tolerance) {
                return Err(format!(
                    "events/sec regression: measured {new:.0} < {:.0} \
                     ({}% below committed {base:.0})",
                    base * (1.0 - tolerance),
                    (tolerance * 100.0) as u32,
                ));
            }
            lines.push(format!("{name}: {new:.0} vs committed {base:.0} — ok"));
        }
        "filterbench" => {
            let name = "table[Cspf,Compiled,4096].ns_per_match";
            let (base, new) = gate_values(baseline, measured, name)?;
            if new > base * (1.0 + tolerance) {
                return Err(format!(
                    "ns/match regression: measured {new:.0} > {:.0} \
                     ({}% above committed {base:.0})",
                    base * (1.0 + tolerance),
                    (tolerance * 100.0) as u32,
                ));
            }
            lines.push(format!("{name}: {new:.0} vs committed {base:.0} — ok"));
            if let Some(floor) = min_speedup {
                let interp = lookup(measured, "table[Cspf,Interpret,4096].ns_per_match")
                    .ok_or("measured artifact has no (Cspf, Interpret, 4096) cell")?;
                let compiled = lookup(measured, name)
                    .ok_or("measured artifact has no (Cspf, Compiled, 4096) cell")?;
                if compiled <= 0.0 {
                    return Err("measured compiled ns/match is not positive".to_string());
                }
                let speedup = interp / compiled;
                if speedup < floor {
                    return Err(format!(
                        "speedup floor: {speedup:.2}x < {floor:.2}x at CSPF/4096"
                    ));
                }
                lines.push(format!(
                    "compiled speedup at CSPF/4096: {speedup:.2}x >= {floor:.2}x — ok"
                ));
            }
        }
        "table6" => {
            for config in ["LibraryIpc", "LibraryShm", "LibraryShmIpf"] {
                let name = format!("table[{config},eager,64].ns_per_pkt");
                let (base, new) = gate_values(baseline, measured, &name)?;
                if new > base * (1.0 + tolerance) {
                    return Err(format!(
                        "{config}: ns/pkt regression at B=64: measured {new:.0} > {:.0} \
                         ({}% above committed {base:.0})",
                        base * (1.0 + tolerance),
                        (tolerance * 100.0) as u32,
                    ));
                }
                lines.push(format!("{name}: {new:.0} vs committed {base:.0} — ok"));
            }
        }
        other => return Err(format!("no gate defined for bench kind \"{other}\"")),
    }
    Ok(lines)
}

fn gate_values(baseline: &Json, measured: &Json, name: &str) -> Result<(f64, f64), String> {
    let base = lookup(baseline, name).ok_or_else(|| format!("committed artifact has no {name}"))?;
    let new = lookup(measured, name).ok_or_else(|| format!("measured run has no {name}"))?;
    Ok((base, new))
}

/// Resolves a metric name produced by [`metrics_of`] against an
/// artifact.
pub fn lookup(artifact: &Json, name: &str) -> Option<f64> {
    metrics_of(artifact)
        .ok()?
        .into_iter()
        .find(|m| m.name == name)
        .map(|m| m.value)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn committed(file: &str) -> Json {
        let path = format!("{}/../../{file}", env!("CARGO_MANIFEST_DIR"));
        Json::parse(&std::fs::read_to_string(&path).expect("committed artifact"))
            .expect("valid JSON")
    }

    /// Returns a copy with every numeric leaf under `member` scaled —
    /// a uniform slowdown/speedup of a whole artifact section.
    fn scaled(artifact: &Json, factor: f64) -> Json {
        fn scale(v: &mut Json, factor: f64) {
            match v {
                Json::Num(n) => *n *= factor,
                Json::Arr(items) => items.iter_mut().for_each(|i| scale(i, factor)),
                Json::Obj(members) => members.iter_mut().for_each(|(k, v)| {
                    // Identifying members must survive scaling or rows
                    // stop matching.
                    if !matches!(
                        k.as_str(),
                        "timers" | "filters" | "batch" | "sessions" | "seed" | "version"
                    ) {
                        scale(v, factor);
                    }
                }),
                _ => {}
            }
        }
        let mut copy = artifact.clone();
        scale(&mut copy, factor);
        copy
    }

    #[test]
    fn extracts_metrics_from_all_committed_artifacts() {
        for (file, kind) in [
            ("BENCH_6.json", "selfbench"),
            ("BENCH_8.json", "filterbench"),
            ("BENCH_9.json", "table6"),
        ] {
            let artifact = committed(file);
            assert_eq!(kind_of(&artifact).unwrap(), kind);
            let metrics = metrics_of(&artifact).unwrap();
            assert!(!metrics.is_empty(), "{file} yields metrics");
            for m in &metrics {
                assert!(m.value.is_finite(), "{file}: {} is finite", m.name);
            }
        }
    }

    #[test]
    fn self_diff_is_all_zero() {
        let artifact = committed("BENCH_9.json");
        let deltas = diff(&artifact, &artifact).unwrap();
        assert!(!deltas.is_empty());
        for d in &deltas {
            assert_eq!(d.pct(), 0.0);
            assert!(!d.regressed(0.0));
        }
    }

    #[test]
    fn kind_mismatch_is_an_error() {
        let a = committed("BENCH_6.json");
        let b = committed("BENCH_8.json");
        assert!(diff(&a, &b).is_err());
        assert!(check(&a, &b, 0.2, None).is_err());
    }

    // Verdict parity with the retired per-binary gates: identical and
    // mildly-perturbed artifacts pass at the 20% tolerance the CI jobs
    // used; perturbations past the threshold fail, in the same
    // direction each binary's check_against_baseline enforced.

    #[test]
    fn selfbench_gate_parity() {
        let base = committed("BENCH_6.json");
        assert!(check(&base, &base, 0.2, None).is_ok());
        // 10% slower (events/sec scaled down) passes at 20%.
        assert!(check(&base, &scaled(&base, 0.9), 0.2, None).is_ok());
        // 30% slower fails — same verdict as selfbench --check-baseline.
        let err = check(&base, &scaled(&base, 0.7), 0.2, None).unwrap_err();
        assert!(err.contains("events/sec regression"), "{err}");
    }

    #[test]
    fn filterbench_gate_parity() {
        let base = committed("BENCH_8.json");
        assert!(check(&base, &base, 0.2, Some(2.0)).is_ok());
        // ns/match up 10% passes; up 30% fails.
        assert!(check(&base, &scaled(&base, 1.1), 0.2, None).is_ok());
        let err = check(&base, &scaled(&base, 1.3), 0.2, None).unwrap_err();
        assert!(err.contains("ns/match regression"), "{err}");
        // The committed artifact's own speedup clears the CI floor of
        // 2.0 — the same invariant filterbench --min-speedup 2.0 gated.
        let interp = lookup(&base, "table[Cspf,Interpret,4096].ns_per_match").unwrap();
        let compiled = lookup(&base, "table[Cspf,Compiled,4096].ns_per_match").unwrap();
        assert!(interp / compiled >= 2.0);
        // An absurd floor fails through the same path.
        let err = check(&base, &base, 0.2, Some(1000.0)).unwrap_err();
        assert!(err.contains("speedup floor"), "{err}");
    }

    #[test]
    fn table6_gate_parity() {
        let base = committed("BENCH_9.json");
        let lines = check(&base, &base, 0.2, None).unwrap();
        // One line per configuration, as table6's gate checked.
        assert_eq!(lines.len(), 3);
        assert!(check(&base, &scaled(&base, 1.1), 0.2, None).is_ok());
        let err = check(&base, &scaled(&base, 1.3), 0.2, None).unwrap_err();
        assert!(err.contains("ns/pkt regression"), "{err}");
    }

    #[test]
    fn reports_flag_regressions_per_direction() {
        let base = committed("BENCH_8.json");
        let slower = scaled(&base, 1.5);
        let deltas = diff(&base, &slower).unwrap();
        assert!(deltas.iter().all(|d| d.regressed(0.2)), "latency up 50%");
        let text = report_text(&deltas, ("a", "b"), 0.2);
        assert!(text.contains("REGRESSION"));
        let doc = report_json(&deltas, ("a", "b"), 0.2);
        assert_eq!(doc.get("tool").and_then(Json::as_str), Some("benchdiff"));
        // Round-trips through the writer/parser.
        assert_eq!(Json::parse(&doc.write()).unwrap(), doc);
    }
}
