//! Minimal JSON support for the self-benchmark artifact.
//!
//! The workspace is dependency-free by policy, so this module supplies
//! the three pieces `selfbench` needs, and nothing more:
//!
//! - [`Json`]: an order-preserving document model (objects keep
//!   insertion order, so emitted artifacts are byte-stable),
//! - [`Json::parse`] / [`Json::write`]: a recursive-descent parser and
//!   a pretty writer that round-trip each other,
//! - [`validate`]: a JSON-Schema *subset* checker (`type`, `required`,
//!   `properties`, `items`) — enough to pin the artifact's shape in CI,
//! - [`normalize_volatile`]: zeroes the named wall-clock-derived fields
//!   so two same-seed runs can be compared for byte identity.
//!
//! Numbers are `f64`, written in shortest round-trip form (integers
//! without a decimal point), which keeps deterministic counters exact.

use std::fmt::Write as _;

/// A JSON value. Object member order is preserved.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Looks up a member of an object.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The numeric value, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The string value, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Convenience constructor for an object.
    pub fn obj(members: Vec<(&str, Json)>) -> Json {
        Json::Obj(
            members
                .into_iter()
                .map(|(k, v)| (k.to_string(), v))
                .collect(),
        )
    }

    /// Convenience constructor for a string.
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    /// Parses a JSON document.
    pub fn parse(text: &str) -> Result<Json, String> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(format!("trailing bytes at offset {}", p.pos));
        }
        Ok(v)
    }

    /// Serializes with 2-space indentation and a trailing newline.
    pub fn write(&self) -> String {
        let mut out = String::new();
        self.write_into(&mut out, 0);
        out.push('\n');
        out
    }

    fn write_into(&self, out: &mut String, indent: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(n) => write_num(out, *n),
            Json::Str(s) => write_str(out, s),
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    pad(out, indent + 1);
                    item.write_into(out, indent + 1);
                }
                out.push('\n');
                pad(out, indent);
                out.push(']');
            }
            Json::Obj(members) => {
                if members.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (k, v)) in members.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    pad(out, indent + 1);
                    write_str(out, k);
                    out.push_str(": ");
                    v.write_into(out, indent + 1);
                }
                out.push('\n');
                pad(out, indent);
                out.push('}');
            }
        }
    }
}

fn pad(out: &mut String, indent: usize) {
    for _ in 0..indent {
        out.push_str("  ");
    }
}

fn write_num(out: &mut String, n: f64) {
    if !n.is_finite() {
        out.push_str("null"); // JSON has no NaN/Inf; never expected here
    } else if n == n.trunc() && n.abs() < 9_007_199_254_740_992.0 {
        let _ = write!(out, "{}", n as i64);
    } else {
        // `{:?}` is Rust's shortest round-trip float form.
        let _ = write!(out, "{n:?}");
    }
}

fn write_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while self.pos < self.bytes.len()
            && matches!(self.bytes[self.pos], b' ' | b'\t' | b'\n' | b'\r')
        {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at offset {}", b as char, self.pos))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(format!("bad literal at offset {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(format!("unexpected byte at offset {}", self.pos)),
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            while self.pos < self.bytes.len()
                && self.bytes[self.pos] != b'"'
                && self.bytes[self.pos] != b'\\'
            {
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| "invalid utf8".to_string())?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or("truncated escape")?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or("truncated \\u escape")?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex).map_err(|_| "bad \\u escape")?,
                                16,
                            )
                            .map_err(|_| "bad \\u escape")?;
                            self.pos += 4;
                            // Surrogates are not expected in our artifacts.
                            out.push(char::from_u32(code).ok_or("bad codepoint")?);
                        }
                        _ => return Err(format!("bad escape at offset {}", self.pos)),
                    }
                }
                _ => return Err("unterminated string".to_string()),
            }
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while self
            .peek()
            .is_some_and(|c| c.is_ascii_digit() || matches!(c, b'.' | b'e' | b'E' | b'+' | b'-'))
        {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| format!("bad number '{text}'"))
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at offset {}", self.pos)),
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            members.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(members));
                }
                _ => return Err(format!("expected ',' or '}}' at offset {}", self.pos)),
            }
        }
    }
}

/// Validates `value` against a JSON-Schema subset: `type` (string),
/// `required`, `properties`, `items`. Returns the first violation as
/// `Err(path: what)`.
pub fn validate(value: &Json, schema: &Json) -> Result<(), String> {
    validate_at(value, schema, "$")
}

fn type_name(v: &Json) -> &'static str {
    match v {
        Json::Null => "null",
        Json::Bool(_) => "boolean",
        Json::Num(n) => {
            if *n == n.trunc() {
                "integer"
            } else {
                "number"
            }
        }
        Json::Str(_) => "string",
        Json::Arr(_) => "array",
        Json::Obj(_) => "object",
    }
}

fn validate_at(value: &Json, schema: &Json, path: &str) -> Result<(), String> {
    if let Some(t) = schema.get("type").and_then(Json::as_str) {
        let actual = type_name(value);
        let ok = match t {
            "number" => actual == "number" || actual == "integer",
            other => actual == other,
        };
        if !ok {
            return Err(format!("{path}: expected {t}, found {actual}"));
        }
    }
    if let Some(required) = schema.get("required").and_then(Json::as_arr) {
        for name in required {
            let name = name.as_str().ok_or(format!("{path}: bad schema"))?;
            if value.get(name).is_none() {
                return Err(format!("{path}: missing required member '{name}'"));
            }
        }
    }
    if let Some(Json::Obj(props)) = schema.get("properties") {
        for (name, sub) in props {
            if let Some(member) = value.get(name) {
                validate_at(member, sub, &format!("{path}.{name}"))?;
            }
        }
    }
    if let Some(items) = schema.get("items") {
        if let Json::Arr(elems) = value {
            for (i, elem) in elems.iter().enumerate() {
                validate_at(elem, items, &format!("{path}[{i}]"))?;
            }
        }
    }
    Ok(())
}

/// Recursively zeroes every member whose name is in `volatile` —
/// the wall-clock-derived fields that legitimately differ between two
/// same-seed runs. Everything else must then match byte-for-byte.
pub fn normalize_volatile(value: &mut Json, volatile: &[&str]) {
    match value {
        Json::Obj(members) => {
            for (k, v) in members.iter_mut() {
                if volatile.contains(&k.as_str()) {
                    *v = Json::Num(0.0);
                } else {
                    normalize_volatile(v, volatile);
                }
            }
        }
        Json::Arr(items) => {
            for item in items.iter_mut() {
                normalize_volatile(item, volatile);
            }
        }
        _ => {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrips_a_document() {
        let doc = Json::obj(vec![
            ("name", Json::str("self\"bench\n")),
            ("count", Json::Num(12345.0)),
            ("rate", Json::Num(1.25e9)),
            ("neg", Json::Num(-0.5)),
            ("ok", Json::Bool(true)),
            ("none", Json::Null),
            (
                "rows",
                Json::Arr(vec![Json::Num(1.0), Json::str("two"), Json::Arr(vec![])]),
            ),
        ]);
        let text = doc.write();
        let back = Json::parse(&text).expect("parse");
        assert_eq!(back, doc);
        // Writing is a fixed point: parse(write(x)) writes identically.
        assert_eq!(back.write(), text);
    }

    #[test]
    fn integers_are_written_without_decimal_point() {
        let mut out = String::new();
        write_num(&mut out, 3_000_000.0);
        assert_eq!(out, "3000000");
    }

    #[test]
    fn validator_accepts_and_rejects() {
        let schema = Json::parse(
            r#"{
                "type": "object",
                "required": ["rows"],
                "properties": {
                    "rows": {
                        "type": "array",
                        "items": {
                            "type": "object",
                            "required": ["n"],
                            "properties": {"n": {"type": "number"}}
                        }
                    }
                }
            }"#,
        )
        .unwrap();
        let good = Json::parse(r#"{"rows": [{"n": 1}, {"n": 2.5}]}"#).unwrap();
        assert!(validate(&good, &schema).is_ok());
        let missing = Json::parse(r#"{"rows": [{"m": 1}]}"#).unwrap();
        assert!(validate(&missing, &schema).unwrap_err().contains("rows[0]"));
        let wrong_type = Json::parse(r#"{"rows": [{"n": "x"}]}"#).unwrap();
        assert!(validate(&wrong_type, &schema).is_err());
    }

    #[test]
    fn normalize_zeroes_only_volatile_fields() {
        let mut a =
            Json::parse(r#"{"events": 100, "wall_ms": 17, "sub": [{"wall_ms": 3}]}"#).unwrap();
        let mut b =
            Json::parse(r#"{"events": 100, "wall_ms": 99, "sub": [{"wall_ms": 8}]}"#).unwrap();
        normalize_volatile(&mut a, &["wall_ms"]);
        normalize_volatile(&mut b, &["wall_ms"]);
        assert_eq!(a.write(), b.write());
        assert_eq!(a.get("events").unwrap().as_f64(), Some(100.0));
    }
}
