//! Bench-side export of the observability planes: charged-time profile
//! artifacts (`--profile-out`) and virtual-time metrics timeseries
//! (`--metrics-out`).
//!
//! The sim crate owns the planes themselves ([`psd_sim::Profiler`],
//! [`psd_sim::Metrics`]) but deliberately knows nothing about artifact
//! formats; this module is the bridge to [`crate::json`]. Every export
//! is deterministic — collapsed stacks are sorted, gauges keep
//! registration order, and no wall-clock field exists — so same-seed
//! artifacts are byte-identical and CI can double-run and diff them.

use std::cell::RefCell;
use std::rc::Rc;

use crate::json::Json;
use psd_sim::{Cpu, MetricsHandle, ProfileHandle};

/// One host's profile: conservation totals plus the collapsed stacks.
pub struct HostProfile {
    /// Host index within the bed.
    pub host: usize,
    /// The CPU's total charged busy time.
    pub total_busy_ns: u64,
    /// Nanoseconds the profiler attributed to sites.
    pub attributed_ns: u64,
    /// Distinct site-trie nodes.
    pub sites: usize,
    /// Collapsed-stack (flamegraph) text, lexicographically sorted.
    pub stacks: String,
    /// Human hot-site table (top N), for stderr display.
    pub hot_table: String,
}

/// A profiled run: a label (platform/config/cell) plus per-host
/// profiles.
pub struct ProfiledRun {
    /// Row label, e.g. `DECstation 5000/200 | Library-SHM`.
    pub label: String,
    /// Per-host profiles in bed `hosts` order.
    pub hosts: Vec<HostProfile>,
}

/// Snapshots one host's profiler and asserts the exact-conservation
/// guarantee: every charged nanosecond on the CPU is attributed to
/// exactly one (site, layer) bucket, bit-exact. A violation is a bug
/// in the charge plumbing, never data-dependent — so it panics.
pub fn host_profile(host: usize, cpu: &Rc<RefCell<Cpu>>, prof: &ProfileHandle) -> HostProfile {
    let total_busy_ns = cpu.borrow().total_busy().as_nanos();
    let p = prof.borrow();
    let attributed_ns = p.attributed_ns();
    assert_eq!(
        attributed_ns, total_busy_ns,
        "profiler conservation violated on host {host}: attributed {attributed_ns} ns \
         != total busy {total_busy_ns} ns"
    );
    HostProfile {
        host,
        total_busy_ns,
        attributed_ns,
        sites: p.site_count(),
        stacks: p.collapsed_stacks(),
        hot_table: p.hot_site_table(10),
    }
}

/// Assembles the `--profile-out` artifact.
pub fn profile_json(bench: &str, runs: &[ProfiledRun]) -> Json {
    Json::obj(vec![
        ("version", Json::Num(1.0)),
        ("tool", Json::str("profile")),
        ("bench", Json::str(bench)),
        (
            "rows",
            Json::Arr(
                runs.iter()
                    .map(|run| {
                        Json::obj(vec![
                            ("label", Json::str(run.label.clone())),
                            (
                                "hosts",
                                Json::Arr(
                                    run.hosts
                                        .iter()
                                        .map(|h| {
                                            Json::obj(vec![
                                                ("host", Json::Num(h.host as f64)),
                                                (
                                                    "total_busy_ns",
                                                    Json::Num(h.total_busy_ns as f64),
                                                ),
                                                (
                                                    "attributed_ns",
                                                    Json::Num(h.attributed_ns as f64),
                                                ),
                                                ("sites", Json::Num(h.sites as f64)),
                                                ("stacks", Json::str(h.stacks.clone())),
                                            ])
                                        })
                                        .collect(),
                                ),
                            ),
                        ])
                    })
                    .collect(),
            ),
        ),
    ])
}

/// Prints each run's per-host hot-site tables to stderr (stdout must
/// stay byte-identical to an unprofiled run; CI diffs it).
pub fn print_hot_tables(runs: &[ProfiledRun]) {
    for run in runs {
        for h in &run.hosts {
            eprintln!(
                "profile: {} host{} — {} ns attributed over {} sites",
                run.label, h.host, h.attributed_ns, h.sites
            );
            for line in h.hot_table.lines() {
                eprintln!("  {line}");
            }
        }
    }
}

/// `gauges` + `samples` members for one sampled registry, shared by
/// the single- and multi-row artifact shapes.
fn registry_members(metrics: &MetricsHandle) -> [(&'static str, Json); 2] {
    let m = metrics.borrow();
    [
        (
            "gauges",
            Json::Arr(m.gauge_names().iter().map(|n| Json::str(*n)).collect()),
        ),
        (
            "samples",
            Json::Arr(
                m.samples()
                    .iter()
                    .map(|(t, row)| {
                        Json::obj(vec![
                            ("t_ns", Json::Num(*t as f64)),
                            (
                                "values",
                                Json::Arr(row.iter().map(|v| Json::Num(*v as f64)).collect()),
                            ),
                        ])
                    })
                    .collect(),
            ),
        ),
    ]
}

/// Assembles the `--metrics-out` artifact from a sampled registry:
/// gauge names in registration order, one row per virtual-time sample.
pub fn metrics_json(bench: &str, seed: u64, metrics: &MetricsHandle) -> Json {
    let [gauges, samples] = registry_members(metrics);
    Json::obj(vec![
        ("version", Json::Num(1.0)),
        ("tool", Json::str("metrics")),
        ("bench", Json::str(bench)),
        ("seed", Json::Num(seed as f64)),
        gauges,
        samples,
    ])
}

/// Multi-row variant of [`metrics_json`] for bins that sample one
/// registry per table row (e.g. table2's per-config ttcp beds).
pub fn metrics_rows_json(bench: &str, seed: u64, rows: &[(String, MetricsHandle)]) -> Json {
    Json::obj(vec![
        ("version", Json::Num(1.0)),
        ("tool", Json::str("metrics")),
        ("bench", Json::str(bench)),
        ("seed", Json::Num(seed as f64)),
        (
            "rows",
            Json::Arr(
                rows.iter()
                    .map(|(label, metrics)| {
                        let [gauges, samples] = registry_members(metrics);
                        Json::obj(vec![("label", Json::str(label.clone())), gauges, samples])
                    })
                    .collect(),
            ),
        ),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;
    use psd_sim::{Metrics, SimTime};

    #[test]
    fn metrics_artifact_is_order_stable() {
        let m = Metrics::shared();
        m.borrow_mut().register("b_gauge", || 2);
        m.borrow_mut().register("a_gauge", || 1);
        m.borrow_mut().sample(SimTime::from_micros(5));
        let doc = metrics_json("test", 7, &m);
        let text = doc.write();
        // Registration order, not alphabetical.
        assert!(text.find("b_gauge").unwrap() < text.find("a_gauge").unwrap());
        let parsed = Json::parse(&text).unwrap();
        assert_eq!(parsed, doc);
        assert_eq!(
            parsed
                .get("samples")
                .and_then(Json::as_arr)
                .map(|s| s.len()),
            Some(1)
        );
    }

    #[test]
    fn host_profile_asserts_conservation() {
        use psd_sim::{Domain, Layer, Profiler};
        let cpu = Rc::new(RefCell::new(Cpu::new()));
        let prof = Profiler::shared();
        cpu.borrow_mut().set_profiler(Some(prof.clone()));
        let mut c = cpu.borrow_mut().begin(SimTime::ZERO);
        c.site_push(Domain::Kernel, "work");
        c.add_ns(Layer::Other, 1234);
        c.site_pop();
        cpu.borrow_mut().finish(c);
        let h = host_profile(0, &cpu, &prof);
        assert_eq!(h.total_busy_ns, 1234);
        assert_eq!(h.attributed_ns, 1234);
        assert!(h.stacks.contains("kernel:work"));
    }
}
