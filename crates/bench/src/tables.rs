//! The paper's published numbers, for side-by-side comparison in the
//! table harnesses and in EXPERIMENTS.md.

use psd_sim::Platform;
use psd_systems::SystemConfig;

/// Message sizes used for TCP latency rows (bytes).
pub const TCP_SIZES: [usize; 5] = [1, 100, 512, 1024, 1460];
/// Message sizes used for UDP latency rows (bytes).
pub const UDP_SIZES: [usize; 5] = [1, 100, 512, 1024, 1472];

/// One Table 2 row as published: throughput (KB/s), receive buffer
/// (KB), TCP latencies (ms), UDP latencies (ms). `None` marks the NA
/// cells (the 386BSD/BNR2SS large-packet bug).
#[derive(Clone, Copy, Debug)]
pub struct Table2Row {
    /// Configuration.
    pub config: SystemConfig,
    /// TCP throughput, KB/s.
    pub throughput: f64,
    /// Receive buffer size, KB.
    pub bufsize: u32,
    /// TCP round-trip latency (ms) at [`TCP_SIZES`].
    pub tcp_ms: [Option<f64>; 5],
    /// UDP round-trip latency (ms) at [`UDP_SIZES`].
    pub udp_ms: [Option<f64>; 5],
}

const fn ms(v: f64) -> Option<f64> {
    Some(v)
}

/// Table 2, DECstation 5000/200 block.
pub fn table2_decstation() -> Vec<Table2Row> {
    use SystemConfig::*;
    vec![
        Table2Row {
            config: Mach25InKernel,
            throughput: 1070.0,
            bufsize: 24,
            tcp_ms: [ms(1.40), ms(1.73), ms(3.05), ms(4.56), ms(6.04)],
            udp_ms: [ms(1.45), ms(1.74), ms(3.05), ms(4.56), ms(5.88)],
        },
        Table2Row {
            config: Ultrix42InKernel,
            throughput: 996.0,
            bufsize: 16,
            tcp_ms: [ms(1.52), ms(1.89), ms(3.50), ms(4.78), ms(6.13)],
            udp_ms: [ms(1.52), ms(1.81), ms(3.29), ms(4.69), ms(6.05)],
        },
        Table2Row {
            config: UxServer,
            throughput: 740.0,
            bufsize: 24,
            tcp_ms: [ms(3.64), ms(4.21), ms(5.90), ms(7.84), ms(9.73)],
            udp_ms: [ms(3.61), ms(4.01), ms(5.50), ms(7.99), ms(9.41)],
        },
        Table2Row {
            config: LibraryIpc,
            throughput: 910.0,
            bufsize: 24,
            tcp_ms: [ms(1.69), ms(2.09), ms(3.43), ms(5.09), ms(6.63)],
            udp_ms: [ms(1.40), ms(1.74), ms(3.08), ms(4.71), ms(6.14)],
        },
        Table2Row {
            config: LibraryShm,
            throughput: 1076.0,
            bufsize: 120,
            tcp_ms: [ms(1.82), ms(2.29), ms(3.56), ms(5.32), ms(6.73)],
            udp_ms: [ms(1.34), ms(1.68), ms(2.95), ms(4.59), ms(5.95)],
        },
        Table2Row {
            config: LibraryShmIpf,
            throughput: 1088.0,
            bufsize: 120,
            tcp_ms: [ms(1.72), ms(2.11), ms(3.44), ms(5.09), ms(6.56)],
            udp_ms: [ms(1.23), ms(1.57), ms(2.83), ms(4.41), ms(5.78)],
        },
    ]
}

/// Table 2, Gateway 486 block.
pub fn table2_gateway() -> Vec<Table2Row> {
    use SystemConfig::*;
    vec![
        Table2Row {
            config: Mach25InKernel,
            throughput: 457.0,
            bufsize: 8,
            tcp_ms: [ms(2.08), ms(2.69), ms(5.45), ms(8.78), ms(12.05)],
            udp_ms: [ms(1.83), ms(2.41), ms(5.19), ms(8.54), ms(11.70)],
        },
        Table2Row {
            config: Bsd386InKernel,
            throughput: 320.0,
            bufsize: 8,
            tcp_ms: [ms(2.71), ms(3.64), ms(6.21), None, None],
            udp_ms: [ms(2.63), ms(3.19), ms(6.01), ms(9.25), ms(12.40)],
        },
        Table2Row {
            config: UxServer,
            throughput: 415.0,
            bufsize: 16,
            tcp_ms: [ms(4.09), ms(4.88), ms(7.76), ms(11.30), ms(14.29)],
            udp_ms: [ms(3.96), ms(4.67), ms(7.80), ms(11.65), ms(15.01)],
        },
        Table2Row {
            config: Bnr2ssServer,
            throughput: 382.0,
            bufsize: 112,
            tcp_ms: [ms(3.99), ms(4.70), ms(8.00), None, None],
            udp_ms: [ms(4.61), ms(5.17), ms(8.95), ms(13.24), ms(16.10)],
        },
        Table2Row {
            config: LibraryIpc,
            throughput: 469.0,
            bufsize: 24,
            tcp_ms: [ms(2.49), ms(3.10), ms(5.84), ms(9.25), ms(14.09)],
            udp_ms: [ms(2.12), ms(2.68), ms(5.30), ms(8.74), ms(11.66)],
        },
        Table2Row {
            config: LibraryShm,
            throughput: 503.0,
            bufsize: 24,
            tcp_ms: [ms(2.39), ms(3.07), ms(5.79), ms(9.15), ms(12.58)],
            udp_ms: [ms(2.02), ms(2.59), ms(5.30), ms(8.64), ms(11.62)],
        },
    ]
}

/// The Table 2 block for a platform.
pub fn table2_for(platform: Platform) -> Vec<Table2Row> {
    match platform {
        Platform::DecStation5000_200 => table2_decstation(),
        Platform::Gateway486 => table2_gateway(),
    }
}

/// Table 3 rows (NEWAPI; DECstation only). The first two rows repeat
/// the in-kernel baselines from Table 2 for comparison.
pub fn table3_decstation() -> Vec<Table2Row> {
    use SystemConfig::*;
    vec![
        Table2Row {
            config: Mach25InKernel,
            throughput: 1070.0,
            bufsize: 24,
            tcp_ms: [ms(1.40), ms(1.73), ms(3.05), ms(4.56), ms(6.04)],
            udp_ms: [ms(1.45), ms(1.74), ms(3.05), ms(4.56), ms(5.88)],
        },
        Table2Row {
            config: Ultrix42InKernel,
            throughput: 996.0,
            bufsize: 16,
            tcp_ms: [ms(1.52), ms(1.89), ms(3.53), ms(4.78), ms(6.13)],
            udp_ms: [ms(1.52), ms(1.81), ms(3.29), ms(4.69), ms(6.05)],
        },
        Table2Row {
            config: LibraryIpc,
            throughput: 959.0,
            bufsize: 24,
            tcp_ms: [ms(1.67), ms(2.02), ms(3.35), ms(4.96), ms(6.45)],
            udp_ms: [ms(1.42), ms(1.75), ms(3.05), ms(4.69), ms(6.09)],
        },
        Table2Row {
            config: LibraryShm,
            throughput: 1083.0,
            bufsize: 120,
            tcp_ms: [ms(1.70), ms(2.07), ms(3.33), ms(4.94), ms(6.38)],
            udp_ms: [ms(1.34), ms(1.66), ms(2.93), ms(4.54), ms(5.95)],
        },
        Table2Row {
            config: LibraryShmIpf,
            throughput: 1099.0,
            bufsize: 120,
            tcp_ms: [ms(1.63), ms(1.98), ms(3.24), ms(4.80), ms(6.26)],
            udp_ms: [ms(1.25), ms(1.57), ms(2.83), ms(4.38), ms(5.76)],
        },
    ]
}

/// One column of Table 4 (µs per layer). Layers in
/// [`psd_sim::Layer::TABLE4_ORDER`] order.
#[derive(Clone, Copy, Debug)]
pub struct Table4Column {
    /// "Library" / "Kernel" / "Server".
    pub system: &'static str,
    /// "TCP" or "UDP".
    pub proto: &'static str,
    /// Message size in bytes.
    pub size: usize,
    /// Send path: entry/copyin, tcp,udp_output, ip_output, ether_output.
    pub send: [u32; 4],
    /// Receive path: device intr/read, netisr/packet filter, kernel
    /// copyout, mbuf/queue, ipintr, tcp,udp_input, wakeup user thread,
    /// copyout/exit.
    pub recv: [u32; 8],
    /// Network transit.
    pub transit: u32,
}

/// Table 4 as published (DECstation; Library = SHM-IPF).
pub fn table4() -> Vec<Table4Column> {
    vec![
        Table4Column {
            system: "Library",
            proto: "TCP",
            size: 1,
            send: [19, 82, 26, 98],
            recv: [42, 82, 123, 22, 37, 214, 92, 46],
            transit: 51,
        },
        Table4Column {
            system: "Library",
            proto: "TCP",
            size: 1460,
            send: [203, 328, 26, 274],
            recv: [43, 95, 534, 21, 35, 445, 95, 261],
            transit: 1214,
        },
        Table4Column {
            system: "Kernel",
            proto: "TCP",
            size: 1,
            send: [50, 65, 24, 75],
            recv: [77, 79, 0, 0, 30, 76, 54, 32],
            transit: 51,
        },
        Table4Column {
            system: "Kernel",
            proto: "TCP",
            size: 1460,
            send: [153, 307, 20, 105],
            recv: [469, 73, 0, 0, 37, 270, 54, 220],
            transit: 1214,
        },
        Table4Column {
            system: "Server",
            proto: "TCP",
            size: 1,
            send: [254, 224, 31, 166],
            recv: [101, 53, 113, 79, 127, 249, 194, 222],
            transit: 51,
        },
        Table4Column {
            system: "Server",
            proto: "TCP",
            size: 1460,
            send: [579, 447, 25, 331],
            recv: [496, 52, 148, 58, 95, 365, 213, 1028],
            transit: 1214,
        },
        Table4Column {
            system: "Library",
            proto: "UDP",
            size: 1,
            send: [6, 18, 17, 105],
            recv: [39, 58, 107, 20, 35, 103, 73, 21],
            transit: 51,
        },
        Table4Column {
            system: "Library",
            proto: "UDP",
            size: 1472,
            send: [7, 239, 18, 280],
            recv: [40, 70, 517, 20, 33, 318, 80, 63],
            transit: 1214,
        },
        Table4Column {
            system: "Kernel",
            proto: "UDP",
            size: 1,
            send: [65, 70, 22, 74],
            recv: [74, 83, 0, 0, 30, 67, 70, 27],
            transit: 51,
        },
        Table4Column {
            system: "Kernel",
            proto: "UDP",
            size: 1472,
            send: [104, 273, 25, 163],
            recv: [481, 84, 0, 0, 54, 279, 69, 75],
            transit: 1214,
        },
        Table4Column {
            system: "Server",
            proto: "UDP",
            size: 1,
            send: [293, 229, 24, 188],
            recv: [99, 76, 124, 68, 121, 61, 262, 208],
            transit: 51,
        },
        Table4Column {
            system: "Server",
            proto: "UDP",
            size: 1472,
            send: [628, 398, 27, 367],
            recv: [497, 61, 207, 64, 91, 273, 274, 619],
            transit: 1214,
        },
    ]
}

/// Formats a measured/published pair with a ratio.
pub fn fmt_pair(measured: f64, published: f64) -> String {
    if published == 0.0 {
        format!("{measured:8.2} (paper    0.00)")
    } else {
        format!(
            "{measured:8.2} (paper {published:8.2}, ×{:.2})",
            measured / published
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_blocks_have_expected_rows() {
        assert_eq!(table2_decstation().len(), 6);
        assert_eq!(table2_gateway().len(), 6);
        assert_eq!(table3_decstation().len(), 5);
    }

    #[test]
    fn table4_has_twelve_columns() {
        let t = table4();
        assert_eq!(t.len(), 12);
        // Send-path totals from the paper check out (Library TCP 1 B:
        // 225 µs).
        let lib1 = &t[0];
        assert_eq!(lib1.send.iter().sum::<u32>(), 225);
        // Receive-path total: 658 µs.
        assert_eq!(lib1.recv.iter().sum::<u32>(), 658);
    }

    #[test]
    fn published_shapes_hold() {
        // The qualitative claims the reproduction must reproduce.
        let dec = table2_decstation();
        let by = |c: SystemConfig| dec.iter().find(|r| r.config == c).unwrap().throughput;
        use SystemConfig::*;
        assert!(by(LibraryShmIpf) > by(Mach25InKernel));
        assert!(by(LibraryShm) > by(Mach25InKernel));
        assert!(by(LibraryIpc) < by(Mach25InKernel));
        assert!(by(UxServer) < by(LibraryIpc));
        // Library-IPC ≈ 85% of in-kernel.
        let ratio = by(LibraryIpc) / by(Mach25InKernel);
        assert!((0.80..0.90).contains(&ratio));
    }
}
