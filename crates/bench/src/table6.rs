//! Table 6: what does NEWAPI batching buy, and where do the copies go?
//!
//! Tables 2–4 measure the decomposed placements with one descriptor per
//! ring crossing: every delivered frame pays the full IPC/SHM doorbell
//! and (for eager placement) a whole-body copy into the shared ring.
//! The batched NEWAPI (`send_batch`/`recv_batch`, §4.2) amortizes the
//! doorbell over a window of K descriptors, and Libra-style selective
//! placement leaves cold bodies kernel-resident, materializing headers
//! only. This harness sweeps the batch window B ∈ {1, 4, 16, 64} over
//! the three library placements and reports, per delivered packet:
//!
//! * **crossings/pkt** — session ring crossings actually charged. The
//!   kernel pays one doorbell per window, so this is exactly ⌈P/B⌉/P;
//!   the harness asserts the exact count, not a trend.
//! * **ns/pkt** — receiving-host CPU busy virtual time. Monotone
//!   decreasing in B: every skipped crossing is a trap/wakeup saved.
//! * **copies/pkt** — whole-body copies observed by the receive-side
//!   census. Eager placement pays one per packet; kernel-resident
//!   placement materializes headers only (`HeaderCopy`), so body
//!   copies/pkt drops to zero unless the application pulls.
//! * **steps/pkt** — filter instructions per frame, proving batching
//!   never touches classification.
//!
//! Unlike the filter microbenchmark, every number here is virtual-time
//! or a deterministic counter: the emitted `BENCH_9.json` is
//! byte-identical between same-seed runs with no normalization step,
//! and CI diffs the whole artifact.

use psd_core::{AppLib, Fd};
use psd_filter::PlacementPolicy;
use psd_kernel::BatchConfig;
use psd_netstack::InetAddr;
use psd_server::Proto;
use psd_sim::{OpKind, Platform, SimTime};
use psd_systems::{SystemConfig, TestBed};
use std::rc::Rc;

use crate::json::{validate, Json};

/// Seed for every Table 6 run.
pub const SEED: u64 = 93;

/// Datagrams per cell (full matrix). Divisible by every batch size so
/// the crossing count is exactly `packets / batch`.
pub const PACKETS_FULL: usize = 256;

/// Datagrams per cell under `--quick`.
pub const PACKETS_QUICK: usize = 128;

/// Datagram payload bytes.
pub const PAYLOAD: usize = 64;

/// Receiver port; the selective-copy policy marks exactly this port
/// kernel-resident.
pub const RX_PORT: u16 = 10_000;

/// Batch windows for the full and `--quick` matrices. 64 appears in
/// both: it is the cell the CI regression gate reads.
pub fn batches(quick: bool) -> &'static [usize] {
    if quick {
        &[1, 64]
    } else {
        &[1, 4, 16, 64]
    }
}

/// The library placements under test (server/in-kernel placements have
/// no per-packet ring crossing to amortize).
pub const CONFIGS: [SystemConfig; 3] = [
    SystemConfig::LibraryIpc,
    SystemConfig::LibraryShm,
    SystemConfig::LibraryShmIpf,
];

/// Copy-placement mode of one cell.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum CopyMode {
    /// Bodies copied eagerly into the shared ring (the seed behavior).
    Eager,
    /// Kernel-resident flow, application never pulls: header-only
    /// delivery, zero body copies on the receive host.
    Resident,
    /// Kernel-resident flow, application pulls every body: the copy is
    /// deferred to `recv_batch(pull = true)` and paid at the library
    /// boundary, once per descriptor.
    ResidentPull,
}

impl CopyMode {
    /// Human/table label for the mode.
    pub fn label(self) -> &'static str {
        match self {
            CopyMode::Eager => "eager",
            CopyMode::Resident => "resident",
            CopyMode::ResidentPull => "resident-pull",
        }
    }
}

/// Modes for the full and `--quick` matrices.
pub fn modes(quick: bool) -> &'static [CopyMode] {
    if quick {
        &[CopyMode::Eager, CopyMode::Resident]
    } else {
        &[CopyMode::Eager, CopyMode::Resident, CopyMode::ResidentPull]
    }
}

fn config_key(c: SystemConfig) -> &'static str {
    match c {
        SystemConfig::LibraryIpc => "LibraryIpc",
        SystemConfig::LibraryShm => "LibraryShm",
        SystemConfig::LibraryShmIpf => "LibraryShmIpf",
        other => other.label(),
    }
}

/// One measured cell. Every field is deterministic for the seed.
#[derive(Clone, Copy, Debug)]
pub struct Table6Row {
    /// Placement under test.
    pub config: SystemConfig,
    /// Copy mode.
    pub mode: CopyMode,
    /// Batch window B.
    pub batch: usize,
    /// Datagrams sent (= delivered; the harness asserts zero drops).
    pub packets: usize,
    /// Session ring crossings charged during the burst — exactly
    /// `packets / batch`.
    pub crossings: u64,
    /// Filter instructions run classifying the burst.
    pub steps: u64,
    /// Whole-body copies observed by the receive-host census.
    pub body_copies: u64,
    /// Header-only copies observed by the receive-host census.
    pub header_copies: u64,
    /// Header-only ring deliveries (kernel counter).
    pub header_only: u64,
    /// Receive-host CPU busy virtual nanoseconds across the burst.
    pub busy_ns: u64,
}

impl Table6Row {
    /// Ring crossings per delivered packet (exactly `1/B`).
    pub fn crossings_per_pkt(&self) -> f64 {
        self.crossings as f64 / self.packets as f64
    }

    /// Receive-host busy virtual nanoseconds per packet.
    pub fn ns_per_pkt(&self) -> f64 {
        self.busy_ns as f64 / self.packets as f64
    }

    /// Whole-body copies per packet.
    pub fn copies_per_pkt(&self) -> f64 {
        self.body_copies as f64 / self.packets as f64
    }

    /// Filter instructions per packet.
    pub fn steps_per_pkt(&self) -> f64 {
        self.steps as f64 / self.packets as f64
    }
}

/// A complete Table 6 result.
#[derive(Clone, Debug)]
pub struct Table6 {
    /// True when run with the reduced `--quick` matrix.
    pub quick: bool,
    /// Datagrams per cell.
    pub packets: usize,
    /// Rows by (config, mode, B).
    pub rows: Vec<Table6Row>,
}

/// Per-cell observability hooks collected by [`run_cell_observed`]:
/// everything here is charged-time-neutral, so [`Table6Row`] is
/// byte-identical whether or not any hook was requested.
pub struct CellObs {
    /// `config | mode | B` label for artifact rows.
    pub label: String,
    /// Per-host census snapshots as JSON (the census is always
    /// attached; the snapshot is only exported on request).
    pub census_hosts: Vec<String>,
    /// Packet-lifecycle tracer, when tracing was requested.
    pub tracer: Option<psd_sim::TraceHandle>,
    /// Per-host `(cpu, profiler)` pairs, when profiling was requested.
    pub profiles: Vec<(Rc<std::cell::RefCell<psd_sim::Cpu>>, psd_sim::ProfileHandle)>,
}

/// Runs one cell and checks its hard invariants: zero drops, every
/// datagram delivered, and the crossing count exactly `packets / B`.
pub fn run_cell(config: SystemConfig, mode: CopyMode, batch: usize, packets: usize) -> Table6Row {
    run_cell_observed(config, mode, batch, packets, false, false).0
}

/// [`run_cell`] with optional packet tracing and charged-time
/// profiling attached to the cell's testbed.
pub fn run_cell_observed(
    config: SystemConfig,
    mode: CopyMode,
    batch: usize,
    packets: usize,
    trace: bool,
    profile: bool,
) -> (Table6Row, CellObs) {
    assert!(
        packets.is_multiple_of(batch),
        "packets must divide by the window"
    );
    let mut bed = TestBed::new(config, Platform::DecStation5000_200, SEED);
    bed.set_batch_config(BatchConfig {
        batch,
        gro: false,
        gso: false,
    });
    if mode != CopyMode::Eager {
        bed.set_placement_policy(Some(
            PlacementPolicy::new().resident_ports(RX_PORT, RX_PORT),
        ));
    }
    let censuses = bed.attach_census();
    let tracer = trace.then(psd_sim::Tracer::shared);
    if let Some(t) = &tracer {
        bed.attach_tracer_handle(t);
    }
    let profilers = profile.then(|| bed.attach_profilers());

    // Sender on host 0, one connected UDP socket; receiver session on
    // host 1. The receiver binds before the policy could matter: the
    // placement verdict is taken at filter-install time.
    let tx_app = bed.hosts[0].spawn_app();
    let tx = AppLib::socket(&tx_app, &mut bed.sim, Proto::Udp);
    AppLib::bind(&tx_app, &mut bed.sim, tx, 9000).expect("tx bind");
    let rx_app = bed.hosts[1].spawn_app();
    let rx = AppLib::socket(&rx_app, &mut bed.sim, Proto::Udp);
    AppLib::bind(&rx_app, &mut bed.sim, rx, RX_PORT).expect("rx bind");
    bed.settle();
    // Warm ARP on an unclaimed port so the burst sees no cold-start.
    AppLib::sendto(
        &tx_app,
        &mut bed.sim,
        tx,
        b"warm",
        Some(InetAddr::new(bed.hosts[1].ip, 9)),
    )
    .expect("warm send");
    bed.settle();
    AppLib::connect(
        &tx_app,
        &mut bed.sim,
        tx,
        InetAddr::new(bed.hosts[1].ip, RX_PORT),
    )
    .expect("tx connect");
    bed.settle();

    // --- Snapshot, burst, drain, snapshot. ---
    let k0 = bed.hosts[1].kernel.borrow().stats();
    let busy0 = bed.hosts[1].cpu.borrow().total_busy();
    let (copies0, headers0) = {
        let c = censuses[1].borrow();
        (c.total(OpKind::PacketBodyCopy), c.total(OpKind::HeaderCopy))
    };

    let bufs: Vec<Rc<Vec<u8>>> = (0..packets)
        .map(|i| Rc::new(vec![(i % 251) as u8; PAYLOAD]))
        .collect();
    let pull = mode == CopyMode::ResidentPull;
    let mut received = 0usize;
    let mut sent = 0usize;
    for group in bufs.chunks(batch) {
        let mut off = 0;
        while off < group.len() {
            match AppLib::send_batch(&tx_app, &mut bed.sim, tx, &group[off..]) {
                Ok(0) | Err(_) => bed.run_for(SimTime::from_millis(1)),
                Ok(n) => off += n,
            }
        }
        sent += group.len();
        // Pace ~100 µs per frame (above 10 Mbit serialization) so the
        // wire never backs up, then drain at a fixed 64-packet cadence
        // so the receive-side call pattern is identical for every B.
        bed.run_for(SimTime::from_micros(100 * group.len() as u64));
        if sent.is_multiple_of(64) {
            received += drain(&mut bed, &rx_app, rx, pull);
        }
    }
    bed.settle();
    received += drain(&mut bed, &rx_app, rx, pull);
    bed.settle();

    let k1 = bed.hosts[1].kernel.borrow().stats();
    let busy1 = bed.hosts[1].cpu.borrow().total_busy();
    let (copies1, headers1) = {
        let c = censuses[1].borrow();
        (c.total(OpKind::PacketBodyCopy), c.total(OpKind::HeaderCopy))
    };

    let delivered = k1.rx_session - k0.rx_session;
    let crossings = k1.rx_session_crossings - k0.rx_session_crossings;
    assert_eq!(
        k1.drops.total() - k0.drops.total(),
        0,
        "{}: burst must be lossless",
        config.label()
    );
    assert_eq!(delivered as usize, packets, "every datagram delivered");
    assert_eq!(received, packets, "every datagram received by the app");
    assert_eq!(
        crossings as usize,
        packets / batch,
        "{} B={batch}: crossings must be exactly packets/B",
        config.label()
    );

    let row = Table6Row {
        config,
        mode,
        batch,
        packets,
        crossings,
        steps: k1.filter_steps - k0.filter_steps,
        body_copies: copies1 - copies0,
        header_copies: headers1 - headers0,
        header_only: k1.header_only_deliveries - k0.header_only_deliveries,
        busy_ns: (busy1 - busy0).as_nanos(),
    };
    let obs = CellObs {
        label: format!("{} | {} | B={batch}", config.label(), mode.label()),
        census_hosts: censuses
            .iter()
            .map(|c| c.borrow().snapshot_json())
            .collect(),
        tracer,
        profiles: profilers
            .map(|ps| {
                bed.hosts
                    .iter()
                    .zip(ps)
                    .map(|(h, p)| (h.cpu.clone(), p))
                    .collect()
            })
            .unwrap_or_default(),
    };
    (row, obs)
}

fn drain(bed: &mut TestBed, app: &psd_core::AppHandle, fd: Fd, pull: bool) -> usize {
    let mut n = 0;
    loop {
        let descs =
            AppLib::recv_batch(app, &mut bed.sim, fd, 64, 1 << 16, pull).expect("recv_batch");
        if descs.is_empty() {
            return n;
        }
        n += descs.len();
    }
}

/// Runs the full (or `--quick`) Table 6 matrix.
pub fn run(quick: bool) -> Table6 {
    run_observed(quick, false, false).0
}

/// [`run`] with per-cell observability hooks (tracing / profiling).
pub fn run_observed(quick: bool, trace: bool, profile: bool) -> (Table6, Vec<CellObs>) {
    let packets = if quick { PACKETS_QUICK } else { PACKETS_FULL };
    let mut rows = Vec::new();
    let mut obs = Vec::new();
    for config in CONFIGS {
        for &mode in modes(quick) {
            for &b in batches(quick) {
                let (row, o) = run_cell_observed(config, mode, b, packets, trace, profile);
                rows.push(row);
                obs.push(o);
            }
        }
    }
    (
        Table6 {
            quick,
            packets,
            rows,
        },
        obs,
    )
}

impl Table6 {
    /// All rows for one (config, mode), in ascending B.
    fn series(&self, config: SystemConfig, mode: CopyMode) -> Vec<&Table6Row> {
        let mut v: Vec<&Table6Row> = self
            .rows
            .iter()
            .filter(|r| r.config == config && r.mode == mode)
            .collect();
        v.sort_by_key(|r| r.batch);
        v
    }

    /// Checks the acceptance trend: crossings/pkt and ns/pkt strictly
    /// decrease as B grows, on every placement and mode.
    pub fn check_monotone(&self) -> Result<(), String> {
        for config in CONFIGS {
            for &mode in modes(self.quick) {
                let series = self.series(config, mode);
                for pair in series.windows(2) {
                    let (a, b) = (pair[0], pair[1]);
                    if b.crossings_per_pkt() >= a.crossings_per_pkt() {
                        return Err(format!(
                            "{} {} crossings/pkt not decreasing: B={} {:.4} → B={} {:.4}",
                            config.label(),
                            mode.label(),
                            a.batch,
                            a.crossings_per_pkt(),
                            b.batch,
                            b.crossings_per_pkt()
                        ));
                    }
                    if b.ns_per_pkt() >= a.ns_per_pkt() {
                        return Err(format!(
                            "{} {} ns/pkt not decreasing: B={} {:.1} → B={} {:.1}",
                            config.label(),
                            mode.label(),
                            a.batch,
                            a.ns_per_pkt(),
                            b.batch,
                            b.ns_per_pkt()
                        ));
                    }
                }
            }
        }
        Ok(())
    }

    /// A signature over every field; two same-seed runs must agree.
    pub fn deterministic_signature(&self) -> String {
        let mut sig = String::new();
        for r in &self.rows {
            sig.push_str(&format!(
                "{}:{}:{}:{}:{}:{}:{}:{}:{}:{};",
                config_key(r.config),
                r.mode.label(),
                r.batch,
                r.packets,
                r.crossings,
                r.steps,
                r.body_copies,
                r.header_copies,
                r.header_only,
                r.busy_ns
            ));
        }
        sig
    }

    /// Serializes the artifact (see `BENCH_BATCH.schema.json`). Every
    /// member is deterministic; CI byte-diffs whole files.
    pub fn to_json(&self) -> Json {
        let rows = Json::Arr(
            self.rows
                .iter()
                .map(|r| {
                    Json::obj(vec![
                        ("config", Json::str(config_key(r.config))),
                        ("mode", Json::str(r.mode.label())),
                        ("batch", Json::Num(r.batch as f64)),
                        ("packets", Json::Num(r.packets as f64)),
                        ("crossings", Json::Num(r.crossings as f64)),
                        ("crossings_per_pkt", Json::Num(r.crossings_per_pkt())),
                        ("steps_per_pkt", Json::Num(r.steps_per_pkt())),
                        ("body_copies", Json::Num(r.body_copies as f64)),
                        ("copies_per_pkt", Json::Num(r.copies_per_pkt())),
                        ("header_copies", Json::Num(r.header_copies as f64)),
                        ("header_only", Json::Num(r.header_only as f64)),
                        ("busy_ns", Json::Num(r.busy_ns as f64)),
                        ("ns_per_pkt", Json::Num(r.ns_per_pkt())),
                    ])
                })
                .collect(),
        );
        Json::obj(vec![
            ("version", Json::Num(1.0)),
            ("bench", Json::str("table6")),
            ("seed", Json::Num(SEED as f64)),
            ("quick", Json::Bool(self.quick)),
            ("packets", Json::Num(self.packets as f64)),
            ("table", rows),
        ])
    }

    /// The human-readable table printed to stdout.
    pub fn table(&self) -> String {
        let mut out = String::new();
        out.push_str("==== Table 6: batched NEWAPI (virtual time) ====\n");
        out.push_str(&format!(
            "seed {SEED}; {} datagrams/cell, {PAYLOAD}-byte payloads{}\n\n",
            self.packets,
            if self.quick { " [quick]" } else { "" }
        ));
        out.push_str(
            "config          mode            B  crossings/pkt   ns/pkt  copies/pkt  hdr-only\n",
        );
        for r in &self.rows {
            out.push_str(&format!(
                "{:<15} {:<13} {:>4} {:>14.4} {:>8.0} {:>11.2} {:>9}\n",
                config_key(r.config),
                r.mode.label(),
                r.batch,
                r.crossings_per_pkt(),
                r.ns_per_pkt(),
                r.copies_per_pkt(),
                r.header_only,
            ));
        }
        out
    }
}

/// Checks measured ns/pkt for every (config, eager, B=64) cell against
/// a committed artifact: fails when any exceeds `1 + tolerance` of the
/// committed value. ns/pkt is virtual time, so this gate catches cost-
/// model regressions, not host noise.
pub fn check_against_baseline(
    measured: &Table6,
    committed: &Json,
    tolerance: f64,
) -> Result<Vec<(String, f64, f64)>, String> {
    let rows = committed
        .get("table")
        .and_then(Json::as_arr)
        .ok_or("committed artifact has no table")?;
    let mut checked = Vec::new();
    for config in CONFIGS {
        let key = config_key(config);
        let committed_ns = rows
            .iter()
            .find(|r| {
                r.get("config").and_then(Json::as_str) == Some(key)
                    && r.get("mode").and_then(Json::as_str) == Some("eager")
                    && r.get("batch").and_then(Json::as_f64) == Some(64.0)
            })
            .and_then(|r| r.get("ns_per_pkt"))
            .and_then(Json::as_f64)
            .ok_or_else(|| format!("committed artifact has no ({key}, eager, 64) row"))?;
        let row = measured
            .rows
            .iter()
            .find(|r| r.config == config && r.mode == CopyMode::Eager && r.batch == 64)
            .ok_or_else(|| format!("measured run has no ({key}, eager, 64) row"))?;
        let ns = row.ns_per_pkt();
        if ns > committed_ns * (1.0 + tolerance) {
            return Err(format!(
                "{key}: ns/pkt regression at B=64: measured {ns:.0} > {:.0} \
                 ({}% above committed {committed_ns:.0})",
                committed_ns * (1.0 + tolerance),
                (tolerance * 100.0) as u32,
            ));
        }
        checked.push((key.to_string(), ns, committed_ns));
    }
    Ok(checked)
}

/// Validates an artifact against the checked-in
/// `BENCH_BATCH.schema.json` text.
pub fn validate_artifact(artifact: &Json, schema_text: &str) -> Result<(), String> {
    let schema = Json::parse(schema_text).map_err(|e| format!("schema unparseable: {e}"))?;
    validate(artifact, &schema)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cell_charges_exact_crossings_and_is_deterministic() {
        // run_cell itself asserts crossings == packets/B and zero
        // drops; two runs must agree on every field.
        let a = run_cell(SystemConfig::LibraryShm, CopyMode::Eager, 16, 64);
        let b = run_cell(SystemConfig::LibraryShm, CopyMode::Eager, 16, 64);
        assert_eq!(a.crossings, 4);
        assert_eq!(a.busy_ns, b.busy_ns);
        assert_eq!(a.body_copies, b.body_copies);
        assert_eq!(a.steps, b.steps);
    }

    #[test]
    fn resident_mode_eliminates_body_copies() {
        // Non-IPF placements always pay the physical device → kernel
        // copy at interrupt level; selective placement removes the
        // kernel → ring copy, one per packet.
        let eager = run_cell(SystemConfig::LibraryIpc, CopyMode::Eager, 4, 64);
        let resident = run_cell(SystemConfig::LibraryIpc, CopyMode::Resident, 4, 64);
        let pulled = run_cell(SystemConfig::LibraryIpc, CopyMode::ResidentPull, 4, 64);
        assert_eq!(eager.header_only, 0);
        assert_eq!(resident.header_only, 64);
        assert_eq!(resident.body_copies + 64, eager.body_copies);
        assert!(resident.header_copies >= 64);
        // Pulling re-pays the deferred copy at the library boundary.
        assert_eq!(pulled.body_copies, resident.body_copies + 64);
        assert!(pulled.busy_ns > resident.busy_ns);

        // The integrated filter defers even the device copy, so the
        // kernel-resident cell is the zero-copy one: copies/pkt == 0.
        let zc = run_cell(SystemConfig::LibraryShmIpf, CopyMode::Resident, 4, 64);
        assert_eq!(zc.header_only, 64);
        assert_eq!(zc.body_copies, 0, "ShmIpf resident is zero-copy");
    }

    #[test]
    fn batching_monotonically_reduces_crossings_and_busy_time() {
        let mut rows = Vec::new();
        for &b in &[1usize, 4, 16, 64] {
            rows.push(run_cell(
                SystemConfig::LibraryShmIpf,
                CopyMode::Eager,
                b,
                64,
            ));
        }
        for pair in rows.windows(2) {
            assert!(pair[1].crossings < pair[0].crossings);
            assert!(
                pair[1].busy_ns < pair[0].busy_ns,
                "B={} busy {} must undercut B={} busy {}",
                pair[1].batch,
                pair[1].busy_ns,
                pair[0].batch,
                pair[0].busy_ns
            );
        }
    }

    #[test]
    fn artifact_is_schema_valid_and_byte_stable() {
        let a = run(true);
        assert!(a.check_monotone().is_ok());
        let schema = std::fs::read_to_string(concat!(
            env!("CARGO_MANIFEST_DIR"),
            "/../../BENCH_BATCH.schema.json"
        ))
        .expect("schema present");
        validate_artifact(&a.to_json(), &schema).expect("schema-valid");
        let b = run(true);
        assert_eq!(a.deterministic_signature(), b.deterministic_signature());
        assert_eq!(a.to_json().write(), b.to_json().write());
    }

    #[test]
    fn regression_gate_trips_on_slowdown() {
        let fast = run(true);
        let committed = fast.to_json();
        assert!(check_against_baseline(&fast, &committed, 0.2).is_ok());
        let mut slow = fast.clone();
        for r in &mut slow.rows {
            r.busy_ns *= 2;
        }
        assert!(check_against_baseline(&slow, &committed, 0.2).is_err());
    }
}
