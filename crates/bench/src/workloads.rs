//! The `ttcp` and `protolat` workloads.

use std::cell::RefCell;
use std::rc::Rc;

use psd_core::{AppHandle, AppLib, Fd};
use psd_netstack::{InetAddr, SockEvent, SocketError};
use psd_server::Proto;
use psd_sim::{LatencyProbe, ProbeHandle, SimTime};
use psd_systems::TestBed;

/// Which socket interface the workload uses.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ApiStyle {
    /// The conventional BSD interface (data is copied at the socket
    /// boundary).
    Classic,
    /// The §4.2 modified interface: application and protocol share
    /// buffers (library configurations only).
    Newapi,
}

/// Result of a `ttcp` run.
#[derive(Clone, Copy, Debug)]
pub struct TtcpResult {
    /// Bytes transferred.
    pub bytes: u64,
    /// Virtual time from connection establishment to the last byte
    /// arriving at the receiver.
    pub elapsed: SimTime,
    /// Throughput in KB/second (KB = 1024 bytes, as the paper reports).
    pub kb_per_sec: f64,
    /// Segments retransmitted during the run (should be zero on a
    /// clean wire).
    pub retransmits: u64,
}

const TTCP_PORT: u16 = 5001;
const WRITE_SIZE: usize = 8 * 1024;
const RECV_CHUNK: usize = 16 * 1024;

struct TxState {
    fd: Fd,
    total: usize,
    sent: usize,
    started: Option<SimTime>,
    api: ApiStyle,
}

struct RxState {
    expected: usize,
    received: usize,
    finished: Option<SimTime>,
    api: ApiStyle,
}

fn pump_sender(app: &AppHandle, sim: &mut psd_sim::Sim, tx: &Rc<RefCell<TxState>>) {
    loop {
        let (fd, remaining, api) = {
            let t = tx.borrow();
            (t.fd, t.total.saturating_sub(t.sent), t.api)
        };
        if remaining == 0 {
            // All queued; close pushes the FIN behind the data.
            AppLib::close(app, sim, fd);
            return;
        }
        let chunk = remaining.min(WRITE_SIZE);
        let res = match api {
            ApiStyle::Classic => {
                let data = vec![0xA5u8; chunk];
                AppLib::send(app, sim, fd, &data)
            }
            ApiStyle::Newapi => {
                let data = Rc::new(vec![0xA5u8; chunk]);
                AppLib::send_shared(app, sim, fd, data)
            }
        };
        match res {
            Ok(n) => {
                tx.borrow_mut().sent += n;
                if n == 0 {
                    return;
                }
            }
            Err(SocketError::WouldBlock) => return,
            Err(e) => panic!("ttcp sender error: {e}"),
        }
    }
}

fn drain_receiver(app: &AppHandle, sim: &mut psd_sim::Sim, rx: &Rc<RefCell<RxState>>, fd: Fd) {
    loop {
        let api = rx.borrow().api;
        let n = match api {
            ApiStyle::Classic => {
                let mut buf = vec![0u8; RECV_CHUNK];
                match AppLib::recv(app, sim, fd, &mut buf) {
                    Ok(n) => n,
                    Err(SocketError::WouldBlock) => return,
                    Err(e) => panic!("ttcp receiver error: {e}"),
                }
            }
            ApiStyle::Newapi => match AppLib::recv_shared(app, sim, fd, RECV_CHUNK) {
                Ok(chain) => chain.len(),
                Err(SocketError::WouldBlock) => return,
                Err(e) => panic!("ttcp receiver error: {e}"),
            },
        };
        let mut r = rx.borrow_mut();
        r.received += n;
        if r.received >= r.expected && r.finished.is_none() {
            r.finished = Some(sim.now());
        }
        if n == 0 {
            // EOF.
            if r.finished.is_none() {
                r.finished = Some(sim.now());
            }
            return;
        }
    }
}

/// Runs the 16 MB (configurable) memory-to-memory TCP transfer on a
/// testbed. Returns throughput as the paper reports it.
pub fn ttcp(bed: &mut TestBed, total_bytes: usize, api: ApiStyle) -> TtcpResult {
    let sender_app = bed.hosts[0].spawn_app();
    let recv_app = bed.hosts[1].spawn_app();
    let dst = InetAddr::new(bed.hosts[1].ip, TTCP_PORT);

    // Receiver: listen, accept, drain.
    let listener = AppLib::socket(&recv_app, &mut bed.sim, Proto::Tcp);
    AppLib::bind(&recv_app, &mut bed.sim, listener, TTCP_PORT).expect("bind");
    AppLib::listen(&recv_app, &mut bed.sim, listener, 5).expect("listen");
    let rx = Rc::new(RefCell::new(RxState {
        expected: total_bytes,
        received: 0,
        finished: None,
        api,
    }));
    {
        let app = recv_app.clone();
        let rx = rx.clone();
        let conn_handler_app = recv_app.clone();
        let rx2 = rx.clone();
        let conn_handler: psd_core::FdEventFn = Rc::new(RefCell::new(
            move |sim: &mut psd_sim::Sim, fd: Fd, ev: SockEvent| {
                if matches!(ev, SockEvent::Readable | SockEvent::PeerClosed) {
                    drain_receiver(&conn_handler_app, sim, &rx2, fd);
                }
            },
        ));
        let listen_handler: psd_core::FdEventFn = Rc::new(RefCell::new(
            move |sim: &mut psd_sim::Sim, fd: Fd, ev: SockEvent| {
                if ev == SockEvent::Readable {
                    while let Ok(conn) = AppLib::accept(&app, sim, fd) {
                        app.borrow_mut()
                            .set_event_handler(conn, conn_handler.clone());
                        drain_receiver(&app, sim, &rx, conn);
                    }
                }
            },
        ));
        recv_app
            .borrow_mut()
            .set_event_handler(listener, listen_handler);
    }

    // Sender: connect, then stream.
    let cfd = AppLib::socket(&sender_app, &mut bed.sim, Proto::Tcp);
    let tx = Rc::new(RefCell::new(TxState {
        fd: cfd,
        total: total_bytes,
        sent: 0,
        started: None,
        api,
    }));
    {
        let app = sender_app.clone();
        let tx = tx.clone();
        let handler: psd_core::FdEventFn = Rc::new(RefCell::new(
            move |sim: &mut psd_sim::Sim, _fd: Fd, ev: SockEvent| match ev {
                SockEvent::Connected => {
                    tx.borrow_mut().started = Some(sim.now());
                    pump_sender(&app, sim, &tx);
                }
                SockEvent::Writable if tx.borrow().started.is_some() => {
                    pump_sender(&app, sim, &tx);
                }
                SockEvent::Error(e) => panic!("ttcp connect failed: {e}"),
                _ => {}
            },
        ));
        sender_app.borrow_mut().set_event_handler(cfd, handler);
    }
    AppLib::connect(&sender_app, &mut bed.sim, cfd, dst).expect("connect");

    // Drive the simulation until the receiver has everything.
    let cap = SimTime::from_secs(600);
    let t0 = bed.sim.now();
    while rx.borrow().finished.is_none() {
        let step = bed.sim.now() + SimTime::from_millis(500);
        bed.sim.run_until(step);
        assert!(
            bed.sim.now() - t0 < cap,
            "ttcp stalled: {} of {} bytes",
            rx.borrow().received,
            total_bytes
        );
    }

    let started = tx.borrow().started.expect("connection established");
    let finished = rx.borrow().finished.expect("loop exited");
    let elapsed = finished - started;
    let secs = elapsed.as_secs_f64().max(1e-9);
    let retransmits = bed.hosts[0]
        .server
        .as_ref()
        .map(|s| s.borrow().stack().borrow().stats.tcp_rexmt)
        .unwrap_or(0)
        + bed.hosts[0]
            .kern_stack
            .as_ref()
            .map(|s| s.borrow().stats.tcp_rexmt)
            .unwrap_or(0)
        + sender_app
            .borrow()
            .stack()
            .map(|s| s.borrow().stats.tcp_rexmt)
            .unwrap_or(0);
    TtcpResult {
        bytes: total_bytes as u64,
        elapsed,
        kb_per_sec: total_bytes as f64 / 1024.0 / secs,
        retransmits,
    }
}

/// Result of a `protolat` run.
#[derive(Clone, Debug)]
pub struct ProtolatResult {
    /// Round trips measured.
    pub rounds: u32,
    /// Mean round-trip latency.
    pub rtt: SimTime,
    /// The per-layer latency probe covering the measured rounds (both
    /// directions; divide by `2 × rounds` for per-message figures).
    pub probe: ProbeHandle,
}

const LAT_PORT: u16 = 6001;

struct PingState {
    fd: Fd,
    msg: Vec<u8>,
    pending: usize,
    rounds_left: u32,
    collected: u32,
    warmup: u32,
    start: Option<SimTime>,
    end: Option<SimTime>,
    api: ApiStyle,
    proto: Proto,
    probe: Option<ProbeHandle>,
}

fn ping_send(app: &AppHandle, sim: &mut psd_sim::Sim, st: &Rc<RefCell<PingState>>) {
    let (fd, msg, api, proto) = {
        let s = st.borrow();
        (s.fd, s.msg.clone(), s.api, s.proto)
    };
    st.borrow_mut().pending = msg.len();
    let res = match (api, proto) {
        (ApiStyle::Classic, Proto::Tcp) => AppLib::send(app, sim, fd, &msg),
        (ApiStyle::Classic, Proto::Udp) => AppLib::sendto(app, sim, fd, &msg, None),
        (ApiStyle::Newapi, _) => AppLib::send_shared(app, sim, fd, Rc::new(msg)),
    };
    res.expect("protolat send");
}

fn ping_recv(app: &AppHandle, sim: &mut psd_sim::Sim, st: &Rc<RefCell<PingState>>) {
    loop {
        let (fd, api, proto, pending) = {
            let s = st.borrow();
            (s.fd, s.api, s.proto, s.pending)
        };
        if pending == 0 {
            return;
        }
        let got = match (api, proto) {
            (ApiStyle::Classic, Proto::Tcp) => {
                let mut buf = vec![0u8; pending];
                match AppLib::recv(app, sim, fd, &mut buf) {
                    Ok(n) => n,
                    Err(SocketError::WouldBlock) => return,
                    Err(e) => panic!("protolat recv: {e}"),
                }
            }
            (ApiStyle::Classic, Proto::Udp) => {
                let mut buf = vec![0u8; pending.max(1)];
                match AppLib::recvfrom(app, sim, fd, &mut buf) {
                    Ok((n, _)) => n,
                    Err(SocketError::WouldBlock) => return,
                    Err(e) => panic!("protolat recv: {e}"),
                }
            }
            (ApiStyle::Newapi, _) => match AppLib::recv_shared(app, sim, fd, pending) {
                Ok(chain) => chain.len(),
                Err(SocketError::WouldBlock) => return,
                Err(e) => panic!("protolat recv: {e}"),
            },
        };
        if got == 0 {
            return;
        }
        let mut s = st.borrow_mut();
        s.pending = s.pending.saturating_sub(got);
        if s.pending > 0 {
            continue;
        }
        // Round complete. Charge the benchmark's own bookkeeping (timer
        // reads, loop control — protolat reads a high-resolution timer
        // per round; the paper's round-trip figures exceed its Table 4
        // sums by a comparable margin on every system).
        drop(s);
        {
            let a = app.borrow();
            let mut ch = a.begin(sim);
            ch.add_ns(psd_sim::Layer::Other, 35_000);
            a.finish(ch);
        }
        let mut s = st.borrow_mut();
        // Measurement begins exactly when the warmup
        // rounds are done (event time, not driver-poll time).
        s.collected += 1;
        if s.collected == s.warmup {
            s.start = Some(sim.now());
            if let Some(p) = &s.probe {
                p.borrow_mut().set_enabled(true);
            }
        }
        if s.rounds_left > 0 {
            s.rounds_left -= 1;
            drop(s);
            ping_send(app, sim, st);
        } else {
            s.end = Some(sim.now());
            return;
        }
    }
}

struct EchoState {
    conn: Option<Fd>,
    msg_size: usize,
    buffered: usize,
    api: ApiStyle,
    proto: Proto,
}

fn echo_drive(app: &AppHandle, sim: &mut psd_sim::Sim, st: &Rc<RefCell<EchoState>>, fd: Fd) {
    loop {
        let (api, proto, msg_size) = {
            let s = st.borrow();
            (s.api, s.proto, s.msg_size)
        };
        match proto {
            Proto::Udp => {
                // Echo each datagram back to its sender.
                let mut buf = vec![0u8; 2048];
                match AppLib::recvfrom(app, sim, fd, &mut buf) {
                    Ok((n, from)) => {
                        buf.truncate(n);
                        AppLib::sendto(app, sim, fd, &buf, Some(from)).expect("echo send");
                    }
                    Err(SocketError::WouldBlock) => return,
                    Err(e) => panic!("echo recv: {e}"),
                }
            }
            Proto::Tcp => {
                let got = match api {
                    ApiStyle::Classic => {
                        let mut buf = vec![0u8; msg_size];
                        match AppLib::recv(app, sim, fd, &mut buf) {
                            Ok(n) => n,
                            Err(SocketError::WouldBlock) => return,
                            Err(e) => panic!("echo recv: {e}"),
                        }
                    }
                    ApiStyle::Newapi => match AppLib::recv_shared(app, sim, fd, msg_size) {
                        Ok(chain) => chain.len(),
                        Err(SocketError::WouldBlock) => return,
                        Err(e) => panic!("echo recv: {e}"),
                    },
                };
                if got == 0 {
                    return;
                }
                let mut s = st.borrow_mut();
                s.buffered += got;
                if s.buffered >= msg_size {
                    s.buffered -= msg_size;
                    drop(s);
                    let reply = vec![0x5Au8; msg_size];
                    match api {
                        ApiStyle::Classic => {
                            AppLib::send(app, sim, fd, &reply).expect("echo send");
                        }
                        ApiStyle::Newapi => {
                            AppLib::send_shared(app, sim, fd, Rc::new(reply)).expect("echo send");
                        }
                    }
                }
            }
        }
    }
}

/// Runs the request/response latency benchmark: `rounds` measured round
/// trips of `msg_size`-byte messages after `warmup` unmeasured ones.
pub fn protolat(
    bed: &mut TestBed,
    proto: Proto,
    msg_size: usize,
    warmup: u32,
    rounds: u32,
    api: ApiStyle,
) -> ProtolatResult {
    let client_app = bed.hosts[0].spawn_app();
    let server_app = bed.hosts[1].spawn_app();
    let dst = InetAddr::new(bed.hosts[1].ip, LAT_PORT);

    // Echo server.
    let echo = Rc::new(RefCell::new(EchoState {
        conn: None,
        msg_size,
        buffered: 0,
        api,
        proto,
    }));
    match proto {
        Proto::Udp => {
            let sfd = AppLib::socket(&server_app, &mut bed.sim, Proto::Udp);
            AppLib::bind(&server_app, &mut bed.sim, sfd, LAT_PORT).expect("bind");
            let app = server_app.clone();
            let st = echo.clone();
            let handler: psd_core::FdEventFn = Rc::new(RefCell::new(
                move |sim: &mut psd_sim::Sim, fd: Fd, ev: SockEvent| {
                    if ev == SockEvent::Readable {
                        echo_drive(&app, sim, &st, fd);
                    }
                },
            ));
            server_app.borrow_mut().set_event_handler(sfd, handler);
        }
        Proto::Tcp => {
            let lfd = AppLib::socket(&server_app, &mut bed.sim, Proto::Tcp);
            AppLib::bind(&server_app, &mut bed.sim, lfd, LAT_PORT).expect("bind");
            AppLib::listen(&server_app, &mut bed.sim, lfd, 2).expect("listen");
            let app = server_app.clone();
            let st = echo.clone();
            let conn_app = server_app.clone();
            let conn_st = echo.clone();
            let conn_handler: psd_core::FdEventFn = Rc::new(RefCell::new(
                move |sim: &mut psd_sim::Sim, fd: Fd, ev: SockEvent| {
                    if matches!(ev, SockEvent::Readable) {
                        echo_drive(&conn_app, sim, &conn_st, fd);
                    }
                },
            ));
            let listen_handler: psd_core::FdEventFn = Rc::new(RefCell::new(
                move |sim: &mut psd_sim::Sim, fd: Fd, ev: SockEvent| {
                    if ev == SockEvent::Readable {
                        if let Ok(conn) = AppLib::accept(&app, sim, fd) {
                            st.borrow_mut().conn = Some(conn);
                            app.borrow_mut()
                                .set_event_handler(conn, conn_handler.clone());
                        }
                    }
                },
            ));
            server_app
                .borrow_mut()
                .set_event_handler(lfd, listen_handler);
        }
    }

    // Probe covering the measured rounds only (enabled when warmup
    // completes).
    let probe = LatencyProbe::shared();
    probe.borrow_mut().set_enabled(false);
    for host in &bed.hosts {
        host.cpu.borrow_mut().set_probe(Some(probe.clone()));
    }
    bed.ether.borrow_mut().set_probe(Some(probe.clone()));

    // Client.
    let cfd = AppLib::socket(&client_app, &mut bed.sim, proto);
    let ping = Rc::new(RefCell::new(PingState {
        fd: cfd,
        msg: vec![0xC3u8; msg_size],
        pending: 0,
        rounds_left: warmup + rounds,
        collected: 0,
        warmup,
        start: None,
        end: None,
        api,
        proto,
        probe: Some(probe.clone()),
    }));
    {
        let app = client_app.clone();
        let st = ping.clone();
        let handler: psd_core::FdEventFn = Rc::new(RefCell::new(
            move |sim: &mut psd_sim::Sim, _fd: Fd, ev: SockEvent| match ev {
                SockEvent::Connected => {
                    {
                        let mut s = st.borrow_mut();
                        s.rounds_left -= 1;
                        if s.warmup == 0 {
                            // No warmup: measurement starts with the
                            // first message.
                            s.start = Some(sim.now());
                            if let Some(p) = &s.probe {
                                p.borrow_mut().set_enabled(true);
                            }
                        }
                    }
                    ping_send(&app, sim, &st);
                }
                SockEvent::Readable => ping_recv(&app, sim, &st),
                SockEvent::Error(e) => panic!("protolat client error: {e}"),
                _ => {}
            },
        ));
        client_app.borrow_mut().set_event_handler(cfd, handler);
    }
    AppLib::connect(&client_app, &mut bed.sim, cfd, dst).expect("connect");

    // Drive to completion.
    let cap = SimTime::from_secs(600);
    let t0 = bed.sim.now();
    while ping.borrow().end.is_none() {
        let step = bed.sim.now() + SimTime::from_millis(20);
        bed.sim.run_until(step);
        assert!(
            bed.sim.now() - t0 < cap,
            "protolat stalled at {} rounds",
            ping.borrow().collected
        );
    }
    let (start, end) = {
        let p = ping.borrow();
        (
            p.start.expect("warmup completed"),
            p.end.expect("loop exited"),
        )
    };
    probe.borrow_mut().set_enabled(false);
    ProtolatResult {
        rounds,
        rtt: (end - start) / u64::from(rounds),
        probe,
    }
}
