//! The session-scaling workload engine behind the Table 5 benchmark.
//!
//! The paper's demultiplexing argument (§3.1) is asymptotic: CSPF runs
//! every installed session filter per packet, so its per-packet cost
//! grows with the number of live sessions, while MPF folds all session
//! filters into one shared-prefix dispatch whose cost is independent of
//! the session count. Tables 2–4 measure two-session workloads and
//! cannot exhibit the difference; this engine stands up N concurrent
//! sessions (mixed UDP/TCP, mixed wildcard/connected filters) on one
//! receiving host, drives a bursty datagram workload at them from a
//! seeded [`Rng`], and reports the per-packet filter cost observed at
//! the kernel demultiplexer together with the control-plane session
//! setup cost.
//!
//! Everything reported in [`ScaleReport`] except `wall` is derived from
//! virtual time and deterministic counters: two runs with the same spec
//! produce byte-identical reports. Wall-clock throughput is reported
//! separately so callers can keep it off the reproducible output.

use std::cell::RefCell;
use std::rc::Rc;
use std::time::{Duration, Instant};

use psd_core::{AppHandle, AppLib, Fd};
use psd_filter::{DemuxStrategy, FilterEngine};
use psd_netstack::{InetAddr, SockEvent, SocketError};
use psd_server::Proto;
use psd_sim::{OpKind, Platform, Rng, SimTime};
use psd_systems::{SystemConfig, TestBed};

/// Number of sender-side source sockets. Connected receiver sessions
/// are pinned to one of these source ports, giving the filter table a
/// mix of wildcard and fully-specified (connected) entries.
const TX_SOCKS: usize = 4;
/// First sender-side source port.
const TX_PORT_BASE: u16 = 9000;
/// First receiver-side wildcard port.
const RX_PORT_BASE: u16 = 10_000;
/// Port of the receiver's TCP listener.
const TCP_PORT: u16 = 20_000;
/// Port bound by the control-RPC latency probe at full session count.
const PROBE_PORT: u16 = 29_999;

/// Parameters of one scaling run.
#[derive(Clone, Debug)]
pub struct WorkloadSpec {
    /// Concurrent UDP sessions on the receiving host. Every fourth one
    /// is connected (fully-specified filter); the rest are wildcard.
    pub sessions: usize,
    /// Concurrent TCP connections riding along (capped: they exist to
    /// mix connected TCP filters into the table, not to carry load).
    pub tcp_sessions: usize,
    /// Datagrams sent during the measured burst phase.
    pub packets: usize,
    /// Datagram payload size in bytes.
    pub payload: usize,
    /// Seed for the testbed and the burst schedule.
    pub seed: u64,
    /// Timer-only ballast sessions held during the burst. Real sockets
    /// are bounded by the 16-bit port space (and each one costs setup
    /// virtual time quadratic in N), so scaling past ~50k "users" is
    /// modeled the way a real host would experience it at the event
    /// engine: each ballast session keeps a per-session keepalive timer
    /// (1–250 ms period, seeded independently of the burst schedule)
    /// live in the queue for the whole burst. Zero leaves the workload
    /// byte-identical to the pre-ballast engine.
    pub ballast_timers: usize,
    /// Packet-filter execution engine on the receiving kernels. The
    /// engines are observationally equivalent, so this never changes a
    /// reported (virtual-time) number — only host wall-clock speed.
    pub engine: FilterEngine,
    /// NEWAPI batching configuration applied to every host kernel. The
    /// default is inert (batch window 1, GRO/GSO off) and takes exactly
    /// the unbatched code paths, so archived tables never move.
    pub batch: psd_kernel::BatchConfig,
    /// Selective-copy placement policy installed on every host kernel
    /// before any session filter exists. `None` (the default) leaves
    /// every flow eagerly copied into the ring, as before.
    pub placement: Option<psd_filter::PlacementPolicy>,
}

impl WorkloadSpec {
    /// The standard spec at a given session count: TCP rides along at
    /// `n/8` capped to 32, and the burst is `packets` datagrams.
    pub fn at_scale(n: usize, packets: usize, seed: u64) -> WorkloadSpec {
        WorkloadSpec {
            sessions: n,
            tcp_sessions: (n / 8).clamp(1, 32),
            packets,
            payload: 64,
            seed,
            ballast_timers: 0,
            engine: FilterEngine::Interpret,
            batch: psd_kernel::BatchConfig::default(),
            placement: None,
        }
    }

    /// Adds timer-only ballast sessions (see
    /// [`ballast_timers`](WorkloadSpec::ballast_timers)).
    pub fn with_ballast(mut self, ballast: usize) -> WorkloadSpec {
        self.ballast_timers = ballast;
        self
    }

    /// Selects the packet-filter execution engine.
    pub fn with_engine(mut self, engine: FilterEngine) -> WorkloadSpec {
        self.engine = engine;
        self
    }

    /// Sets the NEWAPI batching configuration.
    pub fn with_batch(mut self, batch: psd_kernel::BatchConfig) -> WorkloadSpec {
        self.batch = batch;
        self
    }

    /// Installs a selective-copy placement policy on every host.
    pub fn with_placement(mut self, policy: psd_filter::PlacementPolicy) -> WorkloadSpec {
        self.placement = Some(policy);
        self
    }
}

/// Census op totals on the receiving host (present when the caller
/// asked for a census).
#[derive(Clone, Copy, Debug)]
pub struct CensusCounts {
    /// Filter programs run.
    pub filter_runs: u64,
    /// Whole-packet body copies.
    pub body_copies: u64,
    /// Protection-boundary crossings.
    pub crossings: u64,
    /// Thread wakeups.
    pub wakeups: u64,
}

/// What one `(config, strategy, N)` run produced.
#[derive(Clone, Debug)]
pub struct ScaleReport {
    /// The placement under test.
    pub config: SystemConfig,
    /// The kernel demultiplexing strategy under test.
    pub strategy: DemuxStrategy,
    /// UDP sessions stood up.
    pub sessions: usize,
    /// TCP connections established.
    pub tcp_sessions: usize,
    /// Session filters installed in the receiving kernel after setup.
    pub filters: usize,
    /// Frames the receiving kernel took off the wire during the burst.
    pub packets_rx: u64,
    /// Filter instructions per received frame during the burst — the
    /// Table 5 headline number.
    pub steps_per_packet: f64,
    /// Virtual nanoseconds of burst phase per received frame (captures
    /// server-resident demux cost that never touches a kernel filter).
    pub ns_per_packet: f64,
    /// Virtual time to bind one more session at full load — the
    /// control-RPC latency the paper worries about in §3.2.
    pub bind_rpc: SimTime,
    /// Virtual time to stand up all N sessions.
    pub setup: SimTime,
    /// Timer-only ballast sessions held during the burst.
    pub ballast_timers: usize,
    /// Simulator events executed during the burst phase (including the
    /// post-burst drain) — deterministic, the denominator for the
    /// self-benchmark's events/sec.
    pub events: u64,
    /// Receiving-host census totals, when a census was attached.
    pub census: Option<CensusCounts>,
    /// Per-host `(cpu, profiler)` pairs when charged-time profiling was
    /// requested (the handles outlive the testbed), empty otherwise.
    /// Profiling charges no virtual time, so every other field is
    /// byte-identical with or without it.
    pub profiles: Vec<(Rc<RefCell<psd_sim::Cpu>>, psd_sim::ProfileHandle)>,
    /// Wall-clock duration of the whole run (never byte-stable; keep
    /// off reproducible output).
    pub wall: Duration,
    /// Wall-clock duration of the burst phase alone (never byte-stable).
    pub wall_burst: Duration,
}

/// Runs the session-scaling workload for one placement, strategy, and
/// session count. Deterministic given `spec.seed` in everything except
/// [`ScaleReport::wall`].
pub fn session_scaling(
    config: SystemConfig,
    platform: Platform,
    strategy: DemuxStrategy,
    spec: &WorkloadSpec,
    want_census: bool,
) -> ScaleReport {
    session_scaling_with(config, platform, strategy, spec, want_census, None)
}

/// [`session_scaling`] with an optional packet-lifecycle tracer
/// attached to the testbed for the whole run. Tracing never charges
/// virtual time, so the report is identical with or without it.
pub fn session_scaling_with(
    config: SystemConfig,
    platform: Platform,
    strategy: DemuxStrategy,
    spec: &WorkloadSpec,
    want_census: bool,
    tracer: Option<&psd_sim::TraceHandle>,
) -> ScaleReport {
    session_scaling_observed(config, platform, strategy, spec, want_census, tracer, false)
}

/// [`session_scaling_with`] plus an optional charged-time profiler on
/// every host CPU; the handles come back in [`ScaleReport::profiles`].
/// Like tracing, profiling is charged-time-neutral.
#[allow(clippy::too_many_arguments)]
pub fn session_scaling_observed(
    config: SystemConfig,
    platform: Platform,
    strategy: DemuxStrategy,
    spec: &WorkloadSpec,
    want_census: bool,
    tracer: Option<&psd_sim::TraceHandle>,
    profile: bool,
) -> ScaleReport {
    let wall0 = Instant::now();
    let mut bed = TestBed::new(config, platform, spec.seed);
    // The strategy must be chosen while the filter table is empty.
    for h in &bed.hosts {
        h.kernel.borrow_mut().set_demux_strategy(strategy);
    }
    bed.set_filter_engine(spec.engine);
    bed.set_batch_config(spec.batch);
    // The placement policy must exist before any session filter is
    // installed — flows are classified at install time.
    bed.set_placement_policy(spec.placement.clone());
    let censuses = want_census.then(|| bed.attach_census());
    if let Some(t) = tracer {
        bed.attach_tracer_handle(t);
    }
    let profilers = profile.then(|| bed.attach_profilers());
    let mut rng = Rng::new(spec.seed ^ 0x5EED_5CA1_E000_0001);

    // --- Sender: a few fixed source sockets. ---
    let tx_app = bed.hosts[0].spawn_app();
    let mut tx_fds: Vec<Fd> = Vec::with_capacity(TX_SOCKS);
    for j in 0..TX_SOCKS {
        let fd = AppLib::socket(&tx_app, &mut bed.sim, Proto::Udp);
        AppLib::bind(&tx_app, &mut bed.sim, fd, TX_PORT_BASE + j as u16).expect("tx bind");
        tx_fds.push(fd);
    }
    bed.settle();
    // Warm the sender's ARP path so the burst has no cold-cache drops.
    AppLib::sendto(
        &tx_app,
        &mut bed.sim,
        tx_fds[0],
        b"warm",
        Some(InetAddr::new(bed.hosts[1].ip, 9)),
    )
    .expect("warm send");
    bed.settle();

    // --- Receiver: N UDP sessions, mixed wildcard/connected. ---
    let rx_app = bed.hosts[1].spawn_app();
    let setup0 = bed.sim.now();
    // (destination port, required sender socket) per session; the port
    // of connected sessions is resolved after setup settles.
    let mut targets: Vec<(u16, Option<usize>)> = Vec::with_capacity(spec.sessions);
    let mut rx_fds: Vec<(Fd, bool)> = Vec::with_capacity(spec.sessions);
    for i in 0..spec.sessions {
        let fd = AppLib::socket(&rx_app, &mut bed.sim, Proto::Udp);
        if i % 4 == 3 {
            // Connected: no explicit bind, so library placements install
            // a fully-specified filter for the (remote, local) pair.
            let j = (i / 4) % TX_SOCKS;
            let remote = InetAddr::new(bed.hosts[0].ip, TX_PORT_BASE + j as u16);
            AppLib::connect(&rx_app, &mut bed.sim, fd, remote).expect("rx connect");
            targets.push((0, Some(j)));
            rx_fds.push((fd, true));
        } else {
            let port = RX_PORT_BASE + i as u16;
            AppLib::bind(&rx_app, &mut bed.sim, fd, port).expect("rx bind");
            targets.push((port, None));
            rx_fds.push((fd, false));
        }
    }
    bed.settle();
    // Resolve the ephemeral local ports of connected sessions. Library
    // placements expose them through `local_addr`; server-resident
    // sessions do not, but the server's allocator hands out the first
    // free ephemeral port in order, and these connects are the only
    // UDP ephemeral claims on this host, so the sequence is known.
    let mut ephemeral = psd_server::EPHEMERAL_FIRST;
    for (i, (fd, connected)) in rx_fds.iter().enumerate() {
        if *connected {
            let predicted = ephemeral;
            ephemeral += 1;
            let port = rx_app
                .borrow()
                .local_addr(*fd)
                .map(|a| a.port)
                .unwrap_or(predicted);
            targets[i].0 = port;
        }
    }

    // --- TCP sessions ride along, adding connected TCP filters. ---
    let tcp_n = spec.tcp_sessions;
    let accepted = Rc::new(RefCell::new(0usize));
    {
        let listener = AppLib::socket(&rx_app, &mut bed.sim, Proto::Tcp);
        AppLib::bind(&rx_app, &mut bed.sim, listener, TCP_PORT).expect("tcp bind");
        AppLib::listen(&rx_app, &mut bed.sim, listener, tcp_n).expect("listen");
        let app = rx_app.clone();
        let accepted = accepted.clone();
        let handler: psd_core::FdEventFn = Rc::new(RefCell::new(
            move |sim: &mut psd_sim::Sim, fd: Fd, ev: SockEvent| {
                if ev == SockEvent::Readable {
                    while let Ok(_conn) = AppLib::accept(&app, sim, fd) {
                        *accepted.borrow_mut() += 1;
                    }
                }
            },
        ));
        rx_app.borrow_mut().set_event_handler(listener, handler);
    }
    let dst = InetAddr::new(bed.hosts[1].ip, TCP_PORT);
    for _ in 0..tcp_n {
        let fd = AppLib::socket(&tx_app, &mut bed.sim, Proto::Tcp);
        AppLib::connect(&tx_app, &mut bed.sim, fd, dst).expect("tcp connect");
    }
    let cap = bed.sim.now() + SimTime::from_secs(120);
    while *accepted.borrow() < tcp_n && bed.sim.now() < cap {
        let step = bed.sim.now() + SimTime::from_millis(50);
        bed.sim.run_until(step);
    }
    assert_eq!(*accepted.borrow(), tcp_n, "tcp sessions established");
    bed.settle();
    let setup = bed.sim.now() - setup0;

    // --- Control-RPC latency probe: one more bind at full load. ---
    // A bind RPC runs synchronously on the host CPU without scheduling
    // events, so the event clock never moves; the CPU busy cursor does.
    let probe_fd = AppLib::socket(&rx_app, &mut bed.sim, Proto::Udp);
    let bind0 = bed.hosts[1].cpu.borrow().busy_until().max(bed.sim.now());
    AppLib::bind(&rx_app, &mut bed.sim, probe_fd, PROBE_PORT).expect("probe bind");
    bed.settle();
    let bind1 = bed.hosts[1].cpu.borrow().busy_until().max(bed.sim.now());
    let bind_rpc = SimTime::from_nanos(bind1.as_nanos().saturating_sub(bind0.as_nanos()));

    let filters = bed.hosts[1].kernel.borrow().filters_installed();

    // --- Ballast: timer-only sessions resident in the event queue. ---
    // Seeded independently of the burst schedule, and gated by a shared
    // flag so the post-burst settle can terminate.
    let ballast_active = Rc::new(std::cell::Cell::new(true));
    let mut ballast_rng = Rng::new(spec.seed ^ 0xBA11_A57E_0000_0001);
    for _ in 0..spec.ballast_timers {
        let period = SimTime::from_nanos(ballast_rng.range(1_000_000, 250_000_000));
        schedule_keepalive(&mut bed.sim, period, ballast_active.clone());
    }

    // --- Burst phase: datagrams at random sessions, bursty arrivals. ---
    let k0 = bed.hosts[1].kernel.borrow().stats();
    let burst0 = bed.sim.now();
    let events0 = bed.sim.executed();
    let wall_burst0 = Instant::now();
    let payload = vec![0xB7u8; spec.payload];
    let mut sent = 0usize;
    while sent < spec.packets {
        let burst = (1 + rng.below(8) as usize).min(spec.packets - sent);
        for _ in 0..burst {
            let ti = rng.below(targets.len() as u64) as usize;
            let (port, pinned) = targets[ti];
            let j = pinned.unwrap_or_else(|| rng.below(TX_SOCKS as u64) as usize);
            let to = Some(InetAddr::new(bed.hosts[1].ip, port));
            loop {
                match AppLib::sendto(&tx_app, &mut bed.sim, tx_fds[j], &payload, to) {
                    Ok(_) => break,
                    Err(SocketError::WouldBlock) => bed.run_for(SimTime::from_millis(1)),
                    Err(e) => panic!("burst send: {e}"),
                }
            }
            sent += 1;
        }
        let gap = rng.range(100_000, 500_000);
        bed.run_for(SimTime::from_nanos(gap));
    }
    // Retire the ballast before draining: each pending keepalive fires
    // once more without rescheduling, so the settle terminates.
    ballast_active.set(false);
    bed.settle();
    let wall_burst = wall_burst0.elapsed();
    let events = bed.sim.executed() - events0;
    let burst = bed.sim.now() - burst0;
    let k1 = bed.hosts[1].kernel.borrow().stats();
    let packets_rx = k1.rx_frames - k0.rx_frames;
    let steps = k1.filter_steps - k0.filter_steps;
    assert!(packets_rx > 0, "burst delivered no frames");

    let census = censuses.map(|cs| {
        let c = cs[1].borrow();
        CensusCounts {
            filter_runs: c.total(OpKind::FilterRun),
            body_copies: c.total(OpKind::PacketBodyCopy),
            crossings: c.total(OpKind::BoundaryCrossing),
            wakeups: c.total(OpKind::Wakeup),
        }
    });

    ScaleReport {
        config,
        strategy,
        sessions: spec.sessions,
        tcp_sessions: tcp_n,
        filters,
        packets_rx,
        steps_per_packet: steps as f64 / packets_rx as f64,
        ns_per_packet: burst.as_nanos() as f64 / packets_rx as f64,
        bind_rpc,
        setup,
        ballast_timers: spec.ballast_timers,
        events,
        census,
        profiles: profilers
            .map(|ps| {
                bed.hosts
                    .iter()
                    .zip(ps)
                    .map(|(h, p)| (h.cpu.clone(), p))
                    .collect()
            })
            .unwrap_or_default(),
        wall: wall0.elapsed(),
        wall_burst,
    }
}

/// Schedules one ballast keepalive tick; it re-arms itself while
/// `active` holds. The capture (period + flag) fits the engine's inline
/// closure storage, so ballast exercises the allocation-free fast path.
fn schedule_keepalive(sim: &mut psd_sim::Sim, period: SimTime, active: Rc<std::cell::Cell<bool>>) {
    sim.after(period, move |s| {
        if active.get() {
            schedule_keepalive(s, period, active);
        }
    });
}

/// Convenience: the receiving app handle type used by the engine.
pub type App = AppHandle;

#[cfg(test)]
mod tests {
    use super::*;

    fn report(config: SystemConfig, strategy: DemuxStrategy, n: usize) -> ScaleReport {
        let spec = WorkloadSpec::at_scale(n, 64, 42);
        session_scaling(config, Platform::DecStation5000_200, strategy, &spec, false)
    }

    #[test]
    fn engine_stands_up_library_sessions_and_filters() {
        let r = report(SystemConfig::LibraryShm, DemuxStrategy::Mpf, 32);
        // Every UDP session plus the probe session installed a filter;
        // TCP children and the sender side live on the other host.
        assert!(
            r.filters > 32,
            "expected per-session filters, got {}",
            r.filters
        );
        assert!(r.packets_rx >= 64);
        assert!(r.steps_per_packet > 0.0);
    }

    #[test]
    fn engine_is_deterministic() {
        let a = report(SystemConfig::LibraryShmIpf, DemuxStrategy::Cspf, 24);
        let b = report(SystemConfig::LibraryShmIpf, DemuxStrategy::Cspf, 24);
        assert_eq!(a.packets_rx, b.packets_rx);
        assert_eq!(a.steps_per_packet, b.steps_per_packet);
        assert_eq!(a.bind_rpc, b.bind_rpc);
        assert_eq!(a.setup, b.setup);
        assert_eq!(a.ns_per_packet, b.ns_per_packet);
    }

    #[test]
    fn filter_engines_yield_identical_reports() {
        // The compiled tier must be invisible to every simulated
        // quantity — Table 5 under either engine is byte-identical.
        for strategy in [DemuxStrategy::Cspf, DemuxStrategy::Mpf] {
            let spec = WorkloadSpec::at_scale(24, 64, 42);
            let a = session_scaling(
                SystemConfig::LibraryShm,
                Platform::DecStation5000_200,
                strategy,
                &spec,
                true,
            );
            let b = session_scaling(
                SystemConfig::LibraryShm,
                Platform::DecStation5000_200,
                strategy,
                &spec.with_engine(FilterEngine::Compiled),
                true,
            );
            assert_eq!(a.packets_rx, b.packets_rx);
            assert_eq!(a.steps_per_packet, b.steps_per_packet);
            assert_eq!(a.ns_per_packet, b.ns_per_packet);
            assert_eq!(a.bind_rpc, b.bind_rpc);
            assert_eq!(a.setup, b.setup);
            assert_eq!(a.filters, b.filters);
            let (ca, cb) = (a.census.unwrap(), b.census.unwrap());
            assert_eq!(ca.filter_runs, cb.filter_runs);
            assert_eq!(ca.body_copies, cb.body_copies);
            assert_eq!(ca.crossings, cb.crossings);
            assert_eq!(ca.wakeups, cb.wakeups);
        }
    }

    #[test]
    fn default_batch_config_is_inert() {
        // An explicit `unbatched()` config must be indistinguishable
        // from never touching the batching API at all — this is the
        // property that keeps archived tables 2–5 byte-identical.
        let spec = WorkloadSpec::at_scale(24, 64, 42);
        let a = session_scaling(
            SystemConfig::LibraryIpc,
            Platform::DecStation5000_200,
            DemuxStrategy::Mpf,
            &spec.clone(),
            true,
        );
        let b = session_scaling(
            SystemConfig::LibraryIpc,
            Platform::DecStation5000_200,
            DemuxStrategy::Mpf,
            &spec.with_batch(psd_kernel::BatchConfig::unbatched()),
            true,
        );
        assert_eq!(a.packets_rx, b.packets_rx);
        assert_eq!(a.steps_per_packet, b.steps_per_packet);
        assert_eq!(a.ns_per_packet, b.ns_per_packet);
        assert_eq!(a.setup, b.setup);
        let (ca, cb) = (a.census.unwrap(), b.census.unwrap());
        assert_eq!(ca.crossings, cb.crossings);
        assert_eq!(ca.body_copies, cb.body_copies);
        assert_eq!(ca.wakeups, cb.wakeups);
    }

    #[test]
    fn batching_reduces_crossings_without_changing_delivery() {
        let spec = WorkloadSpec::at_scale(16, 96, 42);
        let base = session_scaling(
            SystemConfig::LibraryShm,
            Platform::DecStation5000_200,
            DemuxStrategy::Mpf,
            &spec.clone(),
            true,
        );
        let batched = session_scaling(
            SystemConfig::LibraryShm,
            Platform::DecStation5000_200,
            DemuxStrategy::Mpf,
            &spec.with_batch(psd_kernel::BatchConfig {
                batch: 16,
                gro: false,
                gso: false,
            }),
            true,
        );
        // Same frames delivered, same filter work — only the crossing
        // count shrinks.
        assert_eq!(batched.packets_rx, base.packets_rx);
        assert_eq!(batched.steps_per_packet, base.steps_per_packet);
        let (cb, ca) = (batched.census.unwrap(), base.census.unwrap());
        assert!(
            cb.crossings < ca.crossings,
            "batched crossings {} must undercut unbatched {}",
            cb.crossings,
            ca.crossings
        );
    }

    #[test]
    fn server_resident_placement_installs_no_session_filters() {
        let r = report(SystemConfig::UxServer, DemuxStrategy::Mpf, 16);
        assert_eq!(r.filters, 0);
        assert!(r.packets_rx >= 64);
    }

    #[test]
    fn ballast_timers_add_events_without_touching_packets() {
        let run = |ballast: usize| {
            let spec = WorkloadSpec::at_scale(16, 64, 42).with_ballast(ballast);
            session_scaling(
                SystemConfig::LibraryShm,
                Platform::DecStation5000_200,
                DemuxStrategy::Mpf,
                &spec,
                false,
            )
        };
        let base = run(0);
        let loaded = run(512);
        // Ballast is pure event-queue load: the packet path and filter
        // accounting must be unperturbed.
        assert_eq!(loaded.packets_rx, base.packets_rx);
        assert_eq!(loaded.steps_per_packet, base.steps_per_packet);
        assert_eq!(loaded.filters, base.filters);
        assert!(
            loaded.events > base.events + 512,
            "keepalives must tick: {} vs {}",
            loaded.events,
            base.events
        );
        let again = run(512);
        assert_eq!(loaded.events, again.events, "ballast is deterministic");
    }
}
