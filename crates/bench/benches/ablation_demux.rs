//! Ablation: CSPF linear-scan demultiplexing vs the MPF associative
//! dispatch the paper's system used, as the number of installed
//! sessions grows. (DESIGN.md §5: the receive path's classification
//! cost is the design choice behind the Yuhara et al. integration.)

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use psd_filter::{DemuxStrategy, DemuxTable, EndpointSpec};
use psd_wire::{EtherAddr, EtherType, EthernetHeader, IpProto, Ipv4Header, UdpHeader};
use std::net::Ipv4Addr;

fn frame(dst_port: u16) -> Vec<u8> {
    let ip = Ipv4Header::new(
        Ipv4Addr::new(10, 0, 0, 1),
        Ipv4Addr::new(10, 0, 0, 2),
        IpProto::Udp,
        8,
    );
    let eth = EthernetHeader {
        dst: EtherAddr::local(2),
        src: EtherAddr::local(1),
        ethertype: EtherType::Ipv4,
    };
    let mut f = eth.encode().to_vec();
    f.extend_from_slice(&ip.encode());
    f.extend_from_slice(&UdpHeader::new(999, dst_port, 0).encode());
    f
}

fn bench_demux(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation/demux");
    for sessions in [1usize, 8, 32, 128] {
        for (strategy, name) in [(DemuxStrategy::Cspf, "cspf"), (DemuxStrategy::Mpf, "mpf")] {
            let mut table: DemuxTable<u32> = DemuxTable::new(strategy);
            for i in 0..sessions {
                table.install(
                    EndpointSpec::unconnected(
                        IpProto::Udp,
                        Ipv4Addr::new(10, 0, 0, 2),
                        8000 + i as u16,
                    ),
                    i as u32,
                );
            }
            // Worst case for the scan: the last-installed port.
            let f = frame(8000 + sessions as u16 - 1);
            // Report the modelled instruction counts once.
            let steps = table.classify(&f).steps;
            eprintln!("[virtual] {name} sessions={sessions}: {steps} filter insns");
            group.bench_with_input(BenchmarkId::new(name, sessions), &sessions, |b, _| {
                b.iter(|| table.classify(&f).owner)
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_demux);
criterion_main!(benches);
