//! Criterion wrapper for the Table 2 workloads: wall-clock cost of
//! simulating `ttcp` and `protolat` per configuration. The *virtual*
//! results (the numbers comparable to the paper) are printed once per
//! benchmark and regenerated exactly by `cargo run -p psd-bench --bin
//! table2`.

use criterion::{criterion_group, criterion_main, Criterion};
use psd_bench::{protolat, ttcp, ApiStyle};
use psd_server::Proto;
use psd_sim::Platform;
use psd_systems::{SystemConfig, TestBed};

fn bench_ttcp(c: &mut Criterion) {
    let platform = Platform::DecStation5000_200;
    let mut group = c.benchmark_group("table2/ttcp_1mb");
    group.sample_size(10);
    for config in SystemConfig::for_platform(platform) {
        // Print the virtual-time result once.
        let mut bed = TestBed::new(config, platform, 42);
        let r = ttcp(&mut bed, 1 << 20, ApiStyle::Classic);
        eprintln!(
            "[virtual] {:<28} {:>6.0} KB/s",
            config.label(),
            r.kb_per_sec
        );
        group.bench_function(config.label(), |b| {
            b.iter(|| {
                let mut bed = TestBed::new(config, platform, 42);
                ttcp(&mut bed, 1 << 20, ApiStyle::Classic)
            })
        });
    }
    group.finish();
}

fn bench_protolat(c: &mut Criterion) {
    let platform = Platform::DecStation5000_200;
    let mut group = c.benchmark_group("table2/protolat_udp_1b");
    group.sample_size(10);
    for config in SystemConfig::for_platform(platform) {
        let mut bed = TestBed::new(config, platform, 42);
        let r = protolat(&mut bed, Proto::Udp, 1, 10, 50, ApiStyle::Classic);
        eprintln!(
            "[virtual] {:<28} rtt {:>7.3} ms",
            config.label(),
            r.rtt.as_millis_f64()
        );
        group.bench_function(config.label(), |b| {
            b.iter(|| {
                let mut bed = TestBed::new(config, platform, 42);
                protolat(&mut bed, Proto::Udp, 1, 10, 50, ApiStyle::Classic)
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_ttcp, bench_protolat);
criterion_main!(benches);
