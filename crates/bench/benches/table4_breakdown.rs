//! Criterion wrapper for Table 4: the instrumented latency-breakdown
//! runs (library / kernel / server, TCP and UDP). The per-layer tables
//! themselves come from `cargo run -p psd-bench --bin table4`.

use criterion::{criterion_group, criterion_main, Criterion};
use psd_bench::{protolat, ApiStyle};
use psd_server::Proto;
use psd_sim::Platform;
use psd_systems::{SystemConfig, TestBed};

fn bench_breakdown(c: &mut Criterion) {
    let mut group = c.benchmark_group("table4/instrumented_protolat");
    group.sample_size(10);
    for (config, name) in [
        (SystemConfig::LibraryShmIpf, "library"),
        (SystemConfig::Mach25InKernel, "kernel"),
        (SystemConfig::UxServer, "server"),
    ] {
        for (proto, pname) in [(Proto::Tcp, "tcp"), (Proto::Udp, "udp")] {
            group.bench_function(format!("{name}/{pname}_1460b"), |b| {
                b.iter(|| {
                    let mut bed = TestBed::new(config, Platform::DecStation5000_200, 7);
                    protolat(&mut bed, proto, 1460, 10, 50, ApiStyle::Classic)
                })
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_breakdown);
criterion_main!(benches);
