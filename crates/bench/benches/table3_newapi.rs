//! Criterion wrapper for Table 3: the NEWAPI shared-buffer interface
//! against the conventional one on the library configurations.

use criterion::{criterion_group, criterion_main, Criterion};
use psd_bench::{ttcp, ApiStyle};
use psd_sim::Platform;
use psd_systems::{SystemConfig, TestBed};

fn bench_newapi(c: &mut Criterion) {
    let platform = Platform::DecStation5000_200;
    let mut group = c.benchmark_group("table3/api_style");
    group.sample_size(10);
    for config in [SystemConfig::LibraryIpc, SystemConfig::LibraryShmIpf] {
        for (api, name) in [(ApiStyle::Classic, "classic"), (ApiStyle::Newapi, "newapi")] {
            let mut bed = TestBed::new(config, platform, 42);
            let r = ttcp(&mut bed, 1 << 20, api);
            eprintln!(
                "[virtual] {:<28} {:<8} {:>6.0} KB/s",
                config.label(),
                name,
                r.kb_per_sec
            );
            group.bench_function(format!("{}/{}", config.label(), name), |b| {
                b.iter(|| {
                    let mut bed = TestBed::new(config, platform, 42);
                    ttcp(&mut bed, 1 << 20, api)
                })
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_newapi);
criterion_main!(benches);
