//! Ablation: the cost of the session-migration control path — full
//! connect/transfer/close cycles per configuration. The paper's
//! argument is that connection establishment can afford the extra IPC
//! ("negligible compared to the latency of a multi-phase network
//! handshake"); this measures it.

use criterion::{criterion_group, criterion_main, Criterion};
use psd_bench::{protolat, ApiStyle};
use psd_server::Proto;
use psd_sim::Platform;
use psd_systems::{SystemConfig, TestBed};

fn bench_connect_cycle(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation/connect_cycle");
    group.sample_size(10);
    for config in [
        SystemConfig::Mach25InKernel,
        SystemConfig::UxServer,
        SystemConfig::LibraryShmIpf,
    ] {
        // One connect + 2 round trips + close, dominated by the
        // handshake; migration overhead is the delta between rows.
        group.bench_function(config.label(), |b| {
            b.iter(|| {
                let mut bed = TestBed::new(config, Platform::DecStation5000_200, 5);
                protolat(&mut bed, Proto::Tcp, 64, 0, 2, ApiStyle::Classic)
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_connect_cycle);
criterion_main!(benches);
