//! ICMP glue: building reply datagrams for the stack.
//!
//! ICMP is exceptional-packet traffic, handled by whichever stack owns
//! the catch-all (the operating system server in the decomposed
//! configurations).

use psd_wire::icmp::{UNREACH_HOST, UNREACH_PORT};
use psd_wire::{IcmpMessage, IcmpType, IpProto, Ipv4Header};
use std::net::Ipv4Addr;

/// Builds the `(header, payload)` of an echo reply answering `req`
/// received in `ip`.
pub fn echo_reply(ip: &Ipv4Header, req: &IcmpMessage) -> Option<(Ipv4Header, Vec<u8>)> {
    if req.kind != IcmpType::EchoRequest {
        return None;
    }
    let reply = req.echo_reply().encode();
    Some((
        Ipv4Header::new(ip.dst, ip.src, IpProto::Icmp, reply.len()),
        reply,
    ))
}

/// Builds a port-unreachable error quoting the offending datagram
/// (`ip_bytes` = the received IP header + first payload bytes).
pub fn port_unreachable(
    my_ip: Ipv4Addr,
    offender_src: Ipv4Addr,
    ip_bytes: &[u8],
) -> (Ipv4Header, Vec<u8>) {
    let msg = IcmpMessage::unreachable(UNREACH_PORT, ip_bytes).encode();
    (
        Ipv4Header::new(my_ip, offender_src, IpProto::Icmp, msg.len()),
        msg,
    )
}

/// Builds a host-unreachable error.
pub fn host_unreachable(
    my_ip: Ipv4Addr,
    offender_src: Ipv4Addr,
    ip_bytes: &[u8],
) -> (Ipv4Header, Vec<u8>) {
    let msg = IcmpMessage::unreachable(UNREACH_HOST, ip_bytes).encode();
    (
        Ipv4Header::new(my_ip, offender_src, IpProto::Icmp, msg.len()),
        msg,
    )
}

/// If `msg` is a destination-unreachable quoting a UDP datagram we
/// sent, extract `(original_dst_ip, original_dst_port, original_src_port)`
/// so the error can be matched to a connected socket.
pub fn parse_unreachable_udp(msg: &IcmpMessage) -> Option<(Ipv4Addr, u16, u16)> {
    let IcmpType::DestUnreachable(_) = msg.kind else {
        return None;
    };
    let quoted = &msg.payload;
    let ip = Ipv4Header::parse(quoted).ok().or_else(|| {
        // The quote holds only header + 8 bytes, so `total_len` may
        // exceed the buffer; reparse leniently by padding.
        let mut padded = quoted.clone();
        padded.resize(1500, 0);
        Ipv4Header::parse(&padded).ok()
    })?;
    if ip.proto != IpProto::Udp {
        return None;
    }
    let tp = quoted.get(ip.header_len..)?;
    if tp.len() < 4 {
        return None;
    }
    let src_port = u16::from_be_bytes([tp[0], tp[1]]);
    let dst_port = u16::from_be_bytes([tp[2], tp[3]]);
    Some((ip.dst, dst_port, src_port))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn echo_reply_swaps_addresses() {
        let src = Ipv4Addr::new(10, 0, 0, 1);
        let dst = Ipv4Addr::new(10, 0, 0, 2);
        let req = IcmpMessage::echo_request(7, 1, b"payload".to_vec());
        let ip = Ipv4Header::new(src, dst, IpProto::Icmp, req.encode().len());
        let (rip, bytes) = echo_reply(&ip, &req).unwrap();
        assert_eq!(rip.src, dst);
        assert_eq!(rip.dst, src);
        let parsed = IcmpMessage::parse(&bytes).unwrap();
        assert_eq!(parsed.kind, IcmpType::EchoReply);
        assert_eq!(parsed.payload, b"payload");
    }

    #[test]
    fn echo_reply_ignores_non_requests() {
        let ip = Ipv4Header::new(Ipv4Addr::LOCALHOST, Ipv4Addr::LOCALHOST, IpProto::Icmp, 8);
        let notreq = IcmpMessage::echo_request(1, 1, vec![]).echo_reply();
        assert!(echo_reply(&ip, &notreq).is_none());
    }

    #[test]
    fn unreachable_roundtrip_extracts_udp_endpoints() {
        // The original datagram we "sent".
        let orig_ip = Ipv4Header::new(
            Ipv4Addr::new(10, 0, 0, 1),
            Ipv4Addr::new(10, 0, 0, 2),
            IpProto::Udp,
            8 + 3,
        );
        let udp = psd_wire::UdpHeader::new(5555, 7777, 3);
        let mut quoted = orig_ip.encode().to_vec();
        quoted.extend_from_slice(&udp.encode());
        quoted.extend_from_slice(b"abc");
        let (_hdr, bytes) = port_unreachable(
            Ipv4Addr::new(10, 0, 0, 2),
            Ipv4Addr::new(10, 0, 0, 1),
            &quoted,
        );
        let msg = IcmpMessage::parse(&bytes).unwrap();
        let (dst_ip, dst_port, src_port) = parse_unreachable_udp(&msg).unwrap();
        assert_eq!(dst_ip, Ipv4Addr::new(10, 0, 0, 2));
        assert_eq!(dst_port, 7777);
        assert_eq!(src_port, 5555);
    }
}
