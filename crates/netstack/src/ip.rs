//! IP fragmentation and reassembly.
//!
//! Fragmentation happens in `ip_output` when a datagram exceeds the
//! interface MTU; reassembly happens in `ipintr`. In the decomposed
//! system, session packet filters never match fragments, so fragmented
//! datagrams are always reassembled by the operating system server
//! (which then forwards them to the owning application) — one of the
//! "difficult cases" §3.1 routes through the server.

use psd_sim::SimTime;
#[cfg(test)]
use psd_wire::IpProto;
use psd_wire::Ipv4Header;
use std::collections::HashMap;
use std::net::Ipv4Addr;

/// How long a partial datagram may sit in the reassembly queue.
pub const REASS_TTL: SimTime = SimTime::from_secs(30);

/// Splits an IP payload into fragments that fit `mtu`. Returns
/// `(header, payload)` pairs ready for transmission. The input header
/// must describe the whole datagram.
pub fn fragment(hdr: &Ipv4Header, payload: &[u8], mtu: usize) -> Vec<(Ipv4Header, Vec<u8>)> {
    let max_data = (mtu - hdr.header_len) & !7;
    assert!(max_data > 0, "mtu too small to fragment into");
    if payload.len() + hdr.header_len <= mtu {
        return vec![(*hdr, payload.to_vec())];
    }
    let mut out = Vec::new();
    let mut off = 0;
    while off < payload.len() {
        let take = max_data.min(payload.len() - off);
        let last = off + take == payload.len();
        let mut fh = *hdr;
        fh.frag_offset = hdr.frag_offset + off as u16;
        fh.more_fragments = !last || hdr.more_fragments;
        fh.total_len = (fh.header_len + take) as u16;
        out.push((fh, payload[off..off + take].to_vec()));
        off += take;
    }
    out
}

#[derive(Clone, PartialEq, Eq, Hash, Debug)]
struct ReassKey {
    src: Ipv4Addr,
    dst: Ipv4Addr,
    proto: u8,
    ident: u16,
}

struct Partial {
    pieces: Vec<(u16, Vec<u8>)>,
    total_len: Option<usize>,
    deadline: SimTime,
    template: Ipv4Header,
}

impl Partial {
    fn try_complete(&self) -> Option<Vec<u8>> {
        let total = self.total_len?;
        let mut buf = vec![0u8; total];
        let mut covered = vec![false; total];
        for (off, data) in &self.pieces {
            let off = usize::from(*off);
            if off + data.len() > total {
                return None;
            }
            buf[off..off + data.len()].copy_from_slice(data);
            covered[off..off + data.len()]
                .iter_mut()
                .for_each(|c| *c = true);
        }
        if covered.iter().all(|&c| c) {
            Some(buf)
        } else {
            None
        }
    }
}

/// The reassembly queue.
#[derive(Default)]
pub struct Reassembler {
    partials: HashMap<ReassKey, Partial>,
}

impl Reassembler {
    /// An empty queue.
    pub fn new() -> Reassembler {
        Reassembler::default()
    }

    /// Number of datagrams being reassembled.
    pub fn len(&self) -> usize {
        self.partials.len()
    }

    /// True if nothing is pending.
    pub fn is_empty(&self) -> bool {
        self.partials.is_empty()
    }

    /// Feeds one fragment. Returns the reassembled `(header, payload)`
    /// when the datagram completes.
    pub fn insert(
        &mut self,
        hdr: &Ipv4Header,
        payload: &[u8],
        now: SimTime,
    ) -> Option<(Ipv4Header, Vec<u8>)> {
        debug_assert!(hdr.is_fragment());
        let key = ReassKey {
            src: hdr.src,
            dst: hdr.dst,
            proto: hdr.proto.to_u8(),
            ident: hdr.ident,
        };
        let partial = self.partials.entry(key.clone()).or_insert_with(|| Partial {
            pieces: Vec::new(),
            total_len: None,
            deadline: now + REASS_TTL,
            template: *hdr,
        });
        partial.pieces.push((hdr.frag_offset, payload.to_vec()));
        if !hdr.more_fragments {
            partial.total_len = Some(usize::from(hdr.frag_offset) + payload.len());
        }
        if let Some(buf) = partial.try_complete() {
            let mut whole = partial.template;
            self.partials.remove(&key);
            whole.frag_offset = 0;
            whole.more_fragments = false;
            whole.total_len = (whole.header_len + buf.len()) as u16;
            Some((whole, buf))
        } else {
            None
        }
    }

    /// Discards partial datagrams whose deadline has passed. Returns the
    /// number discarded.
    pub fn expire(&mut self, now: SimTime) -> usize {
        let before = self.partials.len();
        self.partials.retain(|_, p| p.deadline > now);
        before - self.partials.len()
    }
}

/// Computes a fresh identification value sequence for outgoing
/// datagrams.
#[derive(Debug, Default)]
pub struct IpIdent(u16);

impl IpIdent {
    /// Next identification value.
    #[allow(clippy::should_implement_trait)] // Deliberately not an Iterator: never exhausts.
    pub fn next(&mut self) -> u16 {
        self.0 = self.0.wrapping_add(1);
        self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hdr(payload_len: usize, ident: u16) -> Ipv4Header {
        let mut h = Ipv4Header::new(
            Ipv4Addr::new(10, 0, 0, 1),
            Ipv4Addr::new(10, 0, 0, 2),
            IpProto::Udp,
            payload_len,
        );
        h.ident = ident;
        h
    }

    #[test]
    fn small_datagram_is_not_fragmented() {
        let h = hdr(100, 1);
        let frags = fragment(&h, &[7u8; 100], 1500);
        assert_eq!(frags.len(), 1);
        assert!(!frags[0].0.more_fragments);
    }

    #[test]
    fn fragments_cover_payload_exactly() {
        let payload: Vec<u8> = (0..4000u32).map(|i| i as u8).collect();
        let h = hdr(payload.len(), 2);
        let frags = fragment(&h, &payload, 1500);
        assert!(frags.len() >= 3);
        let mut reassembled = vec![0u8; payload.len()];
        for (fh, data) in &frags {
            let off = usize::from(fh.frag_offset);
            reassembled[off..off + data.len()].copy_from_slice(data);
            // All but the last have MF set and 8-byte-aligned offsets.
            assert_eq!(fh.frag_offset % 8, 0);
        }
        assert_eq!(reassembled, payload);
        assert!(frags[..frags.len() - 1]
            .iter()
            .all(|(h, _)| h.more_fragments));
        assert!(!frags.last().unwrap().0.more_fragments);
    }

    #[test]
    fn reassembly_in_order() {
        let payload: Vec<u8> = (0..3000u32).map(|i| i as u8).collect();
        let h = hdr(payload.len(), 3);
        let frags = fragment(&h, &payload, 1500);
        let mut r = Reassembler::new();
        let mut done = None;
        for (fh, data) in &frags {
            done = r.insert(fh, data, SimTime::ZERO);
        }
        let (whole, buf) = done.expect("reassembly should complete");
        assert_eq!(buf, payload);
        assert_eq!(whole.payload_len(), payload.len());
        assert!(r.is_empty());
    }

    #[test]
    fn reassembly_out_of_order_and_duplicates() {
        let payload: Vec<u8> = (0..3000u32).map(|i| (i * 7) as u8).collect();
        let h = hdr(payload.len(), 4);
        let mut frags = fragment(&h, &payload, 576);
        frags.reverse();
        let dup = frags[2].clone();
        frags.insert(3, dup);
        let mut r = Reassembler::new();
        let mut done = None;
        for (fh, data) in &frags {
            let res = r.insert(fh, data, SimTime::ZERO);
            if res.is_some() {
                done = res;
            }
        }
        assert_eq!(done.expect("complete").1, payload);
    }

    #[test]
    fn interleaved_datagrams_do_not_mix() {
        let pa: Vec<u8> = vec![0xAA; 3000];
        let pb: Vec<u8> = vec![0xBB; 3000];
        let fa = fragment(&hdr(3000, 10), &pa, 1500);
        let fb = fragment(&hdr(3000, 11), &pb, 1500);
        let mut r = Reassembler::new();
        let mut results = Vec::new();
        for (x, y) in fa.iter().zip(fb.iter()) {
            if let Some(done) = r.insert(&x.0, &x.1, SimTime::ZERO) {
                results.push(done);
            }
            if let Some(done) = r.insert(&y.0, &y.1, SimTime::ZERO) {
                results.push(done);
            }
        }
        assert_eq!(results.len(), 2);
        assert!(results.iter().any(|(h, p)| h.ident == 10 && p == &pa));
        assert!(results.iter().any(|(h, p)| h.ident == 11 && p == &pb));
    }

    #[test]
    fn expiry_discards_partials() {
        let payload = vec![1u8; 3000];
        let h = hdr(3000, 5);
        let frags = fragment(&h, &payload, 1500);
        let mut r = Reassembler::new();
        r.insert(&frags[0].0, &frags[0].1, SimTime::ZERO);
        assert_eq!(r.len(), 1);
        assert_eq!(r.expire(SimTime::from_secs(31)), 1);
        assert!(r.is_empty());
    }

    #[test]
    fn ident_increments() {
        let mut id = IpIdent::default();
        let a = id.next();
        let b = id.next();
        assert_ne!(a, b);
    }
}
