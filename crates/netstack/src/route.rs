//! The routing table.
//!
//! Routes are "long-term state that is used by all sessions, but owned
//! by none" (§3.3): the operating system server owns the authoritative
//! table, and application libraries hold cached copies that the server
//! invalidates by bumping a version. The table itself is a simple
//! longest-prefix-match structure; 1993-era hosts had a handful of
//! routes.

use std::net::Ipv4Addr;

/// One route entry.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Route {
    /// Destination network.
    pub dest: Ipv4Addr,
    /// Network mask.
    pub mask: Ipv4Addr,
    /// Next hop: `None` for directly attached networks (deliver to the
    /// destination itself), `Some(gw)` to forward via a gateway.
    pub gateway: Option<Ipv4Addr>,
}

impl Route {
    fn matches(&self, dst: Ipv4Addr) -> bool {
        u32::from(dst) & u32::from(self.mask) == u32::from(self.dest) & u32::from(self.mask)
    }

    fn prefix_len(&self) -> u32 {
        u32::from(self.mask).count_ones()
    }
}

/// A routing table with longest-prefix-match lookup and a version
/// counter for cache invalidation.
#[derive(Clone, Debug, Default)]
pub struct RouteTable {
    routes: Vec<Route>,
    version: u64,
}

impl RouteTable {
    /// An empty table.
    pub fn new() -> RouteTable {
        RouteTable::default()
    }

    /// A table with one directly attached network (the common
    /// single-Ethernet host of the paper's testbed).
    pub fn directly_attached(network: Ipv4Addr, mask: Ipv4Addr) -> RouteTable {
        let mut t = RouteTable::new();
        t.add(Route {
            dest: network,
            mask,
            gateway: None,
        });
        t
    }

    /// Adds a route, bumping the version.
    pub fn add(&mut self, route: Route) {
        self.routes.push(route);
        self.version += 1;
    }

    /// Removes routes to the given destination network. Returns how
    /// many were removed.
    pub fn remove(&mut self, dest: Ipv4Addr, mask: Ipv4Addr) -> usize {
        let before = self.routes.len();
        self.routes.retain(|r| !(r.dest == dest && r.mask == mask));
        let removed = before - self.routes.len();
        if removed > 0 {
            self.version += 1;
        }
        removed
    }

    /// Adds a default route via `gateway`.
    pub fn add_default(&mut self, gateway: Ipv4Addr) {
        self.add(Route {
            dest: Ipv4Addr::UNSPECIFIED,
            mask: Ipv4Addr::UNSPECIFIED,
            gateway: Some(gateway),
        });
    }

    /// Longest-prefix-match lookup: returns the IP the packet must be
    /// delivered to on the local link (the destination itself, or the
    /// gateway).
    pub fn lookup(&self, dst: Ipv4Addr) -> Option<Ipv4Addr> {
        self.routes
            .iter()
            .filter(|r| r.matches(dst))
            .max_by_key(|r| r.prefix_len())
            .map(|r| r.gateway.unwrap_or(dst))
    }

    /// The version counter, bumped on every change (used by library
    /// metastate caches to detect staleness).
    pub fn version(&self) -> u64 {
        self.version
    }

    /// Number of routes.
    pub fn len(&self) -> usize {
        self.routes.len()
    }

    /// True if no routes are installed.
    pub fn is_empty(&self) -> bool {
        self.routes.is_empty()
    }

    /// All routes (for snapshotting into an application cache).
    pub fn snapshot(&self) -> Vec<Route> {
        self.routes.clone()
    }

    /// Replaces the contents from a snapshot (cache refresh).
    pub fn load(&mut self, routes: Vec<Route>, version: u64) {
        self.routes = routes;
        self.version = version;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ip(s: &str) -> Ipv4Addr {
        s.parse().unwrap()
    }

    #[test]
    fn direct_route_returns_destination() {
        let t = RouteTable::directly_attached(ip("10.0.0.0"), ip("255.255.255.0"));
        assert_eq!(t.lookup(ip("10.0.0.7")), Some(ip("10.0.0.7")));
    }

    #[test]
    fn gateway_route_returns_gateway() {
        let mut t = RouteTable::directly_attached(ip("10.0.0.0"), ip("255.255.255.0"));
        t.add_default(ip("10.0.0.1"));
        assert_eq!(t.lookup(ip("192.168.5.5")), Some(ip("10.0.0.1")));
    }

    #[test]
    fn longest_prefix_wins() {
        let mut t = RouteTable::new();
        t.add_default(ip("10.0.0.1"));
        t.add(Route {
            dest: ip("192.168.0.0"),
            mask: ip("255.255.0.0"),
            gateway: Some(ip("10.0.0.2")),
        });
        t.add(Route {
            dest: ip("192.168.7.0"),
            mask: ip("255.255.255.0"),
            gateway: Some(ip("10.0.0.3")),
        });
        assert_eq!(t.lookup(ip("192.168.7.9")), Some(ip("10.0.0.3")));
        assert_eq!(t.lookup(ip("192.168.9.9")), Some(ip("10.0.0.2")));
        assert_eq!(t.lookup(ip("8.8.8.8")), Some(ip("10.0.0.1")));
    }

    #[test]
    fn no_route_is_none() {
        let t = RouteTable::directly_attached(ip("10.0.0.0"), ip("255.255.255.0"));
        assert_eq!(t.lookup(ip("9.9.9.9")), None);
    }

    #[test]
    fn version_bumps_on_change() {
        let mut t = RouteTable::new();
        let v0 = t.version();
        t.add_default(ip("10.0.0.1"));
        assert!(t.version() > v0);
        let v1 = t.version();
        assert_eq!(t.remove(ip("0.0.0.0"), ip("0.0.0.0")), 1);
        assert!(t.version() > v1);
        // Removing a nonexistent route does not bump.
        let v2 = t.version();
        assert_eq!(t.remove(ip("1.2.3.0"), ip("255.255.255.0")), 0);
        assert_eq!(t.version(), v2);
    }

    #[test]
    fn snapshot_and_load_roundtrip() {
        let mut auth = RouteTable::directly_attached(ip("10.0.0.0"), ip("255.255.255.0"));
        auth.add_default(ip("10.0.0.1"));
        let mut cache = RouteTable::new();
        cache.load(auth.snapshot(), auth.version());
        assert_eq!(cache.version(), auth.version());
        assert_eq!(cache.lookup(ip("8.8.8.8")), auth.lookup(ip("8.8.8.8")));
        assert_eq!(cache.len(), 2);
    }
}
