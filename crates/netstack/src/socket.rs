//! Socket identifiers, events, and errors.
//!
//! The stack exposes non-blocking operations; blocking behaviour and
//! the exact BSD system-call signatures are layered above (proxy in the
//! application, socket layer in the server). Events notify those upper
//! layers of state changes — the mechanism beneath `sbwait`/`sowakeup`
//! and beneath the cooperative `select` of §3.2.

use std::fmt;

/// A socket handle within one stack instance.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct SockId(pub u64);

/// State-change notifications delivered to the socket's owner.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum SockEvent {
    /// Data (or a connection, for listeners) is available to read.
    Readable,
    /// Send-buffer space became available.
    Writable,
    /// An active open completed: the connection is established.
    Connected,
    /// The remote end will send no more data (FIN received).
    PeerClosed,
    /// The connection failed or was reset.
    Error(SocketError),
    /// The connection has fully terminated (close handshake complete,
    /// TIME_WAIT expired, or reset) — the owner may reclaim resources.
    Closed,
}

/// Errors in the style of BSD errnos.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum SocketError {
    /// Operation would block (EWOULDBLOCK).
    WouldBlock,
    /// Address already in use (EADDRINUSE).
    AddrInUse,
    /// The socket is not connected (ENOTCONN).
    NotConnected,
    /// The socket is already connected (EISCONN).
    IsConnected,
    /// Connection refused by the peer (ECONNREFUSED).
    ConnRefused,
    /// Connection reset by the peer (ECONNRESET).
    ConnReset,
    /// The connection timed out (ETIMEDOUT).
    TimedOut,
    /// No route to host (EHOSTUNREACH).
    HostUnreach,
    /// Message too long for the protocol (EMSGSIZE).
    MsgSize,
    /// Invalid argument or state (EINVAL).
    Invalid,
    /// The socket is closed / bad descriptor (EBADF).
    BadSocket,
    /// The operation is not supported on this socket (EOPNOTSUPP).
    OpNotSupp,
    /// The connection is shutting down (ESHUTDOWN).
    Shutdown,
    /// Out of buffer space (ENOBUFS).
    NoBufs,
}

impl fmt::Display for SocketError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            SocketError::WouldBlock => "operation would block",
            SocketError::AddrInUse => "address already in use",
            SocketError::NotConnected => "socket is not connected",
            SocketError::IsConnected => "socket is already connected",
            SocketError::ConnRefused => "connection refused",
            SocketError::ConnReset => "connection reset by peer",
            SocketError::TimedOut => "connection timed out",
            SocketError::HostUnreach => "no route to host",
            SocketError::MsgSize => "message too long",
            SocketError::Invalid => "invalid argument",
            SocketError::BadSocket => "bad socket",
            SocketError::OpNotSupp => "operation not supported",
            SocketError::Shutdown => "connection is shutting down",
            SocketError::NoBufs => "no buffer space available",
        };
        f.write_str(s)
    }
}

impl std::error::Error for SocketError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_strings() {
        assert_eq!(SocketError::WouldBlock.to_string(), "operation would block");
        assert_eq!(
            SocketError::ConnReset.to_string(),
            "connection reset by peer"
        );
    }

    #[test]
    fn sock_ids_are_ordered() {
        assert!(SockId(1) < SockId(2));
    }
}
