//! TCB state-machine tests: two TCBs wired back-to-back through an
//! in-memory "wire" with controllable loss, plus manual timer firing.

use super::*;
use std::collections::HashMap;
use std::collections::VecDeque;

const A: InetAddr = InetAddr {
    ip: std::net::Ipv4Addr::new(10, 0, 0, 1),
    port: 1000,
};
const B: InetAddr = InetAddr {
    ip: std::net::Ipv4Addr::new(10, 0, 0, 2),
    port: 2000,
};

const BUF: usize = 16 * 1024;

/// Records of interesting non-Send actions per side.
#[derive(Default)]
struct Events {
    connected: bool,
    peer_closed: bool,
    failed: Option<SocketError>,
    freed: bool,
    delivered: u32,
    woke_writers: u32,
}

struct Harness {
    tcb: [Tcb; 2],
    wire: [VecDeque<(TcpHeader, Vec<u8>)>; 2],
    timers: [HashMap<TcpTimer, SimTime>; 2],
    events: [Events; 2],
    now: SimTime,
    /// Drop the next N data-bearing segments from side 0.
    drop_data_from_a: u32,
    segments_sent: [u32; 2],
}

impl Harness {
    fn new() -> Harness {
        Harness {
            tcb: [Tcb::new(A, B, BUF, BUF), Tcb::new(B, A, BUF, BUF)],
            wire: [VecDeque::new(), VecDeque::new()],
            timers: [HashMap::new(), HashMap::new()],
            events: [Events::default(), Events::default()],
            now: SimTime::from_millis(1),
            drop_data_from_a: 0,
            segments_sent: [0, 0],
        }
    }

    fn apply(&mut self, side: usize, actions: Vec<TcpAction>) {
        for a in actions {
            match a {
                TcpAction::Send(spec) => {
                    self.segments_sent[side] += 1;
                    let drop = side == 0 && !spec.data.is_empty() && self.drop_data_from_a > 0;
                    if drop {
                        self.drop_data_from_a -= 1;
                        continue;
                    }
                    let hdr = spec.header();
                    self.wire[1 - side].push_back((hdr, spec.data.to_vec()));
                }
                TcpAction::SetTimer(k, d) => {
                    self.timers[side].insert(k, self.now + d);
                }
                TcpAction::CancelTimer(k) => {
                    self.timers[side].remove(&k);
                }
                TcpAction::Connected => self.events[side].connected = true,
                TcpAction::PeerClosed => self.events[side].peer_closed = true,
                TcpAction::Fail(e) => self.events[side].failed = Some(e),
                TcpAction::Free => self.events[side].freed = true,
                TcpAction::Deliver { .. } => self.events[side].delivered += 1,
                TcpAction::WakeWriters => self.events[side].woke_writers += 1,
            }
        }
    }

    /// Delivers queued segments (both directions) until quiescent.
    fn pump(&mut self) {
        for _ in 0..10_000 {
            let mut progressed = false;
            for side in 0..2 {
                if let Some((hdr, data)) = self.wire[side].pop_front() {
                    self.now += SimTime::from_micros(100);
                    let actions = self.tcb[side].input(&hdr, &data, self.now);
                    self.apply(side, actions);
                    progressed = true;
                }
            }
            if !progressed {
                return;
            }
        }
        panic!("pump did not quiesce");
    }

    /// Fires a specific timer on `side` if armed.
    fn fire_timer(&mut self, side: usize, kind: TcpTimer) -> bool {
        if let Some(at) = self.timers[side].remove(&kind) {
            self.now = self.now.max(at);
            let actions = self.tcb[side].timer(kind, self.now);
            self.apply(side, actions);
            true
        } else {
            false
        }
    }

    /// Fires the globally earliest pending timer, if any.
    fn fire_earliest_any(&mut self) -> bool {
        let mut best: Option<(usize, TcpTimer, SimTime)> = None;
        for side in 0..2 {
            for (k, at) in &self.timers[side] {
                if best.is_none_or(|(_, _, b)| *at < b) {
                    best = Some((side, *k, *at));
                }
            }
        }
        let Some((side, kind, _)) = best else {
            return false;
        };
        self.fire_timer(side, kind)
    }

    /// Pumps traffic and fires a bounded number of timers. Bounded (not
    /// run-to-exhaustion) because armed connections re-arm persist and
    /// retransmission timers indefinitely.
    fn settle(&mut self) {
        for _ in 0..25 {
            self.pump();
            if !self.fire_earliest_any() {
                return;
            }
        }
        self.pump();
    }

    /// Fires the earliest pending timer on `side`, if any.
    fn fire_earliest_timer(&mut self, side: usize) -> Option<TcpTimer> {
        let (kind, at) = self.timers[side]
            .iter()
            .min_by_key(|(_, at)| **at)
            .map(|(k, at)| (*k, *at))?;
        self.timers[side].remove(&kind);
        self.now = self.now.max(at);
        let actions = self.tcb[side].timer(kind, self.now);
        self.apply(side, actions);
        Some(kind)
    }

    fn connect(&mut self) {
        let actions = self.tcb[0].connect(10_000);
        self.apply(0, actions);
        // Side 1 does a passive open driven from the SYN.
        let (syn_hdr, _) = self.wire[1].pop_front().expect("SYN on the wire");
        assert!(syn_hdr.flags.contains(TcpFlags::SYN));
        let (tcb, actions) = Tcb::accept_syn(
            B,
            A,
            20_000,
            syn_hdr.seq,
            syn_hdr.mss,
            syn_hdr.window,
            BUF,
            BUF,
        );
        self.tcb[1] = tcb;
        self.apply(1, actions);
        self.pump();
        assert_eq!(self.tcb[0].state, TcpState::Established);
        assert_eq!(self.tcb[1].state, TcpState::Established);
        assert!(self.events[0].connected);
        assert!(self.events[1].connected);
    }

    fn send(&mut self, side: usize, data: &[u8]) -> usize {
        let (n, actions) = self.tcb[side].send(data, self.now).expect("send failed");
        self.apply(side, actions);
        n
    }

    fn recv_all(&mut self, side: usize) -> Vec<u8> {
        let mut out = Vec::new();
        let mut buf = [0u8; 4096];
        loop {
            let (n, actions) = self.tcb[side].recv(&mut buf, self.now);
            self.apply(side, actions);
            if n == 0 {
                break;
            }
            out.extend_from_slice(&buf[..n]);
        }
        out
    }
}

#[test]
fn seq_arithmetic_wraps() {
    assert!(seq_lt(0xFFFF_FFF0, 0x10));
    assert!(seq_gt(0x10, 0xFFFF_FFF0));
    assert!(seq_le(5, 5));
    assert!(seq_ge(5, 5));
    assert!(!seq_lt(5, 5));
}

#[test]
fn three_way_handshake() {
    let mut h = Harness::new();
    h.connect();
    // Handshake must have cleared the retransmission timers.
    assert!(!h.timers[0].contains_key(&TcpTimer::Rexmt));
    assert!(!h.timers[1].contains_key(&TcpTimer::Rexmt));
}

#[test]
fn simple_data_transfer() {
    let mut h = Harness::new();
    h.connect();
    let msg = b"hello from a to b";
    assert_eq!(h.send(0, msg), msg.len());
    h.pump();
    assert_eq!(h.recv_all(1), msg);
    assert!(h.events[1].delivered > 0);
}

#[test]
fn bulk_transfer_respects_mss_and_delivers_in_order() {
    let mut h = Harness::new();
    h.connect();
    let data: Vec<u8> = (0..50_000u32).map(|i| (i % 251) as u8).collect();
    let mut off = 0;
    let mut received: Vec<u8> = Vec::new();
    let mut rounds = 0;
    while received.len() < data.len() {
        rounds += 1;
        assert!(rounds < 5000, "transfer stalled at {}", received.len());
        if off < data.len() {
            match h.tcb[0].send(&data[off..], h.now) {
                Ok((n, actions)) => {
                    h.apply(0, actions);
                    off += n;
                }
                Err(SocketError::WouldBlock) => {}
                Err(e) => panic!("send error {e}"),
            }
        }
        h.pump();
        let drained = h.recv_all(1);
        if drained.is_empty() {
            // Let delayed ACKs (and anything else pending) fire.
            h.fire_earliest_any();
            h.pump();
        }
        received.extend_from_slice(&drained);
    }
    assert_eq!(received, data);
}

#[test]
fn sender_respects_receive_window() {
    let mut h = Harness::new();
    h.connect();
    // B's receive buffer is BUF; send twice that without B reading.
    let data = vec![7u8; BUF * 2];
    let mut sent = 0;
    for _ in 0..2000 {
        match h.tcb[0].send(&data[sent..], h.now) {
            Ok((n, actions)) => {
                h.apply(0, actions);
                sent += n;
            }
            Err(SocketError::WouldBlock) => break,
            Err(e) => panic!("{e}"),
        }
        h.settle();
        if sent >= data.len() {
            break;
        }
    }
    h.settle();
    // B's buffer must never overflow its reservation.
    assert!(
        h.tcb[1].readable() <= BUF,
        "readable {}",
        h.tcb[1].readable()
    );
    // Drain at B, keep pushing at A; the whole payload must land.
    let mut received = h.recv_all(1);
    let mut rounds = 0;
    while received.len() < data.len() {
        rounds += 1;
        assert!(rounds < 5000, "window never reopened: {}", received.len());
        if sent < data.len() {
            if let Ok((n, actions)) = h.tcb[0].send(&data[sent..], h.now) {
                h.apply(0, actions);
                sent += n;
            }
        }
        h.settle();
        received.extend(h.recv_all(1));
    }
    assert_eq!(received.len(), data.len());
}

#[test]
fn retransmission_recovers_lost_segment() {
    let mut h = Harness::new();
    h.connect();
    h.drop_data_from_a = 1;
    let msg = vec![5u8; 512];
    h.send(0, &msg);
    h.pump();
    assert_eq!(h.tcb[1].readable(), 0, "segment was dropped");
    // The retransmission timer must be armed; firing it resends.
    assert!(h.timers[0].contains_key(&TcpTimer::Rexmt));
    let fired = h.fire_earliest_timer(0);
    assert_eq!(fired, Some(TcpTimer::Rexmt));
    h.pump();
    assert_eq!(h.recv_all(1), msg);
    assert!(h.tcb[0].rexmt_segs >= 1);
}

#[test]
fn rto_backs_off_exponentially() {
    let mut h = Harness::new();
    h.connect();
    h.drop_data_from_a = u32::MAX; // Black hole.
    h.send(0, &[1u8; 100]);
    let mut rtos = Vec::new();
    for _ in 0..4 {
        rtos.push(h.tcb[0].rto());
        h.fire_earliest_timer(0);
    }
    assert!(rtos[1] >= rtos[0] * 2 || rtos[0] == RTO_MAX);
    assert!(rtos[2] >= rtos[1], "{rtos:?}");
}

#[test]
fn rto_backoff_is_capped_at_rto_max_under_sustained_blackout() {
    let mut h = Harness::new();
    h.connect();
    h.drop_data_from_a = u32::MAX; // Sustained blackout.
    h.send(0, &[1u8; 100]);
    let mut last = SimTime::ZERO;
    for _ in 0..MAX_RXT {
        last = h.tcb[0].rto();
        assert!(last <= RTO_MAX, "backoff never exceeds the cap");
        h.fire_earliest_timer(0);
    }
    assert_eq!(last, RTO_MAX, "a long blackout walks the RTO to the cap");
}

#[test]
fn karns_rule_ignores_the_ambiguous_ack_after_a_link_flap() {
    let mut h = Harness::new();
    h.connect();
    // A clean exchange seeds the RTT estimator.
    h.send(0, &[1u8; 100]);
    h.settle();
    h.recv_all(1);
    let srtt_before = h.tcb[0].srtt().expect("estimator seeded");
    // Link flap: the segment dies, the retransmission timer fires, and
    // the ACK (of the retransmission) only returns after the link heals
    // 5 virtual seconds later.
    h.drop_data_from_a = 1;
    h.send(0, &[2u8; 100]);
    h.pump();
    h.fire_timer(0, TcpTimer::Rexmt);
    h.now += SimTime::from_secs(5);
    h.pump();
    h.recv_all(1);
    // Karn: an ACK for a retransmitted segment is ambiguous — it must
    // not feed the estimator, or the 5 s "sample" would wreck it.
    let srtt_after = h.tcb[0].srtt().expect("estimator still valid");
    assert_eq!(srtt_after, srtt_before, "ambiguous sample was discarded");
}

#[test]
fn connection_times_out_after_max_retransmits() {
    let mut h = Harness::new();
    h.connect();
    h.drop_data_from_a = u32::MAX;
    h.send(0, &[1u8; 100]);
    for _ in 0..=MAX_RXT + 1 {
        if h.fire_earliest_timer(0).is_none() {
            break;
        }
    }
    assert_eq!(h.events[0].failed, Some(SocketError::TimedOut));
    assert!(h.events[0].freed);
    assert_eq!(h.tcb[0].state, TcpState::Closed);
}

#[test]
fn fast_retransmit_on_triple_dupack() {
    let mut h = Harness::new();
    h.connect();
    h.tcb[0].nodelay = true;
    // Open the congestion window so several segments fly at once.
    for _ in 0..20 {
        let big = vec![1u8; 1460];
        let _ = h.tcb[0].send(&big, h.now).map(|(_, a)| h.apply(0, a));
        h.settle();
        h.recv_all(1);
    }
    assert!(
        h.tcb[0].cwnd() >= 5 * 1460,
        "cwnd must be open for this test, is {}",
        h.tcb[0].cwnd()
    );
    // Drop exactly one data segment, then push a burst: the following
    // segments arrive out of order and generate duplicate ACKs, which
    // must trigger fast retransmit without waiting for the RTO.
    h.drop_data_from_a = 1;
    let burst = vec![2u8; 5 * 1460];
    let mut off = 0;
    while off < burst.len() {
        match h.tcb[0].send(&burst[off..], h.now) {
            Ok((n, a)) => {
                h.apply(0, a);
                off += n;
            }
            Err(_) => break,
        }
    }
    h.pump(); // Traffic only — no timers, so no RTO can fire.
    assert!(
        h.tcb[0].fast_rexmts >= 1,
        "expected a fast retransmit (dupacks path)"
    );
    // And the receiver sees the burst intact and in order.
    h.settle();
    let got = h.recv_all(1);
    assert_eq!(got.len(), burst.len());
    assert!(got.iter().all(|&b| b == 2));
}

#[test]
fn out_of_order_segments_are_reassembled() {
    let mut h = Harness::new();
    h.connect();
    h.tcb[0].nodelay = true;
    // Grow cwnd past three segments first (slow start would otherwise
    // serialize the sends).
    for _ in 0..6 {
        let _ = h.tcb[0]
            .send(&vec![9u8; 1460], h.now)
            .map(|(_, a)| h.apply(0, a));
        h.settle();
        h.recv_all(1);
    }
    // Send three segments in one burst; drop the first on the wire.
    h.drop_data_from_a = 1;
    let mut burst = vec![1u8; 1460];
    burst.extend_from_slice(&[2u8; 1460]);
    burst.extend_from_slice(&[3u8; 1460]);
    let mut off = 0;
    while off < burst.len() {
        let (n, a) = h.tcb[0].send(&burst[off..], h.now).expect("send");
        h.apply(0, a);
        off += n;
    }
    h.pump();
    // Segments 2 and 3 sit in the reassembly queue; nothing readable.
    assert_eq!(h.tcb[1].readable(), 0);
    // Recovery (fast retransmit via the dup ACKs, or the RTO) fills the
    // hole and the queue drains in order.
    h.settle();
    let got = h.recv_all(1);
    assert_eq!(got.len(), 3 * 1460);
    assert!(got[..1460].iter().all(|&b| b == 1));
    assert!(got[1460..2920].iter().all(|&b| b == 2));
    assert!(got[2920..].iter().all(|&b| b == 3));
}

#[test]
fn delayed_ack_second_segment_acks_immediately() {
    let mut h = Harness::new();
    h.connect();
    h.tcb[0].nodelay = true;
    // First small segment: receiver should set the delack timer, not
    // ACK immediately.
    h.send(0, b"one");
    let before = h.segments_sent[1];
    // Deliver just that segment.
    let (hdr, data) = h.wire[1].pop_front().unwrap();
    let actions = h.tcb[1].input(&hdr, &data, h.now);
    h.apply(1, actions);
    assert_eq!(h.segments_sent[1], before, "first segment: delayed ACK");
    assert!(h.timers[1].contains_key(&TcpTimer::DelAck));
    // Second segment: ACK at once.
    h.send(0, b"two");
    let (hdr, data) = h.wire[1].pop_front().unwrap();
    let actions = h.tcb[1].input(&hdr, &data, h.now);
    h.apply(1, actions);
    assert_eq!(h.segments_sent[1], before + 1, "second segment acks now");
    assert!(!h.timers[1].contains_key(&TcpTimer::DelAck));
}

#[test]
fn delack_timer_fires_ack() {
    let mut h = Harness::new();
    h.connect();
    h.send(0, b"only one");
    let (hdr, data) = h.wire[1].pop_front().unwrap();
    let actions = h.tcb[1].input(&hdr, &data, h.now);
    h.apply(1, actions);
    let before = h.segments_sent[1];
    let fired = h.fire_earliest_timer(1);
    assert_eq!(fired, Some(TcpTimer::DelAck));
    assert_eq!(h.segments_sent[1], before + 1);
}

#[test]
fn nagle_coalesces_small_writes() {
    let mut h = Harness::new();
    h.connect();
    // With Nagle on (default), a second small write while the first is
    // unacknowledged must not produce a segment.
    h.send(0, b"a");
    let sent_after_first = h.segments_sent[0];
    h.send(0, b"b");
    assert_eq!(h.segments_sent[0], sent_after_first, "Nagle held the runt");
    h.pump();
    // B is holding a delayed ACK for the first runt; once it fires the
    // coalesced data flows.
    h.fire_timer(1, TcpTimer::DelAck);
    h.pump();
    assert_eq!(h.recv_all(1), b"ab");
}

#[test]
fn nodelay_disables_nagle() {
    let mut h = Harness::new();
    h.connect();
    h.tcb[0].nodelay = true;
    h.send(0, b"a");
    let sent_after_first = h.segments_sent[0];
    h.send(0, b"b");
    assert!(h.segments_sent[0] > sent_after_first, "nodelay sends runts");
}

#[test]
fn zero_window_triggers_persist_probe() {
    let mut h = Harness::new();
    h.connect();
    // Fill B's receive buffer completely.
    let data = vec![9u8; BUF];
    let mut sent = 0;
    while sent < data.len() {
        match h.tcb[0].send(&data[sent..], h.now) {
            Ok((n, actions)) => {
                h.apply(0, actions);
                sent += n;
                h.pump();
            }
            Err(SocketError::WouldBlock) => break,
            Err(e) => panic!("{e}"),
        }
    }
    h.pump();
    // Push one more byte: window is zero, persist should arm.
    let _ = h.tcb[0].send(b"x", h.now).map(|(_, a)| h.apply(0, a));
    h.pump();
    if h.tcb[1].rcv_buf.space() == 0 {
        assert!(
            h.timers[0].contains_key(&TcpTimer::Persist),
            "persist timer armed on zero window"
        );
        // Probe elicits an ACK with the (still zero) window.
        let before = h.segments_sent[0];
        h.fire_earliest_timer(0);
        assert!(h.segments_sent[0] > before);
        h.pump();
        // Reading at B reopens the window; the probe/update lets data flow.
        h.recv_all(1);
        h.pump();
        let _ = h.tcb[0].output(h.now, false);
    }
}

#[test]
fn orderly_close_reaches_time_wait_and_frees() {
    let mut h = Harness::new();
    h.connect();
    // A closes first.
    let actions = h.tcb[0].close(h.now);
    h.apply(0, actions);
    h.pump();
    assert!(h.events[1].peer_closed);
    assert_eq!(h.tcb[1].state, TcpState::CloseWait);
    assert_eq!(h.tcb[0].state, TcpState::FinWait2);
    // B closes too.
    let actions = h.tcb[1].close(h.now);
    h.apply(1, actions);
    h.pump();
    assert_eq!(h.tcb[1].state, TcpState::Closed);
    assert!(h.events[1].freed);
    assert_eq!(h.tcb[0].state, TcpState::TimeWait);
    assert!(h.timers[0].contains_key(&TcpTimer::TwoMsl));
    // 2MSL expiry frees A.
    h.fire_earliest_timer(0);
    assert_eq!(h.tcb[0].state, TcpState::Closed);
    assert!(h.events[0].freed);
}

#[test]
fn close_flushes_pending_data_before_fin() {
    let mut h = Harness::new();
    h.connect();
    h.send(0, b"last words");
    let actions = h.tcb[0].close(h.now);
    h.apply(0, actions);
    h.pump();
    assert_eq!(h.recv_all(1), b"last words");
    assert!(h.events[1].peer_closed);
    assert!(h.tcb[1].at_eof());
}

#[test]
fn simultaneous_close_both_reach_closed() {
    let mut h = Harness::new();
    h.connect();
    let a0 = h.tcb[0].close(h.now);
    let a1 = h.tcb[1].close(h.now);
    h.apply(0, a0);
    h.apply(1, a1);
    h.pump();
    for side in 0..2 {
        assert!(
            matches!(h.tcb[side].state, TcpState::TimeWait | TcpState::Closed),
            "side {side} in {:?}",
            h.tcb[side].state
        );
        h.fire_earliest_timer(side);
        assert_eq!(h.tcb[side].state, TcpState::Closed);
    }
}

#[test]
fn abort_sends_rst_and_peer_resets() {
    let mut h = Harness::new();
    h.connect();
    let actions = h.tcb[0].abort();
    h.apply(0, actions);
    h.pump();
    assert_eq!(h.events[1].failed, Some(SocketError::ConnReset));
    assert_eq!(h.tcb[1].state, TcpState::Closed);
    assert_eq!(h.tcb[1].error, Some(SocketError::ConnReset));
}

#[test]
fn syn_to_closed_port_is_refused() {
    // B is closed (no listener); A's SYN gets RST and connect fails.
    let mut h = Harness::new();
    let actions = h.tcb[0].connect(10_000);
    h.apply(0, actions);
    let (syn, data) = h.wire[1].pop_front().unwrap();
    let actions = h.tcb[1].input(&syn, &data, h.now); // tcb[1] is Closed.
    h.apply(1, actions);
    h.pump();
    assert_eq!(h.events[0].failed, Some(SocketError::ConnRefused));
    assert_eq!(h.tcb[0].state, TcpState::Closed);
}

#[test]
fn send_on_unconnected_socket_fails() {
    let mut tcb = Tcb::new(A, B, BUF, BUF);
    assert_eq!(
        tcb.send(b"x", SimTime::ZERO).unwrap_err(),
        SocketError::NotConnected
    );
}

#[test]
fn send_after_close_fails() {
    let mut h = Harness::new();
    h.connect();
    let actions = h.tcb[0].close(h.now);
    h.apply(0, actions);
    assert_eq!(
        h.tcb[0].send(b"x", h.now).unwrap_err(),
        SocketError::Shutdown
    );
}

#[test]
fn srtt_converges_to_path_rtt() {
    let mut h = Harness::new();
    h.connect();
    for _ in 0..30 {
        h.send(0, &[1u8; 100]);
        h.pump();
        h.recv_all(1);
        // Ensure ACK timer-driven flushes happen.
        while h.timers[1].contains_key(&TcpTimer::DelAck) {
            h.fire_earliest_timer(1);
            h.pump();
        }
    }
    let srtt = h.tcb[0].srtt().expect("has estimate");
    // The harness charges 100 µs per hop; RTT ≈ 200 µs + delack noise.
    assert!(
        srtt >= SimTime::from_micros(100) && srtt < SimTime::from_millis(250),
        "srtt {srtt}"
    );
}

#[test]
fn slow_start_grows_cwnd() {
    let mut h = Harness::new();
    h.connect();
    let initial = h.tcb[0].cwnd();
    for _ in 0..8 {
        h.send(0, &vec![1u8; 1460]);
        h.pump();
        h.recv_all(1);
        while h.timers[1].contains_key(&TcpTimer::DelAck) {
            h.fire_earliest_timer(1);
            h.pump();
        }
    }
    assert!(
        h.tcb[0].cwnd() > initial,
        "cwnd should grow: {} -> {}",
        initial,
        h.tcb[0].cwnd()
    );
}

#[test]
fn timeout_collapses_cwnd() {
    let mut h = Harness::new();
    h.connect();
    for _ in 0..8 {
        h.send(0, &vec![1u8; 1460]);
        h.settle();
        h.recv_all(1);
    }
    let grown = h.tcb[0].cwnd();
    h.drop_data_from_a = u32::MAX;
    h.send(0, &vec![2u8; 1460]);
    h.fire_timer(0, TcpTimer::Rexmt);
    assert_eq!(h.tcb[0].cwnd(), u32::from(h.tcb[0].mss));
    assert!(grown > h.tcb[0].cwnd());
}

#[test]
fn urgent_data_sets_urg_flag() {
    let mut h = Harness::new();
    h.connect();
    let (_, actions) = h.tcb[0].send_urgent(b"!", h.now).unwrap();
    // Find the data segment and check URG.
    let mut saw_urg = false;
    for a in &actions {
        if let TcpAction::Send(spec) = a {
            if spec.flags.contains(TcpFlags::URG) {
                assert!(spec.urp > 0);
                saw_urg = true;
            }
        }
    }
    assert!(saw_urg, "URG segment emitted");
}

#[test]
fn export_import_preserves_mid_stream_transfer() {
    let mut h = Harness::new();
    h.connect();
    h.send(0, b"before migration ");
    h.pump();
    // Migrate B's side of the connection (server → application).
    let snap = h.tcb[1].export();
    assert_eq!(snap.state, TcpState::Established);
    h.tcb[1] = Tcb::import(snap);
    // Continue the stream seamlessly. (The import dropped B's pending
    // delayed-ACK state, so A retransmits once via its REXMT timer —
    // exactly what a real migration relies on.)
    h.send(0, b"after migration");
    h.settle();
    assert_eq!(h.recv_all(1), b"before migration after migration");
    // And the reverse direction still works.
    h.send(1, b"reply");
    h.settle();
    assert_eq!(h.recv_all(0), b"reply");
}

#[test]
fn export_captures_unacked_send_data() {
    let mut h = Harness::new();
    h.connect();
    h.drop_data_from_a = 1;
    h.send(0, b"lost but buffered");
    h.pump();
    let snap = h.tcb[0].export();
    assert_eq!(snap.snd_data, b"lost but buffered");
    // Import on the "other placement" and retransmit from there.
    h.tcb[0] = Tcb::import(snap);
    let actions = h.tcb[0].timer(TcpTimer::Rexmt, h.now);
    h.apply(0, actions);
    h.pump();
    assert_eq!(h.recv_all(1), b"lost but buffered");
}

#[test]
fn duplicate_segments_are_ignored() {
    let mut h = Harness::new();
    h.connect();
    h.send(0, b"dup test");
    // Capture and deliver the segment twice.
    let (hdr, data) = h.wire[1].pop_front().unwrap();
    let a1 = h.tcb[1].input(&hdr, &data, h.now);
    h.apply(1, a1);
    let a2 = h.tcb[1].input(&hdr, &data, h.now);
    h.apply(1, a2);
    h.pump();
    assert_eq!(h.recv_all(1), b"dup test");
}

#[test]
fn rst_to_closed_tcb_for_stray_segment() {
    let mut closed = Tcb::new(B, A, BUF, BUF);
    let stray = TcpHeader {
        src_port: A.port,
        dst_port: B.port,
        seq: 42,
        ack: 0,
        flags: TcpFlags::ACK,
        window: 100,
        urgent: 0,
        mss: None,
    };
    let actions = closed.input(&stray, &[], SimTime::ZERO);
    assert!(actions.iter().any(|a| matches!(
        a,
        TcpAction::Send(s) if s.flags.contains(TcpFlags::RST)
    )));
}
