//! The protocol stack: ARP, IPv4 (with fragmentation and reassembly),
//! ICMP, UDP and TCP, written once and instantiated in three placements.
//!
//! The paper's central goal is *reuse of existing protocol code*: the
//! same BSD Net2 protocol code ran in the kernel (Mach 2.5 / 386BSD),
//! in the UX/BNR2SS single server, and in the application-linked
//! library. This crate mirrors that: one [`NetStack`] implementation,
//! parameterized by [`Placement`], which selects only
//!
//! - the synchronization discipline (the kernel's cheap hardware `spl`,
//!   the server's expensive emulated priority levels, or the library's
//!   light locks — §4.3 attributes the server's slowness largely to
//!   this), and
//! - the cost of waking the thread that blocks in a receive call.
//!
//! Everything else — header construction, checksums, sequence
//! processing, socket buffering — is byte-for-byte identical across
//! placements, so measured differences between configurations are
//! caused by placement alone, exactly as in the paper.
//!
//! The stack is deliberately *mechanism, not policy*: blocking
//! semantics, the BSD socket API, session migration and `select` live
//! above it (in `psd-server` and `psd-core`). The stack exposes
//! non-blocking operations plus per-socket event notification.

pub mod arp;
pub mod icmp;
pub mod ip;
pub mod route;
pub mod socket;
pub mod stack;
pub mod tcp;
pub mod udp;

pub use arp::ArpCache;
pub use route::{Route, RouteTable};
pub use socket::{SockEvent, SockId, SocketError};
pub use stack::{NetIf, NetStack, SessionState, StackHandle, StackStats};

use psd_sim::Charge;
use psd_sim::Layer;
use std::fmt;
use std::net::Ipv4Addr;

/// An internet endpoint: address and port.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct InetAddr {
    /// IPv4 address.
    pub ip: Ipv4Addr,
    /// Port number.
    pub port: u16,
}

impl InetAddr {
    /// Builds an endpoint.
    pub fn new(ip: Ipv4Addr, port: u16) -> InetAddr {
        InetAddr { ip, port }
    }

    /// The all-zero wildcard endpoint.
    pub fn any() -> InetAddr {
        InetAddr {
            ip: Ipv4Addr::UNSPECIFIED,
            port: 0,
        }
    }
}

impl fmt::Display for InetAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.ip, self.port)
    }
}

/// Where a stack instance executes — the paper's three alternatives.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Placement {
    /// Inside the kernel (Mach 2.5, Ultrix, 386BSD baselines).
    Kernel,
    /// Inside the single-server operating system (UX, BNR2SS
    /// baselines), with its emulated interrupt-priority
    /// synchronization.
    Server,
    /// Inside the application's address space (the paper's system).
    Library,
}

impl Placement {
    /// The protection domain this placement's code executes in, for
    /// census attribution.
    pub fn domain(self) -> psd_sim::Domain {
        match self {
            Placement::Kernel => psd_sim::Domain::Kernel,
            Placement::Server => psd_sim::Domain::Server,
            Placement::Library => psd_sim::Domain::Library,
        }
    }

    /// Charges `n` synchronization operations at this placement's unit
    /// price to `layer`. Call sites mirror where the BSD code takes
    /// `splnet`/`splx` or socket-buffer locks; the *count* is identical
    /// across placements, only the unit price differs.
    pub fn charge_sync(
        self,
        costs: &psd_sim::CostModel,
        charge: &mut Charge,
        layer: Layer,
        n: u64,
    ) {
        use psd_sim::{Domain, OpKind};
        let unit = match self {
            Placement::Kernel => costs.spl_kernel,
            Placement::Server => costs.spl_server,
            Placement::Library => costs.lock_light,
        };
        charge.add_ns(layer, unit * n);
        // The census separates the two disciplines: hardware (or
        // emulated) priority levels vs. mutexes.
        match self {
            Placement::Kernel => charge.note_n(OpKind::SplRaise, Domain::Kernel, layer, n),
            Placement::Server => charge.note_n(OpKind::SplRaise, Domain::Server, layer, n),
            Placement::Library => charge.note_n(OpKind::LockAcquire, Domain::Library, layer, n),
        }
    }
}
