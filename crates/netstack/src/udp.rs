//! UDP protocol control blocks.
//!
//! UDP is "connectionless and stateless — no session state variables"
//! (§3.1); a pcb is just the endpoint pair and the receive queue. The
//! BSD "connected UDP" convenience (a default remote that also filters
//! senders) is supported, as in the paper's implementation footnote.

use crate::socket::SocketError;
use crate::InetAddr;
use psd_mbuf::{DgramBuf, MbufChain};
use std::net::Ipv4Addr;

/// Default datagram receive-buffer size (BSD `udp_recvspace` ≈ 41 KB;
/// rounded).
pub const UDP_RECVSPACE: usize = 40 * 1024;

/// Largest datagram the socket layer accepts (BSD `udp_sendspace`).
pub const UDP_MAXDGRAM: usize = 9 * 1024;

/// A UDP protocol control block.
#[derive(Debug)]
pub struct UdpPcb {
    /// Local endpoint (ip may be unspecified until bound).
    pub local: InetAddr,
    /// Connected remote endpoint, if any.
    pub remote: Option<InetAddr>,
    /// Received datagrams awaiting the application, tagged with the
    /// sender's address.
    pub rcv: DgramBuf<InetAddr>,
    /// Sticky asynchronous error (e.g. ICMP port unreachable on a
    /// connected socket).
    pub error: Option<SocketError>,
}

impl UdpPcb {
    /// A fresh unbound pcb.
    pub fn new() -> UdpPcb {
        UdpPcb {
            local: InetAddr::any(),
            remote: None,
            rcv: DgramBuf::new(UDP_RECVSPACE),
            error: None,
        }
    }

    /// Match quality of this pcb for an incoming datagram; higher wins.
    /// `None` means no match. Mirrors `in_pcblookup`: exact 4-tuple
    /// beats wildcard.
    pub fn match_score(&self, dst: InetAddr, src: InetAddr) -> Option<u32> {
        if self.local.port != dst.port {
            return None;
        }
        let mut score = 1;
        if self.local.ip != Ipv4Addr::UNSPECIFIED {
            if self.local.ip != dst.ip {
                return None;
            }
            score += 1;
        }
        if let Some(remote) = self.remote {
            if remote != src {
                return None;
            }
            score += 2;
        }
        Some(score)
    }

    /// Queues a received datagram; returns false (datagram dropped) when
    /// the buffer is full, as BSD does.
    pub fn enqueue(&mut self, from: InetAddr, data: MbufChain) -> bool {
        self.rcv.append(from, data)
    }

    /// Dequeues the oldest datagram.
    pub fn dequeue(&mut self) -> Option<(InetAddr, MbufChain)> {
        self.rcv.pop().map(|r| (r.meta, r.chain))
    }
}

impl Default for UdpPcb {
    fn default() -> UdpPcb {
        UdpPcb::new()
    }
}

/// Serialized UDP session state for migration. "The operating system
/// returns the (null) network session state along with a local endpoint
/// and a packet filter port" — plus any datagrams that arrived at the
/// old placement before the filter was retargeted.
#[derive(Debug, Clone)]
pub struct UdpSnapshot {
    /// Local endpoint.
    pub local: InetAddr,
    /// Connected remote, if any.
    pub remote: Option<InetAddr>,
    /// Queued datagrams `(sender, payload)` drained from the old
    /// placement.
    pub queued: Vec<(InetAddr, Vec<u8>)>,
}

impl UdpPcb {
    /// Captures migration state, draining the receive queue.
    pub fn export(&mut self) -> UdpSnapshot {
        let mut queued = Vec::new();
        while let Some((from, chain)) = self.dequeue() {
            queued.push((from, chain.to_vec()));
        }
        UdpSnapshot {
            local: self.local,
            remote: self.remote,
            queued,
        }
    }

    /// Rebuilds a pcb from migration state.
    pub fn import(snap: UdpSnapshot) -> UdpPcb {
        let mut pcb = UdpPcb::new();
        pcb.local = snap.local;
        pcb.remote = snap.remote;
        for (from, data) in snap.queued {
            pcb.enqueue(from, MbufChain::from_slice(&data));
        }
        pcb
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn at(ip: [u8; 4], port: u16) -> InetAddr {
        InetAddr::new(Ipv4Addr::from(ip), port)
    }

    #[test]
    fn wildcard_matches_any_source() {
        let mut pcb = UdpPcb::new();
        pcb.local = at([0, 0, 0, 0], 53);
        assert!(pcb
            .match_score(at([10, 0, 0, 1], 53), at([10, 0, 0, 2], 999))
            .is_some());
        assert!(pcb
            .match_score(at([10, 0, 0, 1], 54), at([10, 0, 0, 2], 999))
            .is_none());
    }

    #[test]
    fn connected_pcb_filters_and_outranks_wildcard() {
        let mut wild = UdpPcb::new();
        wild.local = at([10, 0, 0, 1], 53);
        let mut conn = UdpPcb::new();
        conn.local = at([10, 0, 0, 1], 53);
        conn.remote = Some(at([10, 0, 0, 2], 999));

        let dst = at([10, 0, 0, 1], 53);
        let src = at([10, 0, 0, 2], 999);
        let other = at([10, 0, 0, 3], 999);

        assert!(conn.match_score(dst, src).unwrap() > wild.match_score(dst, src).unwrap());
        assert!(conn.match_score(dst, other).is_none());
        assert!(wild.match_score(dst, other).is_some());
    }

    #[test]
    fn bound_ip_must_match() {
        let mut pcb = UdpPcb::new();
        pcb.local = at([10, 0, 0, 1], 53);
        assert!(pcb
            .match_score(at([10, 0, 0, 9], 53), at([10, 0, 0, 2], 1))
            .is_none());
    }

    #[test]
    fn queue_and_dequeue_fifo() {
        let mut pcb = UdpPcb::new();
        assert!(pcb.enqueue(at([1, 1, 1, 1], 1), MbufChain::from_slice(b"a")));
        assert!(pcb.enqueue(at([2, 2, 2, 2], 2), MbufChain::from_slice(b"b")));
        let (from, data) = pcb.dequeue().unwrap();
        assert_eq!(from, at([1, 1, 1, 1], 1));
        assert_eq!(data.to_vec(), b"a");
    }

    #[test]
    fn full_buffer_drops() {
        let mut pcb = UdpPcb::new();
        pcb.rcv.reserve(10);
        assert!(pcb.enqueue(at([1, 1, 1, 1], 1), MbufChain::from_slice(&[0u8; 10])));
        assert!(!pcb.enqueue(at([1, 1, 1, 1], 1), MbufChain::from_slice(&[0u8; 1])));
    }

    #[test]
    fn export_import_preserves_queue() {
        let mut pcb = UdpPcb::new();
        pcb.local = at([10, 0, 0, 1], 7);
        pcb.remote = Some(at([10, 0, 0, 2], 8));
        pcb.enqueue(at([10, 0, 0, 2], 8), MbufChain::from_slice(b"in flight"));
        let snap = pcb.export();
        assert!(pcb.rcv.is_empty(), "export drains");
        let mut restored = UdpPcb::import(snap);
        assert_eq!(restored.local, at([10, 0, 0, 1], 7));
        assert_eq!(restored.remote, Some(at([10, 0, 0, 2], 8)));
        let (from, data) = restored.dequeue().unwrap();
        assert_eq!(from, at([10, 0, 0, 2], 8));
        assert_eq!(data.to_vec(), b"in flight");
    }
}
