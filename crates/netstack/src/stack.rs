//! The stack driver: sockets, input dispatch, output encapsulation,
//! timers, and session migration.
//!
//! One [`NetStack`] instance is the protocol half of one *domain*: the
//! kernel (monolithic configurations), the operating system server, or
//! one application's library. All placements run this same code; see
//! the crate docs for what [`Placement`] changes.

use std::cell::RefCell;
use std::collections::HashMap;
use std::net::Ipv4Addr;
use std::rc::{Rc, Weak};

use psd_mbuf::MbufChain;
use psd_sim::{
    Charge, CostModel, Cpu, DropCounters, DropReason, Layer, OpKind, Sim, SimHandle, SimTime,
    Stage, TraceId,
};
use psd_wire::{
    ArpOp, ArpPacket, EtherAddr, EtherType, EthernetHeader, IcmpMessage, IpProto, Ipv4Header,
    TcpHeader, UdpHeader, ETHER_HDR_LEN,
};

use crate::arp::ArpCache;
use crate::icmp;
use crate::ip::{fragment, IpIdent, Reassembler};
use crate::route::RouteTable;
use crate::socket::{SockEvent, SockId, SocketError};
use crate::tcp::{SegmentSpec, Tcb, TcbSnapshot, TcpAction, TcpState, TcpTimer};
use crate::udp::{UdpPcb, UdpSnapshot, UDP_MAXDGRAM};
use crate::{InetAddr, Placement};

/// How a stack instance reaches the wire. Implementations charge their
/// placement's transmit costs (trap + user→kernel copy for user-space
/// placements; device copy always) into the passed [`Charge`].
pub trait NetIf {
    /// The interface MAC address.
    fn mac(&self) -> EtherAddr;

    /// The interface MTU.
    fn mtu(&self) -> usize {
        1500
    }

    /// Transmits a complete Ethernet frame.
    fn transmit(&self, sim: &mut Sim, charge: &mut Charge, frame: Vec<u8>);

    /// Hints that up to `n` frames are about to be transmitted
    /// back-to-back as one batch window, letting the interface amortize
    /// its per-crossing entry cost over the window. Interfaces that
    /// cannot batch ignore it (the default).
    fn tx_batch_hint(&self, _n: usize) {}

    /// Closes the batch window opened by
    /// [`tx_batch_hint`](NetIf::tx_batch_hint); subsequent transmits pay
    /// full price again.
    fn tx_batch_end(&self) {}
}

/// Per-socket event callback. Invoked via scheduled events, never while
/// the stack is borrowed, so it may call back into the stack.
pub type EventSink = Rc<RefCell<dyn FnMut(&mut Sim, SockId, SockEvent)>>;

/// Resolver upcall for library placements: ask the operating system
/// server for an ARP mapping (a control RPC, charged into the cursor).
pub type ArpResolver = Box<dyn FnMut(&mut Sim, &mut Charge, Ipv4Addr) -> Option<EtherAddr>>;

/// Hook invoked when a datagram arrives for which no local socket
/// exists. The server uses this to forward reassembled or exceptional
/// datagrams to sessions that have migrated into applications. Returns
/// true if the datagram was consumed.
pub type UnclaimedUdpHook = Rc<RefCell<dyn FnMut(&mut Sim, InetAddr, InetAddr, &[u8]) -> bool>>;

/// Hook consulted when a TCP segment matches no local socket, keyed by
/// `(local, remote)`. Returning true suppresses the RST — used by the
/// operating system server for sessions that have migrated into an
/// application (a stray segment must not reset a live connection).
pub type StrayTcpHook = Rc<RefCell<dyn FnMut(InetAddr, InetAddr) -> bool>>;

struct ListenState {
    backlog: usize,
    queue: Vec<SockId>,
}

enum SockState {
    Udp(UdpPcb),
    TcpUnbound {
        local: InetAddr,
    },
    TcpListen {
        local: InetAddr,
        listen: ListenState,
    },
    Tcp(Box<Tcb>),
}

struct SockEntry {
    state: SockState,
    sink: Option<EventSink>,
    timers: HashMap<TcpTimer, SimHandle>,
    /// Bumped whenever timers are invalidated wholesale (close,
    /// migration) so stale timer events turn into no-ops.
    generation: u64,
    /// Trace ids of datagrams sitting in the socket queue, parallel to
    /// the UDP pcb's receive queue. Records the enqueue timestamp so the
    /// socket-queue span can be closed retroactively at dequeue.
    trace_q: std::collections::VecDeque<(TraceId, SimTime)>,
}

/// Counters exposed for tests and benchmarks.
#[derive(Clone, Copy, Debug, Default)]
pub struct StackStats {
    /// Frames handed to `input_frame`.
    pub frames_in: u64,
    /// TCP segments received / transmitted.
    pub tcp_in: u64,
    /// TCP segments sent.
    pub tcp_out: u64,
    /// TCP segments retransmitted.
    pub tcp_rexmt: u64,
    /// UDP datagrams received / transmitted.
    pub udp_in: u64,
    /// UDP datagrams sent.
    pub udp_out: u64,
    /// Checksum failures (any protocol).
    pub checksum_errors: u64,
    /// Datagrams/segments with no matching socket.
    pub no_socket: u64,
    /// Packets dropped awaiting ARP resolution (library placements).
    pub arp_drops: u64,
    /// ICMP messages received.
    pub icmp_in: u64,
    /// ICMP Time Exceeded messages received (a router on the path
    /// expired one of our packets' TTL).
    pub icmp_time_exceeded: u64,
    /// Datagrams reassembled from fragments.
    pub reassembled: u64,
    /// GSO super-descriptors accepted by `udp_send_gso`.
    pub gso_supers: u64,
    /// Wire datagrams produced by segmenting GSO super-descriptors.
    pub gso_segments: u64,
    /// Per-reason drop counters. Always maintained, tracing or not.
    pub drops: DropCounters,
}

/// The migration capsule: "the connection state variables" of §3.1.
#[derive(Debug, Clone)]
pub enum SessionState {
    /// A TCP session.
    Tcp(TcbSnapshot),
    /// A UDP session.
    Udp(UdpSnapshot),
}

impl SessionState {
    /// The session's local endpoint.
    pub fn local(&self) -> InetAddr {
        match self {
            SessionState::Tcp(t) => t.local,
            SessionState::Udp(u) => u.local,
        }
    }

    /// The session's remote endpoint, if connected.
    pub fn remote(&self) -> Option<InetAddr> {
        match self {
            SessionState::Tcp(t) => Some(t.remote),
            SessionState::Udp(u) => u.remote,
        }
    }
}

/// Shared handle to a stack.
pub type StackHandle = Rc<RefCell<NetStack>>;

/// One protocol-stack instance.
pub struct NetStack {
    me: Weak<RefCell<NetStack>>,
    placement: Placement,
    costs: CostModel,
    cpu: Rc<RefCell<Cpu>>,
    ifnet: Option<Rc<dyn NetIf>>,
    /// This host's IP address.
    pub ip_addr: Ipv4Addr,
    /// Routing table (authoritative in the server, cached in apps).
    pub routes: RouteTable,
    /// ARP cache (authoritative in the server, cached in apps).
    pub arp: ArpCache,
    arp_authoritative: bool,
    arp_resolver: Option<ArpResolver>,
    unclaimed_udp: Option<UnclaimedUdpHook>,
    stray_tcp: Option<StrayTcpHook>,
    reasm: Reassembler,
    ident: IpIdent,
    socks: HashMap<SockId, SockEntry>,
    /// Sockets indexed by local port, so per-packet pcb lookup scans
    /// one bucket instead of every socket. A socket's local port is
    /// fixed at bind time (state transitions never change it), so the
    /// index only needs maintenance at creation, bind, and removal.
    by_port: HashMap<u16, Vec<SockId>>,
    /// Embryonic connections awaiting their listener: (listener, child).
    pending_children: Vec<(SockId, SockId)>,
    next_sock: u64,
    iss_clock: u32,
    tcp_bufs: (usize, usize),
    mss_cap: u16,
    /// Counters.
    pub stats: StackStats,
}

impl NetStack {
    /// Creates a stack for one domain.
    pub fn new(
        placement: Placement,
        costs: CostModel,
        cpu: Rc<RefCell<Cpu>>,
        ip_addr: Ipv4Addr,
    ) -> StackHandle {
        let handle = Rc::new(RefCell::new(NetStack {
            me: Weak::new(),
            placement,
            costs,
            cpu,
            ifnet: None,
            ip_addr,
            routes: RouteTable::new(),
            arp: ArpCache::new(),
            arp_authoritative: placement != Placement::Library,
            arp_resolver: None,
            unclaimed_udp: None,
            stray_tcp: None,
            reasm: Reassembler::new(),
            ident: IpIdent::default(),
            socks: HashMap::new(),
            by_port: HashMap::new(),
            pending_children: Vec::new(),
            next_sock: 1,
            iss_clock: 1,
            tcp_bufs: (8 * 1024, 24 * 1024),
            mss_cap: crate::tcp::DEFAULT_MSS,
            stats: StackStats::default(),
        }));
        handle.borrow_mut().me = Rc::downgrade(&handle);
        handle
    }

    /// Attaches the network interface.
    pub fn set_ifnet(&mut self, ifnet: Rc<dyn NetIf>) {
        self.ifnet = Some(ifnet);
    }

    /// Installs the ARP resolver upcall (library placements).
    pub fn set_arp_resolver(&mut self, resolver: ArpResolver) {
        self.arp_resolver = Some(resolver);
    }

    /// Installs the unclaimed-datagram hook (server placement).
    pub fn set_unclaimed_udp_hook(&mut self, hook: UnclaimedUdpHook) {
        self.unclaimed_udp = Some(hook);
    }

    /// Installs the stray-TCP-segment hook (server placement).
    pub fn set_stray_tcp_hook(&mut self, hook: StrayTcpHook) {
        self.stray_tcp = Some(hook);
    }

    /// Sends an ARP request for `ip` proactively (used by the server
    /// when an application asks for a mapping it does not have yet).
    pub fn arp_kick(&mut self, sim: &mut Sim, charge: &mut Charge, ip: Ipv4Addr) {
        if !self.arp_authoritative {
            return;
        }
        let now = charge.at();
        if self.arp.lookup(ip, now).is_some() {
            return;
        }
        let Some(next_hop) = self.routes.lookup(ip) else {
            return;
        };
        if !self.arp.request_due(next_hop, now) {
            return;
        }
        let ifnet = self.ifnet.clone().expect("no ifnet");
        let req = ArpPacket::request(ifnet.mac(), self.ip_addr, next_hop);
        let eth = EthernetHeader {
            dst: EtherAddr::BROADCAST,
            src: ifnet.mac(),
            ethertype: EtherType::Arp,
        };
        let mut frame = eth.encode().to_vec();
        frame.extend_from_slice(&req.encode());
        ifnet.transmit(sim, charge, frame);
    }

    /// Sets the default TCP buffer sizes `(send, receive)` for new and
    /// imported sockets. "For each system, we ran the throughput
    /// benchmarks with the best possible receive buffer size."
    pub fn set_tcp_buffers(&mut self, snd: usize, rcv: usize) {
        self.tcp_bufs = (snd, rcv);
    }

    /// The configured default TCP buffer sizes.
    pub fn tcp_buffers(&self) -> (usize, usize) {
        self.tcp_bufs
    }

    /// Caps the MSS of new connections below the Ethernet default —
    /// used to model 386BSD's large-packet bug (Table 2's NA cells: it
    /// could not send large TCP packets, so its connections ran with
    /// small segments).
    pub fn set_mss_cap(&mut self, mss: u16) {
        self.mss_cap = mss;
    }

    /// This stack's placement.
    pub fn placement(&self) -> Placement {
        self.placement
    }

    /// The cost model.
    pub fn costs(&self) -> &CostModel {
        &self.costs
    }

    /// The host CPU (to open charges at entry points).
    pub fn cpu(&self) -> Rc<RefCell<Cpu>> {
        self.cpu.clone()
    }

    fn sync(&self, charge: &mut Charge, layer: Layer, n: u64) {
        self.placement.charge_sync(&self.costs, charge, layer, n);
    }

    /// This placement's synchronization unit price (for call sites that
    /// must precompute it before taking other borrows).
    fn sync_unit(&self) -> u64 {
        match self.placement {
            Placement::Kernel => self.costs.spl_kernel,
            Placement::Server => self.costs.spl_server,
            Placement::Library => self.costs.lock_light,
        }
    }

    fn sock_port(state: &SockState) -> u16 {
        match state {
            SockState::Udp(pcb) => pcb.local.port,
            SockState::TcpUnbound { local } => local.port,
            SockState::TcpListen { local, .. } => local.port,
            SockState::Tcp(tcb) => tcb.local.port,
        }
    }

    fn index_sock(&mut self, id: SockId, port: u16) {
        self.by_port.entry(port).or_default().push(id);
    }

    fn unindex_sock(&mut self, id: SockId, port: u16) {
        if let Some(bucket) = self.by_port.get_mut(&port) {
            bucket.retain(|s| *s != id);
            if bucket.is_empty() {
                self.by_port.remove(&port);
            }
        }
    }

    fn alloc_sock(&mut self, state: SockState) -> SockId {
        let id = SockId(self.next_sock);
        self.next_sock += 1;
        let port = Self::sock_port(&state);
        self.socks.insert(
            id,
            SockEntry {
                state,
                sink: None,
                timers: HashMap::new(),
                generation: 0,
                trace_q: std::collections::VecDeque::new(),
            },
        );
        self.index_sock(id, port);
        id
    }

    // --- Socket management ---

    /// Creates a UDP socket.
    pub fn socket_udp(&mut self) -> SockId {
        self.alloc_sock(SockState::Udp(UdpPcb::new()))
    }

    /// Creates a TCP socket.
    pub fn socket_tcp(&mut self) -> SockId {
        self.alloc_sock(SockState::TcpUnbound {
            local: InetAddr::any(),
        })
    }

    /// Registers the socket's event sink.
    pub fn set_sink(&mut self, sock: SockId, sink: EventSink) {
        if let Some(e) = self.socks.get_mut(&sock) {
            e.sink = Some(sink);
        }
    }

    /// Binds the local endpoint. Port-namespace arbitration belongs to
    /// the operating system above this layer.
    pub fn bind(&mut self, sock: SockId, local: InetAddr) -> Result<(), SocketError> {
        let e = self.socks.get_mut(&sock).ok_or(SocketError::BadSocket)?;
        let old_port = Self::sock_port(&e.state);
        match &mut e.state {
            SockState::Udp(pcb) => {
                pcb.local = local;
            }
            SockState::TcpUnbound { local: l } => {
                *l = local;
            }
            _ => return Err(SocketError::Invalid),
        }
        if old_port != local.port {
            self.unindex_sock(sock, old_port);
            self.index_sock(sock, local.port);
        }
        Ok(())
    }

    /// The socket's local endpoint.
    pub fn local_addr(&self, sock: SockId) -> Option<InetAddr> {
        self.socks.get(&sock).map(|e| match &e.state {
            SockState::Udp(pcb) => pcb.local,
            SockState::TcpUnbound { local } => *local,
            SockState::TcpListen { local, .. } => *local,
            SockState::Tcp(tcb) => tcb.local,
        })
    }

    /// The socket's remote endpoint, if connected.
    pub fn remote_addr(&self, sock: SockId) -> Option<InetAddr> {
        self.socks.get(&sock).and_then(|e| match &e.state {
            SockState::Udp(pcb) => pcb.remote,
            SockState::Tcp(tcb) => Some(tcb.remote),
            _ => None,
        })
    }

    /// Sets `TCP_NODELAY`.
    pub fn set_nodelay(&mut self, sock: SockId, nodelay: bool) {
        if let Some(SockEntry {
            state: SockState::Tcp(tcb),
            ..
        }) = self.socks.get_mut(&sock)
        {
            tcb.nodelay = nodelay;
        }
    }

    /// Resizes the receive buffer ("receive buffers … can be
    /// reallocated on demand for busy sessions").
    pub fn set_recv_buffer(&mut self, sock: SockId, size: usize) {
        if let Some(e) = self.socks.get_mut(&sock) {
            match &mut e.state {
                SockState::Tcp(tcb) => tcb.rcv_buf.reserve(size),
                SockState::Udp(pcb) => pcb.rcv.reserve(size),
                _ => {}
            }
        }
    }

    /// Moves a TCP socket to LISTEN.
    pub fn listen(&mut self, sock: SockId, backlog: usize) -> Result<(), SocketError> {
        let e = self.socks.get_mut(&sock).ok_or(SocketError::BadSocket)?;
        match &e.state {
            SockState::TcpUnbound { local } => {
                if local.port == 0 {
                    return Err(SocketError::Invalid);
                }
                e.state = SockState::TcpListen {
                    local: *local,
                    listen: ListenState {
                        backlog: backlog.max(1),
                        queue: Vec::new(),
                    },
                };
                Ok(())
            }
            _ => Err(SocketError::Invalid),
        }
    }

    /// Accepts an established connection from a listener's queue.
    pub fn accept(&mut self, sock: SockId) -> Result<SockId, SocketError> {
        let e = self.socks.get_mut(&sock).ok_or(SocketError::BadSocket)?;
        match &mut e.state {
            SockState::TcpListen { listen, .. } => {
                if listen.queue.is_empty() {
                    Err(SocketError::WouldBlock)
                } else {
                    Ok(listen.queue.remove(0))
                }
            }
            _ => Err(SocketError::Invalid),
        }
    }

    /// Pending connections on a listener.
    pub fn accept_queue_len(&self, sock: SockId) -> usize {
        match self.socks.get(&sock).map(|e| &e.state) {
            Some(SockState::TcpListen { listen, .. }) => listen.queue.len(),
            _ => 0,
        }
    }

    fn next_iss(&mut self) -> u32 {
        // BSD increments the ISS clock by 64k per connection (and per
        // tick); a deterministic counter serves the same purpose here.
        self.iss_clock = self.iss_clock.wrapping_add(64_000);
        self.iss_clock
    }

    /// Starts an active TCP open. The socket must be bound (the port
    /// manager above allocates ephemeral ports).
    pub fn connect_tcp(
        &mut self,
        sim: &mut Sim,
        charge: &mut Charge,
        sock: SockId,
        remote: InetAddr,
    ) -> Result<(), SocketError> {
        let iss = self.next_iss();
        let (snd, rcv) = self.tcp_bufs;
        let my_ip = self.ip_addr;
        let e = self.socks.get_mut(&sock).ok_or(SocketError::BadSocket)?;
        let local = match &e.state {
            SockState::TcpUnbound { local } => {
                let mut l = *local;
                if l.ip == Ipv4Addr::UNSPECIFIED {
                    l.ip = my_ip;
                }
                if l.port == 0 {
                    return Err(SocketError::Invalid);
                }
                l
            }
            SockState::Tcp(_) => return Err(SocketError::IsConnected),
            _ => return Err(SocketError::Invalid),
        };
        let mut tcb = Tcb::new(local, remote, snd, rcv);
        tcb.mss = tcb.mss.min(self.mss_cap);
        let actions = tcb.connect(iss);
        e.state = SockState::Tcp(Box::new(tcb));
        self.run_tcp_actions(sim, charge, sock, actions);
        Ok(())
    }

    /// Connects a UDP socket (sets the default/filtering remote).
    pub fn connect_udp(&mut self, sock: SockId, remote: InetAddr) -> Result<(), SocketError> {
        let my_ip = self.ip_addr;
        let e = self.socks.get_mut(&sock).ok_or(SocketError::BadSocket)?;
        match &mut e.state {
            SockState::Udp(pcb) => {
                if pcb.local.ip == Ipv4Addr::UNSPECIFIED {
                    pcb.local.ip = my_ip;
                }
                pcb.remote = Some(remote);
                Ok(())
            }
            _ => Err(SocketError::Invalid),
        }
    }

    // --- Data transfer ---

    /// `sosend` for TCP: copies `data` into the socket buffer and runs
    /// the output engine. Returns bytes accepted.
    pub fn tcp_send(
        &mut self,
        sim: &mut Sim,
        charge: &mut Charge,
        sock: SockId,
        data: &[u8],
    ) -> Result<usize, SocketError> {
        // Socket-layer entry: space check + mbuf allocation + copyin.
        // Charged only for bytes actually accepted: a would-block probe
        // corresponds to the blocked sender's sleep, which the Writable
        // wakeup path prices.
        let copy_rate = match self.placement {
            Placement::Kernel => self.costs.kcopy_byte,
            _ => self.costs.copy_byte,
        };
        let sosend = self.costs.sosend_base;
        let sync_unit = self.sync_unit();
        let e = self.socks.get_mut(&sock).ok_or(SocketError::BadSocket)?;
        let SockState::Tcp(tcb) = &mut e.state else {
            return Err(SocketError::NotConnected);
        };
        let now = charge.at();
        let (n, actions) = tcb.send(data, now)?;
        charge.add_ns(Layer::EntryCopyin, sosend + sync_unit);
        charge.add_per_byte(Layer::EntryCopyin, copy_rate, n);
        if n > 0 {
            charge.note(
                OpKind::PacketBodyCopy,
                self.placement.domain(),
                Layer::EntryCopyin,
            );
        }
        charge.add_ns(
            Layer::EntryCopyin,
            self.costs.mbuf_alloc * (1 + n as u64 / psd_mbuf::MCLBYTES as u64),
        );
        self.run_tcp_actions(sim, charge, sock, actions);
        Ok(n)
    }

    /// `soreceive` for TCP: copies buffered data out to the caller.
    /// Returns 0 at EOF; `WouldBlock` when no data is available yet.
    pub fn tcp_recv(
        &mut self,
        sim: &mut Sim,
        charge: &mut Charge,
        sock: SockId,
        buf: &mut [u8],
    ) -> Result<usize, SocketError> {
        let copy_rate = match self.placement {
            Placement::Kernel => self.costs.kcopy_byte,
            _ => self.costs.copy_byte,
        };
        let soreceive = self.costs.soreceive_base;
        let sync_unit = self.sync_unit();
        let e = self.socks.get_mut(&sock).ok_or(SocketError::BadSocket)?;
        let SockState::Tcp(tcb) = &mut e.state else {
            return Err(SocketError::NotConnected);
        };
        if let Some(err) = tcb.error {
            return Err(err);
        }
        if tcb.readable() == 0 {
            if tcb.at_eof()
                || !matches!(
                    tcb.state,
                    TcpState::Established
                        | TcpState::SynSent
                        | TcpState::SynReceived
                        | TcpState::FinWait1
                        | TcpState::FinWait2
                )
            {
                return Ok(0);
            }
            return Err(SocketError::WouldBlock);
        }
        charge.add_ns(Layer::CopyoutExit, soreceive + 2 * sync_unit);
        let now = charge.at();
        let (n, actions) = tcb.recv(buf, now);
        charge.add_per_byte(Layer::CopyoutExit, copy_rate, n);
        if n > 0 {
            charge.note(
                OpKind::PacketBodyCopy,
                self.placement.domain(),
                Layer::CopyoutExit,
            );
        }
        self.run_tcp_actions(sim, charge, sock, actions);
        Ok(n)
    }

    /// `sosend` for UDP. In user-space placements the data is
    /// *referenced*, not copied ("the user data can be referenced
    /// instead of copied"); the kernel placement must copy it in.
    pub fn udp_send(
        &mut self,
        sim: &mut Sim,
        charge: &mut Charge,
        sock: SockId,
        data: &[u8],
        dst: Option<InetAddr>,
    ) -> Result<usize, SocketError> {
        if data.len() > UDP_MAXDGRAM {
            return Err(SocketError::MsgSize);
        }
        let (local, remote) = self.udp_resolve(sock, dst)?;

        // Socket entry. The library runs the specialized datagram fast
        // path (§4.3: "the user data can be referenced instead of
        // copied"); the kernel and server run the stock BSD sosend,
        // which copies into mbufs.
        let chain = match self.placement {
            Placement::Library => {
                charge.add_ns(Layer::EntryCopyin, self.costs.sosend_dgram_base);
                MbufChain::from_shared(Rc::new(data.to_vec()))
            }
            _ => {
                charge.add_ns(
                    Layer::EntryCopyin,
                    self.costs.sosend_base + self.costs.sosend_dgram_base,
                );
                charge.add_per_byte(Layer::EntryCopyin, self.costs.kcopy_byte, data.len());
                charge.note(
                    OpKind::PacketBodyCopy,
                    self.placement.domain(),
                    Layer::EntryCopyin,
                );
                charge.add_ns(Layer::EntryCopyin, self.costs.mbuf_alloc);
                MbufChain::from_slice(data)
            }
        };
        self.udp_emit(sim, charge, local, remote, chain, data.len())?;
        Ok(data.len())
    }

    /// GSO super-descriptor send (the batched NEWAPI): one socket-layer
    /// entry covers the whole buffer, and the stack segments it into
    /// `seg`-byte datagrams at transmit. The wire frames are
    /// byte-for-byte what the same number of per-datagram
    /// [`udp_send`](Self::udp_send) calls would emit (same headers,
    /// same checksums, same IP ident sequence) — only the amortized
    /// entry charge differs.
    pub fn udp_send_gso(
        &mut self,
        sim: &mut Sim,
        charge: &mut Charge,
        sock: SockId,
        data: &Rc<Vec<u8>>,
        seg: usize,
        dst: Option<InetAddr>,
    ) -> Result<usize, SocketError> {
        let seg = seg.clamp(1, UDP_MAXDGRAM);
        let (local, remote) = self.udp_resolve(sock, dst)?;
        // One amortized socket entry for the super-descriptor; the
        // kernel/server placements still physically copy every byte in.
        match self.placement {
            Placement::Library => {
                charge.add_ns(Layer::EntryCopyin, self.costs.sosend_dgram_base);
            }
            _ => {
                charge.add_ns(
                    Layer::EntryCopyin,
                    self.costs.sosend_base + self.costs.sosend_dgram_base,
                );
                charge.add_per_byte(Layer::EntryCopyin, self.costs.kcopy_byte, data.len());
                charge.note(
                    OpKind::PacketBodyCopy,
                    self.placement.domain(),
                    Layer::EntryCopyin,
                );
            }
        }
        let mut off = 0;
        let mut segments = 0u64;
        while off < data.len() || (data.is_empty() && segments == 0) {
            let len = seg.min(data.len() - off);
            let chain = match self.placement {
                Placement::Library => MbufChain::from_shared_range(data.clone(), off, len),
                _ => {
                    charge.add_ns(Layer::EntryCopyin, self.costs.mbuf_alloc);
                    MbufChain::from_slice(&data[off..off + len])
                }
            };
            self.udp_emit(sim, charge, local, remote, chain, len)?;
            off += len;
            segments += 1;
        }
        self.stats.gso_supers += 1;
        self.stats.gso_segments += segments;
        Ok(data.len())
    }

    /// Resolves the (local, remote) endpoints of a UDP send, applying
    /// the wildcard-IP and connected-socket rules.
    fn udp_resolve(
        &mut self,
        sock: SockId,
        dst: Option<InetAddr>,
    ) -> Result<(InetAddr, InetAddr), SocketError> {
        let my_ip = self.ip_addr;
        let e = self.socks.get_mut(&sock).ok_or(SocketError::BadSocket)?;
        let SockState::Udp(pcb) = &mut e.state else {
            return Err(SocketError::Invalid);
        };
        if let Some(err) = pcb.error.take() {
            return Err(err);
        }
        let remote = match (dst, pcb.remote) {
            (Some(d), _) => d,
            (None, Some(r)) => r,
            (None, None) => return Err(SocketError::NotConnected),
        };
        let mut local = pcb.local;
        if local.ip == Ipv4Addr::UNSPECIFIED {
            local.ip = my_ip;
        }
        if local.port == 0 {
            return Err(SocketError::Invalid);
        }
        Ok((local, remote))
    }

    /// The shared tail of [`udp_send`](Self::udp_send) and
    /// [`udp_send_gso`](Self::udp_send_gso): udp_output for one datagram
    /// whose socket-layer entry has already been charged.
    fn udp_emit(
        &mut self,
        sim: &mut Sim,
        charge: &mut Charge,
        local: InetAddr,
        remote: InetAddr,
        chain: MbufChain,
        len: usize,
    ) -> Result<(), SocketError> {
        // udp_output: header + checksum over the data. The stock BSD
        // path re-validates the pcb route on every datagram and takes
        // the full spl dance; the library caches the session route in
        // its connected pcb.
        charge.site_push(self.placement.domain(), "udp_output");
        charge.add_ns(Layer::TcpUdpOutput, self.costs.udp_output_base);
        match self.placement {
            Placement::Library => self.sync(charge, Layer::TcpUdpOutput, 1),
            _ => {
                self.sync(charge, Layer::TcpUdpOutput, 7);
                charge.add_ns(
                    Layer::TcpUdpOutput,
                    self.costs.pcb_lookup + self.costs.route_lookup / 2,
                );
            }
        }
        let mut udp = UdpHeader::new(local.port, remote.port, len);
        let ip = Ipv4Header::new(local.ip, remote.ip, IpProto::Udp, udp.len as usize);
        charge.add_per_byte(
            Layer::TcpUdpOutput,
            self.costs.checksum_byte,
            psd_wire::UDP_HDR_LEN + len,
        );
        charge.note(
            OpKind::Checksum,
            self.placement.domain(),
            Layer::TcpUdpOutput,
        );
        udp.checksum = udp.checksum_for(&ip, chain.iter_segments());
        charge.note(
            OpKind::HeaderCopy,
            self.placement.domain(),
            Layer::TcpUdpOutput,
        );
        let mut payload = udp.encode().to_vec();
        payload.extend_from_slice(&chain.to_vec());
        self.stats.udp_out += 1;
        let out = self.ip_output(sim, charge, remote.ip, IpProto::Udp, payload);
        charge.site_pop();
        out
    }

    /// Opens a transmit batch window on the interface (a batched
    /// doorbell hint); no-op when the interface does not batch.
    pub fn tx_batch_hint(&self, n: usize) {
        if let Some(ifnet) = &self.ifnet {
            ifnet.tx_batch_hint(n);
        }
    }

    /// Closes the transmit batch window.
    pub fn tx_batch_end(&self) {
        if let Some(ifnet) = &self.ifnet {
            ifnet.tx_batch_end();
        }
    }

    /// NEWAPI send (§4.2): the application and the protocol share the
    /// buffer, so no copy is made into the socket queue — the send
    /// queue references the caller's buffer directly. Only the
    /// socket-layer entry is charged.
    pub fn tcp_send_shared(
        &mut self,
        sim: &mut Sim,
        charge: &mut Charge,
        sock: SockId,
        data: Rc<Vec<u8>>,
    ) -> Result<usize, SocketError> {
        charge.add_ns(Layer::EntryCopyin, self.costs.sosend_base);
        self.sync(charge, Layer::EntryCopyin, 1);
        charge.add_ns(Layer::EntryCopyin, self.costs.mbuf_alloc);
        let e = self.socks.get_mut(&sock).ok_or(SocketError::BadSocket)?;
        let SockState::Tcp(tcb) = &mut e.state else {
            return Err(SocketError::NotConnected);
        };
        if let Some(err) = tcb.error {
            return Err(err);
        }
        if !tcb.state.can_send() {
            return Err(SocketError::Shutdown);
        }
        let take = data.len().min(tcb.snd_buf.space());
        if take == 0 {
            return Err(SocketError::WouldBlock);
        }
        tcb.snd_buf
            .append(MbufChain::from_shared_range(data, 0, take));
        let now = charge.at();
        let actions = tcb.output(now, false);
        self.run_tcp_actions(sim, charge, sock, actions);
        Ok(take)
    }

    /// NEWAPI receive (§4.2): hands the buffered chain to the caller
    /// without the final copy into a caller-supplied buffer. Returns up
    /// to `max` bytes as a chain sharing the socket buffer's storage.
    pub fn tcp_recv_chain(
        &mut self,
        sim: &mut Sim,
        charge: &mut Charge,
        sock: SockId,
        max: usize,
    ) -> Result<MbufChain, SocketError> {
        let soreceive = self.costs.soreceive_base;
        let sync_unit = self.sync_unit();
        let copy_byte = self.costs.copy_byte;
        let e = self.socks.get_mut(&sock).ok_or(SocketError::BadSocket)?;
        let SockState::Tcp(tcb) = &mut e.state else {
            return Err(SocketError::NotConnected);
        };
        if let Some(err) = tcb.error {
            return Err(err);
        }
        if tcb.readable() == 0 {
            if tcb.at_eof() {
                return Ok(MbufChain::new());
            }
            return Err(SocketError::WouldBlock);
        }
        charge.add_ns(Layer::CopyoutExit, soreceive + 2 * sync_unit);
        let n = tcb.readable().min(max);
        let (chain, copied) = tcb.rcv_buf.copy_range(0, n);
        // Cluster-backed data is shared; only small-mbuf slop copies.
        charge.add_per_byte(Layer::CopyoutExit, copy_byte, copied);
        if copied > 0 {
            charge.note(
                OpKind::PacketBodyCopy,
                self.placement.domain(),
                Layer::CopyoutExit,
            );
        }
        tcb.rcv_buf.drop_front(n);
        let now = charge.at();
        let actions = tcb.after_user_read(now);
        self.run_tcp_actions(sim, charge, sock, actions);
        Ok(chain)
    }

    /// NEWAPI datagram receive: the datagram chain is handed over
    /// without a copy.
    pub fn udp_recv_chain(
        &mut self,
        _sim: &mut Sim,
        charge: &mut Charge,
        sock: SockId,
    ) -> Result<(MbufChain, InetAddr), SocketError> {
        let soreceive = self.costs.soreceive_base;
        let sync_unit = self.sync_unit();
        let e = self.socks.get_mut(&sock).ok_or(SocketError::BadSocket)?;
        let SockState::Udp(pcb) = &mut e.state else {
            return Err(SocketError::Invalid);
        };
        if let Some(err) = pcb.error.take() {
            return Err(err);
        }
        let (from, chain) = pcb.dequeue().ok_or(SocketError::WouldBlock)?;
        if let Some((tid, enq_t)) = e.trace_q.pop_front() {
            if let Some(tr) = charge.trace_handle() {
                let now = charge.at();
                let mut tr = tr.borrow_mut();
                tr.span_closed(tid, Stage::SocketQueue, enq_t, now);
                tr.event(tid, now, "app-recv");
            }
        }
        charge.add_ns(Layer::CopyoutExit, soreceive + sync_unit);
        Ok((chain, from))
    }

    /// `soreceive` for UDP: dequeues one datagram into `buf`.
    pub fn udp_recv(
        &mut self,
        _sim: &mut Sim,
        charge: &mut Charge,
        sock: SockId,
        buf: &mut [u8],
    ) -> Result<(usize, InetAddr), SocketError> {
        let copy_rate = match self.placement {
            Placement::Kernel => self.costs.kcopy_byte,
            _ => self.costs.copy_byte,
        };
        let soreceive = match self.placement {
            // The library's datagram receive is the specialized fast
            // path (no record-mark scanning; the queue hands over whole
            // datagrams).
            Placement::Library => self.costs.soreceive_base * 5 / 6,
            _ => self.costs.soreceive_base,
        };
        let sync_unit = self.sync_unit();
        let e = self.socks.get_mut(&sock).ok_or(SocketError::BadSocket)?;
        let SockState::Udp(pcb) = &mut e.state else {
            return Err(SocketError::Invalid);
        };
        if let Some(err) = pcb.error.take() {
            return Err(err);
        }
        let (from, chain) = pcb.dequeue().ok_or(SocketError::WouldBlock)?;
        if let Some((tid, enq_t)) = e.trace_q.pop_front() {
            if let Some(tr) = charge.trace_handle() {
                let now = charge.at();
                let mut tr = tr.borrow_mut();
                tr.span_closed(tid, Stage::SocketQueue, enq_t, now);
                tr.event(tid, now, "app-recv");
            }
        }
        charge.add_ns(Layer::CopyoutExit, soreceive + sync_unit);
        let n = chain.len().min(buf.len());
        chain.copy_to_slice(0, &mut buf[..n]);
        charge.add_per_byte(Layer::CopyoutExit, copy_rate, n);
        if n > 0 {
            charge.note(
                OpKind::PacketBodyCopy,
                self.placement.domain(),
                Layer::CopyoutExit,
            );
        }
        Ok((n, from))
    }

    /// Bytes readable without blocking (data, or queued connections for
    /// a listener).
    pub fn readable(&self, sock: SockId) -> usize {
        match self.socks.get(&sock).map(|e| &e.state) {
            Some(SockState::Tcp(tcb)) => tcb.readable(),
            Some(SockState::Udp(pcb)) => pcb.rcv.len(),
            Some(SockState::TcpListen { listen, .. }) => listen.queue.len(),
            _ => 0,
        }
    }

    /// Send-buffer space available without blocking.
    pub fn writable(&self, sock: SockId) -> usize {
        match self.socks.get(&sock).map(|e| &e.state) {
            Some(SockState::Tcp(tcb)) => tcb.writable(),
            Some(SockState::Udp(_)) => UDP_MAXDGRAM,
            _ => 0,
        }
    }

    /// True when the peer closed and all data was consumed.
    pub fn at_eof(&self, sock: SockId) -> bool {
        match self.socks.get(&sock).map(|e| &e.state) {
            Some(SockState::Tcp(tcb)) => tcb.at_eof(),
            _ => false,
        }
    }

    /// The TCP state, if this is a connection socket.
    pub fn tcp_state(&self, sock: SockId) -> Option<TcpState> {
        match self.socks.get(&sock).map(|e| &e.state) {
            Some(SockState::Tcp(tcb)) => Some(tcb.state),
            _ => None,
        }
    }

    /// Smoothed RTT estimate for a connection.
    pub fn tcp_srtt(&self, sock: SockId) -> Option<SimTime> {
        match self.socks.get(&sock).map(|e| &e.state) {
            Some(SockState::Tcp(tcb)) => tcb.srtt(),
            _ => None,
        }
    }

    /// Number of live sockets (any protocol, any state).
    pub fn session_count(&self) -> usize {
        self.socks.len()
    }

    /// Order-independent aggregate TCP gauges for the metrics plane:
    /// `(connections, sum cwnd, sum ssthresh, sum rto_ns)` over every
    /// established TCB. Sums (not per-sock rows) because `socks` is a
    /// `HashMap` — iteration order must not leak into artifacts.
    pub fn tcp_gauges(&self) -> (u64, u64, u64, u64) {
        let mut conns = 0u64;
        let mut cwnd = 0u64;
        let mut ssthresh = 0u64;
        let mut rto_ns = 0u64;
        for e in self.socks.values() {
            if let SockState::Tcp(tcb) = &e.state {
                conns += 1;
                cwnd += u64::from(tcb.cwnd());
                ssthresh += u64::from(tcb.ssthresh());
                rto_ns += tcb.rto().as_nanos();
            }
        }
        (conns, cwnd, ssthresh, rto_ns)
    }

    // --- Close / teardown ---

    /// Orderly close. TCP runs the FIN handshake in the background; the
    /// socket is deallocated when it completes (or immediately for UDP).
    pub fn close(&mut self, sim: &mut Sim, charge: &mut Charge, sock: SockId) {
        let Some(e) = self.socks.get_mut(&sock) else {
            return;
        };
        match &mut e.state {
            SockState::Tcp(tcb) => {
                let now = charge.at();
                let actions = tcb.close(now);
                self.run_tcp_actions(sim, charge, sock, actions);
            }
            SockState::TcpListen { listen, .. } => {
                // Abort queued, un-accepted connections.
                let pending = std::mem::take(&mut listen.queue);
                self.remove_sock(sim, sock);
                for child in pending {
                    self.abort(sim, charge, child);
                }
            }
            SockState::Udp(_) | SockState::TcpUnbound { .. } => {
                self.remove_sock(sim, sock);
            }
        }
    }

    /// Abortive close (RST for synchronized TCP).
    pub fn abort(&mut self, sim: &mut Sim, charge: &mut Charge, sock: SockId) {
        let Some(e) = self.socks.get_mut(&sock) else {
            return;
        };
        if let SockState::Tcp(tcb) = &mut e.state {
            let actions = tcb.abort();
            self.run_tcp_actions(sim, charge, sock, actions);
        } else {
            self.remove_sock(sim, sock);
        }
    }

    fn remove_sock(&mut self, sim: &mut Sim, sock: SockId) {
        if let Some(e) = self.socks.remove(&sock) {
            self.unindex_sock(sock, Self::sock_port(&e.state));
            for (_, h) in e.timers {
                sim.cancel(h);
            }
        }
    }

    /// True if the socket still exists.
    pub fn exists(&self, sock: SockId) -> bool {
        self.socks.contains_key(&sock)
    }

    // --- Migration ---

    /// Exports a session's complete state, removing the socket from
    /// this stack. Pending timers are cancelled; the importing stack
    /// re-arms what it needs.
    pub fn export_session(&mut self, sim: &mut Sim, sock: SockId) -> Option<SessionState> {
        let mut e = self.socks.remove(&sock)?;
        self.unindex_sock(sock, Self::sock_port(&e.state));
        for (_, h) in e.timers.drain() {
            sim.cancel(h);
        }
        let state = match &mut e.state {
            SockState::Tcp(tcb) => Some(SessionState::Tcp(tcb.export())),
            SockState::Udp(pcb) => Some(SessionState::Udp(pcb.export())),
            _ => {
                // Unbound/listening sockets have no migratable state.
                None
            }
        };
        if state.is_some() {
            self.note_migration();
        }
        state
    }

    /// Counts a capsule export/import on this domain's census.
    fn note_migration(&self) {
        if let Some(c) = self.cpu.borrow().census() {
            c.borrow_mut().note(
                OpKind::SessionMigration,
                self.placement.domain(),
                Layer::Control,
            );
        }
    }

    /// Imports a session exported elsewhere. Buffers are resized to
    /// this stack's configured defaults (paper: buffers live in virtual
    /// memory and are reallocated on demand). Re-arms the
    /// retransmission timer if data is outstanding.
    pub fn import_session(&mut self, sim: &mut Sim, state: SessionState) -> SockId {
        self.note_migration();
        match state {
            SessionState::Tcp(snap) => {
                let mut tcb = Tcb::import(snap);
                let (snd, rcv) = self.tcp_bufs;
                tcb.snd_buf.reserve(snd.max(tcb.snd_buf.hiwat()));
                tcb.rcv_buf.reserve(rcv.max(tcb.rcv_buf.hiwat()));
                let rto = tcb.rto();
                let outstanding = !tcb.snd_buf.is_empty();
                let sock = self.alloc_sock(SockState::Tcp(Box::new(tcb)));
                if outstanding {
                    self.arm_timer(sim, sock, TcpTimer::Rexmt, rto);
                }
                sock
            }
            SessionState::Udp(snap) => self.alloc_sock(SockState::Udp(UdpPcb::import(snap))),
        }
    }

    // --- Output path ---

    fn ip_output(
        &mut self,
        sim: &mut Sim,
        charge: &mut Charge,
        dst: Ipv4Addr,
        proto: IpProto,
        payload: Vec<u8>,
    ) -> Result<(), SocketError> {
        charge.site_push(self.placement.domain(), "ip_output");
        let out = self.ip_output_inner(sim, charge, dst, proto, payload);
        charge.site_pop();
        out
    }

    fn ip_output_inner(
        &mut self,
        sim: &mut Sim,
        charge: &mut Charge,
        dst: Ipv4Addr,
        proto: IpProto,
        payload: Vec<u8>,
    ) -> Result<(), SocketError> {
        charge.add_ns(Layer::IpOutput, self.costs.ip_output_base);
        charge.note(OpKind::HeaderCopy, self.placement.domain(), Layer::IpOutput);
        let mtu = self.ifnet.as_ref().map_or(1500, |i| i.mtu());
        let mut hdr = Ipv4Header::new(self.ip_addr, dst, proto, payload.len());
        hdr.ident = self.ident.next();
        if payload.len() + psd_wire::IPV4_HDR_LEN > mtu {
            for (fh, fdata) in fragment(&hdr, &payload, mtu) {
                let mut pkt = fh.encode().to_vec();
                pkt.extend_from_slice(&fdata);
                self.ether_output(sim, charge, dst, pkt)?;
            }
            Ok(())
        } else {
            let mut pkt = hdr.encode().to_vec();
            pkt.extend_from_slice(&payload);
            self.ether_output(sim, charge, dst, pkt)
        }
    }

    fn ether_output(
        &mut self,
        sim: &mut Sim,
        charge: &mut Charge,
        dst: Ipv4Addr,
        ip_packet: Vec<u8>,
    ) -> Result<(), SocketError> {
        charge.add_ns(Layer::EtherOutput, self.costs.ether_output_base);
        self.sync(charge, Layer::EtherOutput, 3);
        let Some(next_hop) = self.routes.lookup(dst) else {
            return Err(SocketError::HostUnreach);
        };
        charge.add_ns(Layer::EtherOutput, self.costs.arp_lookup);
        let now = charge.at();
        if let Some(mac) = self.arp.lookup(next_hop, now) {
            self.transmit_ip_frame(sim, charge, mac, ip_packet);
            return Ok(());
        }
        // ARP miss.
        if self.arp_authoritative {
            self.arp.enqueue_pending(next_hop, ip_packet);
            // Request whenever one is due — lost requests are retried
            // the next time queued traffic (e.g. a TCP SYN
            // retransmission) prompts resolution.
            if self.arp.request_due(next_hop, now) {
                let ifnet = self.ifnet.clone().expect("no ifnet");
                let req = ArpPacket::request(ifnet.mac(), self.ip_addr, next_hop);
                let eth = EthernetHeader {
                    dst: EtherAddr::BROADCAST,
                    src: ifnet.mac(),
                    ethertype: EtherType::Arp,
                };
                let mut frame = eth.encode().to_vec();
                frame.extend_from_slice(&req.encode());
                ifnet.transmit(sim, charge, frame);
            }
            Ok(())
        } else if let Some(mut resolver) = self.arp_resolver.take() {
            // Library placement: ask the operating system (control RPC,
            // charged by the resolver).
            let answer = resolver(sim, charge, next_hop);
            self.arp_resolver = Some(resolver);
            match answer {
                Some(mac) => {
                    let now = charge.at();
                    let drained = self.arp.insert(next_hop, mac, now);
                    debug_assert!(drained.is_empty());
                    self.transmit_ip_frame(sim, charge, mac, ip_packet);
                    Ok(())
                }
                None => {
                    // The server is resolving; the packet is dropped
                    // and the protocol's own retransmission recovers.
                    self.stats.arp_drops += 1;
                    self.stats.drops.note(DropReason::ArpUnresolved);
                    charge.count_drop(DropReason::ArpUnresolved, self.placement.domain());
                    Ok(())
                }
            }
        } else {
            self.stats.arp_drops += 1;
            self.stats.drops.note(DropReason::ArpUnresolved);
            charge.count_drop(DropReason::ArpUnresolved, self.placement.domain());
            Ok(())
        }
    }

    fn transmit_ip_frame(
        &mut self,
        sim: &mut Sim,
        charge: &mut Charge,
        dst_mac: EtherAddr,
        ip_packet: Vec<u8>,
    ) {
        let ifnet = self.ifnet.clone().expect("no ifnet");
        let eth = EthernetHeader {
            dst: dst_mac,
            src: ifnet.mac(),
            ethertype: EtherType::Ipv4,
        };
        charge.note(
            OpKind::HeaderCopy,
            self.placement.domain(),
            Layer::EtherOutput,
        );
        let mut frame = eth.encode().to_vec();
        frame.extend_from_slice(&ip_packet);
        ifnet.transmit(sim, charge, frame);
    }

    // --- Input path ---

    /// Feeds one received Ethernet frame into the stack. The caller has
    /// already charged interrupt/demultiplex/delivery costs; this
    /// charges mbuf packaging, `ipintr`, protocol input, and any
    /// wakeups.
    pub fn input_frame(&mut self, sim: &mut Sim, charge: &mut Charge, frame: &[u8]) {
        self.stats.frames_in += 1;
        let Ok(eth) = EthernetHeader::parse(frame) else {
            self.stats.drops.note(DropReason::MalformedFrame);
            charge.trace_drop(DropReason::MalformedFrame, self.placement.domain());
            return;
        };
        // Package the packet as an mbuf chain and queue it on the
        // protocol input queue. (The monolithic kernel does this inside
        // its netisr accounting — Table 4 shows zero for this row.)
        charge.site_push(self.placement.domain(), "input");
        if self.placement != Placement::Kernel {
            charge.add_ns(Layer::MbufQueue, self.costs.mbuf_alloc);
            charge.add_ns(Layer::MbufQueue, self.costs.sbappend_base / 2);
            self.sync(charge, Layer::MbufQueue, 3);
        }
        match eth.ethertype {
            EtherType::Arp => self.arp_input(sim, charge, &frame[ETHER_HDR_LEN..], eth.src),
            EtherType::Ipv4 => self.ip_input(sim, charge, &frame[ETHER_HDR_LEN..]),
            EtherType::Other(_) => {
                self.stats.drops.note(DropReason::UnsupportedEtherType);
                charge.trace_drop(DropReason::UnsupportedEtherType, self.placement.domain());
            }
        }
        charge.site_pop();
    }

    fn arp_input(&mut self, sim: &mut Sim, charge: &mut Charge, pkt: &[u8], _src: EtherAddr) {
        let Ok(arp) = ArpPacket::parse(pkt) else {
            self.stats.drops.note(DropReason::MalformedFrame);
            charge.trace_drop(DropReason::MalformedFrame, self.placement.domain());
            return;
        };
        charge.trace_event("arp");
        charge.trace_absorbed();
        let now = charge.at();
        // Learn the sender's mapping (all stacks cache; the server is
        // authoritative).
        let drained = self.arp.insert(arp.sender_ip, arp.sender_mac, now);
        for pending in drained {
            self.transmit_ip_frame(sim, charge, arp.sender_mac, pending);
        }
        if arp.op == ArpOp::Request && arp.target_ip == self.ip_addr && self.arp_authoritative {
            let ifnet = self.ifnet.clone().expect("no ifnet");
            let reply = arp.reply_to(ifnet.mac());
            let eth = EthernetHeader {
                dst: arp.sender_mac,
                src: ifnet.mac(),
                ethertype: EtherType::Arp,
            };
            let mut frame = eth.encode().to_vec();
            frame.extend_from_slice(&reply.encode());
            ifnet.transmit(sim, charge, frame);
        }
    }

    fn ip_input(&mut self, sim: &mut Sim, charge: &mut Charge, pkt: &[u8]) {
        charge.trace_span_start(Stage::NetstackIp);
        charge.add_ns(Layer::IpIntr, self.costs.ip_input_base);
        self.sync(charge, Layer::IpIntr, 3);
        let Ok(hdr) = Ipv4Header::parse(pkt) else {
            self.stats.checksum_errors += 1;
            self.stats.drops.note(DropReason::ChecksumError);
            charge.trace_drop(DropReason::ChecksumError, self.placement.domain());
            return;
        };
        if hdr.dst != self.ip_addr && self.placement == Placement::Library {
            // Filters should prevent this; drop defensively.
            self.stats.drops.note(DropReason::NotForHost);
            charge.trace_drop(DropReason::NotForHost, self.placement.domain());
            return;
        }
        let payload = &pkt[hdr.header_len..usize::from(hdr.total_len)];
        if hdr.is_fragment() {
            let now = charge.at();
            // Age out stale partial datagrams first: their buffers are
            // reclaimed here, at the next fragment arrival, exactly as
            // BSD's slow-timeout based reaper would eventually do.
            let expired = self.reasm.expire(now);
            for _ in 0..expired {
                self.stats.drops.note(DropReason::ReassemblyTimeout);
                charge.count_drop(DropReason::ReassemblyTimeout, self.placement.domain());
            }
            if let Some((whole, data)) = self.reasm.insert(&hdr, payload, now) {
                self.stats.reassembled += 1;
                self.dispatch_transport(sim, charge, &whole, &data);
            } else {
                // Held awaiting the rest of the datagram; the packet's
                // bytes live on in the reassembly buffer.
                charge.trace_event("reassembly-hold");
                charge.trace_absorbed();
            }
            return;
        }
        self.dispatch_transport(sim, charge, &hdr, payload);
    }

    fn dispatch_transport(
        &mut self,
        sim: &mut Sim,
        charge: &mut Charge,
        ip: &Ipv4Header,
        payload: &[u8],
    ) {
        match ip.proto {
            IpProto::Udp => {
                charge.site_push(self.placement.domain(), "udp_input");
                self.udp_input(sim, charge, ip, payload);
                charge.site_pop();
            }
            IpProto::Tcp => {
                charge.site_push(self.placement.domain(), "tcp_input");
                self.tcp_input(sim, charge, ip, payload);
                charge.site_pop();
            }
            IpProto::Icmp => self.icmp_input(sim, charge, ip, payload),
            IpProto::Other(_) => {
                self.stats.drops.note(DropReason::UnsupportedProtocol);
                charge.trace_drop(DropReason::UnsupportedProtocol, self.placement.domain());
            }
        }
    }

    fn udp_input(&mut self, sim: &mut Sim, charge: &mut Charge, ip: &Ipv4Header, pkt: &[u8]) {
        charge.trace_span_start(Stage::NetstackUdp);
        charge.add_ns(Layer::TcpUdpInput, self.costs.udp_input_base);
        self.sync(charge, Layer::TcpUdpInput, 1);
        let Ok(udp) = UdpHeader::parse(pkt) else {
            self.stats.drops.note(DropReason::MalformedFrame);
            charge.trace_drop(DropReason::MalformedFrame, self.placement.domain());
            return;
        };
        let data_len = usize::from(udp.len).saturating_sub(psd_wire::UDP_HDR_LEN);
        if pkt.len() < psd_wire::UDP_HDR_LEN + data_len {
            self.stats.drops.note(DropReason::TruncatedPayload);
            charge.trace_drop(DropReason::TruncatedPayload, self.placement.domain());
            return;
        }
        let data = &pkt[psd_wire::UDP_HDR_LEN..psd_wire::UDP_HDR_LEN + data_len];
        charge.add_per_byte(Layer::TcpUdpInput, self.costs.checksum_byte, pkt.len());
        charge.note(
            OpKind::Checksum,
            self.placement.domain(),
            Layer::TcpUdpInput,
        );
        if !udp.verify(ip, pkt, std::iter::once(data)) {
            self.stats.checksum_errors += 1;
            self.stats.drops.note(DropReason::ChecksumError);
            charge.trace_drop(DropReason::ChecksumError, self.placement.domain());
            return;
        }
        self.stats.udp_in += 1;
        let dst = InetAddr::new(ip.dst, udp.dst_port);
        let src = InetAddr::new(ip.src, udp.src_port);

        // in_pcblookup: best-scoring pcb wins. A pcb can only match if
        // its local port equals the datagram's destination port, so the
        // scan is confined to that port's bucket.
        let mut best: Option<(SockId, u32)> = None;
        if let Some(bucket) = self.by_port.get(&udp.dst_port) {
            for id in bucket {
                let Some(e) = self.socks.get(id) else {
                    continue;
                };
                if let SockState::Udp(pcb) = &e.state {
                    if let Some(score) = pcb.match_score(dst, src) {
                        if best.is_none_or(|(_, s)| score > s) {
                            best = Some((*id, score));
                        }
                    }
                }
            }
        }
        let Some((sock, _)) = best else {
            // No local socket: give the server's forwarding hook a
            // chance (migrated sessions receiving reassembled
            // fragments), then ICMP port unreachable.
            if let Some(hook) = self.unclaimed_udp.clone() {
                if hook.borrow_mut()(sim, dst, src, data) {
                    // Forwarded to the session's new owner.
                    charge.trace_event("forward");
                    charge.trace_absorbed();
                    return;
                }
            }
            self.stats.no_socket += 1;
            self.stats.drops.note(DropReason::PortUnreachable);
            charge.trace_drop(DropReason::PortUnreachable, self.placement.domain());
            if self.arp_authoritative {
                let mut quoted = ip.encode().to_vec();
                quoted.extend_from_slice(&pkt[..pkt.len().min(8)]);
                let (ih, ipayload) = icmp::port_unreachable(self.ip_addr, ip.src, &quoted);
                let mut ippkt = ih.encode().to_vec();
                ippkt.extend_from_slice(&ipayload);
                let _ = self.ether_output(sim, charge, ip.src, ippkt);
            }
            return;
        };
        // sbappendaddr + wakeup.
        charge.add_ns(Layer::TcpUdpInput, self.costs.sbappend_base);
        let e = self.socks.get_mut(&sock).expect("sock chosen above");
        let SockState::Udp(pcb) = &mut e.state else {
            unreachable!("scored as UDP");
        };
        let was_empty = pcb.rcv.is_empty();
        if pcb.enqueue(src, MbufChain::from_slice(data)) {
            if let Some(tr) = charge.trace_handle() {
                if let Some(tid) = tr.borrow().current() {
                    e.trace_q.push_back((tid, charge.at()));
                }
            }
            charge.trace_delivered();
            self.notify(sim, charge, sock, SockEvent::Readable, was_empty);
        } else {
            self.stats.drops.note(DropReason::SocketOverflow);
            charge.trace_drop(DropReason::SocketOverflow, self.placement.domain());
        }
    }

    fn tcp_input(&mut self, sim: &mut Sim, charge: &mut Charge, ip: &Ipv4Header, pkt: &[u8]) {
        charge.trace_span_start(Stage::NetstackTcp);
        charge.add_ns(Layer::TcpUdpInput, self.costs.tcp_input_base);
        self.sync(charge, Layer::TcpUdpInput, 2);
        let Ok((hdr, hdr_len)) = TcpHeader::parse(pkt) else {
            self.stats.drops.note(DropReason::MalformedFrame);
            charge.trace_drop(DropReason::MalformedFrame, self.placement.domain());
            return;
        };
        charge.add_per_byte(Layer::TcpUdpInput, self.costs.checksum_byte, pkt.len());
        charge.note(
            OpKind::Checksum,
            self.placement.domain(),
            Layer::TcpUdpInput,
        );
        if !TcpHeader::verify(
            ip,
            &pkt[..hdr_len],
            pkt.len() - hdr_len,
            std::iter::once(&pkt[hdr_len..]),
        ) {
            self.stats.checksum_errors += 1;
            self.stats.drops.note(DropReason::ChecksumError);
            charge.trace_drop(DropReason::ChecksumError, self.placement.domain());
            return;
        }
        self.stats.tcp_in += 1;
        let payload = &pkt[hdr_len..];
        let local = InetAddr::new(ip.dst, hdr.dst_port);
        let remote = InetAddr::new(ip.src, hdr.src_port);

        // Exact connection match first. Connections and listeners both
        // live in the destination port's bucket.
        let bucket = self.by_port.get(&hdr.dst_port);
        let mut target: Option<SockId> = None;
        if let Some(bucket) = bucket {
            for id in bucket {
                let Some(e) = self.socks.get(id) else {
                    continue;
                };
                if let SockState::Tcp(tcb) = &e.state {
                    if tcb.local == local && tcb.remote == remote && tcb.state != TcpState::Closed {
                        target = Some(*id);
                        break;
                    }
                }
            }
        }
        if target.is_none() {
            // Listener match (SYN only).
            if hdr.flags.contains(psd_wire::TcpFlags::SYN)
                && !hdr.flags.contains(psd_wire::TcpFlags::ACK)
            {
                if let Some(bucket) = self.by_port.get(&hdr.dst_port) {
                    for id in bucket {
                        let Some(e) = self.socks.get(id) else {
                            continue;
                        };
                        if let SockState::TcpListen { local: ll, .. } = &e.state {
                            if ll.port == local.port
                                && (ll.ip == Ipv4Addr::UNSPECIFIED || ll.ip == local.ip)
                            {
                                target = Some(*id);
                                break;
                            }
                        }
                    }
                }
                if let Some(listener) = target {
                    self.tcp_passive_open(sim, charge, listener, local, remote, &hdr);
                    return;
                }
            }
            // No socket. A session migrated into an application may
            // still see stragglers here; the server's hook suppresses
            // the RST for those (the application's copy is live).
            if let Some(hook) = self.stray_tcp.clone() {
                if hook.borrow_mut()(local, remote) {
                    // A migrated session's live copy will handle it.
                    charge.trace_event("stray-suppressed");
                    charge.trace_absorbed();
                    return;
                }
            }
            self.stats.no_socket += 1;
            self.stats.drops.note(DropReason::ConnectionRefused);
            charge.trace_drop(DropReason::ConnectionRefused, self.placement.domain());
            let mut closed = Tcb::new(local, remote, 0, 0);
            let now = charge.at();
            let actions = closed.input(&hdr, payload, now);
            for a in actions {
                if let TcpAction::Send(spec) = a {
                    self.emit_segment(sim, charge, &spec);
                }
            }
            return;
        }
        let sock = target.expect("checked above");
        let now = charge.at();
        let actions = {
            let e = self.socks.get_mut(&sock).expect("matched above");
            let SockState::Tcp(tcb) = &mut e.state else {
                unreachable!("matched as TCP");
            };
            tcb.input(&hdr, payload, now)
        };
        self.run_tcp_actions(sim, charge, sock, actions);
        // The segment's bytes merged into the connection's stream (or
        // were dropped by sequence-space checks inside the TCB); either
        // way TCP has consumed the packet.
        charge.trace_absorbed();
    }

    fn tcp_passive_open(
        &mut self,
        sim: &mut Sim,
        charge: &mut Charge,
        listener: SockId,
        local: InetAddr,
        remote: InetAddr,
        syn: &TcpHeader,
    ) {
        // Backlog check: both completed (accept queue) and embryonic
        // (handshake in progress) connections count, as BSD's
        // `so_qlen + so_q0len` does.
        let embryonic = self
            .pending_children
            .iter()
            .filter(|(l, _)| *l == listener)
            .count();
        let full = match self.socks.get(&listener).map(|e| &e.state) {
            Some(SockState::TcpListen { listen, .. }) => {
                listen.queue.len() + embryonic >= listen.backlog
            }
            _ => true,
        };
        if full {
            // Drop the SYN; the peer retries.
            self.stats.drops.note(DropReason::ListenOverflow);
            charge.trace_drop(DropReason::ListenOverflow, self.placement.domain());
            return;
        }
        let iss = self.next_iss();
        let (snd, rcv) = self.tcp_bufs;
        let capped_mss = syn.mss.map(|m| m.min(self.mss_cap)).or(Some(self.mss_cap));
        let (tcb, actions) = Tcb::accept_syn(
            local, remote, iss, syn.seq, capped_mss, syn.window, snd, rcv,
        );
        let child = self.alloc_sock(SockState::Tcp(Box::new(tcb)));
        // The child inherits the listener's sink so Connected is seen.
        let parent_sink = self.socks.get(&listener).and_then(|e| e.sink.clone());
        if let Some(sink) = parent_sink {
            self.set_sink(child, sink);
        }
        // Remember which listener owns this embryonic connection.
        self.pending_children.push((listener, child));
        self.run_tcp_actions(sim, charge, child, actions);
        charge.trace_absorbed();
    }

    // --- TCP action execution ---

    fn run_tcp_actions(
        &mut self,
        sim: &mut Sim,
        charge: &mut Charge,
        sock: SockId,
        actions: Vec<TcpAction>,
    ) {
        let mut notified_readable = false;
        let mut notified_writable = false;
        for action in actions {
            match action {
                TcpAction::Send(spec) => self.emit_segment(sim, charge, &spec),
                TcpAction::SetTimer(kind, delay) => self.arm_timer(sim, sock, kind, delay),
                TcpAction::CancelTimer(kind) => {
                    if let Some(e) = self.socks.get_mut(&sock) {
                        if let Some(h) = e.timers.remove(&kind) {
                            sim.cancel(h);
                        }
                    }
                }
                TcpAction::Deliver { wake } => {
                    if !notified_readable {
                        notified_readable = true;
                        self.notify(sim, charge, sock, SockEvent::Readable, wake);
                    }
                }
                TcpAction::WakeWriters => {
                    if !notified_writable {
                        notified_writable = true;
                        self.notify(sim, charge, sock, SockEvent::Writable, false);
                    }
                }
                TcpAction::Connected => {
                    // If this is an embryonic child, move it to its
                    // listener's accept queue.
                    if let Some(pos) = self.pending_children.iter().position(|(_, c)| *c == sock) {
                        let (listener, child) = self.pending_children.remove(pos);
                        if let Some(SockEntry {
                            state: SockState::TcpListen { listen, .. },
                            ..
                        }) = self.socks.get_mut(&listener)
                        {
                            listen.queue.push(child);
                        }
                        self.notify(sim, charge, listener, SockEvent::Readable, true);
                    } else {
                        self.notify(sim, charge, sock, SockEvent::Connected, true);
                    }
                }
                TcpAction::PeerClosed => {
                    self.notify(sim, charge, sock, SockEvent::PeerClosed, true);
                }
                TcpAction::Fail(err) => {
                    self.pending_children.retain(|(_, c)| *c != sock);
                    self.notify(sim, charge, sock, SockEvent::Error(err), true);
                }
                TcpAction::Free => {
                    // Cancel timers; the entry itself stays until the
                    // owner closes the descriptor (so errors/EOF remain
                    // observable). The owner is told it may clean up.
                    if let Some(e) = self.socks.get_mut(&sock) {
                        e.generation += 1;
                        for (_, h) in e.timers.drain() {
                            sim.cancel(h);
                        }
                    }
                    self.notify(sim, charge, sock, SockEvent::Closed, false);
                }
            }
        }
    }

    fn emit_segment(&mut self, sim: &mut Sim, charge: &mut Charge, spec: &SegmentSpec) {
        charge.site_push(self.placement.domain(), "tcp_output");
        self.stats.tcp_out += 1;
        if spec.rexmit {
            self.stats.tcp_rexmt += 1;
        }
        charge.add_ns(Layer::TcpUdpOutput, self.costs.tcp_output_base);
        // The sosend→tcp_output path raises/lowers the priority level
        // about seven times in BSD (sblock, sbappend, splnet around
        // output, sbunlock…) — cheap as hardware spl, expensive as the
        // server's emulation, light as user locks.
        self.sync(charge, Layer::TcpUdpOutput, 7);
        charge.add_ns(
            Layer::TcpUdpOutput,
            self.costs.mbuf_alloc * (1 + spec.data.mbuf_count() as u64),
        );
        let hdr = spec.header();
        let ip = Ipv4Header::new(
            spec.local.ip,
            spec.remote.ip,
            IpProto::Tcp,
            hdr.header_len() + spec.data.len(),
        );
        charge.add_per_byte(
            Layer::TcpUdpOutput,
            self.costs.checksum_byte,
            hdr.header_len() + spec.data.len(),
        );
        charge.note(
            OpKind::Checksum,
            self.placement.domain(),
            Layer::TcpUdpOutput,
        );
        let tcp_bytes = hdr.encode_with_checksum(&ip, spec.data.len(), spec.data.iter_segments());
        charge.note(
            OpKind::HeaderCopy,
            self.placement.domain(),
            Layer::TcpUdpOutput,
        );
        let mut payload = tcp_bytes;
        payload.extend_from_slice(&spec.data.to_vec());
        let _ = self.ip_output(sim, charge, spec.remote.ip, IpProto::Tcp, payload);
        charge.site_pop();
    }

    fn icmp_input(&mut self, sim: &mut Sim, charge: &mut Charge, ip: &Ipv4Header, pkt: &[u8]) {
        self.stats.icmp_in += 1;
        charge.add_ns(Layer::TcpUdpInput, self.costs.udp_input_base / 2);
        let Ok(msg) = IcmpMessage::parse(pkt) else {
            self.stats.checksum_errors += 1;
            self.stats.drops.note(DropReason::ChecksumError);
            charge.trace_drop(DropReason::ChecksumError, self.placement.domain());
            return;
        };
        charge.trace_event("icmp");
        charge.trace_absorbed();
        // Time Exceeded: a router dropped our packet for TTL. TCP's
        // own retransmission recovers; we count it so chaos tests can
        // assert the ICMP actually came back through the topology.
        if matches!(msg.kind, psd_wire::IcmpType::TimeExceeded(_)) {
            self.stats.icmp_time_exceeded += 1;
        }
        // Echo: answered by the authoritative (OS) stack.
        if self.arp_authoritative {
            if let Some((rip, rpayload)) = icmp::echo_reply(ip, &msg) {
                let mut ippkt = rip.encode().to_vec();
                ippkt.extend_from_slice(&rpayload);
                let _ = self.ether_output(sim, charge, rip.dst, ippkt);
                return;
            }
        }
        // Port unreachable → error on the matching connected UDP socket.
        if let Some((dst_ip, dst_port, src_port)) = icmp::parse_unreachable_udp(&msg) {
            let mut hit = None;
            for (id, e) in &self.socks {
                if let SockState::Udp(pcb) = &e.state {
                    if pcb.local.port == src_port
                        && pcb.remote == Some(InetAddr::new(dst_ip, dst_port))
                    {
                        hit = Some(*id);
                        break;
                    }
                }
            }
            if let Some(sock) = hit {
                if let Some(SockEntry {
                    state: SockState::Udp(pcb),
                    ..
                }) = self.socks.get_mut(&sock)
                {
                    pcb.error = Some(SocketError::ConnRefused);
                }
                self.notify(
                    sim,
                    charge,
                    sock,
                    SockEvent::Error(SocketError::ConnRefused),
                    true,
                );
            }
        }
    }

    // --- Timers and notification ---

    fn arm_timer(&mut self, sim: &mut Sim, sock: SockId, kind: TcpTimer, delay: SimTime) {
        let me = self.me.clone();
        let generation = self.socks.get(&sock).map_or(0, |e| e.generation);
        let handle = sim.after(delay, move |sim| {
            let Some(stack) = me.upgrade() else { return };
            let mut s = stack.borrow_mut();
            let Some(e) = s.socks.get_mut(&sock) else {
                return;
            };
            if e.generation != generation {
                return; // Stale timer across close/migration.
            }
            e.timers.remove(&kind);
            let cpu = s.cpu.clone();
            let mut charge = cpu.borrow_mut().begin(sim.now());
            charge.add_ns(Layer::Other, s.costs.timer_op);
            let now = charge.at();
            let actions = {
                let Some(SockEntry {
                    state: SockState::Tcp(tcb),
                    ..
                }) = s.socks.get_mut(&sock)
                else {
                    cpu.borrow_mut().finish(charge);
                    return;
                };
                tcb.timer(kind, now)
            };
            s.run_tcp_actions(sim, &mut charge, sock, actions);
            cpu.borrow_mut().finish(charge);
        });
        if let Some(e) = self.socks.get_mut(&sock) {
            if let Some(old) = e.timers.insert(kind, handle) {
                sim.cancel(old);
            }
            // Charge the timer manipulation to the current path via the
            // caller's charge — done at call sites that care.
        } else {
            sim.cancel(handle);
        }
    }

    /// Fires a socket event to its sink (scheduled; the sink may call
    /// back into the stack). `charge_wakeup` prices waking the blocked
    /// application thread, which differs per placement.
    fn notify(
        &mut self,
        sim: &mut Sim,
        charge: &mut Charge,
        sock: SockId,
        event: SockEvent,
        charge_wakeup: bool,
    ) {
        let Some(e) = self.socks.get(&sock) else {
            return;
        };
        let Some(sink) = e.sink.clone() else {
            return;
        };
        if charge_wakeup {
            let cost = self.costs.sched_wakeup
                + match self.placement {
                    Placement::Kernel => 0,
                    Placement::Library => self.costs.cthread_switch,
                    Placement::Server => 7 * self.costs.spl_server,
                };
            charge.add_ns(Layer::WakeupUserThread, cost);
            charge.note(
                OpKind::Wakeup,
                self.placement.domain(),
                Layer::WakeupUserThread,
            );
        }
        let at = charge.at();
        sim.at(at, move |sim| {
            sink.borrow_mut()(sim, sock, event);
        });
    }
}

#[cfg(test)]
mod tests;
