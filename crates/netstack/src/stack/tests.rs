//! End-to-end stack tests: two [`NetStack`] instances on separate
//! simulated hosts, joined by a minimal test wire. ARP, IP, ICMP, UDP
//! and TCP all run for real over it.

use super::*;
use psd_sim::LatencyProbe;

const HOST_A: Ipv4Addr = Ipv4Addr::new(10, 0, 0, 1);
const HOST_B: Ipv4Addr = Ipv4Addr::new(10, 0, 0, 2);

/// A direct wire between two stacks with a fixed propagation delay.
struct TestIf {
    mac: EtherAddr,
    peer: RefCell<Option<StackHandle>>,
    delay: SimTime,
}

impl TestIf {
    fn pair(sim_delay: SimTime) -> (Rc<TestIf>, Rc<TestIf>) {
        let a = Rc::new(TestIf {
            mac: EtherAddr::local(1),
            peer: RefCell::new(None),
            delay: sim_delay,
        });
        let b = Rc::new(TestIf {
            mac: EtherAddr::local(2),
            peer: RefCell::new(None),
            delay: sim_delay,
        });
        (a, b)
    }
}

impl NetIf for TestIf {
    fn mac(&self) -> EtherAddr {
        self.mac
    }

    fn transmit(&self, sim: &mut Sim, charge: &mut Charge, frame: Vec<u8>) {
        let Some(peer) = self.peer.borrow().clone() else {
            return;
        };
        let at = charge.at() + self.delay;
        sim.at(at, move |sim| {
            // Frames addressed to the peer or broadcast arrive there.
            let cpu = peer.borrow().cpu();
            let now = sim.now();
            let mut ch = cpu.borrow_mut().begin(now);
            peer.borrow_mut().input_frame(sim, &mut ch, &frame);
            cpu.borrow_mut().finish(ch);
        });
    }
}

struct Rig {
    sim: Sim,
    a: StackHandle,
    b: StackHandle,
    events: Rc<RefCell<Vec<(char, SockId, SockEvent)>>>,
}

impl Rig {
    fn new(placement: Placement) -> Rig {
        let mut sim = Sim::new(7);
        let _ = &mut sim;
        let cpu_a = Rc::new(RefCell::new(Cpu::new()));
        let cpu_b = Rc::new(RefCell::new(Cpu::new()));
        let costs = CostModel::decstation_5000_200();
        let a = NetStack::new(placement, costs.clone(), cpu_a, HOST_A);
        let b = NetStack::new(placement, costs, cpu_b, HOST_B);
        let (ifa, ifb) = TestIf::pair(SimTime::from_micros(120));
        *ifa.peer.borrow_mut() = Some(b.clone());
        *ifb.peer.borrow_mut() = Some(a.clone());
        a.borrow_mut().set_ifnet(ifa);
        b.borrow_mut().set_ifnet(ifb);
        for s in [&a, &b] {
            s.borrow_mut().routes = RouteTable::directly_attached(
                Ipv4Addr::new(10, 0, 0, 0),
                Ipv4Addr::new(255, 255, 255, 0),
            );
        }
        Rig {
            sim,
            a,
            b,
            events: Rc::new(RefCell::new(Vec::new())),
        }
    }

    fn sink_for(&self, tag: char) -> EventSink {
        let events = self.events.clone();
        Rc::new(RefCell::new(
            move |_: &mut Sim, sock: SockId, ev: SockEvent| {
                events.borrow_mut().push((tag, sock, ev));
            },
        ))
    }

    fn with_charge<R>(
        &mut self,
        stack: &StackHandle,
        f: impl FnOnce(&mut NetStack, &mut Sim, &mut Charge) -> R,
    ) -> R {
        let cpu = stack.borrow().cpu();
        let now = self.sim.now();
        let mut charge = cpu.borrow_mut().begin(now);
        let r = f(&mut stack.borrow_mut(), &mut self.sim, &mut charge);
        cpu.borrow_mut().finish(charge);
        r
    }

    fn saw(&self, tag: char, sock: SockId, ev: SockEvent) -> bool {
        self.events
            .borrow()
            .iter()
            .any(|(t, s, e)| *t == tag && *s == sock && *e == ev)
    }
}

#[test]
fn udp_end_to_end_with_real_arp() {
    let mut r = Rig::new(Placement::Server);
    let (sa, sb);
    {
        let a = r.a.clone();
        let b = r.b.clone();
        sa = a.borrow_mut().socket_udp();
        sb = b.borrow_mut().socket_udp();
        a.borrow_mut()
            .bind(sa, InetAddr::new(HOST_A, 5000))
            .unwrap();
        b.borrow_mut()
            .bind(sb, InetAddr::new(HOST_B, 6000))
            .unwrap();
        let sink = r.sink_for('b');
        b.borrow_mut().set_sink(sb, sink);
    }
    let a = r.a.clone();
    r.with_charge(&a, |s, sim, ch| {
        s.udp_send(
            sim,
            ch,
            sa,
            b"ping over udp",
            Some(InetAddr::new(HOST_B, 6000)),
        )
        .unwrap()
    });
    r.sim.run_to_idle();
    // ARP resolved on the fly: the datagram arrived after one
    // request/reply exchange.
    assert!(r.saw('b', sb, SockEvent::Readable));
    let b = r.b.clone();
    let (n, from, buf) = r.with_charge(&b, |s, sim, ch| {
        let mut buf = [0u8; 64];
        let (n, from) = s.udp_recv(sim, ch, sb, &mut buf).unwrap();
        (n, from, buf)
    });
    assert_eq!(&buf[..n], b"ping over udp");
    assert_eq!(from, InetAddr::new(HOST_A, 5000));
    assert_eq!(r.a.borrow().stats.udp_out, 1);
    assert_eq!(r.b.borrow().stats.udp_in, 1);
    assert!(r
        .a
        .borrow()
        .arp
        .lookup(HOST_B, SimTime::MAX.min(SimTime::from_secs(1)))
        .is_some());
}

#[test]
fn udp_to_closed_port_gets_icmp_refusal() {
    let mut r = Rig::new(Placement::Server);
    let a = r.a.clone();
    let sa = a.borrow_mut().socket_udp();
    a.borrow_mut()
        .bind(sa, InetAddr::new(HOST_A, 5000))
        .unwrap();
    a.borrow_mut()
        .connect_udp(sa, InetAddr::new(HOST_B, 9))
        .unwrap();
    let sink = r.sink_for('a');
    a.borrow_mut().set_sink(sa, sink);
    r.with_charge(&a, |s, sim, ch| {
        s.udp_send(sim, ch, sa, b"anyone there?", None).unwrap()
    });
    r.sim.run_to_idle();
    assert!(r.saw('a', sa, SockEvent::Error(SocketError::ConnRefused)));
    // The error is surfaced on the next operation.
    let err = r.with_charge(&a, |s, sim, ch| {
        let mut buf = [0u8; 8];
        s.udp_recv(sim, ch, sa, &mut buf).unwrap_err()
    });
    assert_eq!(err, SocketError::ConnRefused);
}

#[test]
fn udp_fragmentation_reassembles_end_to_end() {
    let mut r = Rig::new(Placement::Server);
    let a = r.a.clone();
    let b = r.b.clone();
    let sa = a.borrow_mut().socket_udp();
    let sb = b.borrow_mut().socket_udp();
    a.borrow_mut()
        .bind(sa, InetAddr::new(HOST_A, 5000))
        .unwrap();
    b.borrow_mut()
        .bind(sb, InetAddr::new(HOST_B, 6000))
        .unwrap();
    let payload: Vec<u8> = (0..4000u32).map(|i| (i * 13) as u8).collect();
    r.with_charge(&a, |s, sim, ch| {
        s.udp_send(sim, ch, sa, &payload, Some(InetAddr::new(HOST_B, 6000)))
            .unwrap()
    });
    r.sim.run_to_idle();
    assert!(r.b.borrow().stats.reassembled >= 1);
    let got = r.with_charge(&b, |s, sim, ch| {
        let mut buf = vec![0u8; 8000];
        let (n, _) = s.udp_recv(sim, ch, sb, &mut buf).unwrap();
        buf.truncate(n);
        buf
    });
    assert_eq!(got, payload);
}

#[test]
fn tcp_connect_transfer_close_over_wire() {
    let mut r = Rig::new(Placement::Server);
    let a = r.a.clone();
    let b = r.b.clone();
    // B listens.
    let lb = b.borrow_mut().socket_tcp();
    b.borrow_mut().bind(lb, InetAddr::new(HOST_B, 80)).unwrap();
    b.borrow_mut().listen(lb, 5).unwrap();
    let sinkb = r.sink_for('b');
    b.borrow_mut().set_sink(lb, sinkb);
    // A connects.
    let ca = a.borrow_mut().socket_tcp();
    a.borrow_mut()
        .bind(ca, InetAddr::new(HOST_A, 4321))
        .unwrap();
    let sinka = r.sink_for('a');
    a.borrow_mut().set_sink(ca, sinka);
    r.with_charge(&a, |s, sim, ch| {
        s.connect_tcp(sim, ch, ca, InetAddr::new(HOST_B, 80))
            .unwrap()
    });
    r.sim.run_to_idle();
    assert!(r.saw('a', ca, SockEvent::Connected));
    assert!(r.saw('b', lb, SockEvent::Readable), "listener readable");
    let cb = b.borrow_mut().accept(lb).unwrap();
    assert_eq!(
        b.borrow().remote_addr(cb),
        Some(InetAddr::new(HOST_A, 4321))
    );

    // Request/response.
    r.with_charge(&a, |s, sim, ch| {
        s.tcp_send(sim, ch, ca, b"GET /paper HTTP/0.9").unwrap()
    });
    r.sim.run_to_idle();
    let got = r.with_charge(&b, |s, sim, ch| {
        let mut buf = [0u8; 128];
        let n = s.tcp_recv(sim, ch, cb, &mut buf).unwrap();
        buf[..n].to_vec()
    });
    assert_eq!(got, b"GET /paper HTTP/0.9");
    r.with_charge(&b, |s, sim, ch| {
        s.tcp_send(sim, ch, cb, b"the bytes of the paper").unwrap()
    });
    r.sim.run_to_idle();
    let got = r.with_charge(&a, |s, sim, ch| {
        let mut buf = [0u8; 128];
        let n = s.tcp_recv(sim, ch, ca, &mut buf).unwrap();
        buf[..n].to_vec()
    });
    assert_eq!(got, b"the bytes of the paper");

    // Orderly close from A; B sees EOF, closes too; both sides settle.
    r.with_charge(&a, |s, sim, ch| s.close(sim, ch, ca));
    r.sim.run_to_idle();
    assert!(r.saw('b', cb, SockEvent::PeerClosed));
    let eof = r.with_charge(&b, |s, sim, ch| {
        let mut buf = [0u8; 8];
        s.tcp_recv(sim, ch, cb, &mut buf)
    });
    assert_eq!(eof.unwrap(), 0, "EOF after FIN");
    r.with_charge(&b, |s, sim, ch| s.close(sim, ch, cb));
    // Run long enough for TIME_WAIT to expire.
    r.sim.run_to_idle();
    assert_eq!(r.a.borrow().tcp_state(ca), Some(TcpState::Closed));
}

#[test]
fn tcp_bulk_transfer_across_wire() {
    let mut r = Rig::new(Placement::Server);
    let a = r.a.clone();
    let b = r.b.clone();
    let lb = b.borrow_mut().socket_tcp();
    b.borrow_mut().bind(lb, InetAddr::new(HOST_B, 80)).unwrap();
    b.borrow_mut().listen(lb, 5).unwrap();
    let ca = a.borrow_mut().socket_tcp();
    a.borrow_mut()
        .bind(ca, InetAddr::new(HOST_A, 4321))
        .unwrap();
    r.with_charge(&a, |s, sim, ch| {
        s.connect_tcp(sim, ch, ca, InetAddr::new(HOST_B, 80))
            .unwrap()
    });
    r.sim.run_to_idle();
    let cb = b.borrow_mut().accept(lb).unwrap();

    let data: Vec<u8> = (0..100_000u32).map(|i| (i % 241) as u8).collect();
    let mut sent = 0;
    let mut received = Vec::new();
    let mut rounds = 0;
    while received.len() < data.len() {
        rounds += 1;
        assert!(rounds < 10_000, "stalled at {} bytes", received.len());
        if sent < data.len() {
            let n = r.with_charge(&a, |s, sim, ch| {
                match s.tcp_send(sim, ch, ca, &data[sent..]) {
                    Ok(n) => n,
                    Err(SocketError::WouldBlock) => 0,
                    Err(e) => panic!("send: {e}"),
                }
            });
            sent += n;
        }
        // Let the wire and all timers (delayed ACKs etc.) run.
        let deadline = r.sim.now() + SimTime::from_millis(300);
        r.sim.run_until(deadline);
        let chunk = r.with_charge(&b, |s, sim, ch| {
            let mut buf = vec![0u8; 16 * 1024];
            match s.tcp_recv(sim, ch, cb, &mut buf) {
                Ok(n) => {
                    buf.truncate(n);
                    buf
                }
                Err(SocketError::WouldBlock) => Vec::new(),
                Err(e) => panic!("recv: {e}"),
            }
        });
        received.extend_from_slice(&chunk);
    }
    assert_eq!(received, data);
    assert!(r.a.borrow().stats.tcp_out > 70, "should take many segments");
}

#[test]
fn tcp_recovers_from_frame_loss() {
    // Drop every 7th frame A→B at the wire by wrapping the interface.
    struct LossyIf {
        inner: Rc<TestIf>,
        counter: RefCell<u32>,
    }
    impl NetIf for LossyIf {
        fn mac(&self) -> EtherAddr {
            self.inner.mac()
        }
        fn transmit(&self, sim: &mut Sim, charge: &mut Charge, frame: Vec<u8>) {
            let mut c = self.counter.borrow_mut();
            *c += 1;
            if (*c).is_multiple_of(7) {
                return; // Lost on the wire.
            }
            drop(c);
            self.inner.transmit(sim, charge, frame);
        }
    }

    let mut r = Rig::new(Placement::Server);
    let a = r.a.clone();
    let b = r.b.clone();
    // Wrap A's interface with loss.
    let (ifa, ifb) = TestIf::pair(SimTime::from_micros(120));
    *ifa.peer.borrow_mut() = Some(b.clone());
    *ifb.peer.borrow_mut() = Some(a.clone());
    a.borrow_mut().set_ifnet(Rc::new(LossyIf {
        inner: ifa,
        counter: RefCell::new(0),
    }));
    b.borrow_mut().set_ifnet(ifb);

    let lb = b.borrow_mut().socket_tcp();
    b.borrow_mut().bind(lb, InetAddr::new(HOST_B, 80)).unwrap();
    b.borrow_mut().listen(lb, 5).unwrap();
    let ca = a.borrow_mut().socket_tcp();
    a.borrow_mut()
        .bind(ca, InetAddr::new(HOST_A, 4321))
        .unwrap();
    r.with_charge(&a, |s, sim, ch| {
        s.connect_tcp(sim, ch, ca, InetAddr::new(HOST_B, 80))
            .unwrap()
    });
    // SYN may be lost; let retransmission do its job.
    let deadline = r.sim.now() + SimTime::from_secs(10);
    r.sim.run_until(deadline);
    let cb = b
        .borrow_mut()
        .accept(lb)
        .expect("connection established despite loss");

    let data: Vec<u8> = (0..30_000u32).map(|i| (i % 199) as u8).collect();
    let mut sent = 0;
    let mut received = Vec::new();
    let mut rounds = 0;
    while received.len() < data.len() {
        rounds += 1;
        assert!(rounds < 20_000, "stalled at {} bytes", received.len());
        if sent < data.len() {
            let n = r.with_charge(&a, |s, sim, ch| {
                s.tcp_send(sim, ch, ca, &data[sent..]).unwrap_or(0)
            });
            sent += n;
        }
        let deadline = r.sim.now() + SimTime::from_millis(600);
        r.sim.run_until(deadline);
        let chunk = r.with_charge(&b, |s, sim, ch| {
            let mut buf = vec![0u8; 16 * 1024];
            match s.tcp_recv(sim, ch, cb, &mut buf) {
                Ok(n) => {
                    buf.truncate(n);
                    buf
                }
                Err(_) => Vec::new(),
            }
        });
        received.extend_from_slice(&chunk);
    }
    assert_eq!(
        received, data,
        "exactly-once in-order delivery despite loss"
    );
    assert!(
        r.a.borrow().stats.tcp_rexmt > 0,
        "loss must cause retransmits"
    );
}

#[test]
fn session_migration_between_stacks_mid_connection() {
    // A "server stack" and a "library stack" on host B share the host
    // IP; an established connection migrates between them, as in §3.1.
    let mut r = Rig::new(Placement::Server);
    let a = r.a.clone();
    let b_server = r.b.clone();
    let cpu_b = b_server.borrow().cpu();
    let b_lib = NetStack::new(
        Placement::Library,
        CostModel::decstation_5000_200(),
        cpu_b,
        HOST_B,
    );
    // The library stack shares B's interface and metastate snapshot.
    let (ifa2, ifb2) = TestIf::pair(SimTime::from_micros(120));
    let _ = (ifa2,); // Only the B-side interface is used by the lib stack.
    *ifb2.peer.borrow_mut() = Some(a.clone());
    b_lib.borrow_mut().set_ifnet(ifb2);
    b_lib.borrow_mut().routes = b_server.borrow().routes.clone();

    // Establish A → B(server).
    let lb = b_server.borrow_mut().socket_tcp();
    b_server
        .borrow_mut()
        .bind(lb, InetAddr::new(HOST_B, 80))
        .unwrap();
    b_server.borrow_mut().listen(lb, 5).unwrap();
    let ca = a.borrow_mut().socket_tcp();
    a.borrow_mut()
        .bind(ca, InetAddr::new(HOST_A, 4321))
        .unwrap();
    r.with_charge(&a, |s, sim, ch| {
        s.connect_tcp(sim, ch, ca, InetAddr::new(HOST_B, 80))
            .unwrap()
    });
    r.sim.run_to_idle();
    let cb = b_server.borrow_mut().accept(lb).unwrap();
    r.with_charge(&a, |s, sim, ch| {
        s.tcp_send(sim, ch, ca, b"pre-migration ").unwrap()
    });
    r.sim.run_to_idle();

    // Migrate: export from the server stack, import into the library
    // stack (the kernel-side filter retarget is exercised at the
    // systems level).
    let state = b_server
        .borrow_mut()
        .export_session(&mut r.sim, cb)
        .expect("migratable");
    // ARP/route metastate snapshot travels along (§3.3).
    let now = r.sim.now();
    for (ip, mac) in b_server.borrow().arp.snapshot(now) {
        b_lib.borrow_mut().arp.insert(ip, mac, now);
    }
    let cb2 = b_lib.borrow_mut().import_session(&mut r.sim, state);

    // A keeps sending; the library stack now owns the session. Deliver
    // A's frames to the library stack by rewiring A's interface peer.
    let (ifa3, ifb3) = TestIf::pair(SimTime::from_micros(120));
    *ifa3.peer.borrow_mut() = Some(b_lib.clone());
    *ifb3.peer.borrow_mut() = Some(a.clone());
    a.borrow_mut().set_ifnet(ifa3);
    r.with_charge(&a, |s, sim, ch| {
        s.tcp_send(sim, ch, ca, b"post-migration").unwrap()
    });
    let deadline = r.sim.now() + SimTime::from_secs(5);
    r.sim.run_until(deadline);

    let got = {
        let cpu = b_lib.borrow().cpu();
        let now = r.sim.now();
        let mut ch = cpu.borrow_mut().begin(now);
        let mut buf = [0u8; 128];
        let n = b_lib
            .borrow_mut()
            .tcp_recv(&mut r.sim, &mut ch, cb2, &mut buf)
            .unwrap();
        cpu.borrow_mut().finish(ch);
        buf[..n].to_vec()
    };
    assert_eq!(got, b"pre-migration post-migration");
}

#[test]
fn library_placement_uses_arp_resolver_upcall() {
    let mut r = Rig::new(Placement::Server);
    let a_lib = {
        let cpu = r.a.borrow().cpu();
        NetStack::new(
            Placement::Library,
            CostModel::decstation_5000_200(),
            cpu,
            HOST_A,
        )
    };
    let (ifa, ifb) = TestIf::pair(SimTime::from_micros(120));
    *ifa.peer.borrow_mut() = Some(r.b.clone());
    *ifb.peer.borrow_mut() = Some(a_lib.clone());
    a_lib.borrow_mut().set_ifnet(ifa);
    r.b.borrow_mut().set_ifnet(ifb);
    a_lib.borrow_mut().routes =
        RouteTable::directly_attached(Ipv4Addr::new(10, 0, 0, 0), Ipv4Addr::new(255, 255, 255, 0));
    // Resolver "RPC" answering from a fixed table, counting calls.
    let calls = Rc::new(RefCell::new(0u32));
    let calls2 = calls.clone();
    a_lib
        .borrow_mut()
        .set_arp_resolver(Box::new(move |_sim, _ch, ip| {
            *calls2.borrow_mut() += 1;
            (ip == HOST_B).then(|| EtherAddr::local(2))
        }));

    let sb = r.b.borrow_mut().socket_udp();
    r.b.borrow_mut().bind(sb, InetAddr::new(HOST_B, 7)).unwrap();
    let sa = a_lib.borrow_mut().socket_udp();
    a_lib
        .borrow_mut()
        .bind(sa, InetAddr::new(HOST_A, 9000))
        .unwrap();
    for _ in 0..3 {
        let cpu = a_lib.borrow().cpu();
        let now = r.sim.now();
        let mut ch = cpu.borrow_mut().begin(now);
        a_lib
            .borrow_mut()
            .udp_send(
                &mut r.sim,
                &mut ch,
                sa,
                b"x",
                Some(InetAddr::new(HOST_B, 7)),
            )
            .unwrap();
        cpu.borrow_mut().finish(ch);
        r.sim.run_to_idle();
    }
    assert_eq!(*calls.borrow(), 1, "resolver consulted once, then cached");
    assert_eq!(r.b.borrow().stats.udp_in, 3);
}

#[test]
fn probe_attributes_layers_on_both_paths() {
    let mut r = Rig::new(Placement::Server);
    let probe = LatencyProbe::shared();
    r.a.borrow()
        .cpu()
        .borrow_mut()
        .set_probe(Some(probe.clone()));
    r.b.borrow()
        .cpu()
        .borrow_mut()
        .set_probe(Some(probe.clone()));
    let a = r.a.clone();
    let b = r.b.clone();
    let sa = a.borrow_mut().socket_udp();
    let sb = b.borrow_mut().socket_udp();
    a.borrow_mut().bind(sa, InetAddr::new(HOST_A, 1)).unwrap();
    b.borrow_mut().bind(sb, InetAddr::new(HOST_B, 2)).unwrap();
    // A blocked reader must exist for the wakeup to be charged.
    let sink = r.sink_for('b');
    b.borrow_mut().set_sink(sb, sink);
    r.with_charge(&a, |s, sim, ch| {
        s.udp_send(sim, ch, sa, &[9u8; 100], Some(InetAddr::new(HOST_B, 2)))
            .unwrap()
    });
    r.sim.run_to_idle();
    let _ = r.with_charge(&b, |s, sim, ch| {
        let mut buf = [0u8; 128];
        s.udp_recv(sim, ch, sb, &mut buf).map(|x| x.0).unwrap_or(0)
    });
    let p = probe.borrow();
    for layer in [
        Layer::EntryCopyin,
        Layer::TcpUdpOutput,
        Layer::IpOutput,
        Layer::EtherOutput,
        Layer::IpIntr,
        Layer::TcpUdpInput,
        Layer::WakeupUserThread,
        Layer::CopyoutExit,
    ] {
        assert!(
            p.layer(layer).total > SimTime::ZERO,
            "layer {layer} unattributed"
        );
    }
}

#[test]
fn listener_backlog_drops_excess_syns() {
    let mut r = Rig::new(Placement::Server);
    let b = r.b.clone();
    let lb = b.borrow_mut().socket_tcp();
    b.borrow_mut().bind(lb, InetAddr::new(HOST_B, 80)).unwrap();
    b.borrow_mut().listen(lb, 2).unwrap();
    // Three clients connect; only two fit the backlog at once.
    let a = r.a.clone();
    let mut socks = Vec::new();
    for port in [4000u16, 4001, 4002] {
        let ca = a.borrow_mut().socket_tcp();
        a.borrow_mut()
            .bind(ca, InetAddr::new(HOST_A, port))
            .unwrap();
        r.with_charge(&a, |s, sim, ch| {
            s.connect_tcp(sim, ch, ca, InetAddr::new(HOST_B, 80))
                .unwrap()
        });
        socks.push(ca);
    }
    // Run briefly: the third SYN is dropped while the backlog is full.
    let deadline = r.sim.now() + SimTime::from_millis(50);
    r.sim.run_until(deadline);
    assert_eq!(b.borrow().accept_queue_len(lb), 2);
    // Accept one; the third client's SYN retransmission then lands.
    let _c1 = b.borrow_mut().accept(lb).unwrap();
    let deadline = r.sim.now() + SimTime::from_secs(20);
    r.sim.run_until(deadline);
    assert!(b.borrow().accept_queue_len(lb) >= 1, "retry fills the slot");
    // All three clients eventually establish.
    let established = socks
        .iter()
        .filter(|s| r.a.borrow().tcp_state(**s) == Some(TcpState::Established))
        .count();
    assert_eq!(established, 3);
}

#[test]
fn recv_buffer_resizing_raises_advertised_window() {
    let mut r = Rig::new(Placement::Server);
    let b = r.b.clone();
    let a = r.a.clone();
    let lb = b.borrow_mut().socket_tcp();
    b.borrow_mut().bind(lb, InetAddr::new(HOST_B, 80)).unwrap();
    b.borrow_mut().listen(lb, 2).unwrap();
    let ca = a.borrow_mut().socket_tcp();
    a.borrow_mut()
        .bind(ca, InetAddr::new(HOST_A, 4000))
        .unwrap();
    r.with_charge(&a, |s, sim, ch| {
        s.connect_tcp(sim, ch, ca, InetAddr::new(HOST_B, 80))
            .unwrap()
    });
    r.sim.run_to_idle();
    let cb = b.borrow_mut().accept(lb).unwrap();
    // Grow the receive buffer "on demand for busy sessions".
    b.borrow_mut().set_recv_buffer(cb, 120 * 1024);
    // Push a burst; with the bigger buffer the receiver can hold far
    // more than the old default without reading.
    let mut sent = 0;
    for _ in 0..200 {
        let n = r.with_charge(&a, |s, sim, ch| {
            s.tcp_send(sim, ch, ca, &[1u8; 4096]).unwrap_or(0)
        });
        sent += n;
        let deadline = r.sim.now() + SimTime::from_millis(40);
        r.sim.run_until(deadline);
        if sent >= 64 * 1024 {
            break;
        }
    }
    let deadline = r.sim.now() + SimTime::from_secs(3);
    r.sim.run_until(deadline);
    assert!(
        r.b.borrow().readable(cb) > 32 * 1024,
        "got {}",
        r.b.borrow().readable(cb)
    );
}

#[test]
fn newapi_shared_send_and_chain_recv() {
    let mut r = Rig::new(Placement::Library);
    // Library placement needs resolvers; pre-seed the ARP caches.
    let now = r.sim.now();
    r.a.borrow_mut()
        .arp
        .insert(HOST_B, EtherAddr::local(2), now);
    r.b.borrow_mut()
        .arp
        .insert(HOST_A, EtherAddr::local(1), now);
    let b = r.b.clone();
    let a = r.a.clone();
    let lb = b.borrow_mut().socket_tcp();
    b.borrow_mut().bind(lb, InetAddr::new(HOST_B, 80)).unwrap();
    b.borrow_mut().listen(lb, 2).unwrap();
    let ca = a.borrow_mut().socket_tcp();
    a.borrow_mut()
        .bind(ca, InetAddr::new(HOST_A, 4000))
        .unwrap();
    r.with_charge(&a, |s, sim, ch| {
        s.connect_tcp(sim, ch, ca, InetAddr::new(HOST_B, 80))
            .unwrap()
    });
    r.sim.run_to_idle();
    let cb = b.borrow_mut().accept(lb).unwrap();

    // Shared-buffer send: no copy into the socket queue.
    let payload = Rc::new((0..3000u32).map(|i| (i % 89) as u8).collect::<Vec<u8>>());
    let n = r.with_charge(&a, |s, sim, ch| {
        s.tcp_send_shared(sim, ch, ca, payload.clone()).unwrap()
    });
    assert_eq!(n, 3000);
    r.sim.run_to_idle();
    // Chain receive: hand the buffered data over without a copyout.
    let chain = r.with_charge(&b, |s, sim, ch| {
        s.tcp_recv_chain(sim, ch, cb, 8192).unwrap()
    });
    assert_eq!(chain.to_vec(), payload.as_slice());
}
